package nesc

import (
	"fmt"

	"nesc/internal/hypervisor"
)

// Content-addressed image management (requires Config.CAS). The tier models
// golden-image provisioning at fleet scale: one host seals a prepared image
// into a shared chunk store, any number of hosts fork it as metadata-only
// copies, and each forked block's content materializes lazily — on first
// guest touch — through the device's translation-miss path.

// ImageManifest summarizes one sealed (or forked) image in the store.
type ImageManifest struct {
	// Name is the manifest's store key.
	Name string
	// Gen counts the fork generation (1 for a sealed master).
	Gen uint64
	// Blocks is the image length in blocks (= chunks).
	Blocks int
}

// SealImage content-addresses the host image at path into the store under
// name: every block is hashed into a chunk, new chunks are pushed to the
// simulated remote tier in one batched PUT, and blocks whose content is
// already sealed anywhere deduplicate against the existing chunks. The image
// file itself is untouched.
func (c *Ctx) SealImage(path, name string, uid uint32) (ImageManifest, error) {
	m, err := c.s.pl.Hyp.SealImage(c.proc, path, name, uid)
	if err != nil {
		return ImageManifest{}, err
	}
	return ImageManifest{Name: m.Name, Gen: m.Gen, Blocks: int(m.Blocks())}, nil
}

// ForkImage clones the sealed image src onto the primary host as a
// metadata-only copy at path, owned by uid: chunk references are taken, a
// fully sparse backing file is created, and no data moves. VMs started on
// path run fetch-backed — each block's content is served from the host's
// chunk cache or fetched from the remote tier the first time the guest
// touches it.
func (c *Ctx) ForkImage(src, path string, uid uint32) error {
	return c.s.pl.Hyp.ForkImage(c.proc, src, path, uid)
}

// ForkImageOn is ForkImage onto fleet host dev (0 = primary; requires
// Config.Devices > dev). The fork is as metadata-only across hosts as it is
// locally: only chunk hashes travel at fork time.
func (c *Ctx) ForkImageOn(dev int, src, path string, uid uint32) error {
	if dev < 0 || dev >= c.s.pl.Hyp.NumDevices() {
		return fmt.Errorf("nesc: no fleet device %d", dev)
	}
	return c.s.pl.Hyp.Device(dev).ForkImage(c.proc, src, path, uid)
}

// ReleaseImage drops a forked image's chunk references on the primary host
// and unbinds the path. Stop VMs using the image first: blocks never
// materialized become unreadable afterwards.
func (c *Ctx) ReleaseImage(path string) error {
	return c.s.pl.Hyp.ReleaseImage(c.proc, path)
}

// ReleaseImageOn is ReleaseImage on fleet host dev.
func (c *Ctx) ReleaseImageOn(dev int, path string) error {
	if dev < 0 || dev >= c.s.pl.Hyp.NumDevices() {
		return fmt.Errorf("nesc: no fleet device %d", dev)
	}
	return c.s.pl.Hyp.Device(dev).ReleaseImage(c.proc, path)
}

// ReleaseSealed drops a sealed master's own chunk references. Outstanding
// forks keep their chunks alive through their own references; chunks no
// image references anymore are freed.
func (c *Ctx) ReleaseSealed(name string) error {
	return c.s.pl.Hyp.ReleaseSealed(c.proc, name)
}

// CASDedupRatio reports logical blocks referenced per unique chunk stored
// across the whole store (1.0 = no sharing; 0 when the store is empty or
// Config.CAS is off).
func (s *Simulation) CASDedupRatio() float64 {
	return s.pl.Hyp.CAS().DedupRatio()
}

// StartVMOn is StartVM with the guest's virtual function placed on fleet
// host dev (0 = primary; requires Config.Devices > dev and BackendNeSC —
// the software backends always run against the primary device).
func (c *Ctx) StartVMOn(dev int, name string, backend Backend, diskPath string, uid uint32) (*VM, error) {
	kind, err := backendKind(backend)
	if err != nil {
		return nil, err
	}
	if dev < 0 || dev >= c.s.pl.Hyp.NumDevices() {
		return nil, fmt.Errorf("nesc: no fleet device %d", dev)
	}
	if dev != 0 && kind != hypervisor.BackendDirect {
		return nil, fmt.Errorf("nesc: backend %q cannot be placed on device %d", backend, dev)
	}
	vm, err := c.s.pl.Hyp.NewVM(c.proc, name, hypervisor.VMConfig{
		Backend:  kind,
		DiskPath: diskPath,
		UID:      uid,
		Guest:    c.s.pl.Cfg.Guest,
		Device:   dev,
	})
	if err != nil {
		return nil, err
	}
	return &VM{name: name, vm: vm, s: c.s}, nil
}
