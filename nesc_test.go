package nesc

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	sim := New(DefaultConfig())
	err := sim.Run(func(ctx *Ctx) error {
		if err := ctx.CreateImage("/tenant.img", 100, 8<<20, false); err != nil {
			return err
		}
		vm, err := ctx.StartVM("tenant", BackendNeSC, "/tenant.img", 100)
		if err != nil {
			return err
		}
		if vm.DiskSize() != 8<<20 {
			t.Errorf("disk size = %d", vm.DiskSize())
		}
		if vm.VFIndex() < 0 {
			t.Error("NeSC VM has no VF")
		}
		msg := []byte("self-virtualizing nested storage controller")
		if err := vm.WriteAt(ctx, msg, 4096); err != nil {
			return err
		}
		got := make([]byte, len(msg))
		if err := vm.ReadAt(ctx, got, 4096); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Error("VM raw round trip mismatch")
		}
		// The same bytes are visible in the backing host file.
		host := make([]byte, len(msg))
		if _, err := ctx.ReadHostFile("/tenant.img", host, 4096); err != nil {
			return err
		}
		if !bytes.Equal(host, msg) {
			t.Error("host view differs from guest view")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.VirtualTime == 0 {
		t.Error("no virtual time elapsed")
	}
	if st.MediumWriteBytes == 0 {
		t.Error("no medium traffic recorded")
	}
}

func TestAllBackendsThroughPublicAPI(t *testing.T) {
	for _, backend := range []Backend{BackendNeSC, BackendVirtio, BackendEmulation} {
		backend := backend
		t.Run(string(backend), func(t *testing.T) {
			sim := New(Config{MediumMB: 32})
			err := sim.Run(func(ctx *Ctx) error {
				if err := ctx.CreateImage("/d.img", 1, 4<<20, false); err != nil {
					return err
				}
				vm, err := ctx.StartVM("vm", backend, "/d.img", 1)
				if err != nil {
					return err
				}
				if vm.Backend() != backend {
					t.Errorf("backend = %q", vm.Backend())
				}
				data := bytes.Repeat([]byte{0xA5}, 10000)
				if err := vm.WriteAt(ctx, data, 12345); err != nil {
					return err
				}
				got := make([]byte, len(data))
				if err := vm.ReadAt(ctx, got, 12345); err != nil {
					return err
				}
				if !bytes.Equal(got, data) {
					t.Error("round trip mismatch")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPermissionEnforcement(t *testing.T) {
	sim := New(Config{MediumMB: 32})
	err := sim.Run(func(ctx *Ctx) error {
		if err := ctx.CreateImage("/alice.img", 100, 2<<20, false); err != nil {
			return err
		}
		if _, err := ctx.StartVM("mallory", BackendNeSC, "/alice.img", 200); err == nil {
			t.Error("foreign tenant obtained a VF for alice's image")
		}
		if _, err := ctx.StartVM("alice", BackendNeSC, "/alice.img", 100); err != nil {
			t.Errorf("owner denied: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGuestFilesystemLifecycle(t *testing.T) {
	simu := New(Config{MediumMB: 64})
	err := simu.Run(func(ctx *Ctx) error {
		if err := ctx.CreateImage("/g.img", 5, 16<<20, false); err != nil {
			return err
		}
		vm, err := ctx.StartVM("vm", BackendNeSC, "/g.img", 5)
		if err != nil {
			return err
		}
		gfs, err := vm.FormatFS(ctx)
		if err != nil {
			return err
		}
		if err := gfs.Mkdir(ctx, "/mail"); err != nil {
			return err
		}
		f, err := gfs.Create(ctx, "/mail/inbox")
		if err != nil {
			return err
		}
		payload := bytes.Repeat([]byte("msg "), 4096)
		if _, err := f.WriteAt(ctx, payload, 0); err != nil {
			return err
		}
		if err := f.Sync(ctx); err != nil {
			return err
		}
		if err := gfs.Check(ctx); err != nil {
			return err
		}
		vm.Stop(ctx)

		// Remount from a second VM.
		vm2, err := ctx.StartVM("vm2", BackendNeSC, "/g.img", 5)
		if err != nil {
			return err
		}
		gfs2, err := vm2.MountFS(ctx)
		if err != nil {
			return err
		}
		names, err := gfs2.List(ctx, "/mail")
		if err != nil {
			return err
		}
		if len(names) != 1 || names[0] != "inbox" {
			t.Errorf("guest dir listing = %v", names)
		}
		f2, err := gfs2.Open(ctx, "/mail/inbox")
		if err != nil {
			return err
		}
		got := make([]byte, len(payload))
		if _, err := f2.ReadAt(ctx, got, 0); err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Error("guest file lost across VM restart")
		}
		if err := gfs2.Remove(ctx, "/mail/inbox"); err != nil {
			return err
		}
		return gfs2.Check(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSparseImageLazyAllocation(t *testing.T) {
	sim := New(Config{MediumMB: 32})
	err := sim.Run(func(ctx *Ctx) error {
		if err := ctx.CreateImage("/sparse.img", 9, 4<<20, true); err != nil {
			return err
		}
		st, err := ctx.StatHost("/sparse.img")
		if err != nil {
			return err
		}
		if st.Extents != 0 {
			t.Errorf("sparse image has %d extents", st.Extents)
		}
		vm, err := ctx.StartVM("vm", BackendNeSC, "/sparse.img", 9)
		if err != nil {
			return err
		}
		if err := vm.WriteAt(ctx, []byte("first touch"), 1<<20); err != nil {
			return err
		}
		got := make([]byte, 11)
		if err := vm.ReadAt(ctx, got, 1<<20); err != nil {
			return err
		}
		if string(got) != "first touch" {
			t.Errorf("read back %q", got)
		}
		return ctx.CheckHostFS()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Stats().MissInterrupts == 0 {
		t.Error("no lazy-allocation miss interrupts observed")
	}
}

func TestConcurrentTenantsViaTasks(t *testing.T) {
	simu := New(Config{MediumMB: 64})
	err := simu.Run(func(ctx *Ctx) error {
		var tasks []*Task
		for i := 0; i < 3; i++ {
			uid := uint32(100 + i)
			path := "/t" + string(rune('0'+i)) + ".img"
			if err := ctx.CreateImage(path, uid, 4<<20, false); err != nil {
				return err
			}
			vm, err := ctx.StartVM(path, BackendNeSC, path, uid)
			if err != nil {
				return err
			}
			pattern := byte(i + 1)
			tasks = append(tasks, ctx.Go("tenant", func(tc *Ctx) error {
				data := bytes.Repeat([]byte{pattern}, 64<<10)
				if err := vm.WriteAt(tc, data, 0); err != nil {
					return err
				}
				got := make([]byte, len(data))
				if err := vm.ReadAt(tc, got, 0); err != nil {
					return err
				}
				if !bytes.Equal(got, data) {
					t.Errorf("tenant %d data corrupted", pattern)
				}
				return nil
			}))
		}
		for _, task := range tasks {
			if err := task.Wait(ctx); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if simu.Stats().BTLBHitRate == 0 {
		t.Error("BTLB never hit under sequential tenant I/O")
	}
}

func TestSharedImageAndMigration(t *testing.T) {
	simu := New(Config{MediumMB: 64})
	err := simu.Run(func(ctx *Ctx) error {
		if err := ctx.CreateImage("/shared.img", 0, 4<<20, false); err != nil {
			return err
		}
		vm1, err := ctx.StartVM("a", BackendNeSC, "/shared.img", 0)
		if err != nil {
			return err
		}
		vm2, err := ctx.StartVM("b", BackendNeSC, "/shared.img", 0)
		if err != nil {
			return err
		}
		// Shared file: one VM's write is the other's read.
		msg := []byte("shared extent tree")
		if err := vm1.WriteAt(ctx, msg, 0); err != nil {
			return err
		}
		got := make([]byte, len(msg))
		if err := vm2.ReadAt(ctx, got, 0); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Error("shared image not visible across VMs")
		}
		// Live migration of the backing blocks is transparent.
		if err := ctx.MigrateImage(vm1); err != nil {
			return err
		}
		if err := vm2.ReadAt(ctx, got, 0); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Error("data lost across block migration")
		}
		// QoS weight programming is accepted.
		vm1.SetIOWeight(ctx, 8)
		return ctx.CheckHostFS()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 13 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	want := map[string]bool{"fig2": false, "fig9": false, "fig10": false, "fig11": false, "fig12": false, "table1": false, "table2": false}
	for _, e := range exps {
		if _, ok := want[e.Name]; ok {
			want[e.Name] = true
		}
		if e.Title == "" {
			t.Errorf("experiment %s has no title", e.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("paper artifact %s not registered", name)
		}
	}
	if _, err := RunExperiment("definitely-not-an-experiment"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentTable2(t *testing.T) {
	out, err := RunExperiment("table2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Postmark", "OLTP", "SysBench", "dd"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad journal mode accepted")
		}
	}()
	New(Config{HostJournal: "quantum"})
}

func TestSnapshotClonePublicAPI(t *testing.T) {
	sim := New(DefaultConfig())
	err := sim.Run(func(ctx *Ctx) error {
		if err := ctx.CreateImage("/base.img", 100, 64<<10, false); err != nil {
			return err
		}
		vm, err := ctx.StartVM("base", BackendNeSC, "/base.img", 100)
		if err != nil {
			return err
		}
		seed := bytes.Repeat([]byte("golden image "), 512)
		if err := vm.WriteAt(ctx, seed, 0); err != nil {
			return err
		}

		// Snapshot the running VM, then fork a clone VM from it.
		if err := vm.Snapshot(ctx, "/base.snap", 100); err != nil {
			return err
		}
		if ctx.SharedBlocks() == 0 {
			t.Error("snapshot shares no blocks")
		}
		clone, err := ctx.CloneVM(vm, "fork", "/fork.img", 100)
		if err != nil {
			return err
		}

		// The clone reads the parent's snapshot-time bytes.
		got := make([]byte, len(seed))
		if err := clone.ReadAt(ctx, got, 0); err != nil {
			return err
		}
		if !bytes.Equal(got, seed) {
			t.Error("clone does not read the parent's image")
		}

		// Divergent writes stay private to each side.
		if err := vm.WriteAt(ctx, []byte("parent-only"), 0); err != nil {
			return err
		}
		if err := clone.WriteAt(ctx, []byte("clone-only"), 2048); err != nil {
			return err
		}
		if err := clone.ReadAt(ctx, got[:len("parent-only")], 0); err != nil {
			return err
		}
		if !bytes.Equal(got[:len("parent-only")], seed[:len("parent-only")]) {
			t.Error("parent write leaked into clone")
		}
		pget := make([]byte, len("clone-only"))
		if err := vm.ReadAt(ctx, pget, 2048); err != nil {
			return err
		}
		if !bytes.Equal(pget, seed[2048:2048+int64(len(pget))]) {
			t.Error("clone write leaked into parent")
		}

		// The pure snapshot file still holds the original image.
		host := make([]byte, len(seed))
		if _, err := ctx.ReadHostFile("/base.snap", host, 0); err != nil {
			return err
		}
		if !bytes.Equal(host, seed) {
			t.Error("snapshot drifted from snapshot-time bytes")
		}

		// Snapshot lifecycle: delete refuses on the exported clone image,
		// succeeds on the plain snapshot file.
		if err := ctx.DeleteSnapshot("/fork.img", 100); err == nil {
			t.Error("deleted an image still exported through a VF")
		}
		if err := ctx.DeleteSnapshot("/base.snap", 100); err != nil {
			return err
		}
		return ctx.CheckHostFS()
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.Snapshots < 2 || st.Clones != 1 {
		t.Errorf("Snapshots = %d, Clones = %d", st.Snapshots, st.Clones)
	}
	if st.CowFaults == 0 || st.CowBreaks == 0 || st.BTLBInvalidations == 0 {
		t.Errorf("CoW path unused: faults %d breaks %d inval %d",
			st.CowFaults, st.CowBreaks, st.BTLBInvalidations)
	}
}

// TestResetRacesSnapshotChurn hammers one VF with concurrent function-level
// resets, snapshot create/delete cycles, and foreground writes. The three
// must serialize cleanly: every snapshot call succeeds, no refcounts tear
// (SharedBlocks drains to zero), the host filesystem stays fsck-clean, and
// the last acknowledged write survives.
func TestResetRacesSnapshotChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DriverTimeout = 2 * time.Millisecond
	cfg.DriverRetryMax = 4
	sim := New(cfg)
	const rounds = 12
	err := sim.Run(func(ctx *Ctx) error {
		if err := ctx.CreateImage("/churn.img", 100, 256<<10, false); err != nil {
			return err
		}
		vm, err := ctx.StartVM("churn", BackendNeSC, "/churn.img", 100)
		if err != nil {
			return err
		}
		stripe := make([]byte, 8192)

		resetter := ctx.Go("resetter", func(c *Ctx) error {
			for i := 0; i < rounds; i++ {
				if err := vm.Reset(c); err != nil {
					return fmt.Errorf("reset %d: %w", i, err)
				}
				c.Sleep(30 * time.Microsecond)
			}
			return nil
		})
		snapper := ctx.Go("snapper", func(c *Ctx) error {
			for i := 0; i < rounds; i++ {
				if err := vm.Snapshot(c, "/churn.snap", 100); err != nil {
					return fmt.Errorf("snapshot %d: %w", i, err)
				}
				if err := c.DeleteSnapshot("/churn.snap", 100); err != nil {
					return fmt.Errorf("delete %d: %w", i, err)
				}
				c.Sleep(10 * time.Microsecond)
			}
			return nil
		})
		writer := ctx.Go("writer", func(c *Ctx) error {
			for i := 0; i < 2*rounds; i++ {
				stripePattern(stripe, 9, i)
				// In-flight writes may be aborted by a racing reset; the
				// stripes are idempotent, so retry until acknowledged.
				if err := writeStripe(c, vm, stripe, int64(i%4)*int64(len(stripe))); err != nil {
					return fmt.Errorf("write %d: %w", i, err)
				}
			}
			return nil
		})
		for _, tk := range []*Task{resetter, snapper, writer} {
			if err := tk.Wait(ctx); err != nil {
				return err
			}
		}

		// The churn must leave no shared blocks and a clean filesystem.
		if sb := ctx.SharedBlocks(); sb != 0 {
			return fmt.Errorf("churn left %d shared blocks", sb)
		}
		if err := ctx.CheckHostFS(); err != nil {
			return fmt.Errorf("fsck after churn: %w", err)
		}
		// The last acknowledged stripes survive reset and snapshot churn.
		got := make([]byte, len(stripe))
		for slot := 0; slot < 4; slot++ {
			last := 2*rounds - 4 + slot // final write to this slot
			stripePattern(stripe, 9, last)
			if err := readVerified(ctx, vm, stripe, got, int64(slot)*int64(len(stripe))); err != nil {
				return fmt.Errorf("read-back slot %d: %w", slot, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.VFResets != rounds {
		t.Errorf("VFResets = %d, want %d", st.VFResets, rounds)
	}
	if st.Snapshots != rounds {
		t.Errorf("Snapshots = %d, want %d", st.Snapshots, rounds)
	}
	if st.SharedBlocks != 0 {
		t.Errorf("SharedBlocks = %d after churn, want 0", st.SharedBlocks)
	}
}
