// Package nesc is a full-system simulation of NeSC, the self-virtualizing
// nested storage controller of Gottesman & Etsion (MICRO 2016).
//
// A Simulation assembles the complete platform — host memory, a PCIe fabric,
// the storage medium, the NeSC controller (physical function + virtual
// functions, per-VF extent trees, BTLB, out-of-band PF channel), and a
// QEMU/KVM-style hypervisor with an extent filesystem on the physical
// device. Guest VMs attach to virtual disks through any of the paper's three
// storage virtualization methods: direct assignment of a NeSC VF,
// virtio-blk, or full device emulation.
//
// Everything runs in deterministic virtual time on a discrete-event engine;
// data really moves (a byte written through a VF lands on the medium block
// the file's extent tree maps it to), so both performance and isolation
// properties are observable.
//
// # Quick start
//
//	sim := nesc.New(nesc.DefaultConfig())
//	err := sim.Run(func(ctx *nesc.Ctx) error {
//	    if err := ctx.CreateImage("/tenant.img", 100, 16<<20, false); err != nil {
//	        return err
//	    }
//	    vm, err := ctx.StartVM("tenant", nesc.BackendNeSC, "/tenant.img", 100)
//	    if err != nil {
//	        return err
//	    }
//	    return vm.WriteAt(ctx, []byte("hello"), 0)
//	})
//
// The experiment harness that regenerates the paper's tables and figures is
// exposed through Experiments and RunExperiment, and as the nescbench
// command.
package nesc

import (
	"fmt"
	"io"
	"strings"
	"time"

	"nesc/internal/bench"
	"nesc/internal/blockdev"
	"nesc/internal/extfs"
	"nesc/internal/fault"
	"nesc/internal/guest"
	"nesc/internal/hypervisor"
	"nesc/internal/metrics"
	"nesc/internal/ring"
	"nesc/internal/sim"
	"nesc/internal/slo"
	"nesc/internal/trace"
)

// Backend selects a storage virtualization method (paper Fig. 1).
type Backend string

// The three methods the paper compares.
const (
	BackendNeSC      Backend = "nesc"      // direct assignment of a NeSC VF
	BackendVirtio    Backend = "virtio"    // paravirtual virtio-blk
	BackendEmulation Backend = "emulation" // full device emulation
)

// Config sets the coarse platform knobs. Zero values take defaults; the
// full low-level cost model lives in the internal packages and is calibrated
// against the paper (see DESIGN.md and EXPERIMENTS.md).
type Config struct {
	// MediumMB is the storage medium size in MiB (default 128; the paper's
	// prototype carries 1024).
	MediumMB int
	// NumVFs is the maximum virtual-function count (default 64, as the
	// prototype).
	NumVFs int
	// BTLBEntries sizes the device's translation cache (default 8).
	BTLBEntries int
	// UseIOMMU enables DMA remapping; off (the prototype's mode), guests
	// bounce through trampoline buffers.
	UseIOMMU bool
	// HostJournal selects the host filesystem journal mode:
	// "none", "metadata" (default), or "full".
	HostJournal string
	// TraceEvents, when positive, keeps a ring of that many recent device
	// events (see Simulation.TraceDump).
	TraceEvents int
	// Metrics enables the platform metrics registry: per-stage latency
	// histograms keyed {vf, queue, op}, device/hypervisor counter gauges,
	// and derived gauges (BTLB hit rate, queue depths, DRR fairness, scrub
	// progress). Export with WriteMetrics (Prometheus text) or
	// WriteMetricsJSON. Instrumentation only reads the virtual clock, so
	// results are byte-identical with it on or off.
	Metrics bool
	// TraceSpans, when positive, records the last N request-scoped spans —
	// each request's timestamped walk through fetch, translate (BTLB
	// hit/walk/miss), transfer, and completion. Export with WriteTraceJSON
	// as a Chrome trace-event file loadable in Perfetto.
	TraceSpans int
	// Fault, when set, arms a seeded deterministic fault injector across the
	// medium, the PCIe fabric, and the hypervisor miss handler. The same plan
	// (same seed) always produces the identical fault sequence.
	Fault *FaultPlan
	// DriverTimeout bounds each ring-driver request attempt: on expiry the
	// driver polls the completion ring (recovering lost interrupts) and then
	// resubmits with exponential backoff, up to DriverRetryMax resubmissions
	// before surfacing ErrTimeout. Zero disables timeout recovery and
	// preserves the fault-free event schedule exactly.
	DriverTimeout time.Duration
	// DriverRetryMax is the per-request resubmission budget.
	DriverRetryMax int
	// DriverDeadline, when positive, programs each direct-assigned VF
	// queue's per-request deadline budget into the device (QRegDeadline):
	// a request the device cannot finish inside the budget is abandoned at
	// its next pipeline stage and completed with the retryable busy status,
	// which the driver retries with backoff (surfacing ErrBusy past the
	// retry budget). Zero (the default) programs nothing and preserves the
	// event schedule exactly.
	DriverDeadline time.Duration
	// AdmitInflight, when positive, bounds each VF's fetched-but-uncompleted
	// requests at the device: a descriptor fetched past the bound fast-fails
	// with the retryable busy status instead of queueing. Zero disables
	// admission control.
	AdmitInflight int
	// QueuesPerVF sets how many queue pairs each function exposes (default
	// 1, the paper's layout). Guests with a directly assigned VF run one
	// thin ring driver per queue behind a multi-queue mux; the device
	// round-robins fetch bandwidth across a function's queues underneath
	// the inter-VF QoS multiplexer.
	QueuesPerVF int
	// Scrub runs the hypervisor's background scrubber for the whole
	// simulation: paced full-device verify passes through the PF that
	// guard-check every block and rewrite-to-repair latent or corrupt
	// sectors. Verify traffic is serviced only when the device is otherwise
	// idle, so foreground latency is unaffected.
	Scrub bool
	// ScrubInterval paces the scrubber (default 200µs between requests).
	ScrubInterval time.Duration
	// DisableGuards turns off the medium's per-block guard-tag verification
	// (integrity-ablation knob). Corruption then flows past the device
	// undetected except by end-to-end PI.
	DisableGuards bool
	// DisablePI turns off end-to-end protection information in every ring
	// driver (integrity-ablation knob). Corruption on the DMA path then goes
	// entirely undetected.
	DisablePI bool
	// Devices sizes the NeSC fleet (default 1). Extra devices each carry
	// their own medium and controller on the shared PCIe fabric; mirrored
	// VMs (StartMirroredVM) replicate across them and legs migrate between
	// them (VM.Migrate). With Devices <= 1 the platform is byte-identical
	// to pre-fleet builds.
	Devices int

	// Attribution enables causal request attribution: every request carries
	// a controller-assigned id through the whole pipeline (and across fabric
	// legs), and its span segments fold into a per-{vf,op} latency budget
	// table — queue-wait / translate / dtu-wait / medium / fabric-wait /
	// retry / admission shares — with a p99 explainer that names the
	// component dominating tail requests. Export with WriteAttribution;
	// per-row totals also land in the metrics registry when Config.Metrics
	// is on. Attribution only reads the virtual clock: results are
	// byte-identical with it on or off.
	Attribution bool
	// SLO, when set, declares a default per-tenant service-level objective
	// every direct-assigned VF is tracked against: error-budget accounting
	// in virtual time plus multi-window burn-rate alerts that fire as
	// structured scoreboard events (override per VF with SetSLOObjective).
	// Nil disables the SLO engine entirely.
	SLO *SLOObjective
	// ScoreboardEvents, when positive, keeps a bounded ring of that many
	// structured anomaly events — SLO burns, budget exhaustions, detector
	// trips, quarantines, deadline expirations, admission rejects, FLRs,
	// request errors — cross-linked by request id to flight-recorder dumps.
	// Inspect with Anomalies, ScoreboardDump, or the nescctl -top snapshot.
	ScoreboardEvents int

	// CAS enables the content-addressed block tier: SealImage hashes an
	// image's blocks into a fleet-shared refcounted chunk store (a simulated
	// remote object tier with its own latency/bandwidth cost model and fault
	// sites), deduplicating against everything already sealed; ForkImage /
	// ForkImageOn clone a sealed image onto any fleet host as a metadata-only
	// copy whose chunks materialize lazily — on first guest touch — through
	// the device's translation-miss path, served from a per-device LRU chunk
	// cache or the remote tier. Off (the default), the platform is
	// byte-identical to pre-cas builds.
	CAS bool
	// CASCacheChunks sizes each device's local chunk cache in chunks
	// (default 64; requires CAS).
	CASCacheChunks int
}

// SLOObjective declares one tenant's service-level objective. Zero fields
// take the engine defaults (500µs target latency, 99% goal, 200µs/1ms
// alert windows, burn threshold 4, 8-sample floor).
type SLOObjective struct {
	// Latency is the per-request target: a request slower than this (or
	// failed) burns error budget.
	Latency time.Duration
	// Goal is the fraction of requests that must meet the target (0.99 =
	// "99% of requests under Latency").
	Goal float64
	// ShortWindow / LongWindow are the two burn-rate alert windows; an
	// alert fires only when BOTH windows burn above BurnThreshold.
	ShortWindow, LongWindow time.Duration
	// BurnThreshold is the burn-rate multiple (1 = exactly consuming budget
	// at the sustainable rate) both windows must exceed to fire.
	BurnThreshold float64
	// MinSamples is the short-window sample floor before alerts can fire.
	MinSamples int64
}

func (o *SLOObjective) internal() slo.Objective {
	if o == nil {
		return slo.DefaultObjective()
	}
	return slo.Objective{
		Latency:       sim.Time(o.Latency),
		Goal:          o.Goal,
		ShortWindow:   sim.Time(o.ShortWindow),
		LongWindow:    sim.Time(o.LongWindow),
		BurnThreshold: o.BurnThreshold,
		MinSamples:    o.MinSamples,
	}
}

// Fault-injection vocabulary, re-exported from the internal engine so plans
// can be written against the public API alone.
type (
	// FaultPlan is a complete, reproducible fault schedule.
	FaultPlan = fault.Plan
	// FaultSiteParams configures one injection site.
	FaultSiteParams = fault.SiteParams
	// FaultSite identifies one injection point.
	FaultSite = fault.Site
)

// Sentinel errors a guest I/O call can surface under fault injection.
var (
	// ErrTimeout reports a request that got no completion within the
	// driver's retry budget.
	ErrTimeout = guest.ErrTimeout
	// ErrReset reports a request aborted by a function-level reset.
	ErrReset = guest.ErrReset
	// ErrIntegrity reports a guard-tag mismatch that survived every retry —
	// detected corruption is never returned as clean data.
	ErrIntegrity = ring.ErrIntegrity
	// ErrBusy reports a request the device's admission control fast-failed
	// on every attempt (retryable: nothing was executed).
	ErrBusy = ring.ErrBusy
)

// FaultDegradation is a persistent fail-slow profile: a device whose
// operations still succeed but run chronically late (sustained slowdown
// factor and/or flat extra latency, optionally ramping in). Attach profiles
// to FaultPlan.Degradations or inject at runtime with Ctx.Degrade.
type FaultDegradation = fault.Degradation

// The injection sites.
const (
	FaultMediumRead  = fault.MediumRead  // transient medium read errors
	FaultMediumWrite = fault.MediumWrite // transient medium write errors
	FaultDMARead     = fault.DMARead     // device DMA reads rejected on the wire
	FaultDMAWrite    = fault.DMAWrite    // device DMA writes rejected on the wire
	FaultMSI         = fault.MSI         // interrupts dropped or delayed
	FaultMissHandler = fault.MissHandler // hypervisor lazy allocation fails

	// Silent-corruption sites: the operation succeeds but its payload is
	// bit-flipped, so only guard tags / PI can catch it.
	FaultMediumCorruptRead  = fault.MediumCorruptRead  // read returns flipped bytes (transient)
	FaultMediumCorruptWrite = fault.MediumCorruptWrite // write latches its sector corrupt
	FaultDMACorrupt         = fault.DMACorrupt         // payload flipped on the DMA path

	// Remote-tier sites of the content-addressed store (Config.CAS).
	FaultRemoteFetch = fault.RemoteFetch // chunk GETs fail transiently or run late
	FaultRemoteStore = fault.RemoteStore // chunk PUTs retry (idempotent) or run late
)

// DefaultConfig returns the calibrated platform.
func DefaultConfig() Config {
	return Config{MediumMB: 128, NumVFs: 64, BTLBEntries: 8, HostJournal: "metadata"}
}

// Simulation is one assembled platform.
type Simulation struct {
	pl  *bench.Platform
	cfg Config

	metrics *metrics.Registry
	spans   *trace.SpanRecorder
	attrib  *slo.Attributor
	sloEng  *slo.Engine
	board   *slo.Scoreboard
}

// New assembles a platform. The hypervisor is not booted until Run.
func New(cfg Config) *Simulation { return newSimulation(cfg, nil) }

// newSimulation assembles a platform, optionally adopting the surviving
// store of a crashed one (seed non-nil ⇒ Run remounts instead of formats).
func newSimulation(cfg Config, seed *blockdev.Store) *Simulation {
	def := DefaultConfig()
	if cfg.MediumMB <= 0 {
		cfg.MediumMB = def.MediumMB
	}
	if cfg.NumVFs <= 0 {
		cfg.NumVFs = def.NumVFs
	}
	if cfg.BTLBEntries == 0 {
		cfg.BTLBEntries = def.BTLBEntries
	}
	bcfg := bench.DefaultConfig()
	bcfg.MediumBlocks = int64(cfg.MediumMB) << 10 // MiB -> 1KB blocks
	bcfg.Core.NumVFs = cfg.NumVFs
	bcfg.Core.BTLBEntries = cfg.BTLBEntries
	if cfg.QueuesPerVF > 0 {
		bcfg.Core.QueuesPerVF = cfg.QueuesPerVF
	}
	bcfg.Hyp.UseIOMMU = cfg.UseIOMMU
	bcfg.Hyp.VFRequestTimeout = sim.Time(cfg.DriverTimeout)
	bcfg.Hyp.VFRetryMax = cfg.DriverRetryMax
	bcfg.Hyp.VFDeadline = sim.Time(cfg.DriverDeadline)
	bcfg.Core.AdmitInflight = cfg.AdmitInflight
	bcfg.Hyp.DisablePI = cfg.DisablePI
	bcfg.Fault = cfg.Fault
	bcfg.NumDevices = cfg.Devices
	bcfg.CAS = cfg.CAS
	bcfg.CASCacheChunks = cfg.CASCacheChunks
	bcfg.SeedStore = seed
	bcfg.MountExisting = seed != nil
	switch cfg.HostJournal {
	case "", "metadata":
		bcfg.HostFS.Mode = extfs.JournalMetadata
	case "none":
		bcfg.HostFS.Mode = extfs.JournalNone
	case "full":
		bcfg.HostFS.Mode = extfs.JournalFull
	default:
		panic(fmt.Sprintf("nesc: unknown journal mode %q", cfg.HostJournal))
	}
	var reg *metrics.Registry
	var spans *trace.SpanRecorder
	if cfg.Metrics {
		reg = metrics.New()
	}
	if cfg.TraceSpans > 0 {
		spans = trace.NewSpanRecorder(cfg.TraceSpans)
	}
	bcfg.Metrics = reg
	bcfg.Spans = spans
	var attrib *slo.Attributor
	var sloEng *slo.Engine
	var board *slo.Scoreboard
	if cfg.ScoreboardEvents > 0 {
		board = slo.NewScoreboard(cfg.ScoreboardEvents)
	}
	if cfg.Attribution {
		attrib = slo.NewAttributor(1024)
	}
	if cfg.SLO != nil {
		sloEng = slo.NewEngine(cfg.SLO.internal(), board)
	}
	bcfg.Attrib = attrib
	bcfg.SLOEng = sloEng
	bcfg.Board = board
	s := &Simulation{pl: bench.NewPlatform(bcfg), cfg: cfg, metrics: reg, spans: spans,
		attrib: attrib, sloEng: sloEng, board: board}
	if cfg.TraceEvents > 0 {
		s.pl.Ctl.Tracer = trace.NewRing(cfg.TraceEvents)
	}
	if cfg.DisableGuards {
		s.pl.Ctl.Medium.SetGuardCheck(false)
	}
	return s
}

// TraceDump renders the retained device events (requires Config.TraceEvents
// > 0), oldest first.
func (s *Simulation) TraceDump() string {
	var b strings.Builder
	if err := s.pl.Ctl.Tracer.Dump(&b); err != nil {
		return "trace: " + err.Error()
	}
	return b.String()
}

// TraceDumpVF renders the retained device events of one function (0 = PF,
// 1.. = VFs), oldest first — a single tenant's view of an interleaved
// multi-tenant trace. Requires Config.TraceEvents > 0.
func (s *Simulation) TraceDumpVF(fn int) string {
	var b strings.Builder
	if err := s.pl.Ctl.Tracer.DumpIf(&b, func(e trace.Event) bool { return e.Fn == fn }); err != nil {
		return "trace: " + err.Error()
	}
	return b.String()
}

// WriteMetrics exports the metrics registry in Prometheus text exposition
// format (requires Config.Metrics; no-op otherwise).
func (s *Simulation) WriteMetrics(w io.Writer) error { return s.metrics.WritePrometheus(w) }

// WriteMetricsJSON exports the metrics registry as a JSON snapshot
// (requires Config.Metrics; writes "[]" otherwise).
func (s *Simulation) WriteMetricsJSON(w io.Writer) error { return s.metrics.WriteJSON(w) }

// WriteTraceJSON exports the recorded request spans as a Chrome trace-event
// JSON document — load it at ui.perfetto.dev or chrome://tracing. One
// "process" track per function, one "thread" track per queue, request slices
// with their pipeline phases nested inside (requires Config.TraceSpans > 0;
// writes an empty but loadable trace otherwise).
func (s *Simulation) WriteTraceJSON(w io.Writer) error { return s.spans.WriteChromeTrace(w) }

// SpanCount reports how many request spans have been recorded in total.
func (s *Simulation) SpanCount() int64 {
	if s.spans == nil {
		return 0
	}
	return s.spans.Total
}

// FlightDump renders the device's flight recorder: for every terminal error
// completion or function-level reset, the event-ring tail and the offending
// request's span captured at the moment of failure. Always armed.
func (s *Simulation) FlightDump() string {
	var b strings.Builder
	if err := s.pl.Ctl.Flight.Dump(&b); err != nil {
		return "flight: " + err.Error()
	}
	return b.String()
}

// FlightRecords reports how many flight records have been captured (the
// value the PF's PFRegFlightRecords register exposes).
func (s *Simulation) FlightRecords() int64 {
	if s.pl.Ctl.Flight == nil {
		return 0
	}
	return s.pl.Ctl.Flight.Total
}

// Observability-layer views, re-exported from the internal engine so tools
// can be written against the public API alone (the FaultPlan idiom).
type (
	// AttributionRow is one per-{vf,op} latency budget-table row.
	AttributionRow = slo.Row
	// TailExplanation is one row's p99 explainer verdict: the segment whose
	// growth separates tail requests from the median, with request ids for
	// flight-recorder cross-links.
	TailExplanation = slo.Explanation
	// SLOVFStatus is one tracked tenant's live SLO state.
	SLOVFStatus = slo.Status
	// AnomalyEvent is one structured scoreboard event.
	AnomalyEvent = slo.Event
	// AnomalyKind tags an AnomalyEvent.
	AnomalyKind = slo.EventKind
)

// WriteAttribution exports the latency budget table as a JSON report: one
// object per {vf,op} row with per-segment nanosecond totals and shares,
// plus the p99 explainer's verdict (requires Config.Attribution; writes an
// empty array otherwise).
func (s *Simulation) WriteAttribution(w io.Writer) error { return s.attrib.WriteReport(w) }

// AttributionRows returns the latency budget table, sorted by {vf,op}
// (nil without Config.Attribution).
func (s *Simulation) AttributionRows() []AttributionRow { return s.attrib.Rows() }

// ExplainTail runs the p99 explainer for one budget-table row: it diffs the
// segment profile of the row's tail requests against its median band and
// names the dominant component. ok is false when the row is unknown or has
// too few profiled requests.
func (s *Simulation) ExplainTail(vf int, op string) (TailExplanation, bool) {
	return s.attrib.Explain(vf, op)
}

// SetSLOObjective overrides the declared objective for one VF (call before
// the VF completes its first request; requires Config.SLO).
func (s *Simulation) SetSLOObjective(vf int, obj SLOObjective) {
	s.sloEng.SetObjective(vf, obj.internal())
}

// SLOStatus reports every tracked tenant's live SLO state, sorted by VF
// (nil without Config.SLO).
func (s *Simulation) SLOStatus() []SLOVFStatus { return s.sloEng.Status() }

// Anomalies returns the scoreboard's retained events, oldest first (nil
// without Config.ScoreboardEvents).
func (s *Simulation) Anomalies() []AnomalyEvent { return s.board.Events() }

// ScoreboardDump renders the retained anomaly events human-readably.
func (s *Simulation) ScoreboardDump() string {
	var b strings.Builder
	if err := s.board.Dump(&b); err != nil {
		return "scoreboard: " + err.Error()
	}
	return b.String()
}

// WriteTop writes a one-shot health snapshot — virtual time, per-tenant SLO
// state, anomaly-event counts with the most recent events, and each
// budget-table row's tail verdict. It is the nescctl -top view; sections
// whose layer is off are omitted.
func (s *Simulation) WriteTop(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== nesc health snapshot at %v ===\n", time.Duration(s.pl.Eng.Now())); err != nil {
		return err
	}
	if sts := s.sloEng.Status(); len(sts) > 0 {
		fmt.Fprintf(w, "\nSLO (goal/budget/burn-short/burn-long/alerts):\n")
		for _, st := range sts {
			state := "ok"
			if st.Alerting {
				state = "ALERTING"
			}
			if st.ExhaustedAt > 0 {
				state = "EXHAUSTED"
			}
			fmt.Fprintf(w, "  vf=%-3d goal=%.3f budget=%5.1f%% burn=%6.2f/%-6.2f alerts=%-3d good=%d bad=%d %s\n",
				st.VF, st.Objective.Goal, 100*st.BudgetConsumed, st.BurnShort, st.BurnLong,
				st.Alerts, st.Good, st.Bad, state)
		}
	}
	if s.board.Total() > 0 {
		fmt.Fprintf(w, "\nanomaly scoreboard (%d events):\n", s.board.Total())
		evs := s.board.Events()
		if len(evs) > 10 {
			evs = evs[len(evs)-10:]
		}
		for _, ev := range evs {
			fmt.Fprintf(w, "  #%-4d %10dus %-16s dev=%d vf=%d req=%d %s\n",
				ev.Seq, int64(ev.At)/1000, ev.Kind.String(), ev.Dev, ev.VF, ev.ReqID, ev.Note)
		}
	}
	if exps := s.attrib.Explanations(); len(exps) > 0 {
		fmt.Fprintf(w, "\ntail attribution (p99 explainer):\n")
		for _, ex := range exps {
			fmt.Fprintf(w, "  vf=%-3d op=%-12s n=%-6d median=%-8v tail=%-8v dominant=%s (+%v, %2.0f%% of tail)\n",
				ex.VF, ex.Op, ex.Requests, time.Duration(ex.MedianNs), time.Duration(ex.TailNs),
				ex.Dominant, time.Duration(ex.DominantDeltaNs), 100*ex.DominantShare)
		}
	}
	if n := s.FlightRecords(); n > 0 {
		fmt.Fprintf(w, "\nflight records: %d (nescctl -flight for dumps)\n", n)
	}
	return nil
}

// Run boots the hypervisor and executes fn as the initial host process,
// driving virtual time until the system is quiescent. It may be called once
// per Simulation.
func (s *Simulation) Run(fn func(ctx *Ctx) error) error {
	return s.pl.Run(func(p *sim.Proc) error {
		if err := s.pl.Boot(p); err != nil {
			return err
		}
		s.startScrubber()
		err := fn(&Ctx{proc: p, s: s})
		s.pl.Hyp.StopScrubber()
		return err
	})
}

func (s *Simulation) startScrubber() {
	if s.cfg.Scrub {
		s.pl.Hyp.StartScrubber(hypervisor.ScrubConfig{Interval: sim.Time(s.cfg.ScrubInterval)})
	}
}

// ScrubReport summarizes one scrub pass.
type ScrubReport = hypervisor.ScrubReport

// Scrub synchronously verifies every block on the physical device through
// the PF, repairing any guard failures it finds.
func (c *Ctx) Scrub() ScrubReport { return c.s.pl.Hyp.ScrubPass(c.proc) }

// Degrade arms a fail-slow degradation of device dev starting now: every
// medium access multiplies its base latency by factor and adds extra,
// ramping to full strength over ramp (0 = step). The component keeps
// answering — just chronically late — which is exactly the gray failure the
// fabric's hedging and quarantine machinery mitigates. Requires a fault
// plan (Config.Fault; an empty plan suffices); without one this is a no-op.
func (c *Ctx) Degrade(dev int, factor float64, extra, ramp time.Duration) {
	c.s.pl.Inj.Degrade(fault.Degradation{
		Device: dev,
		Start:  c.proc.Now(),
		Ramp:   sim.Time(ramp),
		Factor: factor,
		Extra:  sim.Time(extra),
	})
}

// ClearDegradations drops every fail-slow profile targeting device dev (the
// component was replaced or recovered).
func (c *Ctx) ClearDegradations(dev int) { c.s.pl.Inj.ClearDegradations(dev) }

// CrashAt runs the workload like Run but cuts power at virtual time t: the
// simulation stops dead, in-flight requests, ring state, page cache and all.
// Only the medium's store survives, along with a write log recording every
// block write that reached it (for tearing off an un-persisted tail). The
// returned Crash restarts the platform against that surviving store.
//
// fn's error is deliberately discarded — a crashed workload did not finish,
// and half its in-flight calls would report timeouts anyway.
func (s *Simulation) CrashAt(t time.Duration, fn func(ctx *Ctx) error) *Crash {
	store := s.pl.Ctl.Medium.Store()
	store.EnableWriteLog()
	s.pl.RunUntil(sim.Time(t), func(p *sim.Proc) error {
		if err := s.pl.Boot(p); err != nil {
			return err
		}
		s.startScrubber()
		return fn(&Ctx{proc: p, s: s})
	})
	return &Crash{cfg: s.cfg, store: store}
}

// Crash is the durable wreckage of a simulation stopped by CrashAt.
type Crash struct {
	cfg   Config
	store *blockdev.Store
}

// WriteLogLen reports how many block writes reached the medium before the
// crash.
func (c *Crash) WriteLogLen() int { return c.store.WriteLogLen() }

// DropTail undoes the newest n block writes on the store, restoring each
// block's pre-image (data and guard tag). This models writes that were
// acknowledged by the simulated medium but had not yet left its volatile
// cache — the torn tail a power cut leaves behind. Returns how many writes
// were actually undone.
func (c *Crash) DropTail(n int) int { return c.store.Rollback(n) }

// VerifyGuards recomputes every block's guard tag against the stored one and
// returns the mismatching LBAs (nil when the medium is fully consistent).
func (c *Crash) VerifyGuards() []int64 { return c.store.VerifyGuards() }

// Restart assembles a fresh platform — new controller, new hypervisor, new
// guests, virtual time zero — around the surviving store. Its Run remounts
// the host filesystem, replaying the journal, instead of formatting. The
// original Config is reused; pass RestartWith a modified one to, say, drop
// the fault plan for the recovery phase.
func (c *Crash) Restart() *Simulation { return c.RestartWith(c.cfg) }

// RestartWith is Restart with a different platform configuration.
func (c *Crash) RestartWith(cfg Config) *Simulation { return newSimulation(cfg, c.store) }

// VerifyGuards recomputes every medium block's guard tag against the stored
// one and returns the mismatching LBAs (nil when fully consistent). This is
// the crash harness's whole-device integrity check; unlike Ctx.Scrub it is
// timeless and inspects the store directly.
func (s *Simulation) VerifyGuards() []int64 { return s.pl.Ctl.Medium.Store().VerifyGuards() }

// Ctx is the handle host-side code runs with: it carries the simulated
// process (for virtual time) and reaches the whole platform.
type Ctx struct {
	proc *sim.Proc
	s    *Simulation
}

// Now reports the current virtual time.
func (c *Ctx) Now() time.Duration { return time.Duration(c.proc.Now()) }

// Sleep advances virtual time for this process.
func (c *Ctx) Sleep(d time.Duration) { c.proc.Sleep(sim.Time(d)) }

// Go spawns a concurrent simulated process (e.g. one per tenant VM) and
// returns immediately; Wait on the returned handle joins it.
func (c *Ctx) Go(name string, fn func(ctx *Ctx) error) *Task {
	t := &Task{done: sim.NewSignal(c.proc.Engine())}
	c.proc.Engine().Go(name, func(p *sim.Proc) {
		t.err = fn(&Ctx{proc: p, s: c.s})
		t.done.Fire()
	})
	return t
}

// Task is a spawned simulated process.
type Task struct {
	done *sim.Signal
	err  error
}

// Wait blocks the calling context until the task finishes and returns its
// error.
func (t *Task) Wait(c *Ctx) error {
	t.done.Await(c.proc)
	return t.err
}

// Stats is a point-in-time snapshot of platform counters.
type Stats struct {
	// BTLBHitRate is the device translation cache hit rate.
	BTLBHitRate float64
	// BTLBHits / BTLBMisses are the raw lookup counts.
	BTLBHits, BTLBMisses int64
	// WalkNodeReads counts extent-tree node fetches by the device.
	WalkNodeReads int64
	// MissInterrupts counts hypervisor-serviced translation misses.
	MissInterrupts int64
	// MediumReadBytes / MediumWriteBytes count medium traffic.
	MediumReadBytes, MediumWriteBytes int64
	// DMAReadBytes / DMAWriteBytes count device-initiated PCIe traffic.
	DMAReadBytes, DMAWriteBytes int64
	// VirtualTime is the simulation clock.
	VirtualTime time.Duration

	// Fault-injection and recovery counters (all zero without a fault plan).

	// InjectedFaults is the total fault count across all injection sites.
	InjectedFaults int64
	// MediumErrors counts requests latched StatusMediumError after the DTU
	// exhausted its retries; MediumRetries counts the retries themselves.
	MediumErrors, MediumRetries int64
	// DMAFaultsInjected counts DMA transfers rejected by injection;
	// DroppedMSIs counts interrupts lost on the wire.
	DMAFaultsInjected, DroppedMSIs int64
	// FetchDrops / CplDrops count descriptor fetches and completion writes
	// the device dropped (observable, not silent).
	FetchDrops, CplDrops int64
	// DriverTimeouts counts request attempts that hit their deadline;
	// DriverResubmits counts requests reissued after a timeout or abort.
	DriverTimeouts, DriverResubmits int64
	// PolledCompletions counts completions recovered by ring polling;
	// StaleCompletions counts ring entries whose id had no waiter; SeqGaps
	// counts sequence numbers skipped over lost completion writes.
	PolledCompletions, StaleCompletions, SeqGaps int64
	// VFResets counts hypervisor-issued function-level resets; MissFaults
	// counts translation misses failed by injection.
	VFResets, MissFaults int64
	// BadRingWrites counts rejected ring-size programmings (zero or
	// non-power-of-two); BadDoorbells counts doorbell writes dropped as
	// incoherent (producer index further than one ring ahead of the
	// consumer, or rung on an inactive queue).
	BadRingWrites, BadDoorbells int64
	// LatentHits counts reads failed on latent bad sectors; LatentRepaired
	// counts latent sectors cleared by a successful rewrite.
	LatentHits, LatentRepaired int64

	// Data-integrity counters (the end-to-end guard-tag machinery).

	// IntegrityErrors counts corruptions that survived the device's retry
	// ladder (latched StatusIntegrityError) plus end-to-end PI failures the
	// device caught on writes; IntegrityRepairs counts corruptions healed by
	// a device retry or a scrub rewrite.
	IntegrityErrors, IntegrityRepairs int64
	// CorruptionsInjected totals silent payload corruptions inflicted by the
	// fault plan; CorruptionsDetected totals guard/PI detections across the
	// medium, the device, and the drivers. Detections can exceed injections
	// (one latched sector trips every read) — what must never happen is an
	// injection that shows up in neither CorruptionsDetected nor a repair.
	CorruptionsInjected, CorruptionsDetected int64
	// LatentOutstanding / CorruptOutstanding are the live latch counts —
	// sectors still bad right now. A completed scrub pass drives both to 0.
	LatentOutstanding, CorruptOutstanding int64
	// PIMismatches counts driver-detected read-guard mismatches (corruption
	// on the DMA path); PIWriteErrors counts StatusIntegrityError
	// completions the drivers observed.
	PIMismatches, PIWriteErrors int64
	// RootCauseOverrides counts failed requests that surfaced an earlier
	// attempt's integrity root cause instead of the final attempt's
	// timeout — detected corruption is never masked by retry exhaustion.
	RootCauseOverrides int64
	// MediumGuardErrors counts medium-level guard-check failures (each is a
	// detected corrupt read, pre-retry); RecoveryReads counts the slow
	// heroic-recovery reads the scrubber used to repair blocks.
	MediumGuardErrors, RecoveryReads int64
	// ScrubPasses / ScrubBlocks / ScrubRepairs summarize the background
	// scrubber; ScrubChunks counts verify chunks the device serviced.
	ScrubPasses, ScrubBlocks, ScrubRepairs, ScrubChunks int64

	// Gray-failure counters (all zero with fail-slow injection and its
	// mitigations off).

	// DegradedOps counts operations slowed by an armed fail-slow
	// degradation; DegradedTime is the total extra latency inflicted.
	DegradedOps  int64
	DegradedTime time.Duration
	// AdmitRejects counts requests the device's admission control
	// fast-failed busy; DeadlineExpirations counts chunks abandoned past
	// their deadline budget.
	AdmitRejects, DeadlineExpirations int64
	// BusyRejects counts busy completions observed by the ring drivers.
	BusyRejects int64
	// HedgedReads counts speculative second reads launched by mirror
	// clients; HedgeWins counts hedges that beat the primary leg.
	HedgedReads, HedgeWins int64
	// Quarantines / Rejoins count fail-slow legs held out of read steering
	// and readmitted; ProbeReads counts steering probes to slow legs.
	Quarantines, Rejoins, ProbeReads int64

	// Observability-layer counters (all zero with the layer off).

	// SLOAlerts counts multi-window burn-rate alerts fired across every
	// tracked tenant; AnomalyEvents counts structured scoreboard events
	// emitted (including ones the bounded ring has since overwritten).
	SLOAlerts, AnomalyEvents int64

	// Snapshot / clone counters (all zero until a snapshot is taken).

	// Snapshots counts snapshots captured (clones included); Clones counts
	// writable forks exported through fresh VFs.
	Snapshots, Clones int64
	// CowFaults counts guest writes the device trapped on write-protected
	// (shared) extents; CowBreaks counts the hypervisor-serviced share
	// breaks that resolved them.
	CowFaults, CowBreaks int64
	// BTLBInvalidations counts BTLB entries dropped by targeted
	// invalidation after CoW breaks.
	BTLBInvalidations int64
	// SharedBlocks is the live count of host data blocks shared between
	// images (blocks with extra references).
	SharedBlocks int64

	// Content-addressed tier counters (all zero with Config.CAS off).

	// CASSeals / CASForks / CASReleases count store operations: images
	// content-addressed, metadata-only clones taken, and images released.
	CASSeals, CASForks, CASReleases int64
	// CASDedupHits counts sealed blocks that matched an already-stored
	// chunk; CASChunksLive / CASBlocksLogical are the live population the
	// dedup ratio is computed from (logical blocks referenced vs unique
	// chunks stored).
	CASDedupHits, CASChunksLive, CASBlocksLogical int64
	// CASFetchMisses counts serviced fetch misses (first guest touches of
	// unmaterialized forked blocks); CASMaterializations counts the chunks
	// written into backing files by those services.
	CASFetchMisses, CASMaterializations int64
	// CASRemoteFetches / CASRemotePuts count remote-tier round trips;
	// CASRemoteRetries counts transient-fault retries across both;
	// CASRemoteFetchTime is the total virtual time spent waiting on GETs.
	CASRemoteFetches, CASRemotePuts, CASRemoteRetries int64
	CASRemoteFetchTime                                time.Duration
	// CASFetchFails counts fetches that exhausted the retry ladder;
	// CASHashMismatches counts payloads rejected by content verification
	// (the integrity ladder — corrupt chunks are never served).
	CASFetchFails, CASHashMismatches int64
	// CASCacheHits / CASCacheMisses / CASCacheEvictions / CASCacheResident
	// aggregate the per-device chunk caches.
	CASCacheHits, CASCacheMisses, CASCacheEvictions, CASCacheResident int64
}

// Stats snapshots the platform counters.
func (s *Simulation) Stats() Stats {
	ctl := s.pl.Ctl
	drv := s.pl.Hyp.RecoveryStats()
	var latentHits, latentRepaired int64
	var degradedOps int64
	var degradedTime time.Duration
	if inj := s.pl.Inj; inj != nil {
		latentHits, latentRepaired = inj.LatentHits, inj.LatentCleared
		degradedOps, degradedTime = inj.DegradedOps, time.Duration(inj.DegradedTime)
	}
	fab := s.pl.Hyp.FabricStatsNow()
	cst := s.pl.Hyp.CAS().Stats()
	ccs := s.pl.Hyp.CASCacheStatsNow()
	return Stats{
		BTLBHitRate:      ctl.BTLBStats.Rate(),
		BTLBHits:         ctl.BTLBStats.Hits,
		BTLBMisses:       ctl.BTLBStats.Misses,
		WalkNodeReads:    ctl.WalkNodeReads,
		MissInterrupts:   s.pl.Hyp.MissInterrupts,
		MediumReadBytes:  ctl.Medium.ReadBytes,
		MediumWriteBytes: ctl.Medium.WriteBytes,
		DMAReadBytes:     s.pl.Fab.DMAReadBytes,
		DMAWriteBytes:    s.pl.Fab.DMAWriteBytes,
		VirtualTime:      time.Duration(s.pl.Eng.Now()),

		InjectedFaults:    s.pl.Inj.TotalFaults(),
		MediumErrors:      ctl.MediumErrors,
		MediumRetries:     ctl.MediumRetries,
		DMAFaultsInjected: s.pl.Fab.DMAFaultsInjected,
		DroppedMSIs:       s.pl.Fab.DroppedMSIs,
		FetchDrops:        ctl.FetchDrops,
		CplDrops:          ctl.CplDrops,
		DriverTimeouts:    drv.Timeouts,
		DriverResubmits:   drv.Resubmits,
		PolledCompletions: drv.PolledCompletions,
		StaleCompletions:  drv.StaleCompletions,
		SeqGaps:           drv.SeqGaps,
		VFResets:          s.pl.Hyp.VFResets,
		MissFaults:        s.pl.Hyp.MissFaults,
		BadRingWrites:     ctl.BadRingSizes,
		BadDoorbells:      ctl.BadDoorbells,
		LatentHits:        latentHits,
		LatentRepaired:    latentRepaired,

		IntegrityErrors:     ctl.IntegrityErrors,
		IntegrityRepairs:    ctl.IntegrityRepairs,
		CorruptionsInjected: s.pl.Inj.CorruptionsInjected(),
		CorruptionsDetected: ctl.Medium.IntegrityErrors + drv.PIMismatches + drv.PIWriteErrors,
		LatentOutstanding:   int64(s.pl.Inj.LatentCount()),
		CorruptOutstanding:  int64(s.pl.Inj.CorruptCount()),
		PIMismatches:        drv.PIMismatches,
		PIWriteErrors:       drv.PIWriteErrors,
		RootCauseOverrides:  drv.RootCauseOverrides,
		MediumGuardErrors:   ctl.Medium.IntegrityErrors,
		RecoveryReads:       ctl.Medium.RecoveryReads,
		ScrubPasses:         s.pl.Hyp.ScrubPasses,
		ScrubBlocks:         s.pl.Hyp.ScrubBlocks,
		ScrubRepairs:        s.pl.Hyp.ScrubRepairs,
		ScrubChunks:         ctl.ScrubChunks,

		DegradedOps:         degradedOps,
		DegradedTime:        degradedTime,
		AdmitRejects:        ctl.AdmitRejects,
		DeadlineExpirations: ctl.DeadlineExpirations,
		BusyRejects:         drv.BusyRejects,
		HedgedReads:         fab.HedgedReads,
		HedgeWins:           fab.HedgeWins,
		Quarantines:         fab.Quarantines,
		Rejoins:             fab.Rejoins,
		ProbeReads:          fab.ProbeReads,
		SLOAlerts:           s.sloEng.TotalAlerts(),
		AnomalyEvents:       s.board.Total(),

		Snapshots:         s.pl.Hyp.Snapshots,
		Clones:            s.pl.Hyp.Clones,
		CowFaults:         ctl.CowFaults,
		CowBreaks:         s.pl.Hyp.CowBreaks,
		BTLBInvalidations: ctl.BTLBInvalidations,
		SharedBlocks:      s.pl.Hyp.HostFS.SharedBlocks(),

		CASSeals:            cst.Seals,
		CASForks:            cst.Forks,
		CASReleases:         cst.Releases,
		CASDedupHits:        cst.DedupHits,
		CASChunksLive:       cst.ChunksLive,
		CASBlocksLogical:    cst.BlocksLogical,
		CASFetchMisses:      s.pl.Hyp.CASFetchMisses,
		CASMaterializations: s.pl.Hyp.CASMaterializations,
		CASRemoteFetches:    cst.RemoteFetches,
		CASRemotePuts:       cst.RemotePuts,
		CASRemoteRetries:    cst.RemoteRetries,
		CASRemoteFetchTime:  time.Duration(cst.RemoteFetchTime),
		CASFetchFails:       cst.FetchFails,
		CASHashMismatches:   cst.HashMismatches,
		CASCacheHits:        ccs.Hits,
		CASCacheMisses:      ccs.Misses,
		CASCacheEvictions:   ccs.Evictions,
		CASCacheResident:    ccs.Resident,
	}
}

// FaultSummary renders the injector's per-site counters, one deterministic
// line per site — two runs with the same plan must produce identical
// summaries. Without a fault plan it reports "fault: no plan".
func (s *Simulation) FaultSummary() string { return s.pl.Inj.Summary() }
