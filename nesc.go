// Package nesc is a full-system simulation of NeSC, the self-virtualizing
// nested storage controller of Gottesman & Etsion (MICRO 2016).
//
// A Simulation assembles the complete platform — host memory, a PCIe fabric,
// the storage medium, the NeSC controller (physical function + virtual
// functions, per-VF extent trees, BTLB, out-of-band PF channel), and a
// QEMU/KVM-style hypervisor with an extent filesystem on the physical
// device. Guest VMs attach to virtual disks through any of the paper's three
// storage virtualization methods: direct assignment of a NeSC VF,
// virtio-blk, or full device emulation.
//
// Everything runs in deterministic virtual time on a discrete-event engine;
// data really moves (a byte written through a VF lands on the medium block
// the file's extent tree maps it to), so both performance and isolation
// properties are observable.
//
// # Quick start
//
//	sim := nesc.New(nesc.DefaultConfig())
//	err := sim.Run(func(ctx *nesc.Ctx) error {
//	    if err := ctx.CreateImage("/tenant.img", 100, 16<<20, false); err != nil {
//	        return err
//	    }
//	    vm, err := ctx.StartVM("tenant", nesc.BackendNeSC, "/tenant.img", 100)
//	    if err != nil {
//	        return err
//	    }
//	    return vm.WriteAt(ctx, []byte("hello"), 0)
//	})
//
// The experiment harness that regenerates the paper's tables and figures is
// exposed through Experiments and RunExperiment, and as the nescbench
// command.
package nesc

import (
	"fmt"
	"strings"
	"time"

	"nesc/internal/bench"
	"nesc/internal/extfs"
	"nesc/internal/fault"
	"nesc/internal/guest"
	"nesc/internal/sim"
	"nesc/internal/trace"
)

// Backend selects a storage virtualization method (paper Fig. 1).
type Backend string

// The three methods the paper compares.
const (
	BackendNeSC      Backend = "nesc"      // direct assignment of a NeSC VF
	BackendVirtio    Backend = "virtio"    // paravirtual virtio-blk
	BackendEmulation Backend = "emulation" // full device emulation
)

// Config sets the coarse platform knobs. Zero values take defaults; the
// full low-level cost model lives in the internal packages and is calibrated
// against the paper (see DESIGN.md and EXPERIMENTS.md).
type Config struct {
	// MediumMB is the storage medium size in MiB (default 128; the paper's
	// prototype carries 1024).
	MediumMB int
	// NumVFs is the maximum virtual-function count (default 64, as the
	// prototype).
	NumVFs int
	// BTLBEntries sizes the device's translation cache (default 8).
	BTLBEntries int
	// UseIOMMU enables DMA remapping; off (the prototype's mode), guests
	// bounce through trampoline buffers.
	UseIOMMU bool
	// HostJournal selects the host filesystem journal mode:
	// "none", "metadata" (default), or "full".
	HostJournal string
	// TraceEvents, when positive, keeps a ring of that many recent device
	// events (see Simulation.TraceDump).
	TraceEvents int
	// Fault, when set, arms a seeded deterministic fault injector across the
	// medium, the PCIe fabric, and the hypervisor miss handler. The same plan
	// (same seed) always produces the identical fault sequence.
	Fault *FaultPlan
	// DriverTimeout bounds each ring-driver request attempt: on expiry the
	// driver polls the completion ring (recovering lost interrupts) and then
	// resubmits with exponential backoff, up to DriverRetryMax resubmissions
	// before surfacing ErrTimeout. Zero disables timeout recovery and
	// preserves the fault-free event schedule exactly.
	DriverTimeout time.Duration
	// DriverRetryMax is the per-request resubmission budget.
	DriverRetryMax int
	// QueuesPerVF sets how many queue pairs each function exposes (default
	// 1, the paper's layout). Guests with a directly assigned VF run one
	// thin ring driver per queue behind a multi-queue mux; the device
	// round-robins fetch bandwidth across a function's queues underneath
	// the inter-VF QoS multiplexer.
	QueuesPerVF int
}

// Fault-injection vocabulary, re-exported from the internal engine so plans
// can be written against the public API alone.
type (
	// FaultPlan is a complete, reproducible fault schedule.
	FaultPlan = fault.Plan
	// FaultSiteParams configures one injection site.
	FaultSiteParams = fault.SiteParams
	// FaultSite identifies one injection point.
	FaultSite = fault.Site
)

// Sentinel errors a guest I/O call can surface under fault injection.
var (
	// ErrTimeout reports a request that got no completion within the
	// driver's retry budget.
	ErrTimeout = guest.ErrTimeout
	// ErrReset reports a request aborted by a function-level reset.
	ErrReset = guest.ErrReset
)

// The injection sites.
const (
	FaultMediumRead  = fault.MediumRead  // transient medium read errors
	FaultMediumWrite = fault.MediumWrite // transient medium write errors
	FaultDMARead     = fault.DMARead     // device DMA reads rejected on the wire
	FaultDMAWrite    = fault.DMAWrite    // device DMA writes rejected on the wire
	FaultMSI         = fault.MSI         // interrupts dropped or delayed
	FaultMissHandler = fault.MissHandler // hypervisor lazy allocation fails
)

// DefaultConfig returns the calibrated platform.
func DefaultConfig() Config {
	return Config{MediumMB: 128, NumVFs: 64, BTLBEntries: 8, HostJournal: "metadata"}
}

// Simulation is one assembled platform.
type Simulation struct {
	pl  *bench.Platform
	cfg Config
}

// New assembles a platform. The hypervisor is not booted until Run.
func New(cfg Config) *Simulation {
	def := DefaultConfig()
	if cfg.MediumMB <= 0 {
		cfg.MediumMB = def.MediumMB
	}
	if cfg.NumVFs <= 0 {
		cfg.NumVFs = def.NumVFs
	}
	if cfg.BTLBEntries == 0 {
		cfg.BTLBEntries = def.BTLBEntries
	}
	bcfg := bench.DefaultConfig()
	bcfg.MediumBlocks = int64(cfg.MediumMB) << 10 // MiB -> 1KB blocks
	bcfg.Core.NumVFs = cfg.NumVFs
	bcfg.Core.BTLBEntries = cfg.BTLBEntries
	if cfg.QueuesPerVF > 0 {
		bcfg.Core.QueuesPerVF = cfg.QueuesPerVF
	}
	bcfg.Hyp.UseIOMMU = cfg.UseIOMMU
	bcfg.Hyp.VFRequestTimeout = sim.Time(cfg.DriverTimeout)
	bcfg.Hyp.VFRetryMax = cfg.DriverRetryMax
	bcfg.Fault = cfg.Fault
	switch cfg.HostJournal {
	case "", "metadata":
		bcfg.HostFS.Mode = extfs.JournalMetadata
	case "none":
		bcfg.HostFS.Mode = extfs.JournalNone
	case "full":
		bcfg.HostFS.Mode = extfs.JournalFull
	default:
		panic(fmt.Sprintf("nesc: unknown journal mode %q", cfg.HostJournal))
	}
	s := &Simulation{pl: bench.NewPlatform(bcfg), cfg: cfg}
	if cfg.TraceEvents > 0 {
		s.pl.Ctl.Tracer = trace.NewRing(cfg.TraceEvents)
	}
	return s
}

// TraceDump renders the retained device events (requires Config.TraceEvents
// > 0), oldest first.
func (s *Simulation) TraceDump() string {
	var b strings.Builder
	if err := s.pl.Ctl.Tracer.Dump(&b); err != nil {
		return "trace: " + err.Error()
	}
	return b.String()
}

// Run boots the hypervisor and executes fn as the initial host process,
// driving virtual time until the system is quiescent. It may be called once
// per Simulation.
func (s *Simulation) Run(fn func(ctx *Ctx) error) error {
	return s.pl.Run(func(p *sim.Proc) error {
		if err := s.pl.Boot(p); err != nil {
			return err
		}
		return fn(&Ctx{proc: p, s: s})
	})
}

// Ctx is the handle host-side code runs with: it carries the simulated
// process (for virtual time) and reaches the whole platform.
type Ctx struct {
	proc *sim.Proc
	s    *Simulation
}

// Now reports the current virtual time.
func (c *Ctx) Now() time.Duration { return time.Duration(c.proc.Now()) }

// Sleep advances virtual time for this process.
func (c *Ctx) Sleep(d time.Duration) { c.proc.Sleep(sim.Time(d)) }

// Go spawns a concurrent simulated process (e.g. one per tenant VM) and
// returns immediately; Wait on the returned handle joins it.
func (c *Ctx) Go(name string, fn func(ctx *Ctx) error) *Task {
	t := &Task{done: sim.NewSignal(c.proc.Engine())}
	c.proc.Engine().Go(name, func(p *sim.Proc) {
		t.err = fn(&Ctx{proc: p, s: c.s})
		t.done.Fire()
	})
	return t
}

// Task is a spawned simulated process.
type Task struct {
	done *sim.Signal
	err  error
}

// Wait blocks the calling context until the task finishes and returns its
// error.
func (t *Task) Wait(c *Ctx) error {
	t.done.Await(c.proc)
	return t.err
}

// Stats is a point-in-time snapshot of platform counters.
type Stats struct {
	// BTLBHitRate is the device translation cache hit rate.
	BTLBHitRate float64
	// BTLBHits / BTLBMisses are the raw lookup counts.
	BTLBHits, BTLBMisses int64
	// WalkNodeReads counts extent-tree node fetches by the device.
	WalkNodeReads int64
	// MissInterrupts counts hypervisor-serviced translation misses.
	MissInterrupts int64
	// MediumReadBytes / MediumWriteBytes count medium traffic.
	MediumReadBytes, MediumWriteBytes int64
	// DMAReadBytes / DMAWriteBytes count device-initiated PCIe traffic.
	DMAReadBytes, DMAWriteBytes int64
	// VirtualTime is the simulation clock.
	VirtualTime time.Duration

	// Fault-injection and recovery counters (all zero without a fault plan).

	// InjectedFaults is the total fault count across all injection sites.
	InjectedFaults int64
	// MediumErrors counts requests latched StatusMediumError after the DTU
	// exhausted its retries; MediumRetries counts the retries themselves.
	MediumErrors, MediumRetries int64
	// DMAFaultsInjected counts DMA transfers rejected by injection;
	// DroppedMSIs counts interrupts lost on the wire.
	DMAFaultsInjected, DroppedMSIs int64
	// FetchDrops / CplDrops count descriptor fetches and completion writes
	// the device dropped (observable, not silent).
	FetchDrops, CplDrops int64
	// DriverTimeouts counts request attempts that hit their deadline;
	// DriverResubmits counts requests reissued after a timeout or abort.
	DriverTimeouts, DriverResubmits int64
	// PolledCompletions counts completions recovered by ring polling;
	// StaleCompletions counts ring entries whose id had no waiter; SeqGaps
	// counts sequence numbers skipped over lost completion writes.
	PolledCompletions, StaleCompletions, SeqGaps int64
	// VFResets counts hypervisor-issued function-level resets; MissFaults
	// counts translation misses failed by injection.
	VFResets, MissFaults int64
	// BadRingWrites counts rejected ring-size programmings (zero or
	// non-power-of-two); BadDoorbells counts doorbell writes dropped as
	// incoherent (producer index further than one ring ahead of the
	// consumer, or rung on an inactive queue).
	BadRingWrites, BadDoorbells int64
	// LatentHits counts reads failed on latent bad sectors; LatentRepaired
	// counts latent sectors cleared by a successful rewrite.
	LatentHits, LatentRepaired int64
}

// Stats snapshots the platform counters.
func (s *Simulation) Stats() Stats {
	ctl := s.pl.Ctl
	drv := s.pl.Hyp.RecoveryStats()
	var latentHits, latentRepaired int64
	if inj := s.pl.Inj; inj != nil {
		latentHits, latentRepaired = inj.LatentHits, inj.LatentCleared
	}
	return Stats{
		BTLBHitRate:      ctl.BTLBStats.Rate(),
		BTLBHits:         ctl.BTLBStats.Hits,
		BTLBMisses:       ctl.BTLBStats.Misses,
		WalkNodeReads:    ctl.WalkNodeReads,
		MissInterrupts:   s.pl.Hyp.MissInterrupts,
		MediumReadBytes:  ctl.Medium.ReadBytes,
		MediumWriteBytes: ctl.Medium.WriteBytes,
		DMAReadBytes:     s.pl.Fab.DMAReadBytes,
		DMAWriteBytes:    s.pl.Fab.DMAWriteBytes,
		VirtualTime:      time.Duration(s.pl.Eng.Now()),

		InjectedFaults:    s.pl.Inj.TotalFaults(),
		MediumErrors:      ctl.MediumErrors,
		MediumRetries:     ctl.MediumRetries,
		DMAFaultsInjected: s.pl.Fab.DMAFaultsInjected,
		DroppedMSIs:       s.pl.Fab.DroppedMSIs,
		FetchDrops:        ctl.FetchDrops,
		CplDrops:          ctl.CplDrops,
		DriverTimeouts:    drv.Timeouts,
		DriverResubmits:   drv.Resubmits,
		PolledCompletions: drv.PolledCompletions,
		StaleCompletions:  drv.StaleCompletions,
		SeqGaps:           drv.SeqGaps,
		VFResets:          s.pl.Hyp.VFResets,
		MissFaults:        s.pl.Hyp.MissFaults,
		BadRingWrites:     ctl.BadRingSizes,
		BadDoorbells:      ctl.BadDoorbells,
		LatentHits:        latentHits,
		LatentRepaired:    latentRepaired,
	}
}

// FaultSummary renders the injector's per-site counters, one deterministic
// line per site — two runs with the same plan must produce identical
// summaries. Without a fault plan it reports "fault: no plan".
func (s *Simulation) FaultSummary() string { return s.pl.Inj.Summary() }
