package nesc

import (
	"fmt"
	"io"

	"nesc/internal/extfs"
	"nesc/internal/hypervisor"
)

// VM is a running guest with a virtual disk.
type VM struct {
	name string
	vm   *hypervisor.VM
	s    *Simulation
}

func backendKind(b Backend) (hypervisor.BackendKind, error) {
	switch b {
	case BackendNeSC:
		return hypervisor.BackendDirect, nil
	case BackendVirtio:
		return hypervisor.BackendVirtio, nil
	case BackendEmulation:
		return hypervisor.BackendEmulation, nil
	default:
		return 0, fmt.Errorf("nesc: unknown backend %q", b)
	}
}

// StartVM launches a guest whose virtual disk is the host file at diskPath,
// attached through the chosen backend on behalf of tenant uid. For
// BackendNeSC the hypervisor checks the tenant's filesystem permissions,
// translates the file's extent map into a device extent tree, and assigns
// the resulting virtual function directly to the guest.
func (c *Ctx) StartVM(name string, backend Backend, diskPath string, uid uint32) (*VM, error) {
	kind, err := backendKind(backend)
	if err != nil {
		return nil, err
	}
	vm, err := c.s.pl.Hyp.NewVM(c.proc, name, hypervisor.VMConfig{
		Backend:  kind,
		DiskPath: diskPath,
		UID:      uid,
		Guest:    c.s.pl.Cfg.Guest,
	})
	if err != nil {
		return nil, err
	}
	return &VM{name: name, vm: vm, s: c.s}, nil
}

// StartRawVM launches a guest whose virtual disk is the raw physical device
// (the configuration of the paper's microbenchmarks: an identity-mapped VF
// for NeSC, the PF for virtio/emulation).
func (c *Ctx) StartRawVM(name string, backend Backend) (*VM, error) {
	kind, err := backendKind(backend)
	if err != nil {
		return nil, err
	}
	vm, err := c.s.pl.Hyp.NewVM(c.proc, name, hypervisor.VMConfig{
		Backend:   kind,
		RawDevice: true,
		Guest:     c.s.pl.Cfg.Guest,
	})
	if err != nil {
		return nil, err
	}
	return &VM{name: name, vm: vm, s: c.s}, nil
}

// Name reports the VM name.
func (vm *VM) Name() string { return vm.name }

// Backend reports the storage virtualization method in use.
func (vm *VM) Backend() Backend { return Backend(vm.vm.Kind.String()) }

// DiskSize reports the virtual disk size in bytes.
func (vm *VM) DiskSize() int64 {
	return vm.vm.Kernel.Drv.CapacityBlocks() * int64(vm.vm.Kernel.Drv.BlockSize())
}

// VFIndex reports the assigned virtual function (-1 for software backends).
func (vm *VM) VFIndex() int { return vm.vm.VFIdx }

// WriteAt writes p to the raw virtual disk at off, through the guest's full
// I/O stack and the backend's data path. The bytes genuinely land on the
// medium blocks the VF's extent tree maps.
func (vm *VM) WriteAt(c *Ctx, p []byte, off int64) error {
	return vm.vm.Kernel.WriteBytes(c.proc, off, p)
}

// ReadAt fills p from the raw virtual disk at off.
func (vm *VM) ReadAt(c *Ctx, p []byte, off int64) error {
	return vm.vm.Kernel.ReadBytes(c.proc, off, p)
}

// SetIOWeight programs the VM's QoS weight at the device (1..255): the NeSC
// DMA engine serves competing VFs in proportion to their weights (paper
// §IV-D). Only meaningful for BackendNeSC VMs.
func (vm *VM) SetIOWeight(c *Ctx, weight int) {
	if vm.vm.VFIdx >= 0 {
		vm.s.pl.Hyp.SetVFWeight(c.proc, vm.vm.VFIdx, weight)
	}
}

// Reset performs a function-level reset of the VM's virtual function: the
// device aborts and drains the function's in-flight work, and the guest
// driver re-arms its rings. Parked submitters see their requests aborted and
// either resubmit (with a driver timeout configured) or fail with ErrReset.
// Only meaningful for BackendNeSC VMs.
func (vm *VM) Reset(c *Ctx) error {
	if vm.vm.VFIdx < 0 {
		return fmt.Errorf("nesc: VM %q has no virtual function to reset", vm.name)
	}
	return vm.s.pl.Hyp.ResetVF(c.proc, vm.vm.VFIdx)
}

// Snapshot captures a copy-on-write snapshot of the VM's virtual disk at
// snapPath, owned by uid, while the VM keeps running. Unmodified blocks are
// shared; the guest's first write to each shared extent takes a device CoW
// fault that the hypervisor services transparently. Only meaningful for
// BackendNeSC VMs.
func (vm *VM) Snapshot(c *Ctx, snapPath string, uid uint32) error {
	if vm.vm.VFIdx < 0 {
		return fmt.Errorf("nesc: VM %q has no virtual function to snapshot", vm.name)
	}
	return vm.s.pl.Hyp.SnapshotVF(c.proc, vm.vm.VFIdx, snapPath, uid)
}

// CloneVM snapshots src's virtual disk to clonePath and boots a fresh guest
// on the snapshot — a writable fork that shares every unmodified block with
// the parent. Both VMs keep running; writes on either side trigger CoW
// breaks and never leak across.
func (c *Ctx) CloneVM(src *VM, name, clonePath string, uid uint32) (*VM, error) {
	if src.vm.VFIdx < 0 {
		return nil, fmt.Errorf("nesc: VM %q has no virtual function to clone", src.name)
	}
	if err := c.s.pl.Hyp.SnapshotVF(c.proc, src.vm.VFIdx, clonePath, uid); err != nil {
		return nil, err
	}
	c.s.pl.Hyp.Clones++
	return c.StartVM(name, BackendNeSC, clonePath, uid)
}

// Stop tears the VM down, releasing its virtual function (if any).
func (vm *VM) Stop(c *Ctx) { vm.vm.Teardown(c.proc) }

// GuestFS is a guest filesystem mounted inside the VM's virtual disk — the
// nested-filesystem configuration of paper §IV-D.
type GuestFS struct {
	fs *extfs.FS
	vm *VM
}

// FormatFS creates a fresh guest filesystem on the virtual disk.
func (vm *VM) FormatFS(c *Ctx) (*GuestFS, error) {
	fs, err := vm.vm.Kernel.Mount(c.proc, true, extfs.Params{
		InodeCount: 1024, JournalBlocks: 128, Mode: extfs.JournalMetadata,
	})
	if err != nil {
		return nil, err
	}
	return &GuestFS{fs: fs, vm: vm}, nil
}

// MountFS mounts an existing guest filesystem from the virtual disk.
func (vm *VM) MountFS(c *Ctx) (*GuestFS, error) {
	fs, err := vm.vm.Kernel.Mount(c.proc, false, extfs.Params{})
	if err != nil {
		return nil, err
	}
	return &GuestFS{fs: fs, vm: vm}, nil
}

// GuestFile is an open file inside a guest filesystem.
type GuestFile struct {
	f *extfs.File
}

// Create makes a new guest file.
func (g *GuestFS) Create(c *Ctx, path string) (*GuestFile, error) {
	f, err := g.fs.Create(c.proc, path, 0, 0o644)
	if err != nil {
		return nil, err
	}
	return &GuestFile{f: f}, nil
}

// Open opens an existing guest file for read/write.
func (g *GuestFS) Open(c *Ctx, path string) (*GuestFile, error) {
	f, err := g.fs.Open(c.proc, path, 0, extfs.PermRead|extfs.PermWrite)
	if err != nil {
		return nil, err
	}
	return &GuestFile{f: f}, nil
}

// Mkdir creates a guest directory.
func (g *GuestFS) Mkdir(c *Ctx, path string) error {
	return g.fs.Mkdir(c.proc, path, 0, 0o755)
}

// Remove unlinks a guest file or empty directory.
func (g *GuestFS) Remove(c *Ctx, path string) error {
	return g.fs.Remove(c.proc, path, 0)
}

// List names a guest directory's entries.
func (g *GuestFS) List(c *Ctx, dir string) ([]string, error) {
	ents, err := g.fs.ReadDir(c.proc, dir, 0)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name
	}
	return names, nil
}

// Check runs the guest filesystem's consistency check.
func (g *GuestFS) Check(c *Ctx) error { return g.fs.Check(c.proc) }

// WriteAt writes p at off.
func (f *GuestFile) WriteAt(c *Ctx, p []byte, off int64) (int, error) {
	return f.f.WriteAt(c.proc, p, off)
}

// ReadAt reads into p at off; short reads at EOF return the count with a
// nil error.
func (f *GuestFile) ReadAt(c *Ctx, p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(c.proc, p, off)
	if err == io.EOF {
		err = nil
	}
	return n, err
}

// Size reports the file size.
func (f *GuestFile) Size() int64 { return int64(f.f.Size()) }

// Sync flushes the file (fsync).
func (f *GuestFile) Sync(c *Ctx) error { return f.f.Sync(c.proc) }
