// QoS: the §IV-D extension — the hypervisor programs per-VF weights and the
// NeSC DMA engine divides device bandwidth accordingly. Two tenants hammer
// the device; the demo runs once with equal weights and once at 4:1.
package main

import (
	"fmt"
	"log"
	"time"

	"nesc"
)

func run(weights [2]int) ([2]float64, error) {
	sim := nesc.New(nesc.Config{MediumMB: 128})
	var bw [2]float64
	err := sim.Run(func(ctx *nesc.Ctx) error {
		var vms [2]*nesc.VM
		for i := 0; i < 2; i++ {
			path := fmt.Sprintf("/t%d.img", i)
			if err := ctx.CreateImage(path, uint32(i+1), 16<<20, false); err != nil {
				return err
			}
			vm, err := ctx.StartVM(path, nesc.BackendNeSC, path, uint32(i+1))
			if err != nil {
				return err
			}
			vm.SetIOWeight(ctx, weights[i])
			vms[i] = vm
		}
		stop := false
		var bytes [2]int64
		var tasks []*nesc.Task
		for i := 0; i < 2; i++ {
			i := i
			tasks = append(tasks, ctx.Go("load", func(tc *nesc.Ctx) error {
				chunk := make([]byte, 64<<10)
				var off int64
				for !stop {
					if err := vms[i].WriteAt(tc, chunk, off%(12<<20)); err != nil {
						return err
					}
					off += int64(len(chunk))
					bytes[i] += int64(len(chunk))
				}
				return nil
			}))
		}
		const warmup, window = 2 * time.Millisecond, 10 * time.Millisecond
		ctx.Sleep(warmup)
		var base [2]int64
		base[0], base[1] = bytes[0], bytes[1]
		ctx.Sleep(window)
		for i := 0; i < 2; i++ {
			bw[i] = float64(bytes[i]-base[i]) / 1e6 / window.Seconds()
		}
		stop = true
		for _, t := range tasks {
			if err := t.Wait(ctx); err != nil {
				return err
			}
		}
		return nil
	})
	return bw, err
}

func main() {
	for _, weights := range [][2]int{{1, 1}, {4, 1}} {
		bw, err := run(weights)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("weights %d:%d -> tenant0 %.0f MB/s, tenant1 %.0f MB/s (ratio %.2f)\n",
			weights[0], weights[1], bw[0], bw[1], bw[0]/bw[1])
	}
	fmt.Println("the DMA engine's deficit-round-robin scheduler is work-conserving:")
	fmt.Println("unused high-priority bandwidth flows to the low-priority tenant")
}
