// Accelerator: the extension sketched in paper §IV-D — "direct storage
// accesses from accelerators". A virtual function is a real PCIe endpoint,
// so a peer device (a GPU, an FPGA) can drive it directly with device-to-
// device DMA and keep the CPU entirely out of the storage path.
//
// This example dips below the public API into the internal packages, because
// it models a second PCIe device rather than a guest OS: an "accelerator"
// that owns a VF's register page, submits requests from its own on-card
// queue logic, and DMAs data without any guest kernel or hypervisor
// involvement on the data path.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nesc/internal/bench"
	"nesc/internal/guest"
	"nesc/internal/sim"
)

func main() {
	cfg := bench.DefaultConfig()
	pl := bench.NewPlatform(cfg)
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		// The hypervisor prepares a dataset file and exports it as a VF,
		// exactly as it would for a VM.
		if err := pl.MkImage(p, "/dataset.bin", 7, 16*1024, false); err != nil {
			return err
		}
		f, err := pl.Hyp.HostFS.Open(p, "/dataset.bin", 7, 6)
		if err != nil {
			return err
		}
		sample := bytes.Repeat([]byte("weights "), 512<<10/8)
		if _, err := f.WriteAt(p, sample, 0); err != nil {
			return err
		}
		vfIdx, err := pl.Hyp.CreateVF(p, "/dataset.bin", 7)
		if err != nil {
			return err
		}
		fmt.Printf("dataset exported as VF %d\n", vfIdx)

		// The accelerator: a PCIe peer with its own ring client. It programs
		// the VF's registers itself and DMAs storage blocks straight into
		// its buffer — offset 0 of the VF is offset 0 of the file.
		accelFn := pl.Fab.RegisterFunction("accelerator")
		mq, err := guest.NewMultiQueue(p, pl.Eng, pl.Mem, pl.Fab,
			pl.Hyp.VFPageBus(vfIdx), 1, 64, 300*sim.Nanosecond)
		if err != nil {
			return err
		}
		qp := mq.Queue(0)
		// Route the VF's completion interrupts to the accelerator's queue
		// logic (on real hardware the MSI would target the peer device).
		pl.Hyp.RouteVFInterrupts(vfIdx, mq)

		// On-card staging buffer (in host memory for this model).
		const chunk = 64 << 10
		bufAddr := pl.Mem.MustAlloc(chunk, 4096)
		start := p.Now()
		var streamed int64
		for off := int64(0); off < 512<<10; off += chunk {
			st, err := qp.Submit(p, 1 /* read */, uint64(off/1024), chunk/1024, bufAddr)
			if err != nil {
				return err
			}
			if err := guest.StatusError(st); err != nil {
				return err
			}
			streamed += chunk
		}
		elapsed := p.Now() - start
		got, err := pl.Mem.Slice(bufAddr, 8)
		if err != nil {
			return err
		}
		fmt.Printf("accelerator streamed %d KB in %v (%.0f MB/s), first bytes %q\n",
			streamed>>10, elapsed, float64(streamed)/1e6/elapsed.Seconds(), got)
		fmt.Printf("CPU involvement on the data path: none — %d accelerator-initiated DMAs, fn %d\n",
			qp.Submitted, accelFn)
		fmt.Println("isolation still holds: the accelerator can only reach the dataset's blocks")
		// Reading past the VF's device size fails in hardware.
		st, err := qp.Submit(p, 1, 1<<30, 1, bufAddr)
		if err != nil {
			return err
		}
		if guest.StatusError(st) == nil {
			return fmt.Errorf("out-of-range accelerator access succeeded")
		}
		fmt.Println("out-of-range access rejected by the device")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
