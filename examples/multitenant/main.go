// Multitenant: several tenant VMs share one NeSC device concurrently. The
// example demonstrates the paper's core claims: per-file isolation enforced
// by the hardware extent trees (a tenant can only reach its own file's
// blocks, and cannot even create a VF for a foreign file), and round-robin
// multiplexing keeping service fair under contention.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"nesc"
)

func main() {
	sim := nesc.New(nesc.Config{MediumMB: 128})
	err := sim.Run(func(ctx *nesc.Ctx) error {
		const tenants = 4
		type tenant struct {
			uid  uint32
			path string
			vm   *nesc.VM
		}
		var ts []*tenant
		for i := 0; i < tenants; i++ {
			t := &tenant{
				uid:  uint32(100 + i),
				path: fmt.Sprintf("/tenant%d.img", i),
			}
			if err := ctx.CreateImage(t.path, t.uid, 8<<20, false); err != nil {
				return err
			}
			vm, err := ctx.StartVM(fmt.Sprintf("vm%d", i), nesc.BackendNeSC, t.path, t.uid)
			if err != nil {
				return err
			}
			t.vm = vm
			ts = append(ts, t)
			fmt.Printf("tenant %d: %s -> VF %d\n", t.uid, t.path, vm.VFIndex())
		}

		// Isolation at the control plane: tenant 0 cannot map tenant 1's
		// image.
		if _, err := ctx.StartVM("intruder", nesc.BackendNeSC, ts[1].path, ts[0].uid); err != nil {
			fmt.Printf("control-plane isolation: VF creation for a foreign file denied (%v)\n", err)
		} else {
			return fmt.Errorf("isolation failure: foreign VF created")
		}

		// Concurrent load: every tenant writes its own pattern, then reads
		// it back while the others hammer the device.
		var tasks []*nesc.Task
		done := make([]time.Duration, tenants)
		for i, t := range ts {
			i, t := i, t
			tasks = append(tasks, ctx.Go(t.path, func(tc *nesc.Ctx) error {
				start := tc.Now()
				pattern := bytes.Repeat([]byte{byte(0x10 + i)}, 256<<10)
				for off := int64(0); off < 4<<20; off += int64(len(pattern)) {
					if err := t.vm.WriteAt(tc, pattern, off); err != nil {
						return err
					}
				}
				got := make([]byte, len(pattern))
				for off := int64(0); off < 4<<20; off += int64(len(pattern)) {
					if err := t.vm.ReadAt(tc, got, off); err != nil {
						return err
					}
					if !bytes.Equal(got, pattern) {
						return fmt.Errorf("tenant %d: data corrupted at %d", i, off)
					}
				}
				done[i] = tc.Now() - start
				return nil
			}))
		}
		for _, task := range tasks {
			if err := task.Wait(ctx); err != nil {
				return err
			}
		}
		fmt.Println("data-plane isolation: every tenant read back exactly its own pattern")
		minD, maxD := done[0], done[0]
		for _, d := range done {
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
		fmt.Printf("round-robin fairness: per-tenant runtime %v .. %v (max/min %.2f)\n",
			minD, maxD, float64(maxD)/float64(minD))

		// Host filesystem is still consistent after all of it.
		if err := ctx.CheckHostFS(); err != nil {
			return err
		}
		fmt.Println("host filesystem check: clean")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sim.Stats()
	fmt.Printf("device: %.0f%% BTLB hit rate, %d MB written to the medium\n",
		st.BTLBHitRate*100, st.MediumWriteBytes>>20)
}
