// Quickstart: boot the simulated NeSC platform, export a host file as a
// virtual function, attach a VM to it, and do real I/O — the minimal
// end-to-end flow of the paper's Figure 3.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nesc"
)

func main() {
	sim := nesc.New(nesc.DefaultConfig())
	err := sim.Run(func(ctx *nesc.Ctx) error {
		// The hypervisor creates a tenant disk image on its own filesystem
		// (which lives on the NeSC physical function).
		const tenant = 100
		if err := ctx.CreateImage("/tenant.img", tenant, 16<<20, false); err != nil {
			return err
		}

		// Exporting the file as a VF checks the tenant's permissions,
		// translates the file's extent map into a device extent tree, and
		// directly assigns the VF to the new VM — no hypervisor on the data
		// path from here on.
		vm, err := ctx.StartVM("tenant-vm", nesc.BackendNeSC, "/tenant.img", tenant)
		if err != nil {
			return err
		}
		fmt.Printf("VM %q attached to VF %d, virtual disk %d MB\n",
			vm.Name(), vm.VFIndex(), vm.DiskSize()>>20)

		// Guest I/O: the device translates vLBAs through the extent tree
		// and moves the bytes to the mapped physical blocks.
		msg := []byte("hello from a self-virtualizing storage controller")
		if err := vm.WriteAt(ctx, msg, 4096); err != nil {
			return err
		}
		got := make([]byte, len(msg))
		if err := vm.ReadAt(ctx, got, 4096); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			return fmt.Errorf("round trip mismatch")
		}
		fmt.Printf("guest read back: %q\n", got)

		// The hypervisor sees the same bytes through its filesystem —
		// it is the same physical storage, protected by the extent tree.
		host := make([]byte, len(msg))
		if _, err := ctx.ReadHostFile("/tenant.img", host, 4096); err != nil {
			return err
		}
		fmt.Printf("host reads the same file: %q\n", host)
		fmt.Printf("virtual time elapsed: %v\n", ctx.Now())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sim.Stats()
	fmt.Printf("device stats: BTLB hit rate %.2f, %d tree-node fetches, %d medium bytes written\n",
		st.BTLBHitRate, st.WalkNodeReads, st.MediumWriteBytes)
}
