// Nestedfs: a guest filesystem inside a NeSC virtual disk — the nested
// filesystem configuration of paper §IV-D. The example shows the guest
// managing its own files while the hypervisor's filesystem only sees one
// image file, and compares the journaling traffic of the nested-journaling
// modes the paper discusses (the host journals its own metadata only; the
// guest independently chooses how much to journal).
package main

import (
	"fmt"
	"log"

	"nesc"
)

func main() {
	sim := nesc.New(nesc.Config{MediumMB: 128, HostJournal: "metadata"})
	err := sim.Run(func(ctx *nesc.Ctx) error {
		const tenant = 42
		if err := ctx.CreateImage("/nested.img", tenant, 32<<20, false); err != nil {
			return err
		}
		vm, err := ctx.StartVM("nested", nesc.BackendNeSC, "/nested.img", tenant)
		if err != nil {
			return err
		}
		gfs, err := vm.FormatFS(ctx)
		if err != nil {
			return err
		}
		fmt.Println("guest formatted its own extent filesystem inside the VF")

		// A small mail-spool-like tree inside the guest.
		if err := gfs.Mkdir(ctx, "/spool"); err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			f, err := gfs.Create(ctx, fmt.Sprintf("/spool/msg%02d", i))
			if err != nil {
				return err
			}
			body := make([]byte, 3000+i*512)
			for j := range body {
				body[j] = byte(i)
			}
			if _, err := f.WriteAt(ctx, body, 0); err != nil {
				return err
			}
		}
		names, err := gfs.List(ctx, "/spool")
		if err != nil {
			return err
		}
		fmt.Printf("guest /spool holds %d files; the host sees only /nested.img\n", len(names))
		hostNames, err := ctx.HostList("/")
		if err != nil {
			return err
		}
		fmt.Printf("host / holds: %v\n", hostNames)
		if err := gfs.Check(ctx); err != nil {
			return err
		}
		if err := ctx.CheckHostFS(); err != nil {
			return err
		}
		fmt.Println("both filesystems check clean: guest data integrity is the guest's business,")
		fmt.Println("host metadata integrity is the host's — the nested-journaling split of §IV-D")

		// Restart the VM and prove the nested filesystem is durable.
		vm.Stop(ctx)
		vm2, err := ctx.StartVM("nested-2", nesc.BackendNeSC, "/nested.img", tenant)
		if err != nil {
			return err
		}
		gfs2, err := vm2.MountFS(ctx)
		if err != nil {
			return err
		}
		f, err := gfs2.Open(ctx, "/spool/msg03")
		if err != nil {
			return err
		}
		probe := make([]byte, 16)
		if _, err := f.ReadAt(ctx, probe, 0); err != nil {
			return err
		}
		if probe[0] != 3 {
			return fmt.Errorf("nested file content lost across VM restart")
		}
		fmt.Println("second VM remounted the same image and read the same spool")
		fmt.Printf("virtual time: %v\n", ctx.Now())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
