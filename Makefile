GO ?= go

.PHONY: tier1 ci vet fmt-check build test race race-full chaos crash bench fabric-det scale-det grayfail-det slo-det profile

# tier1 is the seed acceptance gate: everything must build and pass.
tier1: build test

# ci is the full hygiene gate. The race run uses -short so the full-size
# chaos soak (seconds of virtual time, minutes under the race detector)
# stays out of the fast path; run `make chaos` for the big one. crash runs
# the full 64-point crash-recovery harness plus the exhaustive journal
# crash-point sweep; test runs the whole suite without the race detector
# (including the long tests -short skips, e.g. the golden experiment run).
ci: vet fmt-check build test race crash fabric-det scale-det grayfail-det slo-det

vet:
	$(GO) vet ./...

# fmt-check fails when any tracked Go file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# race-full is the tier-2 race gate: the entire suite (golden experiment run
# included) under the race detector. Slow; not part of ci.
race-full:
	$(GO) test -race ./...

# chaos runs the full-size chaos soaks (loud faults and silent-corruption
# injection, each with a same-seed determinism replay).
chaos:
	$(GO) test -run TestChaosSoak -v .

# crash runs the crash-recovery harness (64 seeded power-cut points over the
# public API) and the exhaustive extfs journal crash-point sweep.
crash:
	$(GO) test -run 'TestCrash' -v .
	$(GO) test -run 'TestJournalCrashSweep' -v ./internal/extfs

bench:
	$(GO) test -bench=. -benchmem ./...

# fabric-det regenerates the fabric experiment twice in separate processes
# and fails unless both runs and the checked-in results/fabric.json are
# byte-identical (same seed => identical simulation).
fabric-det:
	@rm -rf .fabric-det && mkdir -p .fabric-det/a .fabric-det/b
	@$(GO) run ./cmd/nescbench -exp fabric -json .fabric-det/a > /dev/null
	@$(GO) run ./cmd/nescbench -exp fabric -json .fabric-det/b > /dev/null
	@cmp .fabric-det/a/fabric.json .fabric-det/b/fabric.json
	@cmp .fabric-det/a/fabric.json results/fabric.json
	@rm -rf .fabric-det
	@echo "results/fabric.json is deterministic and current"

# grayfail-det does the same for the gray-failure experiment: hedged reads,
# quarantine, roaming fail-slow pulses, and busy-shedding admission control
# must all replay bit-identically from the same seed.
grayfail-det:
	@rm -rf .grayfail-det && mkdir -p .grayfail-det/a .grayfail-det/b
	@$(GO) run ./cmd/nescbench -exp grayfail -json .grayfail-det/a > /dev/null
	@$(GO) run ./cmd/nescbench -exp grayfail -json .grayfail-det/b > /dev/null
	@cmp .grayfail-det/a/grayfail.json .grayfail-det/b/grayfail.json
	@cmp .grayfail-det/a/grayfail.json results/grayfail.json
	@rm -rf .grayfail-det
	@echo "results/grayfail.json is deterministic and current"

# slo-det does the same for the observability experiment: attribution
# tables, the p99 explainer's verdicts, burn-alert timing, and scoreboard
# counts must all replay bit-identically from the same seed.
slo-det:
	@rm -rf .slo-det && mkdir -p .slo-det/a .slo-det/b
	@$(GO) run ./cmd/nescbench -exp slo -json .slo-det/a > /dev/null
	@$(GO) run ./cmd/nescbench -exp slo -json .slo-det/b > /dev/null
	@cmp .slo-det/a/slo.json .slo-det/b/slo.json
	@cmp .slo-det/a/slo.json results/slo.json
	@rm -rf .slo-det
	@echo "results/slo.json is deterministic and current"

# profile is the tier-2 attribution report: run every experiment with the
# causal-attribution layer armed and emit the per-{vf,op} latency budget
# table plus p99 explainer verdicts as results/attribution.json.
profile:
	$(GO) run ./cmd/nescbench -exp all -attrib results/attribution.json > /dev/null
	@echo "wrote results/attribution.json"

# scale-det does the same for the massive-tenancy scale experiment: two
# fresh processes must produce byte-identical output matching the checked-in
# results/scale.json.
scale-det:
	@rm -rf .scale-det && mkdir -p .scale-det/a .scale-det/b
	@$(GO) run ./cmd/nescbench -exp scale -json .scale-det/a > /dev/null
	@$(GO) run ./cmd/nescbench -exp scale -json .scale-det/b > /dev/null
	@cmp .scale-det/a/scale.json .scale-det/b/scale.json
	@cmp .scale-det/a/scale.json results/scale.json
	@rm -rf .scale-det
	@echo "results/scale.json is deterministic and current"
