GO ?= go

.PHONY: tier1 ci vet fmt-check build test race chaos bench

# tier1 is the seed acceptance gate: everything must build and pass.
tier1: build test

# ci is the full hygiene gate. The race run uses -short so the full-size
# chaos soak (seconds of virtual time, minutes under the race detector)
# stays out of the fast path; run `make chaos` for the big one.
ci: vet fmt-check build race

vet:
	$(GO) vet ./...

# fmt-check fails when any tracked Go file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# chaos runs the full-size chaos soak (4 VMs x 16 rounds x 16-block
# stripes, plus the same-seed determinism replay).
chaos:
	$(GO) test -run TestChaosSoak -v .

bench:
	$(GO) test -bench=. -benchmem .
