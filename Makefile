GO ?= go

# Determinism-gated experiments: each <exp>-det target (generated below)
# replays experiment <exp> twice and diffs against results/<exp>.json.
DET_EXPS := fabric scale grayfail slo dedup
DET_TARGETS := $(addsuffix -det,$(DET_EXPS))

.PHONY: tier1 ci vet fmt-check build test race race-full chaos crash bench profile

# tier1 is the seed acceptance gate: everything must build and pass.
tier1: build test

# ci is the full hygiene gate. The race run uses -short so the full-size
# chaos soak (seconds of virtual time, minutes under the race detector)
# stays out of the fast path; run `make chaos` for the big one. crash runs
# the full 64-point crash-recovery harness plus the exhaustive journal
# crash-point sweep; test runs the whole suite without the race detector
# (including the long tests -short skips, e.g. the golden experiment run).
ci: vet fmt-check build test race crash $(DET_TARGETS)

vet:
	$(GO) vet ./...

# fmt-check fails when any tracked Go file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# race-full is the tier-2 race gate: the entire suite (golden experiment run
# included) under the race detector. Slow; not part of ci.
race-full:
	$(GO) test -race ./...

# chaos runs the full-size chaos soaks (loud faults and silent-corruption
# injection, each with a same-seed determinism replay).
chaos:
	$(GO) test -run TestChaosSoak -v .

# crash runs the crash-recovery harness (64 seeded power-cut points over the
# public API) and the exhaustive extfs journal crash-point sweep.
crash:
	$(GO) test -run 'TestCrash' -v .
	$(GO) test -run 'TestJournalCrashSweep' -v ./internal/extfs

bench:
	$(GO) test -bench=. -benchmem ./...

# <exp>-det regenerates one experiment twice in separate processes and fails
# unless both runs and the checked-in results/<exp>.json are byte-identical
# (same seed => identical simulation). One parameterized rule covers every
# determinism-gated experiment:
#   fabric   - mirroring, failover, resilver, live VF migration
#   scale    - massive tenancy (lazy VF core, queue-pair pool, shadow doorbells)
#   grayfail - fail-slow injection, hedged reads, deadline + admission control
#   slo      - latency attribution, burn alerts, anomaly scoreboard
#   dedup    - content-addressed tier (dedup ratio, first touch, fleet fork)
.PHONY: $(DET_TARGETS)
define det-rule
$(1)-det:
	@rm -rf .$(1)-det && mkdir -p .$(1)-det/a .$(1)-det/b
	@$$(GO) run ./cmd/nescbench -exp $(1) -json .$(1)-det/a > /dev/null
	@$$(GO) run ./cmd/nescbench -exp $(1) -json .$(1)-det/b > /dev/null
	@cmp .$(1)-det/a/$(1).json .$(1)-det/b/$(1).json
	@cmp .$(1)-det/a/$(1).json results/$(1).json
	@rm -rf .$(1)-det
	@echo "results/$(1).json is deterministic and current"
endef
$(foreach e,$(DET_EXPS),$(eval $(call det-rule,$(e))))

# profile is the tier-2 attribution report: run every experiment with the
# causal-attribution layer armed and emit the per-{vf,op} latency budget
# table plus p99 explainer verdicts as results/attribution.json.
profile:
	$(GO) run ./cmd/nescbench -exp all -attrib results/attribution.json > /dev/null
	@echo "wrote results/attribution.json"
