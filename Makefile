GO ?= go

.PHONY: tier1 ci vet fmt-check build test race chaos crash bench

# tier1 is the seed acceptance gate: everything must build and pass.
tier1: build test

# ci is the full hygiene gate. The race run uses -short so the full-size
# chaos soak (seconds of virtual time, minutes under the race detector)
# stays out of the fast path; run `make chaos` for the big one. crash runs
# the full 64-point crash-recovery harness plus the exhaustive journal
# crash-point sweep; test runs the whole suite without the race detector
# (including the long tests -short skips, e.g. the golden experiment run).
ci: vet fmt-check build test race crash

vet:
	$(GO) vet ./...

# fmt-check fails when any tracked Go file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# chaos runs the full-size chaos soaks (loud faults and silent-corruption
# injection, each with a same-seed determinism replay).
chaos:
	$(GO) test -run TestChaosSoak -v .

# crash runs the crash-recovery harness (64 seeded power-cut points over the
# public API) and the exhaustive extfs journal crash-point sweep.
crash:
	$(GO) test -run 'TestCrash' -v .
	$(GO) test -run 'TestJournalCrashSweep' -v ./internal/extfs

bench:
	$(GO) test -bench=. -benchmem ./...
