// Command nescbench regenerates the tables and figures of the NeSC paper
// (MICRO 2016) from the simulated platform, plus the ablations documented in
// DESIGN.md.
//
// Usage:
//
//	nescbench -list
//	nescbench -exp fig9
//	nescbench -exp all [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nesc/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list), or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Title)
		}
		return
	}

	cfg := bench.DefaultConfig()
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All()
	} else {
		e, err := bench.ByName(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}

	for _, e := range exps {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
