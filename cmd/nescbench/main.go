// Command nescbench regenerates the tables and figures of the NeSC paper
// (MICRO 2016) from the simulated platform, plus the ablations documented in
// DESIGN.md.
//
// Usage:
//
//	nescbench -list
//	nescbench -exp fig9
//	nescbench -exp all [-csv]
//	nescbench -exp mq -json results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"nesc/internal/bench"
	"nesc/internal/metrics"
	"nesc/internal/slo"
	"nesc/internal/stats"
	"nesc/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list), or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonDir := flag.String("json", "", "also write <dir>/<exp>.json per experiment (empty: disabled)")
	metricsOut := flag.String("metrics", "", "write Prometheus text-format metrics accumulated across the run to this file")
	traceJSON := flag.String("trace-json", "", "write the last recorded request spans as Chrome trace-event JSON to this file")
	spanN := flag.Int("spans", 4096, "request spans to retain for -trace-json")
	attribOut := flag.String("attrib", "", "write the per-{vf,op} latency attribution report (budget table + p99 explainer) as JSON to this file")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Title)
		}
		return
	}

	cfg := bench.DefaultConfig()
	// Telemetry sinks ride along in the config: every platform an experiment
	// builds attaches to them. Counters and histograms accumulate across
	// platforms; live gauges track the last platform built.
	var reg *metrics.Registry
	var spans *trace.SpanRecorder
	if *metricsOut != "" {
		reg = metrics.New()
		cfg.Metrics = reg
	}
	if *traceJSON != "" {
		spans = trace.NewSpanRecorder(*spanN)
		cfg.Spans = spans
	}
	var attrib *slo.Attributor
	if *attribOut != "" {
		attrib = slo.NewAttributor(4096)
		cfg.Attrib = attrib
	}
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All()
	} else {
		e, err := bench.ByName(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}

	for _, e := range exps {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, e.Name, tables); err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: %v\n", e.Name, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	if reg != nil {
		if err := writeFile(*metricsOut, reg.WritePrometheus); err != nil {
			fmt.Fprintf(os.Stderr, "-metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if spans != nil {
		if err := writeFile(*traceJSON, spans.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "-trace-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s (load at ui.perfetto.dev)\n", spans.Total, *traceJSON)
	}
	if attrib != nil {
		if err := writeFile(*attribOut, attrib.WriteReport); err != nil {
			fmt.Fprintf(os.Stderr, "-attrib: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote latency attribution for %d {vf,op} rows to %s\n", len(attrib.Rows()), *attribOut)
	}
}

// writeFile streams fn's output into path.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJSON stores an experiment's tables as <dir>/<name>.json: a single
// table is written as one object, several as an array.
func writeJSON(dir, name string, tables []*stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var out []byte
	if len(tables) == 1 {
		b, err := tables[0].JSON()
		if err != nil {
			return err
		}
		out = b
	} else {
		raws := make([]json.RawMessage, len(tables))
		for i, t := range tables {
			b, err := t.JSON()
			if err != nil {
				return err
			}
			raws[i] = b
		}
		b, err := json.MarshalIndent(raws, "", "  ")
		if err != nil {
			return err
		}
		out = append(b, '\n')
	}
	return os.WriteFile(filepath.Join(dir, name+".json"), out, 0o644)
}
