// Command nescctl is a management-plane walkthrough of the simulated NeSC
// platform: it plays the role of a cloud operator's control tool, showing
// every step of the paper's operational flow (§IV-C) with live device
// introspection — image creation, VF export with permission checks, guest
// I/O, lazy allocation, extent-tree pruning, BTLB behaviour, and teardown.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"nesc"
)

func main() {
	mediumMB := flag.Int("medium-mb", 128, "storage medium size in MiB")
	tenants := flag.Int("tenants", 3, "number of tenant VMs to demo")
	imageMB := flag.Int("image-mb", 8, "per-tenant image size in MiB")
	traceN := flag.Int("trace", 0, "dump the last N device events at the end")
	traceVF := flag.Int("trace-vf", -1, "restrict -trace output to one function index (0 = PF; -1 = all)")
	queues := flag.Int("queues", 0, "queue pairs per VF (0 = device default of 1)")
	scrub := flag.Bool("scrub", false, "run a synchronous full-device scrub pass before teardown")
	snapshot := flag.Bool("snapshot", false, "demo a copy-on-write snapshot of a running VM (CoW faults, BTLB invalidation)")
	clone := flag.Bool("clone", false, "demo a writable clone VM forked from a snapshot (implies -snapshot)")
	metricsOut := flag.String("metrics", "", "write Prometheus text-format metrics to this file at the end ('-' = stdout)")
	traceJSON := flag.String("trace-json", "", "write recorded request spans as Chrome trace-event JSON to this file (load in Perfetto)")
	spanN := flag.Int("spans", 4096, "request spans to retain for -trace-json")
	flight := flag.Bool("flight", false, "dump the device flight recorder (terminal-error diagnostics) at the end")
	fabricN := flag.Int("fabric", 0, "demo an N-device mirror fleet: synchronous replication, device kill, failover, resilver (needs N >= 2)")
	migrate := flag.Bool("migrate", false, "demo a live VF migration between fleet devices (implies -fabric 2)")
	scale := flag.Bool("scale", false, "demo massive tenancy: 1024 configured VFs, lazy materialization, pooled queue pairs, shadow doorbells")
	grayfail := flag.Bool("grayfail", false, "demo gray-failure hardening: fail-slow injection, hedged reads, quarantine + probes, deadline + admission control")
	top := flag.Bool("top", false, "demo the observability layer and print the health snapshot: latency attribution, per-tenant SLO burn alerts, anomaly scoreboard")
	dedup := flag.Bool("dedup", false, "demo the content-addressed tier: image sealing with dedup, metadata-only fleet forks, lazy chunk materialization, refcounted reclamation")
	flag.Parse()

	if *scale {
		if err := runScaleDemo(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *grayfail {
		if err := runGrayFailDemo(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *top {
		if err := runTopDemo(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *dedup {
		if err := runDedupDemo(); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *migrate && *fabricN < 2 {
		*fabricN = 2
	}
	cfg := nesc.Config{MediumMB: *mediumMB, TraceEvents: *traceN, QueuesPerVF: *queues, Metrics: *metricsOut != ""}
	if *fabricN >= 2 {
		cfg.Devices = *fabricN
		// An empty plan arms no fault sites; it just supplies the injector
		// whose device kill latch the walkthrough flips.
		cfg.Fault = &nesc.FaultPlan{Seed: 1}
	}
	if *traceJSON != "" {
		cfg.TraceSpans = *spanN
	}
	sim := nesc.New(cfg)
	step := 0
	say := func(format string, args ...any) {
		step++
		fmt.Printf("[%02d] ", step)
		fmt.Printf(format+"\n", args...)
	}

	err := sim.Run(func(ctx *nesc.Ctx) error {
		say("booted: host filesystem formatted on the NeSC physical function")

		type tenant struct {
			uid  uint32
			path string
			vm   *nesc.VM
		}
		var ts []*tenant
		for i := 0; i < *tenants; i++ {
			t := &tenant{uid: uint32(1000 + i), path: fmt.Sprintf("/images/tenant%d.img", i)}
			if i == 0 {
				if err := ctx.HostMkdir("/images", 0); err != nil {
					return err
				}
			}
			if err := ctx.CreateImage(t.path, t.uid, int64(*imageMB)<<20, false); err != nil {
				return err
			}
			st, err := ctx.StatHost(t.path)
			if err != nil {
				return err
			}
			say("created %s: %d MB, uid %d, %d extents", t.path, st.Size>>20, st.UID, st.Extents)
			ts = append(ts, t)
		}

		// Permission gate.
		if _, err := ctx.StartVM("intruder", nesc.BackendNeSC, ts[0].path, 9999); err != nil {
			say("VF export for uid 9999 on %s denied: %v", ts[0].path, err)
		} else {
			return fmt.Errorf("permission gate failed")
		}

		for i, t := range ts {
			vm, err := ctx.StartVM(fmt.Sprintf("vm%d", i), nesc.BackendNeSC, t.path, t.uid)
			if err != nil {
				return err
			}
			t.vm = vm
			say("vm%d attached: VF %d, %d MB virtual disk", i, vm.VFIndex(), vm.DiskSize()>>20)
		}

		// Guest I/O with verification.
		for i, t := range ts {
			pattern := bytes.Repeat([]byte{byte(0xC0 + i)}, 128<<10)
			for off := int64(0); off < 1<<20; off += int64(len(pattern)) {
				if err := t.vm.WriteAt(ctx, pattern, off); err != nil {
					return err
				}
			}
			got := make([]byte, len(pattern))
			if err := t.vm.ReadAt(ctx, got, 0); err != nil {
				return err
			}
			if !bytes.Equal(got, pattern) {
				return fmt.Errorf("vm%d data mismatch", i)
			}
		}
		st := sim.Stats()
		say("each VM wrote 1 MB and verified it; BTLB hit rate %.2f, %d miss interrupts",
			st.BTLBHitRate, st.MissInterrupts)

		// Lazy allocation on a sparse image.
		if err := ctx.CreateImage("/images/sparse.img", ts[0].uid, 4<<20, true); err != nil {
			return err
		}
		sparseVM, err := ctx.StartVM("sparse", nesc.BackendNeSC, "/images/sparse.img", ts[0].uid)
		if err != nil {
			return err
		}
		if err := sparseVM.WriteAt(ctx, []byte("first touch"), 2<<20); err != nil {
			return err
		}
		say("sparse image: first-touch write allocated blocks via %d miss interrupt(s)",
			sim.Stats().MissInterrupts-st.MissInterrupts)

		// Memory pressure: prune extent trees; reads regenerate on demand.
		freed := ctx.PruneExtentTrees(1 << 20)
		probe := make([]byte, 4096)
		if err := ts[0].vm.ReadAt(ctx, probe, 512<<10); err != nil {
			return err
		}
		say("pruned %d tree nodes under memory pressure; a later read regenerated mappings transparently", freed)

		// BTLB flush (e.g. before host-side dedup).
		ctx.FlushBTLB()
		say("BTLB flushed (host-side block optimization barrier)")

		// Multi-device fabric: synchronous mirroring, failover, resilver,
		// and (optionally) live VF migration.
		if *fabricN >= 2 {
			devs := make([]int, *fabricN)
			for i := range devs {
				devs[i] = i
			}
			const muid = 2000
			for _, d := range devs {
				if err := ctx.CreateImageOn(d, "/mirror.img", muid, 2<<20, false); err != nil {
					return err
				}
			}
			mvm, err := ctx.StartMirroredVM("mirror0", "/mirror.img", muid, devs, nesc.MirrorConfig{})
			if err != nil {
				return err
			}
			say("mirror0 attached: one VF on each of %d devices, writes acknowledged only when every live replica has them", *fabricN)
			pattern := bytes.Repeat([]byte{0xAB}, 64<<10)
			for off := int64(0); off < 512<<10; off += int64(len(pattern)) {
				if err := mvm.WriteAt(ctx, pattern, off); err != nil {
					return err
				}
			}
			victim := *fabricN - 1
			if err := ctx.KillDevice(victim); err != nil {
				return err
			}
			say("device %d kill-latched under the running mirror", victim)
			for off := int64(512) << 10; off < 1<<20; off += int64(len(pattern)) {
				if err := mvm.WriteAt(ctx, pattern, off); err != nil {
					return err
				}
			}
			st := mvm.FabricStatus()
			say("mirror continued degraded: device %d is %q with %d dirty region(s) to resilver", victim, st[victim].State, st[victim].DirtyRegions)
			got := make([]byte, len(pattern))
			if err := mvm.ReadAt(ctx, got, 768<<10); err != nil {
				return err
			}
			if !bytes.Equal(got, pattern) {
				return fmt.Errorf("degraded mirror lost an acknowledged write")
			}
			say("degraded-mode read-back verified: no acknowledged write lost")
			if err := ctx.ReviveDevice(victim); err != nil {
				return err
			}
			for i := 0; i < 400 && mvm.FabricStatus()[victim].State != "healthy"; i++ {
				ctx.Sleep(100 * time.Microsecond)
			}
			fst := sim.FabricStats()
			say("device %d revived; resilver copied %d blocks and restored full redundancy (state %q)",
				victim, fst.ResilverBlocks, mvm.FabricStatus()[victim].State)
			mvm.Stop(ctx)

			if *migrate {
				if err := ctx.CreateImageOn(0, "/mig.img", muid, 2<<20, false); err != nil {
					return err
				}
				lvm, err := ctx.StartMirroredVM("mig0", "/mig.img", muid, []int{0}, nesc.MirrorConfig{})
				if err != nil {
					return err
				}
				for off := int64(0); off < 1<<20; off += int64(len(pattern)) {
					if err := lvm.WriteAt(ctx, pattern, off); err != nil {
						return err
					}
				}
				rep, err := lvm.Migrate(ctx, 0, 1)
				if err != nil {
					return err
				}
				say("mig0 live-migrated device 0 -> 1: %d blocks bulk-copied, %d pre-copy pass(es), %v stop-and-copy pause",
					rep.BulkBlocks, rep.Passes, time.Duration(rep.Pause))
				if err := lvm.ReadAt(ctx, got, 512<<10); err != nil {
					return err
				}
				if !bytes.Equal(got, pattern) {
					return fmt.Errorf("migration lost data")
				}
				say("post-migration read-back verified on device 1")
				lvm.Stop(ctx)
			}
		}

		// Copy-on-write snapshots and clones (device-enforced sharing).
		if *snapshot || *clone {
			pre := sim.Stats()
			if err := ts[0].vm.Snapshot(ctx, "/images/tenant0.snap", ts[0].uid); err != nil {
				return err
			}
			say("snapshot /images/tenant0.snap taken while vm0 runs; %d host blocks now shared",
				ctx.SharedBlocks())

			// A read first: it caches the now write-protected extent in the
			// BTLB without faulting, so the write below also demonstrates
			// the stale-entry invalidation.
			warm := make([]byte, 4096)
			if err := ts[0].vm.ReadAt(ctx, warm, 0); err != nil {
				return err
			}
			if err := ts[0].vm.WriteAt(ctx, []byte("post-snapshot write"), 0); err != nil {
				return err
			}
			d := sim.Stats()
			say("vm0's first write to a shared extent trapped as %d CoW fault(s); the break invalidated %d BTLB entr(y/ies)",
				d.CowFaults-pre.CowFaults, d.BTLBInvalidations-pre.BTLBInvalidations)
			probe := make([]byte, 16)
			if _, err := ctx.ReadHostFile("/images/tenant0.snap", probe, 0); err != nil {
				return err
			}
			if probe[0] != 0xC0 {
				return fmt.Errorf("vm0's post-snapshot write leaked into the snapshot")
			}
			say("snapshot still reads the point-in-time image; vm0 sees its own write")

			if *clone {
				fork, err := ctx.CloneVM(ts[0].vm, "fork0", "/images/tenant0.clone", ts[0].uid)
				if err != nil {
					return err
				}
				say("clone fork0 attached: VF %d on /images/tenant0.clone, a writable fork of vm0's disk", fork.VFIndex())
				if err := fork.WriteAt(ctx, []byte("clone divergence"), 64<<10); err != nil {
					return err
				}
				if err := ts[0].vm.ReadAt(ctx, probe, 64<<10); err != nil {
					return err
				}
				if probe[0] != 0xC0 {
					return fmt.Errorf("clone write leaked into vm0's disk")
				}
				say("fork0 diverged at its own pace; vm0's disk is untouched")
				fork.Stop(ctx)
				if err := ctx.DeleteSnapshot("/images/tenant0.clone", ts[0].uid); err != nil {
					return err
				}
			}
			if err := ctx.DeleteSnapshot("/images/tenant0.snap", ts[0].uid); err != nil {
				return err
			}
			say("snapshots deleted, private blocks reclaimed; %d blocks still shared", ctx.SharedBlocks())
		}

		// Optional integrity scrub: walk the whole device through the PF,
		// verifying every block's guard tag.
		if *scrub {
			rep := ctx.Scrub()
			say("scrub pass: %d blocks verified in %d requests, %d integrity errors, %d repairs",
				rep.Blocks, rep.Requests, rep.Errors, rep.Repairs)
		}

		// Teardown.
		for i, t := range ts {
			t.vm.Stop(ctx)
			say("vm%d stopped; VF released", i)
		}
		if err := ctx.CheckHostFS(); err != nil {
			return err
		}
		say("host filesystem fsck: clean; virtual time %v", ctx.Now())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	final := sim.Stats()
	fmt.Printf("\nfinal device counters: %d tree-node DMA fetches, %d/%d MB medium read/write, %d MSIs serviced\n",
		final.WalkNodeReads, final.MediumReadBytes>>20, final.MediumWriteBytes>>20, final.MissInterrupts)
	fmt.Printf("integrity counters: %d guard errors, %d repairs, %d corruptions detected, %d latent outstanding\n",
		final.IntegrityErrors, final.IntegrityRepairs, final.CorruptionsDetected, final.LatentOutstanding)
	if *traceN > 0 {
		if *traceVF >= 0 {
			fmt.Printf("\nlast device events (fn %d):\n%s", *traceVF, sim.TraceDumpVF(*traceVF))
		} else {
			fmt.Printf("\nlast device events:\n%s", sim.TraceDump())
		}
	}
	if *flight {
		fmt.Printf("\n%s", sim.FlightDump())
	}
	if *metricsOut != "" {
		if err := writeTo(*metricsOut, sim.WriteMetrics); err != nil {
			log.Fatalf("-metrics: %v", err)
		}
	}
	if *traceJSON != "" {
		if err := writeTo(*traceJSON, sim.WriteTraceJSON); err != nil {
			log.Fatalf("-trace-json: %v", err)
		}
		fmt.Printf("wrote %d spans to %s (load at ui.perfetto.dev)\n", sim.SpanCount(), *traceJSON)
	}
}

// writeTo streams fn's output to path, with "-" meaning stdout.
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
