package main

import (
	"bytes"
	"errors"
	"fmt"

	"nesc/internal/bench"
	"nesc/internal/fabric"
	"nesc/internal/fault"
	"nesc/internal/guest"
	"nesc/internal/hypervisor"
	"nesc/internal/ring"
	"nesc/internal/sim"
	"nesc/internal/stats"
)

// runGrayFailDemo is the gray-failure walkthrough behind -grayfail: a 3-way
// mirror with the fail-slow mitigation stack armed takes a chronic slow leg
// in stride — hedged reads cap the stragglers, the windowed detector
// quarantines the leg, probe reads let it win traffic back once it recovers —
// and a single-device tenant then shows deadline propagation + admission
// control converting unbounded queueing delay into immediate retryable busy.
func runGrayFailDemo() error {
	step := 0
	say := func(format string, args ...any) {
		step++
		fmt.Printf("[%02d] ", step)
		fmt.Printf(format+"\n", args...)
	}
	if err := grayMirrorDemo(say); err != nil {
		return err
	}
	return grayAdmissionDemo(say)
}

// grayMirrorDemo runs the hedging/quarantine half of the walkthrough.
func grayMirrorDemo(say func(string, ...any)) error {
	cfg := bench.DefaultConfig()
	cfg.NumDevices = 3
	cfg.Fault = &fault.Plan{Seed: 7} // empty plan: just arms the injector
	pl := bench.NewPlatform(cfg)
	const stripe = 4096
	const slots = 32
	return pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		for _, d := range pl.Hyp.Devices() {
			if err := d.MkImage(p, "/gray.img", 1, 512, false); err != nil {
				return err
			}
		}
		vm, err := pl.Hyp.NewMirroredVM(p, "gray", hypervisor.VMConfig{
			Backend: hypervisor.BackendDirect, DiskPath: "/gray.img", UID: 1, Guest: pl.Cfg.Guest,
		}, []int{0, 1, 2}, fabric.Config{
			HedgePercentile: 95,
			SlowFactor:      3, SlowWindow: 32, SlowBaseline: 16, SlowMinSamples: 4,
			ProbeEvery: 8, QuarantineDuration: 2 * sim.Millisecond,
		})
		if err != nil {
			return err
		}
		say("3-way mirror up with the gray-failure stack armed: p95 hedged reads, fail-slow detector (3x baseline), probes every 8th read, 2ms quarantine")

		bs := vm.Kernel.Drv.BlockSize()
		stripeBlocks := int64(stripe / bs)
		buf := make([]byte, stripe)
		for s := 0; s < slots; s++ {
			fill(buf, s)
			if err := vm.Kernel.WriteBytes(p, int64(s)*stripe, buf); err != nil {
				return err
			}
		}
		warm := &stats.Sampler{}
		if err := readBatch(p, vm, warm, slots, 64, stripeBlocks); err != nil {
			return err
		}
		say("wrote and warm-read %d stripes: healthy read p99 %.0f us (EWMAs, hedge window, and per-leg baselines trained)", slots, warm.Percentile(99))

		// The serving leg turns chronically slow: answers everything, late.
		st := vm.Client.Status()
		victim := 0
		for i, s := range st {
			if s.EWMARead < st[victim].EWMARead {
				victim = i
			}
		}
		pl.Inj.Degrade(fault.Degradation{
			Device: st[victim].Dev, Start: p.Now(), Extra: 2 * sim.Millisecond,
		})
		say("device %d (the leg currently winning read steering) degraded: +2ms on every medium access, no errors — a pure gray failure", st[victim].Dev)

		slow := &stats.Sampler{}
		if err := readBatch(p, vm, slow, slots, 64, stripeBlocks); err != nil {
			return err
		}
		say("64 reads through the fault: p99 %.0f us — %d hedged, %d won by the speculative leg; every read verified bit-exactly",
			slow.Percentile(99), vm.Client.HedgedReads, vm.Client.HedgeWins)
		if qs := vm.Client.Status()[victim]; qs.Quarantined {
			say("the detector saw the leg's windowed p99 blow past 3x its learned baseline and quarantined it (state %q, %d quarantine(s))",
				qs.State, vm.Client.Quarantines)
		}

		pl.Inj.ClearDegradations(st[victim].Dev)
		p.Sleep(2500 * sim.Microsecond)
		rec := &stats.Sampler{}
		if err := readBatch(p, vm, rec, slots, 64, stripeBlocks); err != nil {
			return err
		}
		say("degradation cleared and quarantine expired: %d rejoin(s), %d probe reads refreshed the stale estimate, read p99 back to %.0f us",
			vm.Client.Rejoins, vm.Client.ProbeReads, rec.Percentile(99))
		return nil
	})
}

// grayAdmissionDemo runs the deadline + admission-control half.
func grayAdmissionDemo(say func(string, ...any)) error {
	cfg := bench.DefaultConfig()
	cfg.Fault = &fault.Plan{Seed: 7}
	cfg.Hyp.VFRequestTimeout = 0 // busy surfaces immediately, no driver retry
	cfg.Hyp.VFRetryMax = 0
	cfg.Hyp.VFDeadline = 400 * sim.Microsecond
	cfg.Core.AdmitInflight = 8
	pl := bench.NewPlatform(cfg)
	const stripe = 4096
	return pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		if err := pl.Hyp.Device(0).MkImage(p, "/adm.img", 1, 512, false); err != nil {
			return err
		}
		vm, err := pl.Hyp.NewVM(p, "adm", hypervisor.VMConfig{
			Backend: hypervisor.BackendDirect, DiskPath: "/adm.img", UID: 1, Guest: pl.Cfg.Guest,
		})
		if err != nil {
			return err
		}
		say("single-device tenant with a 400us request deadline programmed in QRegDeadline and an 8-request admission budget")

		bs := vm.Kernel.Drv.BlockSize()
		stripeBlocks := int64(stripe / bs)
		const writers, perWriter = 6, 12
		wg := sim.NewWaitGroup(pl.Eng)
		var ackedOps, shedOps int
		var werr error
		for wr := 0; wr < writers; wr++ {
			wr := wr
			addr := pl.Mem.MustAlloc(stripe, 64)
			data, err := pl.Mem.Slice(addr, stripe)
			if err != nil {
				return err
			}
			wbuf := guest.Buffer{Addr: addr, Data: data}
			wg.Add(1)
			pl.Eng.Go(fmt.Sprintf("adm-writer-%d", wr), func(q *sim.Proc) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					slot := wr*perWriter + i
					fill(wbuf.Data, slot)
					err := vm.Kernel.SubmitAligned(q, true, int64(slot)*stripeBlocks, wbuf)
					switch {
					case err == nil:
						ackedOps++
					case errors.Is(err, ring.ErrBusy):
						shedOps++
					default:
						if werr == nil {
							werr = fmt.Errorf("writer %d op %d: %w", wr, i, err)
						}
						return
					}
				}
			})
		}
		p.Sleep(200 * sim.Microsecond)
		pl.Inj.Degrade(fault.Degradation{Device: 0, Start: p.Now(), Duration: 3 * sim.Millisecond, Extra: 1 * sim.Millisecond})
		say("%d concurrent writers in flight; the device just turned fail-slow (+1ms per medium access for 3ms)", writers)
		wg.WaitFor(p)
		if werr != nil {
			return werr
		}
		pl.Inj.ClearDegradations(0)
		say("workload done: %d ops acked, %d fast-failed StatusBusy instead of rotting in the queue (%d admission rejects, %d deadline expirations at later stages)",
			ackedOps, shedOps, pl.Ctl.AdmitRejects, pl.Ctl.DeadlineExpirations)

		// Busy is retryable, acked is durable: verify both halves.
		got := make([]byte, stripe)
		want := make([]byte, stripe)
		lost := 0
		for slot := 0; slot < writers*perWriter; slot++ {
			fill(want, slot)
			if err := vm.Kernel.ReadBytes(p, int64(slot)*stripe, got); err != nil {
				return err
			}
			if !bytes.Equal(got, want) {
				lost++
			}
		}
		// Shed slots read back stale (all-zero) bytes until their writer
		// retries; only slots the device *acknowledged* must match. Here every
		// writer wrote each slot at most once, so mismatches == shed ops.
		if lost > shedOps {
			return fmt.Errorf("lost %d slots but only %d ops were shed: an acknowledged write vanished", lost, shedOps)
		}
		say("read-back after the fault: every acknowledged write intact; the %d busy-shed slots are exactly the ones awaiting a retry, virtual time %v",
			lost, p.Now())
		return nil
	})
}

// readBatch drives n sequential verified reads across the slots and samples
// their latency in microseconds.
func readBatch(p *sim.Proc, vm *hypervisor.VM, samp *stats.Sampler, slots, n int, stripeBlocks int64) error {
	const stripe = 4096
	got := make([]byte, stripe)
	want := make([]byte, stripe)
	for i := 0; i < n; i++ {
		slot := (i * 7) % slots
		start := p.Now()
		if err := vm.Kernel.ReadBytes(p, int64(slot)*stripe, got); err != nil {
			return err
		}
		samp.Add(float64(p.Now()-start) / 1000)
		fill(want, slot)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("read %d (slot %d): bytes diverged from the oracle", i, slot)
		}
	}
	return nil
}

// fill writes a deterministic per-slot pattern.
func fill(buf []byte, slot int) {
	for i := range buf {
		buf[i] = byte(slot*37 + i*11 + 3)
	}
}
