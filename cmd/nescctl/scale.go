package main

import (
	"fmt"

	"nesc/internal/bench"
	"nesc/internal/guest"
	"nesc/internal/ring"
	"nesc/internal/sim"
)

// runScaleDemo is the massive-tenancy walkthrough behind -scale: it
// configures the controller for 1024 virtual functions, shows that a huge
// configured count costs nothing until tenants appear (lazy VF
// materialization and the device-wide queue-pair pool), then attaches a
// handful of raw VFs with shadow-doorbell drivers and drives a concurrent
// write burst to show doorbell batching in action.
func runScaleDemo() error {
	const (
		numVFs      = 1024
		tenants     = 8
		ringEntries = 8
		burst       = 4
		opsPerProc  = 4
	)
	cfg := bench.DefaultConfig()
	cfg.Core.NumVFs = numVFs
	pl := bench.NewPlatform(cfg)

	step := 0
	say := func(format string, args ...any) {
		step++
		fmt.Printf("[%02d] ", step)
		fmt.Printf(format+"\n", args...)
	}

	return pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		say("booted with %d configured VFs; %d materialized, %d queue pairs leased, device state %d KB",
			numVFs, pl.Ctl.MaterializedVFs(), pl.Ctl.LeasedQueues(), pl.Ctl.StateFootprint()/1024)

		type tenant struct {
			idx int
			mq  *guest.MultiQueue
		}
		var ts []tenant
		for i := 0; i < tenants; i++ {
			idx, err := pl.Hyp.CreateRawVF(p)
			if err != nil {
				return err
			}
			mq, err := guest.NewMultiQueue(p, pl.Eng, pl.Mem, pl.Fab,
				pl.Hyp.VFPageBus(idx), 1, ringEntries, pl.Cfg.Hyp.DriverSubmitTime)
			if err != nil {
				return err
			}
			if err := mq.ArmShadow(p); err != nil {
				return err
			}
			pl.Hyp.RouteVFInterrupts(idx, mq)
			ts = append(ts, tenant{idx: idx, mq: mq})
		}
		say("%d tenants attached on raw VFs with shadow-armed ring drivers; now %d/%d VFs materialized, %d queue pairs leased from the pool",
			tenants, pl.Ctl.MaterializedVFs(), numVFs, pl.Ctl.LeasedQueues())

		wg := sim.NewWaitGroup(pl.Eng)
		var firstErr error
		for i, t := range ts {
			base := uint64(i) * 64
			mq := t.mq
			for b := 0; b < burst; b++ {
				b := b
				wg.Add(1)
				pl.Eng.Go(fmt.Sprintf("scale-demo-vf%d-%d", t.idx, b), func(q *sim.Proc) {
					defer wg.Done()
					buf := pl.Mem.MustAlloc(4096, 64)
					for k := 0; k < opsPerProc; k++ {
						lba := base + uint64(b*opsPerProc+k)*4
						st, err := mq.Submit(q, ring.OpWrite, lba, 4, buf)
						if err == nil {
							err = guest.StatusError(st)
						}
						if err != nil && firstErr == nil {
							firstErr = err
						}
					}
				})
			}
		}
		wg.WaitFor(p)
		if firstErr != nil {
			return firstErr
		}
		rs := pl.Hyp.RecoveryStats()
		say("each tenant ran %d concurrent submitters x %d writes; %d doorbell MMIOs elided by shadow batching, %d device fetches initiated from the shadow block",
			burst, opsPerProc, rs.DoorbellsSkipped, pl.Ctl.ShadowBatches)
		say("Jain fairness over per-VF blocks served: %.3f", pl.Ctl.JainFairness())
		say("device state footprint with %d active of %d configured: %d KB (scales with tenants, not configuration)",
			tenants, numVFs, pl.Ctl.StateFootprint()/1024)

		for _, t := range ts {
			pl.Hyp.DestroyVF(p, t.idx)
		}
		// The PF-register read is non-posted, so it flushes the posted VF
		// disables before reporting pool state.
		leased, _ := pl.Hyp.QueuePoolStatus(p)
		say("tenants destroyed: %d queue pair leased (tenant queues all returned to the pool), virtual time %v",
			leased, p.Now())
		return nil
	})
}
