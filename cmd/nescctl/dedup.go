package main

import (
	"bytes"
	"fmt"

	"nesc"
)

// runDedupDemo is the content-addressed-tier walkthrough behind -dedup: it
// seals a golden image and a mostly-identical variant into the chunk store
// (showing dedup), forks the golden manifest onto a 4-host fleet as
// metadata-only copies, boots a guest per host whose first touches
// materialize chunks through the translation-miss path, and tears the forks
// down showing refcounted chunk reclamation.
func runDedupDemo() error {
	const (
		hosts      = 4
		imageKB    = 512
		blockSize  = 1024
		blocks     = imageKB * 1024 / blockSize
		touchBytes = 64 * 1024
	)
	sim := nesc.New(nesc.Config{
		MediumMB: 64,
		Devices:  hosts,
		CAS:      true,
	})

	step := 0
	say := func(format string, args ...any) {
		step++
		fmt.Printf("[%02d] ", step)
		fmt.Printf(format+"\n", args...)
	}

	fill := func(buf []byte, divergent bool) {
		for i := range buf {
			b := i / blockSize
			if divergent && b%4 == 0 {
				buf[i] = byte(i*11 + b*131 + 201)
			} else {
				buf[i] = byte(i*7 + b*31 + 3)
			}
		}
	}

	return sim.Run(func(ctx *nesc.Ctx) error {
		say("booted a %d-host fleet with the content-addressed tier enabled", hosts)

		golden := make([]byte, imageKB*1024)
		fill(golden, false)
		if err := ctx.CreateImage("/golden.img", 1, int64(len(golden)), true); err != nil {
			return err
		}
		if err := ctx.WriteHostFile("/golden.img", golden, 0); err != nil {
			return err
		}
		m, err := ctx.SealImage("/golden.img", "golden", 1)
		if err != nil {
			return err
		}
		st := sim.Stats()
		say("sealed /golden.img as %q: %d blocks hashed into %d unique chunks, pushed in %d batched PUT(s)",
			m.Name, m.Blocks, st.CASChunksLive, st.CASRemotePuts)

		variant := make([]byte, imageKB*1024)
		fill(variant, true)
		if err := ctx.CreateImage("/variant.img", 1, int64(len(variant)), true); err != nil {
			return err
		}
		if err := ctx.WriteHostFile("/variant.img", variant, 0); err != nil {
			return err
		}
		if _, err := ctx.SealImage("/variant.img", "variant", 1); err != nil {
			return err
		}
		st = sim.Stats()
		say("sealed a variant sharing 3/4 of its blocks: %d dedup hits, %d chunks live, dedup ratio %.2fx",
			st.CASDedupHits, st.CASChunksLive, sim.CASDedupRatio())

		preF := sim.Stats().CASRemoteFetches
		for d := 0; d < hosts; d++ {
			if err := ctx.ForkImageOn(d, "golden", "/guest.img", 1); err != nil {
				return err
			}
		}
		st = sim.Stats()
		say("forked %q onto all %d hosts: metadata-only (%d chunk payloads moved), dedup ratio now %.2fx",
			"golden", hosts, st.CASRemoteFetches-preF, sim.CASDedupRatio())

		got := make([]byte, touchBytes)
		vms := make([]*nesc.VM, hosts)
		for d := 0; d < hosts; d++ {
			vm, err := ctx.StartVMOn(d, fmt.Sprintf("guest%d", d), nesc.BackendNeSC, "/guest.img", 1)
			if err != nil {
				return err
			}
			vms[d] = vm
			// Stagger working sets so every host materializes its own chunks.
			off := int64(d) * touchBytes
			if err := vm.ReadAt(ctx, got, off); err != nil {
				return fmt.Errorf("host %d first touch: %w", d, err)
			}
			if !bytes.Equal(got, golden[off:off+touchBytes]) {
				return fmt.Errorf("host %d materialized wrong content", d)
			}
		}
		st = sim.Stats()
		say("booted a guest per host; first touches raised %d fetch misses, materialized %d blocks via %d remote fetches (all verified bit-exact)",
			st.CASFetchMisses, st.CASMaterializations, st.CASRemoteFetches)

		pre := st
		if err := vms[0].ReadAt(ctx, got, 0); err != nil {
			return err
		}
		st = sim.Stats()
		say("re-read of materialized blocks: %d new remote fetches (ordinary local extents now)",
			st.CASRemoteFetches-pre.CASRemoteFetches)

		for d := 0; d < hosts; d++ {
			vms[d].Stop(ctx)
			if err := ctx.ReleaseImageOn(d, "/guest.img"); err != nil {
				return err
			}
		}
		if err := ctx.ReleaseSealed("golden"); err != nil {
			return err
		}
		if err := ctx.ReleaseSealed("variant"); err != nil {
			return err
		}
		st = sim.Stats()
		say("released every fork and both masters: %d chunks still live, virtual time %v",
			st.CASChunksLive, ctx.Now())
		return nil
	})
}
