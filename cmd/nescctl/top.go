package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"nesc"
)

// runTopDemo drives the observability layer end to end through the public
// API and finishes with the WriteTop health snapshot: two tenants share one
// device, an aggressor floods it with writes, then a fail-slow pulse
// degrades the medium under the victim. The snapshot shows the per-tenant
// SLO state (with the burn alert the pulse fired), the anomaly scoreboard,
// and the p99 explainer's verdict on where each tenant's tail went.
func runTopDemo() error {
	sim := nesc.New(nesc.Config{
		Attribution:      true,
		ScoreboardEvents: 256,
		SLO: &nesc.SLOObjective{
			Latency:       250 * time.Microsecond,
			Goal:          0.90,
			ShortWindow:   2 * time.Millisecond,
			LongWindow:    6 * time.Millisecond,
			BurnThreshold: 3,
			MinSamples:    4,
		},
		Fault: &nesc.FaultPlan{Seed: 5}, // empty plan: just arms the injector
	})
	step := 0
	say := func(format string, args ...any) {
		step++
		fmt.Printf("[%02d] ", step)
		fmt.Printf(format+"\n", args...)
	}
	err := sim.Run(func(ctx *nesc.Ctx) error {
		if err := ctx.HostMkdir("/images", 0); err != nil {
			return err
		}
		if err := ctx.CreateImage("/images/victim.img", 1001, 4<<20, false); err != nil {
			return err
		}
		if err := ctx.CreateImage("/images/agg.img", 1002, 4<<20, false); err != nil {
			return err
		}
		victim, err := ctx.StartVM("victim", nesc.BackendNeSC, "/images/victim.img", 1001)
		if err != nil {
			return err
		}
		agg, err := ctx.StartVM("agg", nesc.BackendNeSC, "/images/agg.img", 1002)
		if err != nil {
			return err
		}
		say("two tenants up on one device; attribution, a 90%%-under-250us SLO, and a 256-event scoreboard armed")

		pattern := bytes.Repeat([]byte{0x5A}, 4096)
		for off := int64(0); off < 256<<10; off += int64(len(pattern)) {
			if err := victim.WriteAt(ctx, pattern, off); err != nil {
				return err
			}
		}

		// The aggressor streams writes for the whole victim run: enough to
		// shape the victim's tail, not enough to breach its SLO on its own.
		stop := false
		noise := ctx.Go("top-agg", func(c *nesc.Ctx) error {
			blob := bytes.Repeat([]byte{0xA6}, 4096)
			for i := 0; !stop; i++ {
				if err := agg.WriteAt(c, blob, int64(i%64)*int64(len(blob))); err != nil {
					return err
				}
				c.Sleep(20 * time.Microsecond)
			}
			return nil
		})

		// The victim's paced reads, with a fail-slow pulse opening mid-run:
		// the medium keeps answering, just chronically late.
		got := make([]byte, 4096)
		for i := 0; i < 360; i++ {
			switch i {
			case 200:
				ctx.Degrade(0, 0, 300*time.Microsecond, 0)
				say("fail-slow pulse opened at %v: +300us on every medium access, no errors", ctx.Now())
			case 280:
				ctx.ClearDegradations(0)
				say("pulse closed at %v after 80 degraded reads", ctx.Now())
			}
			if err := victim.ReadAt(ctx, got, int64(i%64)*4096); err != nil {
				return err
			}
			ctx.Sleep(10 * time.Microsecond)
		}
		ctx.ClearDegradations(0)
		stop = true
		if err := noise.Wait(ctx); err != nil {
			return err
		}
		say("victim ran 360 paced reads through the noise and the pulse; pulse cleared at %v", ctx.Now())
		victim.Stop(ctx)
		agg.Stop(ctx)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Println()
	return sim.WriteTop(os.Stdout)
}
