package nesc

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// Chaos soak: mixed tenant workloads run under an aggressive seeded fault
// plan — transient and latent medium errors, rejected DMA transfers, dropped
// and delayed interrupts, failing lazy allocation — while every VF takes one
// forced function-level reset mid-run. The test asserts three things:
//
//  1. Integrity: after all recovery machinery has run, every byte reads back
//     bit-exactly against an in-test oracle.
//  2. Liveness: no submitter deadlocks (Run returns nil).
//  3. Determinism: the same seed produces the identical fault sequence,
//     stats, and virtual end time across two independent runs.

// rawRegionLBA is where the raw (identity-mapped) tenant's workload lives:
// high physical LBAs the host filesystem never allocates, so latent bad
// sectors seeded there hit only tenant data. Random latent latching
// (LatentProb) stays off: a latent sector inside host-FS metadata would be an
// unrecoverable loss — nothing in the model rewrites metadata in place, and
// the FS has no redundancy to heal from.
const rawRegionLBA = 100_000

// chaosPlan is the shared aggressive fault schedule.
func chaosPlan(seed uint64) *FaultPlan {
	plan := &FaultPlan{
		Seed: seed,
		// Bad-from-the-start sectors inside the raw tenant's first stripes:
		// reads fail until the scrub path rewrites them.
		LatentSectors: []int64{rawRegionLBA + 1, rawRegionLBA + 3, rawRegionLBA + 10},
	}
	plan.Sites[FaultMediumRead] = FaultSiteParams{Prob: 0.015}
	plan.Sites[FaultMediumWrite] = FaultSiteParams{Prob: 0.005}
	plan.Sites[FaultDMARead] = FaultSiteParams{Prob: 0.002}
	plan.Sites[FaultDMAWrite] = FaultSiteParams{Prob: 0.002}
	plan.Sites[FaultMSI] = FaultSiteParams{Prob: 0.02, DelayProb: 0.05, Delay: 30 * 1000} // 30µs
	plan.Sites[FaultMissHandler] = FaultSiteParams{Prob: 0.05}
	return plan
}

// stripePattern fills a stripe with bytes derived deterministically from its
// coordinates, so the oracle needs no stored randomness.
func stripePattern(buf []byte, vmIdx, round int) {
	for i := range buf {
		buf[i] = byte(vmIdx*131 + round*31 + i*7 + 5)
	}
}

// chaosResult is everything two same-seed runs must agree on.
type chaosResult struct {
	stats   Stats
	summary string
	vtime   time.Duration
}

// runChaos executes one full chaos run and returns its fingerprint. queues
// sets Config.QueuesPerVF: every tenant then drives its VF through that many
// queue pairs, each with its own sequence space and recovery state.
func runChaos(t *testing.T, seed uint64, numVMs, rounds, stripeBlocks, queues int) chaosResult {
	t.Helper()
	const blockSize = 1024
	cfg := DefaultConfig()
	cfg.UseIOMMU = true // direct DMA mode: no trampoline copies masking faults
	cfg.Fault = chaosPlan(seed)
	cfg.DriverTimeout = 3 * time.Millisecond
	cfg.DriverRetryMax = 8
	cfg.QueuesPerVF = queues
	s := New(cfg)

	diskBlocks := uint64(rounds * stripeBlocks * 2) // headroom past the stripes
	stripe := int64(stripeBlocks * blockSize)

	err := s.Run(func(ctx *Ctx) error {
		// numVMs file-backed tenants plus one raw (identity-mapped) tenant
		// whose region carries the plan's seeded latent bad sectors.
		vms := make([]*VM, numVMs+1)
		base := make([]int64, numVMs+1)
		for i := 0; i < numVMs; i++ {
			path := fmt.Sprintf("/tenant%d.img", i)
			// Sparse images: every first write misses, exercising the
			// hypervisor's lazy allocation under MissHandler faults.
			if err := ctx.CreateImage(path, uint32(100+i), int64(diskBlocks)*blockSize, true); err != nil {
				return err
			}
			vm, err := ctx.StartVM(fmt.Sprintf("vm%d", i), BackendNeSC, path, uint32(100+i))
			if err != nil {
				return err
			}
			vms[i] = vm
		}
		raw, err := ctx.StartRawVM("raw", BackendNeSC)
		if err != nil {
			return err
		}
		vms[numVMs] = raw
		base[numVMs] = rawRegionLBA * blockSize

		// Before anything rewrites them, read through the latent sectors so
		// the latent-read failure path actually fires; the error is expected.
		if err := raw.ReadAt(ctx, make([]byte, stripe), base[numVMs]); err == nil {
			return fmt.Errorf("read across seeded latent sectors unexpectedly succeeded")
		}

		tasks := make([]*Task, len(vms))
		for i := range vms {
			i, vm, off0 := i, vms[i], base[i]
			tasks[i] = ctx.Go(fmt.Sprintf("chaos-worker-%d", i), func(c *Ctx) error {
				want := make([]byte, stripe)
				got := make([]byte, stripe)
				for round := 0; round < rounds; round++ {
					off := off0 + int64(round)*stripe
					stripePattern(want, i, round)
					// Write until the stripe sticks: a stripe is written with
					// fixed bytes at a fixed offset, so resubmissions and
					// repair rewrites are idempotent.
					if err := writeStripe(c, vm, want, off); err != nil {
						return err
					}
					// Verify an earlier stripe; on a (possibly latent) read
					// error, scrub-repair: rewrite from the oracle and retry.
					vr := round / 2
					stripePattern(want, i, vr)
					if err := readVerified(c, vm, want, got, off0+int64(vr)*stripe); err != nil {
						return err
					}
					stripePattern(want, i, round)
				}
				return nil
			})
		}

		// Mid-run, every VF takes one forced function-level reset while its
		// worker is in flight.
		for _, vm := range vms {
			ctx.Sleep(2 * time.Millisecond)
			if err := vm.Reset(ctx); err != nil {
				return err
			}
		}

		for _, tk := range tasks {
			if err := tk.Wait(ctx); err != nil {
				return err
			}
		}

		// Snapshot churn: every file-backed tenant takes a snapshot, forks a
		// writable clone, diverges the clone, re-writes a now-shared stripe
		// on the parent (a CoW break under the same fault plan), then tears
		// both down again. The fork's divergence uses its own pattern and
		// the parent's re-write uses the oracle bytes, so the final readback
		// below doubles as the no-leak check.
		for i := 0; i < numVMs; i++ {
			vm, uid := vms[i], uint32(100+i)
			snapPath := fmt.Sprintf("/tenant%d.snap", i)
			clonePath := fmt.Sprintf("/tenant%d.clone", i)
			if err := vm.Snapshot(ctx, snapPath, uid); err != nil {
				return fmt.Errorf("churn snapshot vm%d: %w", i, err)
			}
			fork, err := ctx.CloneVM(vm, fmt.Sprintf("fork%d", i), clonePath, uid)
			if err != nil {
				return fmt.Errorf("churn clone vm%d: %w", i, err)
			}
			want := make([]byte, stripe)
			got := make([]byte, stripe)
			stripePattern(want, numVMs+1+i, 0)
			if err := writeStripe(ctx, fork, want, 0); err != nil {
				return fmt.Errorf("churn fork%d divergence: %w", i, err)
			}
			if err := readVerified(ctx, fork, want, got, 0); err != nil {
				return fmt.Errorf("churn fork%d readback: %w", i, err)
			}
			stripePattern(want, i, 1)
			if err := writeStripe(ctx, vm, want, stripe); err != nil {
				return fmt.Errorf("churn vm%d CoW re-write: %w", i, err)
			}
			stripePattern(want, i, 0)
			if err := readVerified(ctx, vm, want, got, 0); err != nil {
				return fmt.Errorf("churn vm%d stripe 0 after fork divergence: %w", i, err)
			}
			fork.Stop(ctx)
			if err := ctx.DeleteSnapshot(clonePath, uid); err != nil {
				return fmt.Errorf("churn delete %s: %w", clonePath, err)
			}
			if err := ctx.DeleteSnapshot(snapPath, uid); err != nil {
				return fmt.Errorf("churn delete %s: %w", snapPath, err)
			}
		}
		if sb := ctx.SharedBlocks(); sb != 0 {
			return fmt.Errorf("snapshot churn left %d shared blocks", sb)
		}
		if err := ctx.CheckHostFS(); err != nil {
			return fmt.Errorf("fsck after snapshot churn: %w", err)
		}

		// Final full readback: every stripe of every tenant, bit-exact.
		want := make([]byte, stripe)
		got := make([]byte, stripe)
		for i, vm := range vms {
			for round := 0; round < rounds; round++ {
				stripePattern(want, i, round)
				if err := readVerified(ctx, vm, want, got, base[i]+int64(round)*stripe); err != nil {
					return fmt.Errorf("final readback vm%d round %d: %w", i, round, err)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("chaos run (seed %d): %v", seed, err)
	}
	return chaosResult{stats: s.Stats(), summary: s.FaultSummary(), vtime: s.Stats().VirtualTime}
}

// writeStripe retries a whole-stripe write until it sticks; stripes are
// idempotent so duplicate device-side writes are harmless.
func writeStripe(c *Ctx, vm *VM, data []byte, off int64) error {
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		if err = vm.WriteAt(c, data, off); err == nil {
			return nil
		}
	}
	return fmt.Errorf("stripe write at %d never stuck: %w", off, err)
}

// readVerified reads a stripe and compares it to the oracle; a read error —
// a transient fault, a latent sector, or a reset abort — is answered by a
// scrub-repair rewrite from the oracle before retrying.
func readVerified(c *Ctx, vm *VM, want, got []byte, off int64) error {
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		clear(got)
		if err = vm.ReadAt(c, got, off); err == nil {
			if !bytes.Equal(got, want) {
				return fmt.Errorf("stripe at %d corrupt: data mismatch", off)
			}
			return nil
		}
		// Scrub: rewriting repairs latent sectors and resolves transients.
		if werr := writeStripe(c, vm, want, off); werr != nil {
			return werr
		}
	}
	return fmt.Errorf("stripe read at %d never recovered: %w", off, err)
}

func TestChaosSoak(t *testing.T) {
	numVMs, rounds, stripeBlocks := 2, 6, 8
	if !testing.Short() {
		numVMs, rounds, stripeBlocks = 4, 16, 16
	}
	a := runChaos(t, 0xC0FFEE, numVMs, rounds, stripeBlocks, 1)

	// The run must actually have hurt: an injector that never fired proves
	// nothing about recovery.
	st := a.stats
	if st.InjectedFaults == 0 {
		t.Fatal("no faults injected; the chaos plan is inert")
	}
	if st.MediumRetries == 0 {
		t.Error("no medium retries: DTU retry path not exercised")
	}
	if st.DroppedMSIs == 0 {
		t.Error("no MSIs dropped: interrupt-loss path not exercised")
	}
	if st.DriverTimeouts == 0 {
		t.Error("no driver timeouts: completion-timeout path not exercised")
	}
	if want := int64(numVMs + 1); st.VFResets != want {
		t.Errorf("VFResets = %d, want %d (one forced FLR per VF)", st.VFResets, want)
	}
	if st.LatentHits == 0 {
		t.Error("no latent-sector read failures: latent path not exercised")
	}
	if st.LatentRepaired == 0 {
		t.Error("no latent sectors repaired: scrub path not exercised")
	}
	if want := int64(2 * numVMs); st.Snapshots != want {
		t.Errorf("Snapshots = %d, want %d (one direct + one clone-implied per tenant)", st.Snapshots, want)
	}
	if want := int64(numVMs); st.Clones != want {
		t.Errorf("Clones = %d, want %d", st.Clones, want)
	}
	if st.CowFaults == 0 || st.CowBreaks == 0 {
		t.Errorf("snapshot churn raised no CoW activity (faults=%d breaks=%d)", st.CowFaults, st.CowBreaks)
	}
	if st.SharedBlocks != 0 {
		t.Errorf("SharedBlocks = %d after churn teardown, want 0", st.SharedBlocks)
	}
	t.Logf("chaos snapshot churn: snapshots=%d clones=%d cowFaults=%d cowBreaks=%d",
		st.Snapshots, st.Clones, st.CowFaults, st.CowBreaks)
	t.Logf("chaos stats: faults=%d mediumRetries=%d mediumErrors=%d droppedMSIs=%d "+
		"timeouts=%d resubmits=%d polled=%d stale=%d gaps=%d resets=%d missFaults=%d "+
		"fetchDrops=%d cplDrops=%d vtime=%v",
		st.InjectedFaults, st.MediumRetries, st.MediumErrors, st.DroppedMSIs,
		st.DriverTimeouts, st.DriverResubmits, st.PolledCompletions, st.StaleCompletions,
		st.SeqGaps, st.VFResets, st.MissFaults, st.FetchDrops, st.CplDrops, st.VirtualTime)

	// Determinism: a second run with the same seed must replay the identical
	// fault sequence and land on the identical final state.
	b := runChaos(t, 0xC0FFEE, numVMs, rounds, stripeBlocks, 1)
	if a.summary != b.summary {
		t.Errorf("fault summaries diverge across same-seed runs:\n--- run A\n%s--- run B\n%s", a.summary, b.summary)
	}
	if a.stats != b.stats {
		t.Errorf("stats diverge across same-seed runs:\nA: %+v\nB: %+v", a.stats, b.stats)
	}
	if a.vtime != b.vtime {
		t.Errorf("virtual end time diverges: %v vs %v", a.vtime, b.vtime)
	}

	// A different seed must produce a different fault sequence (the seed is
	// real, not decorative).
	cres := runChaos(t, 0xBEEF, numVMs, rounds, stripeBlocks, 1)
	if cres.summary == a.summary {
		t.Error("different seeds produced identical fault summaries")
	}
}

// TestChaosSoakMultiQueue repeats the soak with four queue pairs per VF:
// the same fault plan now lands on a multi-queue data path, where each
// queue's sequence numbering, timeout polling, and FLR re-arming must hold
// independently. Integrity (bit-exact readback inside runChaos), liveness,
// and same-seed determinism are asserted exactly as in the single-queue
// soak.
func TestChaosSoakMultiQueue(t *testing.T) {
	numVMs, rounds, stripeBlocks := 2, 6, 8
	if !testing.Short() {
		numVMs, rounds, stripeBlocks = 4, 12, 16
	}
	a := runChaos(t, 0xC0FFEE, numVMs, rounds, stripeBlocks, 4)

	st := a.stats
	if st.InjectedFaults == 0 {
		t.Fatal("no faults injected; the chaos plan is inert")
	}
	if st.DriverTimeouts == 0 {
		t.Error("no driver timeouts: completion-timeout path not exercised")
	}
	if want := int64(numVMs + 1); st.VFResets != want {
		t.Errorf("VFResets = %d, want %d (one forced FLR per VF)", st.VFResets, want)
	}
	if st.CplDrops > 0 && st.PolledCompletions == 0 {
		t.Error("completion writes were dropped but no queue ever polled one back")
	}
	t.Logf("mq chaos stats: faults=%d droppedMSIs=%d timeouts=%d resubmits=%d "+
		"polled=%d stale=%d gaps=%d resets=%d fetchDrops=%d cplDrops=%d vtime=%v",
		st.InjectedFaults, st.DroppedMSIs, st.DriverTimeouts, st.DriverResubmits,
		st.PolledCompletions, st.StaleCompletions, st.SeqGaps, st.VFResets,
		st.FetchDrops, st.CplDrops, st.VirtualTime)

	b := runChaos(t, 0xC0FFEE, numVMs, rounds, stripeBlocks, 4)
	if a.summary != b.summary {
		t.Errorf("fault summaries diverge across same-seed runs:\n--- run A\n%s--- run B\n%s", a.summary, b.summary)
	}
	if a.stats != b.stats {
		t.Errorf("stats diverge across same-seed runs:\nA: %+v\nB: %+v", a.stats, b.stats)
	}
}

// runChaosFailSlow is the gray-failure soak: tenants keep writing and
// verifying while a churner cyclically degrades the device (latency
// multiplied and padded, ramping in) and restores it — the failure shape
// where nothing ever errors, every operation is just chronically late. The
// classic loud-fault plan stays armed underneath, so recovery machinery runs
// against a device that is simultaneously slow and faulty.
func runChaosFailSlow(t *testing.T, seed uint64, numVMs, rounds, stripeBlocks int) chaosResult {
	t.Helper()
	const blockSize = 1024
	cfg := DefaultConfig()
	cfg.UseIOMMU = true
	cfg.Fault = chaosPlan(seed)
	cfg.DriverTimeout = 3 * time.Millisecond
	cfg.DriverRetryMax = 8
	s := New(cfg)

	diskBlocks := uint64(rounds * stripeBlocks * 2)
	stripe := int64(stripeBlocks * blockSize)

	err := s.Run(func(ctx *Ctx) error {
		vms := make([]*VM, numVMs)
		for i := range vms {
			path := fmt.Sprintf("/tenant%d.img", i)
			if err := ctx.CreateImage(path, uint32(100+i), int64(diskBlocks)*blockSize, true); err != nil {
				return err
			}
			vm, err := ctx.StartVM(fmt.Sprintf("vm%d", i), BackendNeSC, path, uint32(100+i))
			if err != nil {
				return err
			}
			vms[i] = vm
		}

		// Degrade/recover churn: 3x latency plus 300us extra, ramping to full
		// strength over 200us, held for 2ms, then cleared for 1ms. Every cycle
		// crosses the workload mid-flight.
		churn := ctx.Go("fail-slow-churn", func(c *Ctx) error {
			for cycle := 0; cycle < 6; cycle++ {
				c.Degrade(0, 3, 300*time.Microsecond, 200*time.Microsecond)
				c.Sleep(2 * time.Millisecond)
				c.ClearDegradations(0)
				c.Sleep(1 * time.Millisecond)
			}
			return nil
		})

		tasks := make([]*Task, len(vms))
		for i := range vms {
			i, vm := i, vms[i]
			tasks[i] = ctx.Go(fmt.Sprintf("fail-slow-worker-%d", i), func(c *Ctx) error {
				want := make([]byte, stripe)
				got := make([]byte, stripe)
				for round := 0; round < rounds; round++ {
					stripePattern(want, i, round)
					if err := writeStripe(c, vm, want, int64(round)*stripe); err != nil {
						return err
					}
					vr := round / 2
					stripePattern(want, i, vr)
					if err := readVerified(c, vm, want, got, int64(vr)*stripe); err != nil {
						return err
					}
				}
				return nil
			})
		}
		for _, tk := range tasks {
			if err := tk.Wait(ctx); err != nil {
				return err
			}
		}
		if err := churn.Wait(ctx); err != nil {
			return err
		}
		ctx.ClearDegradations(0)

		// Final full readback at healthy speed: chronic slowness must never
		// have turned into data loss.
		want := make([]byte, stripe)
		got := make([]byte, stripe)
		for i, vm := range vms {
			for round := 0; round < rounds; round++ {
				stripePattern(want, i, round)
				if err := readVerified(ctx, vm, want, got, int64(round)*stripe); err != nil {
					return fmt.Errorf("final readback vm%d round %d: %w", i, round, err)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("fail-slow soak (seed %d): %v", seed, err)
	}
	return chaosResult{stats: s.Stats(), summary: s.FaultSummary(), vtime: s.Stats().VirtualTime}
}

// TestChaosSoakFailSlow asserts the fail-slow churn actually bit (degraded
// operations and injected extra latency are both nonzero), that no acked
// byte was lost under it, and that the whole degrade/recover schedule is
// same-seed deterministic.
func TestChaosSoakFailSlow(t *testing.T) {
	numVMs, rounds, stripeBlocks := 2, 6, 8
	if !testing.Short() {
		numVMs, rounds, stripeBlocks = 3, 12, 16
	}
	a := runChaosFailSlow(t, 0x51085, numVMs, rounds, stripeBlocks)

	st := a.stats
	if st.DegradedOps == 0 {
		t.Fatal("no operations paid fail-slow latency; the churn is inert")
	}
	if st.DegradedTime == 0 {
		t.Error("DegradedOps moved but DegradedTime is zero")
	}
	if st.InjectedFaults == 0 {
		t.Error("underlying loud-fault plan never fired")
	}
	t.Logf("fail-slow stats: degradedOps=%d degradedTime=%v faults=%d retries=%d timeouts=%d vtime=%v",
		st.DegradedOps, st.DegradedTime, st.InjectedFaults, st.MediumRetries,
		st.DriverTimeouts, st.VirtualTime)

	b := runChaosFailSlow(t, 0x51085, numVMs, rounds, stripeBlocks)
	if a.summary != b.summary {
		t.Errorf("fault summaries diverge across same-seed runs:\n--- run A\n%s--- run B\n%s", a.summary, b.summary)
	}
	if a.stats != b.stats {
		t.Errorf("stats diverge across same-seed runs:\nA: %+v\nB: %+v", a.stats, b.stats)
	}
	if a.vtime != b.vtime {
		t.Errorf("virtual end time diverges: %v vs %v", a.vtime, b.vtime)
	}
}

// corruptRegionLBA is the raw tenant's base on the corruption soak's smaller
// (16 MB) medium — small enough that full-device scrub passes stay cheap.
const corruptRegionLBA = 8000

// corruptionPlan extends the chaos schedule with the silent half: latched
// corrupt sectors in the raw tenant's region, probabilistic corrupt
// reads/writes at the medium, and payload flips on the DMA path. None of
// these fail an operation — only guard tags and end-to-end PI can see them.
// The write-latch probability is kept low enough that the scrubber's own
// repair writes stop latching fresh corruptions and the drain loop converges.
func corruptionPlan(seed uint64) *FaultPlan {
	plan := &FaultPlan{
		Seed: seed,
		// Latent (loud) sectors live past the first stripe so the probe read
		// below sees the corrupt sectors' integrity failure, not a medium
		// error. The +5000 latches sit in a region no workload ever touches:
		// only the scrubber can heal those, so the drain assertion genuinely
		// tests it.
		LatentSectors:  []int64{corruptRegionLBA + 33, corruptRegionLBA + 41, corruptRegionLBA + 5000, corruptRegionLBA + 5003},
		CorruptSectors: []int64{corruptRegionLBA + 1, corruptRegionLBA + 5, corruptRegionLBA + 17, corruptRegionLBA + 5001, corruptRegionLBA + 5007},
	}
	plan.Sites[FaultMediumRead] = FaultSiteParams{Prob: 0.004}
	plan.Sites[FaultMediumCorruptRead] = FaultSiteParams{Prob: 0.005}
	plan.Sites[FaultMediumCorruptWrite] = FaultSiteParams{Prob: 0.002}
	plan.Sites[FaultDMACorrupt] = FaultSiteParams{Prob: 0.01}
	return plan
}

// runChaosCorruption is the integrity soak: every payload the fault plan
// silently flips must be repaired by a retry, healed by a rewrite, or
// surfaced as ErrIntegrity — never handed to the guest as clean data. The
// in-test oracle (bit-exact stripe patterns) is the silent-escape detector.
func runChaosCorruption(t *testing.T, seed uint64, numVMs, rounds, stripeBlocks int) chaosResult {
	t.Helper()
	const blockSize = 1024
	cfg := DefaultConfig()
	cfg.MediumMB = 16 // full-device scrub passes stay cheap
	cfg.UseIOMMU = true
	cfg.Fault = corruptionPlan(seed)
	cfg.DriverTimeout = 3 * time.Millisecond
	cfg.DriverRetryMax = 8
	s := New(cfg)

	diskBlocks := uint64(rounds * stripeBlocks * 2)
	stripe := int64(stripeBlocks * blockSize)

	err := s.Run(func(ctx *Ctx) error {
		vms := make([]*VM, numVMs+1)
		base := make([]int64, numVMs+1)
		for i := 0; i < numVMs; i++ {
			path := fmt.Sprintf("/tenant%d.img", i)
			if err := ctx.CreateImage(path, uint32(100+i), int64(diskBlocks)*blockSize, true); err != nil {
				return err
			}
			vm, err := ctx.StartVM(fmt.Sprintf("vm%d", i), BackendNeSC, path, uint32(100+i))
			if err != nil {
				return err
			}
			vms[i] = vm
		}
		raw, err := ctx.StartRawVM("raw", BackendNeSC)
		if err != nil {
			return err
		}
		vms[numVMs] = raw
		base[numVMs] = corruptRegionLBA * blockSize

		// A read across the seeded corrupt sectors must fail loudly with
		// ErrIntegrity — the guard tags latch it, the retries cannot clear a
		// persistently corrupt sector, and PI forbids returning the payload.
		if err := raw.ReadAt(ctx, make([]byte, stripe), base[numVMs]); !errors.Is(err, ErrIntegrity) {
			return fmt.Errorf("read across seeded corrupt sectors: got %v, want ErrIntegrity", err)
		}

		tasks := make([]*Task, len(vms))
		for i := range vms {
			i, vm, off0 := i, vms[i], base[i]
			tasks[i] = ctx.Go(fmt.Sprintf("corrupt-worker-%d", i), func(c *Ctx) error {
				want := make([]byte, stripe)
				got := make([]byte, stripe)
				for round := 0; round < rounds; round++ {
					off := off0 + int64(round)*stripe
					stripePattern(want, i, round)
					if err := writeStripe(c, vm, want, off); err != nil {
						return err
					}
					vr := round / 2
					stripePattern(want, i, vr)
					if err := readVerified(c, vm, want, got, off0+int64(vr)*stripe); err != nil {
						return err
					}
				}
				return nil
			})
		}
		for _, tk := range tasks {
			if err := tk.Wait(ctx); err != nil {
				return err
			}
		}

		// Final full readback through the guards: bit-exact or loud, never
		// silently wrong.
		want := make([]byte, stripe)
		got := make([]byte, stripe)
		for i, vm := range vms {
			for round := 0; round < rounds; round++ {
				stripePattern(want, i, round)
				if err := readVerified(ctx, vm, want, got, base[i]+int64(round)*stripe); err != nil {
					return fmt.Errorf("final readback vm%d round %d: %w", i, round, err)
				}
			}
		}

		// The untouched-region latches must still be live: nothing but the
		// scrubber can have healed them.
		if st := s.Stats(); st.LatentOutstanding == 0 || st.CorruptOutstanding == 0 {
			return fmt.Errorf("expected live latches before the scrub drain (latent=%d corrupt=%d)",
				st.LatentOutstanding, st.CorruptOutstanding)
		}

		// Scrub until the latch sets drain: a scrub pass repairs latent and
		// corrupt sectors, but its own repair writes can (rarely) latch fresh
		// corruptions under FaultMediumCorruptWrite, so allow a few passes.
		for pass := 0; pass < 10; pass++ {
			st := s.Stats()
			if st.LatentOutstanding == 0 && st.CorruptOutstanding == 0 {
				break
			}
			ctx.Scrub()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("corruption soak (seed %d): %v", seed, err)
	}
	return chaosResult{stats: s.Stats(), summary: s.FaultSummary(), vtime: s.Stats().VirtualTime}
}

// TestChaosSoakCorruption drives the silent-corruption sites against the
// whole integrity stack — medium guard tags, the DTU retry ladder, driver
// PI, and the scrubber — and asserts zero silent escapes, full latch
// drainage, and same-seed determinism.
func TestChaosSoakCorruption(t *testing.T) {
	numVMs, rounds, stripeBlocks := 2, 6, 8
	if !testing.Short() {
		numVMs, rounds, stripeBlocks = 3, 12, 16
	}
	a := runChaosCorruption(t, 0xDEC0DE, numVMs, rounds, stripeBlocks)

	st := a.stats
	if st.CorruptionsInjected == 0 {
		t.Fatal("no corruptions injected; the plan is inert")
	}
	if st.CorruptionsDetected == 0 {
		t.Fatal("corruptions injected but none detected: the guards are blind")
	}
	if st.MediumGuardErrors == 0 {
		t.Error("no medium guard-tag failures: per-block CRC path not exercised")
	}
	if st.IntegrityRepairs == 0 {
		t.Error("no integrity repairs: retry/rewrite healing never fired")
	}
	if st.PIWriteErrors == 0 {
		t.Error("no PI write errors observed: device-side end-to-end check not exercised")
	}
	if st.LatentOutstanding != 0 {
		t.Errorf("LatentOutstanding = %d after scrub, want 0", st.LatentOutstanding)
	}
	if st.CorruptOutstanding != 0 {
		t.Errorf("CorruptOutstanding = %d after scrub, want 0", st.CorruptOutstanding)
	}
	if st.ScrubChunks == 0 {
		t.Error("no verify chunks serviced: the scrub drain never ran")
	}
	if st.RecoveryReads == 0 {
		t.Error("no recovery reads: scrub repaired nothing")
	}
	t.Logf("corruption stats: injected=%d detected=%d guardErrs=%d integrityErrs=%d repairs=%d "+
		"piMismatch=%d piWriteErrs=%d recoveryReads=%d scrubChunks=%d vtime=%v",
		st.CorruptionsInjected, st.CorruptionsDetected, st.MediumGuardErrors, st.IntegrityErrors,
		st.IntegrityRepairs, st.PIMismatches, st.PIWriteErrors, st.RecoveryReads, st.ScrubChunks, st.VirtualTime)

	// Same-seed determinism: identical fault sequence, stats, and end time.
	b := runChaosCorruption(t, 0xDEC0DE, numVMs, rounds, stripeBlocks)
	if a.summary != b.summary {
		t.Errorf("fault summaries diverge across same-seed runs:\n--- run A\n%s--- run B\n%s", a.summary, b.summary)
	}
	if a.stats != b.stats {
		t.Errorf("stats diverge across same-seed runs:\nA: %+v\nB: %+v", a.stats, b.stats)
	}
	if a.vtime != b.vtime {
		t.Errorf("virtual end time diverges: %v vs %v", a.vtime, b.vtime)
	}
}

// casChaosPlan extends the loud chaos schedule with the content-addressed
// tier's remote sites: transient GET failures and delays on chunk fetches,
// and a high transient-fault rate on the idempotent batched PUTs.
func casChaosPlan(seed uint64) *FaultPlan {
	plan := chaosPlan(seed)
	plan.LatentSectors = nil                                                                     // no raw tenant here; keep the plan in-range
	plan.Sites[FaultRemoteFetch] = FaultSiteParams{Prob: 0.05, DelayProb: 0.1, Delay: 25 * 1000} // 25µs
	plan.Sites[FaultRemoteStore] = FaultSiteParams{Prob: 0.3}
	return plan
}

// runChaosCAS is the content-addressed-tier soak: while an ordinary tenant
// keeps writing and verifying stripes under the loud fault plan, the main
// process churns the cas lifecycle — sealing variant images, forking the
// golden manifest, materializing fork content through faulty remote fetches
// (reads and writes both land on unmaterialized holes), and releasing
// every manifest again. A deliberately tiny chunk cache keeps the LRU
// evicting mid-churn. Every materialized byte is verified against the
// golden oracle; every write to a fork reads back bit-exactly.
func runChaosCAS(t *testing.T, seed uint64, rounds, goldenBlocks int) chaosResult {
	t.Helper()
	const blockSize = 1024
	cfg := DefaultConfig()
	cfg.UseIOMMU = true
	cfg.CAS = true
	cfg.CASCacheChunks = 16 // force evictions: working sets far exceed the cache
	cfg.Fault = casChaosPlan(seed)
	cfg.DriverTimeout = 3 * time.Millisecond
	cfg.DriverRetryMax = 8
	s := New(cfg)

	stripe := int64(8 * blockSize)
	err := s.Run(func(ctx *Ctx) error {
		// Golden master with per-block-distinct content, so dedup never
		// collapses fetches and the oracle is a pure function of the offset.
		golden := make([]byte, goldenBlocks*blockSize)
		for i := range golden {
			golden[i] = byte(i*13 + i/blockSize*149 + 17)
		}
		if err := ctx.CreateImage("/golden.img", 7, int64(len(golden)), true); err != nil {
			return err
		}
		if err := ctx.WriteHostFile("/golden.img", golden, 0); err != nil {
			return err
		}
		if _, err := ctx.SealImage("/golden.img", "golden", 7); err != nil {
			return err
		}

		// An ordinary (non-cas) tenant runs the classic stripe workload the
		// whole time: the tier's churn must not disturb its recovery machinery.
		if err := ctx.CreateImage("/tenant.img", 100, int64(4*rounds)*stripe, true); err != nil {
			return err
		}
		tvm, err := ctx.StartVM("tenant", BackendNeSC, "/tenant.img", 100)
		if err != nil {
			return err
		}
		bg := ctx.Go("cas-chaos-tenant", func(c *Ctx) error {
			want := make([]byte, stripe)
			got := make([]byte, stripe)
			for round := 0; round < rounds; round++ {
				stripePattern(want, 1, round)
				if err := writeStripe(c, tvm, want, int64(round)*stripe); err != nil {
					return err
				}
				vr := round / 2
				stripePattern(want, 1, vr)
				if err := readVerified(c, tvm, want, got, int64(vr)*stripe); err != nil {
					return err
				}
			}
			return nil
		})

		got := make([]byte, stripe)
		want := make([]byte, stripe)
		for round := 0; round < rounds; round++ {
			// Seal a variant sharing half its blocks with the golden image,
			// then release it again: refcounts must free only its private
			// chunks while the master stays intact.
			vpath := fmt.Sprintf("/variant%d.img", round)
			variant := make([]byte, len(golden))
			copy(variant, golden)
			for b := 0; b < goldenBlocks; b += 2 {
				for i := 0; i < blockSize; i++ {
					variant[b*blockSize+i] = byte(i*13 + b*149 + 29 + round)
				}
			}
			if err := ctx.CreateImage(vpath, 7, int64(len(variant)), true); err != nil {
				return err
			}
			if err := ctx.WriteHostFile(vpath, variant, 0); err != nil {
				return err
			}
			vname := fmt.Sprintf("variant%d", round)
			if _, err := ctx.SealImage(vpath, vname, 7); err != nil {
				return err
			}

			// Fork the golden manifest, boot a guest, and mix first-touch
			// reads (fetch on the read path) with writes landing on holes
			// (fetch on the write path), verifying both against the oracle.
			fpath := fmt.Sprintf("/cfork%d.img", round)
			if err := ctx.ForkImage("golden", fpath, 7); err != nil {
				return err
			}
			fvm, err := ctx.StartVM(fmt.Sprintf("cfork%d", round), BackendNeSC, fpath, 7)
			if err != nil {
				return err
			}
			roff := int64(round%4) * stripe
			if err := readVerified(ctx, fvm, golden[roff:roff+stripe], got, roff); err != nil {
				return fmt.Errorf("round %d fork first-touch read: %w", round, err)
			}
			woff := int64(4+round%4) * stripe
			stripePattern(want, 2, round)
			if err := writeStripe(ctx, fvm, want, woff); err != nil {
				return fmt.Errorf("round %d fork write over holes: %w", round, err)
			}
			if err := readVerified(ctx, fvm, want, got, woff); err != nil {
				return fmt.Errorf("round %d fork write readback: %w", round, err)
			}
			fvm.Stop(ctx)
			if err := ctx.ReleaseImage(fpath); err != nil {
				return err
			}
			if err := ctx.ReleaseSealed(vname); err != nil {
				return err
			}
		}
		if err := bg.Wait(ctx); err != nil {
			return err
		}

		// After all churn the golden manifest must still materialize cleanly.
		fin := "/final-fork.img"
		if err := ctx.ForkImage("golden", fin, 7); err != nil {
			return err
		}
		fvm, err := ctx.StartVM("final-fork", BackendNeSC, fin, 7)
		if err != nil {
			return err
		}
		all := make([]byte, len(golden))
		if err := readVerified(ctx, fvm, golden, all, 0); err != nil {
			return fmt.Errorf("final fork read: %w", err)
		}
		fvm.Stop(ctx)
		if err := ctx.ReleaseImage(fin); err != nil {
			return err
		}
		if err := ctx.CheckHostFS(); err != nil {
			return fmt.Errorf("fsck after cas churn: %w", err)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("cas soak (seed %d): %v", seed, err)
	}
	return chaosResult{stats: s.Stats(), summary: s.FaultSummary(), vtime: s.Stats().VirtualTime}
}

// TestChaosSoakCAS asserts the content-addressed churn actually exercised
// the tier (dedup, fetch-path misses on reads and writes, remote retries,
// cache evictions, refcounted releases), that every materialized or written
// byte stayed bit-exact under the fault plan, and that the whole
// seal/fork/release schedule replays same-seed deterministically.
func TestChaosSoakCAS(t *testing.T) {
	rounds, goldenBlocks := 4, 64
	if !testing.Short() {
		rounds, goldenBlocks = 8, 96
	}
	a := runChaosCAS(t, 0xCA5CADE, rounds, goldenBlocks)

	st := a.stats
	if st.InjectedFaults == 0 {
		t.Fatal("no faults injected; the cas chaos plan is inert")
	}
	if st.CASDedupHits == 0 {
		t.Error("variant sealing produced no dedup hits")
	}
	if st.CASFetchMisses == 0 || st.CASMaterializations == 0 {
		t.Errorf("fetch path not exercised (misses=%d materializations=%d)",
			st.CASFetchMisses, st.CASMaterializations)
	}
	if st.CASRemoteRetries == 0 {
		t.Error("no remote retries: the RemoteFetch/RemoteStore faults never bit")
	}
	if st.CASCacheEvictions == 0 {
		t.Error("no cache evictions: the tiny chunk cache never churned")
	}
	if st.CASReleases == 0 {
		t.Error("no manifests released")
	}
	if st.CASChunksLive == 0 {
		t.Error("golden chunks vanished: releases freed too much")
	}
	t.Logf("cas soak stats: faults=%d dedupHits=%d fetchMisses=%d materializations=%d "+
		"remoteFetches=%d remoteRetries=%d cacheHits=%d cacheEvictions=%d releases=%d chunksLive=%d vtime=%v",
		st.InjectedFaults, st.CASDedupHits, st.CASFetchMisses, st.CASMaterializations,
		st.CASRemoteFetches, st.CASRemoteRetries, st.CASCacheHits, st.CASCacheEvictions,
		st.CASReleases, st.CASChunksLive, st.VirtualTime)

	// Same-seed determinism: identical fault sequence, stats, and end time.
	b := runChaosCAS(t, 0xCA5CADE, rounds, goldenBlocks)
	if a.summary != b.summary {
		t.Errorf("fault summaries diverge across same-seed runs:\n--- run A\n%s--- run B\n%s", a.summary, b.summary)
	}
	if a.stats != b.stats {
		t.Errorf("stats diverge across same-seed runs:\nA: %+v\nB: %+v", a.stats, b.stats)
	}
	if a.vtime != b.vtime {
		t.Errorf("virtual end time diverges: %v vs %v", a.vtime, b.vtime)
	}

	// A different seed must produce a different fault sequence.
	c := runChaosCAS(t, 0xDECAF, rounds, goldenBlocks)
	if c.summary == a.summary {
		t.Error("different seeds produced identical fault summaries")
	}
}

// TestChaosSoakCorruptionWithScrubber repeats the soak with the background
// scrubber running the whole time: scavenger-priority verify traffic must
// not break integrity, liveness, or determinism while it heals latches
// behind the workload.
func TestChaosSoakCorruptionWithScrubber(t *testing.T) {
	const blockSize = 1024
	numVMs, rounds, stripeBlocks := 2, 6, 8
	cfg := DefaultConfig()
	cfg.UseIOMMU = true
	cfg.MediumMB = 8 // small device so background passes complete mid-run
	cfg.Fault = corruptionPlan(0xFEED)
	cfg.Fault.LatentSectors = nil // raw region of the small device stays in range
	cfg.Fault.CorruptSectors = []int64{100, 300, 7000}
	cfg.DriverTimeout = 3 * time.Millisecond
	cfg.DriverRetryMax = 8
	cfg.Scrub = true
	cfg.ScrubInterval = 50 * time.Microsecond
	s := New(cfg)

	diskBlocks := uint64(rounds * stripeBlocks * 2)
	stripe := int64(stripeBlocks * blockSize)
	err := s.Run(func(ctx *Ctx) error {
		vms := make([]*VM, numVMs)
		for i := range vms {
			path := fmt.Sprintf("/tenant%d.img", i)
			if err := ctx.CreateImage(path, uint32(100+i), int64(diskBlocks)*blockSize, true); err != nil {
				return err
			}
			vm, err := ctx.StartVM(fmt.Sprintf("vm%d", i), BackendNeSC, path, uint32(100+i))
			if err != nil {
				return err
			}
			vms[i] = vm
		}
		tasks := make([]*Task, len(vms))
		for i := range vms {
			i, vm := i, vms[i]
			tasks[i] = ctx.Go(fmt.Sprintf("scrub-soak-%d", i), func(c *Ctx) error {
				want := make([]byte, stripe)
				got := make([]byte, stripe)
				for round := 0; round < rounds; round++ {
					stripePattern(want, i, round)
					if err := writeStripe(c, vm, want, int64(round)*stripe); err != nil {
						return err
					}
					vr := round / 2
					stripePattern(want, i, vr)
					if err := readVerified(c, vm, want, got, int64(vr)*stripe); err != nil {
						return err
					}
				}
				return nil
			})
		}
		for _, tk := range tasks {
			if err := tk.Wait(ctx); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scrubber soak: %v", err)
	}
	st := s.Stats()
	if st.ScrubChunks == 0 {
		t.Error("background scrubber serviced no verify chunks")
	}
	if st.ScrubBlocks == 0 {
		t.Error("background scrubber verified no blocks")
	}
	t.Logf("scrubber soak: passes=%d blocks=%d repairs=%d chunks=%d injected=%d detected=%d vtime=%v",
		st.ScrubPasses, st.ScrubBlocks, st.ScrubRepairs, st.ScrubChunks,
		st.CorruptionsInjected, st.CorruptionsDetected, st.VirtualTime)
}
