package nesc

import (
	"strings"

	"nesc/internal/bench"
)

// ExperimentInfo describes one regenerable paper artifact or ablation.
type ExperimentInfo struct {
	Name  string
	Title string
}

// Experiments lists every experiment the harness can regenerate: the
// paper's Tables I–II and Figures 2, 9, 10, 11, 12, plus the ablations
// documented in DESIGN.md.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range bench.All() {
		out = append(out, ExperimentInfo{Name: e.Name, Title: e.Title})
	}
	return out
}

// RunExperiment regenerates one experiment on the default calibrated
// platform and returns its rendered tables.
func RunExperiment(name string) (string, error) {
	e, err := bench.ByName(name)
	if err != nil {
		return "", err
	}
	tables, err := e.Run(bench.DefaultConfig())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}
