package nesc_test

import (
	"fmt"

	"nesc"
)

// The canonical flow: create an image on the hypervisor's filesystem,
// export it as a virtual function, and do guest I/O through the device.
func Example() {
	sim := nesc.New(nesc.DefaultConfig())
	err := sim.Run(func(ctx *nesc.Ctx) error {
		if err := ctx.CreateImage("/tenant.img", 100, 8<<20, false); err != nil {
			return err
		}
		vm, err := ctx.StartVM("tenant", nesc.BackendNeSC, "/tenant.img", 100)
		if err != nil {
			return err
		}
		if err := vm.WriteAt(ctx, []byte("hello"), 0); err != nil {
			return err
		}
		got := make([]byte, 5)
		if err := vm.ReadAt(ctx, got, 0); err != nil {
			return err
		}
		fmt.Printf("guest read %q from VF %d\n", got, vm.VFIndex())
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: guest read "hello" from VF 0
}

// Permission enforcement: the hypervisor refuses to export a file to a
// tenant without filesystem access — the paper's protection model.
func ExampleCtx_StartVM_permissionDenied() {
	sim := nesc.New(nesc.Config{MediumMB: 32})
	_ = sim.Run(func(ctx *nesc.Ctx) error {
		if err := ctx.CreateImage("/alice.img", 100, 1<<20, false); err != nil {
			return err
		}
		if _, err := ctx.StartVM("mallory", nesc.BackendNeSC, "/alice.img", 200); err != nil {
			fmt.Println("denied")
		}
		return nil
	})
	// Output: denied
}

// Comparing backends: the same workload runs against any of the paper's
// three storage virtualization methods.
func ExampleBackend() {
	sim := nesc.New(nesc.Config{MediumMB: 32})
	_ = sim.Run(func(ctx *nesc.Ctx) error {
		for _, b := range []nesc.Backend{nesc.BackendNeSC, nesc.BackendVirtio, nesc.BackendEmulation} {
			path := "/" + string(b) + ".img"
			if err := ctx.CreateImage(path, 1, 1<<20, false); err != nil {
				return err
			}
			vm, err := ctx.StartVM(string(b), b, path, 1)
			if err != nil {
				return err
			}
			start := ctx.Now()
			if err := vm.WriteAt(ctx, make([]byte, 4096), 0); err != nil {
				return err
			}
			_ = start // per-backend latencies are compared in EXPERIMENTS.md
			fmt.Println(vm.Backend())
		}
		return nil
	})
	// Output:
	// nesc
	// virtio
	// emulation
}

// Nested filesystem: a guest formats its own filesystem inside the virtual
// disk (paper §IV-D).
func ExampleVM_FormatFS() {
	sim := nesc.New(nesc.Config{MediumMB: 64})
	_ = sim.Run(func(ctx *nesc.Ctx) error {
		if err := ctx.CreateImage("/g.img", 7, 8<<20, false); err != nil {
			return err
		}
		vm, err := ctx.StartVM("vm", nesc.BackendNeSC, "/g.img", 7)
		if err != nil {
			return err
		}
		gfs, err := vm.FormatFS(ctx)
		if err != nil {
			return err
		}
		f, err := gfs.Create(ctx, "/notes.txt")
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(ctx, []byte("nested"), 0); err != nil {
			return err
		}
		names, err := gfs.List(ctx, "/")
		if err != nil {
			return err
		}
		fmt.Println(names)
		return nil
	})
	// Output: [notes.txt]
}

// The experiment registry regenerates every table and figure of the paper.
func ExampleExperiments() {
	for _, e := range nesc.Experiments()[:3] {
		fmt.Println(e.Name)
	}
	// Output:
	// table1
	// table2
	// fig2
}
