package nesc

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// Multi-device fabric tests: synchronous mirroring, device failover with
// zero acknowledged-write loss, resilvering back to full redundancy, and
// live VF migration under load.

// fillPattern deterministically fills p from a seed (same generator as the
// chaos tests use, kept local so the two suites stay independent).
func fillPattern(p []byte, seed int64) {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0x243F6A8885A308D3
	for i := range p {
		s = s*6364136223846793005 + 1442695040888963407
		p[i] = byte(s >> 33)
	}
}

// mirroredSim assembles a fleet platform with an (empty) fault plan so
// device kill latches are available.
func mirroredSim(devices int) *Simulation {
	cfg := DefaultConfig()
	cfg.Devices = devices
	cfg.MediumMB = 16
	cfg.Fault = &FaultPlan{Seed: 42}
	cfg.DriverTimeout = 2 * time.Millisecond
	cfg.DriverRetryMax = 4
	return New(cfg)
}

// ackedWrite is one acknowledged stripe of the failover workload — the
// oracle the read-back phase checks against.
type ackedWrite struct {
	off  int64
	seed int64
	n    int
}

func TestMirroredWriteAndRead(t *testing.T) {
	s := mirroredSim(2)
	err := s.Run(func(ctx *Ctx) error {
		const imgBytes = 1 << 20
		for d := 0; d < 2; d++ {
			if err := ctx.CreateImageOn(d, "/m.img", 7, imgBytes, false); err != nil {
				return err
			}
		}
		vm, err := ctx.StartMirroredVM("m", "/m.img", 7, []int{0, 1}, MirrorConfig{})
		if err != nil {
			return err
		}
		if !vm.Mirrored() {
			return fmt.Errorf("vm not mirrored")
		}
		buf := make([]byte, 8192)
		fillPattern(buf, 1)
		if err := vm.WriteAt(ctx, buf, 4096); err != nil {
			return err
		}
		got := make([]byte, len(buf))
		if err := vm.ReadAt(ctx, got, 4096); err != nil {
			return err
		}
		if !bytes.Equal(buf, got) {
			return fmt.Errorf("mirrored read-back mismatch")
		}
		st := vm.FabricStatus()
		if len(st) != 2 || st[0].State != "healthy" || st[1].State != "healthy" {
			return fmt.Errorf("unexpected fabric status %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := s.FabricStats()
	if fs.MirroredWrites == 0 {
		t.Fatalf("no mirrored writes recorded: %+v", fs)
	}
	if fs.DegradedWrites != 0 || fs.WriteFailures != 0 || fs.Failovers != 0 {
		t.Fatalf("healthy mirror saw degradation: %+v", fs)
	}
}

// TestDeviceKillZeroAckedWriteLoss is the headline chaos test: a 3-way
// mirror loses one device mid-workload. Every write acknowledged to the
// guest — before, during, and after the failure — must read back
// bit-exactly, the mirror must keep accepting writes in degraded mode, and
// reviving the device must resilver it back to full redundancy.
func TestDeviceKillZeroAckedWriteLoss(t *testing.T) {
	s := mirroredSim(3)
	var acked []ackedWrite
	err := s.Run(func(ctx *Ctx) error {
		const imgBytes = 1 << 20
		for d := 0; d < 3; d++ {
			if err := ctx.CreateImageOn(d, "/w.img", 7, imgBytes, false); err != nil {
				return err
			}
		}
		vm, err := ctx.StartMirroredVM("w", "/w.img", 7, []int{0, 1, 2}, MirrorConfig{
			SuspectThreshold: 2, FailThreshold: 3, RecoverThreshold: 3,
			RegionBlocks: 32, ResilverInterval: 20 * time.Microsecond,
		})
		if err != nil {
			return err
		}
		const stripe = 4096
		writer := ctx.Go("writer", func(ctx *Ctx) error {
			buf := make([]byte, stripe)
			for i := 0; i < 120; i++ {
				off := int64(i%64) * stripe
				seed := int64(i) + 1000
				fillPattern(buf, seed)
				if err := vm.WriteAt(ctx, buf, off); err != nil {
					return fmt.Errorf("write %d: %w", i, err)
				}
				acked = append(acked, ackedWrite{off: off, seed: seed, n: stripe})
			}
			return nil
		})
		// Let the workload get going, then kill device 2 under it.
		ctx.Sleep(300 * time.Microsecond)
		if err := ctx.KillDevice(2); err != nil {
			return err
		}
		if err := writer.Wait(ctx); err != nil {
			return err
		}
		// The mirror must have fenced the dead device and kept going.
		st := vm.FabricStatus()
		if st[2].State != "failed" {
			return fmt.Errorf("device 2 not fenced: %+v", st)
		}
		if st[0].State != "healthy" || st[1].State != "healthy" {
			return fmt.Errorf("surviving replicas unhealthy: %+v", st)
		}
		// Zero acknowledged-write loss: every stripe reads back as its
		// last acknowledged write.
		final := make(map[int64]int64)
		for _, a := range acked {
			final[a.off] = a.seed
		}
		got, want := make([]byte, stripe), make([]byte, stripe)
		for off, seed := range final {
			fillPattern(want, seed)
			if err := vm.ReadAt(ctx, got, off); err != nil {
				return fmt.Errorf("read-back at %d: %w", off, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("acked write at %d lost or corrupt", off)
			}
		}
		// Revive and wait for the resilver to restore redundancy.
		if err := ctx.ReviveDevice(2); err != nil {
			return err
		}
		for i := 0; i < 200 && vm.FabricStatus()[2].State != "healthy"; i++ {
			ctx.Sleep(100 * time.Microsecond)
		}
		if st := vm.FabricStatus(); st[2].State != "healthy" || st[2].DirtyRegions != 0 {
			return fmt.Errorf("resilver did not restore redundancy: %+v", st)
		}
		// Re-verify the oracle after resilvering (reads may now land on the
		// rebuilt replica).
		for off, seed := range final {
			fillPattern(want, seed)
			if err := vm.ReadAt(ctx, got, off); err != nil {
				return fmt.Errorf("post-resilver read at %d: %w", off, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("post-resilver corruption at %d", off)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(acked) != 120 {
		t.Fatalf("writer finished %d/120 writes", len(acked))
	}
	fs := s.FabricStats()
	if fs.Failovers == 0 {
		t.Fatalf("no failover recorded: %+v", fs)
	}
	if fs.DegradedWrites == 0 {
		t.Fatalf("no degraded writes recorded (kill landed outside workload?): %+v", fs)
	}
	if fs.WriteFailures != 0 {
		t.Fatalf("writes lost entirely: %+v", fs)
	}
	if fs.ResilverRestores == 0 || fs.ResilverBlocks == 0 {
		t.Fatalf("resilver did not run: %+v", fs)
	}
}

// TestLiveMigrationUnderLoad migrates a mirror leg between devices while
// the guest keeps writing: data survives bit-exactly, the stop-and-copy
// pause is bounded, and the source device no longer carries the image.
func TestLiveMigrationUnderLoad(t *testing.T) {
	s := mirroredSim(2)
	var acked []ackedWrite
	var rep MigrationReport
	err := s.Run(func(ctx *Ctx) error {
		const imgBytes = 1 << 20
		if err := ctx.CreateImageOn(0, "/mig.img", 7, imgBytes, false); err != nil {
			return err
		}
		vm, err := ctx.StartMirroredVM("mig", "/mig.img", 7, []int{0}, MirrorConfig{})
		if err != nil {
			return err
		}
		const stripe = 4096
		writer := ctx.Go("writer", func(ctx *Ctx) error {
			buf := make([]byte, stripe)
			for i := 0; i < 100; i++ {
				off := int64(i%32) * stripe
				seed := int64(i) + 5000
				fillPattern(buf, seed)
				if err := vm.WriteAt(ctx, buf, off); err != nil {
					return fmt.Errorf("write %d: %w", i, err)
				}
				acked = append(acked, ackedWrite{off: off, seed: seed, n: stripe})
			}
			return nil
		})
		ctx.Sleep(200 * time.Microsecond)
		rep, err = vm.Migrate(ctx, 0, 1)
		if err != nil {
			return err
		}
		if err := writer.Wait(ctx); err != nil {
			return err
		}
		if st := vm.FabricStatus(); st[0].Dev != 1 {
			return fmt.Errorf("leg not retargeted: %+v", st)
		}
		final := make(map[int64]int64)
		for _, a := range acked {
			final[a.off] = a.seed
		}
		got, want := make([]byte, stripe), make([]byte, stripe)
		for off, seed := range final {
			fillPattern(want, seed)
			if err := vm.ReadAt(ctx, got, off); err != nil {
				return fmt.Errorf("post-migration read at %d: %w", off, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("post-migration corruption at %d", off)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BulkBlocks == 0 {
		t.Fatalf("bulk copy empty: %+v", rep)
	}
	if pause := time.Duration(rep.Pause); pause <= 0 || pause > 2*time.Millisecond {
		t.Fatalf("stop-and-copy pause out of bounds: %v", pause)
	}
	if fs := s.FabricStats(); fs.Migrations != 1 || fs.LastMigrationPause != time.Duration(rep.Pause) {
		t.Fatalf("migration stats mismatch: %+v vs report %+v", fs, rep)
	}
}

// TestFabricExperimentDeterminism regenerates the fabric experiment twice:
// the rendered tables (the exact content of results/fabric.json) must be
// byte-identical across runs.
func TestFabricExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full experiment runs; skipped under -short")
	}
	a, err := RunExperiment("fabric")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment("fabric")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fabric experiment not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestFabricDeterminism runs the failover scenario twice with the same
// seed and asserts identical fabric stats and virtual end time.
func TestFabricDeterminism(t *testing.T) {
	run := func() (FabricStats, time.Duration) {
		s := mirroredSim(3)
		err := s.Run(func(ctx *Ctx) error {
			for d := 0; d < 3; d++ {
				if err := ctx.CreateImageOn(d, "/d.img", 7, 1<<20, false); err != nil {
					return err
				}
			}
			vm, err := ctx.StartMirroredVM("d", "/d.img", 7, []int{0, 1, 2}, MirrorConfig{
				SuspectThreshold: 2, FailThreshold: 3, RecoverThreshold: 3,
				RegionBlocks: 32, ResilverInterval: 20 * time.Microsecond,
			})
			if err != nil {
				return err
			}
			buf := make([]byte, 4096)
			w := ctx.Go("w", func(ctx *Ctx) error {
				for i := 0; i < 60; i++ {
					fillPattern(buf, int64(i))
					if err := vm.WriteAt(ctx, buf, int64(i%16)*4096); err != nil {
						return err
					}
				}
				return nil
			})
			ctx.Sleep(200 * time.Microsecond)
			if err := ctx.KillDevice(1); err != nil {
				return err
			}
			if err := w.Wait(ctx); err != nil {
				return err
			}
			if err := ctx.ReviveDevice(1); err != nil {
				return err
			}
			for i := 0; i < 200 && vm.FabricStatus()[1].State != "healthy"; i++ {
				ctx.Sleep(100 * time.Microsecond)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.FabricStats(), s.Stats().VirtualTime
	}
	fs1, t1 := run()
	fs2, t2 := run()
	if fs1 != fs2 {
		t.Fatalf("fabric stats diverged:\n%+v\n%+v", fs1, fs2)
	}
	if t1 != t2 {
		t.Fatalf("virtual end time diverged: %v vs %v", t1, t2)
	}
}
