package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestNilRegistryAndInstrumentsNoOp(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x", "", NoLabels)
	g := r.Gauge("x", "", NoLabels)
	h := r.Histogram("x", "", NoLabels)
	r.GaugeFunc("x", "", NoLabels, func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(100)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments recorded something")
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry exported %q", b.String())
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("nesc_test_total", "help", VFLabel(1))
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if again := r.Counter("nesc_test_total", "help", VFLabel(1)); again != c {
		t.Fatal("second lookup returned a different series")
	}
	g := r.Gauge("nesc_test_gauge", "", VFQOp(2, 1, "read"))
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
}

// TestHistogramBucketBoundaries pins the log2 bucket contract at the exact
// power-of-two edges: a bound's own value lands in its bucket (inclusive
// upper bound), one past it in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := &Histogram{}
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 0}, // (-inf, 1]
		{2, 1},         // (1, 2]
		{3, 2}, {4, 2}, // (2, 4]
		{5, 3}, {8, 3}, // (4, 8]
		{1024, 10},    // (512, 1024]
		{1025, 11},    // (1024, 2048]
		{1 << 39, 39}, // top finite bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
		h.Observe(c.v)
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	if h.Overflow() != 0 {
		t.Fatalf("overflow = %d, want 0", h.Overflow())
	}
	for i, want := range map[int]int64{0: 3, 1: 1, 2: 2, 3: 2, 10: 1, 11: 1, 39: 1} {
		if h.buckets[i] != want {
			t.Errorf("bucket[%d] = %d, want %d", i, h.buckets[i], want)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := &Histogram{}
	top := UpperBound(HistogramBuckets - 1)
	h.Observe(top)     // last finite bucket, inclusive
	h.Observe(top + 1) // overflow
	h.Observe(math.MaxInt64)
	if h.Overflow() != 2 {
		t.Fatalf("overflow = %d, want 2", h.Overflow())
	}
	if h.buckets[HistogramBuckets-1] != 1 {
		t.Fatalf("top finite bucket = %d, want 1", h.buckets[HistogramBuckets-1])
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	// A quantile landing in the overflow reports the last finite bound.
	if q := h.Quantile(1); q != float64(top) {
		t.Fatalf("Quantile(1) = %v, want %v", q, float64(top))
	}
}

func TestHistogramQuantileWithinBucketFactor(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 1000; i++ {
		h.Observe(700) // all samples in (512, 1024]
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		est := h.Quantile(q)
		if est < 512 || est > 1024 {
			t.Fatalf("Quantile(%v) = %v, outside the sample's bucket (512,1024]", q, est)
		}
	}
	if m := h.Mean(); m != 700 {
		t.Fatalf("mean = %v, want exact 700 (sum is not bucketed)", m)
	}
}

func TestLabelCardinalityCap(t *testing.T) {
	r := New()
	for i := 0; i < MaxSeriesPerFamily+50; i++ {
		r.Counter("nesc_capped_total", "", Labels{VF: i, Q: -1}).Inc()
	}
	if d := r.Dropped("nesc_capped_total"); d != 50 {
		t.Fatalf("dropped = %d, want 50", d)
	}
	// All 50 overflowing label sets share one series.
	over := r.Counter("nesc_capped_total", "", Labels{VF: -1, Q: -1, Op: "overflow"})
	if over.Value() != 50 {
		t.Fatalf("overflow series = %d, want 50", over.Value())
	}
	// Pre-cap series are untouched.
	if v := r.Counter("nesc_capped_total", "", Labels{VF: 0, Q: -1}).Value(); v != 1 {
		t.Fatalf("series vf=0 = %d, want 1", v)
	}
}

func TestGaugeFuncReRegistrationReplaces(t *testing.T) {
	r := New()
	r.GaugeFunc("nesc_live", "", NoLabels, func() float64 { return 1 })
	r.GaugeFunc("nesc_live", "", NoLabels, func() float64 { return 2 })
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "nesc_live 2") {
		t.Fatalf("expected replaced gauge func value 2 in:\n%s", b.String())
	}
}

// parsePromText is a strict little parser for the exposition format: every
// non-comment line must be `name[{k="v",...}] value`.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		var val float64
		if _, err := fmt.Sscanf(valStr, "%g", &val); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			name = key[:i]
			body := key[i+1 : len(key)-1]
			for _, pair := range strings.Split(body, ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 || len(pair) < eq+3 || pair[eq+1] != '"' || pair[len(pair)-1] != '"' {
					t.Fatalf("malformed label pair %q in %q", pair, line)
				}
			}
		}
		for _, ch := range name {
			if !(ch == '_' || ch == ':' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')) {
				t.Fatalf("invalid metric name %q", name)
			}
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = val
	}
	return samples
}

func TestPrometheusExport(t *testing.T) {
	r := New()
	r.Counter("nesc_reqs_total", "requests completed", VFQOp(1, 0, "read")).Add(7)
	r.Gauge("nesc_depth", "", Labels{VF: 1, Q: 2}).Set(3.5)
	h := r.Histogram("nesc_lat_ns", "stage latency", VFQOp(1, 0, "write"))
	h.Observe(1)
	h.Observe(3)
	h.Observe(1000)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, b.String())

	checks := map[string]float64{
		`nesc_reqs_total{vf="1",q="0",op="read"}`:               7,
		`nesc_depth{vf="1",q="2"}`:                              3.5,
		`nesc_lat_ns_count{vf="1",q="0",op="write"}`:            3,
		`nesc_lat_ns_sum{vf="1",q="0",op="write"}`:              1004,
		`nesc_lat_ns_bucket{vf="1",q="0",op="write",le="1"}`:    1,
		`nesc_lat_ns_bucket{vf="1",q="0",op="write",le="4"}`:    2,
		`nesc_lat_ns_bucket{vf="1",q="0",op="write",le="1024"}`: 3,
		`nesc_lat_ns_bucket{vf="1",q="0",op="write",le="+Inf"}`: 3,
	}
	for key, want := range checks {
		got, ok := samples[key]
		if !ok {
			t.Fatalf("missing sample %q in:\n%s", key, b.String())
		}
		if got != want {
			t.Fatalf("sample %q = %v, want %v", key, got, want)
		}
	}
	// Cumulative monotonicity across emitted buckets.
	prev := -1.0
	for _, le := range []string{"1", "4", "1024", "+Inf"} {
		v := samples[`nesc_lat_ns_bucket{vf="1",q="0",op="write",le="`+le+`"}`]
		if v < prev {
			t.Fatalf("bucket le=%s count %v below previous %v", le, v, prev)
		}
		prev = v
	}
	// Determinism: a second export is byte-identical.
	var b2 bytes.Buffer
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("two exports of an idle registry differ")
	}
}

func TestJSONExport(t *testing.T) {
	r := New()
	r.Counter("nesc_a_total", "", VFLabel(3)).Add(2)
	r.Histogram("nesc_b_ns", "", NoLabels).Observe(100)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var fams []struct {
		Name   string `json:"name"`
		Kind   string `json:"kind"`
		Series []struct {
			VF    *int     `json:"vf"`
			Value *float64 `json:"value"`
			Hist  *struct {
				Count   int64            `json:"count"`
				Buckets map[string]int64 `json:"buckets"`
			} `json:"histogram"`
		} `json:"series"`
	}
	if err := json.Unmarshal(b.Bytes(), &fams); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, b.String())
	}
	// User families in sorted order, then the synthesized cardinality-health
	// trailer.
	if len(fams) != 3 || fams[0].Name != "nesc_a_total" || fams[1].Name != "nesc_b_ns" ||
		fams[2].Name != "nesc_metrics_series_dropped_total" {
		t.Fatalf("unexpected families: %+v", fams)
	}
	if *fams[2].Series[0].Value != 0 {
		t.Fatalf("dropped-series trailer non-zero on an uncapped registry: %+v", fams[2].Series[0])
	}
	if *fams[0].Series[0].VF != 3 || *fams[0].Series[0].Value != 2 {
		t.Fatalf("counter series wrong: %+v", fams[0].Series[0])
	}
	if fams[1].Series[0].Hist.Count != 1 || fams[1].Series[0].Hist.Buckets["128"] != 1 {
		t.Fatalf("histogram series wrong: %+v", fams[1].Series[0].Hist)
	}
}

func TestFamilyKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r := New()
	r.Counter("nesc_x", "", NoLabels)
	r.Gauge("nesc_x", "", NoLabels)
}

func TestSeriesCapOverridePreservesOp(t *testing.T) {
	r := New()
	r.SetSeriesCap(4)
	// Ten VFs, two ops: the first four label sets get real series, the rest
	// aggregate into one overflow series per op — the op dimension survives
	// the cardinality collapse.
	for i := 0; i < 10; i++ {
		r.Counter("nesc_ops_total", "", Labels{VF: i, Q: -1, Op: "read"}).Inc()
		r.Counter("nesc_ops_total", "", Labels{VF: i, Q: -1, Op: "write"}).Inc()
	}
	if d := r.Dropped("nesc_ops_total"); d != 16 {
		t.Fatalf("dropped = %d, want 16", d)
	}
	if v := r.Counter("nesc_ops_total", "", Labels{VF: -1, Q: -1, Op: "read_overflow"}).Value(); v != 8 {
		t.Fatalf("read overflow = %d, want 8", v)
	}
	if v := r.Counter("nesc_ops_total", "", Labels{VF: -1, Q: -1, Op: "write_overflow"}).Value(); v != 8 {
		t.Fatalf("write overflow = %d, want 8", v)
	}
	if total := r.DroppedTotal(); total != 16 {
		t.Fatalf("DroppedTotal = %d, want 16", total)
	}
	// The exporter surfaces registry health as a synthesized counter.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nesc_metrics_series_dropped_total 16\n") {
		t.Errorf("prometheus export missing dropped-series trailer:\n%s", buf.String())
	}
	// Resetting the cap restores the default for future series.
	r.SetSeriesCap(0)
	r.Counter("nesc_fresh_total", "", Labels{VF: 99, Q: -1}).Inc()
	if d := r.Dropped("nesc_fresh_total"); d != 0 {
		t.Fatalf("default cap dropped %d series on a fresh family", d)
	}
}
