package metrics

import "testing"

// The instrument hot paths run inside the device pipeline on every request;
// they must never allocate in steady state (registration may, once).

func TestInstrumentHotPathsDoNotAllocate(t *testing.T) {
	r := New()
	c := r.Counter("nesc_alloc_test_total", "alloc guard counter", VFLabel(1))
	g := r.Gauge("nesc_alloc_test_gauge", "alloc guard gauge", VFLabel(1))
	h := r.Histogram("nesc_alloc_test_ns", "alloc guard histogram", VFLabel(1))

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(42) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(12_345) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(1000, tc.fn); avg != 0 {
			t.Errorf("%s allocates %v per call, want 0", tc.name, avg)
		}
	}

	// Nil instruments are the disabled-telemetry fast path: also alloc-free.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	nilCases := []struct {
		name string
		fn   func()
	}{
		{"nil Counter.Inc", func() { nc.Inc() }},
		{"nil Gauge.Set", func() { ng.Set(1) }},
		{"nil Histogram.Observe", func() { nh.Observe(1) }},
	}
	for _, tc := range nilCases {
		if avg := testing.AllocsPerRun(1000, tc.fn); avg != 0 {
			t.Errorf("%s allocates %v per call, want 0", tc.name, avg)
		}
	}
}

func TestRepeatLookupDoesNotGrowSeries(t *testing.T) {
	r := New()
	// Re-requesting the same {family, labels} must return the same series,
	// not mint a new one per call site.
	a := r.Counter("nesc_alloc_lookup_total", "lookup identity", VFQOp(2, 1, "read"))
	b := r.Counter("nesc_alloc_lookup_total", "lookup identity", VFQOp(2, 1, "read"))
	if a != b {
		t.Fatal("same family+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared series value = %d, want 1", b.Value())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("nesc_bench_total", "bench counter", NoLabels)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := New().Gauge("nesc_bench_gauge", "bench gauge", NoLabels)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("nesc_bench_ns", "bench histogram", NoLabels)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
