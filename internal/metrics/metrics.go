// Package metrics is the platform's metric registry: named counters, gauges,
// and fixed-bucket log2 histograms, each optionally carrying the canonical
// label triple (virtual function, queue, operation). One registry absorbs the
// controller's scattered Stats fields, the AER-style MMIO counters, and the
// span-derived stage latencies behind a single exportable surface
// (Prometheus text format and JSON snapshots).
//
// Design constraints, in order:
//
//   - Virtual-time neutrality: recording a sample never touches the
//     simulation engine. Metrics are pure bookkeeping on the host side of
//     the simulator, so enabling them cannot perturb an experiment.
//   - Zero allocation on the hot path: instrument handles are resolved once
//     (GetOrCreate-style lookup keyed by a comparable struct) and then
//     updated with plain field arithmetic. A nil instrument is a valid
//     no-op receiver, so disabled telemetry costs one predictable branch.
//   - Bounded cardinality: each family caps its series count; overflowing
//     series collapse into a single "other" series and are counted, never
//     silently dropped.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Labels is the canonical label triple. The zero value means "no labels"
// (a scalar series). VF and Q use -1 for "not applicable" so that VF 0 (the
// PF) stays representable.
type Labels struct {
	VF int    // function index (0 = PF), -1 = unlabelled
	Q  int    // queue-pair index, -1 = unlabelled
	Op string // operation ("read", "write", "verify", ...), "" = unlabelled
}

// NoLabels is the explicit unlabelled triple.
var NoLabels = Labels{VF: -1, Q: -1}

// VFLabel labels a series by function index only.
func VFLabel(vf int) Labels { return Labels{VF: vf, Q: -1} }

// VFQOp labels a series with the full triple.
func VFQOp(vf, q int, op string) Labels { return Labels{VF: vf, Q: q, Op: op} }

// MaxSeriesPerFamily is the default per-family label-cardinality cap
// (overridable per registry with SetSeriesCap). Distinct label sets beyond
// the cap aggregate into shared per-op overflow series — the per-VF identity
// is lost above the cap, the per-op totals are not — and every aggregated
// set is counted (Dropped, nesc_metrics_series_dropped_total).
const MaxSeriesPerFamily = 256

// kind discriminates families for exporters.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// family is one named metric with its labelled series.
type family struct {
	name string
	help string
	kind kind
	// series is the GetOrCreate cache; order preserves first-registration
	// sequence for deterministic export.
	series  map[Labels]*series
	order   []*series
	dropped int64 // label sets refused by the cardinality cap
}

// series is one (family, labels) instrument. Exactly one of the value
// fields is live, per the family kind.
type series struct {
	labels Labels
	c      Counter
	g      Gauge
	fn     func() float64
	h      Histogram
}

// Registry holds metric families. A nil *Registry is a valid disabled
// registry: every constructor returns nil, and nil instruments no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
	// seriesCap overrides MaxSeriesPerFamily when positive (SetSeriesCap).
	seriesCap int
}

// New returns an empty, enabled registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// SetSeriesCap sets this registry's per-family series cap. A massive-tenancy
// run that wants full per-VF latency series raises it; a tight exporter
// budget lowers it. n < 1 restores the MaxSeriesPerFamily default. Already-
// created series are never evicted — the cap gates creation only — so raise
// it before traffic flows.
func (r *Registry) SetSeriesCap(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 1 {
		n = 0
	}
	r.seriesCap = n
}

// cap reports the effective per-family series cap. Callers hold r.mu.
func (r *Registry) cap() int {
	if r.seriesCap > 0 {
		return r.seriesCap
	}
	return MaxSeriesPerFamily
}

// lookup finds or creates the (name, labels) series, enforcing the family
// kind and the cardinality cap. Returns nil on a disabled registry.
func (r *Registry) lookup(name, help string, k kind, l Labels) *series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[Labels]*series)}
		r.families[name] = f
		r.order = append(r.order, f)
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: family %q registered as %v, requested as %v", name, f.kind, k))
	}
	if s, ok := f.series[l]; ok {
		return s
	}
	if len(f.order) >= r.cap() {
		f.dropped++
		// Aggregate into a shared overflow series rather than dropping the
		// observation. The op dimension survives aggregation (one overflow
		// series per op), so a 1024-VF run still separates read from write
		// latency above the cap; only the per-VF identity collapses.
		over := Labels{VF: -1, Q: -1, Op: "overflow"}
		if l.Op != "" {
			over.Op = l.Op + "_overflow"
		}
		if s, ok := f.series[over]; ok {
			return s
		}
		l = over
	}
	s := &series{labels: l}
	f.series[l] = s
	f.order = append(f.order, s)
	return s
}

// Counter returns the named counter series, creating it on first use.
func (r *Registry) Counter(name, help string, l Labels) *Counter {
	s := r.lookup(name, help, kindCounter, l)
	if s == nil {
		return nil
	}
	return &s.c
}

// Gauge returns the named gauge series, creating it on first use.
func (r *Registry) Gauge(name, help string, l Labels) *Gauge {
	s := r.lookup(name, help, kindGauge, l)
	if s == nil {
		return nil
	}
	return &s.g
}

// GaugeFunc registers fn as the live value of the named series; the function
// is sampled at export time. Re-registering the same series replaces the
// function (an experiment harness rebuilds platforms; the freshest platform
// wins).
func (r *Registry) GaugeFunc(name, help string, l Labels, fn func() float64) {
	s := r.lookup(name, help, kindGaugeFunc, l)
	if s == nil {
		return
	}
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram series, creating it on first use.
func (r *Registry) Histogram(name, help string, l Labels) *Histogram {
	s := r.lookup(name, help, kindHistogram, l)
	if s == nil {
		return nil
	}
	return &s.h
}

// Dropped reports how many label sets the named family refused under the
// cardinality cap.
func (r *Registry) Dropped(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f.dropped
	}
	return 0
}

// DroppedTotal sums the label sets every family refused (aggregated into
// overflow series) under the cardinality cap.
func (r *Registry) DroppedTotal() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, f := range r.order {
		n += f.dropped
	}
	return n
}

// Counter is a monotonically increasing count. Nil receivers no-op.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value reports the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a settable instantaneous value. Nil receivers no-op.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v += d
	}
}

// Value reports the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// HistogramBuckets is the fixed bucket count: bucket i counts observations
// in (2^(i-1), 2^i] for i >= 1, bucket 0 counts (-inf, 1]; the implicit
// overflow bucket counts everything above 2^(HistogramBuckets-1). With 40
// buckets the top finite bound is 2^39 ns ≈ 9.2 virtual minutes — far beyond
// any request latency the simulator produces.
const HistogramBuckets = 40

// Histogram is a fixed-bucket log2 latency histogram over non-negative
// values (nanoseconds by convention; the metric name carries the unit).
// Observation is two integer increments and a float add — no allocation,
// no engine interaction. Nil receivers no-op.
type Histogram struct {
	buckets  [HistogramBuckets]int64
	overflow int64
	count    int64
	sum      float64
}

// bucketIndex maps a value to its bucket: the smallest i with v <= 2^i.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	// bits.Len-style scan without importing math/bits at every call site;
	// the compiler lowers this loop, but clarity wins here: find the
	// position of the highest set bit of v-1.
	i := 0
	for x := v - 1; x > 0; x >>= 1 {
		i++
	}
	return i
}

// Observe records one value. Negative values clamp to the first bucket.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += float64(v)
	i := bucketIndex(v)
	if i >= HistogramBuckets {
		h.overflow++
		return
	}
	h.buckets[i]++
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the observation total (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean reports the arithmetic mean (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Overflow reports the count above the last finite bucket bound.
func (h *Histogram) Overflow() int64 {
	if h == nil {
		return 0
	}
	return h.overflow
}

// UpperBound reports bucket i's inclusive upper bound (2^i, with bucket 0
// bounded at 1).
func UpperBound(i int) int64 { return int64(1) << uint(i) }

// Quantile estimates the q-th quantile (0 <= q <= 1) from the buckets,
// using the geometric interior of the winning bucket. Returns 0 when empty.
// The estimate is bounded by one bucket width — a factor of 2 — which is
// the deal log2 histograms offer in exchange for fixed memory.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for i := 0; i < HistogramBuckets; i++ {
		cum += float64(h.buckets[i])
		if cum >= rank && h.buckets[i] > 0 {
			if i == 0 {
				return 1
			}
			lo, hi := float64(UpperBound(i-1)), float64(UpperBound(i))
			return math.Sqrt(lo * hi) // geometric midpoint
		}
	}
	// Rank falls in the overflow bucket: report the last finite bound as a
	// floor (the honest answer is "at least this").
	return float64(UpperBound(HistogramBuckets - 1))
}

// snapshot is the exporter-facing frozen view of one family.
type snapshot struct {
	name    string
	help    string
	kind    kind
	series  []seriesSnapshot
	dropped int64
}

type seriesSnapshot struct {
	labels   Labels
	value    float64 // counter / gauge value
	hist     *Histogram
	histCopy Histogram
}

// snapshots freezes the registry in deterministic order: families sorted by
// name, series by (VF, Q, Op).
func (r *Registry) snapshots() []snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]snapshot, 0, len(r.order))
	for _, f := range r.order {
		sn := snapshot{name: f.name, help: f.help, kind: f.kind, dropped: f.dropped}
		for _, s := range f.order {
			ss := seriesSnapshot{labels: s.labels}
			switch f.kind {
			case kindCounter:
				ss.value = float64(s.c.Value())
			case kindGauge:
				ss.value = s.g.Value()
			case kindGaugeFunc:
				if s.fn != nil {
					ss.value = s.fn()
				}
			case kindHistogram:
				ss.histCopy = s.h
				ss.hist = &ss.histCopy
			}
			sn.series = append(sn.series, ss)
		}
		sort.Slice(sn.series, func(i, j int) bool {
			a, b := sn.series[i].labels, sn.series[j].labels
			if a.VF != b.VF {
				return a.VF < b.VF
			}
			if a.Q != b.Q {
				return a.Q < b.Q
			}
			return a.Op < b.Op
		})
		out = append(out, sn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
