package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text-format and JSON snapshot exporters. Both walk the same
// frozen, deterministically ordered snapshot, so two exports of an idle
// registry are byte-identical.

// promLabels renders the label triple in Prometheus brace syntax, omitting
// unset members; a fully unset triple renders as no braces at all.
func promLabels(l Labels) string {
	var parts []string
	if l.VF >= 0 {
		parts = append(parts, `vf="`+strconv.Itoa(l.VF)+`"`)
	}
	if l.Q >= 0 {
		parts = append(parts, `q="`+strconv.Itoa(l.Q)+`"`)
	}
	if l.Op != "" {
		parts = append(parts, `op="`+l.Op+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promLabelsExtra is promLabels with one extra pair appended (histogram
// "le" bounds).
func promLabelsExtra(l Labels, k, v string) string {
	base := promLabels(l)
	pair := k + `="` + v + `"`
	if base == "" {
		return "{" + pair + "}"
	}
	return base[:len(base)-1] + "," + pair + "}"
}

// promValue formats a sample the way Prometheus expects: integral values
// without an exponent, everything else in Go's shortest form.
func promValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (v0.0.4): # HELP / # TYPE headers followed by one sample line per
// series; histograms expand into cumulative _bucket{le=...} lines plus
// _sum and _count. Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshots() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if f.kind != kindHistogram {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels), promValue(s.value)); err != nil {
					return err
				}
				continue
			}
			h := s.hist
			var cum int64
			for i := 0; i < HistogramBuckets; i++ {
				cum += h.buckets[i]
				// Suppress interior empty buckets to keep dumps readable,
				// but always emit the first and last finite bound so the
				// cumulative contract stays visible.
				if h.buckets[i] == 0 && i != 0 && i != HistogramBuckets-1 {
					continue
				}
				le := strconv.FormatInt(UpperBound(i), 10)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabelsExtra(s.labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabelsExtra(s.labels, "le", "+Inf"), h.count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(s.labels), promValue(h.sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(s.labels), h.count); err != nil {
				return err
			}
		}
	}
	if r == nil {
		return nil
	}
	// Synthesized trailer: the registry's own cardinality health. Emitted
	// last (outside the sorted family walk) so it never interleaves with
	// user families.
	if _, err := fmt.Fprintf(w, "# HELP %s label sets aggregated into overflow series by the cardinality cap\n", droppedFamily); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", droppedFamily); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", droppedFamily, r.DroppedTotal())
	return err
}

// droppedFamily is the synthesized registry-health counter both exporters
// append: total label sets the cardinality cap aggregated away.
const droppedFamily = "nesc_metrics_series_dropped_total"

// JSON snapshot schema.

type jsonSeries struct {
	VF    *int              `json:"vf,omitempty"`
	Q     *int              `json:"q,omitempty"`
	Op    string            `json:"op,omitempty"`
	Value *float64          `json:"value,omitempty"`
	Hist  *jsonHistSnapshot `json:"histogram,omitempty"`
}

type jsonHistSnapshot struct {
	Count    int64   `json:"count"`
	Sum      float64 `json:"sum"`
	Mean     float64 `json:"mean"`
	P50      float64 `json:"p50"`
	P99      float64 `json:"p99"`
	Overflow int64   `json:"overflow,omitempty"`
	// Buckets maps the inclusive upper bound to the (non-cumulative) count;
	// empty buckets are omitted.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

type jsonFamily struct {
	Name    string       `json:"name"`
	Help    string       `json:"help,omitempty"`
	Kind    string       `json:"kind"`
	Series  []jsonSeries `json:"series"`
	Dropped int64        `json:"dropped_series,omitempty"`
}

// WriteJSON renders the registry as an indented JSON array of families
// (trailing newline included). Safe on a nil registry (writes "[]").
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := []jsonFamily{}
	for _, f := range r.snapshots() {
		jf := jsonFamily{Name: f.name, Help: f.help, Kind: f.kind.String(), Dropped: f.dropped}
		for _, s := range f.series {
			js := jsonSeries{Op: s.labels.Op}
			if s.labels.VF >= 0 {
				vf := s.labels.VF
				js.VF = &vf
			}
			if s.labels.Q >= 0 {
				q := s.labels.Q
				js.Q = &q
			}
			if f.kind == kindHistogram {
				h := s.hist
				jh := &jsonHistSnapshot{
					Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
					P50: h.Quantile(0.50), P99: h.Quantile(0.99), Overflow: h.Overflow(),
				}
				if h.Count() > 0 {
					jh.Buckets = make(map[string]int64)
					for i := 0; i < HistogramBuckets; i++ {
						if h.buckets[i] > 0 {
							jh.Buckets[strconv.FormatInt(UpperBound(i), 10)] = h.buckets[i]
						}
					}
				}
				js.Hist = jh
			} else {
				v := s.value
				js.Value = &v
			}
			jf.Series = append(jf.Series, js)
		}
		fams = append(fams, jf)
	}
	if r != nil {
		v := float64(r.DroppedTotal())
		fams = append(fams, jsonFamily{
			Name: droppedFamily,
			Help: "label sets aggregated into overflow series by the cardinality cap",
			Kind: "counter",
			Series: []jsonSeries{
				{Value: &v},
			},
		})
	}
	b, err := json.MarshalIndent(fams, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
