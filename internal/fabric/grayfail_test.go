package fabric

import (
	"bytes"
	"fmt"
	"testing"

	"nesc/internal/guest"
	"nesc/internal/hostmem"
	"nesc/internal/sim"
)

// fakeLeg is a controllable-latency BlockDriver: a flat in-memory store
// served after a settable sleep, so tests can make any leg fast, slow, or
// recovered at will and count exactly where reads land.
type fakeLeg struct {
	name   string
	bs     int
	store  []byte
	lat    sim.Time
	reads  int
	writes int
}

func newFakeLeg(name string, bs int, blocks int64, lat sim.Time) *fakeLeg {
	return &fakeLeg{name: name, bs: bs, store: make([]byte, blocks*int64(bs)), lat: lat}
}

func (f *fakeLeg) Name() string          { return f.name }
func (f *fakeLeg) BlockSize() int        { return f.bs }
func (f *fakeLeg) CapacityBlocks() int64 { return int64(len(f.store) / f.bs) }
func (f *fakeLeg) MaxBlocksPerReq() int  { return 8 }

func (f *fakeLeg) Submit(p *sim.Proc, write bool, lba int64, buf guest.Buffer) error {
	p.Sleep(f.lat)
	off := lba * int64(f.bs)
	if write {
		f.writes++
		copy(f.store[off:], buf.Data)
		return nil
	}
	f.reads++
	copy(buf.Data, f.store[off:off+int64(len(buf.Data))])
	return nil
}

// mirrorRig is a 3-leg client over fake drivers plus the harness to run a
// simulated process against it.
type mirrorRig struct {
	eng  *sim.Engine
	mem  *hostmem.Memory
	legs []*fakeLeg
	c    *Client
}

func newMirrorRig(t *testing.T, cfg Config, lats ...sim.Time) *mirrorRig {
	t.Helper()
	const bs, blocks = 512, 64
	eng := sim.NewEngine()
	mem := hostmem.New(1 << 20)
	rig := &mirrorRig{eng: eng, mem: mem}
	var reps []*Replica
	for i, lat := range lats {
		leg := newFakeLeg(fmt.Sprintf("leg%d", i), bs, blocks, lat)
		// Distinct per-leg fill so a read's provenance is visible in its
		// bytes; tests that verify content write first.
		for j := range leg.store {
			leg.store[j] = byte(i*131 + j)
		}
		rig.legs = append(rig.legs, leg)
		reps = append(reps, &Replica{Dev: i, Drv: leg})
	}
	c, err := NewClient(eng, mem, cfg, reps)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	rig.c = c
	return rig
}

func (rig *mirrorRig) run(t *testing.T, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	done := false
	rig.eng.Go("fabric-test", func(p *sim.Proc) {
		err = fn(p)
		done = true
	})
	rig.eng.Run()
	rig.eng.Shutdown()
	if !done {
		t.Fatal("fabric test process deadlocked")
	}
	if err != nil {
		t.Fatal(err)
	}
}

func (rig *mirrorRig) read(p *sim.Proc, lba int64, n int) error {
	buf := make([]byte, n)
	return rig.c.Submit(p, false, lba, guest.Buffer{Data: buf})
}

// TestReadSteeringAvoidsSlowLeg is the EWMA regression: a leg that turns
// slow loses read steering after a single degraded sample, and without
// probe traffic it never wins reads back even once recovered (its estimate
// is stuck — exactly the gap Cfg.ProbeEvery exists to close).
func TestReadSteeringAvoidsSlowLeg(t *testing.T) {
	rig := newMirrorRig(t, Config{}, 10*sim.Microsecond, 10*sim.Microsecond, 10*sim.Microsecond)
	rig.run(t, func(p *sim.Proc) error {
		for i := 0; i < 12; i++ {
			if err := rig.read(p, int64(i%8), 512); err != nil {
				return err
			}
		}
		// Equal latency ties steer to the first leg.
		served := rig.legs[0].reads
		if served < 9 {
			return fmt.Errorf("expected leg0 to win equal-latency steering, got %d/%d", served, 12)
		}
		rig.legs[0].lat = 1 * sim.Millisecond
		before := rig.legs[0].reads
		for i := 0; i < 20; i++ {
			if err := rig.read(p, int64(i%8), 512); err != nil {
				return err
			}
		}
		if got := rig.legs[0].reads - before; got != 1 {
			return fmt.Errorf("slow leg served %d reads; EWMA steering should divert after exactly 1", got)
		}
		// Recovery without probes: the stale estimate keeps the leg benched.
		rig.legs[0].lat = 5 * sim.Microsecond
		before = rig.legs[0].reads
		for i := 0; i < 20; i++ {
			if err := rig.read(p, int64(i%8), 512); err != nil {
				return err
			}
		}
		if got := rig.legs[0].reads - before; got != 0 {
			return fmt.Errorf("recovered leg served %d reads with probing disabled; want 0", got)
		}
		return nil
	})
}

// TestProbeReadsWinBackRecoveredLeg: with ProbeEvery armed, periodic probes
// to the worst-EWMA leg refresh its estimate, so a recovered (now fastest)
// leg decays its stale penalty and wins steering back.
func TestProbeReadsWinBackRecoveredLeg(t *testing.T) {
	rig := newMirrorRig(t, Config{ProbeEvery: 4},
		10*sim.Microsecond, 10*sim.Microsecond, 10*sim.Microsecond)
	rig.run(t, func(p *sim.Proc) error {
		for i := 0; i < 12; i++ {
			if err := rig.read(p, int64(i%8), 512); err != nil {
				return err
			}
		}
		rig.legs[0].lat = 1 * sim.Millisecond
		for i := 0; i < 12; i++ {
			if err := rig.read(p, int64(i%8), 512); err != nil {
				return err
			}
		}
		// Recovered and now strictly fastest. The stale 1 ms-tainted estimate
		// decays by one probe sample every 4th read, so winning steering back
		// takes roughly a dozen probes; after that the leg serves the bulk.
		rig.legs[0].lat = 5 * sim.Microsecond
		before := rig.legs[0].reads
		for i := 0; i < 100; i++ {
			if err := rig.read(p, int64(i%8), 512); err != nil {
				return err
			}
		}
		won := rig.legs[0].reads - before
		if won < 30 {
			return fmt.Errorf("recovered leg won only %d/100 reads back via probes", won)
		}
		if rig.c.ProbeReads == 0 {
			return fmt.Errorf("no probe reads counted")
		}
		st := rig.c.Status()
		if st[0].EWMARead >= st[1].EWMARead {
			return fmt.Errorf("recovered leg's EWMA (%v) never undercut the field (%v)", st[0].EWMARead, st[1].EWMARead)
		}
		return nil
	})
}

// TestHedgedReadCapsStraggler: with hedging armed, a read whose primary leg
// stalls is answered by the speculative second leg at roughly the hedge
// deadline plus one healthy service time — not the straggler's full
// latency — and the delivered bytes are the straggler-free replica's.
func TestHedgedReadCapsStraggler(t *testing.T) {
	rig := newMirrorRig(t, Config{HedgePercentile: 95, HedgeMinDelay: 20 * sim.Microsecond},
		10*sim.Microsecond, 10*sim.Microsecond, 10*sim.Microsecond)
	rig.run(t, func(p *sim.Proc) error {
		want := make([]byte, 512)
		for i := range want {
			want[i] = byte(i * 7)
		}
		if err := rig.c.Submit(p, true, 3, guest.Buffer{Data: want}); err != nil {
			return err
		}
		for i := 0; i < 20; i++ {
			if err := rig.read(p, int64(i%8), 512); err != nil {
				return err
			}
		}
		// Stall the tie-winning primary leg and read through it.
		rig.legs[0].lat = 1 * sim.Millisecond
		got := make([]byte, 512)
		start := p.Now()
		if err := rig.c.Submit(p, false, 3, guest.Buffer{Data: got}); err != nil {
			return err
		}
		elapsed := p.Now() - start
		if elapsed >= 200*sim.Microsecond {
			return fmt.Errorf("hedged read took %v; the speculative leg should cap it near the deadline", elapsed)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("hedged read returned wrong bytes")
		}
		if rig.c.HedgedReads == 0 || rig.c.HedgeWins == 0 {
			return fmt.Errorf("hedge counters did not move (hedged %d, wins %d)", rig.c.HedgedReads, rig.c.HedgeWins)
		}
		return nil
	})
}

// TestQuarantineAndRejoin: a leg whose windowed read latency blows past
// SlowFactor x its learned baseline is quarantined out of read steering
// (and coupled to Suspect in the fail-stop FSM), then lazily rejoins with a
// reset window once QuarantineDuration passes.
func TestQuarantineAndRejoin(t *testing.T) {
	rig := newMirrorRig(t, Config{
		SlowFactor: 3, SlowWindow: 16, SlowBaseline: 8, SlowMinSamples: 3,
		QuarantineDuration: 2 * sim.Millisecond,
	}, 10*sim.Microsecond, 30*sim.Microsecond, 30*sim.Microsecond)
	rig.run(t, func(p *sim.Proc) error {
		for i := 0; i < 12; i++ {
			if err := rig.read(p, int64(i%8), 512); err != nil {
				return err
			}
		}
		// 45us is under the 3x-of-30us bar of the other legs' EWMA, so
		// steering keeps using leg0 — but it is 4.5x leg0's learned 10us
		// baseline: exactly the chronic gray failure the detector is for.
		rig.legs[0].lat = 45 * sim.Microsecond
		for i := 0; i < 8; i++ {
			if err := rig.read(p, int64(i%8), 512); err != nil {
				return err
			}
		}
		if rig.c.Quarantines != 1 {
			return fmt.Errorf("quarantines = %d, want 1", rig.c.Quarantines)
		}
		st := rig.c.Status()
		if !st[0].Quarantined || st[0].State != "suspect" {
			return fmt.Errorf("slow leg not quarantined+suspect: %+v", st[0])
		}
		// While quarantined, reads go elsewhere.
		before := rig.legs[0].reads
		for i := 0; i < 6; i++ {
			if err := rig.read(p, int64(i%8), 512); err != nil {
				return err
			}
		}
		if rig.legs[0].reads != before {
			return fmt.Errorf("quarantined leg still served reads")
		}
		// Recover, wait out the quarantine, and touch steering again: the
		// leg rejoins lazily on the next pick.
		rig.legs[0].lat = 10 * sim.Microsecond
		p.Sleep(2500 * sim.Microsecond)
		for i := 0; i < 4; i++ {
			if err := rig.read(p, int64(i%8), 512); err != nil {
				return err
			}
		}
		if rig.c.Rejoins != 1 {
			return fmt.Errorf("rejoins = %d, want 1", rig.c.Rejoins)
		}
		if st := rig.c.Status(); st[0].Quarantined {
			return fmt.Errorf("leg still quarantined after window expiry")
		}
		return nil
	})
}
