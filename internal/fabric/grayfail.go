package fabric

import (
	"errors"

	"nesc/internal/guest"
	"nesc/internal/hostmem"
	"nesc/internal/ring"
	"nesc/internal/sim"
	"nesc/internal/slo"
	"nesc/internal/stats"
)

// Gray-failure mitigation: the fail-stop FSM in fabric.go sees errors and
// timeouts; this file handles the component that still answers, just
// chronically late. Three mechanisms, each off by default and schedule-
// neutral when off:
//
//   - hedged reads (Cfg.HedgePercentile): if the primary leg has not
//     answered within an adaptive percentile of recent read latency, launch
//     a speculative second read on the next-best leg; first success wins.
//     Both legs DMA into client-owned scratch buffers — never the guest's —
//     so the loser's late landing cannot corrupt guest memory. The loser is
//     simply discarded when it completes (its latency still feeds the EWMA
//     and fail-slow detector, which is how chronic slowness gets noticed).
//   - quarantine (Cfg.SlowFactor): a per-leg SlowDetector learns the leg's
//     healthy baseline and flags it when windowed p99 blows past
//     SlowFactor x baseline; flagged legs leave read steering (writes
//     continue, so no redundancy is lost) and rejoin after
//     Cfg.QuarantineDuration with a reset window.
//   - probe reads (Cfg.ProbeEvery): every Nth read goes to the worst-EWMA
//     eligible leg, keeping latency estimates live for legs that stopped
//     receiving reads so a recovered leg can win traffic back.

// observeSlow feeds a successful read's latency into the leg's fail-slow
// detector and quarantines the leg when the verdict turns slow.
func (c *Client) observeSlow(r *Replica, d sim.Time) {
	if r.slow == nil {
		r.slow = stats.NewSlowDetector(stats.SlowDetectorConfig{
			WindowSize:      c.Cfg.SlowWindow,
			BaselineSamples: c.Cfg.SlowBaseline,
			SlowFactor:      c.Cfg.SlowFactor,
			MinSamples:      c.Cfg.SlowMinSamples,
		})
	}
	r.slow.Observe(float64(d))
	if !r.quarantined && r.slow.Slow() {
		r.quarantined = true
		r.quarantineEnd = c.Eng.Now() + c.Cfg.QuarantineDuration
		c.Quarantines++
		if c.board != nil {
			ratio := 0.0
			if r.slow.BaselineP99 > 0 {
				ratio = r.slow.WindowP99() / r.slow.BaselineP99
			}
			c.board.Emit(slo.Event{At: c.Eng.Now(), Kind: slo.EventDetectorTrip,
				Dev: r.Dev, VF: c.tenant, Value: ratio, Note: "fail-slow p99"})
			c.board.Emit(slo.Event{At: c.Eng.Now(), Kind: slo.EventQuarantine,
				Dev: r.Dev, VF: c.tenant, Value: float64(c.Cfg.QuarantineDuration)})
		}
		if r.state == Healthy {
			// Couple into the fail-stop FSM: a chronically slow leg is
			// suspect. Write successes will promote it back while the
			// quarantine flag keeps it out of read steering.
			r.state = Suspect
			c.Suspects++
		}
	}
}

// observeDelivered feeds the client-wide latency window the hedge deadline
// derives from. Only *delivered* latency goes in — what the tenant actually
// waited, with hedging already applied. Feeding hedge losers here instead
// would poison the window with exactly the stragglers hedging routes
// around, inflating the adaptive deadline until hedges fire too late to
// help (the losers still feed the per-leg EWMA and fail-slow detector,
// where slow samples are the signal, via observeRead).
func (c *Client) observeDelivered(d sim.Time) {
	if c.readLat != nil {
		c.readLat.Add(float64(d))
	}
}

// admitRead reports whether a leg may serve reads, lazily expiring its
// quarantine window. Never called into existence on the off path: with
// SlowFactor 0 no leg is ever quarantined and this is a single branch.
func (c *Client) admitRead(r *Replica) bool {
	if !r.quarantined {
		return true
	}
	if c.Eng.Now() >= r.quarantineEnd {
		r.quarantined = false
		c.Rejoins++
		if r.slow != nil {
			r.slow.Reset()
		}
		if c.board != nil {
			c.board.Emit(slo.Event{At: c.Eng.Now(), Kind: slo.EventRejoin,
				Dev: r.Dev, VF: c.tenant})
		}
		return true
	}
	return false
}

// Quarantined reports whether the replica is currently held out of read
// steering by the fail-slow detector.
func (r *Replica) Quarantined() bool { return r.quarantined }

// pickProbe chooses the worst-EWMA eligible leg, or nil when fewer than two
// legs are eligible (probing a sole leg teaches nothing).
func (c *Client) pickProbe(lba, blocks uint64) *Replica {
	var best, worst *Replica
	for _, r := range c.reps {
		if r.state == Failed || r.dirty.Intersects(lba, blocks) || !c.admitRead(r) {
			continue
		}
		if best == nil || r.ewmaRead < best.ewmaRead {
			best = r
		}
		if worst == nil || r.ewmaRead > worst.ewmaRead {
			worst = r
		}
	}
	if worst == nil || worst == best {
		return nil
	}
	return worst
}

// hedgeDeadline computes the adaptive hedge trigger: the configured
// percentile of the recent client-wide read-latency window, floored by
// HedgeMinDelay so a cold or unluckily fast window cannot make every read
// hedge.
func (c *Client) hedgeDeadline() sim.Time {
	d := c.Cfg.HedgeMinDelay
	if c.readLat != nil && c.readLat.N() >= 16 {
		if q := sim.Time(c.readLat.Percentile(c.Cfg.HedgePercentile)); q > d {
			d = q
		}
	}
	return d
}

// scratch is one pooled hedge buffer: hedged reads land here and the winner
// is copied to the guest's buffer, so a hedge loser completing late can
// never scribble on guest memory the caller has already moved past.
type scratch struct {
	addr hostmem.Addr
	full []byte
}

func (s scratch) buf(n int) guest.Buffer { return guest.Buffer{Addr: s.addr, Data: s.full[:n]} }

func (c *Client) getScratch(n int) scratch {
	if k := len(c.hedgePool); k > 0 {
		s := c.hedgePool[k-1]
		if len(s.full) >= n {
			c.hedgePool = c.hedgePool[:k-1]
			return s
		}
	}
	size := c.MaxBlocksPerReq() * c.BlockSize()
	if n > size {
		size = n
	}
	addr := c.Mem.MustAlloc(int64(size), 64)
	data, err := c.Mem.Slice(addr, int64(size))
	if err != nil {
		panic(err)
	}
	return scratch{addr: addr, full: data}
}

func (c *Client) putScratch(s scratch) { c.hedgePool = append(c.hedgePool, s) }

// hedgeLeg is one in-flight half of a hedged read.
type hedgeLeg struct {
	r    *Replica
	s    scratch
	err  error
	fin  bool
	done *sim.Signal
	// recycle tells a still-running leg to return its scratch buffer itself
	// when it completes (the caller has already moved on).
	recycle bool
}

// launchLeg spawns one hedged read half. The worker does its own health and
// latency accounting on completion — win or lose, a finished read is a real
// observation.
func (c *Client) launchLeg(r *Replica, lba int64, n int, start sim.Time, first *sim.Signal) *hedgeLeg {
	leg := &hedgeLeg{r: r, s: c.getScratch(n), done: sim.NewSignal(c.Eng)}
	c.Eng.Go("fabric-hedge", func(wp *sim.Proc) {
		leg.err = r.Drv.Submit(wp, false, lba, leg.s.buf(n))
		leg.fin = true
		if leg.err == nil {
			c.observeRead(r, wp.Now()-start)
			c.reportSuccess(r)
		} else if errors.Is(leg.err, ring.ErrIntegrity) {
			c.ReadFallbacks++
		} else {
			c.ReadRetries++
			c.reportFailure(wp, r)
		}
		if leg.recycle {
			c.putScratch(leg.s)
		}
		leg.done.Fire()
		first.Fire()
	})
	return leg
}

// release hands a finished-or-abandoned leg's scratch buffer back: directly
// when the worker has completed, deferred to the worker otherwise.
func (c *Client) release(leg *hedgeLeg) {
	if leg.fin {
		c.putScratch(leg.s)
	} else {
		leg.recycle = true
	}
}

// hedgedRead performs one read attempt with speculation. The primary leg
// runs in a worker against a scratch buffer; if it has not answered by the
// adaptive deadline, a second worker is launched on the next-best eligible
// leg and the first success wins — its bytes are copied to the guest
// buffer, the loser is discarded via release. Returns the winning leg's own
// service time (for latency attribution: delivered time minus this is the
// fabric's steering/hedging overhead) and nil on success; otherwise every
// leg it touched failed (and was marked tried).
func (c *Client) hedgedRead(p *sim.Proc, primary *Replica, lba int64, buf guest.Buffer, blocks uint64, tried map[*Replica]bool) (sim.Time, error) {
	n := len(buf.Data)
	start := p.Now()
	first := sim.NewSignal(c.Eng)
	pri := c.launchLeg(primary, lba, n, start, first)
	if !pri.done.AwaitTimeout(p, c.hedgeDeadline()) {
		// Primary is late. Hedge to the next-best leg if one exists.
		if backup := c.pickRead(uint64(lba), blocks, tried); backup != nil {
			tried[backup] = true
			c.HedgedReads++
			hedgeAt := p.Now()
			sec := c.launchLeg(backup, lba, n, start, first)
			first.Await(p)
			// At least one leg has finished; if it failed, wait out the other.
			if !(pri.fin && pri.err == nil) && !(sec.fin && sec.err == nil) {
				if !pri.fin {
					pri.done.Await(p)
				} else if !sec.fin {
					sec.done.Await(p)
				}
			}
			var winner, loser *hedgeLeg
			svc := p.Now() - start
			switch {
			case pri.fin && pri.err == nil:
				winner, loser = pri, sec
			case sec.fin && sec.err == nil:
				winner, loser = sec, pri
				c.HedgeWins++
				// The backup only started at the hedge deadline: its own
				// service time excludes the delay spent waiting on the
				// primary, which attribution reports as fabric wait.
				svc = p.Now() - hedgeAt
			}
			if winner != nil {
				copy(buf.Data, winner.s.full[:n])
				c.release(winner)
				c.release(loser)
				c.observeDelivered(p.Now() - start)
				return svc, nil
			}
			c.release(pri)
			c.release(sec)
			if pri.err != nil {
				return 0, pri.err
			}
			return 0, sec.err
		}
		pri.done.Await(p)
	}
	if pri.err == nil {
		copy(buf.Data, pri.s.full[:n])
		c.release(pri)
		c.observeDelivered(p.Now() - start)
		return p.Now() - start, nil
	}
	c.release(pri)
	return 0, pri.err
}
