// Package fabric generalizes the single-device NeSC stack to a managed
// fleet: it synchronously mirrors one virtual disk's writes across K
// replica devices, serves reads from the fastest healthy replica with
// integrity-verified fallback, drives a per-replica health state machine
// (healthy → suspect → failed → rebuilding) off the ordinary driver error
// and timeout signals, and resilvers a revived replica in the background
// from dirty-region tracking. It is the md/DRBD layer of the simulated
// host: everything here rides on top of unmodified VF drivers — the device
// never knows it is being mirrored.
package fabric

import (
	"errors"
	"fmt"

	"nesc/internal/extfs"
	"nesc/internal/guest"
	"nesc/internal/hostmem"
	"nesc/internal/ring"
	"nesc/internal/sim"
	"nesc/internal/slo"
	"nesc/internal/stats"
)

// State is a replica's health state.
type State int

const (
	// Healthy replicas serve reads and acknowledge writes.
	Healthy State = iota
	// Suspect replicas have seen consecutive failures but still get writes;
	// consecutive successes demote them back to Healthy.
	Suspect
	// Failed replicas are fenced: no I/O is sent until revived. Writes they
	// miss are tracked in the dirty log.
	Failed
	// Rebuilding replicas receive foreground writes while the resilver
	// copies their dirty regions; an empty dirty log promotes them back to
	// Healthy.
	Rebuilding
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	case Rebuilding:
		return "rebuilding"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ErrNoReplicas reports an I/O arriving while every replica is fenced.
var ErrNoReplicas = errors.New("fabric: no live replicas")

// Config tunes the mirror client's health hysteresis and resilver pacing.
type Config struct {
	// SuspectThreshold consecutive failures demote Healthy → Suspect;
	// FailThreshold consecutive failures demote Suspect → Failed;
	// RecoverThreshold consecutive successes promote Suspect → Healthy.
	SuspectThreshold int
	FailThreshold    int
	RecoverThreshold int
	// RegionBlocks is the dirty-log granularity in blocks.
	RegionBlocks uint64
	// ResilverInterval paces the background resilver: one region copy per
	// interval, the scavenger-priority budget that keeps rebuild I/O from
	// starving foreground tenants.
	ResilverInterval sim.Time

	// Gray-failure (fail-slow) mitigation. All knobs default to 0 = off, and
	// the off paths add no simulated events, so existing schedules replay
	// bit-identically.

	// HedgePercentile arms hedged reads: when a read's primary leg has not
	// answered within this percentile of recent read latency, a speculative
	// second read is launched to the next-best leg and the first success
	// wins (the loser lands in a scratch buffer and is discarded). 0
	// disables hedging; 95 is a sane production value.
	HedgePercentile float64
	// HedgeMinDelay floors the adaptive hedge deadline so a cold latency
	// window cannot trigger hedges on every read (default 20us when hedging
	// is armed).
	HedgeMinDelay sim.Time
	// HedgeWindow sizes the client-wide read-latency window the adaptive
	// deadline is computed from (default 128 samples).
	HedgeWindow int
	// SlowFactor arms per-leg fail-slow detection: a leg whose windowed p99
	// read latency exceeds SlowFactor x its learned healthy baseline is
	// quarantined out of read steering (writes continue, so no redundancy is
	// lost) until QuarantineDuration passes. 0 disables detection.
	SlowFactor float64
	// SlowWindow / SlowBaseline / SlowMinSamples tune the per-leg detector
	// (defaults 64 / 32 / 16 samples).
	SlowWindow, SlowBaseline, SlowMinSamples int
	// QuarantineDuration is how long a flagged leg sits out of read steering
	// before it rejoins with a reset detector window (default 2ms when
	// detection is armed).
	QuarantineDuration sim.Time
	// ProbeEvery, when positive, sends every Nth read to the worst-EWMA
	// eligible leg instead of the best — the probe traffic that lets a
	// recovered leg's EWMA improve and win read steering back. 0 disables
	// probing.
	ProbeEvery int
}

// DefaultConfig returns hysteresis and pacing defaults.
func DefaultConfig() Config {
	return Config{
		SuspectThreshold: 2,
		FailThreshold:    4,
		RecoverThreshold: 3,
		RegionBlocks:     64,
		ResilverInterval: 150 * sim.Microsecond,
	}
}

// Replica is one device-backed leg of the mirror.
type Replica struct {
	// Dev is the fleet device index backing this leg.
	Dev int
	// Drv is the VF ring driver on that device.
	Drv guest.BlockDriver

	state      State
	consecFail int
	consecOK   int
	// firstFailAt starts the failover clock when a healthy streak breaks.
	firstFailAt sim.Time
	// dirty tracks regions this replica missed (failed or fenced writes);
	// the resilver drains it.
	dirty *extfs.DirtyLog
	// ewmaRead is the smoothed read service time steering read placement.
	ewmaRead float64
	// slow is the per-leg fail-slow detector (nil until Cfg.SlowFactor arms
	// detection and the leg sees its first successful read).
	slow *stats.SlowDetector
	// quarantined marks a leg flagged fail-slow: excluded from read steering
	// (unless it is the only option) until quarantineEnd, when it rejoins
	// with a reset detector window. Orthogonal to the fail-stop FSM — a
	// quarantined leg still takes writes, so redundancy is preserved.
	quarantined   bool
	quarantineEnd sim.Time
}

// State reports the replica's health state.
func (r *Replica) State() State { return r.state }

// DirtyRegions reports how many regions the resilver still owes this
// replica.
func (r *Replica) DirtyRegions() int { return r.dirty.DirtyRegions() }

// Client mirrors one virtual disk across replicas. It implements
// guest.BlockDriver, so a guest kernel drives it exactly like a raw VF
// driver; with a single replica it is a thin pass-through that adds no
// simulated events.
type Client struct {
	Eng *sim.Engine
	Mem *hostmem.Memory
	Cfg Config

	reps []*Replica

	// Pause gate for live migration's stop-and-copy window.
	paused   bool
	inflight int
	drained  *sim.Signal
	resumed  *sim.Signal

	// migDirty, when armed by TrackDirty, records every acknowledged write
	// for the migration's iterative copy passes.
	migDirty *extfs.DirtyLog

	// resilver machinery
	resilverRunning bool
	resilverStop    bool
	resilverBuf     guest.Buffer
	// busy region being copied right now: foreground writes overlapping it
	// re-mark the region so the copy converges instead of losing the write.
	busyTarget *Replica
	busyLBA    uint64
	busyCount  uint64

	// Counters (telemetry; all monotonic).
	MirroredWrites   int64 // writes acknowledged by every live replica
	DegradedWrites   int64 // writes acknowledged by a strict subset
	WriteFailures    int64 // writes no live replica acknowledged
	ReadFallbacks    int64 // reads retried on a peer after ErrIntegrity
	ReadRetries      int64 // reads retried on a peer after other errors
	Suspects         int64 // Healthy → Suspect transitions
	Failovers        int64 // Suspect → Failed transitions (device fenced)
	Recoveries       int64 // Suspect → Healthy transitions
	Revives          int64 // Failed → Rebuilding transitions
	ResilverRegions  int64 // regions copied by the resilver
	ResilverBlocks   int64 // blocks copied by the resilver
	ResilverRestores int64 // Rebuilding → Healthy promotions
	HedgedReads      int64 // speculative second reads launched
	HedgeWins        int64 // hedges that delivered the data first
	Quarantines      int64 // legs flagged fail-slow and pulled from reads
	Rejoins          int64 // quarantined legs readmitted to read steering
	ProbeReads       int64 // reads steered to the worst leg to refresh EWMA
	// LastFailoverLatency is the time from a fenced device's first error to
	// the fence (how long acked writes ran degraded-undetected).
	LastFailoverLatency sim.Time

	// readLat is the client-wide read-latency window the adaptive hedge
	// deadline derives from (nil unless hedging is armed).
	readLat *stats.Window
	// readCount paces probe reads.
	readCount int64
	// hedgePool is a free list of scratch buffers for hedged reads (the
	// loser of a hedge must never DMA into the guest's buffer).
	hedgePool []scratch

	// Observability hooks (AttachSLO): all nil-safe and off by default.
	// board receives detector-trip / quarantine / rejoin anomaly events;
	// attrib receives per-read latency attribution rows keyed by the tenant
	// VF this client fronts (op "fabric-read", so device-side rows for the
	// individual legs stay distinct).
	board  *slo.Scoreboard
	attrib *slo.Attributor
	tenant int
}

// AttachSLO arms the client's observability hooks: scoreboard events for
// gray-failure verdicts and latency attribution for delivered reads,
// reported against tenantVF. Nil arguments disable the respective hook.
func (c *Client) AttachSLO(board *slo.Scoreboard, attrib *slo.Attributor, tenantVF int) {
	c.board = board
	c.attrib = attrib
	c.tenant = tenantVF
}

// recordRead attributes one delivered (or abandoned) fabric read to the
// tenant's "fabric-read" row: SegMedium carries the winning leg's own
// service time, SegFabricWait everything else the tenant waited — failed
// attempts, steering, the hedge delay when a backup leg won.
func (c *Client) recordRead(total, svc sim.Time, ok bool) {
	if c.attrib == nil {
		return
	}
	if svc > total {
		svc = total
	}
	var segs slo.Segments
	segs[slo.SegMedium] = svc
	segs[slo.SegFabricWait] = total - svc
	c.attrib.Record(c.tenant, "fabric-read", 0, total, ok, segs)
}

// NewClient mirrors across the given replicas (at least one). All replicas
// must agree on block size and capacity.
func NewClient(eng *sim.Engine, mem *hostmem.Memory, cfg Config, reps []*Replica) (*Client, error) {
	if len(reps) == 0 {
		return nil, errors.New("fabric: no replicas")
	}
	def := DefaultConfig()
	if cfg.SuspectThreshold <= 0 {
		cfg.SuspectThreshold = def.SuspectThreshold
	}
	if cfg.FailThreshold <= cfg.SuspectThreshold {
		cfg.FailThreshold = cfg.SuspectThreshold + def.FailThreshold - def.SuspectThreshold
	}
	if cfg.RecoverThreshold <= 0 {
		cfg.RecoverThreshold = def.RecoverThreshold
	}
	if cfg.RegionBlocks == 0 {
		cfg.RegionBlocks = def.RegionBlocks
	}
	if cfg.ResilverInterval <= 0 {
		cfg.ResilverInterval = def.ResilverInterval
	}
	if cfg.HedgePercentile > 0 {
		if cfg.HedgeMinDelay <= 0 {
			cfg.HedgeMinDelay = 20 * sim.Microsecond
		}
		if cfg.HedgeWindow <= 0 {
			cfg.HedgeWindow = 128
		}
	}
	if cfg.SlowFactor > 0 && cfg.QuarantineDuration <= 0 {
		cfg.QuarantineDuration = 2 * sim.Millisecond
	}
	bs, capacity := reps[0].Drv.BlockSize(), reps[0].Drv.CapacityBlocks()
	for _, r := range reps[1:] {
		if r.Drv.BlockSize() != bs || r.Drv.CapacityBlocks() != capacity {
			return nil, fmt.Errorf("fabric: replica geometry mismatch (dev %d)", r.Dev)
		}
	}
	c := &Client{Eng: eng, Mem: mem, Cfg: cfg, reps: reps}
	if cfg.HedgePercentile > 0 {
		c.readLat = stats.NewWindow(cfg.HedgeWindow)
	}
	for _, r := range reps {
		r.dirty = extfs.NewDirtyLog(uint64(capacity), cfg.RegionBlocks)
	}
	return c, nil
}

// NewReplica wraps a driver as a mirror leg on fleet device dev.
func NewReplica(dev int, drv guest.BlockDriver) *Replica {
	return &Replica{Dev: dev, Drv: drv}
}

// Replicas exposes the mirror legs.
func (c *Client) Replicas() []*Replica { return c.reps }

// Name implements guest.BlockDriver.
func (c *Client) Name() string { return fmt.Sprintf("fabric-mirror-x%d", len(c.reps)) }

// BlockSize implements guest.BlockDriver.
func (c *Client) BlockSize() int { return c.reps[0].Drv.BlockSize() }

// CapacityBlocks implements guest.BlockDriver.
func (c *Client) CapacityBlocks() int64 { return c.reps[0].Drv.CapacityBlocks() }

// MaxBlocksPerReq implements guest.BlockDriver.
func (c *Client) MaxBlocksPerReq() int {
	m := c.reps[0].Drv.MaxBlocksPerReq()
	for _, r := range c.reps[1:] {
		if n := r.Drv.MaxBlocksPerReq(); n < m {
			m = n
		}
	}
	return m
}

// Submit implements guest.BlockDriver: writes mirror synchronously to every
// live replica; reads go to the fastest healthy replica with fallback.
func (c *Client) Submit(p *sim.Proc, write bool, lba int64, buf guest.Buffer) error {
	for c.paused {
		c.resumed.Await(p)
	}
	c.inflight++
	defer func() {
		c.inflight--
		if c.inflight == 0 && c.drained != nil {
			c.drained.Fire()
		}
	}()
	if write {
		return c.submitWrite(p, lba, buf)
	}
	return c.submitRead(p, lba, buf)
}

func (c *Client) submitWrite(p *sim.Proc, lba int64, buf guest.Buffer) error {
	blocks := uint64(len(buf.Data) / c.BlockSize())
	// Live legs get the write; fenced legs get a dirty mark instead.
	var live []*Replica
	for _, r := range c.reps {
		if r.state == Failed {
			r.dirty.Mark(uint64(lba), blocks)
		} else {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		c.WriteFailures++
		return ErrNoReplicas
	}
	errs := make([]error, len(live))
	if len(live) == 1 {
		// Single live leg (or an unmirrored disk): no fan-out machinery, no
		// extra events — the pass-through is schedule-neutral.
		errs[0] = live[0].Drv.Submit(p, true, lba, buf)
	} else {
		// Synchronous mirroring: the caller's process drives leg 0, spawned
		// processes drive the rest, and the write completes only when every
		// live leg has answered.
		wg := sim.NewWaitGroup(c.Eng)
		for i := 1; i < len(live); i++ {
			i, r := i, live[i]
			wg.Add(1)
			c.Eng.Go(fmt.Sprintf("fabric-w-dev%d", r.Dev), func(wp *sim.Proc) {
				errs[i] = r.Drv.Submit(wp, true, lba, buf)
				wg.Done()
			})
		}
		errs[0] = live[0].Drv.Submit(p, true, lba, buf)
		wg.WaitFor(p)
	}
	acked := 0
	var firstErr error
	for i, r := range live {
		if errs[i] == nil {
			acked++
			c.reportSuccess(r)
			if c.busyTarget == r && rangesOverlap(uint64(lba), blocks, c.busyLBA, c.busyCount) {
				// This write raced the resilver's in-flight copy of the same
				// region: the stale copy may land after us, so re-mark the
				// region and let the next pass re-copy it.
				r.dirty.Mark(uint64(lba), blocks)
			}
		} else {
			r.dirty.Mark(uint64(lba), blocks)
			c.reportFailure(p, r)
			if firstErr == nil {
				firstErr = errs[i]
			}
		}
	}
	if acked == 0 {
		c.WriteFailures++
		return firstErr
	}
	if c.migDirty != nil {
		c.migDirty.Mark(uint64(lba), blocks)
	}
	if acked < len(live) {
		c.DegradedWrites++
	}
	if len(c.reps) > 1 {
		c.MirroredWrites++
	}
	return nil
}

func (c *Client) submitRead(p *sim.Proc, lba int64, buf guest.Buffer) error {
	blocks := uint64(len(buf.Data) / c.BlockSize())
	t0 := p.Now()
	c.readCount++
	probe := c.Cfg.ProbeEvery > 0 && c.readCount%int64(c.Cfg.ProbeEvery) == 0
	tried := make(map[*Replica]bool, len(c.reps))
	var firstErr error
	for attempt := 0; ; attempt++ {
		var r *Replica
		if probe && attempt == 0 {
			// Probe tick: steer this read to the worst-EWMA eligible leg so a
			// leg that lost read traffic keeps a live latency estimate and can
			// win steering back once it recovers.
			if r = c.pickProbe(uint64(lba), blocks); r != nil {
				c.ProbeReads++
			}
		}
		if r == nil {
			r = c.pickRead(uint64(lba), blocks, tried)
		}
		if r == nil {
			break
		}
		tried[r] = true
		if c.Cfg.HedgePercentile > 0 {
			svc, err := c.hedgedRead(p, r, lba, buf, blocks, tried)
			if err == nil {
				c.recordRead(p.Now()-t0, svc, true)
				return nil
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		start := p.Now()
		err := r.Drv.Submit(p, false, lba, buf)
		if err == nil {
			c.observeRead(r, p.Now()-start)
			c.observeDelivered(p.Now() - start)
			c.reportSuccess(r)
			c.recordRead(p.Now()-t0, p.Now()-start, true)
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if errors.Is(err, ring.ErrIntegrity) {
			// The device's guard verification caught corrupt data. The
			// replica answered promptly — this is a data problem, not a
			// transport problem — so fall back to a peer without charging
			// the health state machine.
			c.ReadFallbacks++
			continue
		}
		c.ReadRetries++
		c.reportFailure(p, r)
	}
	if firstErr == nil {
		firstErr = ErrNoReplicas
	}
	c.recordRead(p.Now()-t0, 0, false)
	return firstErr
}

// pickRead chooses the untried replica with the lowest smoothed read
// latency whose data for the range is known-good: fenced legs and legs
// whose dirty log intersects the range are ineligible. Quarantined
// (fail-slow) legs are passed over unless no other leg can serve — a slow
// answer still beats none.
func (c *Client) pickRead(lba, blocks uint64, tried map[*Replica]bool) *Replica {
	if best := c.pickBest(lba, blocks, tried, false); best != nil {
		return best
	}
	return c.pickBest(lba, blocks, tried, true)
}

func (c *Client) pickBest(lba, blocks uint64, tried map[*Replica]bool, allowQuarantined bool) *Replica {
	var best *Replica
	for _, r := range c.reps {
		if tried[r] || r.state == Failed {
			continue
		}
		if r.dirty.Intersects(lba, blocks) {
			continue
		}
		if !allowQuarantined && !c.admitRead(r) {
			continue
		}
		if best == nil || r.ewmaRead < best.ewmaRead {
			best = r
		}
	}
	return best
}

func (c *Client) observeRead(r *Replica, d sim.Time) {
	const alpha = 0.25
	if r.ewmaRead == 0 {
		r.ewmaRead = float64(d)
	} else {
		r.ewmaRead += alpha * (float64(d) - r.ewmaRead)
	}
	if c.Cfg.SlowFactor > 0 {
		c.observeSlow(r, d)
	}
}

// reportFailure advances the health state machine on an I/O error, with
// hysteresis so one transient fault does not fence a device.
func (c *Client) reportFailure(p *sim.Proc, r *Replica) {
	if r.state == Failed {
		return
	}
	if r.consecFail == 0 {
		r.firstFailAt = p.Now()
	}
	r.consecFail++
	r.consecOK = 0
	switch r.state {
	case Healthy, Rebuilding:
		if r.consecFail >= c.Cfg.SuspectThreshold {
			r.state = Suspect
			c.Suspects++
		}
	case Suspect:
		if r.consecFail >= c.Cfg.FailThreshold {
			r.state = Failed
			c.Failovers++
			c.LastFailoverLatency = p.Now() - r.firstFailAt
		}
	}
}

// reportSuccess rewards a completed I/O; consecutive successes clear a
// suspect replica.
func (c *Client) reportSuccess(r *Replica) {
	r.consecFail = 0
	if r.state == Suspect {
		r.consecOK++
		if r.consecOK >= c.Cfg.RecoverThreshold {
			r.consecOK = 0
			if r.dirty.DirtyRegions() == 0 {
				r.state = Healthy
				c.Recoveries++
			} else {
				// The suspect window dropped writes: the replica is reachable
				// again but stale, so it must resilver before serving reads
				// of the affected regions.
				r.state = Rebuilding
				c.Recoveries++
				c.kickResilver()
			}
		}
	}
}

// Revive moves a fenced replica to Rebuilding and starts the resilver —
// called when the operator (or the fault plan) brings a killed device back.
func (c *Client) Revive(dev int) {
	for _, r := range c.reps {
		if r.Dev == dev && r.state == Failed {
			r.state = Rebuilding
			r.consecFail = 0
			r.consecOK = 0
			c.Revives++
			c.kickResilver()
		}
	}
}

func rangesOverlap(aLBA, aN, bLBA, bN uint64) bool {
	return aN > 0 && bN > 0 && aLBA < bLBA+bN && bLBA < aLBA+aN
}
