package fabric

import (
	"fmt"

	"nesc/internal/extfs"
	"nesc/internal/guest"
	"nesc/internal/sim"
)

// Background resilver: drains rebuilding replicas' dirty logs by copying
// each dirty region from a clean peer, paced at one region per
// ResilverInterval so rebuild traffic rides under foreground tenants like
// the device's scavenger-priority scrub does. The copy is convergent, not
// locked: the region's dirty bit is cleared before the copy, and a
// foreground write racing the in-flight copy re-marks it (submitWrite), so
// the next pass re-copies — acknowledged writes are never lost to a stale
// resilver copy.

// kickResilver starts the resilver process if it is not already running.
func (c *Client) kickResilver() {
	if c.resilverRunning {
		return
	}
	c.resilverRunning = true
	c.Eng.Go("fabric-resilver", c.resilverLoop)
}

// StopResilver terminates the resilver after its current region copy.
func (c *Client) StopResilver() { c.resilverStop = true }

func (c *Client) resilverLoop(p *sim.Proc) {
	defer func() { c.resilverRunning = false }()
	for !c.resilverStop {
		p.Sleep(c.Cfg.ResilverInterval)
		target := c.nextRebuildTarget()
		if target == nil {
			return
		}
		reg := target.dirty.Next(0)
		if reg < 0 {
			// Dirty log drained: redundancy restored.
			target.state = Healthy
			c.ResilverRestores++
			continue
		}
		c.copyRegion(p, target, reg)
	}
}

func (c *Client) nextRebuildTarget() *Replica {
	for _, r := range c.reps {
		if r.state == Rebuilding {
			return r
		}
	}
	return nil
}

// copyRegion copies one dirty region from a clean peer onto target.
func (c *Client) copyRegion(p *sim.Proc, target *Replica, reg int) {
	lba, count := target.dirty.RegionSpan(reg)
	src := c.cleanSource(target, lba, count)
	if src == nil {
		// No clean peer right now (all suspect-dirty or fenced): leave the
		// region marked and retry next tick.
		return
	}
	target.dirty.Clear(reg)
	c.busyTarget, c.busyLBA, c.busyCount = target, lba, count
	defer func() { c.busyTarget, c.busyLBA, c.busyCount = nil, 0, 0 }()
	// Chunk the copy at the mirror's request-size limit: the VF drivers do
	// not split oversized requests themselves (the guest block layer
	// normally does), and a trampoline-mode driver's bounce slots only hold
	// MaxBlocksPerReq blocks.
	chunk := uint64(c.MaxBlocksPerReq())
	for off := uint64(0); off < count; off += chunk {
		n := min(chunk, count-off)
		buf := c.resilverBuffer(int(n) * c.BlockSize())
		if err := src.Drv.Submit(p, false, int64(lba+off), buf); err != nil {
			target.dirty.Mark(lba, count)
			c.reportFailure(p, src)
			return
		}
		if err := target.Drv.Submit(p, true, int64(lba+off), buf); err != nil {
			target.dirty.Mark(lba, count)
			c.reportFailure(p, target)
			return
		}
	}
	c.reportSuccess(target)
	c.ResilverRegions++
	c.ResilverBlocks += int64(count)
}

// cleanSource picks a replica whose copy of [lba, lba+count) is current.
func (c *Client) cleanSource(target *Replica, lba, count uint64) *Replica {
	var best *Replica
	for _, r := range c.reps {
		if r == target || r.state == Failed || r.state == Rebuilding {
			continue
		}
		if r.dirty.Intersects(lba, count) {
			continue
		}
		if best == nil || r.ewmaRead < best.ewmaRead {
			best = r
		}
	}
	return best
}

func (c *Client) resilverBuffer(n int) guest.Buffer {
	if len(c.resilverBuf.Data) < n {
		addr := c.Mem.MustAlloc(int64(n), 64)
		data, err := c.Mem.Slice(addr, int64(n))
		if err != nil {
			panic(err)
		}
		c.resilverBuf = guest.Buffer{Addr: addr, Data: data}
	}
	return guest.Buffer{Addr: c.resilverBuf.Addr, Data: c.resilverBuf.Data[:n]}
}

// Pause blocks new submissions and waits until every in-flight request has
// drained — the stop-and-copy window of a live migration. Balanced by
// Resume.
func (c *Client) Pause(p *sim.Proc) {
	c.paused = true
	c.resumed = sim.NewSignal(c.Eng)
	for c.inflight > 0 {
		c.drained = sim.NewSignal(c.Eng)
		c.drained.Await(p)
	}
	c.drained = nil
}

// Resume reopens the gate and wakes every submitter parked by Pause.
func (c *Client) Resume() {
	c.paused = false
	if c.resumed != nil {
		c.resumed.Fire()
	}
}

// TrackDirty arms write tracking for a migration's iterative copy passes
// and returns the log; every acknowledged write from now on marks it.
func (c *Client) TrackDirty(regionBlocks uint64) *extfs.DirtyLog {
	c.migDirty = extfs.NewDirtyLog(uint64(c.CapacityBlocks()), regionBlocks)
	return c.migDirty
}

// StopTracking disarms migration write tracking.
func (c *Client) StopTracking() { c.migDirty = nil }

// Retarget atomically repoints replica slot i at a new device and driver —
// the final switch-over of a live migration, called inside the Pause
// window so no request is in flight across the swap.
func (c *Client) Retarget(i int, dev int, drv guest.BlockDriver) error {
	if i < 0 || i >= len(c.reps) {
		return fmt.Errorf("fabric: no replica slot %d", i)
	}
	if drv.BlockSize() != c.BlockSize() || drv.CapacityBlocks() != c.CapacityBlocks() {
		return fmt.Errorf("fabric: retarget geometry mismatch")
	}
	r := c.reps[i]
	r.Dev = dev
	r.Drv = drv
	r.state = Healthy
	r.consecFail, r.consecOK = 0, 0
	r.ewmaRead = 0
	r.dirty = extfs.NewDirtyLog(uint64(c.CapacityBlocks()), c.Cfg.RegionBlocks)
	return nil
}

// ReplicaStatus is one leg's externally visible health.
type ReplicaStatus struct {
	Dev          int
	State        string
	DirtyRegions int
	ConsecFails  int
	EWMARead     sim.Time
	Quarantined  bool
}

// Status snapshots every leg (degraded-mode reporting).
func (c *Client) Status() []ReplicaStatus {
	out := make([]ReplicaStatus, len(c.reps))
	for i, r := range c.reps {
		out[i] = ReplicaStatus{
			Dev:          r.Dev,
			State:        r.state.String(),
			DirtyRegions: r.dirty.DirtyRegions(),
			ConsecFails:  r.consecFail,
			EWMARead:     sim.Time(r.ewmaRead),
			Quarantined:  r.quarantined,
		}
	}
	return out
}
