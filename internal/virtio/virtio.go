// Package virtio implements the split-virtqueue transport and the
// virtio-blk request format — the paravirtualized storage interface the
// paper uses as its primary software baseline ("commonly referred to as
// virtio after its Linux implementation ... the most common storage
// virtualization method used in modern hypervisors", §II).
//
// The virtqueue lives in guest memory and is accessed functionally by both
// the guest driver and the host backend; CPU and trap costs are charged by
// the respective callers. The layout follows the classic split ring:
//
//	descriptor table: qsz × {addr u64, len u32, flags u16, next u16}
//	available ring:   {flags u16, idx u16, ring[qsz] u16}
//	used ring:        {flags u16, idx u16, ring[qsz] × {id u32, len u32}}
package virtio

import (
	"fmt"

	"nesc/internal/hostmem"
)

// Descriptor flags.
const (
	FlagNext  = 1 // chain continues at .next
	FlagWrite = 2 // device writes this buffer
)

// virtio-blk request types.
const (
	BlkTRead  = 0
	BlkTWrite = 1
)

// virtio-blk status byte values.
const (
	BlkStatusOK    = 0
	BlkStatusIOErr = 1
)

// BlkHeaderBytes is the size of the virtio-blk request header
// {type u32, reserved u32, sector u64}.
const BlkHeaderBytes = 16

// SectorSize is the virtio-blk addressing unit.
const SectorSize = 512

// DescBuf describes one buffer of a descriptor chain.
type DescBuf struct {
	Addr        hostmem.Addr
	Len         uint32
	DeviceWrite bool
}

const descBytes = 16

// RingBytes reports the guest memory footprint of a qsz-entry virtqueue.
func RingBytes(qsz int) int64 {
	desc := int64(qsz) * descBytes
	avail := int64(4 + 2*qsz)
	used := int64(4 + 8*qsz)
	return desc + align4(avail) + align4(used)
}

func align4(n int64) int64 { return (n + 3) &^ 3 }

// Virtqueue is one split virtqueue. The guest and the host each construct
// their own Virtqueue over the same memory; only the private cursors differ.
type Virtqueue struct {
	mem  *hostmem.Memory
	base hostmem.Addr
	qsz  int

	descOff  int64
	availOff int64
	usedOff  int64

	// Guest-private state.
	free      []uint16
	availIdx  uint16
	lastUsed  uint16
	chainTail map[uint16]int // head -> chain length, for freeing

	// Host-private state.
	lastAvail uint16
	usedIdx   uint16
}

// New maps a virtqueue over guest memory at base (RingBytes(qsz) bytes).
func New(mem *hostmem.Memory, base hostmem.Addr, qsz int) *Virtqueue {
	q := &Virtqueue{
		mem:       mem,
		base:      base,
		qsz:       qsz,
		descOff:   0,
		chainTail: make(map[uint16]int),
	}
	q.availOff = int64(qsz) * descBytes
	q.usedOff = q.availOff + align4(int64(4+2*qsz))
	for i := qsz - 1; i >= 0; i-- {
		q.free = append(q.free, uint16(i))
	}
	return q
}

// QueueSize reports the ring capacity.
func (q *Virtqueue) QueueSize() int { return q.qsz }

func (q *Virtqueue) descAddr(i uint16) hostmem.Addr {
	return q.base + q.descOff + int64(i)*descBytes
}

func (q *Virtqueue) writeDesc(i uint16, b DescBuf, next uint16, hasNext bool) error {
	a := q.descAddr(i)
	if err := q.mem.WriteU64(a, uint64(b.Addr)); err != nil {
		return err
	}
	if err := q.mem.WriteU32(a+8, b.Len); err != nil {
		return err
	}
	var flags uint32
	if hasNext {
		flags |= FlagNext
	}
	if b.DeviceWrite {
		flags |= FlagWrite
	}
	// flags u16 | next u16 packed into one u32 for simplicity of access.
	if err := q.mem.WriteU32(a+12, flags<<16|uint32(next)); err != nil {
		return err
	}
	return nil
}

func (q *Virtqueue) readDesc(i uint16) (DescBuf, uint16, bool, error) {
	a := q.descAddr(i)
	addr, err := q.mem.ReadU64(a)
	if err != nil {
		return DescBuf{}, 0, false, err
	}
	l, err := q.mem.ReadU32(a + 8)
	if err != nil {
		return DescBuf{}, 0, false, err
	}
	fn, err := q.mem.ReadU32(a + 12)
	if err != nil {
		return DescBuf{}, 0, false, err
	}
	flags := fn >> 16
	next := uint16(fn & 0xffff)
	return DescBuf{Addr: int64(addr), Len: l, DeviceWrite: flags&FlagWrite != 0}, next, flags&FlagNext != 0, nil
}

// AddChain (guest side) allocates descriptors for bufs and publishes the
// chain on the available ring. It reports the chain head, or false when the
// ring lacks free descriptors.
func (q *Virtqueue) AddChain(bufs []DescBuf) (uint16, bool, error) {
	if len(bufs) == 0 || len(bufs) > len(q.free) {
		return 0, false, nil
	}
	idxs := make([]uint16, len(bufs))
	for i := range bufs {
		idxs[i] = q.free[len(q.free)-1-i]
	}
	q.free = q.free[:len(q.free)-len(bufs)]
	for i, b := range bufs {
		var next uint16
		hasNext := i+1 < len(bufs)
		if hasNext {
			next = idxs[i+1]
		}
		if err := q.writeDesc(idxs[i], b, next, hasNext); err != nil {
			return 0, false, err
		}
	}
	head := idxs[0]
	q.chainTail[head] = len(bufs)
	// Publish on the available ring.
	slot := q.base + q.availOff + 4 + int64(q.availIdx%uint16(q.qsz))*2
	if err := q.mem.Write(slot, []byte{byte(head >> 8), byte(head)}); err != nil {
		return 0, false, err
	}
	q.availIdx++
	if err := q.mem.Write(q.base+q.availOff+2, []byte{byte(q.availIdx >> 8), byte(q.availIdx)}); err != nil {
		return 0, false, err
	}
	return head, true, nil
}

// PopAvail (host side) consumes the next published chain head.
func (q *Virtqueue) PopAvail() (uint16, bool, error) {
	b := make([]byte, 2)
	if err := q.mem.Read(q.base+q.availOff+2, b); err != nil {
		return 0, false, err
	}
	idx := uint16(b[0])<<8 | uint16(b[1])
	if q.lastAvail == idx {
		return 0, false, nil
	}
	slot := q.base + q.availOff + 4 + int64(q.lastAvail%uint16(q.qsz))*2
	if err := q.mem.Read(slot, b); err != nil {
		return 0, false, err
	}
	q.lastAvail++
	return uint16(b[0])<<8 | uint16(b[1]), true, nil
}

// ReadChain (host side) decodes the descriptor chain starting at head.
func (q *Virtqueue) ReadChain(head uint16) ([]DescBuf, error) {
	var out []DescBuf
	i := head
	for {
		b, next, hasNext, err := q.readDesc(i)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
		if !hasNext {
			return out, nil
		}
		if len(out) > q.qsz {
			return nil, fmt.Errorf("virtio: descriptor chain loop at %d", head)
		}
		i = next
	}
}

// PushUsed (host side) retires a chain on the used ring.
func (q *Virtqueue) PushUsed(head uint16, written uint32) error {
	slot := q.base + q.usedOff + 4 + int64(q.usedIdx%uint16(q.qsz))*8
	if err := q.mem.WriteU32(slot, uint32(head)); err != nil {
		return err
	}
	if err := q.mem.WriteU32(slot+4, written); err != nil {
		return err
	}
	q.usedIdx++
	return q.mem.Write(q.base+q.usedOff+2, []byte{byte(q.usedIdx >> 8), byte(q.usedIdx)})
}

// PopUsed (guest side) consumes the next retired chain, freeing its
// descriptors.
func (q *Virtqueue) PopUsed() (uint16, bool, error) {
	b := make([]byte, 2)
	if err := q.mem.Read(q.base+q.usedOff+2, b); err != nil {
		return 0, false, err
	}
	idx := uint16(b[0])<<8 | uint16(b[1])
	if q.lastUsed == idx {
		return 0, false, nil
	}
	slot := q.base + q.usedOff + 4 + int64(q.lastUsed%uint16(q.qsz))*8
	head32, err := q.mem.ReadU32(slot)
	if err != nil {
		return 0, false, err
	}
	q.lastUsed++
	head := uint16(head32)
	n := q.chainTail[head]
	delete(q.chainTail, head)
	// Return descriptors to the free list. Chain indices were taken from
	// the tail of the free list in order.
	i := head
	for k := 0; k < n; k++ {
		q.free = append(q.free, i)
		_, next, hasNext, err := q.readDesc(i)
		if err != nil {
			return 0, false, err
		}
		if !hasNext {
			break
		}
		i = next
	}
	return head, true, nil
}
