package virtio

import (
	"math/rand"
	"testing"

	"nesc/internal/hostmem"
)

func newQ(t *testing.T, qsz int) *Virtqueue {
	t.Helper()
	mem := hostmem.New(1 << 20)
	base := mem.MustAlloc(RingBytes(qsz), 16)
	return New(mem, base, qsz)
}

func TestAddPopChain(t *testing.T) {
	q := newQ(t, 8)
	bufs := []DescBuf{
		{Addr: 0x1000, Len: 16},
		{Addr: 0x2000, Len: 4096, DeviceWrite: true},
		{Addr: 0x3000, Len: 1, DeviceWrite: true},
	}
	head, ok, err := q.AddChain(bufs)
	if err != nil || !ok {
		t.Fatalf("AddChain = %v, %v", ok, err)
	}
	got, ok, err := q.PopAvail()
	if err != nil || !ok || got != head {
		t.Fatalf("PopAvail = %d, %v, %v (want %d)", got, ok, err, head)
	}
	chain, err := q.ReadChain(head)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain length %d", len(chain))
	}
	for i := range bufs {
		if chain[i] != bufs[i] {
			t.Fatalf("chain[%d] = %+v, want %+v", i, chain[i], bufs[i])
		}
	}
	// Nothing more available.
	if _, ok, _ := q.PopAvail(); ok {
		t.Fatal("spurious avail entry")
	}
}

func TestUsedRoundTripAndDescriptorRecycling(t *testing.T) {
	q := newQ(t, 4)
	// Fill the ring, complete everything, repeat — descriptors must recycle.
	for round := 0; round < 5; round++ {
		var heads []uint16
		for i := 0; i < 2; i++ { // two 2-buf chains exhaust a 4-entry ring
			h, ok, err := q.AddChain([]DescBuf{{Addr: 1, Len: 2}, {Addr: 3, Len: 4, DeviceWrite: true}})
			if err != nil || !ok {
				t.Fatalf("round %d: AddChain = %v, %v", round, ok, err)
			}
			heads = append(heads, h)
		}
		// Ring is now full.
		if _, ok, _ := q.AddChain([]DescBuf{{Addr: 9, Len: 9}}); ok {
			t.Fatal("AddChain succeeded on a full ring")
		}
		for _, want := range heads {
			h, ok, err := q.PopAvail()
			if err != nil || !ok || h != want {
				t.Fatalf("PopAvail = %d, %v, %v", h, ok, err)
			}
			if err := q.PushUsed(h, 4); err != nil {
				t.Fatal(err)
			}
		}
		for _, want := range heads {
			h, ok, err := q.PopUsed()
			if err != nil || !ok || h != want {
				t.Fatalf("PopUsed = %d, %v, %v (want %d)", h, ok, err, want)
			}
		}
		if _, ok, _ := q.PopUsed(); ok {
			t.Fatal("spurious used entry")
		}
	}
}

func TestIndexWraparound(t *testing.T) {
	q := newQ(t, 2)
	// Push enough single-buffer chains to wrap the 16-bit indices region
	// (ring position arithmetic) many times.
	for i := 0; i < 300; i++ {
		h, ok, err := q.AddChain([]DescBuf{{Addr: int64(i), Len: 1}})
		if err != nil || !ok {
			t.Fatalf("i=%d AddChain = %v, %v", i, ok, err)
		}
		g, ok, err := q.PopAvail()
		if err != nil || !ok || g != h {
			t.Fatalf("i=%d PopAvail mismatch", i)
		}
		chain, err := q.ReadChain(g)
		if err != nil || len(chain) != 1 || chain[0].Addr != int64(i) {
			t.Fatalf("i=%d chain = %+v, %v", i, chain, err)
		}
		if err := q.PushUsed(g, 0); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := q.PopUsed(); !ok {
			t.Fatalf("i=%d used entry lost", i)
		}
	}
}

func TestRingBytesLayoutDisjoint(t *testing.T) {
	// The three ring areas must not overlap for any size.
	for _, qsz := range []int{1, 2, 8, 128, 256} {
		q := newQ(t, qsz)
		if q.availOff < int64(qsz)*descBytes {
			t.Fatalf("qsz %d: avail overlaps desc", qsz)
		}
		if q.usedOff < q.availOff+int64(4+2*qsz) {
			t.Fatalf("qsz %d: used overlaps avail", qsz)
		}
		if RingBytes(qsz) < q.usedOff+int64(4+8*qsz) {
			t.Fatalf("qsz %d: RingBytes too small", qsz)
		}
	}
}

func TestInterleavedProducerConsumerProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := newQ(t, 16)
	inFlight := map[uint16]int64{}
	submitted, completed := 0, 0
	for step := 0; step < 2000; step++ {
		if rng.Intn(2) == 0 {
			addr := int64(rng.Intn(1 << 20))
			if h, ok, err := q.AddChain([]DescBuf{{Addr: addr, Len: 8}}); err != nil {
				t.Fatal(err)
			} else if ok {
				inFlight[h] = addr
				submitted++
			}
		} else {
			h, ok, err := q.PopAvail()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			chain, err := q.ReadChain(h)
			if err != nil {
				t.Fatal(err)
			}
			if chain[0].Addr != inFlight[h] {
				t.Fatalf("chain %d addr %#x, want %#x", h, chain[0].Addr, inFlight[h])
			}
			if err := q.PushUsed(h, 0); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := q.PopUsed(); err != nil || !ok {
				t.Fatal("used entry lost")
			}
			delete(inFlight, h)
			completed++
		}
	}
	if submitted == 0 || completed == 0 {
		t.Fatal("property test exercised nothing")
	}
}
