// Package sim implements the deterministic discrete-event simulation kernel
// that underpins the NeSC reproduction.
//
// The kernel combines two styles of modeling:
//
//   - Event callbacks: components schedule closures on the Engine at future
//     virtual times (Engine.After / Engine.At). This is the natural style for
//     small hardware state machines.
//   - Processes: sequential goroutines coupled to the engine with a strict
//     hand-off protocol (Engine.Go). At any instant either the engine or
//     exactly one process runs, so process code may touch shared simulation
//     state without locks and the simulation stays fully deterministic.
//     Processes model software (guest kernels, hypervisor handlers,
//     workloads) and pipelined hardware units that are awkward as explicit
//     state machines.
//
// Virtual time is an int64 nanosecond count. The kernel never consults the
// wall clock; given the same inputs a simulation always produces the same
// event order and the same measurements.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in (or a span of) virtual time, in nanoseconds.
type Time int64

// Convenient durations of virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as a floating-point microsecond count.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// BytesTime returns the virtual time needed to move n bytes at the given
// bandwidth (bytes per second). A non-positive bandwidth means "infinitely
// fast" and costs zero time.
func BytesTime(n int64, bytesPerSec float64) Time {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return Time(float64(n) / bytesPerSec * float64(Second))
}

type event struct {
	at  Time
	seq int64 // tie-breaker: FIFO among simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// Engine is the discrete-event simulation executive: a virtual clock plus a
// time-ordered queue of pending events. An Engine is not safe for concurrent
// use; the process hand-off protocol guarantees single-threaded access.
type Engine struct {
	now    Time
	seq    int64
	events eventHeap
	procs  map[*Proc]struct{}

	// Stepped counts dispatched events; useful as a progress/cost metric.
	Stepped int64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{procs: make(map[*Proc]struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a modeling bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds of virtual time from now.
// Negative delays are clamped to zero.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Step dispatches the single earliest pending event, advancing the clock to
// its timestamp. It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.Stepped++
	ev.fn()
	return true
}

// Run dispatches events until none remain. Processes blocked on queues or
// semaphores do not keep the simulation alive: when the event queue drains
// the simulation is quiescent and Run returns.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with timestamps <= t and then advances the
// clock to exactly t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Idle reports whether the simulation is quiescent: no scheduled events.
// Parked processes may still exist (e.g. device pipelines waiting for work).
func (e *Engine) Idle() bool { return len(e.events) == 0 }

// Shutdown terminates every parked process so its goroutine exits. It must
// only be called when the engine is idle (outside Run). After Shutdown the
// engine must not be used again.
func (e *Engine) Shutdown() {
	for p := range e.procs {
		if p.parked {
			p.kill()
		}
	}
	e.procs = make(map[*Proc]struct{})
}
