package sim

// Proc is a simulation process: a goroutine whose execution is interleaved
// with the event loop under a strict hand-off protocol. At any moment either
// the engine or exactly one process runs. A process blocks only through the
// kernel primitives (Sleep, Wait, FIFO.Pop, Semaphore.Acquire, ...), each of
// which parks the goroutine and returns control to the engine.
//
// The hand-off makes process code look like ordinary sequential software:
// guest kernels, hypervisor interrupt handlers, and device pipeline stages
// are all written as plain loops over blocking calls.
type Proc struct {
	eng    *Engine
	wake   chan wakeMsg
	back   chan struct{}
	parked bool
	name   string
}

type wakeMsg struct{ kill bool }

type procKilled struct{}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Name returns the debug name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Go spawns a new process executing fn. The process starts at the current
// virtual time (after already-pending events at this timestamp). When fn
// returns the process disappears.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:  e,
		wake: make(chan wakeMsg),
		back: make(chan struct{}),
		name: name,
	}
	e.procs[p] = struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); ok {
					// Engine shutdown: the goroutine has finished unwinding
					// (deferred cleanups included); hand control back so the
					// killer can serialize unwinds — deferred handlers touch
					// shared simulation state and must never run concurrently.
					p.back <- struct{}{}
					return
				}
				panic(r)
			}
		}()
		if msg := <-p.wake; msg.kill {
			return
		}
		fn(p)
		delete(e.procs, p)
		p.back <- struct{}{} // return control to the engine
	}()
	e.After(0, func() { p.resume() })
	return p
}

// resume transfers control to the process and blocks until it parks again or
// terminates. Must be called from engine (event) context.
func (p *Proc) resume() {
	p.parked = false
	p.wake <- wakeMsg{}
	<-p.back
}

// park returns control to the engine and blocks until resumed.
// Must be called from process context.
func (p *Proc) park() {
	p.parked = true
	p.back <- struct{}{}
	if msg := <-p.wake; msg.kill {
		panic(procKilled{})
	}
	p.parked = false
}

// kill terminates a parked process and waits for its goroutine to finish
// unwinding, so two victims' deferred cleanups never run concurrently.
// Engine context only.
func (p *Proc) kill() {
	p.wake <- wakeMsg{kill: true}
	<-p.back
}

// Sleep suspends the process for d nanoseconds of virtual time.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		return
	}
	p.eng.After(d, func() { p.resume() })
	p.park()
}

// Yield parks the process and reschedules it at the current time, letting
// other events and processes at this timestamp run first.
func (p *Proc) Yield() {
	p.eng.After(0, func() { p.resume() })
	p.park()
}

// Wait adapts a callback-style asynchronous operation to process style.
// start must initiate the operation and arrange for done to be invoked
// exactly once from engine context when the operation completes. Wait blocks
// the process until then. done may also be invoked synchronously from within
// start.
func (p *Proc) Wait(start func(done func())) {
	completed := false
	parked := false
	start(func() {
		if !parked {
			completed = true
			return
		}
		p.resume()
	})
	if completed {
		return
	}
	parked = true
	p.park()
}

// Signal is a single-use wakeup another party completes. Zero value is ready
// for use after NewSignal.
type Signal struct {
	eng   *Engine
	fired bool
	wait  []func()
}

// NewSignal returns a signal bound to engine e.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Fire marks the signal complete and wakes every waiter. Firing twice is a
// no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.wait {
		w()
	}
	s.wait = nil
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Await blocks the process until the signal fires (returns immediately if it
// already has).
func (s *Signal) Await(p *Proc) {
	if s.fired {
		return
	}
	p.Wait(func(done func()) {
		s.wait = append(s.wait, func() { s.eng.After(0, done) })
	})
}

// AwaitTimeout blocks the process until the signal fires or d elapses,
// reporting whether the signal had fired by the time the process resumed.
// A non-positive d waits without a deadline. The deadline event stays in the
// engine's queue until it expires (a no-op if the signal won), so timeouts
// should be armed only where recovery genuinely needs them.
func (s *Signal) AwaitTimeout(p *Proc, d Time) bool {
	if s.fired {
		return true
	}
	if d <= 0 {
		s.Await(p)
		return true
	}
	p.Wait(func(done func()) {
		resumed := false
		wake := func() {
			if resumed {
				return
			}
			resumed = true
			s.eng.After(0, done)
		}
		s.wait = append(s.wait, wake)
		s.eng.After(d, wake)
	})
	return s.fired
}

// WaitGroup counts outstanding operations and wakes waiters at zero, like
// sync.WaitGroup but in virtual time.
type WaitGroup struct {
	eng  *Engine
	n    int
	wait []func()
}

// NewWaitGroup returns a wait group bound to engine e.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{eng: e} }

// Add increments the outstanding-operation count by delta.
func (w *WaitGroup) Add(delta int) { w.n += delta }

// Done decrements the count; at zero all waiters wake.
func (w *WaitGroup) Done() {
	w.n--
	if w.n < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if w.n == 0 {
		waiters := w.wait
		w.wait = nil
		for _, fn := range waiters {
			fn()
		}
	}
}

// WaitFor blocks the process until the count reaches zero.
func (w *WaitGroup) WaitFor(p *Proc) {
	if w.n == 0 {
		return
	}
	p.Wait(func(done func()) {
		w.wait = append(w.wait, func() { w.eng.After(0, done) })
	})
}
