package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(30*Microsecond, func() { got = append(got, 3) })
	e.After(10*Microsecond, func() { got = append(got, 1) })
	e.After(20*Microsecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30*Microsecond {
		t.Fatalf("clock = %v, want 30us", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5*Microsecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.After(Microsecond, func() {
		trace = append(trace, e.Now())
		e.After(2*Microsecond, func() {
			trace = append(trace, e.Now())
		})
	})
	e.Run()
	if len(trace) != 2 || trace[0] != Microsecond || trace[1] != 3*Microsecond {
		t.Fatalf("nested schedule trace = %v", trace)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10*Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*Microsecond, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.After(10*Microsecond, func() { fired++ })
	e.After(20*Microsecond, func() { fired++ })
	e.RunUntil(15 * Microsecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 15*Microsecond {
		t.Fatalf("clock = %v, want 15us", e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// Property: dispatch order equals sorted order of (time, insertion) for any
// random schedule.
func TestEngineDispatchOrderProperty(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		e := NewEngine()
		type stamp struct {
			at  Time
			seq int
		}
		want := make([]stamp, len(delaysRaw))
		var got []stamp
		for i, d := range delaysRaw {
			at := Time(d) * Microsecond
			want[i] = stamp{at, i}
			s := stamp{at, i}
			e.At(at, func() { got = append(got, s) })
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		e.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleepAndHandoff(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10 * Microsecond)
		trace = append(trace, "a1")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(5 * Microsecond)
		trace = append(trace, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "b1", "a1"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcWaitSynchronousCompletion(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Go("p", func(p *Proc) {
		p.Wait(func(done func()) { done() }) // completes inline
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("process did not survive synchronous Wait completion")
	}
}

func TestProcWaitAsynchronousCompletion(t *testing.T) {
	e := NewEngine()
	var doneAt Time
	e.Go("p", func(p *Proc) {
		p.Wait(func(done func()) { e.After(7*Microsecond, done) })
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 7*Microsecond {
		t.Fatalf("wait completed at %v, want 7us", doneAt)
	}
}

func TestFIFOBlockingPopAndBackpressure(t *testing.T) {
	e := NewEngine()
	q := NewFIFO[int](e, 2)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v := q.Pop(p)
			got = append(got, v)
			p.Sleep(10 * Microsecond) // slow consumer forces producer to block
		}
	})
	var producerDone Time
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Push(p, i)
		}
		producerDone = p.Now()
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("consumed %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
	if producerDone == 0 {
		t.Fatal("producer finished instantly; bounded queue did not apply backpressure")
	}
}

func TestFIFOTryOps(t *testing.T) {
	e := NewEngine()
	q := NewFIFO[string](e, 1)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	if !q.TryPush("x") {
		t.Fatal("TryPush on empty queue failed")
	}
	if q.TryPush("y") {
		t.Fatal("TryPush past capacity succeeded")
	}
	v, ok := q.TryPop()
	if !ok || v != "x" {
		t.Fatalf("TryPop = %q, %v", v, ok)
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, 1)
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		e.Go("worker", func(p *Proc) {
			sem.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(5 * Microsecond)
			inside--
			sem.Release()
		})
	}
	e.Run()
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
	if e.Now() != 20*Microsecond {
		t.Fatalf("serialized critical sections should end at 20us, got %v", e.Now())
	}
}

func TestSignal(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			s.Await(p)
			woke = append(woke, p.Now())
		})
	}
	e.After(12*Microsecond, s.Fire)
	e.Run()
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, at := range woke {
		if at != 12*Microsecond {
			t.Fatalf("waiter woke at %v, want 12us", at)
		}
	}
	// Awaiting a fired signal returns immediately.
	late := false
	e.Go("late", func(p *Proc) { s.Await(p); late = true })
	e.Run()
	if !late {
		t.Fatal("late waiter on fired signal blocked")
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		d := Time(i) * 10 * Microsecond
		e.After(d, wg.Done)
	}
	var doneAt Time
	e.Go("waiter", func(p *Proc) {
		wg.WaitFor(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 30*Microsecond {
		t.Fatalf("waitgroup released at %v, want 30us", doneAt)
	}
}

func TestLinkSerialization(t *testing.T) {
	e := NewEngine()
	// 1 GB/s, 1us latency, no overhead.
	l := NewLink(e, 1e9, Microsecond, 0)
	var done []Time
	l.Transfer(1000, func() { done = append(done, e.Now()) }) // 1us ser
	l.Transfer(1000, func() { done = append(done, e.Now()) }) // queued behind
	e.Run()
	if len(done) != 2 {
		t.Fatalf("completions = %d", len(done))
	}
	if done[0] != 2*Microsecond { // 1us serialization + 1us latency
		t.Fatalf("first transfer done at %v, want 2us", done[0])
	}
	if done[1] != 3*Microsecond { // serialized after the first
		t.Fatalf("second transfer done at %v, want 3us", done[1])
	}
	if l.Bytes != 2000 || l.Transfers != 2 {
		t.Fatalf("accounting: bytes=%d transfers=%d", l.Bytes, l.Transfers)
	}
}

func TestLinkOverheadPenalizesSmallTransfers(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 1e9, 0, 100)
	var doneAt Time
	l.Transfer(100, func() { doneAt = e.Now() })
	e.Run()
	// 200 bytes serialized at 1GB/s = 200ns.
	if doneAt != 200*Nanosecond {
		t.Fatalf("done at %v, want 200ns", doneAt)
	}
}

func TestLinkInfiniteBandwidth(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 0, 5*Microsecond, 0)
	var doneAt Time
	l.Transfer(1<<30, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 5*Microsecond {
		t.Fatalf("done at %v, want 5us (latency only)", doneAt)
	}
}

func TestServerFCFSAndParallelism(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 2)
	var done []Time
	for i := 0; i < 4; i++ {
		s.Visit(10*Microsecond, func() { done = append(done, e.Now()) })
	}
	e.Run()
	if len(done) != 4 {
		t.Fatalf("completions = %d", len(done))
	}
	// Two run immediately (finish at 10us), two queue (finish at 20us).
	if done[0] != 10*Microsecond || done[1] != 10*Microsecond {
		t.Fatalf("first pair done at %v,%v, want 10us", done[0], done[1])
	}
	if done[2] != 20*Microsecond || done[3] != 20*Microsecond {
		t.Fatalf("second pair done at %v,%v, want 20us", done[2], done[3])
	}
	if s.Jobs != 4 {
		t.Fatalf("jobs = %d", s.Jobs)
	}
}

// Property: a single-slot server completes jobs in submission order and its
// makespan equals the sum of service times, regardless of service pattern.
func TestServerConservationProperty(t *testing.T) {
	f := func(servicesRaw []uint8) bool {
		e := NewEngine()
		s := NewServer(e, 1)
		var total Time
		completed := 0
		for _, sr := range servicesRaw {
			d := Time(sr) * Microsecond
			total += d
			s.Visit(d, func() { completed++ })
		}
		e.Run()
		return completed == len(servicesRaw) && e.Now() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownKillsParkedProcs(t *testing.T) {
	e := NewEngine()
	q := NewFIFO[int](e, 0)
	e.Go("blocked", func(p *Proc) {
		q.Pop(p) // parks forever
		t.Error("blocked process resumed unexpectedly")
	})
	e.Run()
	e.Shutdown()
	// Nothing to assert beyond "does not deadlock or panic"; the goroutine
	// unwinds via the kill path.
}

func TestBytesTime(t *testing.T) {
	if got := BytesTime(1000, 1e9); got != Microsecond {
		t.Fatalf("BytesTime(1000, 1GB/s) = %v, want 1us", got)
	}
	if got := BytesTime(0, 1e9); got != 0 {
		t.Fatalf("BytesTime(0) = %v", got)
	}
	if got := BytesTime(1000, 0); got != 0 {
		t.Fatalf("BytesTime with zero bandwidth = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// A randomized pipeline smoke test: N producers push through a shared
// bounded FIFO to M consumers; every item must arrive exactly once.
func TestPipelineDeliveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		q := NewFIFO[int](e, 1+rng.Intn(4))
		producers := 1 + rng.Intn(3)
		perProducer := 1 + rng.Intn(20)
		seen := make(map[int]int)
		for pi := 0; pi < producers; pi++ {
			base := pi * 1000
			e.Go("prod", func(p *Proc) {
				for i := 0; i < perProducer; i++ {
					p.Sleep(Time(rng.Intn(5)) * Microsecond)
					q.Push(p, base+i)
				}
			})
		}
		total := producers * perProducer
		got := 0
		consumers := 1 + rng.Intn(3)
		for ci := 0; ci < consumers; ci++ {
			e.Go("cons", func(p *Proc) {
				for {
					if got >= total {
						return
					}
					v := q.Pop(p)
					seen[v]++
					got++
					p.Sleep(Time(rng.Intn(5)) * Microsecond)
				}
			})
		}
		e.Run()
		e.Shutdown()
		if got != total {
			t.Fatalf("trial %d: delivered %d of %d", trial, got, total)
		}
		for k, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d: item %d delivered %d times", trial, k, n)
			}
		}
	}
}

func TestYieldDefersToSameTimestampEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a-before")
		p.Yield()
		order = append(order, "a-after")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b")
	})
	e.Run()
	if len(order) != 3 || order[0] != "a-before" || order[1] != "b" || order[2] != "a-after" {
		t.Fatalf("order = %v", order)
	}
}

func TestSteppedCounterAndIdle(t *testing.T) {
	e := NewEngine()
	if !e.Idle() || e.Pending() != 0 {
		t.Fatal("fresh engine not idle")
	}
	for i := 0; i < 5; i++ {
		e.After(Time(i)*Microsecond, func() {})
	}
	if e.Pending() != 5 || e.Idle() {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if e.Stepped != 5 {
		t.Fatalf("Stepped = %d", e.Stepped)
	}
	if !e.Idle() {
		t.Fatal("engine not idle after Run")
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Go("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-5)
		ran = true
	})
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("zero sleeps misbehaved: ran=%v now=%v", ran, e.Now())
	}
}

func TestWaitGroupAddAfterZero(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	wg.Add(1)
	wg.Done()
	// Reuse after reaching zero.
	wg.Add(1)
	released := false
	e.Go("w", func(p *Proc) {
		wg.WaitFor(p)
		released = true
	})
	e.After(3*Microsecond, wg.Done)
	e.Run()
	if !released {
		t.Fatal("waiter stuck after WaitGroup reuse")
	}
}

func TestSignalAwaitTimeout(t *testing.T) {
	// Signal fires before the deadline: AwaitTimeout reports true and the
	// process resumes at fire time.
	e := NewEngine()
	s := NewSignal(e)
	var fired bool
	var at Time
	e.Go("waiter", func(p *Proc) {
		fired = s.AwaitTimeout(p, 100*Microsecond)
		at = p.Now()
	})
	e.After(10*Microsecond, s.Fire)
	e.Run()
	if !fired || at != 10*Microsecond {
		t.Fatalf("fired=%v at %v, want true at 10us", fired, at)
	}

	// Deadline expires first: AwaitTimeout reports false at the deadline.
	e = NewEngine()
	s = NewSignal(e)
	e.Go("waiter", func(p *Proc) {
		fired = s.AwaitTimeout(p, 20*Microsecond)
		at = p.Now()
	})
	e.Run()
	if fired || at != 20*Microsecond {
		t.Fatalf("fired=%v at %v, want false at 20us", fired, at)
	}

	// Already-fired signal returns immediately; non-positive d means no
	// deadline.
	e = NewEngine()
	s = NewSignal(e)
	s.Fire()
	e.Go("waiter", func(p *Proc) {
		if !s.AwaitTimeout(p, Microsecond) {
			t.Error("AwaitTimeout on fired signal reported false")
		}
	})
	s2 := NewSignal(e)
	e.Go("nodeadline", func(p *Proc) {
		if !s2.AwaitTimeout(p, 0) {
			t.Error("AwaitTimeout without deadline reported false")
		}
	})
	e.After(5*Microsecond, s2.Fire)
	e.Run()

	// A fire after the timeout must not resume the process twice (the stale
	// waiter callback is a no-op).
	e = NewEngine()
	s = NewSignal(e)
	resumes := 0
	e.Go("waiter", func(p *Proc) {
		s.AwaitTimeout(p, 5*Microsecond)
		resumes++
		p.Sleep(30 * Microsecond)
	})
	e.After(15*Microsecond, s.Fire)
	e.Run()
	if resumes != 1 {
		t.Fatalf("process resumed %d times, want 1", resumes)
	}
}
