package sim

// Link models a bandwidth-serialized, store-and-forward transport such as a
// PCIe link or a storage medium's data port. Concurrent transfers are
// serialized at the link's bandwidth; each transfer additionally pays a fixed
// propagation latency after its bytes have been serialized.
//
// Transfers optionally pay a fixed per-transfer overhead in bytes (header,
// framing, per-TLP overhead folded into an average) so small transfers see
// realistic efficiency loss.
type Link struct {
	eng         *Engine
	bytesPerSec float64
	latency     Time
	overhead    int64 // extra serialized bytes per transfer
	nextFree    Time

	// Bytes counts payload bytes accepted (excludes overhead).
	Bytes int64
	// Transfers counts accepted transfers.
	Transfers int64
	// busy accumulates serialization time for utilization accounting.
	busy Time
}

// NewLink returns a link on engine e with the given payload bandwidth
// (bytes/second; <=0 means infinitely fast), propagation latency, and fixed
// per-transfer overhead bytes.
func NewLink(e *Engine, bytesPerSec float64, latency Time, overheadBytes int64) *Link {
	return &Link{eng: e, bytesPerSec: bytesPerSec, latency: latency, overhead: overheadBytes}
}

// Bandwidth returns the configured payload bandwidth in bytes per second.
func (l *Link) Bandwidth() float64 { return l.bytesPerSec }

// SetBandwidth reconfigures the link bandwidth (used by throttled-device
// sweeps). Applies to transfers issued after the call.
func (l *Link) SetBandwidth(bps float64) { l.bytesPerSec = bps }

// Transfer moves n payload bytes across the link and invokes done when the
// last byte (plus propagation latency) has arrived. Multiple in-flight
// transfers queue behind one another at the serialization point.
func (l *Link) Transfer(n int64, done func()) {
	l.Bytes += n
	l.Transfers++
	start := l.nextFree
	if now := l.eng.now; start < now {
		start = now
	}
	ser := BytesTime(n+l.overhead, l.bytesPerSec)
	l.nextFree = start + ser
	l.busy += ser
	l.eng.At(l.nextFree+l.latency, done)
}

// TransferP is the process-style form of Transfer.
func (l *Link) TransferP(p *Proc, n int64) {
	p.Wait(func(done func()) { l.Transfer(n, done) })
}

// BusyTime returns the total serialization time accumulated so far.
func (l *Link) BusyTime() Time { return l.busy }

// Server models a first-come-first-served service station with a fixed
// number of parallel servers (e.g. a hardware functional unit, a host CPU
// devoted to an I/O thread). Each job specifies its own service time.
type Server struct {
	eng  *Engine
	cap  int
	busy int
	q    []serverJob

	// Jobs counts accepted jobs; Wait accumulates queueing delay.
	Jobs int64
	Wait Time
}

type serverJob struct {
	service  Time
	done     func()
	enqueued Time
}

// NewServer returns a server with n parallel service slots.
func NewServer(e *Engine, n int) *Server {
	if n < 1 {
		n = 1
	}
	return &Server{eng: e, cap: n}
}

// Visit submits a job with the given service time; done is invoked when
// service completes.
func (s *Server) Visit(service Time, done func()) {
	s.Jobs++
	job := serverJob{service: service, done: done, enqueued: s.eng.now}
	if s.busy < s.cap {
		s.start(job)
		return
	}
	s.q = append(s.q, job)
}

// VisitP is the process-style form of Visit.
func (s *Server) VisitP(p *Proc, service Time) {
	p.Wait(func(done func()) { s.Visit(service, done) })
}

func (s *Server) start(job serverJob) {
	s.busy++
	s.Wait += s.eng.now - job.enqueued
	s.eng.After(job.service, func() {
		s.busy--
		if len(s.q) > 0 {
			next := s.q[0]
			s.q = s.q[1:]
			s.start(next)
		}
		job.done()
	})
}

// QueueLen reports the number of jobs waiting for a slot.
func (s *Server) QueueLen() int { return len(s.q) }
