package sim

// FIFO is a bounded first-in-first-out queue connecting processes (or event
// callbacks) in a pipeline. Pop blocks the calling process while the queue is
// empty; Push blocks while it is full, providing natural backpressure between
// pipeline stages. A capacity of 0 means unbounded.
type FIFO[T any] struct {
	eng     *Engine
	cap     int
	items   []T
	getters []func() // parked poppers, FIFO order
	putters []func() // parked pushers, FIFO order
}

// NewFIFO returns a queue bound to engine e with the given capacity
// (0 = unbounded).
func NewFIFO[T any](e *Engine, capacity int) *FIFO[T] {
	return &FIFO[T]{eng: e, cap: capacity}
}

// Len reports the number of queued items.
func (q *FIFO[T]) Len() int { return len(q.items) }

// full reports whether a bounded queue is at capacity.
func (q *FIFO[T]) full() bool { return q.cap > 0 && len(q.items) >= q.cap }

// TryPush enqueues v if the queue has room, reporting whether it did.
// Safe from event context.
func (q *FIFO[T]) TryPush(v T) bool {
	if q.full() {
		return false
	}
	q.items = append(q.items, v)
	q.wakeGetter()
	return true
}

// Push enqueues v, blocking the process while the queue is full.
func (q *FIFO[T]) Push(p *Proc, v T) {
	for q.full() {
		p.Wait(func(done func()) {
			q.putters = append(q.putters, func() { q.eng.After(0, done) })
		})
	}
	q.items = append(q.items, v)
	q.wakeGetter()
}

// Pop dequeues the oldest item, blocking the process while the queue is
// empty.
func (q *FIFO[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		p.Wait(func(done func()) {
			q.getters = append(q.getters, func() { q.eng.After(0, done) })
		})
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.wakePutter()
	return v
}

// TryPop dequeues the oldest item without blocking, reporting whether one
// was available. Safe from event context.
func (q *FIFO[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	q.wakePutter()
	return v, true
}

func (q *FIFO[T]) wakeGetter() {
	if len(q.getters) == 0 {
		return
	}
	g := q.getters[0]
	q.getters = q.getters[1:]
	g()
}

func (q *FIFO[T]) wakePutter() {
	if len(q.putters) == 0 {
		return
	}
	p := q.putters[0]
	q.putters = q.putters[1:]
	p()
}

// Semaphore is a counting semaphore in virtual time, used to model exclusive
// or limited-parallelism resources (e.g. a filesystem-wide lock, a DMA
// channel count).
type Semaphore struct {
	eng     *Engine
	avail   int
	waiters []func()
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(e *Engine, n int) *Semaphore {
	return &Semaphore{eng: e, avail: n}
}

// Acquire takes one permit, blocking the process until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail == 0 {
		p.Wait(func(done func()) {
			s.waiters = append(s.waiters, func() { s.eng.After(0, done) })
		})
	}
	s.avail--
}

// Release returns one permit and wakes a single waiter, if any.
func (s *Semaphore) Release() {
	s.avail++
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w()
	}
}

// Available reports the current permit count.
func (s *Semaphore) Available() int { return s.avail }
