package guest

import (
	"encoding/binary"
	"errors"
	"sort"

	"nesc/internal/core"
	"nesc/internal/hostmem"
	"nesc/internal/pcie"
	"nesc/internal/ring"
	"nesc/internal/sim"
	"nesc/internal/slo"
)

// ErrTimeout reports a request that got no completion within the retry
// budget; ErrReset reports one killed by a function-level reset.
var (
	ErrTimeout = errors.New("nesc: request timed out")
	ErrReset   = errors.New("nesc: request aborted by function reset")
)

// QueuePair is the NeSC ring-protocol client shared by the guest VF driver
// and the hypervisor's PF driver: it owns a request/completion ring pair in
// host memory, programs the function's ring registers over MMIO, and matches
// completions (delivered by interrupt) back to blocked submitters. It
// supports multiple concurrent submitters, so a queue-depth > 1 workload
// keeps the device pipeline full.
type QueuePair struct {
	eng     *sim.Engine
	mem     *hostmem.Memory
	fab     *pcie.Fabric
	pageBus int64 // bus address of the function's register page
	queue   int   // queue-pair index within the function
	entries uint32

	// Bus addresses of this queue's register block (queue 0 uses the
	// function's legacy register aliases, higher queues their per-queue
	// block).
	ringBaseReg, ringSizeReg, cplBaseReg, doorbellReg int64
	// shadowReg is the queue's shadow-doorbell register (always in the
	// per-queue block; queue 0's block aliases the legacy layout).
	shadowReg int64
	// deadlineReg is the queue's per-request deadline-budget register
	// (QRegDeadline, per-queue block only).
	deadlineReg int64

	ringBase hostmem.Addr
	cplBase  hostmem.Addr
	// shadowBase, when non-zero, is the host shadow-doorbell block shared
	// with the device (ArmShadow): the driver publishes its producer index
	// at +ShadowOffProd and reads the device's consumed-up-to event index
	// at +ShadowOffEvent, ringing the MMIO doorbell only when the device
	// may have stopped fetching for this queue.
	shadowBase hostmem.Addr
	prod       uint32
	lastSeq    uint32
	nextID     uint32

	slots   *sim.Semaphore
	waiters map[uint32]*qpWaiter

	// SubmitTime is the driver CPU cost per submission.
	SubmitTime sim.Time

	// Timeout, when positive, bounds each submission attempt: on expiry the
	// driver first polls the completion ring (recovering completions whose
	// MSI was lost), then resubmits with exponential backoff — attempt n
	// waits Timeout<<n — up to RetryMax resubmissions before surfacing
	// ErrTimeout. Zero (the default) waits forever, preserving the
	// fault-free event schedule exactly.
	Timeout  sim.Time
	RetryMax int

	// Deadline, when positive, is the per-request latency budget programmed
	// into the queue's QRegDeadline register (SetDeadline): the device
	// abandons any request still unfinished past fetch-time + Deadline and
	// completes it with the retryable StatusBusy. Zero leaves the register
	// untouched — no MMIO write, no schedule change.
	Deadline sim.Time

	// piBlock, when positive, enables end-to-end protection information at
	// that block granularity: writes carry a driver-computed guard in the
	// descriptor, and read completions return a device-computed guard the
	// driver verifies against the received payload. Guard math is timeless,
	// so enabling PI never perturbs the event schedule.
	piBlock int

	// Submitted counts requests issued.
	Submitted int64
	// DoorbellsSkipped counts MMIO doorbell writes elided by the shadow
	// protocol (the device was still fetching and picked the submission up
	// from the shadow block instead).
	DoorbellsSkipped int64

	// Recovery counters.
	BusyRejects       int64 // StatusBusy completions (admission control / deadline expiry)
	Timeouts          int64 // attempts that hit their deadline
	Resubmits         int64 // requests reissued after a timeout or abort
	PolledCompletions int64 // completions recovered by ring polling
	StaleCompletions  int64 // ring entries whose id had no waiter
	SeqGaps           int64 // sequence numbers skipped over by polling
	Aborts            int64 // submissions killed by a function reset
	Resets            int64 // Recover calls
	PIMismatches      int64 // read payloads that failed driver-side PI verification
	PIWriteErrors     int64 // StatusIntegrityError completions (device-side PI check)
	// RootCauseOverrides counts failed submissions whose surfaced error came
	// from an earlier attempt's root cause (an integrity failure) rather
	// than the final attempt's own timeout or abort.
	RootCauseOverrides int64

	// Attrib, when set, receives the driver-side admission backoff time the
	// tenant waits between busy-rejected resubmissions — latency the device
	// pipeline never sees but the guest absolutely does. Credited to
	// AttribVF's budget-table row under the admission segment. Nil off.
	Attrib   *slo.Attributor
	AttribVF int
}

// AttachAttribution arms driver-side latency attribution for vf.
func (qp *QueuePair) AttachAttribution(a *slo.Attributor, vf int) {
	qp.Attrib = a
	qp.AttribVF = vf
}

// attribOpName mirrors the device's metric op labels so driver-side credits
// land in the same budget-table rows.
func attribOpName(op uint32) string {
	switch ring.OpCode(op) {
	case ring.OpRead:
		return "read"
	case ring.OpWrite:
		return "write"
	case ring.OpVerify:
		return "verify"
	}
	return "other"
}

type qpWaiter struct {
	sig     *sim.Signal
	status  uint32
	guard   uint32
	aborted bool
}

// NewQueuePair allocates and programs rings on queue 0 of the function whose
// register page sits at pageBus. Multi-queue drivers use NewMultiQueue.
func NewQueuePair(p *sim.Proc, eng *sim.Engine, mem *hostmem.Memory, fab *pcie.Fabric, pageBus int64, entries int, submitTime sim.Time) (*QueuePair, error) {
	return newQueuePair(p, eng, mem, fab, pageBus, 0, entries, submitTime)
}

// newQueuePair allocates and programs rings for one queue pair of a function.
func newQueuePair(p *sim.Proc, eng *sim.Engine, mem *hostmem.Memory, fab *pcie.Fabric, pageBus int64, queue, entries int, submitTime sim.Time) (*QueuePair, error) {
	qp := &QueuePair{
		eng:        eng,
		mem:        mem,
		fab:        fab,
		pageBus:    pageBus,
		queue:      queue,
		entries:    uint32(entries),
		slots:      sim.NewSemaphore(eng, entries),
		waiters:    make(map[uint32]*qpWaiter),
		SubmitTime: submitTime,
	}
	if queue == 0 {
		// Queue 0 keeps the function's legacy single-queue register layout.
		qp.ringBaseReg = pageBus + core.RegRingBase
		qp.ringSizeReg = pageBus + core.RegRingSize
		qp.cplBaseReg = pageBus + core.RegCplBase
		qp.doorbellReg = pageBus + core.RegDoorbell
	} else {
		block := pageBus + core.QueueRegBase + int64(queue)*core.QueueRegStride
		qp.ringBaseReg = block + core.QRegRingBase
		qp.ringSizeReg = block + core.QRegRingSize
		qp.cplBaseReg = block + core.QRegCplBase
		qp.doorbellReg = block + core.QRegDoorbell
	}
	// The shadow and deadline registers have no legacy alias; queue 0
	// reaches them through its per-queue block like everyone else.
	block := pageBus + core.QueueRegBase + int64(queue)*core.QueueRegStride
	qp.shadowReg = block + core.QRegShadow
	qp.deadlineReg = block + core.QRegDeadline
	var err error
	if qp.ringBase, err = mem.Alloc(int64(entries)*ring.DescBytes, 64); err != nil {
		return nil, err
	}
	if qp.cplBase, err = mem.Alloc(int64(entries)*ring.CplBytes, 64); err != nil {
		return nil, err
	}
	if err := mem.Zero(qp.ringBase, int64(entries)*ring.DescBytes); err != nil {
		return nil, err
	}
	if err := mem.Zero(qp.cplBase, int64(entries)*ring.CplBytes); err != nil {
		return nil, err
	}
	if err := qp.program(p); err != nil {
		return nil, err
	}
	return qp, nil
}

// program writes the queue's ring registers over MMIO.
func (qp *QueuePair) program(p *sim.Proc) error {
	if err := qp.fab.MMIOWrite(p, qp.ringBaseReg, 8, uint64(qp.ringBase)); err != nil {
		return err
	}
	if err := qp.fab.MMIOWrite(p, qp.ringSizeReg, 4, uint64(qp.entries)); err != nil {
		return err
	}
	return qp.fab.MMIOWrite(p, qp.cplBaseReg, 8, uint64(qp.cplBase))
}

// Queue reports the queue-pair index this driver owns within its function.
func (qp *QueuePair) Queue() int { return qp.queue }

// ArmShadow enables shadow-doorbell batching on this queue: it allocates the
// shared shadow block (first call), zeroes it, and programs its host address
// into the queue's shadow register. Armed, Submit publishes each new producer
// index in the block and rings the MMIO doorbell only when the device's event
// index shows it may have stopped fetching for this queue — a burst of
// submissions against a busy device collapses to one MMIO write.
func (qp *QueuePair) ArmShadow(p *sim.Proc) error {
	if qp.shadowBase == 0 {
		base, err := qp.mem.Alloc(ring.ShadowBytes, 8)
		if err != nil {
			return err
		}
		qp.shadowBase = base
	}
	if err := qp.mem.Zero(qp.shadowBase, ring.ShadowBytes); err != nil {
		return err
	}
	return qp.fab.MMIOWrite(p, qp.shadowReg, 8, uint64(qp.shadowBase))
}

// ShadowArmed reports whether shadow-doorbell batching is enabled.
func (qp *QueuePair) ShadowArmed() bool { return qp.shadowBase != 0 }

// SetDeadline programs the queue's per-request deadline budget into
// QRegDeadline and remembers it for Recover. A zero budget is never written:
// the register resets to zero anyway, and skipping the write keeps the
// deadline-free MMIO schedule byte-identical.
func (qp *QueuePair) SetDeadline(p *sim.Proc, d sim.Time) error {
	qp.Deadline = d
	if d <= 0 {
		return nil
	}
	return qp.fab.MMIOWrite(p, qp.deadlineReg, 8, uint64(d))
}

// SetPI enables end-to-end protection information on read/write submissions,
// at the given device block size. Zero disables it.
func (qp *QueuePair) SetPI(blockBytes int) { qp.piBlock = blockBytes }

// piGuard computes the request-level PI guard over the payload at bufAddr.
func (qp *QueuePair) piGuard(count uint32, bufAddr int64) (uint32, error) {
	data, err := qp.mem.Slice(bufAddr, int64(count)*int64(qp.piBlock))
	if err != nil {
		return 0, err
	}
	return ring.PIGuard(data, qp.piBlock), nil
}

// FreeSlots reports how many submission slots are currently unclaimed; the
// least-occupied multi-queue policy steers by it.
func (qp *QueuePair) FreeSlots() int { return qp.slots.Available() }

// Entries reports the queue's submission-ring capacity.
func (qp *QueuePair) Entries() int { return int(qp.entries) }

// Depth reports how many submissions are currently in flight on this queue
// (claimed slots); the per-queue depth gauge exports it.
func (qp *QueuePair) Depth() int { return int(qp.entries) - qp.slots.Available() }

// DMARanges reports the ring memory the hypervisor must grant to the device
// when the IOMMU is enabled.
func (qp *QueuePair) DMARanges() [][2]int64 {
	return [][2]int64{
		{qp.ringBase, int64(qp.entries) * ring.DescBytes},
		{qp.cplBase, int64(qp.entries) * ring.CplBytes},
	}
}

// DeviceSize reads the function's device-size register.
func (qp *QueuePair) DeviceSize(p *sim.Proc) (uint64, error) {
	return qp.fab.MMIORead(p, qp.pageBus+core.RegDeviceSize, 8)
}

// Submit issues one request and blocks until its completion, returning the
// device status code. With Timeout set, a lost request is recovered by
// polling and resubmission; past the retry budget Submit returns ErrTimeout
// (or ErrReset when the request was killed by a function-level reset).
// Integrity failures — a StatusIntegrityError completion or a driver-side PI
// mismatch on a read payload — are retried by resubmission the same way; a
// mismatch that outlives the budget surfaces ring.ErrIntegrity, never the
// corrupted data as a clean success.
func (qp *QueuePair) Submit(p *sim.Proc, op uint32, lba uint64, count uint32, bufAddr int64) (uint32, error) {
	qp.slots.Acquire(p)
	defer qp.slots.Release()
	wireOp := op
	var guard uint32
	if qp.piBlock > 0 && (ring.OpCode(op) == ring.OpRead || ring.OpCode(op) == ring.OpWrite) {
		wireOp |= ring.OpFlagPI
		if ring.OpCode(op) == ring.OpWrite {
			g, err := qp.piGuard(count, bufAddr)
			if err != nil {
				return 0, err
			}
			guard = g
		}
	}
	// The first root cause observed across the whole resubmission ladder: a
	// request that first failed integrity verification and then burned the
	// rest of its budget on timeouts must surface the corruption, not the
	// final attempt's timeout.
	rootPIBad := false
	var rootStatus uint32
	// Driver-side admission backoff the tenant waited across the whole
	// ladder; credited to the attribution row on exit (any path).
	var backoff sim.Time
	if qp.Attrib != nil {
		defer func() {
			qp.Attrib.AddSegment(qp.AttribVF, attribOpName(op), slo.SegAdmission, backoff)
		}()
	}
	for attempt := 0; ; attempt++ {
		p.Sleep(qp.SubmitTime)
		qp.nextID++
		id := qp.nextID
		var desc [ring.DescBytes]byte
		ring.EncodeDescriptorPI(desc[:], wireOp, id, lba, count, bufAddr, guard)
		if err := qp.mem.Write(ring.DescSlot(qp.ringBase, qp.prod, qp.entries), desc[:]); err != nil {
			return 0, err
		}
		qp.prod++
		qp.Submitted++
		w := &qpWaiter{sig: sim.NewSignal(qp.eng)}
		qp.waiters[id] = w
		if qp.skipDoorbell(attempt) {
			qp.DoorbellsSkipped++
		} else if err := qp.fab.MMIOWrite(p, qp.doorbellReg, 4, uint64(qp.prod)); err != nil {
			delete(qp.waiters, id) // the doorbell never rang; drop the waiter
			return 0, err
		}
		piBad, busy := false, false
		if w.sig.AwaitTimeout(p, qp.Timeout<<uint(attempt)) {
			if !w.aborted {
				switch {
				case w.status == ring.StatusBusy:
					busy = true
				case qp.completionOK(op, w, count, bufAddr):
					return w.status, nil
				default:
					piBad = true
				}
			}
		} else {
			// Deadline hit: the completion MSI may have been lost while the
			// entry landed. Poll the ring before declaring the request dead.
			qp.Timeouts++
			qp.pollRing()
			if w.sig.Fired() && !w.aborted {
				switch {
				case w.status == ring.StatusBusy:
					busy = true
				case qp.completionOK(op, w, count, bufAddr):
					return w.status, nil
				default:
					piBad = true
				}
			}
		}
		delete(qp.waiters, id) // a late completion for id becomes stale
		if w.aborted {
			qp.Aborts++
		}
		if busy {
			qp.BusyRejects++
		}
		if piBad && !rootPIBad {
			rootPIBad = true
			rootStatus = w.status
		}
		if attempt >= qp.RetryMax {
			status, err, overridden := finalVerdict(w.aborted, piBad, busy, rootPIBad, rootStatus)
			if overridden {
				qp.RootCauseOverrides++
			}
			return status, err
		}
		if busy && qp.Timeout > 0 {
			// The device fast-failed under admission pressure: back off
			// before resubmitting, on the same exponential ladder a timeout
			// would have used, so retries don't hammer a saturated function.
			wait := qp.Timeout << uint(attempt)
			p.Sleep(wait)
			backoff += wait
		}
		qp.Resubmits++
	}
}

// skipDoorbell implements the guest half of the shadow-doorbell protocol:
// publish the new producer index in the shared block, then decide from the
// device's event index whether the MMIO doorbell can be elided. Both host
// accesses are timeless, so the whole decision happens at one simulated
// instant — the device observes either the old or the new SHADOW value,
// never a torn state. Retries always ring: after a timeout the conservative
// assumption is that the device lost track of this queue entirely.
func (qp *QueuePair) skipDoorbell(attempt int) bool {
	if qp.shadowBase == 0 || attempt != 0 {
		return false
	}
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], qp.prod)
	if err := qp.mem.Write(qp.shadowBase+ring.ShadowOffProd, buf[:]); err != nil {
		return false
	}
	if err := qp.mem.Read(qp.shadowBase+ring.ShadowOffEvent, buf[:]); err != nil {
		return false
	}
	// The device's event index has reached the previous producer value: it
	// consumed everything it was ever told about and may have parked, so the
	// doorbell must ring. Behind it, the device is still fetching and will
	// re-read SHADOW before parking (shadowFollow) — safe to skip.
	event := binary.BigEndian.Uint32(buf[:])
	return !ring.ShouldRing(qp.prod-1, event)
}

// finalVerdict picks what a submission ladder that exhausted its retry
// budget surfaces. An integrity root cause recorded on ANY attempt wins
// over the final attempt's own timeout or abort — otherwise a transient
// run of lost completions after a detected corruption would report
// ErrTimeout and the corruption would vanish from Stats and diagnostics.
// It reports overridden=true when that promotion actually changed the
// outcome (the final attempt itself was not the integrity failure).
func finalVerdict(lastAborted, lastPIBad, lastBusy, rootPIBad bool, rootStatus uint32) (uint32, error, bool) {
	overridden := rootPIBad && !lastPIBad
	switch {
	case rootPIBad && rootStatus == ring.StatusIntegrityError:
		// The device's own check failed the request.
		return rootStatus, nil, overridden
	case rootPIBad:
		// Status said OK but the payload never verified.
		return 0, ring.ErrIntegrity, overridden
	case lastAborted:
		return 0, ErrReset, false
	case lastBusy:
		// Admission control rejected every attempt: surface the busy status
		// for the caller's StatusError map (ring.ErrBusy, retryable).
		return ring.StatusBusy, nil, false
	default:
		return 0, ErrTimeout, false
	}
}

// completionOK decides whether a delivered completion ends the submission:
// integrity statuses and PI payload mismatches are resubmitted like
// timeouts, everything else (including other error statuses, which the
// caller maps through StatusError) is final.
func (qp *QueuePair) completionOK(op uint32, w *qpWaiter, count uint32, bufAddr int64) bool {
	if w.status == ring.StatusIntegrityError {
		qp.PIWriteErrors++
		return false
	}
	if qp.piBlock > 0 && ring.OpCode(op) == ring.OpRead && w.status == ring.StatusOK {
		if g, err := qp.piGuard(count, bufAddr); err == nil && g != w.guard {
			qp.PIMismatches++
			return false
		}
	}
	return true
}

// OnInterrupt drains new completion entries and wakes their submitters. It
// runs in engine (interrupt) context.
func (qp *QueuePair) OnInterrupt() {
	entry := make([]byte, ring.CplBytes)
	for {
		if err := qp.mem.Read(ring.CplSlot(qp.cplBase, qp.lastSeq+1, qp.entries), entry); err != nil {
			return
		}
		id, status, seq, guard := ring.DecodeCompletionPI(entry)
		if seq != qp.lastSeq+1 {
			return
		}
		qp.lastSeq = seq
		qp.deliver(id, status, guard)
	}
}

// deliver routes one completion to its waiter; a completion whose id has no
// waiter (duplicate after a resubmit, or stale after a reset) is counted
// instead of silently matching nothing.
func (qp *QueuePair) deliver(id, status, guard uint32) {
	if w, ok := qp.waiters[id]; ok {
		delete(qp.waiters, id)
		w.status = status
		w.guard = guard
		w.sig.Fire()
		return
	}
	qp.StaleCompletions++
}

// pollRing scans the completion ring for entries the interrupt path never
// delivered. Unlike OnInterrupt it tolerates sequence gaps: a gap means a
// completion DMA write was lost on the wire, and skipping it is the only way
// the ring can make progress again. Only the timeout path pays this scan.
func (qp *QueuePair) pollRing() {
	entry := make([]byte, ring.CplBytes)
	for {
		advanced := false
		for k := uint32(1); k <= qp.entries; k++ {
			if err := qp.mem.Read(ring.CplSlot(qp.cplBase, qp.lastSeq+k, qp.entries), entry); err != nil {
				return
			}
			id, status, seq, guard := ring.DecodeCompletionPI(entry)
			if seq != qp.lastSeq+k {
				continue
			}
			qp.SeqGaps += int64(k - 1)
			qp.lastSeq = seq
			qp.PolledCompletions++
			qp.deliver(id, status, guard)
			advanced = true
			break
		}
		if !advanced {
			return
		}
	}
}

// Recover re-arms the queue pair after a function-level reset: it resets the
// ring cursors, zeroes and re-programs both rings, and aborts every parked
// submitter (each then resubmits into the fresh ring or surfaces ErrReset).
// Call only after the device reports the function drained (RegReset reads 0).
func (qp *QueuePair) Recover(p *sim.Proc) error {
	qp.Resets++
	qp.prod, qp.lastSeq = 0, 0
	if err := qp.mem.Zero(qp.ringBase, int64(qp.entries)*ring.DescBytes); err != nil {
		return err
	}
	if err := qp.mem.Zero(qp.cplBase, int64(qp.entries)*ring.CplBytes); err != nil {
		return err
	}
	if err := qp.program(p); err != nil {
		return err
	}
	if qp.shadowBase != 0 {
		// The FLR cleared the device's shadow binding; re-zero and re-arm,
		// or every post-reset Submit would skip doorbells the device no
		// longer follows.
		if err := qp.ArmShadow(p); err != nil {
			return err
		}
	}
	if qp.Deadline > 0 {
		// The FLR also cleared the deadline register; re-arm it.
		if err := qp.SetDeadline(p, qp.Deadline); err != nil {
			return err
		}
	}
	// Abort parked submitters in sorted-id order — map iteration order must
	// not leak into the event schedule, or seeded runs stop replaying.
	ids := make([]uint32, 0, len(qp.waiters))
	for id := range qp.waiters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w := qp.waiters[id]
		delete(qp.waiters, id)
		w.aborted = true
		w.sig.Fire()
	}
	return nil
}

// StatusError converts a device status to an error (nil for StatusOK). It is
// the shared ring-protocol status table; see ring.StatusError.
func StatusError(status uint32) error { return ring.StatusError(status) }
