package guest

import (
	"fmt"

	"nesc/internal/core"
	"nesc/internal/hostmem"
	"nesc/internal/pcie"
	"nesc/internal/sim"
)

// QueuePair is the NeSC ring-protocol client shared by the guest VF driver
// and the hypervisor's PF driver: it owns a request/completion ring pair in
// host memory, programs the function's ring registers over MMIO, and matches
// completions (delivered by interrupt) back to blocked submitters. It
// supports multiple concurrent submitters, so a queue-depth > 1 workload
// keeps the device pipeline full.
type QueuePair struct {
	eng     *sim.Engine
	mem     *hostmem.Memory
	fab     *pcie.Fabric
	pageBus int64 // bus address of the function's register page
	entries uint32

	ringBase hostmem.Addr
	cplBase  hostmem.Addr
	prod     uint32
	lastSeq  uint32
	nextID   uint32

	slots   *sim.Semaphore
	waiters map[uint32]*qpWaiter

	// SubmitTime is the driver CPU cost per submission.
	SubmitTime sim.Time

	// Submitted counts requests issued.
	Submitted int64
}

type qpWaiter struct {
	sig    *sim.Signal
	status uint32
}

// NewQueuePair allocates and programs rings for the function whose register
// page sits at pageBus.
func NewQueuePair(p *sim.Proc, eng *sim.Engine, mem *hostmem.Memory, fab *pcie.Fabric, pageBus int64, entries int, submitTime sim.Time) (*QueuePair, error) {
	qp := &QueuePair{
		eng:        eng,
		mem:        mem,
		fab:        fab,
		pageBus:    pageBus,
		entries:    uint32(entries),
		slots:      sim.NewSemaphore(eng, entries),
		waiters:    make(map[uint32]*qpWaiter),
		SubmitTime: submitTime,
	}
	var err error
	if qp.ringBase, err = mem.Alloc(int64(entries)*core.DescBytes, 64); err != nil {
		return nil, err
	}
	if qp.cplBase, err = mem.Alloc(int64(entries)*core.CplBytes, 64); err != nil {
		return nil, err
	}
	if err := mem.Zero(qp.ringBase, int64(entries)*core.DescBytes); err != nil {
		return nil, err
	}
	if err := mem.Zero(qp.cplBase, int64(entries)*core.CplBytes); err != nil {
		return nil, err
	}
	if err := fab.MMIOWrite(p, pageBus+core.RegRingBase, 8, uint64(qp.ringBase)); err != nil {
		return nil, err
	}
	if err := fab.MMIOWrite(p, pageBus+core.RegRingSize, 4, uint64(entries)); err != nil {
		return nil, err
	}
	if err := fab.MMIOWrite(p, pageBus+core.RegCplBase, 8, uint64(qp.cplBase)); err != nil {
		return nil, err
	}
	return qp, nil
}

// DMARanges reports the ring memory the hypervisor must grant to the device
// when the IOMMU is enabled.
func (qp *QueuePair) DMARanges() [][2]int64 {
	return [][2]int64{
		{qp.ringBase, int64(qp.entries) * core.DescBytes},
		{qp.cplBase, int64(qp.entries) * core.CplBytes},
	}
}

// DeviceSize reads the function's device-size register.
func (qp *QueuePair) DeviceSize(p *sim.Proc) (uint64, error) {
	return qp.fab.MMIORead(p, qp.pageBus+core.RegDeviceSize, 8)
}

// Submit issues one request and blocks until its completion, returning the
// device status code.
func (qp *QueuePair) Submit(p *sim.Proc, op uint32, lba uint64, count uint32, bufAddr int64) (uint32, error) {
	qp.slots.Acquire(p)
	defer qp.slots.Release()
	p.Sleep(qp.SubmitTime)
	qp.nextID++
	id := qp.nextID
	var desc [core.DescBytes]byte
	core.EncodeDescriptor(desc[:], op, id, lba, count, bufAddr)
	slot := int64(qp.prod % qp.entries)
	if err := qp.mem.Write(qp.ringBase+slot*core.DescBytes, desc[:]); err != nil {
		return 0, err
	}
	qp.prod++
	qp.Submitted++
	w := &qpWaiter{sig: sim.NewSignal(qp.eng)}
	qp.waiters[id] = w
	if err := qp.fab.MMIOWrite(p, qp.pageBus+core.RegDoorbell, 4, uint64(qp.prod)); err != nil {
		return 0, err
	}
	w.sig.Await(p)
	return w.status, nil
}

// OnInterrupt drains new completion entries and wakes their submitters. It
// runs in engine (interrupt) context.
func (qp *QueuePair) OnInterrupt() {
	entry := make([]byte, core.CplBytes)
	for {
		slot := int64(qp.lastSeq % qp.entries)
		if err := qp.mem.Read(qp.cplBase+slot*core.CplBytes, entry); err != nil {
			return
		}
		id, status, seq := core.DecodeCompletion(entry)
		if seq != qp.lastSeq+1 {
			return
		}
		qp.lastSeq = seq
		if w, ok := qp.waiters[id]; ok {
			delete(qp.waiters, id)
			w.status = status
			w.sig.Fire()
		}
	}
}

// StatusError converts a device status to an error (nil for StatusOK).
func StatusError(status uint32) error {
	switch status {
	case core.StatusOK:
		return nil
	case core.StatusOutOfRange:
		return fmt.Errorf("nesc: request out of device range")
	case core.StatusNoSpace:
		return fmt.Errorf("nesc: no space (hypervisor denied allocation)")
	case core.StatusDisabled:
		return fmt.Errorf("nesc: function disabled")
	case core.StatusDMAFault:
		return fmt.Errorf("nesc: DMA fault")
	default:
		return fmt.Errorf("nesc: device status %d", status)
	}
}
