package guest

import (
	"encoding/binary"
	"fmt"

	"nesc/internal/hostmem"
	"nesc/internal/sim"
	"nesc/internal/virtio"
)

// VirtioTransport is the hypervisor-provided notification channel of a
// virtio device: Kick traps into the host (a vmexit) and wakes the backend.
type VirtioTransport interface {
	Kick(p *sim.Proc)
}

// VirtioDriver is the guest virtio-blk driver (paper Fig. 1b). Requests are
// published on a split virtqueue in guest memory; the host backend consumes
// them, performs the I/O against the backing file or device, and injects a
// completion interrupt.
type VirtioDriver struct {
	eng       *sim.Engine
	mem       *hostmem.Memory
	vq        *virtio.Virtqueue
	transport VirtioTransport
	bs        int
	cap       int64
	maxB      int

	// Per-request header/status slots, one per potential chain.
	hdrBase hostmem.Addr
	slots   *sim.Semaphore
	freeIdx []int
	waiters map[uint16]*vioWaiter

	// SubmitTime is the driver CPU cost per request.
	SubmitTime sim.Time
	// Kicks counts guest->host notifications (each one a vmexit).
	Kicks int64
}

type vioWaiter struct {
	sig     *sim.Signal
	slotIdx int
}

const vioSlotBytes = virtio.BlkHeaderBytes + 1 // header + status byte

// VirtioDriverConfig configures driver construction.
type VirtioDriverConfig struct {
	Mem       *hostmem.Memory
	Transport VirtioTransport
	// QueueBase is the guest-RAM address of the virtqueue
	// (virtio.RingBytes(QueueSize) bytes).
	QueueBase hostmem.Addr
	QueueSize int
	// CapacityBlocks is the virtual disk size the device config space
	// advertises.
	CapacityBlocks int64
	BlockSize      int
	// MaxBlocksPerReq is the largest single request (128 KB for virtio-blk
	// with default seg limits).
	MaxBlocksPerReq int
	SubmitTime      sim.Time
}

// NewVirtioDriver builds the guest half of a virtio-blk device.
func NewVirtioDriver(eng *sim.Engine, cfg VirtioDriverConfig) (*VirtioDriver, error) {
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 128
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 1024
	}
	if cfg.MaxBlocksPerReq == 0 {
		cfg.MaxBlocksPerReq = 128
	}
	d := &VirtioDriver{
		eng:        eng,
		mem:        cfg.Mem,
		vq:         virtio.New(cfg.Mem, cfg.QueueBase, cfg.QueueSize),
		transport:  cfg.Transport,
		bs:         cfg.BlockSize,
		cap:        cfg.CapacityBlocks,
		maxB:       cfg.MaxBlocksPerReq,
		waiters:    make(map[uint16]*vioWaiter),
		SubmitTime: cfg.SubmitTime,
	}
	// Each in-flight request needs 3 descriptors (header, data, status).
	inflight := cfg.QueueSize / 3
	if inflight < 1 {
		inflight = 1
	}
	d.slots = sim.NewSemaphore(eng, inflight)
	var err error
	d.hdrBase, err = cfg.Mem.Alloc(int64(inflight)*vioSlotBytes, 16)
	if err != nil {
		return nil, err
	}
	for i := 0; i < inflight; i++ {
		d.freeIdx = append(d.freeIdx, i)
	}
	return d, nil
}

// Virtqueue exposes the shared ring to the host backend.
func (d *VirtioDriver) Virtqueue() *virtio.Virtqueue { return d.vq }

// Name implements BlockDriver.
func (d *VirtioDriver) Name() string { return "virtio-blk" }

// BlockSize implements BlockDriver.
func (d *VirtioDriver) BlockSize() int { return d.bs }

// CapacityBlocks implements BlockDriver.
func (d *VirtioDriver) CapacityBlocks() int64 { return d.cap }

// MaxBlocksPerReq implements BlockDriver.
func (d *VirtioDriver) MaxBlocksPerReq() int { return d.maxB }

// Submit implements BlockDriver.
func (d *VirtioDriver) Submit(p *sim.Proc, write bool, lba int64, buf Buffer) error {
	if len(buf.Data)%d.bs != 0 {
		return fmt.Errorf("virtio driver: unaligned buffer of %d bytes", len(buf.Data))
	}
	d.slots.Acquire(p)
	slotIdx := d.freeIdx[len(d.freeIdx)-1]
	d.freeIdx = d.freeIdx[:len(d.freeIdx)-1]
	hdrAddr := d.hdrBase + int64(slotIdx)*vioSlotBytes
	statusAddr := hdrAddr + virtio.BlkHeaderBytes

	p.Sleep(d.SubmitTime)
	var hdr [virtio.BlkHeaderBytes]byte
	typ := uint32(virtio.BlkTRead)
	if write {
		typ = virtio.BlkTWrite
	}
	binary.BigEndian.PutUint32(hdr[0:], typ)
	sector := uint64(lba) * uint64(d.bs/virtio.SectorSize)
	binary.BigEndian.PutUint64(hdr[8:], sector)
	if err := d.mem.Write(hdrAddr, hdr[:]); err != nil {
		d.release(slotIdx)
		return err
	}
	chain := []virtio.DescBuf{
		{Addr: hdrAddr, Len: virtio.BlkHeaderBytes},
		{Addr: buf.Addr, Len: uint32(len(buf.Data)), DeviceWrite: !write},
		{Addr: statusAddr, Len: 1, DeviceWrite: true},
	}
	head, ok, err := d.vq.AddChain(chain)
	if err != nil {
		d.release(slotIdx)
		return err
	}
	if !ok {
		d.release(slotIdx)
		return fmt.Errorf("virtio driver: ring full despite slot accounting")
	}
	w := &vioWaiter{sig: sim.NewSignal(d.eng), slotIdx: slotIdx}
	d.waiters[head] = w
	d.Kicks++
	d.transport.Kick(p)
	w.sig.Await(p)

	statusB := make([]byte, 1)
	if err := d.mem.Read(statusAddr, statusB); err != nil {
		return err
	}
	d.release(slotIdx)
	if statusB[0] != virtio.BlkStatusOK {
		return fmt.Errorf("virtio driver: device status %d", statusB[0])
	}
	return nil
}

func (d *VirtioDriver) release(slotIdx int) {
	d.freeIdx = append(d.freeIdx, slotIdx)
	d.slots.Release()
}

// OnInterrupt drains the used ring, waking submitters. Runs in engine
// (injected-interrupt) context.
func (d *VirtioDriver) OnInterrupt() {
	for {
		head, ok, err := d.vq.PopUsed()
		if err != nil || !ok {
			return
		}
		if w, ok := d.waiters[head]; ok {
			delete(d.waiters, head)
			w.sig.Fire()
		}
	}
}
