package guest

import (
	"fmt"

	"nesc/internal/sim"
)

// EmulPort is the trapped register interface of a fully emulated disk
// (paper Fig. 1a). Every call is a trapped device access: the hypervisor
// implementation charges the vmexit/vmenter pair and the emulation work.
// The register set models an IDE-style controller in DMA mode: the driver
// programs the command block (several trapped writes), the CMD write makes
// the device model execute the whole transfer against the backing store,
// and a final trapped status read completes the request. Latency is
// dominated by the fixed trap/emulation overhead, so small requests are
// ~20x slower than NeSC while large transfers close to within the data-copy
// cost — the paper's Figure 9/10 emulation shape.
type EmulPort interface {
	WriteReg(p *sim.Proc, reg int, val uint64)
	ReadReg(p *sim.Proc, reg int) uint64
}

// Emulated-disk register numbers (an ATA-flavoured command block).
const (
	EmulRegLBA    = 0 // starting sector
	EmulRegCount  = 1 // sector count
	EmulRegBuf    = 2 // DMA buffer address (guest physical)
	EmulRegFeat   = 3 // features (ignored; costs a trap, as on real hardware)
	EmulRegDrive  = 4 // drive select (ignored)
	EmulRegCmd    = 5 // command: executes the transfer
	EmulRegStatus = 6

	EmulCmdRead  = 1
	EmulCmdWrite = 2

	EmulStatusOK  = 0
	EmulStatusErr = 1

	// EmulSector is the device's addressing unit.
	EmulSector = 512
)

// EmulDriver is the guest driver for the emulated disk.
type EmulDriver struct {
	port EmulPort
	bs   int
	cap  int64
	maxB int
	// SubmitTime is the driver CPU cost per request.
	SubmitTime sim.Time
	// Traps counts trapped accesses (diagnostics).
	Traps int64
}

// EmulDriverConfig configures construction.
type EmulDriverConfig struct {
	Port            EmulPort
	CapacityBlocks  int64
	BlockSize       int
	MaxBlocksPerReq int
	SubmitTime      sim.Time
}

// NewEmulDriver builds the guest half of the emulated disk.
func NewEmulDriver(cfg EmulDriverConfig) *EmulDriver {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 1024
	}
	if cfg.MaxBlocksPerReq == 0 {
		cfg.MaxBlocksPerReq = 128
	}
	return &EmulDriver{
		port:       cfg.Port,
		bs:         cfg.BlockSize,
		cap:        cfg.CapacityBlocks,
		maxB:       cfg.MaxBlocksPerReq,
		SubmitTime: cfg.SubmitTime,
	}
}

// Name implements BlockDriver.
func (d *EmulDriver) Name() string { return "emul" }

// BlockSize implements BlockDriver.
func (d *EmulDriver) BlockSize() int { return d.bs }

// CapacityBlocks implements BlockDriver.
func (d *EmulDriver) CapacityBlocks() int64 { return d.cap }

// MaxBlocksPerReq implements BlockDriver.
func (d *EmulDriver) MaxBlocksPerReq() int { return d.maxB }

// Submit implements BlockDriver: program the command block (each register
// write traps), fire the command, and poll status.
func (d *EmulDriver) Submit(p *sim.Proc, write bool, lba int64, buf Buffer) error {
	if len(buf.Data)%d.bs != 0 {
		return fmt.Errorf("emul driver: unaligned buffer of %d bytes", len(buf.Data))
	}
	p.Sleep(d.SubmitTime)
	sectors := len(buf.Data) / EmulSector
	sectorLBA := uint64(lba) * uint64(d.bs/EmulSector)
	cmd := uint64(EmulCmdRead)
	if write {
		cmd = EmulCmdWrite
	}
	d.port.WriteReg(p, EmulRegLBA, sectorLBA)
	d.port.WriteReg(p, EmulRegCount, uint64(sectors))
	d.port.WriteReg(p, EmulRegBuf, uint64(buf.Addr))
	d.port.WriteReg(p, EmulRegFeat, 0)
	d.port.WriteReg(p, EmulRegDrive, 0)
	d.port.WriteReg(p, EmulRegCmd, cmd)
	st := d.port.ReadReg(p, EmulRegStatus)
	d.Traps += 7
	if st != EmulStatusOK {
		return fmt.Errorf("emul driver: device status %d", st)
	}
	return nil
}
