// Package guest models the guest operating system's storage stack: the
// generic block layer and I/O scheduler costs, the block drivers for the
// three virtual-disk flavours the paper compares (a directly assigned NeSC
// VF, virtio-blk, and a fully emulated PIO device), and the glue that mounts
// the extent filesystem on any of them.
//
// The paper's Figure 1 shows the software layers each I/O request crosses;
// this package is the guest half of that figure. Layer costs are explicit
// parameters so the benchmark harness can attribute overheads the way the
// paper's evaluation does.
package guest

import (
	"fmt"

	"nesc/internal/extfs"
	"nesc/internal/hostmem"
	"nesc/internal/sim"
)

// Params is the guest kernel cost model.
type Params struct {
	// StackTime is the per-request cost of the VFS-to-driver path (generic
	// block layer, I/O scheduler, request setup).
	StackTime sim.Time
	// CompletionTime is the per-request completion path (interrupt handler
	// bottom half, bio completion).
	CompletionTime sim.Time
	// MemcpyBandwidth models in-guest copies (bounce buffers, RMW edges).
	MemcpyBandwidth float64
	// FSOpCost is the per-operation CPU cost of the guest filesystem layer
	// (passed to extfs when mounting).
	FSOpCost sim.Time
	// CacheBlocks sizes the guest block-layer buffer cache ("the block
	// layer, which caches disk blocks", paper §II). The cache is
	// write-through and only serves the mounted-filesystem path; raw-device
	// access (the paper's Figures 9/10 measurements) bypasses it. The
	// paper's guests get 128 MB of RAM precisely so this cache cannot
	// swallow the whole 1 GB device.
	CacheBlocks int
}

// DefaultParams returns costs representative of a 2.4 GHz Sandy Bridge guest
// (Table I).
func DefaultParams() Params {
	return Params{
		StackTime:       2500 * sim.Nanosecond,
		CompletionTime:  1200 * sim.Nanosecond,
		MemcpyBandwidth: 8e9,
		FSOpCost:        1800 * sim.Nanosecond,
		CacheBlocks:     8192, // 8 MB of 1 KB blocks
	}
}

// Buffer is a guest-RAM data buffer: a live view plus its DMA-able address.
type Buffer struct {
	Addr hostmem.Addr
	Data []byte
}

// BlockDriver is the interface the guest block layer drives. Submit blocks
// the calling process until the request completes.
type BlockDriver interface {
	// Name identifies the driver ("nesc-vf", "virtio-blk", "emul").
	Name() string
	BlockSize() int
	CapacityBlocks() int64
	// MaxBlocksPerReq is the driver's request-size limit; the block layer
	// splits larger I/O (the NeSC driver "breaks large requests down to
	// scatter-gather lists of smaller chunks", §IV-C).
	MaxBlocksPerReq() int
	Submit(p *sim.Proc, write bool, lba int64, buf Buffer) error
}

// Kernel is one guest's I/O stack instance.
type Kernel struct {
	Eng *sim.Engine
	Mem *hostmem.Memory
	P   Params
	Drv BlockDriver

	scratch Buffer

	// Requests counts driver submissions (after splitting).
	Requests int64
}

// NewKernel builds a guest kernel over a block driver.
func NewKernel(eng *sim.Engine, mem *hostmem.Memory, p Params, drv BlockDriver) *Kernel {
	return &Kernel{Eng: eng, Mem: mem, P: p, Drv: drv}
}

// AllocBuffer allocates an n-byte DMA-able buffer in guest RAM.
func (k *Kernel) AllocBuffer(n int64) Buffer {
	addr := k.Mem.MustAlloc(n, 64)
	data, err := k.Mem.Slice(addr, n)
	if err != nil {
		panic(err)
	}
	return Buffer{Addr: addr, Data: data}
}

// memcpyCost charges the in-guest copy cost for n bytes.
func (k *Kernel) memcpyCost(p *sim.Proc, n int) {
	p.Sleep(sim.BytesTime(int64(n), k.P.MemcpyBandwidth))
}

// SubmitAligned performs one block-layer I/O request on buf (length a
// multiple of the driver block size). The block layer charges its per-
// request cost once, splits the request into driver-sized chunks, and issues
// the chunks concurrently as a scatter-gather list — the paper's drivers
// "break large requests down to scatter-gather lists of smaller chunks"
// (§IV-C), which is what lets sequential streams saturate the device.
func (k *Kernel) SubmitAligned(p *sim.Proc, write bool, lba int64, buf Buffer) error {
	bs := k.Drv.BlockSize()
	if len(buf.Data)%bs != 0 {
		return fmt.Errorf("guest: unaligned submit of %d bytes", len(buf.Data))
	}
	blocks := int64(len(buf.Data) / bs)
	if blocks == 0 {
		return nil
	}
	maxB := int64(k.Drv.MaxBlocksPerReq())
	p.Sleep(k.P.StackTime)
	k.Requests++
	sub := func(q *sim.Proc, off, n int64) error {
		chunk := Buffer{
			Addr: buf.Addr + off*int64(bs),
			Data: buf.Data[off*int64(bs) : (off+n)*int64(bs)],
		}
		return k.Drv.Submit(q, write, lba+off, chunk)
	}
	var err error
	if blocks <= maxB {
		err = sub(p, 0, blocks)
	} else {
		wg := sim.NewWaitGroup(k.Eng)
		var firstErr error
		for done := int64(0); done < blocks; done += maxB {
			n := blocks - done
			if n > maxB {
				n = maxB
			}
			wg.Add(1)
			off := done
			k.Eng.Go("sg-chunk", func(q *sim.Proc) {
				if e := sub(q, off, n); e != nil && firstErr == nil {
					firstErr = e
				}
				wg.Done()
			})
		}
		wg.WaitFor(p)
		err = firstErr
	}
	if err != nil {
		return err
	}
	p.Sleep(k.P.CompletionTime)
	return nil
}

// ensureScratch sizes the kernel's bounce buffer.
func (k *Kernel) ensureScratch(n int64) Buffer {
	if int64(len(k.scratch.Data)) < n {
		k.scratch = k.AllocBuffer(n)
	}
	return Buffer{Addr: k.scratch.Addr, Data: k.scratch.Data[:n]}
}

// ReadBytes reads byte-granular ranges from the raw device, performing the
// block-level read-modify cropping the kernel page cache would do (dd with
// bs=512 on a 1 KB-block device).
func (k *Kernel) ReadBytes(p *sim.Proc, off int64, out []byte) error {
	bs := int64(k.Drv.BlockSize())
	first := off / bs
	last := (off + int64(len(out)) - 1) / bs
	span := (last - first + 1) * bs
	buf := k.ensureScratch(span)
	if err := k.SubmitAligned(p, false, first, buf); err != nil {
		return err
	}
	copy(out, buf.Data[off-first*bs:])
	k.memcpyCost(p, len(out))
	return nil
}

// WriteBytes writes byte-granular ranges, read-modify-writing partial edge
// blocks.
func (k *Kernel) WriteBytes(p *sim.Proc, off int64, data []byte) error {
	bs := int64(k.Drv.BlockSize())
	first := off / bs
	last := (off + int64(len(data)) - 1) / bs
	span := (last - first + 1) * bs
	buf := k.ensureScratch(span)
	firstPartial := off%bs != 0
	lastPartial := (off+int64(len(data)))%bs != 0
	if firstPartial {
		edge := Buffer{Addr: buf.Addr, Data: buf.Data[:bs]}
		if err := k.SubmitAligned(p, false, first, edge); err != nil {
			return err
		}
	}
	if lastPartial && last != first {
		edge := Buffer{Addr: buf.Addr + span - bs, Data: buf.Data[span-bs:]}
		if err := k.SubmitAligned(p, false, last, edge); err != nil {
			return err
		}
	}
	copy(buf.Data[off-first*bs:], data)
	k.memcpyCost(p, len(data))
	return k.SubmitAligned(p, true, first, buf)
}

// Disk adapts the kernel's block path into an extfs.BlockDev so a guest
// filesystem can be mounted on the virtual disk (the nested filesystem of
// paper §IV-D). It carries the guest buffer cache: a write-through LRU of
// whole blocks, so repeated reads of hot data cost a memory copy instead of
// a device round trip — the reason application-level speedups (Fig. 12) are
// far smaller than raw-device speedups (Figs. 9–10).
type Disk struct {
	k      *Kernel
	bounce Buffer

	cache    map[int64]*cacheEnt
	lruHead  *cacheEnt // most recent
	lruTail  *cacheEnt
	cacheCap int

	// CacheHits / CacheMisses count block-level cache outcomes.
	CacheHits, CacheMisses int64
}

type cacheEnt struct {
	lba        int64
	data       []byte
	prev, next *cacheEnt
}

// NewDisk returns the mountable view of the kernel's block device.
func NewDisk(k *Kernel) *Disk {
	return &Disk{k: k, cache: make(map[int64]*cacheEnt), cacheCap: k.P.CacheBlocks}
}

func (d *Disk) lruRemove(e *cacheEnt) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		d.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		d.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (d *Disk) lruPush(e *cacheEnt) {
	e.next = d.lruHead
	if d.lruHead != nil {
		d.lruHead.prev = e
	}
	d.lruHead = e
	if d.lruTail == nil {
		d.lruTail = e
	}
}

// cacheTouch marks e most-recently used.
func (d *Disk) cacheTouch(e *cacheEnt) {
	if d.lruHead == e {
		return
	}
	d.lruRemove(e)
	d.lruPush(e)
}

// cacheInsert stores a block copy, evicting the LRU block if full.
func (d *Disk) cacheInsert(lba int64, data []byte) {
	if d.cacheCap <= 0 {
		return
	}
	if e, ok := d.cache[lba]; ok {
		copy(e.data, data)
		d.cacheTouch(e)
		return
	}
	if len(d.cache) >= d.cacheCap {
		victim := d.lruTail
		d.lruRemove(victim)
		delete(d.cache, victim.lba)
	}
	e := &cacheEnt{lba: lba, data: append([]byte(nil), data...)}
	d.cache[lba] = e
	d.lruPush(e)
}

// BlockSize implements extfs.BlockDev.
func (d *Disk) BlockSize() int { return d.k.Drv.BlockSize() }

// NumBlocks implements extfs.BlockDev.
func (d *Disk) NumBlocks() int64 { return d.k.Drv.CapacityBlocks() }

func (d *Disk) ensure(n int) Buffer {
	if len(d.bounce.Data) < n {
		d.bounce = d.k.AllocBuffer(int64(n))
	}
	return Buffer{Addr: d.bounce.Addr, Data: d.bounce.Data[:n]}
}

// ReadBlocks implements extfs.BlockDev: cached blocks cost a memory copy;
// misses are fetched in contiguous spans through the block layer (bounce
// buffer: the guest filesystem's buffers are not DMA-mapped pages in this
// model) and inserted into the cache.
func (d *Disk) ReadBlocks(ctx *sim.Proc, lba int64, p []byte) error {
	bs := d.BlockSize()
	blocks := len(p) / bs
	for i := 0; i < blocks; {
		blk := lba + int64(i)
		if e, ok := d.cache[blk]; ok {
			d.CacheHits++
			d.cacheTouch(e)
			copy(p[i*bs:(i+1)*bs], e.data)
			d.k.memcpyCost(ctx, bs)
			i++
			continue
		}
		// Miss: read the maximal uncached span in one request.
		j := i + 1
		for j < blocks {
			if _, ok := d.cache[lba+int64(j)]; ok {
				break
			}
			j++
		}
		span := (j - i) * bs
		d.CacheMisses += int64(j - i)
		buf := d.ensure(span)
		if err := d.k.SubmitAligned(ctx, false, blk, buf); err != nil {
			return err
		}
		copy(p[i*bs:j*bs], buf.Data)
		d.k.memcpyCost(ctx, span)
		for k := i; k < j; k++ {
			d.cacheInsert(lba+int64(k), p[k*bs:(k+1)*bs])
		}
		i = j
	}
	return nil
}

// WriteBlocks implements extfs.BlockDev: write-through — the cache copy is
// refreshed and the blocks go to the device.
func (d *Disk) WriteBlocks(ctx *sim.Proc, lba int64, p []byte) error {
	bs := d.BlockSize()
	for i := 0; i < len(p)/bs; i++ {
		d.cacheInsert(lba+int64(i), p[i*bs:(i+1)*bs])
	}
	buf := d.ensure(len(p))
	copy(buf.Data, p)
	d.k.memcpyCost(ctx, len(p))
	return d.k.SubmitAligned(ctx, true, lba, buf)
}

// Flush implements extfs.BlockDev; the simulated media have no volatile
// cache, so ordering is already durable.
func (d *Disk) Flush(*sim.Proc) error { return nil }

// Mount formats or mounts an extent filesystem on the virtual disk.
func (k *Kernel) Mount(ctx *sim.Proc, format bool, fsParams extfs.Params) (*extfs.FS, error) {
	disk := NewDisk(k)
	fsParams.OpCost = k.P.FSOpCost
	if format {
		return extfs.Format(ctx, disk, fsParams)
	}
	return extfs.Mount(ctx, disk, k.P.FSOpCost)
}
