package guest

import (
	"testing"

	"nesc/internal/sim"
)

// testMux builds a MultiQueue over bare queue pairs (no device behind them);
// pick() only consults FreeSlots, so that is all the policies need.
func testMux(eng *sim.Engine, slots ...int) *MultiQueue {
	mq := &MultiQueue{}
	for i, n := range slots {
		mq.queues = append(mq.queues, &QueuePair{queue: i, slots: sim.NewSemaphore(eng, n)})
	}
	return mq
}

func TestPolicyHashSpreads(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Shutdown()
	mq := testMux(eng, 8, 8, 8, 8)
	// The pathological pattern for lba % n: a stride-4 scan (ParallelDD's
	// per-worker layout). The multiplicative hash must still spread it.
	hits := make([]int, 4)
	for i := 0; i < 64; i++ {
		hits[mq.pick(uint64(i*4)).Queue()]++
	}
	for q, n := range hits {
		if n == 0 {
			t.Errorf("queue %d never picked by hash policy: %v", q, hits)
		}
		if n > 32 {
			t.Errorf("queue %d got %d of 64 strided LBAs: %v", q, n, hits)
		}
	}
	// The hash is a pure function of the LBA: same block, same queue.
	for _, lba := range []uint64{0, 7, 4096, 1 << 40} {
		if mq.pick(lba) != mq.pick(lba) {
			t.Errorf("hash policy unstable for lba %d", lba)
		}
	}
}

func TestPolicyLeastOccupied(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Shutdown()
	mq := testMux(eng, 2, 7, 5)
	mq.SetPolicy(PolicyLeastOccupied)
	if got := mq.pick(12345).Queue(); got != 1 {
		t.Errorf("picked queue %d, want 1 (most free slots)", got)
	}
	// Ties break toward the lowest index, deterministically.
	tie := testMux(eng, 4, 4, 4)
	tie.SetPolicy(PolicyLeastOccupied)
	if got := tie.pick(99).Queue(); got != 0 {
		t.Errorf("tie broke to queue %d, want 0", got)
	}
}

func TestPolicySingleQueue(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Shutdown()
	for _, pol := range []Policy{PolicyHash, PolicyLeastOccupied} {
		mq := testMux(eng, 8)
		mq.SetPolicy(pol)
		for _, lba := range []uint64{0, 1, 77, 1 << 33} {
			if got := mq.pick(lba).Queue(); got != 0 {
				t.Errorf("policy %v picked queue %d with one queue", pol, got)
			}
		}
	}
}
