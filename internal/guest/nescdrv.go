package guest

import (
	"fmt"

	"nesc/internal/core"
	"nesc/internal/hostmem"
	"nesc/internal/pcie"
	"nesc/internal/sim"
)

// NescDriver is the guest block driver for a directly assigned NeSC virtual
// function (the paper's VF guest driver, "a simple block device driver",
// §VI). The VF's register page is mapped straight into the guest, so
// submissions are plain MMIO writes with no hypervisor involvement.
//
// On the paper's prototype platform the emulated VFs are invisible to the
// IOMMU, so the hypervisor pre-allocates trampoline buffers and the guest
// copies data through them around each DMA; with a real SR-IOV device the
// driver DMAs guest buffers directly. Both modes are supported.
type NescDriver struct {
	mq   *MultiQueue
	mem  *hostmem.Memory
	bs   int
	cap  int64
	maxB int

	// Trampoline mode: a pool of bounce slots so concurrent scatter-gather
	// chunks don't serialize on one buffer.
	useTrampoline bool
	trampoSlots   []Buffer
	trampoSem     *sim.Semaphore
	memcpyBW      float64

	// TrampolineCopies counts bounce copies (prototype-overhead ablation).
	TrampolineCopies int64
}

// NescDriverConfig configures driver construction.
type NescDriverConfig struct {
	Fab     *pcie.Fabric
	Mem     *hostmem.Memory
	PageBus int64 // bus address of the VF's register page
	// RingEntries sizes the request/completion rings.
	RingEntries int
	// MaxBlocksPerReq is the driver's scatter-gather chunk size (4 KB in
	// the paper: "Large requests are broken down by the driver").
	MaxBlocksPerReq int
	// SubmitTime is the driver CPU cost per request.
	SubmitTime sim.Time
	// UseTrampoline selects the prototype's bounce-buffer mode.
	UseTrampoline bool
	// MemcpyBandwidth prices trampoline copies.
	MemcpyBandwidth float64
	// BlockSize is the device block size.
	BlockSize int
	// Timeout and RetryMax configure each queue pair's completion-timeout
	// recovery (see QueuePair). Zero Timeout disables it.
	Timeout  sim.Time
	RetryMax int
	// Deadline, when positive, programs each queue's per-request latency
	// budget (QRegDeadline): requests the device cannot finish inside it
	// come back StatusBusy instead of queueing. Zero (the default) leaves
	// the register untouched.
	Deadline sim.Time
	// Queues is the number of queue pairs to drive (0 means 1). The
	// hypervisor tells the guest how many queues its VF exposes; it must not
	// exceed the device's programmed per-function queue count.
	Queues int
	// Policy steers submissions across queues (default PolicyHash).
	Policy Policy
	// DisablePI turns off end-to-end protection information (guard tags in
	// descriptors and completions). On by default: PI is pure arithmetic and
	// does not alter the event schedule.
	DisablePI bool
}

// NewNescDriver programs the VF rings and reads the device geometry.
func NewNescDriver(p *sim.Proc, eng *sim.Engine, cfg NescDriverConfig) (*NescDriver, error) {
	if cfg.RingEntries == 0 {
		cfg.RingEntries = 128
	}
	if cfg.MaxBlocksPerReq == 0 {
		cfg.MaxBlocksPerReq = 4
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 1024
	}
	if cfg.Queues == 0 {
		cfg.Queues = 1
	}
	mq, err := NewMultiQueue(p, eng, cfg.Mem, cfg.Fab, cfg.PageBus, cfg.Queues, cfg.RingEntries, cfg.SubmitTime)
	if err != nil {
		return nil, err
	}
	mq.SetPolicy(cfg.Policy)
	mq.SetRecovery(cfg.Timeout, cfg.RetryMax)
	if cfg.Deadline > 0 {
		if err := mq.SetDeadline(p, cfg.Deadline); err != nil {
			return nil, err
		}
	}
	if !cfg.DisablePI {
		mq.SetPI(cfg.BlockSize)
	}
	size, err := mq.DeviceSize(p)
	if err != nil {
		return nil, err
	}
	d := &NescDriver{
		mq:            mq,
		mem:           cfg.Mem,
		bs:            cfg.BlockSize,
		cap:           int64(size),
		maxB:          cfg.MaxBlocksPerReq,
		useTrampoline: cfg.UseTrampoline,
		memcpyBW:      cfg.MemcpyBandwidth,
	}
	if d.useTrampoline {
		const slots = 32
		n := int64(cfg.MaxBlocksPerReq * cfg.BlockSize)
		for i := 0; i < slots; i++ {
			addr := cfg.Mem.MustAlloc(n, 64)
			data, err := cfg.Mem.Slice(addr, n)
			if err != nil {
				return nil, err
			}
			d.trampoSlots = append(d.trampoSlots, Buffer{Addr: addr, Data: data})
		}
		d.trampoSem = sim.NewSemaphore(eng, slots)
	}
	return d, nil
}

// QueuePair exposes queue 0's ring client (single-queue compatibility
// accessor; use MQ for the full set).
func (d *NescDriver) QueuePair() *QueuePair { return d.mq.Queue(0) }

// MQ exposes the multi-queue mux (for interrupt routing and IOMMU grants).
func (d *NescDriver) MQ() *MultiQueue { return d.mq }

// Name implements BlockDriver.
func (d *NescDriver) Name() string { return "nesc-vf" }

// BlockSize implements BlockDriver.
func (d *NescDriver) BlockSize() int { return d.bs }

// CapacityBlocks implements BlockDriver.
func (d *NescDriver) CapacityBlocks() int64 { return d.cap }

// MaxBlocksPerReq implements BlockDriver.
func (d *NescDriver) MaxBlocksPerReq() int { return d.maxB }

// Submit implements BlockDriver.
func (d *NescDriver) Submit(p *sim.Proc, write bool, lba int64, buf Buffer) error {
	if len(buf.Data)%d.bs != 0 {
		return fmt.Errorf("nesc driver: unaligned buffer of %d bytes", len(buf.Data))
	}
	count := uint32(len(buf.Data) / d.bs)
	op := uint32(core.OpRead)
	if write {
		op = core.OpWrite
	}
	if !d.useTrampoline {
		st, err := d.mq.Submit(p, op, uint64(lba), count, buf.Addr)
		if err != nil {
			return err
		}
		return StatusError(st)
	}
	// Trampoline mode: copy through a bounce slot around the DMA (paper
	// §VI: "VMs have to copy data to/from the trampoline buffers
	// before/after initiating a DMA operation"). A request larger than a
	// bounce slot cannot be serviced — callers must split at
	// MaxBlocksPerReq like the guest block layer does.
	if int(count) > d.maxB {
		return fmt.Errorf("nesc driver: %d-block request exceeds %d-block trampoline slot", count, d.maxB)
	}
	d.trampoSem.Acquire(p)
	slot := d.trampoSlots[len(d.trampoSlots)-1]
	d.trampoSlots = d.trampoSlots[:len(d.trampoSlots)-1]
	defer func() {
		d.trampoSlots = append(d.trampoSlots, slot)
		d.trampoSem.Release()
	}()
	if write {
		copy(slot.Data, buf.Data)
		d.TrampolineCopies++
		p.Sleep(sim.BytesTime(int64(len(buf.Data)), d.memcpyBW))
	}
	st, err := d.mq.Submit(p, op, uint64(lba), count, slot.Addr)
	if err != nil {
		return err
	}
	if err := StatusError(st); err != nil {
		return err
	}
	if !write {
		copy(buf.Data, slot.Data[:len(buf.Data)])
		d.TrampolineCopies++
		p.Sleep(sim.BytesTime(int64(len(buf.Data)), d.memcpyBW))
	}
	return nil
}
