package guest

import (
	"bytes"
	"encoding/binary"
	"testing"

	"nesc/internal/hostmem"
	"nesc/internal/sim"
	"nesc/internal/virtio"
)

// loopbackTransport is a minimal in-test virtio backend: on every kick it
// synchronously serves the queue against an in-memory disk.
type loopbackTransport struct {
	eng   *sim.Engine
	mem   *hostmem.Memory
	vq    *virtio.Virtqueue
	drv   *VirtioDriver
	disk  []byte
	bs    int
	kicks int
	// failNext forces an error status on the next request.
	failNext bool
}

func (tr *loopbackTransport) Kick(p *sim.Proc) {
	tr.kicks++
	p.Sleep(2 * sim.Microsecond) // trap cost stand-in
	for {
		head, ok, err := tr.vq.PopAvail()
		if err != nil || !ok {
			break
		}
		chain, err := tr.vq.ReadChain(head)
		if err != nil || len(chain) != 3 {
			panic("bad chain in loopback")
		}
		hdr := make([]byte, virtio.BlkHeaderBytes)
		if err := tr.mem.Read(chain[0].Addr, hdr); err != nil {
			panic(err)
		}
		typ := binary.BigEndian.Uint32(hdr[0:])
		sector := binary.BigEndian.Uint64(hdr[8:])
		off := int64(sector) * virtio.SectorSize
		data, err := tr.mem.Slice(chain[1].Addr, int64(chain[1].Len))
		if err != nil {
			panic(err)
		}
		status := byte(virtio.BlkStatusOK)
		switch {
		case tr.failNext:
			tr.failNext = false
			status = virtio.BlkStatusIOErr
		case typ == virtio.BlkTRead:
			copy(data, tr.disk[off:])
		case typ == virtio.BlkTWrite:
			copy(tr.disk[off:], data)
		default:
			status = virtio.BlkStatusIOErr
		}
		if err := tr.mem.Write(chain[2].Addr, []byte{status}); err != nil {
			panic(err)
		}
		if err := tr.vq.PushUsed(head, chain[1].Len); err != nil {
			panic(err)
		}
		// Completion "interrupt" after a short delay.
		tr.eng.After(sim.Microsecond, tr.drv.OnInterrupt)
	}
}

func newVirtioLoopback(t *testing.T) (*VirtioDriver, *loopbackTransport, *Kernel, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	mem := hostmem.New(16 << 20)
	tr := &loopbackTransport{eng: eng, mem: mem, disk: make([]byte, 1<<20), bs: 1024}
	qbase := mem.MustAlloc(virtio.RingBytes(16), 16)
	drv, err := NewVirtioDriver(eng, VirtioDriverConfig{
		Mem: mem, Transport: tr, QueueBase: qbase, QueueSize: 16,
		CapacityBlocks: 1024, BlockSize: 1024, SubmitTime: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.drv = drv
	tr.vq = drv.Virtqueue()
	k := NewKernel(eng, mem, DefaultParams(), drv)
	return drv, tr, k, eng
}

func TestVirtioDriverRoundTrip(t *testing.T) {
	drv, tr, k, eng := newVirtioLoopback(t)
	run(t, eng, func(p *sim.Proc) {
		buf := k.AllocBuffer(8192)
		for i := range buf.Data {
			buf.Data[i] = byte(i * 7)
		}
		want := append([]byte(nil), buf.Data...)
		if err := drv.Submit(p, true, 16, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tr.disk[16*1024:16*1024+8192], want) {
			t.Fatal("write did not reach the loopback disk")
		}
		clear(buf.Data)
		if err := drv.Submit(p, false, 16, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Data, want) {
			t.Fatal("read mismatch")
		}
		if tr.kicks != 2 || drv.Kicks != 2 {
			t.Fatalf("kicks = %d/%d", tr.kicks, drv.Kicks)
		}
	})
}

func TestVirtioDriverErrorStatus(t *testing.T) {
	drv, tr, k, eng := newVirtioLoopback(t)
	run(t, eng, func(p *sim.Proc) {
		buf := k.AllocBuffer(1024)
		tr.failNext = true
		if err := drv.Submit(p, true, 0, buf); err == nil {
			t.Fatal("device error status not surfaced")
		}
		// Driver recovers: the descriptor slot was recycled.
		if err := drv.Submit(p, true, 0, buf); err != nil {
			t.Fatalf("driver wedged after error: %v", err)
		}
	})
}

func TestVirtioDriverRejectsUnaligned(t *testing.T) {
	drv, _, k, eng := newVirtioLoopback(t)
	run(t, eng, func(p *sim.Proc) {
		buf := k.AllocBuffer(1500)
		if err := drv.Submit(p, true, 0, buf); err == nil {
			t.Fatal("unaligned virtio submit accepted")
		}
	})
}

func TestVirtioDriverConcurrentSubmitters(t *testing.T) {
	drv, _, k, eng := newVirtioLoopback(t)
	done := 0
	for i := 0; i < 8; i++ {
		i := i
		eng.Go("submitter", func(p *sim.Proc) {
			buf := k.AllocBuffer(2048)
			for r := 0; r < 5; r++ {
				if err := drv.Submit(p, true, int64(i*64+r*2), buf); err != nil {
					t.Errorf("submitter %d: %v", i, err)
					return
				}
			}
			done++
		})
	}
	eng.Run()
	eng.Shutdown()
	if done != 8 {
		t.Fatalf("only %d submitters finished", done)
	}
}

// fakePort emulates the trapped register interface of the emulated disk.
type fakePort struct {
	regs   map[int]uint64
	disk   []byte
	mem    *hostmem.Memory
	status uint64
	traps  int
}

func (f *fakePort) WriteReg(p *sim.Proc, reg int, val uint64) {
	f.traps++
	p.Sleep(3 * sim.Microsecond)
	f.regs[reg] = val
	if reg == EmulRegCmd {
		lba := f.regs[EmulRegLBA]
		count := f.regs[EmulRegCount]
		buf := f.regs[EmulRegBuf]
		data, err := f.mem.Slice(int64(buf), int64(count)*EmulSector)
		if err != nil {
			f.status = EmulStatusErr
			return
		}
		off := int64(lba) * EmulSector
		if off+int64(len(data)) > int64(len(f.disk)) {
			f.status = EmulStatusErr
			return
		}
		switch val {
		case EmulCmdRead:
			copy(data, f.disk[off:])
		case EmulCmdWrite:
			copy(f.disk[off:], data)
		default:
			f.status = EmulStatusErr
			return
		}
		f.status = EmulStatusOK
	}
}

func (f *fakePort) ReadReg(p *sim.Proc, reg int) uint64 {
	f.traps++
	p.Sleep(3 * sim.Microsecond)
	if reg == EmulRegStatus {
		return f.status
	}
	return 0
}

func TestEmulDriverRoundTripAndTrapCount(t *testing.T) {
	eng := sim.NewEngine()
	mem := hostmem.New(8 << 20)
	port := &fakePort{regs: map[int]uint64{}, disk: make([]byte, 1<<20), mem: mem}
	drv := NewEmulDriver(EmulDriverConfig{Port: port, CapacityBlocks: 1024, BlockSize: 1024, SubmitTime: sim.Microsecond})
	k := NewKernel(eng, mem, DefaultParams(), drv)
	run(t, eng, func(p *sim.Proc) {
		buf := k.AllocBuffer(4096)
		for i := range buf.Data {
			buf.Data[i] = byte(i)
		}
		want := append([]byte(nil), buf.Data...)
		if err := drv.Submit(p, true, 8, buf); err != nil {
			t.Fatal(err)
		}
		clear(buf.Data)
		if err := drv.Submit(p, false, 8, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Data, want) {
			t.Fatal("emul round trip mismatch")
		}
		// Fixed trap count per request: 6 writes + 1 status read.
		if port.traps != 14 || drv.Traps != 14 {
			t.Fatalf("traps = %d/%d, want 14", port.traps, drv.Traps)
		}
	})
}

func TestEmulDriverBadCommandStatus(t *testing.T) {
	eng := sim.NewEngine()
	mem := hostmem.New(4 << 20)
	port := &fakePort{regs: map[int]uint64{}, disk: make([]byte, 1<<20), mem: mem}
	drv := NewEmulDriver(EmulDriverConfig{Port: port, CapacityBlocks: 8192, BlockSize: 1024})
	k := NewKernel(eng, mem, DefaultParams(), drv)
	run(t, eng, func(p *sim.Proc) {
		buf := k.AllocBuffer(1024)
		// Past the fake disk (1MB) but within claimed capacity: the device
		// reports an error status the driver must surface.
		if err := drv.Submit(p, true, 4096, buf); err == nil {
			t.Fatal("emul error status not surfaced")
		}
	})
}
