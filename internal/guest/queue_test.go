package guest

import (
	"encoding/binary"
	"errors"
	"testing"

	"nesc/internal/core"
	"nesc/internal/hostmem"
	"nesc/internal/pcie"
	"nesc/internal/ring"
	"nesc/internal/sim"
)

// fakeFn is a minimal BAR-mapped NeSC function for driving the QueuePair
// protocol from the device side, with per-request misbehavior: "ok",
// "silent" (request vanishes), "lostcpl" (sequence number consumed, entry
// never written), "nomsi" (entry written, interrupt lost), "dup" (completed
// twice), "pierr" (completed with StatusIntegrityError).
type fakeFn struct {
	eng *sim.Engine
	mem *hostmem.Memory
	qp  *QueuePair

	ringBase, cplBase int64
	ringSize          uint32
	consumed          uint32
	cplSeq            uint32

	mode func(id uint32) string
}

func (d *fakeFn) PCIeName() string                 { return "fake-nesc-fn" }
func (d *fakeFn) MMIORead(off int64, _ int) uint64 { return 0 }

func (d *fakeFn) MMIOWrite(off int64, _ int, val uint64) {
	switch off {
	case core.RegRingBase:
		d.ringBase = int64(val)
	case core.RegRingSize:
		d.ringSize = uint32(val)
		d.consumed, d.cplSeq = 0, 0
	case core.RegCplBase:
		d.cplBase = int64(val)
	case core.RegDoorbell:
		d.serve(uint32(val))
	}
}

func (d *fakeFn) complete(id uint32) { d.completeWith(id, core.StatusOK) }

func (d *fakeFn) completeWith(id, status uint32) {
	d.cplSeq++
	entry := make([]byte, core.CplBytes)
	core.EncodeCompletion(entry, id, status, d.cplSeq)
	slot := int64((d.cplSeq - 1) % d.ringSize)
	if err := d.mem.Write(d.cplBase+slot*core.CplBytes, entry); err != nil {
		panic(err)
	}
}

func (d *fakeFn) serve(prod uint32) {
	for d.consumed != prod {
		slot := int64(d.consumed % d.ringSize)
		desc := make([]byte, core.DescBytes)
		if err := d.mem.Read(d.ringBase+slot*core.DescBytes, desc); err != nil {
			panic(err)
		}
		d.consumed++
		id := binary.BigEndian.Uint32(desc[4:8])
		mode := "ok"
		if d.mode != nil {
			mode = d.mode(id)
		}
		switch mode {
		case "silent":
		case "lostcpl":
			d.cplSeq++
		case "nomsi":
			d.complete(id)
		case "pierr":
			d.completeWith(id, core.StatusIntegrityError)
			d.eng.After(sim.Microsecond, d.qp.OnInterrupt)
		case "dup":
			d.complete(id)
			d.complete(id)
			d.eng.After(sim.Microsecond, d.qp.OnInterrupt)
		default:
			d.complete(id)
			d.eng.After(sim.Microsecond, d.qp.OnInterrupt)
		}
	}
}

func newQPRig(t *testing.T) (*sim.Engine, *QueuePair, *fakeFn) {
	t.Helper()
	eng := sim.NewEngine()
	mem := hostmem.New(1 << 20)
	fab := pcie.New(eng, mem, pcie.DefaultParams())
	d := &fakeFn{eng: eng, mem: mem}
	base := fab.MapBAR(d, 0x1000)
	var qp *QueuePair
	eng.Go("setup", func(p *sim.Proc) {
		var err error
		qp, err = NewQueuePair(p, eng, mem, fab, base, 8, sim.Microsecond)
		if err != nil {
			t.Error(err)
			return
		}
		d.qp = qp
	})
	eng.Run()
	if qp == nil {
		t.Fatal("queue pair construction failed")
	}
	return eng, qp, d
}

// Regression: a doorbell MMIO error after waiter registration must not leak
// the waiters[id] entry.
func TestSubmitDoorbellErrorDropsWaiter(t *testing.T) {
	eng := sim.NewEngine()
	mem := hostmem.New(1 << 20)
	fab := pcie.New(eng, mem, pcie.DefaultParams())
	// Hand-built queue pair whose register page routes nowhere: the doorbell
	// write fails after the descriptor is in the ring.
	qp := &QueuePair{
		eng: eng, mem: mem, fab: fab, pageBus: 0, entries: 8,
		slots:    sim.NewSemaphore(eng, 8),
		waiters:  make(map[uint32]*qpWaiter),
		ringBase: mem.MustAlloc(8*core.DescBytes, 64),
		cplBase:  mem.MustAlloc(8*core.CplBytes, 64),
	}
	eng.Go("submitter", func(p *sim.Proc) {
		if _, err := qp.Submit(p, core.OpRead, 0, 1, 0); err == nil {
			t.Error("doorbell write to unmapped page succeeded")
		}
		if len(qp.waiters) != 0 {
			t.Errorf("%d waiters leaked after doorbell error", len(qp.waiters))
		}
	})
	eng.Run()
	eng.Shutdown()
}

// Regression: a completion whose id has no waiter (duplicate after a retry
// or reset) is counted, not silently ignored.
func TestStaleCompletionCounted(t *testing.T) {
	eng, qp, d := newQPRig(t)
	d.mode = func(uint32) string { return "dup" }
	eng.Go("submitter", func(p *sim.Proc) {
		st, err := qp.Submit(p, core.OpRead, 0, 1, 0)
		if err != nil || st != core.StatusOK {
			t.Errorf("submit: status %d err %v", st, err)
		}
	})
	eng.Run()
	eng.Shutdown()
	if qp.StaleCompletions != 1 {
		t.Fatalf("StaleCompletions = %d, want 1", qp.StaleCompletions)
	}
}

func TestTimeoutPollRecoversLostMSI(t *testing.T) {
	eng, qp, d := newQPRig(t)
	qp.Timeout = 500 * sim.Microsecond
	qp.RetryMax = 2
	d.mode = func(uint32) string { return "nomsi" }
	eng.Go("submitter", func(p *sim.Proc) {
		st, err := qp.Submit(p, core.OpRead, 0, 1, 0)
		if err != nil || st != core.StatusOK {
			t.Errorf("submit: status %d err %v", st, err)
		}
	})
	eng.Run()
	eng.Shutdown()
	if qp.Timeouts != 1 || qp.PolledCompletions != 1 || qp.Resubmits != 0 {
		t.Fatalf("timeouts=%d polled=%d resubmits=%d, want 1/1/0",
			qp.Timeouts, qp.PolledCompletions, qp.Resubmits)
	}
}

func TestTimeoutResubmitRecoversLostRequest(t *testing.T) {
	eng, qp, d := newQPRig(t)
	qp.Timeout = 500 * sim.Microsecond
	qp.RetryMax = 2
	d.mode = func(id uint32) string {
		if id == 1 {
			return "silent"
		}
		return "ok"
	}
	eng.Go("submitter", func(p *sim.Proc) {
		st, err := qp.Submit(p, core.OpRead, 0, 1, 0)
		if err != nil || st != core.StatusOK {
			t.Errorf("submit: status %d err %v", st, err)
		}
	})
	eng.Run()
	eng.Shutdown()
	if qp.Resubmits != 1 {
		t.Fatalf("Resubmits = %d, want 1", qp.Resubmits)
	}
	if len(qp.waiters) != 0 {
		t.Fatalf("%d waiters left behind", len(qp.waiters))
	}
}

func TestTimeoutBudgetExhausted(t *testing.T) {
	eng, qp, d := newQPRig(t)
	qp.Timeout = 500 * sim.Microsecond
	qp.RetryMax = 1
	d.mode = func(uint32) string { return "silent" }
	eng.Go("submitter", func(p *sim.Proc) {
		_, err := qp.Submit(p, core.OpRead, 0, 1, 0)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("submit returned %v, want ErrTimeout", err)
		}
	})
	eng.Run()
	eng.Shutdown()
	if qp.Timeouts != 2 { // original + one resubmission
		t.Fatalf("Timeouts = %d, want 2", qp.Timeouts)
	}
}

// A lost completion-ring write leaves a permanent sequence gap; the poll
// path must skip over it or the ring wedges forever.
func TestSeqGapRecovery(t *testing.T) {
	eng, qp, d := newQPRig(t)
	qp.Timeout = 500 * sim.Microsecond
	qp.RetryMax = 3
	d.mode = func(id uint32) string {
		if id == 1 {
			return "lostcpl"
		}
		return "ok"
	}
	eng.Go("submitter", func(p *sim.Proc) {
		st, err := qp.Submit(p, core.OpRead, 0, 1, 0)
		if err != nil || st != core.StatusOK {
			t.Errorf("submit: status %d err %v", st, err)
		}
	})
	eng.Run()
	eng.Shutdown()
	if qp.SeqGaps != 1 || qp.PolledCompletions != 1 {
		t.Fatalf("SeqGaps=%d Polled=%d, want 1/1", qp.SeqGaps, qp.PolledCompletions)
	}
}

func TestRecoverAbortsAndRearms(t *testing.T) {
	eng, qp, d := newQPRig(t)
	d.mode = func(id uint32) string {
		if id == 1 {
			return "silent"
		}
		return "ok"
	}
	eng.Go("submitter", func(p *sim.Proc) {
		_, err := qp.Submit(p, core.OpRead, 0, 1, 0)
		if !errors.Is(err, ErrReset) {
			t.Errorf("aborted submit returned %v, want ErrReset", err)
		}
	})
	eng.Go("resetter", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		if err := qp.Recover(p); err != nil {
			t.Error(err)
			return
		}
		// The recovered queue pair carries fresh I/O.
		st, err := qp.Submit(p, core.OpRead, 0, 1, 0)
		if err != nil || st != core.StatusOK {
			t.Errorf("post-recover submit: status %d err %v", st, err)
		}
	})
	eng.Run()
	eng.Shutdown()
	if qp.Resets != 1 || qp.Aborts != 1 {
		t.Fatalf("resets=%d aborts=%d, want 1/1", qp.Resets, qp.Aborts)
	}
	if len(qp.waiters) != 0 {
		t.Fatalf("%d waiters survived recovery", len(qp.waiters))
	}
}

// finalVerdict must surface the first root cause of a failed submission
// ladder: an integrity failure on any attempt wins over the final
// attempt's own timeout or abort.
func TestFinalVerdictRootCause(t *testing.T) {
	cases := []struct {
		name                                      string
		lastAborted, lastPIBad, lastBusy, rootBad bool
		rootStatus                                uint32
		wantStatus                                uint32
		wantErr                                   error
		wantOverride                              bool
	}{
		{name: "pure timeout", wantErr: ErrTimeout},
		{name: "pure abort", lastAborted: true, wantErr: ErrReset},
		{name: "pure busy", lastBusy: true, wantStatus: ring.StatusBusy},
		{
			name:     "integrity root then final busy",
			lastBusy: true, rootBad: true, rootStatus: ring.StatusIntegrityError,
			wantStatus: ring.StatusIntegrityError, wantOverride: true,
		},
		{
			name:    "device integrity root then timeouts",
			rootBad: true, rootStatus: ring.StatusIntegrityError,
			wantStatus: ring.StatusIntegrityError, wantOverride: true,
		},
		{
			name:    "payload mismatch root then timeouts",
			rootBad: true, rootStatus: ring.StatusOK,
			wantErr: ring.ErrIntegrity, wantOverride: true,
		},
		{
			name:        "integrity root then final abort",
			lastAborted: true, rootBad: true, rootStatus: ring.StatusIntegrityError,
			wantStatus: ring.StatusIntegrityError, wantOverride: true,
		},
		{
			name:      "final attempt is the integrity failure",
			lastPIBad: true, rootBad: true, rootStatus: ring.StatusIntegrityError,
			wantStatus: ring.StatusIntegrityError, wantOverride: false,
		},
	}
	for _, tc := range cases {
		st, err, over := finalVerdict(tc.lastAborted, tc.lastPIBad, tc.lastBusy, tc.rootBad, tc.rootStatus)
		if st != tc.wantStatus || !errors.Is(err, tc.wantErr) || over != tc.wantOverride {
			t.Errorf("%s: finalVerdict = (%d, %v, %v), want (%d, %v, %v)",
				tc.name, st, err, over, tc.wantStatus, tc.wantErr, tc.wantOverride)
		}
	}
}

// Regression: a request whose first attempt fails the device-side integrity
// check and whose resubmissions then vanish must surface the integrity
// status — not the last attempt's timeout — and count the override.
func TestRootCauseSurvivesRetryLadder(t *testing.T) {
	eng, qp, d := newQPRig(t)
	qp.Timeout = 500 * sim.Microsecond
	qp.RetryMax = 2
	d.mode = func(id uint32) string {
		if id == 1 {
			return "pierr"
		}
		return "silent"
	}
	eng.Go("submitter", func(p *sim.Proc) {
		st, err := qp.Submit(p, core.OpWrite, 0, 1, 0)
		if err != nil || st != core.StatusIntegrityError {
			t.Errorf("submit: status %d err %v, want StatusIntegrityError", st, err)
		}
	})
	eng.Run()
	eng.Shutdown()
	if qp.PIWriteErrors != 1 {
		t.Fatalf("PIWriteErrors = %d, want 1", qp.PIWriteErrors)
	}
	if qp.Timeouts != 2 { // both resubmissions vanished
		t.Fatalf("Timeouts = %d, want 2", qp.Timeouts)
	}
	if qp.RootCauseOverrides != 1 {
		t.Fatalf("RootCauseOverrides = %d, want 1", qp.RootCauseOverrides)
	}
}
