package guest

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"nesc/internal/extfs"
	"nesc/internal/hostmem"
	"nesc/internal/sim"
)

// memDriver is a timeless in-memory BlockDriver for exercising the kernel
// block layer in isolation.
type memDriver struct {
	mem     *hostmem.Memory
	bs      int
	blocks  int64
	data    []byte
	maxB    int
	perReq  sim.Time
	submits int64
	// failAfter injects an error after N submissions (<0 disables).
	failAfter int64
}

func newMemDriver(mem *hostmem.Memory, blocks int64, maxB int, perReq sim.Time) *memDriver {
	return &memDriver{mem: mem, bs: 1024, blocks: blocks, data: make([]byte, blocks*1024), maxB: maxB, perReq: perReq, failAfter: -1}
}

func (d *memDriver) Name() string          { return "mem" }
func (d *memDriver) BlockSize() int        { return d.bs }
func (d *memDriver) CapacityBlocks() int64 { return d.blocks }
func (d *memDriver) MaxBlocksPerReq() int  { return d.maxB }

func (d *memDriver) Submit(p *sim.Proc, write bool, lba int64, buf Buffer) error {
	d.submits++
	if d.failAfter >= 0 && d.submits > d.failAfter {
		return fmt.Errorf("memDriver: injected failure")
	}
	if len(buf.Data) > d.maxB*d.bs {
		return fmt.Errorf("memDriver: request of %d bytes exceeds driver limit", len(buf.Data))
	}
	p.Sleep(d.perReq)
	off := lba * int64(d.bs)
	if write {
		copy(d.data[off:], buf.Data)
	} else {
		copy(buf.Data, d.data[off:])
	}
	return nil
}

func newTestKernel(maxB int) (*Kernel, *memDriver, *sim.Engine) {
	eng := sim.NewEngine()
	mem := hostmem.New(16 << 20)
	drv := newMemDriver(mem, 8192, maxB, 5*sim.Microsecond)
	k := NewKernel(eng, mem, DefaultParams(), drv)
	return k, drv, eng
}

func run(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	eng.Go("test", func(p *sim.Proc) { fn(p); done = true })
	eng.Run()
	eng.Shutdown()
	if !done {
		t.Fatal("test process deadlocked")
	}
}

func TestSubmitAlignedSplitsAtDriverLimit(t *testing.T) {
	k, drv, eng := newTestKernel(4)
	run(t, eng, func(p *sim.Proc) {
		buf := k.AllocBuffer(32 * 1024) // 32 blocks -> 8 chunks at 4 blocks
		rand.New(rand.NewSource(1)).Read(buf.Data)
		if err := k.SubmitAligned(p, true, 0, buf); err != nil {
			t.Error(err)
		}
		if drv.submits != 8 {
			t.Errorf("driver saw %d submissions, want 8", drv.submits)
		}
		if k.Requests != 1 {
			t.Errorf("block layer counted %d requests, want 1", k.Requests)
		}
		// Chunks ran concurrently: total time well under 8 serial requests.
		if p.Now() > 4*8*5*sim.Microsecond {
			t.Errorf("scatter-gather chunks did not overlap: %v", p.Now())
		}
	})
}

func TestSubmitAlignedRejectsUnaligned(t *testing.T) {
	k, _, eng := newTestKernel(4)
	run(t, eng, func(p *sim.Proc) {
		buf := k.AllocBuffer(1500)
		if err := k.SubmitAligned(p, true, 0, buf); err == nil {
			t.Error("unaligned submit accepted")
		}
	})
}

func TestSubmitAlignedPropagatesChunkErrors(t *testing.T) {
	k, drv, eng := newTestKernel(2)
	drv.failAfter = 3
	run(t, eng, func(p *sim.Proc) {
		buf := k.AllocBuffer(16 * 1024) // 8 chunks; later ones fail
		if err := k.SubmitAligned(p, true, 0, buf); err == nil {
			t.Error("chunk failure not propagated")
		}
	})
}

func TestReadWriteBytesUnaligned(t *testing.T) {
	k, drv, eng := newTestKernel(8)
	run(t, eng, func(p *sim.Proc) {
		// Pre-fill device with a known pattern.
		for i := range drv.data[:64*1024] {
			drv.data[i] = byte(i)
		}
		out := make([]byte, 3000)
		if err := k.ReadBytes(p, 517, out); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != byte(517+i) {
				t.Fatalf("byte %d = %d, want %d", i, out[i], byte(517+i))
			}
		}
		// Unaligned write with RMW: neighbors must be preserved.
		patch := bytes.Repeat([]byte{0xEE}, 100)
		if err := k.WriteBytes(p, 1000, patch); err != nil {
			t.Fatal(err)
		}
		if drv.data[999] != byte(999&0xff) || drv.data[1100] != byte(1100&0xff) {
			t.Error("RMW corrupted neighboring bytes")
		}
		for i := 1000; i < 1100; i++ {
			if drv.data[i] != 0xEE {
				t.Fatalf("patched byte %d = %d", i, drv.data[i])
			}
		}
	})
}

func TestDiskCacheHitsSkipDevice(t *testing.T) {
	k, drv, eng := newTestKernel(8)
	run(t, eng, func(p *sim.Proc) {
		d := NewDisk(k)
		buf := make([]byte, 4096)
		if err := d.WriteBlocks(p, 10, buf); err != nil {
			t.Fatal(err)
		}
		submitsAfterWrite := drv.submits
		// Read of just-written blocks: pure cache.
		if err := d.ReadBlocks(p, 10, buf); err != nil {
			t.Fatal(err)
		}
		if drv.submits != submitsAfterWrite {
			t.Error("cached read hit the device")
		}
		if d.CacheHits < 4 {
			t.Errorf("cache hits = %d", d.CacheHits)
		}
		// Cold read misses.
		if err := d.ReadBlocks(p, 100, buf); err != nil {
			t.Fatal(err)
		}
		if drv.submits == submitsAfterWrite {
			t.Error("cold read did not reach the device")
		}
	})
}

func TestDiskCacheEvictionLRU(t *testing.T) {
	eng := sim.NewEngine()
	mem := hostmem.New(16 << 20)
	drv := newMemDriver(mem, 8192, 8, sim.Microsecond)
	params := DefaultParams()
	params.CacheBlocks = 4
	k := NewKernel(eng, mem, params, drv)
	run(t, eng, func(p *sim.Proc) {
		d := NewDisk(k)
		one := make([]byte, 1024)
		for lba := int64(0); lba < 8; lba++ { // 8 distinct blocks through a 4-block cache
			if err := d.ReadBlocks(p, lba, one); err != nil {
				t.Fatal(err)
			}
		}
		if len(d.cache) != 4 {
			t.Fatalf("cache holds %d blocks, cap 4", len(d.cache))
		}
		// Oldest blocks evicted; newest cached.
		misses := d.CacheMisses
		if err := d.ReadBlocks(p, 7, one); err != nil {
			t.Fatal(err)
		}
		if d.CacheMisses != misses {
			t.Error("most-recent block was evicted")
		}
		if err := d.ReadBlocks(p, 0, one); err != nil {
			t.Fatal(err)
		}
		if d.CacheMisses == misses {
			t.Error("oldest block survived eviction")
		}
	})
}

func TestDiskCacheWriteThroughConsistency(t *testing.T) {
	k, drv, eng := newTestKernel(8)
	run(t, eng, func(p *sim.Proc) {
		d := NewDisk(k)
		v1 := bytes.Repeat([]byte{1}, 1024)
		v2 := bytes.Repeat([]byte{2}, 1024)
		if err := d.WriteBlocks(p, 5, v1); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteBlocks(p, 5, v2); err != nil {
			t.Fatal(err)
		}
		// Device sees the latest version (write-through).
		if drv.data[5*1024] != 2 {
			t.Error("write-through missed the device")
		}
		got := make([]byte, 1024)
		if err := d.ReadBlocks(p, 5, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != 2 {
			t.Error("cache returned a stale version")
		}
	})
}

func TestDiskPartialCacheSpanCoalescing(t *testing.T) {
	k, drv, eng := newTestKernel(16)
	run(t, eng, func(p *sim.Proc) {
		d := NewDisk(k)
		one := make([]byte, 1024)
		// Cache block 5 only.
		if err := d.ReadBlocks(p, 5, one); err != nil {
			t.Fatal(err)
		}
		submits := drv.submits
		// Read blocks 3..8: expect 2 device requests (3-4 and 6-8) plus the
		// cached block 5.
		buf := make([]byte, 6*1024)
		if err := d.ReadBlocks(p, 3, buf); err != nil {
			t.Fatal(err)
		}
		if drv.submits != submits+2 {
			t.Errorf("span coalescing issued %d requests, want 2", drv.submits-submits)
		}
	})
}

func TestKernelMountFS(t *testing.T) {
	k, _, eng := newTestKernel(8)
	run(t, eng, func(p *sim.Proc) {
		fs, err := k.Mount(p, true, fsParamsForTest())
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Create(p, "/x", 0, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, []byte("through the whole stack"), 0); err != nil {
			t.Fatal(err)
		}
		if err := fs.Check(p); err != nil {
			t.Fatal(err)
		}
	})
}

func fsParamsForTest() extfs.Params {
	return extfs.Params{InodeCount: 32, JournalBlocks: 16, Mode: extfs.JournalMetadata}
}
