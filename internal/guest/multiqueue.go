package guest

import (
	"fmt"

	"nesc/internal/hostmem"
	"nesc/internal/pcie"
	"nesc/internal/sim"
	"nesc/internal/slo"
)

// Policy selects which queue pair a MultiQueue submission lands on.
type Policy int

const (
	// PolicyHash statically spreads requests across queues by a hash of the
	// LBA, so all accesses to one block ride the same queue (preserving
	// per-block ordering) while the address space spreads evenly.
	PolicyHash Policy = iota
	// PolicyLeastOccupied steers each request to the queue with the most
	// free submission slots, trading per-block ordering for load balance.
	PolicyLeastOccupied
)

func (p Policy) String() string {
	switch p {
	case PolicyHash:
		return "hash"
	case PolicyLeastOccupied:
		return "least-occupied"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// MultiQueue multiplexes one function's N queue pairs behind the single
// Submit interface the rest of the guest stack uses. With one queue it is a
// transparent wrapper around QueuePair — same MMIO sequence, same event
// schedule. Each underlying queue keeps its own timeout/poll/backoff
// recovery, so losing a completion on one queue never stalls the others.
type MultiQueue struct {
	queues []*QueuePair
	policy Policy
}

// NewMultiQueue allocates and programs `queues` queue pairs (each of
// `entries` slots) for the function whose register page sits at pageBus.
func NewMultiQueue(p *sim.Proc, eng *sim.Engine, mem *hostmem.Memory, fab *pcie.Fabric, pageBus int64, queues, entries int, submitTime sim.Time) (*MultiQueue, error) {
	if queues < 1 {
		queues = 1
	}
	mq := &MultiQueue{queues: make([]*QueuePair, 0, queues)}
	for q := 0; q < queues; q++ {
		qp, err := newQueuePair(p, eng, mem, fab, pageBus, q, entries, submitTime)
		if err != nil {
			return nil, err
		}
		mq.queues = append(mq.queues, qp)
	}
	return mq, nil
}

// SetPolicy selects the queue-steering policy (default PolicyHash).
func (mq *MultiQueue) SetPolicy(p Policy) { mq.policy = p }

// NumQueues reports how many queue pairs the mux spans.
func (mq *MultiQueue) NumQueues() int { return len(mq.queues) }

// Queue returns the q-th underlying queue pair.
func (mq *MultiQueue) Queue(q int) *QueuePair { return mq.queues[q] }

// Queues returns the underlying queue pairs (shared slice; do not mutate).
func (mq *MultiQueue) Queues() []*QueuePair { return mq.queues }

// SetRecovery arms every queue's timeout/retry recovery.
func (mq *MultiQueue) SetRecovery(timeout sim.Time, retryMax int) {
	for _, qp := range mq.queues {
		qp.Timeout = timeout
		qp.RetryMax = retryMax
	}
}

// SetDeadline programs every queue's per-request deadline budget, in queue
// order. Zero is a no-op on every queue (no MMIO writes).
func (mq *MultiQueue) SetDeadline(p *sim.Proc, d sim.Time) error {
	for _, qp := range mq.queues {
		if err := qp.SetDeadline(p, d); err != nil {
			return err
		}
	}
	return nil
}

// BusyRejects totals StatusBusy completions across every queue.
func (mq *MultiQueue) BusyRejects() int64 {
	var n int64
	for _, qp := range mq.queues {
		n += qp.BusyRejects
	}
	return n
}

// AttachAttribution arms driver-side latency attribution on every queue.
func (mq *MultiQueue) AttachAttribution(a *slo.Attributor, vf int) {
	for _, qp := range mq.queues {
		qp.AttachAttribution(a, vf)
	}
}

// SetPI enables end-to-end protection information on every queue.
func (mq *MultiQueue) SetPI(blockBytes int) {
	for _, qp := range mq.queues {
		qp.SetPI(blockBytes)
	}
}

// ArmShadow enables shadow-doorbell batching on every queue, in queue order.
func (mq *MultiQueue) ArmShadow(p *sim.Proc) error {
	for _, qp := range mq.queues {
		if err := qp.ArmShadow(p); err != nil {
			return err
		}
	}
	return nil
}

// DMARanges reports the ring memory of every queue, for IOMMU grants.
func (mq *MultiQueue) DMARanges() [][2]int64 {
	var rs [][2]int64
	for _, qp := range mq.queues {
		rs = append(rs, qp.DMARanges()...)
	}
	return rs
}

// DeviceSize reads the function's device-size register.
func (mq *MultiQueue) DeviceSize(p *sim.Proc) (uint64, error) {
	return mq.queues[0].DeviceSize(p)
}

// pick selects the queue for a request at lba under the current policy.
func (mq *MultiQueue) pick(lba uint64) *QueuePair {
	n := len(mq.queues)
	if n == 1 {
		return mq.queues[0]
	}
	switch mq.policy {
	case PolicyLeastOccupied:
		best := 0
		for q := 1; q < n; q++ {
			if mq.queues[q].FreeSlots() > mq.queues[best].FreeSlots() {
				best = q
			}
		}
		return mq.queues[best]
	default:
		// Multiplicative (Fibonacci) hash: plain lba % n would pin every
		// strided workload whose stride divides n onto a single queue.
		h := lba * 0x9E3779B97F4A7C15
		return mq.queues[int(h>>56)%n]
	}
}

// Submit steers one request to a queue by policy and blocks until its
// completion, with the per-queue recovery semantics of QueuePair.Submit.
func (mq *MultiQueue) Submit(p *sim.Proc, op uint32, lba uint64, count uint32, bufAddr int64) (uint32, error) {
	return mq.pick(lba).Submit(p, op, lba, count, bufAddr)
}

// OnInterrupt drains completions on queue q. It runs in engine (interrupt)
// context; the caller maps the MSI vector to a queue index via
// core.QueueOfVector.
func (mq *MultiQueue) OnInterrupt(q int) {
	if q < 0 || q >= len(mq.queues) {
		return
	}
	mq.queues[q].OnInterrupt()
}

// Recover re-arms every queue pair after a function-level reset, in queue
// order (determinism: fixed order, not map iteration).
func (mq *MultiQueue) Recover(p *sim.Proc) error {
	for _, qp := range mq.queues {
		if err := qp.Recover(p); err != nil {
			return err
		}
	}
	return nil
}
