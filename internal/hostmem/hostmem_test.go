package hostmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(4096)
	src := []byte("nested storage controller")
	if err := m.Write(100, src); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(src))
	if err := m.Read(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("read back %q", got)
	}
}

func TestBoundsChecking(t *testing.T) {
	m := New(1024)
	if err := m.Write(1020, make([]byte, 8)); err == nil {
		t.Fatal("out-of-bounds write succeeded")
	}
	if err := m.Read(-1, make([]byte, 1)); err == nil {
		t.Fatal("negative-address read succeeded")
	}
	if _, err := m.ReadU64(1020); err == nil {
		t.Fatal("out-of-bounds ReadU64 succeeded")
	}
	if _, err := m.Slice(0, 2048); err == nil {
		t.Fatal("oversized Slice succeeded")
	}
}

func TestTypedAccessors(t *testing.T) {
	m := New(1024)
	if err := m.WriteU64(64, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU64(64)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Fatalf("ReadU64 = %#x, %v", v, err)
	}
	if err := m.WriteU32(72, 0x12345678); err != nil {
		t.Fatal(err)
	}
	v32, err := m.ReadU32(72)
	if err != nil || v32 != 0x12345678 {
		t.Fatalf("ReadU32 = %#x, %v", v32, err)
	}
	// Big-endian layout is observable byte-wise.
	b := make([]byte, 4)
	if err := m.Read(72, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x12 || b[3] != 0x78 {
		t.Fatalf("not big-endian: % x", b)
	}
}

func TestZeroAndSlice(t *testing.T) {
	m := New(1024)
	if err := m.Write(200, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Zero(201, 2); err != nil {
		t.Fatal(err)
	}
	s, err := m.Slice(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 || s[1] != 0 || s[2] != 0 || s[3] != 4 {
		t.Fatalf("after Zero: % x", s)
	}
	// Slice is live: writes show through.
	s[0] = 9
	b := make([]byte, 1)
	if err := m.Read(200, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 9 {
		t.Fatal("Slice is not a live view")
	}
}

func TestAllocNeverReturnsZero(t *testing.T) {
	m := New(1 << 16)
	for i := 0; i < 100; i++ {
		a, err := m.Alloc(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		if a == 0 {
			t.Fatal("allocator returned NULL address")
		}
	}
}

func TestAllocAlignment(t *testing.T) {
	m := New(1 << 16)
	for _, align := range []int64{1, 8, 64, 256, 4096} {
		a, err := m.Alloc(10, align)
		if err != nil {
			t.Fatal(err)
		}
		if a%align != 0 {
			t.Fatalf("alloc align %d returned %#x", align, a)
		}
	}
	if _, err := m.Alloc(8, 3); err == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
	if _, err := m.Alloc(0, 8); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
}

func TestAllocFreeCoalescing(t *testing.T) {
	m := New(1 << 12)
	start := m.FreeBytes()
	var addrs []Addr
	for i := 0; i < 8; i++ {
		addrs = append(addrs, m.MustAlloc(128, 8))
	}
	// Free in a scrambled order.
	for _, i := range []int{3, 0, 7, 1, 5, 2, 6, 4} {
		if err := m.Free(addrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if m.FreeBytes() != start {
		t.Fatalf("free bytes %d != initial %d after freeing everything", m.FreeBytes(), start)
	}
	if m.LiveAllocs() != 0 {
		t.Fatalf("live allocs = %d", m.LiveAllocs())
	}
	// Coalescing means a full-size allocation fits again.
	if _, err := m.Alloc(start, 1); err != nil {
		t.Fatalf("memory fragmented after frees: %v", err)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	m := New(4096)
	a := m.MustAlloc(64, 8)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a); err == nil {
		t.Fatal("double free accepted")
	}
	if err := m.Free(12345); err == nil {
		t.Fatal("free of never-allocated address accepted")
	}
}

func TestOutOfMemory(t *testing.T) {
	m := New(1024)
	if _, err := m.Alloc(1<<20, 8); err == nil {
		t.Fatal("oversized allocation succeeded")
	}
}

// Property: allocations never overlap each other.
func TestAllocNonOverlapProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		m := New(1 << 16)
		type span struct{ base, end Addr }
		var spans []span
		for _, sz := range sizes {
			n := int64(sz%200) + 1
			a, err := m.Alloc(n, 8)
			if err != nil {
				break // exhaustion is fine
			}
			for _, s := range spans {
				if a < s.end && a+n > s.base {
					return false
				}
			}
			spans = append(spans, span{a, a + n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: random alloc/free sequences conserve bytes exactly.
func TestAllocatorConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := New(1 << 18)
	initial := m.FreeBytes()
	live := make(map[Addr]int64)
	var liveBytes int64
	for i := 0; i < 2000; i++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			// free a random live allocation
			var pick Addr
			k := rng.Intn(len(live))
			for a := range live {
				if k == 0 {
					pick = a
					break
				}
				k--
			}
			if err := m.Free(pick); err != nil {
				t.Fatal(err)
			}
			liveBytes -= live[pick]
			delete(live, pick)
		} else {
			n := int64(rng.Intn(512) + 1)
			a, err := m.Alloc(n, 8)
			if err != nil {
				continue
			}
			live[a] = n
			liveBytes += n
		}
		if m.AllocBytes != liveBytes {
			t.Fatalf("iteration %d: AllocBytes=%d, want %d", i, m.AllocBytes, liveBytes)
		}
	}
	for a := range live {
		if err := m.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if m.FreeBytes() != initial {
		t.Fatalf("leaked: free=%d initial=%d", m.FreeBytes(), initial)
	}
}
