// Package hostmem models host physical memory (DRAM) as seen by the NeSC
// device over PCIe: a flat byte-addressable space with a simple region
// allocator. Extent trees, DMA ring buffers, trampoline buffers, and guest
// RAM windows all live here, so the device-side extent walker reads exactly
// the bytes the hypervisor serialized — the same contract the hardware DMA
// walk has.
//
// Address 0 is reserved as the NULL pointer: the extent-tree format uses a
// zero child pointer to mark pruned subtrees, so no allocation may start at
// address zero.
package hostmem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Addr is a host physical address.
type Addr = int64

// Memory is a flat host physical memory with a first-fit region allocator.
type Memory struct {
	data []byte
	// free regions sorted by base, coalesced on free.
	free []region
	// allocs maps base -> length for Free validation.
	allocs map[Addr]int64

	// AllocBytes tracks live allocated bytes (for pruning experiments).
	AllocBytes int64
}

type region struct {
	base Addr
	size int64
}

// New returns a memory of the given size. The first 64 bytes are reserved so
// no allocation returns address 0 (the extent-tree NULL pointer).
func New(size int64) *Memory {
	const reserve = 64
	if size <= reserve {
		panic("hostmem: memory too small")
	}
	return &Memory{
		data:   make([]byte, size),
		free:   []region{{base: reserve, size: size - reserve}},
		allocs: make(map[Addr]int64),
	}
}

// Size reports the total memory size in bytes.
func (m *Memory) Size() int64 { return int64(len(m.data)) }

// check validates an access range.
func (m *Memory) check(addr Addr, n int) error {
	if addr < 0 || n < 0 || addr+int64(n) > int64(len(m.data)) {
		return fmt.Errorf("hostmem: access [%#x, %#x) outside memory of %d bytes", addr, addr+int64(n), len(m.data))
	}
	return nil
}

// Read copies len(p) bytes starting at addr into p.
func (m *Memory) Read(addr Addr, p []byte) error {
	if err := m.check(addr, len(p)); err != nil {
		return err
	}
	copy(p, m.data[addr:])
	return nil
}

// Write copies p into memory starting at addr.
func (m *Memory) Write(addr Addr, p []byte) error {
	if err := m.check(addr, len(p)); err != nil {
		return err
	}
	copy(m.data[addr:], p)
	return nil
}

// Zero clears n bytes starting at addr.
func (m *Memory) Zero(addr Addr, n int64) error {
	if err := m.check(addr, int(n)); err != nil {
		return err
	}
	clear(m.data[addr : addr+n])
	return nil
}

// Slice returns the live backing bytes for [addr, addr+n). Mutating the
// returned slice mutates memory; it models zero-copy device access and must
// not be retained across allocator calls.
func (m *Memory) Slice(addr Addr, n int64) ([]byte, error) {
	if err := m.check(addr, int(n)); err != nil {
		return nil, err
	}
	return m.data[addr : addr+n], nil
}

// Typed big-endian accessors. The NeSC wire format is big-endian so
// serialized structures are unambiguous in hex dumps.

// ReadU64 reads a big-endian uint64 at addr.
func (m *Memory) ReadU64(addr Addr) (uint64, error) {
	if err := m.check(addr, 8); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(m.data[addr:]), nil
}

// WriteU64 writes a big-endian uint64 at addr.
func (m *Memory) WriteU64(addr Addr, v uint64) error {
	if err := m.check(addr, 8); err != nil {
		return err
	}
	binary.BigEndian.PutUint64(m.data[addr:], v)
	return nil
}

// ReadU32 reads a big-endian uint32 at addr.
func (m *Memory) ReadU32(addr Addr) (uint32, error) {
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(m.data[addr:]), nil
}

// WriteU32 writes a big-endian uint32 at addr.
func (m *Memory) WriteU32(addr Addr, v uint32) error {
	if err := m.check(addr, 4); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(m.data[addr:], v)
	return nil
}

// Alloc reserves size bytes aligned to align (power of two or 1; 0 means 8)
// and returns the base address. First-fit over the free list.
func (m *Memory) Alloc(size, align int64) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("hostmem: alloc of %d bytes", size)
	}
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("hostmem: alignment %d not a power of two", align)
	}
	for i, r := range m.free {
		base := (r.base + align - 1) &^ (align - 1)
		pad := base - r.base
		if pad+size > r.size {
			continue
		}
		// Carve [base, base+size) out of r.
		var repl []region
		if pad > 0 {
			repl = append(repl, region{base: r.base, size: pad})
		}
		if rest := r.size - pad - size; rest > 0 {
			repl = append(repl, region{base: base + size, size: rest})
		}
		m.free = append(m.free[:i], append(repl, m.free[i+1:]...)...)
		m.allocs[base] = size
		m.AllocBytes += size
		return base, nil
	}
	return 0, fmt.Errorf("hostmem: out of memory allocating %d bytes (align %d)", size, align)
}

// MustAlloc is Alloc that panics on failure; used by setup code where
// exhaustion is a configuration bug.
func (m *Memory) MustAlloc(size, align int64) Addr {
	a, err := m.Alloc(size, align)
	if err != nil {
		panic(err)
	}
	return a
}

// Free releases an allocation made by Alloc, coalescing adjacent free
// regions.
func (m *Memory) Free(addr Addr) error {
	size, ok := m.allocs[addr]
	if !ok {
		return fmt.Errorf("hostmem: free of unallocated address %#x", addr)
	}
	delete(m.allocs, addr)
	m.AllocBytes -= size
	m.free = append(m.free, region{base: addr, size: size})
	sort.Slice(m.free, func(i, j int) bool { return m.free[i].base < m.free[j].base })
	// Coalesce.
	out := m.free[:1]
	for _, r := range m.free[1:] {
		last := &out[len(out)-1]
		if last.base+last.size == r.base {
			last.size += r.size
		} else {
			out = append(out, r)
		}
	}
	m.free = out
	return nil
}

// FreeBytes reports the total free bytes (for allocator tests and the
// pruning ablation).
func (m *Memory) FreeBytes() int64 {
	var n int64
	for _, r := range m.free {
		n += r.size
	}
	return n
}

// LiveAllocs reports the number of live allocations.
func (m *Memory) LiveAllocs() int { return len(m.allocs) }
