package bench

import (
	"bytes"
	"fmt"

	"nesc/internal/fault"
	"nesc/internal/guest"
	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/slo"
	"nesc/internal/stats"
)

// SLOExp exercises the observability layer end to end: causal request
// attribution, the per-tenant SLO engine, and the anomaly scoreboard.
//
// Three passes run the same paced victim reader on one device, each armed
// with the full layer (attributor + SLO engine + scoreboard):
//
//   - quiet baseline: the victim alone. The budget table and p99 explainer
//     establish what an uncontended profile looks like.
//   - noisy aggressor: a second tenant hammers writes at high depth on the
//     same device. The victim's tail must be blamed on contention — the
//     explainer's dominant segment has to be queue residence (vLBA or pLBA
//     wait), not the medium.
//   - fail-slow pulse: the victim alone again, but a roaming fail-slow
//     pulse degrades the medium through the middle of the run. The
//     explainer must pinpoint the injected component (medium service), and
//     the SLO engine's multi-window burn-rate alert must fire BEFORE the
//     tenant's error budget exhausts — alerts that only arrive after the
//     budget is gone are postmortems, not alerts.
//
// Everything is assertion-checked, and the whole layer reads the virtual
// clock without ever advancing it: the same workload with the layer off is
// byte-identical (TestInstrumentationNeutrality covers that).
func SLOExp(cfg Config) ([]*stats.Table, error) {
	quiet, err := sloPassRun(cfg, false, false)
	if err != nil {
		return nil, fmt.Errorf("slo quiet: %w", err)
	}
	noisy, err := sloPassRun(cfg, true, false)
	if err != nil {
		return nil, fmt.Errorf("slo aggressor: %w", err)
	}
	pulse, err := sloPassRun(cfg, false, true)
	if err != nil {
		return nil, fmt.Errorf("slo pulse: %w", err)
	}

	attr := stats.NewTable("Observability: p99 explainer — where did the victim tenant's tail latency go",
		"phase", "", "reads", "read p50 us", "read p99 us", "median us", "tail us", "dominant share %")
	set := func(row string, r *sloPassResult) {
		attr.Set(row, "reads", float64(r.lat.N()))
		attr.Set(row, "read p50 us", r.lat.Percentile(50))
		attr.Set(row, "read p99 us", r.lat.Percentile(99))
		attr.Set(row, "median us", float64(r.ex.MedianNs)/1000)
		attr.Set(row, "tail us", float64(r.ex.TailNs)/1000)
		attr.Set(row, "dominant share %", 100*r.ex.DominantShare)
	}
	set("quiet baseline", quiet)
	set("noisy aggressor", noisy)
	set("fail-slow pulse", pulse)

	// The explainer must pinpoint the injected cause of each tail, not just
	// report numbers: contention shows up as queue residence, a degraded
	// medium as medium service.
	if d := noisy.ex.Dominant; d != slo.SegmentName(slo.SegQueue) && d != slo.SegmentName(slo.SegDTUWait) {
		return nil, fmt.Errorf("slo: aggressor-phase tail blamed on %q; want queue_wait or dtu_wait", d)
	}
	if d := pulse.ex.Dominant; d != slo.SegmentName(slo.SegMedium) {
		return nil, fmt.Errorf("slo: pulse-phase tail blamed on %q; want medium", d)
	}
	attr.Note(fmt.Sprintf("explainer verdicts: quiet=%q, aggressor=%q (+%dus vs median), pulse=%q (+%dus vs median)",
		quiet.ex.Dominant, noisy.ex.Dominant, noisy.ex.DominantDeltaNs/1000, pulse.ex.Dominant, pulse.ex.DominantDeltaNs/1000))
	attr.Note(fmt.Sprintf("tail request ids for flight cross-links: aggressor=%v pulse=%v", noisy.ex.TailReqIDs, pulse.ex.TailReqIDs))

	burn := stats.NewTable("Observability: per-tenant SLO engine through the fail-slow pulse (victim VF)",
		"phase", "", "good", "bad", "budget used %", "alerts", "first alert us", "exhausted us", "events")
	setB := func(row string, r *sloPassResult) {
		burn.Set(row, "good", float64(r.st.Good))
		burn.Set(row, "bad", float64(r.st.Bad))
		burn.Set(row, "budget used %", 100*r.st.BudgetConsumed)
		burn.Set(row, "alerts", float64(r.st.Alerts))
		burn.Set(row, "first alert us", float64(r.st.FirstAlertAt)/1000)
		burn.Set(row, "exhausted us", float64(r.st.ExhaustedAt)/1000)
		burn.Set(row, "events", float64(r.events))
	}
	setB("quiet baseline", quiet)
	setB("noisy aggressor", noisy)
	setB("fail-slow pulse", pulse)

	if quiet.st.Alerts != 0 {
		return nil, fmt.Errorf("slo: quiet baseline fired %d burn alerts; want 0", quiet.st.Alerts)
	}
	if pulse.st.Alerts == 0 {
		return nil, fmt.Errorf("slo: fail-slow pulse fired no burn-rate alert")
	}
	if pulse.st.ExhaustedAt > 0 && pulse.st.FirstAlertAt >= pulse.st.ExhaustedAt {
		return nil, fmt.Errorf("slo: alert at %v did not precede budget exhaustion at %v",
			pulse.st.FirstAlertAt, pulse.st.ExhaustedAt)
	}
	if pulse.burnEvents == 0 {
		return nil, fmt.Errorf("slo: no slo-burn events on the scoreboard")
	}
	if pulse.lost != 0 || noisy.lost != 0 || quiet.lost != 0 {
		return nil, fmt.Errorf("slo: corrupted reads (quiet %d, noisy %d, pulse %d)", quiet.lost, noisy.lost, pulse.lost)
	}
	exh := "never exhausted"
	if pulse.st.ExhaustedAt > 0 {
		exh = fmt.Sprintf("exhausted at %dus", int64(pulse.st.ExhaustedAt)/1000)
	}
	burn.Note(fmt.Sprintf("pulse pass: first burn alert at %dus, budget %s — the alert led the damage",
		int64(pulse.st.FirstAlertAt)/1000, exh))
	burn.Note(fmt.Sprintf("scoreboard (pulse pass): %d events total, %d slo-burn; every event carries the request id the flight recorder indexes by",
		pulse.events, pulse.burnEvents))
	return []*stats.Table{attr, burn}, nil
}

// sloPassResult is one pass's harvest.
type sloPassResult struct {
	lat        *stats.Sampler
	ex         slo.Explanation
	st         slo.Status
	events     int64
	burnEvents int64
	lost       int
}

// sloPassRun runs one paced victim reader on a single device, optionally
// with an aggressor tenant or a mid-run fail-slow pulse, and harvests the
// victim's attribution explanation, SLO status, and scoreboard counts.
func sloPassRun(cfg Config, aggressor, pulse bool) (*sloPassResult, error) {
	cfg.Fault = &fault.Plan{Seed: 23}
	board := slo.NewScoreboard(512)
	// Objective tuning: healthy paced reads finish in tens of µs, a
	// fail-slow read costs ~300µs extra — so a 250µs latency target cleanly
	// separates them. The windows are sized in degraded-read units: a
	// chronically slow medium yields ~3 completions per ms, so the 1.2ms
	// short window holds MinSamples during an incident while the 4ms long
	// window refuses to fire on a single straggler.
	engine := slo.NewEngine(slo.Objective{
		Latency:       250 * sim.Microsecond,
		Goal:          0.90,
		ShortWindow:   1200 * sim.Microsecond,
		LongWindow:    4 * sim.Millisecond,
		BurnThreshold: 3,
		MinSamples:    4,
	}, board)
	attrib := slo.NewAttributor(4096)
	cfg.Attrib, cfg.SLOEng, cfg.Board = attrib, engine, board
	pl := NewPlatform(cfg)
	res := &sloPassResult{lat: &stats.Sampler{}}
	var victimFn int
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		const fileBlocks = 1024
		if err := pl.Hyp.Device(0).MkImage(p, "/victim.img", 1, fileBlocks, false); err != nil {
			return err
		}
		victim, err := pl.Hyp.NewVM(p, "victim", hypervisor.VMConfig{
			Backend: hypervisor.BackendDirect, DiskPath: "/victim.img", UID: 1, Guest: pl.Cfg.Guest,
		})
		if err != nil {
			return err
		}
		victimFn = victim.VFIdx + 1 // function index: 0 = PF, VF idx + 1
		var agg *hypervisor.VM
		if aggressor {
			if err := pl.Hyp.Device(0).MkImage(p, "/agg.img", 2, fileBlocks, false); err != nil {
				return err
			}
			if agg, err = pl.Hyp.NewVM(p, "agg", hypervisor.VMConfig{
				Backend: hypervisor.BackendDirect, DiskPath: "/agg.img", UID: 2, Guest: pl.Cfg.Guest,
			}); err != nil {
				return err
			}
		}
		const slots = 64
		bs := victim.Kernel.Drv.BlockSize()
		stripeBlocks := int64(fabricStripe / bs)
		buf := make([]byte, fabricStripe)
		for s := 0; s < slots; s++ {
			fabricFill(buf, int64(s))
			if err := victim.Kernel.WriteBytes(p, int64(s)*fabricStripe, buf); err != nil {
				return fmt.Errorf("fill %d: %w", s, err)
			}
		}

		stop := false
		aggDone := sim.NewSignal(pl.Eng)
		if aggressor {
			// Concurrent deep writer streams on the aggressor's VF keep the
			// device's shared queues loaded for the whole victim run: each
			// submission moves 4 stripes, so the medium never drains.
			const aggWorkers = 8
			remaining := aggWorkers
			for w := 0; w < aggWorkers; w++ {
				w := w
				addr := pl.Mem.MustAlloc(4*fabricStripe, 64)
				data, err := pl.Mem.Slice(addr, 4*fabricStripe)
				if err != nil {
					return err
				}
				abuf := guest.Buffer{Addr: addr, Data: data}
				pl.Eng.Go(fmt.Sprintf("slo-agg-%d", w), func(q *sim.Proc) {
					defer func() {
						remaining--
						if remaining == 0 {
							aggDone.Fire()
						}
					}()
					for i := 0; !stop; i++ {
						slot := (w*7 + i) % (slots - 3) // 4-stripe burst stays in the file
						fabricFill(abuf.Data, int64(slot))
						if err := agg.Kernel.SubmitAligned(q, true, int64(slot)*stripeBlocks, abuf); err != nil {
							return
						}
					}
				})
			}
		}

		// The victim: paced single-stripe reads, verified bit-exactly. The
		// pacing keeps the quiet baseline's queues empty, so any tail the
		// explainer finds in the other passes is the injected cause.
		const reads = 360
		addr := pl.Mem.MustAlloc(fabricStripe, 64)
		data, err := pl.Mem.Slice(addr, fabricStripe)
		if err != nil {
			return err
		}
		rbuf := guest.Buffer{Addr: addr, Data: data}
		want := make([]byte, fabricStripe)
		for i := 0; i < reads; i++ {
			if pulse && i == 200 {
				// A fail-slow window opens mid-run: the medium still answers,
				// just chronically late — exactly what the explainer must
				// pin on the medium segment and the burn alert must catch
				// before the 200 healthy reads' worth of banked budget runs
				// out.
				pl.Inj.Degrade(fault.Degradation{
					Device: 0, Start: p.Now(), Duration: 8 * sim.Millisecond, Extra: 300 * sim.Microsecond,
				})
			}
			slot := (i * 7) % slots
			start := p.Now()
			if err := victim.Kernel.SubmitAligned(p, false, int64(slot)*stripeBlocks, rbuf); err != nil {
				return fmt.Errorf("victim read %d: %w", i, err)
			}
			res.lat.Add(float64(p.Now()-start) / 1000)
			fabricFill(want, int64(slot))
			if !bytes.Equal(rbuf.Data, want) {
				res.lost++
			}
			p.Sleep(10 * sim.Microsecond)
		}
		stop = true
		if aggressor {
			aggDone.Await(p)
		}
		pl.Inj.ClearDegradations(0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	ex, ok := attrib.Explain(victimFn, "read")
	if !ok {
		return nil, fmt.Errorf("slo: no explanation for victim vf=%d op=read", victimFn)
	}
	res.ex = ex
	for _, st := range engine.Status() {
		if st.VF == victimFn {
			res.st = st
		}
	}
	if res.st.Good+res.st.Bad == 0 {
		return nil, fmt.Errorf("slo: engine tracked no completions for victim vf=%d", victimFn)
	}
	res.events = board.Total()
	res.burnEvents = board.Count(slo.EventSLOBurn)
	return res, nil
}
