package bench

import (
	"fmt"

	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/workload"
)

// Figures 9 and 10 (paper §VII-A): raw virtual-device latency and bandwidth
// versus request size, for full emulation, virtio, a NeSC VF, and the bare
// host (PF) baseline. The NeSC VF is created from a preallocated file on the
// hypervisor's filesystem; virtio and emulation map the PF itself — exactly
// the paper's configurations.

// RawSizes are the request sizes of Figures 9–11 (512 B to 32 KB).
var RawSizes = []int{512, 1024, 2048, 4096, 8192, 16384, 32768}

// ConvergenceSizes extend Figure 10's read panel to the block sizes where
// the paper observes virtio converging with NeSC (≥ 2 MB).
var ConvergenceSizes = []int{64 << 10, 256 << 10, 1 << 20, 2 << 20, 4 << 20}

// SizeLabel renders a byte count the way the paper's axes do.
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1024:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

const rawImageBlocks = 64 * 1024 // 64 MB file behind the NeSC VF

// ddTotal picks a transfer volume that gives stable averages without
// inflating simulation wall time.
func ddTotal(blockBytes int, scale int64) int64 {
	total := int64(blockBytes) * 64 * scale
	const lo, hi = 256 << 10, 4 << 20
	if total < lo {
		return lo
	}
	if total > hi {
		return hi
	}
	return total
}

// rawSweep runs dd at every size on every backend and stores
// metric(result) into per-direction tables.
func rawSweep(cfg Config, sizes []int, backends []string, title, unit string,
	metric func(workload.Result) float64) (read, write *stats.Table, err error) {
	read = stats.NewTable(title+" — read", "block size", unit, backends...)
	write = stats.NewTable(title+" — write", "block size", unit, backends...)
	for _, backend := range backends {
		backend := backend
		pl := NewPlatform(cfg)
		err = pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			tgt, err := pl.rawTarget(p, backend, rawImageBlocks)
			if err != nil {
				return err
			}
			// Warm the data path (ring setup, first-touch costs).
			if _, err := (workload.DD{BlockBytes: 4096, TotalBytes: 64 << 10, Write: true}).Run(p, tgt); err != nil {
				return err
			}
			for _, bs := range sizes {
				for _, wr := range []bool{false, true} {
					dd := workload.DD{BlockBytes: bs, TotalBytes: ddTotal(bs, 1), Write: wr}
					res, err := dd.Run(p, tgt)
					if err != nil {
						return fmt.Errorf("%s bs=%d write=%v: %w", backend, bs, wr, err)
					}
					tbl := read
					if wr {
						tbl = write
					}
					tbl.Set(SizeLabel(bs), backend, metric(res))
				}
			}
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("backend %s: %w", backend, err)
		}
	}
	return read, write, nil
}

// Fig9 regenerates Figure 9: raw access latency (µs) for reads and writes.
func Fig9(cfg Config) ([]*stats.Table, error) {
	read, write, err := rawSweep(cfg, RawSizes, RawBackends,
		"Figure 9: raw access latency", "us",
		func(r workload.Result) float64 { return r.MeanLatencyUs() })
	if err != nil {
		return nil, err
	}
	annotateRatio(read, BackendVirt, BackendNeSC, "virtio/NeSC latency")
	annotateRatio(read, BackendEmul, BackendNeSC, "Emulation/NeSC latency")
	annotateRatio(write, BackendVirt, BackendNeSC, "virtio/NeSC latency")
	annotateRatio(write, BackendEmul, BackendNeSC, "Emulation/NeSC latency")
	return []*stats.Table{read, write}, nil
}

// Fig10 regenerates Figure 10: raw bandwidth (MB/s) for reads and writes,
// plus the large-block convergence study the paper describes in the text.
func Fig10(cfg Config) ([]*stats.Table, error) {
	read, write, err := rawSweep(cfg, RawSizes, RawBackends,
		"Figure 10: raw bandwidth", "MB/s",
		func(r workload.Result) float64 { return r.BandwidthMBps() })
	if err != nil {
		return nil, err
	}
	annotateRatio(read, BackendNeSC, BackendVirt, "NeSC/virtio bandwidth")
	annotateRatio(write, BackendNeSC, BackendVirt, "NeSC/virtio bandwidth")
	annotateRatio(read, BackendNeSC, BackendEmul, "NeSC/Emulation bandwidth")
	annotateRatio(write, BackendNeSC, BackendEmul, "NeSC/Emulation bandwidth")

	conv, _, err := rawSweep(cfg, ConvergenceSizes, []string{BackendVirt, BackendNeSC},
		"Figure 10 (inset): virtio convergence at large blocks", "MB/s",
		func(r workload.Result) float64 { return r.BandwidthMBps() })
	if err != nil {
		return nil, err
	}
	annotateRatio(conv, BackendNeSC, BackendVirt, "NeSC/virtio bandwidth")
	return []*stats.Table{read, write, conv}, nil
}

// annotateRatio appends num/den ratios across the table's rows as a note.
func annotateRatio(t *stats.Table, num, den, label string) {
	s := label + ":"
	for _, x := range t.Rows() {
		nv, ok1 := t.Get(x, num)
		dv, ok2 := t.Get(x, den)
		if !ok1 || !ok2 || dv == 0 {
			continue
		}
		s += fmt.Sprintf(" %s=%.2fx", x, nv/dv)
	}
	t.Note("%s", s)
}
