package bench

import (
	"bytes"
	"fmt"

	"nesc/internal/fabric"
	"nesc/internal/fault"
	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/stats"
)

// Fabric measures the multi-device robustness layer.
//
// The first table is the failover timeline of a 3-way synchronous mirror:
// write latency while all replicas are healthy, while one device is
// kill-latched mid-workload (the mirror fences it after its error
// hysteresis and continues degraded), and after the device returns and the
// background resilver restores redundancy. Every pass verifies its data
// bit-exactly; acknowledged writes must never be lost.
//
// The second table is a live VF migration under write load: bulk copy
// under a CoW snapshot, iterative dirty-region pre-copy, and the bounded
// stop-and-copy pause in which the mirror leg is atomically retargeted.
func Fabric(cfg Config) ([]*stats.Table, error) {
	fo, err := fabricFailover(cfg)
	if err != nil {
		return nil, err
	}
	mig, err := fabricMigration(cfg)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{fo, mig}, nil
}

// fabricStripe is the write unit of both workloads.
const fabricStripe = 4096

func fabricFill(p []byte, seed int64) {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0x243F6A8885A308D3
	for i := range p {
		s = s*6364136223846793005 + 1442695040888963407
		p[i] = byte(s >> 33)
	}
}

func fabricFailover(cfg Config) (*stats.Table, error) {
	tbl := stats.NewTable("Fabric: 3-way mirror failover (kill one device mid-workload, resilver on revive)",
		"phase", "", "writes acked", "mean write us", "lost writes")
	cfg.NumDevices = 3
	cfg.Fault = &fault.Plan{Seed: 7}
	pl := NewPlatform(cfg)
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		const fileBlocks = 1024 // 1 MB image
		for _, d := range pl.Hyp.Devices() {
			if err := d.MkImage(p, "/fab.img", 1, fileBlocks, false); err != nil {
				return err
			}
		}
		vm, err := pl.Hyp.NewMirroredVM(p, "fab", hypervisor.VMConfig{
			Backend: hypervisor.BackendDirect, DiskPath: "/fab.img", UID: 1, Guest: pl.Cfg.Guest,
		}, []int{0, 1, 2}, fabric.Config{
			SuspectThreshold: 2, FailThreshold: 3, RecoverThreshold: 3,
			RegionBlocks: 32, ResilverInterval: 20 * sim.Microsecond,
		})
		if err != nil {
			return err
		}
		const slots = 64
		final := make(map[int64]int64)
		buf := make([]byte, fabricStripe)
		want := make([]byte, fabricStripe)
		got := make([]byte, fabricStripe)
		seedBase := int64(0)
		pass := func(row string, writes int) error {
			var total sim.Time
			for i := 0; i < writes; i++ {
				off := int64(i%slots) * fabricStripe
				seed := seedBase + int64(i)
				fabricFill(buf, seed)
				start := p.Now()
				if err := vm.Kernel.WriteBytes(p, off, buf); err != nil {
					return fmt.Errorf("%s write %d: %w", row, i, err)
				}
				total += p.Now() - start
				final[off] = seed
			}
			seedBase += int64(writes)
			lost := 0
			// Verify in slot order: map-range order would randomize the
			// simulated read sequence and break byte-identical output.
			for s := 0; s < slots; s++ {
				off := int64(s) * fabricStripe
				seed, ok := final[off]
				if !ok {
					continue
				}
				fabricFill(want, seed)
				if err := vm.Kernel.ReadBytes(p, off, got); err != nil || !bytes.Equal(got, want) {
					lost++
				}
			}
			tbl.Set(row, "writes acked", float64(writes))
			tbl.Set(row, "mean write us", float64(total)/float64(writes)/1000)
			tbl.Set(row, "lost writes", float64(lost))
			return nil
		}
		if err := pass("healthy 3/3", 96); err != nil {
			return err
		}
		// Kill device 2 a few stripes into the degraded pass.
		pl.Eng.Go("device-killer", func(kp *sim.Proc) {
			kp.Sleep(100 * sim.Microsecond)
			pl.Inj.KillDevice(2)
		})
		if err := pass("degraded 2/3", 96); err != nil {
			return err
		}
		pl.Inj.ReviveDevice(2)
		pl.Hyp.ReviveDevice(2)
		for i := 0; i < 400; i++ {
			if st := vm.Client.Status(); st[2].State == "healthy" {
				break
			}
			p.Sleep(100 * sim.Microsecond)
		}
		if st := vm.Client.Status(); st[2].State != "healthy" {
			return fmt.Errorf("resilver did not restore device 2: %+v", st)
		}
		if err := pass("rebuilt 3/3", 96); err != nil {
			return err
		}
		fs := pl.Hyp.FabricStatsNow()
		tbl.Note(fmt.Sprintf("failover latency (first error to fenced): %.1f us; degraded writes: %d; write failures: %d",
			float64(fs.LastFailoverLatency)/1000, fs.DegradedWrites, fs.WriteFailures))
		tbl.Note(fmt.Sprintf("resilver copied %d blocks in %d regions and restored full redundancy %d time(s)",
			fs.ResilverBlocks, fs.ResilverRegions, fs.ResilverRestores))
		return nil
	})
	if err != nil {
		return nil, err
	}
	tbl.Note("writes are acknowledged only when every live replica has them; a fenced replica's misses are dirty-tracked and resilvered on revive")
	return tbl, nil
}

func fabricMigration(cfg Config) (*stats.Table, error) {
	tbl := stats.NewTable("Fabric: live VF migration under write load (1 MB image, device 0 to 1)",
		"metric", "", "value")
	cfg.NumDevices = 2
	cfg.Fault = &fault.Plan{Seed: 7}
	pl := NewPlatform(cfg)
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		const fileBlocks = 1024
		if err := pl.Hyp.Device(0).MkImage(p, "/mig.img", 1, fileBlocks, false); err != nil {
			return err
		}
		vm, err := pl.Hyp.NewMirroredVM(p, "mig", hypervisor.VMConfig{
			Backend: hypervisor.BackendDirect, DiskPath: "/mig.img", UID: 1, Guest: pl.Cfg.Guest,
		}, []int{0}, fabric.Config{})
		if err != nil {
			return err
		}
		// A wide write span (192 slots = 12 dirty regions) forces the
		// migration through its iterative pre-copy phase before converging.
		const slots = 192
		final := make(map[int64]int64)
		writerDone := sim.NewSignal(pl.Eng)
		var writerErr error
		pl.Eng.Go("mig-writer", func(wp *sim.Proc) {
			defer writerDone.Fire()
			buf := make([]byte, fabricStripe)
			for i := 0; i < 256; i++ {
				// Stride across the span so consecutive writes land in
				// different migration regions — the worst case for pre-copy.
				off := int64(i*37%slots) * fabricStripe
				seed := int64(i) + 9000
				fabricFill(buf, seed)
				if err := vm.Kernel.WriteBytes(wp, off, buf); err != nil {
					writerErr = fmt.Errorf("writer %d: %w", i, err)
					return
				}
				final[off] = seed
			}
		})
		p.Sleep(150 * sim.Microsecond)
		rep, err := pl.Hyp.MigrateVM(p, vm, 0, 1)
		if err != nil {
			return err
		}
		writerDone.Await(p)
		if writerErr != nil {
			return writerErr
		}
		lost := 0
		want := make([]byte, fabricStripe)
		got := make([]byte, fabricStripe)
		for s := 0; s < slots; s++ {
			off := int64(s) * fabricStripe
			seed, ok := final[off]
			if !ok {
				continue
			}
			fabricFill(want, seed)
			if err := vm.Kernel.ReadBytes(p, off, got); err != nil || !bytes.Equal(got, want) {
				lost++
			}
		}
		tbl.Set("bulk copy blocks", "value", float64(rep.BulkBlocks))
		tbl.Set("pre-copy passes", "value", float64(rep.Passes))
		tbl.Set("pre-copy blocks", "value", float64(rep.PassBlocks))
		tbl.Set("stop-and-copy blocks", "value", float64(rep.PauseBlocks))
		tbl.Set("pause us", "value", float64(rep.Pause)/1000)
		tbl.Set("total us", "value", float64(rep.Total)/1000)
		tbl.Set("lost writes", "value", float64(lost))
		return nil
	})
	if err != nil {
		return nil, err
	}
	tbl.Note("the guest keeps writing throughout; submissions gate only inside the pause window, which covers the final dirty copy and the atomic VF retarget")
	return tbl, nil
}
