package bench

import (
	"fmt"
	"io"

	"nesc/internal/extfs"
	"nesc/internal/guest"
	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/workload"
)

// Backend names used as table columns (paper figure legends).
const (
	BackendHost = "Host"
	BackendNeSC = "NeSC"
	BackendVirt = "virtio"
	BackendEmul = "Emulation"
)

// RawBackends lists the raw-device configurations of Figures 9 and 10.
var RawBackends = []string{BackendEmul, BackendVirt, BackendNeSC, BackendHost}

// VMBackends lists the guest-visible configurations of Figure 12.
var VMBackends = []string{BackendEmul, BackendVirt, BackendNeSC}

func backendKind(name string) hypervisor.BackendKind {
	switch name {
	case BackendNeSC:
		return hypervisor.BackendDirect
	case BackendVirt:
		return hypervisor.BackendVirtio
	case BackendEmul:
		return hypervisor.BackendEmulation
	default:
		panic("bench: no VM backend named " + name)
	}
}

// vmRawTarget is a workload.ByteTarget over a guest kernel's raw virtual
// disk.
type vmRawTarget struct {
	k       *guest.Kernel
	buf     guest.Buffer
	scratch []byte
}

// NewVMRawTarget wraps a guest kernel's block device for raw workloads.
func NewVMRawTarget(k *guest.Kernel) workload.ByteTarget {
	return &vmRawTarget{k: k}
}

func (t *vmRawTarget) ensure(n int) guest.Buffer {
	if len(t.buf.Data) < n {
		t.buf = t.k.AllocBuffer(int64(n))
	}
	return guest.Buffer{Addr: t.buf.Addr, Data: t.buf.Data[:n]}
}

func (t *vmRawTarget) Size() int64 {
	return t.k.Drv.CapacityBlocks() * int64(t.k.Drv.BlockSize())
}

func (t *vmRawTarget) aligned(off int64, n int) bool {
	bs := int64(t.k.Drv.BlockSize())
	return off%bs == 0 && int64(n)%bs == 0
}

func (t *vmRawTarget) ReadAt(p *sim.Proc, off int64, n int) error {
	if t.aligned(off, n) {
		return t.k.SubmitAligned(p, false, off/int64(t.k.Drv.BlockSize()), t.ensure(n))
	}
	if len(t.scratch) < n {
		t.scratch = make([]byte, n)
	}
	return t.k.ReadBytes(p, off, t.scratch[:n])
}

func (t *vmRawTarget) WriteAt(p *sim.Proc, off int64, n int) error {
	if t.aligned(off, n) {
		return t.k.SubmitAligned(p, true, off/int64(t.k.Drv.BlockSize()), t.ensure(n))
	}
	if len(t.scratch) < n {
		t.scratch = make([]byte, n)
	}
	return t.k.WriteBytes(p, off, t.scratch[:n])
}

func (t *vmRawTarget) Sync(*sim.Proc) error { return nil }

// hostRawTarget is the paper's baseline: the hypervisor accessing the PF
// block device directly, no virtualization layer.
type hostRawTarget struct {
	disk    *hypervisor.PFDisk
	bs      int
	scratch []byte
}

// NewHostRawTarget wraps the PF for host-baseline workloads.
func NewHostRawTarget(h *hypervisor.Hypervisor) workload.ByteTarget {
	return &hostRawTarget{disk: h.PFDisk(), bs: h.Ctl.P.BlockSize}
}

func (t *hostRawTarget) Size() int64 {
	return t.disk.NumBlocks() * int64(t.bs)
}

func (t *hostRawTarget) span(off int64, n int) (int64, int) {
	first := off / int64(t.bs)
	last := (off + int64(n) - 1) / int64(t.bs)
	return first, int(last-first+1) * t.bs
}

func (t *hostRawTarget) ReadAt(p *sim.Proc, off int64, n int) error {
	lba, bytes := t.span(off, n)
	if len(t.scratch) < bytes {
		t.scratch = make([]byte, bytes)
	}
	return t.disk.ReadBlocks(p, lba, t.scratch[:bytes])
}

func (t *hostRawTarget) WriteAt(p *sim.Proc, off int64, n int) error {
	lba, bytes := t.span(off, n)
	if len(t.scratch) < bytes {
		t.scratch = make([]byte, bytes)
	}
	// Sub-block writes read-modify-write, as the host block layer would.
	if bytes != n {
		if err := t.disk.ReadBlocks(p, lba, t.scratch[:bytes]); err != nil {
			return err
		}
	}
	return t.disk.WriteBlocks(p, lba, t.scratch[:bytes])
}

func (t *hostRawTarget) Sync(*sim.Proc) error { return nil }

// fileTarget adapts an extfs file (guest or host filesystem alike).
type fileTarget struct {
	f       *extfs.File
	scratch []byte
}

// NewFileTarget wraps an open extfs file for workloads.
func NewFileTarget(f *extfs.File) workload.ByteTarget { return &fileTarget{f: f} }

func (t *fileTarget) buf(n int) []byte {
	if len(t.scratch) < n {
		t.scratch = make([]byte, n)
	}
	return t.scratch[:n]
}

func (t *fileTarget) Size() int64 { return int64(t.f.Size()) }

func (t *fileTarget) ReadAt(p *sim.Proc, off int64, n int) error {
	_, err := t.f.ReadAt(p, t.buf(n), off)
	if err == io.EOF {
		err = nil
	}
	return err
}

func (t *fileTarget) WriteAt(p *sim.Proc, off int64, n int) error {
	_, err := t.f.WriteAt(p, t.buf(n), off)
	return err
}

func (t *fileTarget) Sync(p *sim.Proc) error { return t.f.Sync(p) }

// fsAdapter exposes an extfs instance as a workload.FS under one tenant uid.
type fsAdapter struct {
	fs  *extfs.FS
	uid uint32
}

// NewWorkloadFS adapts an extfs for the file workloads.
func NewWorkloadFS(fs *extfs.FS, uid uint32) workload.FS {
	return &fsAdapter{fs: fs, uid: uid}
}

func (a *fsAdapter) Create(p *sim.Proc, name string) (workload.ByteTarget, error) {
	f, err := a.fs.Create(p, name, a.uid, 0o644)
	if err != nil {
		return nil, err
	}
	return NewFileTarget(f), nil
}

func (a *fsAdapter) Open(p *sim.Proc, name string) (workload.ByteTarget, error) {
	f, err := a.fs.Open(p, name, a.uid, extfs.PermRead|extfs.PermWrite)
	if err != nil {
		return nil, err
	}
	return NewFileTarget(f), nil
}

func (a *fsAdapter) Remove(p *sim.Proc, name string) error {
	return a.fs.Remove(p, name, a.uid)
}

// rawTarget builds the raw-device view for a named backend on pl, creating
// the VM (or nothing, for Host). NeSC maps a preallocated host file as a VF,
// exactly as the paper's raw experiments do; virtio and emulation map the PF
// itself.
func (pl *Platform) rawTarget(p *sim.Proc, backend string, fileBlocks uint64) (workload.ByteTarget, error) {
	switch backend {
	case BackendHost:
		return NewHostRawTarget(pl.Hyp), nil
	case BackendNeSC:
		if err := pl.MkImage(p, "/vfdisk.img", 1, fileBlocks, false); err != nil {
			return nil, err
		}
		vm, err := pl.Hyp.NewVM(p, "raw-nesc", hypervisor.VMConfig{
			Backend: hypervisor.BackendDirect, DiskPath: "/vfdisk.img", UID: 1, Guest: pl.Cfg.Guest,
		})
		if err != nil {
			return nil, err
		}
		return NewVMRawTarget(vm.Kernel), nil
	case BackendVirt, BackendEmul:
		vm, err := pl.Hyp.NewVM(p, "raw-"+backend, hypervisor.VMConfig{
			Backend: backendKind(backend), RawDevice: true, Guest: pl.Cfg.Guest,
		})
		if err != nil {
			return nil, err
		}
		return NewVMRawTarget(vm.Kernel), nil
	default:
		return nil, fmt.Errorf("bench: unknown backend %q", backend)
	}
}
