package bench

import (
	"nesc/internal/hypervisor"
	"nesc/internal/metrics"
	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/trace"
	"nesc/internal/workload"
)

// Spans is the telemetry showcase experiment: it runs a write-then-read
// workload against a sparse image on a directly assigned VF with the metrics
// registry and span recorder attached, then reads the per-stage latency
// histograms back out of the registry. The sparse image makes the write pass
// take hypervisor-serviced translation misses (lazy allocation), the
// interleaved walks populate the BTLB, and the read pass then hits it — so
// one table shows the BTLB-hit / tree-walk / miss latency separation the
// span machinery exists to expose.
func Spans(cfg Config) ([]*stats.Table, error) {
	reg := metrics.New()
	spans := trace.NewSpanRecorder(4096)
	c := cfg
	c.Metrics = reg
	c.Spans = spans
	pl := NewPlatform(c)
	const fileBlocks = 4096 // 4 MB sparse image
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		if err := pl.MkImage(p, "/spans.img", 1, fileBlocks, true); err != nil {
			return err
		}
		vm, err := pl.Hyp.NewVM(p, "spans", hypervisor.VMConfig{
			Backend: hypervisor.BackendDirect, DiskPath: "/spans.img", UID: 1, Guest: pl.Cfg.Guest,
		})
		if err != nil {
			return err
		}
		tgt := NewVMRawTarget(vm.Kernel)
		total := int64(fileBlocks) * int64(pl.Cfg.Core.BlockSize)
		if _, err := (workload.ParallelDD{BlockBytes: 4096, TotalBytes: total, QD: 4, Write: true}).Run(p, tgt); err != nil {
			return err
		}
		_, err = (workload.ParallelDD{BlockBytes: 4096, TotalBytes: total, QD: 4}).Run(p, tgt)
		return err
	})
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("Span-derived per-stage latency (sparse image, 4KB x QD4, write pass then read pass)",
		"stage", "us", "write mean", "write p99", "read mean", "read p99")
	stages := []struct {
		row, family string
	}{
		{"descriptor fetch", "nesc_pipeline_fetch_ns"},
		{"vLBA queue wait", "nesc_pipeline_queue_wait_ns"},
		{"translate (BTLB hit)", "nesc_pipeline_translate_hit_ns"},
		{"translate (tree walk)", "nesc_pipeline_translate_walk_ns"},
		{"translate (hyp. miss)", "nesc_pipeline_translate_miss_ns"},
		{"pLBA queue wait", "nesc_pipeline_dtu_wait_ns"},
		{"DMA transfer", "nesc_pipeline_transfer_ns"},
		{"end-to-end request", "nesc_request_ns"},
	}
	// The workload drives VF 1 on queue 0; read the exact series back.
	for _, st := range stages {
		for _, op := range []string{"write", "read"} {
			h := reg.Histogram(st.family, "", metrics.VFQOp(1, 0, op))
			if h.Count() == 0 {
				continue // e.g. no misses on the read pass
			}
			tbl.Set(st.row, op+" mean", h.Mean()/1000)
			tbl.Set(st.row, op+" p99", h.Quantile(0.99)/1000)
		}
	}
	tbl.Note("the write pass faults every block in through the hypervisor (lazy allocation); the read pass rides the warmed BTLB")
	tbl.Note("p99 cells are log2-histogram estimates (geometric bucket midpoint)")
	return []*stats.Table{tbl}, nil
}
