package bench

import (
	"fmt"

	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/workload"
)

// Snapshot measures the two costs of the copy-on-write snapshot subsystem.
//
// The first table is the write-latency profile around a snapshot: a
// steady-state pass over a preallocated image, then the first pass after
// SnapshotVF — every 4KB write traps on a write-protected extent, and the
// hypervisor's share break (allocate + copy + tree update + BTLB
// invalidation) rides the miss-interrupt round trip — then a re-write pass
// over the now-private blocks, which must match steady state again.
//
// The second table is clone-fanout space amplification: N writable forks of
// one base image cost almost nothing until they diverge, because every
// unmodified block is shared. Physical usage is measured against logical
// capacity before and after each clone dirties a fixed fraction of its disk.
func Snapshot(cfg Config) ([]*stats.Table, error) {
	lat, err := snapshotLatency(cfg)
	if err != nil {
		return nil, err
	}
	amp, err := snapshotFanout(cfg)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{lat, amp}, nil
}

func snapshotLatency(cfg Config) (*stats.Table, error) {
	tbl := stats.NewTable("Snapshot CoW: 4KB write latency around a snapshot (preallocated image)",
		"pass", "", "mean latency us", "p99 latency us", "CoW faults")
	const fileBlocks = 2048 // 2 MB image: 512 writes per pass keeps 'all' runs fast
	pl := NewPlatform(cfg)
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		if err := pl.MkImage(p, "/snap.img", 1, fileBlocks, false); err != nil {
			return err
		}
		vm, err := pl.Hyp.NewVM(p, "vm", hypervisor.VMConfig{
			Backend: hypervisor.BackendDirect, DiskPath: "/snap.img", UID: 1, Guest: pl.Cfg.Guest,
		})
		if err != nil {
			return err
		}
		tgt := NewVMRawTarget(vm.Kernel)
		total := int64(fileBlocks) * int64(pl.Cfg.Core.BlockSize)
		pass := func(row string) error {
			pre := pl.Ctl.CowFaults
			res, err := (workload.DD{BlockBytes: 4096, TotalBytes: total, Write: true}).Run(p, tgt)
			if err != nil {
				return err
			}
			tbl.Set(row, "mean latency us", res.MeanLatencyUs())
			tbl.Set(row, "p99 latency us", res.Lat.Percentile(99))
			tbl.Set(row, "CoW faults", float64(pl.Ctl.CowFaults-pre))
			return nil
		}
		if err := pass("steady state"); err != nil {
			return err
		}
		if err := pl.Hyp.SnapshotVF(p, vm.VFIdx, "/snap.img.0", 1); err != nil {
			return err
		}
		if err := pass("first write after snapshot"); err != nil {
			return err
		}
		return pass("re-write after break")
	})
	if err != nil {
		return nil, err
	}
	tbl.Note("each post-snapshot 4KB write traps on a protected extent; the break is serviced through the miss-interrupt path")
	tbl.Note("the re-write pass is fault-free again; its residual overhead vs steady state is extra tree walks on the break-fragmented extent map")
	return tbl, nil
}

func snapshotFanout(cfg Config) (*stats.Table, error) {
	tbl := stats.NewTable("Snapshot CoW: clone-fanout space amplification (4 MB base, 1/16 divergence per clone)",
		"clones", "", "logical MB", "physical MB", "amplification", "after divergence MB")
	const fileBlocks = 4096 // 4 MB base image
	for _, fanout := range []int{1, 2, 4, 8} {
		fanout := fanout
		pl := NewPlatform(cfg)
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			fs := pl.Hyp.HostFS
			bs := uint64(fs.BlockSize())
			base := fs.FreeBlocks()
			if err := pl.MkImage(p, "/base.img", 1, fileBlocks, false); err != nil {
				return err
			}
			vm, err := pl.Hyp.NewVM(p, "base", hypervisor.VMConfig{
				Backend: hypervisor.BackendDirect, DiskPath: "/base.img", UID: 1, Guest: pl.Cfg.Guest,
			})
			if err != nil {
				return err
			}
			clones := make([]*hypervisor.VM, fanout)
			for i := range clones {
				path := fmt.Sprintf("/clone%d.img", i)
				if _, err := pl.Hyp.CloneToNewVF(p, vm.VFIdx, path, 1); err != nil {
					return err
				}
				cvm, err := pl.Hyp.NewVM(p, path, hypervisor.VMConfig{
					Backend: hypervisor.BackendDirect, DiskPath: path, UID: 1, Guest: pl.Cfg.Guest,
				})
				if err != nil {
					return err
				}
				clones[i] = cvm
			}
			row := fmt.Sprintf("%d", fanout)
			logical := float64((1+fanout)*fileBlocks) * float64(bs) / (1 << 20)
			used := float64(base-fs.FreeBlocks()) * float64(bs) / (1 << 20)
			tbl.Set(row, "logical MB", logical)
			tbl.Set(row, "physical MB", used)
			tbl.Set(row, "amplification", used*(1<<20)/(float64(fileBlocks)*float64(bs)))
			// Each clone dirties a distinct 1/16 of its disk.
			chunk := int64(fileBlocks) * int64(bs) / 16
			for i, cvm := range clones {
				tgt := NewVMRawTarget(cvm.Kernel)
				if _, err := (workload.DD{
					BlockBytes: 4096, TotalBytes: chunk, StartOffset: int64(i) * chunk, Write: true,
				}).Run(p, tgt); err != nil {
					return err
				}
			}
			tbl.Set(row, "after divergence MB", float64(base-fs.FreeBlocks())*float64(bs)/(1<<20))
			return fs.Check(p)
		})
		if err != nil {
			return nil, err
		}
	}
	tbl.Note("physical usage includes each clone's metadata (inode, refcount table); shared data blocks are counted once")
	tbl.Note("amplification = physical usage / one base image; 1 + N forks stay near 1.0x until they diverge")
	return tbl, nil
}
