package bench

import (
	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/workload"
)

// Support entry points for the repository-level benchmark harness
// (bench_test.go) and for tests: single-point versions of the figure
// experiments.

// RawTargetForTest exposes rawTarget for the benchmark harness.
func RawTargetForTest(p *sim.Proc, pl *Platform, backend string) (workload.ByteTarget, error) {
	return pl.rawTarget(p, backend, rawImageBlocks)
}

// Fig2Point runs one Figure-2 bandwidth point (device bandwidth in bytes/s)
// and returns the direct/virtio speedup.
func Fig2Point(deviceBandwidth float64) (float64, error) {
	cfg := DefaultConfig()
	cfg.PCIe.LinkBandwidth = 16e9
	cfg.Core.DTUChannels = 16
	cfg.Core.Walkers = 4
	cfg.Medium.ReadBandwidth = deviceBandwidth
	cfg.Medium.WriteBandwidth = deviceBandwidth
	var bws [2]float64
	kinds := []hypervisor.BackendKind{hypervisor.BackendDirect, hypervisor.BackendVirtio}
	for i, kind := range kinds {
		kind := kind
		pl := NewPlatform(cfg)
		var got float64
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			vm, err := pl.Hyp.NewVM(p, "fig2", hypervisor.VMConfig{
				Backend: kind, RawDevice: true, Guest: pl.Cfg.Guest,
			})
			if err != nil {
				return err
			}
			tgt := NewVMRawTarget(vm.Kernel)
			res, err := (workload.DD{BlockBytes: 256 << 10, TotalBytes: 4 << 20, Write: true}).Run(p, tgt)
			if err != nil {
				return err
			}
			got = res.BandwidthMBps()
			return nil
		})
		if err != nil {
			return 0, err
		}
		bws[i] = got
	}
	return bws[0] / bws[1], nil
}

// AppRuntimeForTest runs one Figure-12 application on one backend and
// returns the simulated runtime in milliseconds.
func AppRuntimeForTest(app, backend string) (float64, error) {
	cfg := DefaultConfig()
	pl := NewPlatform(cfg)
	var ms float64
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		if err := pl.MkImage(p, "/app.img", 1, fig12ImageBlocks, false); err != nil {
			return err
		}
		vm, err := pl.Hyp.NewVM(p, "app", hypervisor.VMConfig{
			Backend: backendKind(backend), DiskPath: "/app.img", UID: 1, Guest: pl.Cfg.Guest,
		})
		if err != nil {
			return err
		}
		gfs, err := vm.Kernel.Mount(p, true, fig12GuestFSParams())
		if err != nil {
			return err
		}
		res, err := runApp(p, app, gfs)
		if err != nil {
			return err
		}
		ms = float64(res.Elapsed) / float64(sim.Millisecond)
		return nil
	})
	return ms, err
}
