package bench

import (
	"fmt"
	"sort"

	"nesc/internal/stats"
)

// Experiment is one regenerable paper artifact (or ablation).
type Experiment struct {
	Name  string
	Title string
	Run   func(cfg Config) ([]*stats.Table, error)
}

var registry = []Experiment{
	{"table1", "Table I: experimental platform", Table1},
	{"table2", "Table II: benchmarks", Table2},
	{"fig2", "Figure 2: direct-assignment speedup over virtio vs device bandwidth", Fig2},
	{"fig9", "Figure 9: raw access latency vs block size", Fig9},
	{"fig10", "Figure 10: raw bandwidth vs block size (+ convergence)", Fig10},
	{"fig11", "Figure 11: filesystem overheads on write latency", Fig11},
	{"fig12", "Figure 12: application speedups (OLTP, Postmark, SysBench)", Fig12},
	{"btlb", "Ablation: BTLB size", AblationBTLB},
	{"walkoverlap", "Ablation: overlapped tree walks", AblationWalkOverlap},
	{"trampoline", "Ablation: trampoline buffers vs IOMMU DMA", AblationTrampoline},
	{"prune", "Ablation: extent-tree pruning and regeneration", AblationPrune},
	{"fairness", "Ablation: round-robin fairness across VFs", AblationFairness},
	{"qos", "Ablation: QoS weights across competing VFs", AblationQoS},
	{"oob", "Ablation: PF out-of-band channel under VF load", AblationOOB},
	{"lazyalloc", "Ablation: lazy allocation (write-miss) cost", AblationLazyAlloc},
	{"mq", "Ablation: multi-queue scaling (queues per VF x queue depth)", AblationMQ},
	{"integrity", "Ablation: guard tags x background scrubber vs raw throughput", AblationIntegrity},
	{"breakdown", "Analysis: latency breakdown inside the NeSC pipeline", Breakdown},
	{"qdepth", "Analysis: queue-depth scaling, NeSC vs virtio", QDepth},
	{"spans", "Analysis: span-derived per-stage latency (BTLB hit vs walk vs miss)", Spans},
	{"snapshot", "Analysis: CoW snapshot cost (first-write fault latency, clone-fanout space)", Snapshot},
	{"fabric", "Robustness: multi-device mirroring, failover, resilver, and live VF migration", Fabric},
	{"scale", "Scaling: massive tenancy via lazy VF core, queue-pair pool, and shadow doorbells", Scale},
	{"grayfail", "Robustness: fail-slow injection, hedged reads, quarantine, deadline + admission control", GrayFail},
	{"slo", "Observability: tail-latency attribution, per-tenant SLO burn alerts, anomaly scoreboard", SLOExp},
}

// extras are regenerable experiments that deliberately stay out of the
// golden 'all' run (results/all_experiments.txt freezes registry output):
// each is reachable by name (nescbench -exp dedup) and ships its own
// checked-in artifact with a dedicated determinism gate in the Makefile.
var extras = []Experiment{
	{"dedup", "Content-addressed tier: dedup ratio, first-touch latency, 8-host golden-image fork", Dedup},
}

// All lists every registered experiment (the golden 'all' set; extras are
// reachable only by name).
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	return out
}

// Names lists experiment names, registry order first, then extras.
func Names() []string {
	var ns []string
	for _, e := range registry {
		ns = append(ns, e.Name)
	}
	for _, e := range extras {
		ns = append(ns, e.Name)
	}
	return ns
}

// ByName finds an experiment, in the golden registry or the extras.
func ByName(name string) (Experiment, error) {
	for _, e := range registry {
		if e.Name == name {
			return e, nil
		}
	}
	for _, e := range extras {
		if e.Name == name {
			return e, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Experiment{}, fmt.Errorf("bench: no experiment %q (known: %v)", name, known)
}
