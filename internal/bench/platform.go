// Package bench is the experiment harness: it assembles complete simulated
// platforms (host memory + PCIe fabric + medium + NeSC controller +
// hypervisor) and regenerates every table and figure of the paper's
// evaluation (§VI–VII), plus the ablations called out in DESIGN.md.
package bench

import (
	"fmt"

	"nesc/internal/blockdev"
	"nesc/internal/cas"
	"nesc/internal/core"
	"nesc/internal/extfs"
	"nesc/internal/fault"
	"nesc/internal/guest"
	"nesc/internal/hostmem"
	"nesc/internal/hypervisor"
	"nesc/internal/metrics"
	"nesc/internal/pcie"
	"nesc/internal/sim"
	"nesc/internal/slo"
	"nesc/internal/trace"
)

// Config fully describes one simulated platform.
type Config struct {
	HostMemBytes int64
	MediumBlocks int64
	Core         core.Params
	Medium       blockdev.MediumParams
	PCIe         pcie.Params
	Hyp          hypervisor.Params
	Guest        guest.Params
	HostFS       extfs.Params
	// NumDevices sizes the NeSC fleet. Zero or one assembles the classic
	// single-device platform, byte-identical to pre-fleet builds. Each
	// extra device gets its own store, medium, and controller (DeviceID set
	// so its pipelines and functions carry a distinguishing name) on the
	// same PCIe fabric, managed by the one hypervisor.
	NumDevices int
	// Fault, when set, arms a seeded fault injector across the medium, the
	// PCIe fabric, and the hypervisor's miss-service path.
	Fault *fault.Plan
	// CAS enables the content-addressed block tier: a fleet-shared
	// refcounted chunk store (simulated remote object tier) with per-device
	// LRU chunk caches, reached through SealImage / ForkImage and the
	// MissReasonFetch materialization path. Off (the default), the platform
	// is byte-identical to pre-cas builds.
	CAS bool
	// CASCacheChunks sizes each device's local chunk cache (0 = default 64).
	CASCacheChunks int
	// SeedStore, when set, backs the medium with an existing store instead of
	// a fresh zeroed one — the surviving durable state of a crashed platform.
	SeedStore *blockdev.Store
	// MountExisting makes Boot mount the host filesystem already on the
	// medium (journal replay included) instead of formatting a new one.
	MountExisting bool
	// Metrics, when set, receives the platform's telemetry: the controller's
	// per-stage histograms and counter gauges, the hypervisor's derived
	// gauges, and (under fault injection) the injector totals. Counters
	// accumulate across platforms sharing one registry; gauge closures are
	// replaced, so the last platform built wins the live gauges.
	Metrics *metrics.Registry
	// Spans, when set, records request-scoped spans through the controller
	// pipeline (trace.SpanRecorder; exportable as a Chrome trace).
	Spans *trace.SpanRecorder
	// Attrib, when set, folds every completed request's pipeline time into
	// the per-{vf,op} latency budget table (queue wait / translate / dtu /
	// medium / fabric / retry / admission shares, with a p99 explainer).
	Attrib *slo.Attributor
	// SLOEng, when set, feeds every request completion into the per-tenant
	// SLO engine (error budgets, multi-window burn-rate alerts).
	SLOEng *slo.Engine
	// Board, when set, receives structured anomaly events (SLO burns,
	// quarantines, deadline expirations, admission rejects, detector trips,
	// FLRs) from every layer, cross-linked by request id.
	Board *slo.Scoreboard
}

// DefaultConfig is the calibrated model of the paper's platform (Table I):
// a Xeon host, PCIe gen2 x8, the Virtex-7 NeSC prototype with 1 GB of
// on-board DDR3, QEMU/KVM with 128 MB guests. The medium is sized down to
// 128 MB so experiment suites stay fast; geometry-independent results are
// unaffected.
func DefaultConfig() Config {
	return Config{
		HostMemBytes: 512 << 20,
		MediumBlocks: 128 * 1024, // 128 MB of 1 KB blocks
		Core:         core.DefaultParams(),
		Medium:       blockdev.DefaultMediumParams(),
		PCIe:         pcie.DefaultParams(),
		Hyp:          hypervisor.DefaultParams(),
		Guest:        guest.DefaultParams(),
		HostFS:       extfs.Params{InodeCount: 512, JournalBlocks: 256, Mode: extfs.JournalMetadata},
	}
}

// Platform is one assembled world.
type Platform struct {
	Cfg Config
	Eng *sim.Engine
	Mem *hostmem.Memory
	Fab *pcie.Fabric
	Ctl *core.Controller
	Hyp *hypervisor.Hypervisor
	// Inj is the armed fault injector, nil when Cfg.Fault is unset.
	Inj *fault.Injector
}

// NewPlatform assembles a platform from cfg. It panics on configuration
// errors: the harness treats those as bugs, not runtime conditions.
func NewPlatform(cfg Config) *Platform {
	if cfg.Fault != nil && cfg.Core.MissResendInterval == 0 {
		// Under fault injection a dropped miss MSI would park walkers
		// forever; arm the device's miss-resend timer unless the caller chose
		// a cadence.
		cfg.Core.MissResendInterval = 100 * sim.Microsecond
	}
	eng := sim.NewEngine()
	mem := hostmem.New(cfg.HostMemBytes)
	fab := pcie.New(eng, mem, cfg.PCIe)
	store := cfg.SeedStore
	if store == nil {
		store = blockdev.NewStore(cfg.Core.BlockSize, cfg.MediumBlocks)
	}
	medium := blockdev.NewMedium(eng, store, cfg.Medium)
	ctl, err := core.New(eng, fab, medium, cfg.Core)
	if err != nil {
		panic(err)
	}
	h := hypervisor.New(eng, mem, fab, ctl, cfg.Hyp)
	pl := &Platform{Cfg: cfg, Eng: eng, Mem: mem, Fab: fab, Ctl: ctl, Hyp: h}
	for i := 1; i < cfg.NumDevices; i++ {
		st := blockdev.NewStore(cfg.Core.BlockSize, cfg.MediumBlocks)
		med := blockdev.NewMedium(eng, st, cfg.Medium)
		med.SetDeviceIndex(i)
		params := cfg.Core
		params.DeviceID = i
		c, err := core.New(eng, fab, med, params)
		if err != nil {
			panic(err)
		}
		h.AddDevice(c)
	}
	if cfg.Fault != nil {
		pl.Inj = fault.NewInjector(*cfg.Fault)
		for _, d := range h.Devices() {
			d.Ctl.Medium.SetInjector(pl.Inj)
			d.Ctl.Inj = pl.Inj
		}
		fab.SetInjector(pl.Inj)
		h.SetInjector(pl.Inj)
	}
	if cfg.CAS {
		cc := cfg.CASCacheChunks
		if cc == 0 {
			cc = 64
		}
		h.EnableCAS(cas.NewStore(cas.DefaultParams(cfg.Core.BlockSize), pl.Inj), cc)
	}
	if cfg.Metrics != nil || cfg.Spans != nil {
		ctl.AttachTelemetry(cfg.Metrics, cfg.Spans)
		h.RegisterMetrics(cfg.Metrics)
		pl.registerPlatformMetrics(cfg.Metrics)
	}
	if cfg.Attrib != nil || cfg.SLOEng != nil || cfg.Board != nil {
		for _, d := range h.Devices() {
			d.Ctl.AttachSLO(cfg.Board, cfg.SLOEng, cfg.Attrib)
		}
		h.AttachSLO(cfg.Board, cfg.Attrib)
		if cfg.Metrics != nil {
			cfg.Attrib.AttachMetrics(cfg.Metrics)
			cfg.SLOEng.AttachMetrics(cfg.Metrics)
			cfg.Board.AttachMetrics(cfg.Metrics)
		}
	}
	return pl
}

// registerPlatformMetrics publishes platform-level gauges: medium and fabric
// traffic, plus injector totals when a fault plan is armed.
func (pl *Platform) registerPlatformMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	no := metrics.NoLabels
	reg.GaugeFunc("nesc_medium_read_bytes_total", "bytes read from the medium", no,
		func() float64 { return float64(pl.Ctl.Medium.ReadBytes) })
	reg.GaugeFunc("nesc_medium_write_bytes_total", "bytes written to the medium", no,
		func() float64 { return float64(pl.Ctl.Medium.WriteBytes) })
	reg.GaugeFunc("nesc_medium_guard_errors_total", "medium-level guard-check failures", no,
		func() float64 { return float64(pl.Ctl.Medium.IntegrityErrors) })
	reg.GaugeFunc("nesc_medium_recovery_reads_total", "mirror-recovery reads served by the medium", no,
		func() float64 { return float64(pl.Ctl.Medium.RecoveryReads) })
	reg.GaugeFunc("nesc_fabric_dma_read_bytes_total", "device-initiated PCIe reads", no,
		func() float64 { return float64(pl.Fab.DMAReadBytes) })
	reg.GaugeFunc("nesc_fabric_dma_write_bytes_total", "device-initiated PCIe writes", no,
		func() float64 { return float64(pl.Fab.DMAWriteBytes) })
	reg.GaugeFunc("nesc_fabric_msis_dropped_total", "interrupts lost on the wire", no,
		func() float64 { return float64(pl.Fab.DroppedMSIs) })
	reg.GaugeFunc("nesc_fabric_msis_delayed_total", "interrupts delivered late", no,
		func() float64 { return float64(pl.Fab.DelayedMSIs) })
	if pl.Inj != nil {
		reg.GaugeFunc("nesc_fault_injected_total", "faults injected across all sites", no,
			func() float64 { return float64(pl.Inj.TotalFaults()) })
		reg.GaugeFunc("nesc_fault_corruptions_total", "silent corruptions injected", no,
			func() float64 { return float64(pl.Inj.CorruptionsInjected()) })
		reg.GaugeFunc("nesc_fault_delays_total", "injected delay decisions across all sites", no,
			func() float64 { return float64(pl.Inj.TotalDelays()) })
		reg.GaugeFunc("nesc_fault_degraded_ops_total", "medium ops stretched by a fail-slow degradation", no,
			func() float64 { return float64(pl.Inj.DegradedOps) })
		reg.GaugeFunc("nesc_fault_degraded_ns_total", "total extra nanoseconds injected by degradations", no,
			func() float64 { return float64(pl.Inj.DegradedTime) })
		reg.GaugeFunc("nesc_fault_latent_hits_total", "reads that landed on an armed latent sector", no,
			func() float64 { return float64(pl.Inj.LatentHits) })
		reg.GaugeFunc("nesc_fault_latent_repaired_total", "latent sectors cleared by rewrites or repair", no,
			func() float64 { return float64(pl.Inj.LatentCleared) })
		reg.GaugeFunc("nesc_fault_latent_outstanding", "latent sector faults currently armed", no,
			func() float64 { return float64(pl.Inj.LatentCount()) })
		reg.GaugeFunc("nesc_fault_corrupt_outstanding", "silent corruptions not yet detected or repaired", no,
			func() float64 { return float64(pl.Inj.CorruptCount()) })
	}
}

// Run executes fn as the platform's initial host process, drives the
// simulation to quiescence, and shuts the engine down. It returns an error
// if fn blocked forever (a modeling deadlock).
func (pl *Platform) Run(fn func(p *sim.Proc) error) error {
	var ferr error
	finished := false
	pl.Eng.Go("bench-main", func(p *sim.Proc) {
		ferr = fn(p)
		finished = true
	})
	pl.Eng.Run()
	pl.Eng.Shutdown()
	if !finished {
		return fmt.Errorf("bench: platform main process deadlocked")
	}
	return ferr
}

// Boot formats the host filesystem on the physical function — or, on a
// platform adopting a crashed store (Config.MountExisting), remounts it,
// replaying the journal.
func (pl *Platform) Boot(p *sim.Proc) error {
	return pl.Hyp.Boot(p, !pl.Cfg.MountExisting, pl.Cfg.HostFS)
}

// RunUntil is Run with a power cut: the simulation stops dead at virtual
// time t, in-flight work and all. No error is returned — a "deadlocked" main
// process is exactly what a crash looks like. The medium's Store (and its
// write log, if enabled) is the only state that survives.
func (pl *Platform) RunUntil(t sim.Time, fn func(p *sim.Proc) error) {
	pl.Eng.Go("bench-main", func(p *sim.Proc) { _ = fn(p) })
	pl.Eng.RunUntil(t)
	pl.Eng.Shutdown()
}

// MkImage creates a disk image on the host filesystem, preallocated unless
// sparse is set.
func (pl *Platform) MkImage(p *sim.Proc, path string, uid uint32, blocks uint64, sparse bool) error {
	f, err := pl.Hyp.HostFS.Create(p, path, uid, 0o600)
	if err != nil {
		return err
	}
	if err := f.Truncate(p, blocks*uint64(pl.Cfg.Core.BlockSize)); err != nil {
		return err
	}
	if sparse {
		return nil
	}
	return pl.Hyp.HostFS.AllocateRange(p, path, 0, blocks)
}
