package bench

import (
	"fmt"
	"strings"

	"nesc/internal/stats"
)

// Table I and Table II of the paper are descriptive; here they document the
// simulated platform's configuration and the implemented benchmark suite so
// every run records exactly what produced its numbers.

// Table1 renders the experimental-platform table (paper Table I) for the
// given configuration.
func Table1(cfg Config) ([]*stats.Table, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table I: experimental platform (simulated) ==\n")
	fmt.Fprintf(&b, "Host machine (simulated equivalents of the paper's Supermicro X9DRG-QF)\n")
	fmt.Fprintf(&b, "  Host memory               %d MB\n", cfg.HostMemBytes>>20)
	fmt.Fprintf(&b, "  Host I/O                  PCIe, %.1f GB/s per direction, MMIO read %v, DMA request %v\n",
		cfg.PCIe.LinkBandwidth/1e9, cfg.PCIe.MMIOReadLatency, cfg.PCIe.DMARequestLatency)
	fmt.Fprintf(&b, "Virtualized system (QEMU/KVM-style cost model)\n")
	fmt.Fprintf(&b, "  vmexit/vmenter            %v / %v\n", cfg.Hyp.VMExitTime, cfg.Hyp.VMEnterTime)
	fmt.Fprintf(&b, "  interrupt injection       %v\n", cfg.Hyp.InjectTime)
	fmt.Fprintf(&b, "  virtio backend wake/proc  %v / %v\n", cfg.Hyp.BackendWakeTime, cfg.Hyp.BackendProcessTime)
	fmt.Fprintf(&b, "  emulation trap/command    %v / %v\n", cfg.Hyp.EmulTrapTime, cfg.Hyp.EmulCmdProcessTime)
	fmt.Fprintf(&b, "  host stack per request    %v (guest: %v)\n", cfg.Hyp.HostStackTime, cfg.Guest.StackTime)
	fmt.Fprintf(&b, "  IOMMU                     %v (trampoline buffers when false, as the prototype)\n", cfg.Hyp.UseIOMMU)
	fmt.Fprintf(&b, "Prototyping platform (simulated equivalents of the VC707/Virtex-7 board)\n")
	fmt.Fprintf(&b, "  medium                    %d MB, read %.0f MB/s + %v, write %.0f MB/s + %v\n",
		cfg.MediumBlocks*int64(cfg.Core.BlockSize)>>20,
		cfg.Medium.ReadBandwidth/1e6, cfg.Medium.ReadLatency,
		cfg.Medium.WriteBandwidth/1e6, cfg.Medium.WriteLatency)
	fmt.Fprintf(&b, "  NeSC controller           %d VFs, %d B blocks, BTLB %d entries, %d overlapped walks, %d DMA channels\n",
		cfg.Core.NumVFs, cfg.Core.BlockSize, cfg.Core.BTLBEntries, cfg.Core.Walkers, cfg.Core.DTUChannels)
	fmt.Fprintf(&b, "  extent tree fanout        %d (node = %d bytes)\n", cfg.Core.TreeFanout, 8+24*cfg.Core.TreeFanout)
	fmt.Fprintf(&b, "  host filesystem           extent-based, journal=%v\n", cfg.HostFS.Mode)

	t := stats.NewTable("Table I: experimental platform", "", "")
	t.Note("%s", b.String())
	return []*stats.Table{t}, nil
}

// Table2 renders the benchmark inventory (paper Table II).
func Table2(Config) ([]*stats.Table, error) {
	t := stats.NewTable("Table II: benchmarks", "benchmark", "", "kind")
	t.Note("dd        | microbenchmark  | read/write files using different operational parameters (Figs. 2, 9, 10, 11)")
	t.Note("SysBench  | macrobenchmark  | a sequence of random file operations (Fig. 12)")
	t.Note("Postmark  | macrobenchmark  | mail server simulation (Fig. 12)")
	t.Note("OLTP      | macrobenchmark  | relational database server serving the SysBench OLTP workload (Fig. 12)")
	t.Note("all four run unmodified against every backend: NeSC VF, virtio, emulation, bare host")
	return []*stats.Table{t}, nil
}
