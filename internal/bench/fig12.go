package bench

import (
	"fmt"

	"nesc/internal/extfs"
	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/workload"
)

// Figure 12 (paper §VII-B): application-level speedups. Each application
// runs in a guest whose virtual disk is an image file on the hypervisor's
// filesystem ("the virtual storage device is stored as an image file ...
// and the hypervisor maps the file to the VM using either of the mapping
// facilities: virtio, emulation or a VF"), with a guest extent filesystem
// inside. Figure 12a reports NeSC's speedup over emulation, 12b over virtio.

// Fig12Apps are the applications of Table II (dd is covered by Figs. 9–10).
var Fig12Apps = []string{"OLTP", "Postmark", "SysBench"}

const fig12ImageBlocks = 80 * 1024 // 80 MB guest disk image

// fig12GuestFSParams is the guest filesystem configuration of the
// application experiments.
func fig12GuestFSParams() extfs.Params {
	return extfs.Params{InodeCount: 1024, JournalBlocks: 128, Mode: extfs.JournalMetadata}
}

func runApp(p *sim.Proc, app string, gfs *extfs.FS) (workload.Result, error) {
	wfs := NewWorkloadFS(gfs, 0)
	switch app {
	case "OLTP":
		return workload.OLTP{
			Rows:         20000,
			Transactions: 150,
			Seed:         1,
		}.Run(p, wfs)
	case "Postmark":
		return workload.Postmark{
			InitialFiles:   100,
			Transactions:   300,
			TransactionCPU: 100 * sim.Microsecond,
			Seed:           2,
		}.Run(p, wfs)
	case "SysBench":
		sb := workload.SysbenchIO{FileBytes: 16 << 20, Ops: 400, Seed: 3}
		f, err := sb.Prepare(p, wfs, "/sysbench.dat")
		if err != nil {
			return workload.Result{}, err
		}
		return sb.Run(p, f)
	default:
		return workload.Result{}, fmt.Errorf("bench: unknown app %q", app)
	}
}

// Fig12 regenerates Figures 12a and 12b plus the absolute runtimes.
func Fig12(cfg Config) ([]*stats.Table, error) {
	elapsed := map[string]map[string]sim.Time{} // app -> backend -> runtime
	for _, app := range Fig12Apps {
		elapsed[app] = map[string]sim.Time{}
	}
	for _, backend := range VMBackends {
		backend := backend
		for _, app := range Fig12Apps {
			app := app
			pl := NewPlatform(cfg)
			err := pl.Run(func(p *sim.Proc) error {
				if err := pl.Boot(p); err != nil {
					return err
				}
				if err := pl.MkImage(p, "/app.img", 1, fig12ImageBlocks, false); err != nil {
					return err
				}
				vm, err := pl.Hyp.NewVM(p, "app", hypervisor.VMConfig{
					Backend: backendKind(backend), DiskPath: "/app.img", UID: 1, Guest: pl.Cfg.Guest,
				})
				if err != nil {
					return err
				}
				gfs, err := vm.Kernel.Mount(p, true, fig12GuestFSParams())
				if err != nil {
					return err
				}
				res, err := runApp(p, app, gfs)
				if err != nil {
					return err
				}
				elapsed[app][backend] = res.Elapsed
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig12 %s on %s: %w", app, backend, err)
			}
		}
	}

	abs := stats.NewTable("Figure 12 (underlying data): application runtime", "application", "ms", VMBackends...)
	a := stats.NewTable("Figure 12a: application speedup of NeSC over device emulation", "application", "x", "Speedup")
	b := stats.NewTable("Figure 12b: application speedup of NeSC over virtio", "application", "x", "Speedup")
	for _, app := range Fig12Apps {
		for _, backend := range VMBackends {
			abs.Set(app, backend, float64(elapsed[app][backend])/float64(sim.Millisecond))
		}
		nesc := float64(elapsed[app][BackendNeSC])
		if nesc > 0 {
			a.Set(app, "Speedup", float64(elapsed[app][BackendEmul])/nesc)
			b.Set(app, "Speedup", float64(elapsed[app][BackendVirt])/nesc)
		}
	}
	a.Note("runtime ratio emulation/NeSC; >1 means NeSC is faster")
	b.Note("runtime ratio virtio/NeSC; >1 means NeSC is faster")
	return []*stats.Table{a, b, abs}, nil
}
