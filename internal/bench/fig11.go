package bench

import (
	"fmt"

	"nesc/internal/extfs"
	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/workload"
)

// Figure 11 (paper §VII-A "Filesystem overheads"): write latency observed by
// the guest when writing the raw virtual device versus writing a file on an
// extent filesystem mounted on that device, for virtio and NeSC. The paper's
// observation: the filesystem adds a roughly constant ~40 µs to NeSC but
// ~170 µs to virtio, because each filesystem-induced device access costs a
// full virtualization round trip on virtio.

// Fig11 regenerates the figure. Only writes are measured, "since writes may
// require the VF to request extent allocations from the OS's filesystem".
func Fig11(cfg Config) ([]*stats.Table, error) {
	cols := []string{"virtio - FS", "virtio - raw", "NeSC - FS", "NeSC - raw"}
	tbl := stats.NewTable("Figure 11: filesystem overheads (write latency)", "block size", "us", cols...)

	type setup struct {
		column  string
		backend string
		withFS  bool
	}
	setups := []setup{
		{"virtio - raw", BackendVirt, false},
		{"virtio - FS", BackendVirt, true},
		{"NeSC - raw", BackendNeSC, false},
		{"NeSC - FS", BackendNeSC, true},
	}
	for _, s := range setups {
		s := s
		pl := NewPlatform(cfg)
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			var tgt workload.ByteTarget
			if !s.withFS {
				var err error
				tgt, err = pl.rawTarget(p, s.backend, rawImageBlocks)
				if err != nil {
					return err
				}
			} else {
				// Guest filesystem on the virtual device. dd writes a fresh
				// output file, so every write extends it: block allocation
				// and inode updates ride on each request — the filesystem
				// work whose device accesses the figure prices. The guest
				// journal is off, matching ext4's batched (not per-write)
				// journal commits at this timescale.
				var vm *hypervisor.VM
				var err error
				if s.backend == BackendNeSC {
					if err := pl.MkImage(p, "/fs-nesc.img", 1, rawImageBlocks, false); err != nil {
						return err
					}
					vm, err = pl.Hyp.NewVM(p, "fs-nesc", hypervisor.VMConfig{
						Backend: hypervisor.BackendDirect, DiskPath: "/fs-nesc.img", UID: 1, Guest: pl.Cfg.Guest,
					})
				} else {
					vm, err = pl.Hyp.NewVM(p, "fs-virtio", hypervisor.VMConfig{
						Backend: hypervisor.BackendVirtio, RawDevice: true, Guest: pl.Cfg.Guest,
					})
				}
				if err != nil {
					return err
				}
				gfs, err := vm.Kernel.Mount(p, true, extfs.Params{
					InodeCount: 64, JournalBlocks: 32, Mode: extfs.JournalNone,
				})
				if err != nil {
					return err
				}
				// Fresh output file per block size, written append-style.
				for _, bs := range RawSizes {
					f, err := gfs.Create(p, fmt.Sprintf("/dd-%d.out", bs), 0, 0o644)
					if err != nil {
						return err
					}
					ft := NewFileTarget(f)
					dd := workload.DD{BlockBytes: bs, TotalBytes: ddTotal(bs, 1), Write: true}
					// Size the file so sequential appends stay in range.
					if err := f.Truncate(p, 0); err != nil {
						return err
					}
					res, err := runAppendDD(p, ft, dd)
					if err != nil {
						return fmt.Errorf("%s bs=%d: %w", s.column, bs, err)
					}
					tbl.Set(SizeLabel(bs), s.column, res.MeanLatencyUs())
				}
				return nil
			}
			// Raw device: warm up, then measure in place.
			if _, err := (workload.DD{BlockBytes: 4096, TotalBytes: 128 << 10, Write: true}).Run(p, tgt); err != nil {
				return err
			}
			for _, bs := range RawSizes {
				dd := workload.DD{BlockBytes: bs, TotalBytes: ddTotal(bs, 1), Write: true}
				res, err := dd.Run(p, tgt)
				if err != nil {
					return fmt.Errorf("%s bs=%d: %w", s.column, bs, err)
				}
				tbl.Set(SizeLabel(bs), s.column, res.MeanLatencyUs())
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("setup %s: %w", s.column, err)
		}
	}
	// The paper's headline deltas.
	noteDelta := func(fsCol, rawCol, label string) {
		s := label + ":"
		for _, x := range tbl.Rows() {
			fv, ok1 := tbl.Get(x, fsCol)
			rv, ok2 := tbl.Get(x, rawCol)
			if ok1 && ok2 {
				s += fmt.Sprintf(" %s=+%.1fus", x, fv-rv)
			}
		}
		tbl.Note("%s", s)
	}
	noteDelta("NeSC - FS", "NeSC - raw", "filesystem cost on NeSC")
	noteDelta("virtio - FS", "virtio - raw", "filesystem cost on virtio")
	annotateRatio(tbl, "virtio - FS", "NeSC - FS", "virtio-FS/NeSC-FS")
	return []*stats.Table{tbl}, nil
}

// runAppendDD performs sequential appending writes (dd creating a new
// output file), timing each write like workload.DD does.
func runAppendDD(p *sim.Proc, ft workload.ByteTarget, dd workload.DD) (workload.Result, error) {
	res := workload.Result{Name: fmt.Sprintf("dd-append bs=%d", dd.BlockBytes)}
	count := dd.TotalBytes / int64(dd.BlockBytes)
	start := p.Now()
	for i := int64(0); i < count; i++ {
		opStart := p.Now()
		if err := ft.WriteAt(p, i*int64(dd.BlockBytes), dd.BlockBytes); err != nil {
			return res, err
		}
		res.Ops++
		res.Bytes += int64(dd.BlockBytes)
		res.Lat.Add((p.Now() - opStart).Micros())
	}
	res.Elapsed = p.Now() - start
	return res, nil
}
