package bench

import (
	"fmt"

	"nesc/internal/guest"
	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/workload"
)

// mqRingEntries fixes the per-queue ring depth for the sweep. Kept small on
// purpose: the queue count then bounds the VF's device-visible parallelism
// (queues x entries inflight slots), which is the trade-off this ablation
// measures. With the 128-entry default a single queue already holds every
// outstanding request at QD 32 and all columns collapse.
const mqRingEntries = 2

// mqDepths are the queue depths each sweep visits.
var mqDepths = []int{1, 4, 16, 32}

// AblationMQ sweeps queue pairs per VF against queue depth on the
// direct-assigned NeSC backend. One queue serializes the guest at the ring:
// at high QD every submitter contends for the same few descriptor slots.
// With multiple queue pairs the driver spreads submitters across rings, the
// device fetch stage round-robins over them underneath the inter-VF DRR
// multiplexer, and throughput rides queue depth to the medium's limit.
//
// The scaling sweep steers with PolicyLeastOccupied so the columns isolate
// the queue-count effect; a second table compares the two steering policies
// at a fixed queue count, where the static hash's placement imbalance at
// moderate depths becomes visible.
func AblationMQ(cfg Config) ([]*stats.Table, error) {
	queueCounts := []int{1, 2, 4, 8}
	var cols []string
	for _, q := range queueCounts {
		cols = append(cols, fmt.Sprintf("q=%d", q))
	}
	scale := stats.NewTable("Multi-queue scaling (4KB writes, direct VF)", "QD", "MB/s", cols...)
	for _, queues := range queueCounts {
		col := fmt.Sprintf("q=%d", queues)
		served, err := mqSweep(cfg, queues, guest.PolicyLeastOccupied, func(qd int, mbps float64) {
			scale.Set(fmt.Sprintf("%d", qd), col, mbps)
		})
		if err != nil {
			return nil, err
		}
		scale.Note("q=%d per-queue requests served: %v", queues, served)
	}
	scale.Note("per-queue rings fixed at %d entries; columns are queue pairs per VF (least-occupied steering)", mqRingEntries)
	scale.Note("fetch stage round-robins a function's queues under the inter-VF DRR mux")

	policies := []guest.Policy{guest.PolicyHash, guest.PolicyLeastOccupied}
	var pcols []string
	for _, pol := range policies {
		pcols = append(pcols, pol.String())
	}
	const polQueues = 4
	pol := stats.NewTable(fmt.Sprintf("Queue steering policy (q=%d, 4KB writes)", polQueues), "QD", "MB/s", pcols...)
	for _, policy := range policies {
		col := policy.String()
		if _, err := mqSweep(cfg, polQueues, policy, func(qd int, mbps float64) {
			pol.Set(fmt.Sprintf("%d", qd), col, mbps)
		}); err != nil {
			return nil, err
		}
	}
	pol.Note("static hash can land several submitters on one ring at moderate depths; least-occupied tracks free slots")
	return []*stats.Table{scale, pol}, nil
}

// mqSweep runs the queue-depth sweep on one platform with the given queue
// count and steering policy, reporting per-depth bandwidth through set and
// returning the per-queue request counts the device served.
func mqSweep(cfg Config, queues int, policy guest.Policy, set func(qd int, mbps float64)) ([]int64, error) {
	qcfg := cfg
	qcfg.Core.QueuesPerVF = queues
	pl := NewPlatform(qcfg)
	var served []int64
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		if err := pl.MkImage(p, "/vfdisk.img", 1, rawImageBlocks, false); err != nil {
			return err
		}
		vm, err := pl.Hyp.NewVM(p, "mq", hypervisor.VMConfig{
			Backend: hypervisor.BackendDirect, DiskPath: "/vfdisk.img", UID: 1,
			Guest: pl.Cfg.Guest, VFRingEntries: mqRingEntries, VFQueuePolicy: policy,
		})
		if err != nil {
			return err
		}
		tgt := NewVMRawTarget(vm.Kernel)
		for _, qd := range mqDepths {
			res, err := (workload.ParallelDD{BlockBytes: 4096, TotalBytes: 4 << 20, QD: qd, Write: true}).Run(p, tgt)
			if err != nil {
				return err
			}
			set(qd, res.BandwidthMBps())
		}
		vf := pl.Ctl.VF(0)
		for q := 0; q < queues; q++ {
			served = append(served, vf.QueueReqs(q))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("mq q=%d %v: %w", queues, policy, err)
	}
	return served, nil
}
