package bench

import (
	"fmt"
	"sort"

	"nesc/internal/guest"
	"nesc/internal/ring"
	"nesc/internal/sim"
	"nesc/internal/stats"
)

// Scale is the massive-tenancy experiment: it demonstrates that the lazy
// sharded VF table, the device-wide queue-pair pool, and the active-VF work
// lists make the platform O(active tenants), not O(configured VFs).
//
// Two sweeps:
//
//   - Configured sweep: NumVFs 16 → 1024 with a fixed set of 8 active raw
//     VFs. Per-op latency and memory must stay flat — a thousand configured
//     but idle VFs cost nothing, because no state exists until a VF is
//     touched and idle VFs never enter the schedulers' active lists.
//   - Active sweep at NumVFs=1024: 16 → 1024 tenants actually submitting.
//     Memory grows with the active count (sub-linear in the configured
//     count), and Jain's fairness index over per-VF blocks served stays at
//     1.0 — the DRR multiplexer does not degrade at three orders of
//     magnitude more tenants than the prototype ran.
//
// Every active VF runs shadow doorbells: a burst of concurrent submitters
// publishes producer indexes in the shared shadow block, and only the first
// submission of a batch pays the doorbell MMIO (the device picks the rest up
// via shadowFollow). The skipped-doorbell and shadow-batch counters in the
// notes prove the path exercised.
const (
	scaleRingEntries = 8 // per-VF ring slots (bounds the submit burst)
	scaleBurst       = 4 // concurrent submitters per VF
	scaleOpsPerProc  = 4 // sequential 4KB writes per submitter
	scaleFixedActive = 8 // active VFs in the configured sweep
)

// Scale runs both sweeps.
func Scale(cfg Config) ([]*stats.Table, error) {
	cols := []string{"p50 us/op", "device KB", "host KB", "Jain", "VFs built", "db skipped", "batches"}
	conf := stats.NewTable(
		fmt.Sprintf("Massive tenancy: configured-VF sweep (%d active raw VFs, shadow doorbells, 4KB writes)", scaleFixedActive),
		"NumVFs", "", cols...)
	for _, v := range []int{16, 64, 256, 1024} {
		r, err := scaleRun(cfg, v, scaleFixedActive)
		if err != nil {
			return nil, err
		}
		r.fill(conf, fmt.Sprintf("%d", v))
	}
	conf.Note("per-op p50 and both memory columns must be flat: configured-but-idle VFs are never materialized")
	conf.Note("device KB is the controller's modeled state footprint; host KB is live host-memory allocations")

	act := stats.NewTable(
		"Massive tenancy: active-VF sweep at NumVFs=1024 (shadow doorbells, 4KB writes)",
		"active", "", cols...)
	for _, a := range []int{16, 256, 1024} {
		r, err := scaleRun(cfg, 1024, a)
		if err != nil {
			return nil, err
		}
		r.fill(act, fmt.Sprintf("%d", a))
	}
	act.Note("memory scales with active tenants, not the 1024 configured; Jain fairness holds at full load")
	act.Note("db skipped counts doorbell MMIOs elided by shadow batching; batches counts device fetches initiated from the shadow block")
	return []*stats.Table{conf, act}, nil
}

type scaleResult struct {
	p50us      float64
	deviceKB   float64
	hostKB     float64
	jain       float64
	built      int
	dbSkipped  int64
	shadowBats int64
}

func (r scaleResult) fill(t *stats.Table, row string) {
	t.Set(row, "p50 us/op", r.p50us)
	t.Set(row, "device KB", r.deviceKB)
	t.Set(row, "host KB", r.hostKB)
	t.Set(row, "Jain", r.jain)
	t.Set(row, "VFs built", float64(r.built))
	t.Set(row, "db skipped", float64(r.dbSkipped))
	t.Set(row, "batches", float64(r.shadowBats))
}

// scaleRun assembles a platform with numVFs configured, provisions `active`
// raw VFs, and drives a fixed per-VF write burst through shadow-armed ring
// drivers (no VM boot: direct attachment, the accelerator configuration).
func scaleRun(cfg Config, numVFs, active int) (scaleResult, error) {
	cfg.Core.NumVFs = numVFs
	pl := NewPlatform(cfg)
	var lats []sim.Time
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		wg := sim.NewWaitGroup(pl.Eng)
		var firstErr error
		for i := 0; i < active; i++ {
			idx, err := pl.Hyp.CreateRawVF(p)
			if err != nil {
				return err
			}
			mq, err := guest.NewMultiQueue(p, pl.Eng, pl.Mem, pl.Fab,
				pl.Hyp.VFPageBus(idx), 1, scaleRingEntries, pl.Cfg.Hyp.DriverSubmitTime)
			if err != nil {
				return err
			}
			if err := mq.ArmShadow(p); err != nil {
				return err
			}
			pl.Hyp.RouteVFInterrupts(idx, mq)
			// Disjoint LBA stripes keep tenants from touching the same
			// blocks; the identity mapping makes any stripe valid.
			base := uint64(i) * 64
			for b := 0; b < scaleBurst; b++ {
				b := b
				wg.Add(1)
				pl.Eng.Go(fmt.Sprintf("scale-vf%d-%d", idx, b), func(q *sim.Proc) {
					defer wg.Done()
					buf := pl.Mem.MustAlloc(4096, 64)
					for k := 0; k < scaleOpsPerProc; k++ {
						lba := base + uint64(b*scaleOpsPerProc+k)*4
						start := q.Now()
						st, err := mq.Submit(q, ring.OpWrite, lba, 4, buf)
						if err == nil {
							err = guest.StatusError(st)
						}
						if err != nil {
							if firstErr == nil {
								firstErr = err
							}
							return
						}
						lats = append(lats, q.Now()-start)
					}
				})
			}
		}
		wg.WaitFor(p)
		return firstErr
	})
	if err != nil {
		return scaleResult{}, err
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var res scaleResult
	if n := len(lats); n > 0 {
		res.p50us = float64(lats[n/2]) / float64(sim.Microsecond)
	}
	res.deviceKB = float64(pl.Ctl.StateFootprint()) / 1024
	res.hostKB = float64(pl.Mem.AllocBytes) / 1024
	res.jain = pl.Ctl.JainFairness()
	res.built = pl.Ctl.MaterializedVFs()
	res.dbSkipped = pl.Hyp.RecoveryStats().DoorbellsSkipped
	res.shadowBats = pl.Ctl.ShadowBatches
	return res, nil
}
