package bench

import (
	"fmt"

	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/workload"
)

// Ablations isolate the design choices the paper calls out in §V: the BTLB,
// the overlapped block walks, the prototype's trampoline buffers, extent-
// tree pruning, round-robin multiplexing, and the PF's out-of-band channel.

// fragmentedImage creates an image whose extent map is deliberately
// scattered (every other block), maximizing tree depth and BTLB pressure.
func fragmentedImage(p *sim.Proc, pl *Platform, path string, blocks int) error {
	f, err := pl.Hyp.HostFS.Create(p, path, 1, 0o600)
	if err != nil {
		return err
	}
	blk := make([]byte, pl.Cfg.Core.BlockSize)
	for i := 0; i < blocks; i++ {
		if _, err := f.WriteAt(p, blk, int64(i)*2*int64(len(blk))); err != nil {
			return err
		}
	}
	// Trim the trailing hole so the device size matches the mapped span.
	return f.Truncate(p, uint64(blocks)*2*uint64(len(blk)))
}

// AblationBTLB sweeps the BTLB size under the access pattern the paper
// sized it for: several VFs streaming concurrently, so the cache must hold
// "at least the last mapping for each of the last 8 VFs it serviced"
// (§V-B). Below 8 entries the interleaved VFs evict each other's extents;
// at 8 the hit rate saturates.
func AblationBTLB(cfg Config) ([]*stats.Table, error) {
	tbl := stats.NewTable("Ablation: BTLB size (8 VFs streaming concurrently, 4KB reads)",
		"BTLB entries", "", "hit rate", "walk node reads/op", "aggregate MB/s")
	const vms = 8
	for _, entries := range []int{0, 1, 2, 4, 8, 16, 64} {
		entries := entries
		c := cfg
		c.Core.BTLBEntries = entries
		pl := NewPlatform(c)
		var chunks int64
		var aggregate float64
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			wg := sim.NewWaitGroup(pl.Eng)
			var firstErr error
			for i := 0; i < vms; i++ {
				path := fmt.Sprintf("/b%d.img", i)
				if err := pl.MkImage(p, path, uint32(i+1), 4096, false); err != nil {
					return err
				}
				vm, err := pl.Hyp.NewVM(p, path, hypervisor.VMConfig{
					Backend: hypervisor.BackendDirect, DiskPath: path, UID: uint32(i + 1), Guest: pl.Cfg.Guest,
				})
				if err != nil {
					return err
				}
				wg.Add(1)
				pl.Eng.Go("btlb-load", func(q *sim.Proc) {
					defer wg.Done()
					tgt := NewVMRawTarget(vm.Kernel)
					res, err := (workload.DD{BlockBytes: 4096, TotalBytes: 1 << 20}).Run(q, tgt)
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						return
					}
					aggregate += res.BandwidthMBps()
				})
			}
			wg.WaitFor(p)
			chunks = pl.Ctl.ChunksDone
			return firstErr
		})
		if err != nil {
			return nil, err
		}
		row := fmt.Sprintf("%d", entries)
		tbl.Set(row, "hit rate", pl.Ctl.BTLBStats.Rate())
		if chunks > 0 {
			tbl.Set(row, "walk node reads/op", float64(pl.Ctl.WalkNodeReads)/float64(chunks))
		}
		tbl.Set(row, "aggregate MB/s", aggregate)
	}
	tbl.Note("the paper's design point is 8 entries — one resident extent per recently serviced VF")
	return []*stats.Table{tbl}, nil
}

// AblationWalkOverlap sweeps the number of concurrently overlapped walks in
// the translation unit (the paper overlaps two to hide DMA latency).
func AblationWalkOverlap(cfg Config) ([]*stats.Table, error) {
	tbl := stats.NewTable("Ablation: overlapped tree walks (BTLB disabled, random 1KB reads)",
		"walkers", "", "latency us", "bandwidth MB/s")
	for _, walkers := range []int{1, 2, 4} {
		c := cfg
		c.Core.Walkers = walkers
		c.Core.BTLBEntries = 0 // expose the walk path
		pl := NewPlatform(c)
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			if err := fragmentedImage(p, pl, "/frag.img", 1536); err != nil {
				return err
			}
			vm, err := pl.Hyp.NewVM(p, "vm", hypervisor.VMConfig{
				Backend: hypervisor.BackendDirect, DiskPath: "/frag.img", UID: 1, Guest: pl.Cfg.Guest,
			})
			if err != nil {
				return err
			}
			tgt := NewVMRawTarget(vm.Kernel)
			res, err := (workload.DD{BlockBytes: 16384, TotalBytes: 1 << 20, Write: false}).Run(p, tgt)
			if err != nil {
				return err
			}
			row := fmt.Sprintf("%d", walkers)
			tbl.Set(row, "latency us", res.MeanLatencyUs())
			tbl.Set(row, "bandwidth MB/s", res.BandwidthMBps())
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return []*stats.Table{tbl}, nil
}

// AblationTrampoline compares the prototype's trampoline-buffer mode against
// true IOMMU-mapped DMA (paper §VI calls the trampolines a pessimistic
// penalty on the prototype's results).
func AblationTrampoline(cfg Config) ([]*stats.Table, error) {
	tbl := stats.NewTable("Ablation: trampoline buffers (prototype) vs IOMMU DMA (real SR-IOV)",
		"mode", "", "read MB/s", "write MB/s", "512B write us")
	for _, mode := range []string{"trampoline", "iommu"} {
		c := cfg
		c.Hyp.UseIOMMU = mode == "iommu"
		pl := NewPlatform(c)
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			tgt, err := pl.rawTarget(p, BackendNeSC, rawImageBlocks)
			if err != nil {
				return err
			}
			rd, err := (workload.DD{BlockBytes: 32768, TotalBytes: 4 << 20}).Run(p, tgt)
			if err != nil {
				return err
			}
			wr, err := (workload.DD{BlockBytes: 32768, TotalBytes: 4 << 20, Write: true}).Run(p, tgt)
			if err != nil {
				return err
			}
			small, err := (workload.DD{BlockBytes: 512, TotalBytes: 256 << 10, Write: true}).Run(p, tgt)
			if err != nil {
				return err
			}
			tbl.Set(mode, "read MB/s", rd.BandwidthMBps())
			tbl.Set(mode, "write MB/s", wr.BandwidthMBps())
			tbl.Set(mode, "512B write us", small.MeanLatencyUs())
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return []*stats.Table{tbl}, nil
}

// AblationPrune prunes growing fractions of a VF's extent tree and measures
// the read-latency cost of host regeneration against the memory reclaimed.
func AblationPrune(cfg Config) ([]*stats.Table, error) {
	tbl := stats.NewTable("Ablation: extent-tree pruning (random 1KB reads after prune)",
		"nodes pruned", "", "resident KB", "mean latency us", "p99 latency us", "miss interrupts")
	for _, maxNodes := range []int{0, 8, 32, 128, 100000} {
		c := cfg
		pl := NewPlatform(c)
		maxNodes := maxNodes
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			if err := fragmentedImage(p, pl, "/frag.img", 1536); err != nil {
				return err
			}
			vm, err := pl.Hyp.NewVM(p, "vm", hypervisor.VMConfig{
				Backend: hypervisor.BackendDirect, DiskPath: "/frag.img", UID: 1, Guest: pl.Cfg.Guest,
			})
			if err != nil {
				return err
			}
			freed := pl.Hyp.PruneVFTrees(maxNodes)
			resident := pl.Hyp.VFTree(vm.VFIdx).ResidentBytes()
			tgt := NewVMRawTarget(vm.Kernel)
			sb := workload.SysbenchIO{FileBytes: tgt.Size(), Ops: 600, RequestBytes: 1024, ReadRatio: 1, Seed: 9}
			res, err := sb.Run(p, tgt)
			if err != nil {
				return err
			}
			row := fmt.Sprintf("%d", freed)
			tbl.Set(row, "resident KB", float64(resident)/1024)
			tbl.Set(row, "mean latency us", res.MeanLatencyUs())
			tbl.Set(row, "p99 latency us", res.Lat.Percentile(99))
			tbl.Set(row, "miss interrupts", float64(pl.Hyp.MissInterrupts))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	tbl.Note("pruning trades host memory for regeneration interrupts on first touch; the tail (p99) absorbs the cost")
	return []*stats.Table{tbl}, nil
}

// AblationFairness runs 1..8 concurrent VMs hammering their VFs and reports
// the spread of per-VM bandwidth (the round-robin multiplexer should keep it
// tight).
func AblationFairness(cfg Config) ([]*stats.Table, error) {
	tbl := stats.NewTable("Ablation: round-robin fairness across concurrent VFs (32KB writes)",
		"VMs", "", "aggregate MB/s", "min/VM", "max/VM", "max/min")
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		pl := NewPlatform(cfg)
		bws := make([]float64, n)
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			wg := sim.NewWaitGroup(pl.Eng)
			var firstErr error
			for i := 0; i < n; i++ {
				i := i
				path := fmt.Sprintf("/vm%d.img", i)
				if err := pl.MkImage(p, path, uint32(i+1), 8192, false); err != nil {
					return err
				}
				vm, err := pl.Hyp.NewVM(p, path, hypervisor.VMConfig{
					Backend: hypervisor.BackendDirect, DiskPath: path, UID: uint32(i + 1), Guest: pl.Cfg.Guest,
				})
				if err != nil {
					return err
				}
				wg.Add(1)
				pl.Eng.Go("load", func(q *sim.Proc) {
					defer wg.Done()
					tgt := NewVMRawTarget(vm.Kernel)
					res, err := (workload.DD{BlockBytes: 32768, TotalBytes: 2 << 20, Write: true}).Run(q, tgt)
					if err != nil && firstErr == nil {
						firstErr = err
						return
					}
					bws[i] = res.BandwidthMBps()
				})
			}
			wg.WaitFor(p)
			return firstErr
		})
		if err != nil {
			return nil, err
		}
		minB, maxB, sum := bws[0], bws[0], 0.0
		for _, b := range bws {
			if b < minB {
				minB = b
			}
			if b > maxB {
				maxB = b
			}
			sum += b
		}
		row := fmt.Sprintf("%d", n)
		tbl.Set(row, "aggregate MB/s", sum)
		tbl.Set(row, "min/VM", minB)
		tbl.Set(row, "max/VM", maxB)
		if minB > 0 {
			tbl.Set(row, "max/min", maxB/minB)
		}
	}
	return []*stats.Table{tbl}, nil
}

// AblationQoS gives two competing VMs different I/O weights and verifies
// the multiplexer divides device bandwidth accordingly (paper §IV-D:
// "NeSC can be extended to enforce the hypervisor's QoS policy ... by
// supporting different priorities for each VF").
func AblationQoS(cfg Config) ([]*stats.Table, error) {
	tbl := stats.NewTable("Ablation: QoS weights across two competing VFs (32KB writes)",
		"weights (vm0:vm1)", "", "vm0 MB/s", "vm1 MB/s", "achieved ratio")
	for _, weights := range [][2]int{{1, 1}, {2, 1}, {4, 1}, {8, 1}} {
		weights := weights
		pl := NewPlatform(cfg)
		var bws [2]float64
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			// Create both VMs before any load starts, then measure both over
			// the same fixed window of sustained contention.
			var vms [2]*hypervisor.VM
			for i := 0; i < 2; i++ {
				path := fmt.Sprintf("/q%d.img", i)
				if err := pl.MkImage(p, path, uint32(i+1), 16384, false); err != nil {
					return err
				}
				vm, err := pl.Hyp.NewVM(p, path, hypervisor.VMConfig{
					Backend: hypervisor.BackendDirect, DiskPath: path, UID: uint32(i + 1),
					Guest: pl.Cfg.Guest, IOWeight: weights[i],
				})
				if err != nil {
					return err
				}
				vms[i] = vm
			}
			wg := sim.NewWaitGroup(pl.Eng)
			var firstErr error
			var done [2]int64
			stop := false
			for i := 0; i < 2; i++ {
				i := i
				wg.Add(1)
				pl.Eng.Go("qos-load", func(q *sim.Proc) {
					defer wg.Done()
					tgt := NewVMRawTarget(vms[i].Kernel)
					for !stop {
						if _, err := (workload.DD{BlockBytes: 32768, TotalBytes: 256 << 10, Write: true}).Run(q, tgt); err != nil {
							if firstErr == nil {
								firstErr = err
							}
							return
						}
						done[i] += 256 << 10
					}
				})
			}
			const warmup, window = 2 * sim.Millisecond, 10 * sim.Millisecond
			p.Sleep(warmup)
			var base [2]int64
			base[0], base[1] = done[0], done[1]
			p.Sleep(window)
			for i := 0; i < 2; i++ {
				bws[i] = float64(done[i]-base[i]) / 1e6 / window.Seconds()
			}
			stop = true
			wg.WaitFor(p)
			return firstErr
		})
		if err != nil {
			return nil, err
		}
		row := fmt.Sprintf("%d:%d", weights[0], weights[1])
		tbl.Set(row, "vm0 MB/s", bws[0])
		tbl.Set(row, "vm1 MB/s", bws[1])
		if bws[1] > 0 {
			tbl.Set(row, "achieved ratio", bws[0]/bws[1])
		}
	}
	tbl.Note("the DMA engine serves VFs with work-conserving deficit round robin: equal weights split the device evenly;")
	tbl.Note("higher weights push the favored VF toward its standalone peak while the other VF absorbs only the slack")
	return []*stats.Table{tbl}, nil
}

// AblationOOB measures PF (hypervisor) I/O latency while VFs keep the
// translated path busy: the out-of-band channel must keep the PF fast.
func AblationOOB(cfg Config) ([]*stats.Table, error) {
	tbl := stats.NewTable("Ablation: PF out-of-band channel under VF load (PF 4KB reads)",
		"VF load", "", "PF latency us")
	for _, loaded := range []bool{false, true} {
		loaded := loaded
		pl := NewPlatform(cfg)
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			if loaded {
				if err := pl.MkImage(p, "/load.img", 1, 16384, false); err != nil {
					return err
				}
				vm, err := pl.Hyp.NewVM(p, "load", hypervisor.VMConfig{
					Backend: hypervisor.BackendDirect, DiskPath: "/load.img", UID: 1, Guest: pl.Cfg.Guest,
				})
				if err != nil {
					return err
				}
				pl.Eng.Go("vf-load", func(q *sim.Proc) {
					tgt := NewVMRawTarget(vm.Kernel)
					for i := 0; i < 200; i++ {
						if _, err := (workload.DD{BlockBytes: 64 << 10, TotalBytes: 64 << 10, Write: true}).Run(q, tgt); err != nil {
							return
						}
					}
				})
				p.Sleep(200 * sim.Microsecond) // let the load ramp up
			}
			tgt := NewHostRawTarget(pl.Hyp)
			res, err := (workload.DD{BlockBytes: 4096, TotalBytes: 512 << 10, StartOffset: 100 << 20 % (pl.Cfg.MediumBlocks * 1024)}).Run(p, tgt)
			if err != nil {
				return err
			}
			row := "idle"
			if loaded {
				row = "saturated"
			}
			tbl.Set(row, "PF latency us", res.MeanLatencyUs())
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	tbl.Note("the PF shares the medium with the VFs, so some slowdown remains; the OOB channel removes queueing behind translation")
	return []*stats.Table{tbl}, nil
}

// AblationLazyAlloc compares writes into preallocated space with first-touch
// writes into a sparse image, which pay the miss-interrupt + host-allocation
// round trip (paper Fig. 5b).
func AblationLazyAlloc(cfg Config) ([]*stats.Table, error) {
	tbl := stats.NewTable("Ablation: lazy allocation (4KB writes to a NeSC VF)",
		"image", "", "mean latency us", "p99 latency us", "miss interrupts")
	for _, sparse := range []bool{false, true} {
		sparse := sparse
		pl := NewPlatform(cfg)
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			if err := pl.MkImage(p, "/lazy.img", 1, 16384, sparse); err != nil {
				return err
			}
			vm, err := pl.Hyp.NewVM(p, "vm", hypervisor.VMConfig{
				Backend: hypervisor.BackendDirect, DiskPath: "/lazy.img", UID: 1, Guest: pl.Cfg.Guest,
			})
			if err != nil {
				return err
			}
			tgt := NewVMRawTarget(vm.Kernel)
			res, err := (workload.DD{BlockBytes: 4096, TotalBytes: 4 << 20, Write: true}).Run(p, tgt)
			if err != nil {
				return err
			}
			row := "preallocated"
			if sparse {
				row = "sparse (lazy)"
			}
			tbl.Set(row, "mean latency us", res.MeanLatencyUs())
			tbl.Set(row, "p99 latency us", res.Lat.Percentile(99))
			tbl.Set(row, "miss interrupts", float64(pl.Hyp.MissInterrupts))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return []*stats.Table{tbl}, nil
}
