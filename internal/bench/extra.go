package bench

import (
	"fmt"

	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/workload"
)

// Additional analysis experiments beyond the paper's figures: a per-stage
// latency breakdown inside the controller, and a queue-depth scaling sweep.

// Breakdown reports where a 4 KB request's chunks spend their time inside
// the NeSC pipeline (paper Fig. 7's stages), for an idle and a loaded
// device.
func Breakdown(cfg Config) ([]*stats.Table, error) {
	tbl := stats.NewTable("Latency breakdown inside the NeSC pipeline (4KB writes, per 1KB chunk)",
		"stage", "us", "QD 1", "QD 16")
	for _, qd := range []int{1, 16} {
		qd := qd
		c := cfg
		c.Core.CollectBreakdown = true
		pl := NewPlatform(c)
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			tgt, err := pl.rawTarget(p, BackendNeSC, rawImageBlocks)
			if err != nil {
				return err
			}
			_, err = (workload.ParallelDD{BlockBytes: 4096, TotalBytes: 4 << 20, QD: qd, Write: true}).Run(p, tgt)
			return err
		})
		if err != nil {
			return nil, err
		}
		col := fmt.Sprintf("QD %d", qd)
		b := &pl.Ctl.Breakdown
		tbl.Set("vLBA queue wait", col, b.QueueWait.Mean())
		tbl.Set("translation (BTLB/walk)", col, b.Translate.Mean())
		tbl.Set("pLBA queue wait", col, b.DTUWait.Mean())
		tbl.Set("DMA transfer (medium+PCIe)", col, b.Transfer.Mean())
	}
	tbl.Note("at QD 1 the pipeline is latency-bound (transfer dominates); at QD 16 queueing appears ahead of the saturated medium")
	return []*stats.Table{tbl}, nil
}

// QDepth sweeps request-level parallelism: NeSC's hardware pipeline absorbs
// it until the medium saturates, while virtio saturates at its software
// per-request costs.
func QDepth(cfg Config) ([]*stats.Table, error) {
	tbl := stats.NewTable("Queue-depth scaling (4KB writes)", "QD", "MB/s", BackendNeSC, BackendVirt)
	for _, backend := range []string{BackendNeSC, BackendVirt} {
		backend := backend
		pl := NewPlatform(cfg)
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			var tgt workload.ByteTarget
			var err error
			if backend == BackendNeSC {
				tgt, err = pl.rawTarget(p, BackendNeSC, rawImageBlocks)
			} else {
				var vm *hypervisor.VM
				vm, err = pl.Hyp.NewVM(p, "qd", hypervisor.VMConfig{
					Backend: hypervisor.BackendVirtio, RawDevice: true, Guest: pl.Cfg.Guest,
				})
				if err == nil {
					tgt = NewVMRawTarget(vm.Kernel)
				}
			}
			if err != nil {
				return err
			}
			for _, qd := range []int{1, 2, 4, 8, 16} {
				res, err := (workload.ParallelDD{BlockBytes: 4096, TotalBytes: 4 << 20, QD: qd, Write: true}).Run(p, tgt)
				if err != nil {
					return err
				}
				tbl.Set(fmt.Sprintf("%d", qd), backend, res.BandwidthMBps())
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("qdepth %s: %w", backend, err)
		}
	}
	tbl.Note("NeSC rides queue depth to the medium's limit; virtio saturates at the backend's per-request software cost")
	return []*stats.Table{tbl}, nil
}
