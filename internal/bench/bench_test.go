package bench

import (
	"strings"
	"testing"

	"nesc/internal/sim"
	"nesc/internal/workload"
)

// These tests assert the reproduction's headline shapes — who wins, by
// roughly what factor, where crossovers fall — against the claims in the
// paper's text (see EXPERIMENTS.md for the full mapping).

func TestFig9Shape(t *testing.T) {
	tables, err := Fig9(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	read, write := tables[0], tables[1]
	for _, tbl := range []struct {
		name string
		tab  interface {
			MustGet(x, c string) float64
		}
	}{{"read", read}, {"write", write}} {
		for _, bs := range []string{"512B", "1KB", "2KB"} {
			nesc := tbl.tab.MustGet(bs, BackendNeSC)
			host := tbl.tab.MustGet(bs, BackendHost)
			vio := tbl.tab.MustGet(bs, BackendVirt)
			emu := tbl.tab.MustGet(bs, BackendEmul)
			// "latency obtained by NeSC ... is similar to that obtained by
			// the host" — within 2x.
			if nesc > 2*host {
				t.Errorf("fig9 %s %s: NeSC %.1fus vs host %.1fus", tbl.name, bs, nesc, host)
			}
			// "over 6x faster than virtio ... for accesses smaller than 4KB"
			if vio/nesc < 5 {
				t.Errorf("fig9 %s %s: virtio/NeSC = %.1f, want >5", tbl.name, bs, vio/nesc)
			}
			// "over 20x faster than device emulation"
			if emu/nesc < 15 {
				t.Errorf("fig9 %s %s: emulation/NeSC = %.1f, want >15", tbl.name, bs, emu/nesc)
			}
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tables, err := Fig10(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	read, write, conv := tables[0], tables[1], tables[2]
	// Peaks: ~800 MB/s read, ~1 GB/s write (the prototype's numbers).
	nescRead := read.MustGet("32KB", BackendNeSC)
	nescWrite := write.MustGet("32KB", BackendNeSC)
	if nescRead < 600 || nescRead > 1000 {
		t.Errorf("NeSC peak read = %.0f MB/s, want ~800", nescRead)
	}
	if nescWrite < 800 || nescWrite > 1200 {
		t.Errorf("NeSC peak write = %.0f MB/s, want ~1000", nescWrite)
	}
	// "2.5x and 3x better read and write bandwidth ... than virtio".
	if r := nescRead / read.MustGet("32KB", BackendVirt); r < 2 {
		t.Errorf("read NeSC/virtio at 32KB = %.2f, want >= 2", r)
	}
	if r := nescWrite / write.MustGet("32KB", BackendVirt); r < 2.4 {
		t.Errorf("write NeSC/virtio at 32KB = %.2f, want >= 2.4", r)
	}
	// Emulation is far below everything.
	if read.MustGet("32KB", BackendEmul) > read.MustGet("32KB", BackendVirt) {
		t.Error("emulation outperformed virtio")
	}
	// "for very large block sizes (over 2MB), the bandwidths delivered by
	// NeSC and virtio converge".
	ratio := conv.MustGet("2MB", BackendNeSC) / conv.MustGet("2MB", BackendVirt)
	if ratio > 1.15 {
		t.Errorf("virtio has not converged at 2MB: NeSC/virtio = %.2f", ratio)
	}
	// And monotone bandwidth growth with block size for NeSC.
	prev := 0.0
	for _, bs := range []string{"512B", "1KB", "2KB", "4KB", "8KB", "16KB", "32KB"} {
		v := read.MustGet(bs, BackendNeSC)
		if v < prev {
			t.Errorf("NeSC read bandwidth not monotone at %s: %.0f < %.0f", bs, v, prev)
		}
		prev = v
	}
}

func TestFig11Shape(t *testing.T) {
	tables, err := Fig11(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	for _, bs := range []string{"512B", "1KB", "4KB"} {
		nescFS := tbl.MustGet(bs, "NeSC - FS")
		nescRaw := tbl.MustGet(bs, "NeSC - raw")
		vioFS := tbl.MustGet(bs, "virtio - FS")
		vioRaw := tbl.MustGet(bs, "virtio - raw")
		// FS adds a modest, roughly constant cost on NeSC (~40us in the
		// paper; 15..60us here).
		d := nescFS - nescRaw
		if d < 10 || d > 70 {
			t.Errorf("fig11 %s: NeSC FS overhead %.1fus, want 10..70", bs, d)
		}
		// FS costs several times more on virtio (~170us in the paper).
		dv := vioFS - vioRaw
		if dv < 100 || dv > 250 {
			t.Errorf("fig11 %s: virtio FS overhead %.1fus, want 100..250", bs, dv)
		}
		// "over 4x slower than NeSC with a filesystem for writes smaller
		// than 8KB".
		if vioFS/nescFS < 4 {
			t.Errorf("fig11 %s: virtio-FS/NeSC-FS = %.2f, want > 4", bs, vioFS/nescFS)
		}
	}
}

func TestFig2PointShape(t *testing.T) {
	slow, err := Fig2Point(100e6)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Fig2Point(3600e6)
	if err != nil {
		t.Fatal(err)
	}
	// "direct device assignment roughly doubles the storage bandwidth ...
	// for modern, multi GB/s storage devices", while slow devices see none.
	if slow > 1.2 {
		t.Errorf("speedup at 100MB/s = %.2f, want ~1", slow)
	}
	if fast < 1.6 || fast > 2.6 {
		t.Errorf("speedup at 3.6GB/s = %.2f, want ~2", fast)
	}
	if fast <= slow {
		t.Error("speedup does not grow with device bandwidth")
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweep in -short mode")
	}
	tables, err := Fig12(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := tables[0], tables[1]
	for _, app := range Fig12Apps {
		overEmu := a.MustGet(app, "Speedup")
		overVio := b.MustGet(app, "Speedup")
		if overEmu <= 1 || overVio <= 1 {
			t.Errorf("%s: NeSC not fastest (emu %.2f, virtio %.2f)", app, overEmu, overVio)
		}
		// Emulation is always the slowest backend.
		if overEmu < overVio {
			t.Errorf("%s: emulation (%.2f) beat virtio (%.2f)", app, overEmu, overVio)
		}
		// Application speedups stay below the raw-device latency gaps.
		if overVio > 7 || overEmu > 25 {
			t.Errorf("%s: implausible app speedup (emu %.1f, virtio %.1f)", app, overEmu, overVio)
		}
	}
}

func TestTables(t *testing.T) {
	t1, err := Table1(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t1[0].String(), "BTLB 8 entries") {
		t.Error("table1 missing BTLB configuration")
	}
	t2, err := Table2(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"dd", "SysBench", "Postmark", "OLTP"} {
		if !strings.Contains(t2[0].String(), w) {
			t.Errorf("table2 missing %s", w)
		}
	}
}

func TestAblationBTLBShape(t *testing.T) {
	tables, err := AblationBTLB(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// Hit rate grows with BTLB size and saturates near the paper's 8-entry
	// design point; walk traffic shrinks accordingly.
	hr0 := tbl.MustGet("0", "hit rate")
	hr1 := tbl.MustGet("1", "hit rate")
	hr8 := tbl.MustGet("8", "hit rate")
	hr64 := tbl.MustGet("64", "hit rate")
	if hr0 != 0 {
		t.Errorf("BTLB=0 hit rate %.2f", hr0)
	}
	if hr8 < 0.5 {
		t.Errorf("BTLB=8 hit rate %.2f, want high under 8 streaming VFs", hr8)
	}
	if hr8 <= hr1 {
		t.Errorf("hit rate did not grow with size: 1 entry %.2f, 8 entries %.2f", hr1, hr8)
	}
	if hr64 < hr8 {
		t.Errorf("hit rate regressed past the design point: %.2f -> %.2f", hr8, hr64)
	}
	w0 := tbl.MustGet("0", "walk node reads/op")
	w8 := tbl.MustGet("8", "walk node reads/op")
	if w8 >= w0 {
		t.Errorf("walk traffic did not shrink: 8 entries %.2f vs 0 entries %.2f", w8, w0)
	}
}

func TestAblationTrampolineShape(t *testing.T) {
	tables, err := AblationTrampoline(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// IOMMU mode avoids the copies, so it is at least as fast everywhere.
	if tbl.MustGet("iommu", "read MB/s") < tbl.MustGet("trampoline", "read MB/s") {
		t.Error("IOMMU mode slower than trampolines on reads")
	}
	if tbl.MustGet("iommu", "512B write us") > tbl.MustGet("trampoline", "512B write us") {
		t.Error("IOMMU mode slower than trampolines on small writes")
	}
}

func TestAblationLazyAllocShape(t *testing.T) {
	tables, err := AblationLazyAlloc(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if tbl.MustGet("sparse (lazy)", "miss interrupts") == 0 {
		t.Error("sparse image produced no miss interrupts")
	}
	if tbl.MustGet("preallocated", "miss interrupts") != 0 {
		t.Error("preallocated image produced miss interrupts")
	}
	if tbl.MustGet("sparse (lazy)", "p99 latency us") <= tbl.MustGet("preallocated", "p99 latency us") {
		t.Error("lazy allocation did not show in tail latency")
	}
}

func TestAblationQoSShape(t *testing.T) {
	tables, err := AblationQoS(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// Equal weights: equal service.
	if r := tbl.MustGet("1:1", "achieved ratio"); r < 0.9 || r > 1.1 {
		t.Errorf("1:1 ratio = %.2f", r)
	}
	// Higher weight strictly increases the favored VF's share.
	v1 := tbl.MustGet("1:1", "vm0 MB/s")
	v4 := tbl.MustGet("4:1", "vm0 MB/s")
	v8 := tbl.MustGet("8:1", "vm0 MB/s")
	if !(v4 > v1*1.2 && v8 >= v4) {
		t.Errorf("weights ineffective: vm0 = %.0f / %.0f / %.0f at 1:1 / 4:1 / 8:1", v1, v4, v8)
	}
	// Work conservation: the loser still gets the slack.
	if tbl.MustGet("8:1", "vm1 MB/s") < 100 {
		t.Error("low-weight VF starved (scheduler must be work-conserving)")
	}
}

func TestAblationOOBShape(t *testing.T) {
	tables, err := AblationOOB(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	idle := tbl.MustGet("idle", "PF latency us")
	sat := tbl.MustGet("saturated", "PF latency us")
	// The OOB channel keeps PF latency bounded: well under a full queue's
	// worth of delay even when the VFs saturate the device.
	if sat > 20*idle {
		t.Errorf("PF latency exploded under VF load: %.1fus vs %.1fus idle", sat, idle)
	}
}

func TestExperimentRegistryRunsEverything(t *testing.T) {
	names := Names()
	if len(names) < 13 {
		t.Fatalf("registry has %d experiments", len(names))
	}
	if _, err := ByName("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestQDepthShape(t *testing.T) {
	tables, err := QDepth(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// NeSC scales with queue depth; virtio saturates early.
	n1 := tbl.MustGet("1", BackendNeSC)
	n16 := tbl.MustGet("16", BackendNeSC)
	if n16 < 3*n1 {
		t.Errorf("NeSC QD scaling: %.0f -> %.0f MB/s", n1, n16)
	}
	v4 := tbl.MustGet("4", BackendVirt)
	v16 := tbl.MustGet("16", BackendVirt)
	if v16 > v4*1.3 {
		t.Errorf("virtio kept scaling past its software bottleneck: %.0f -> %.0f", v4, v16)
	}
	if n16 < 5*v16 {
		t.Errorf("NeSC/virtio at QD16 = %.1f, want large", n16/v16)
	}
}

func TestBreakdownShape(t *testing.T) {
	tables, err := Breakdown(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// At QD 1 the dominant component is the transfer itself; queueing is
	// negligible. At QD 16 the pLBA queue dominates.
	if tbl.MustGet("DMA transfer (medium+PCIe)", "QD 1") < 10*tbl.MustGet("pLBA queue wait", "QD 1") {
		t.Error("QD1: queueing should be negligible next to transfer")
	}
	if tbl.MustGet("pLBA queue wait", "QD 16") < tbl.MustGet("DMA transfer (medium+PCIe)", "QD 16") {
		t.Error("QD16: saturation queueing should dominate")
	}
	// Translation stays sub-microsecond (BTLB hits on sequential streams).
	if tr := tbl.MustGet("translation (BTLB/walk)", "QD 1"); tr > 1 {
		t.Errorf("translation = %.2fus, want sub-microsecond on hits", tr)
	}
}

func TestPlatformDeterminism(t *testing.T) {
	runOnce := func() sim.Time {
		pl := NewPlatform(DefaultConfig())
		var elapsed sim.Time
		err := pl.Run(func(p *sim.Proc) error {
			if err := pl.Boot(p); err != nil {
				return err
			}
			tgt, err := pl.rawTarget(p, BackendNeSC, 16*1024)
			if err != nil {
				return err
			}
			res, err := (workload.DD{BlockBytes: 4096, TotalBytes: 1 << 20, Write: true}).Run(p, tgt)
			if err != nil {
				return err
			}
			elapsed = res.Elapsed
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("identical runs diverged: %v vs %v", a, b)
	}
}
