package bench

import (
	"fmt"

	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/workload"
)

// Figure 2 (paper §II): the motivating experiment — the write-bandwidth
// speedup of direct device assignment over virtio as a function of device
// bandwidth. The paper emulates fast storage by throttling an in-memory disk
// (whose effective bandwidth "peaks at 3.6 GB/s due to the overheads of the
// software layers") and observes direct assignment roughly doubling
// virtio's bandwidth for multi-GB/s devices.

// Fig2Bandwidths is the device-bandwidth sweep, in MB/s.
var Fig2Bandwidths = []float64{100, 200, 400, 800, 1200, 1600, 2000, 2400, 2800, 3200, 3600}

// Fig2 regenerates the figure.
func Fig2(cfg Config) ([]*stats.Table, error) {
	speed := stats.NewTable("Figure 2: direct assignment speedup over virtio vs device bandwidth",
		"device MB/s", "x", "Speedup")
	abs := stats.NewTable("Figure 2 (underlying data): achieved write bandwidth",
		"device MB/s", "MB/s", "Direct", "virtio")

	// The throttled device in this experiment is a ramdisk, not the 1 GB/s
	// PCIe prototype: remove the gen2 link and the prototype controller's
	// channel count as bottlenecks so the sweep isolates the software
	// overheads, as the paper's setup does.
	cfg.PCIe.LinkBandwidth = 16e9
	cfg.Medium.ReadLatency = 150 * sim.Nanosecond
	cfg.Medium.WriteLatency = 150 * sim.Nanosecond
	cfg.Core.DTUChannels = 16
	cfg.Core.Walkers = 4

	const ddBlock = 256 << 10
	const ddTotalBytes = 8 << 20

	for _, mbps := range Fig2Bandwidths {
		bw := mbps * 1e6
		row := fmt.Sprintf("%.0f", mbps)
		var direct, vio float64
		for _, kind := range []hypervisor.BackendKind{hypervisor.BackendDirect, hypervisor.BackendVirtio} {
			kind := kind
			c := cfg
			c.Medium.ReadBandwidth = bw
			c.Medium.WriteBandwidth = bw
			pl := NewPlatform(c)
			var got float64
			err := pl.Run(func(p *sim.Proc) error {
				if err := pl.Boot(p); err != nil {
					return err
				}
				vm, err := pl.Hyp.NewVM(p, "fig2", hypervisor.VMConfig{
					Backend: kind, RawDevice: true, Guest: pl.Cfg.Guest,
				})
				if err != nil {
					return err
				}
				tgt := NewVMRawTarget(vm.Kernel)
				if _, err := (workload.DD{BlockBytes: ddBlock, TotalBytes: ddBlock, Write: true}).Run(p, tgt); err != nil {
					return err
				}
				res, err := (workload.DD{BlockBytes: ddBlock, TotalBytes: ddTotalBytes, Write: true}).Run(p, tgt)
				if err != nil {
					return err
				}
				got = res.BandwidthMBps()
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig2 %.0f MB/s %v: %w", mbps, kind, err)
			}
			if kind == hypervisor.BackendDirect {
				direct = got
			} else {
				vio = got
			}
		}
		abs.Set(row, "Direct", direct)
		abs.Set(row, "virtio", vio)
		if vio > 0 {
			speed.Set(row, "Speedup", direct/vio)
		}
	}
	speed.Note("direct assignment = identity-mapped NeSC VF (no hypervisor on the data path)")
	speed.Note("the paper's ramdisk software cap (~3.6 GB/s) appears as Direct flattening at high device bandwidth")
	return []*stats.Table{speed, abs}, nil
}
