package bench

import (
	"bytes"
	"errors"
	"fmt"

	"nesc/internal/fabric"
	"nesc/internal/fault"
	"nesc/internal/guest"
	"nesc/internal/hypervisor"
	"nesc/internal/ring"
	"nesc/internal/sim"
	"nesc/internal/stats"
)

// GrayFail measures the gray-failure (fail-slow) hardening stack.
//
// The first table is a 3-way mirror under a roaming fail-slow fault: a
// pulse generator repeatedly degrades whichever leg currently wins read
// steering (the worst case for EWMA-only placement — every pulse lands on
// the leg serving the reads). Six concurrent tenants read through the
// pulses; the table compares their read latency distribution with the
// mitigation stack off (plain EWMA steering, which only reacts after each
// convoy of reads has already paid the full degraded latency) and on
// (hedged reads cap every straggler at the adaptive deadline, the per-leg
// fail-slow detector quarantines the chronic leg, probe reads let it win
// traffic back after rejoin). Every read is verified bit-exactly.
//
// The second table is deadline propagation + per-VF admission control on a
// single device: concurrent writers run through a fail-slow window, once
// with an unbounded queue (every op waits out the full backlog) and once
// with a driver-programmed deadline and inflight budget (the device
// fast-fails infeasible requests with a retryable busy status instead of
// letting them rot in the queue). Acknowledged writes are verified after
// the fault clears; acked data must never be lost.
func GrayFail(cfg Config) ([]*stats.Table, error) {
	hedge, err := grayHedging(cfg)
	if err != nil {
		return nil, err
	}
	adm, err := grayAdmission(cfg)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{hedge, adm}, nil
}

// grayPass is one mirror run's harvest.
type grayPass struct {
	lat                                 *stats.Sampler
	hedged, wins, quar, rejoins, probes int64
	degradedOps                         int64
	lost                                int
}

func grayHedging(cfg Config) (*stats.Table, error) {
	tbl := stats.NewTable("Gray failure: roaming fail-slow leg in a 3-way mirror, hedging + quarantine off vs on",
		"mitigation", "", "reads", "read p50 us", "read p99 us", "hedged", "hedge wins", "quarantines", "rejoins", "lost reads")
	off, err := grayMirrorPass(cfg, false)
	if err != nil {
		return nil, err
	}
	on, err := grayMirrorPass(cfg, true)
	if err != nil {
		return nil, err
	}
	set := func(row string, r *grayPass) {
		tbl.Set(row, "reads", float64(r.lat.N()))
		tbl.Set(row, "read p50 us", r.lat.Percentile(50))
		tbl.Set(row, "read p99 us", r.lat.Percentile(99))
		tbl.Set(row, "hedged", float64(r.hedged))
		tbl.Set(row, "hedge wins", float64(r.wins))
		tbl.Set(row, "quarantines", float64(r.quar))
		tbl.Set(row, "rejoins", float64(r.rejoins))
		tbl.Set(row, "lost reads", float64(r.lost))
	}
	set("off (EWMA steering only)", off)
	set("on (hedge + quarantine + probes)", on)
	offP99, onP99 := off.lat.Percentile(99), on.lat.Percentile(99)
	if onP99 <= 0 || offP99 < 2*onP99 {
		return nil, fmt.Errorf("grayfail: hedging+quarantine improved read p99 only %.1fx (off %.1f us, on %.1f us); want >= 2x",
			offP99/onP99, offP99, onP99)
	}
	if off.lost != 0 || on.lost != 0 {
		return nil, fmt.Errorf("grayfail: lost reads (off %d, on %d)", off.lost, on.lost)
	}
	tbl.Note(fmt.Sprintf("tenant read p99 improves %.1fx under identical fail-slow pulses (%d degraded medium ops per pass)",
		offP99/onP99, on.degradedOps))
	tbl.Note(fmt.Sprintf("mitigation pass: %d probe reads kept quarantined-leg latency estimates live; every read verified bit-exactly", on.probes))
	return tbl, nil
}

// grayMirrorPass runs one 3-way-mirror workload under roaming fail-slow
// pulses, with the mitigation stack armed or not.
func grayMirrorPass(cfg Config, mitigate bool) (*grayPass, error) {
	cfg.NumDevices = 3
	cfg.Fault = &fault.Plan{Seed: 11}
	pl := NewPlatform(cfg)
	res := &grayPass{lat: &stats.Sampler{}}
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		const fileBlocks = 1024
		for _, d := range pl.Hyp.Devices() {
			if err := d.MkImage(p, "/gray.img", 1, fileBlocks, false); err != nil {
				return err
			}
		}
		fc := fabric.Config{
			SuspectThreshold: 2, FailThreshold: 4, RecoverThreshold: 3,
			RegionBlocks: 32, ResilverInterval: 20 * sim.Microsecond,
		}
		if mitigate {
			fc.HedgePercentile = 95
			fc.SlowFactor = 3
			fc.SlowWindow = 32
			fc.SlowBaseline = 16
			fc.SlowMinSamples = 4
			fc.ProbeEvery = 8
			fc.QuarantineDuration = 2 * sim.Millisecond
		}
		vm, err := pl.Hyp.NewMirroredVM(p, "gray", hypervisor.VMConfig{
			Backend: hypervisor.BackendDirect, DiskPath: "/gray.img", UID: 1, Guest: pl.Cfg.Guest,
		}, []int{0, 1, 2}, fc)
		if err != nil {
			return err
		}
		const slots = 64
		bs := vm.Kernel.Drv.BlockSize()
		stripeBlocks := int64(fabricStripe / bs)
		buf := make([]byte, fabricStripe)
		for s := 0; s < slots; s++ {
			fabricFill(buf, int64(s))
			if err := vm.Kernel.WriteBytes(p, int64(s)*fabricStripe, buf); err != nil {
				return fmt.Errorf("fill %d: %w", s, err)
			}
		}
		// Warmup reads train the read-steering EWMAs, the hedge latency
		// window, and the serving leg's fail-slow baseline before any pulse.
		got := make([]byte, fabricStripe)
		for i := 0; i < 48; i++ {
			if err := vm.Kernel.ReadBytes(p, int64(i%slots)*fabricStripe, got); err != nil {
				return fmt.Errorf("warmup read %d: %w", i, err)
			}
		}
		// Concurrent tenant readers, each with its own DMA buffer (the
		// kernel's byte-path scratch is single-caller).
		const readers, perReader = 6, 120
		wg := sim.NewWaitGroup(pl.Eng)
		samp := make([]*stats.Sampler, readers)
		lost := make([]int, readers)
		active := readers
		var readerErr error
		for rd := 0; rd < readers; rd++ {
			rd := rd
			samp[rd] = &stats.Sampler{}
			addr := pl.Mem.MustAlloc(fabricStripe, 64)
			data, err := pl.Mem.Slice(addr, fabricStripe)
			if err != nil {
				return err
			}
			rbuf := guest.Buffer{Addr: addr, Data: data}
			wg.Add(1)
			pl.Eng.Go(fmt.Sprintf("gray-reader-%d", rd), func(q *sim.Proc) {
				defer func() { active--; wg.Done() }()
				want := make([]byte, fabricStripe)
				for i := 0; i < perReader; i++ {
					slot := (rd*11 + i*7) % slots
					start := q.Now()
					if err := vm.Kernel.SubmitAligned(q, false, int64(slot)*stripeBlocks, rbuf); err != nil {
						if readerErr == nil {
							readerErr = fmt.Errorf("reader %d op %d: %w", rd, i, err)
						}
						return
					}
					samp[rd].Add(float64(q.Now()-start) / 1000)
					fabricFill(want, int64(slot))
					if !bytes.Equal(rbuf.Data, want) {
						lost[rd]++
					}
				}
			})
		}
		// Roaming fail-slow pulses: each pulse degrades whichever leg
		// currently wins read steering (lowest EWMA, skipping quarantined
		// legs) — the gray failure follows the traffic.
		pulses := 0
		for active > 0 && pulses < 40 {
			st := vm.Client.Status()
			target := -1
			for i, s := range st {
				if s.Quarantined || s.State == "failed" {
					continue
				}
				if target < 0 || s.EWMARead < st[target].EWMARead {
					target = i
				}
			}
			if target >= 0 {
				pulses++
				pl.Inj.Degrade(fault.Degradation{
					Device: st[target].Dev, Start: p.Now(),
					Duration: 600 * sim.Microsecond, Extra: 2 * sim.Millisecond,
				})
			}
			p.Sleep(1500 * sim.Microsecond)
		}
		wg.WaitFor(p)
		if readerErr != nil {
			return readerErr
		}
		pl.Inj.ClearDegradations(0)
		pl.Inj.ClearDegradations(1)
		pl.Inj.ClearDegradations(2)
		for rd := 0; rd < readers; rd++ {
			res.lat.Merge(samp[rd])
			res.lost += lost[rd]
		}
		// Final verification in slot order: no acknowledged write may be lost.
		want := make([]byte, fabricStripe)
		for s := 0; s < slots; s++ {
			fabricFill(want, int64(s))
			if err := vm.Kernel.ReadBytes(p, int64(s)*fabricStripe, got); err != nil || !bytes.Equal(got, want) {
				res.lost++
			}
		}
		res.hedged = vm.Client.HedgedReads
		res.wins = vm.Client.HedgeWins
		res.quar = vm.Client.Quarantines
		res.rejoins = vm.Client.Rejoins
		res.probes = vm.Client.ProbeReads
		res.degradedOps = pl.Inj.DegradedOps
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// admPass is one admission-control run's harvest.
type admPass struct {
	lat          *stats.Sampler
	acked, shed  int
	admitRejects int64
	expirations  int64
	busyRejects  int64
	lost         int
}

func grayAdmission(cfg Config) (*stats.Table, error) {
	tbl := stats.NewTable("Gray failure: deadline propagation + per-VF admission control through a fail-slow window",
		"policy", "", "ops acked", "busy shed", "ack p99 us", "admit rejects", "deadline expired", "driver busy", "lost writes")
	open, err := grayAdmissionPass(cfg, false)
	if err != nil {
		return nil, err
	}
	armed, err := grayAdmissionPass(cfg, true)
	if err != nil {
		return nil, err
	}
	set := func(row string, r *admPass) {
		tbl.Set(row, "ops acked", float64(r.acked))
		tbl.Set(row, "busy shed", float64(r.shed))
		tbl.Set(row, "ack p99 us", r.lat.Percentile(99))
		tbl.Set(row, "admit rejects", float64(r.admitRejects))
		tbl.Set(row, "deadline expired", float64(r.expirations))
		tbl.Set(row, "driver busy", float64(r.busyRejects))
		tbl.Set(row, "lost writes", float64(r.lost))
	}
	set("unbounded queue", open)
	set("deadline 400us + inflight 8", armed)
	if open.lost != 0 || armed.lost != 0 {
		return nil, fmt.Errorf("grayfail admission: lost acked writes (open %d, armed %d)", open.lost, armed.lost)
	}
	if armed.shed == 0 || armed.admitRejects == 0 {
		return nil, fmt.Errorf("grayfail admission: expected busy shedding under the armed policy (shed %d, admit rejects %d)",
			armed.shed, armed.admitRejects)
	}
	tbl.Note(fmt.Sprintf("acked-write p99 %.0f us unbounded vs %.0f us with the deadline armed; busy is retryable — nothing the device acknowledged is lost",
		open.lat.Percentile(99), armed.lat.Percentile(99)))
	tbl.Note("the driver programs QRegDeadline once; the device stamps each request at fetch and fast-fails infeasible or expired work with StatusBusy at admission, mux, walker, and DTU stages")
	return tbl, nil
}

// grayAdmissionPass runs concurrent writers through a fail-slow window on a
// single device, with or without the deadline + admission budget armed.
func grayAdmissionPass(cfg Config, arm bool) (*admPass, error) {
	cfg.Fault = &fault.Plan{Seed: 11}
	// Busy must surface to the tenant immediately: no timeout recovery, no
	// driver-level retries.
	cfg.Hyp.VFRequestTimeout = 0
	cfg.Hyp.VFRetryMax = 0
	if arm {
		cfg.Hyp.VFDeadline = 400 * sim.Microsecond
		cfg.Core.AdmitInflight = 8
	}
	pl := NewPlatform(cfg)
	res := &admPass{lat: &stats.Sampler{}}
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		const fileBlocks = 1024
		if err := pl.Hyp.Device(0).MkImage(p, "/adm.img", 1, fileBlocks, false); err != nil {
			return err
		}
		vm, err := pl.Hyp.NewVM(p, "adm", hypervisor.VMConfig{
			Backend: hypervisor.BackendDirect, DiskPath: "/adm.img", UID: 1, Guest: pl.Cfg.Guest,
		})
		if err != nil {
			return err
		}
		bs := vm.Kernel.Drv.BlockSize()
		stripeBlocks := int64(fabricStripe / bs)
		// Each writer owns a disjoint slot range and writes each slot exactly
		// once: a shed (busy) op may leave undefined bytes in its own slot,
		// but can never touch a slot whose write was acknowledged.
		const writers, perWriter = 10, 24
		wg := sim.NewWaitGroup(pl.Eng)
		samp := make([]*stats.Sampler, writers)
		acked := make([][]bool, writers)
		shed := make([]int, writers)
		var writerErr error
		for wr := 0; wr < writers; wr++ {
			wr := wr
			samp[wr] = &stats.Sampler{}
			acked[wr] = make([]bool, perWriter)
			addr := pl.Mem.MustAlloc(fabricStripe, 64)
			data, err := pl.Mem.Slice(addr, fabricStripe)
			if err != nil {
				return err
			}
			wbuf := guest.Buffer{Addr: addr, Data: data}
			wg.Add(1)
			pl.Eng.Go(fmt.Sprintf("gray-writer-%d", wr), func(q *sim.Proc) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					slot := wr*perWriter + i
					fabricFill(wbuf.Data, int64(slot))
					start := q.Now()
					err := vm.Kernel.SubmitAligned(q, true, int64(slot)*stripeBlocks, wbuf)
					switch {
					case err == nil:
						samp[wr].Add(float64(q.Now()-start) / 1000)
						acked[wr][i] = true
					case errors.Is(err, ring.ErrBusy):
						shed[wr]++
					default:
						if writerErrLocal := fmt.Errorf("writer %d op %d: %w", wr, i, err); writerErr == nil {
							writerErr = writerErrLocal
						}
						return
					}
				}
			})
		}
		// Let a healthy phase establish the chunk-service estimator, then
		// open a chronic fail-slow window in the middle of the workload.
		p.Sleep(400 * sim.Microsecond)
		pl.Inj.Degrade(fault.Degradation{
			Device: 0, Start: p.Now(), Duration: 3 * sim.Millisecond, Extra: 1 * sim.Millisecond,
		})
		wg.WaitFor(p)
		if writerErr != nil {
			return writerErr
		}
		pl.Inj.ClearDegradations(0)
		// Verify every acknowledged write after the fault has cleared.
		got := make([]byte, fabricStripe)
		want := make([]byte, fabricStripe)
		for wr := 0; wr < writers; wr++ {
			res.lat.Merge(samp[wr])
			res.shed += shed[wr]
			for i := 0; i < perWriter; i++ {
				if !acked[wr][i] {
					continue
				}
				res.acked++
				slot := wr*perWriter + i
				fabricFill(want, int64(slot))
				if err := vm.Kernel.ReadBytes(p, int64(slot)*fabricStripe, got); err != nil || !bytes.Equal(got, want) {
					res.lost++
				}
			}
		}
		res.admitRejects = pl.Ctl.AdmitRejects
		res.expirations = pl.Ctl.DeadlineExpirations
		res.busyRejects = pl.Hyp.RecoveryStats().BusyRejects
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
