package bench

import (
	"fmt"

	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/workload"
)

// integrityOps is the request count for the random-I/O phases. Sized so the
// latency samplers see a meaningful tail while the 2x2 sweep stays fast.
const integrityOps = 512

// integrityMix advances a splitmix64 state for the random-offset streams.
func integrityMix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// randIO issues ops random aligned single-block requests against t. It is
// the random counterpart of workload.DD, kept here because only this
// ablation needs a pure random read or pure random write phase.
func randIO(p *sim.Proc, t workload.ByteTarget, blockBytes, ops int, write bool, seed uint64) (workload.Result, error) {
	res := workload.Result{Name: fmt.Sprintf("rand %s", map[bool]string{true: "write", false: "read"}[write])}
	slots := t.Size() / int64(blockBytes)
	if slots <= 0 {
		return res, fmt.Errorf("bench: target smaller than one block")
	}
	state := seed
	start := p.Now()
	for i := 0; i < ops; i++ {
		state = integrityMix(state)
		off := int64(state%uint64(slots)) * int64(blockBytes)
		opStart := p.Now()
		var err error
		if write {
			err = t.WriteAt(p, off, blockBytes)
		} else {
			err = t.ReadAt(p, off, blockBytes)
		}
		if err != nil {
			return res, err
		}
		res.Ops++
		res.Bytes += int64(blockBytes)
		res.Lat.Add((p.Now() - opStart).Micros())
	}
	res.Elapsed = p.Now() - start
	return res, nil
}

// integrityCell runs the four raw phases (seq read/write, rand read/write,
// 4 KB requests on a direct NeSC VF) on one platform configuration and hands
// each phase's result to set. Guards covers both the medium's read-side
// guard verification and the wire-level protection information; scrub runs
// the paced background scrubber for the whole measurement window.
func integrityCell(cfg Config, guards, scrub bool, set func(phase string, res workload.Result)) (scrubBlocks int64, err error) {
	qcfg := cfg
	qcfg.Hyp.DisablePI = !guards
	pl := NewPlatform(qcfg)
	if !guards {
		pl.Ctl.Medium.SetGuardCheck(false)
	}
	err = pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		tgt, err := pl.rawTarget(p, BackendNeSC, rawImageBlocks)
		if err != nil {
			return err
		}
		if scrub {
			// Short verify strides: each stolen device slot stays brief, so
			// the scrubber's head-of-line shadow on the foreground is one
			// small read, not a 64-block sweep.
			pl.Hyp.StartScrubber(hypervisor.ScrubConfig{BlocksPerReq: 8})
		}
		defer pl.Hyp.StopScrubber()

		const bs = 4096
		const total = 4 << 20
		for _, phase := range []struct {
			name  string
			write bool
		}{{"seq write", true}, {"seq read", false}} {
			res, err := (workload.DD{BlockBytes: bs, TotalBytes: total, Write: phase.write}).Run(p, tgt)
			if err != nil {
				return err
			}
			set(phase.name, res)
		}
		for _, phase := range []struct {
			name  string
			write bool
			seed  uint64
		}{{"rand write", true, 0xA11CE}, {"rand read", false, 0xB0B}} {
			res, err := randIO(p, tgt, bs, integrityOps, phase.write, phase.seed)
			if err != nil {
				return err
			}
			set(phase.name, res)
		}
		return nil
	})
	// Read the counter only after the engine drains: the scrubber proc
	// accumulates its interrupted pass when the stop flag wakes it.
	return pl.Hyp.ScrubBlocks, err
}

// AblationIntegrity measures what end-to-end data integrity costs: per-block
// guard tags (CRC-32C at the medium plus wire-level protection information)
// and the background scrubber, each toggled independently — the 2x2 the
// integrity work promises to keep cheap. Guard math is modeled as pipelined
// into the data movement (it adds no virtual time), so the guard columns
// quantify "free by construction"; the scrub columns expose whatever
// contention the scavenger-priority scrubber leaks into the foreground.
//
// A second table isolates the tail: foreground random-read latency with and
// without the scrubber sweeping underneath, mean/p50/p99.
func AblationIntegrity(cfg Config) ([]*stats.Table, error) {
	cells := []struct {
		col           string
		guards, scrub bool
	}{
		{"no-integrity", false, false},
		{"guards", true, false},
		{"scrub-only", false, true},
		{"guards+scrub", true, true},
	}
	var cols []string
	for _, c := range cells {
		cols = append(cols, c.col)
	}
	thr := stats.NewTable("Integrity ablation: guard tags x scrubber (4KB raw, direct VF)",
		"workload", "MB/s", cols...)
	var lats [2]workload.Result // rand read result with guards, scrub off/on
	for _, c := range cells {
		c := c
		blocks, err := integrityCell(cfg, c.guards, c.scrub, func(phase string, res workload.Result) {
			thr.Set(phase, c.col, res.BandwidthMBps())
			if phase == "rand read" && c.guards {
				if c.scrub {
					lats[1] = res
				} else {
					lats[0] = res
				}
			}
		})
		if err != nil {
			return nil, fmt.Errorf("integrity cell %s: %w", c.col, err)
		}
		if c.scrub {
			thr.Note("%s: scrubber verified %d blocks during the measurement window", c.col, blocks)
		}
	}
	thr.Note("guard tags are CRC-32C computed in the data path (no added virtual time); PI rides formerly-reserved descriptor fields")
	thr.Note("the scrubber only wins device slots when the out-of-band and every VF queue are empty (scavenger priority)")

	tail := stats.NewTable("Scrubber foreground impact (rand 4KB reads, guards on)",
		"latency", "us", "scrub off", "scrub on")
	for i, col := range []string{"scrub off", "scrub on"} {
		tail.Set("mean", col, lats[i].Lat.Mean())
		tail.Set("p50", col, lats[i].Lat.Percentile(50))
		tail.Set("p99", col, lats[i].Lat.Percentile(99))
	}
	tail.Note("scavenger-priority scrubbing must not move the foreground tail; compare the p99 row")
	return []*stats.Table{thr, tail}, nil
}
