package bench

import (
	"bytes"
	"fmt"

	"nesc/internal/extfs"
	"nesc/internal/hypervisor"
	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/workload"
)

// Dedup measures the content-addressed block tier.
//
// The first table seals a family of similar images — golden-image variants
// sharing most of their blocks — and tracks how the chunk store deduplicates
// them: logical blocks grow linearly while unique chunks grow by only each
// image's divergence, so the dedup ratio climbs with every sibling sealed.
//
// The second table is the first-touch latency profile of a fork: a cold fork
// pays a remote fetch per chunk the first time the guest touches a block, a
// second fork on the same host rides the chunk cache, and a re-read of
// materialized blocks is indistinguishable from ordinary local extents.
//
// The third table forks one sealed golden image onto an 8-host fleet: fork
// cost is metadata-only (no chunk payload moves until a guest touches a
// block), and every host then materializes its own working set lazily.
func Dedup(cfg Config) ([]*stats.Table, error) {
	ratio, err := dedupRatio(cfg)
	if err != nil {
		return nil, err
	}
	lat, err := dedupLatency(cfg)
	if err != nil {
		return nil, err
	}
	fleet, err := dedupFleetFork(cfg)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{ratio, lat, fleet}, nil
}

// dedupFillImage writes blocks of seeded content into an image file on fs.
// seedOf names each block's content: blocks with equal seeds are identical
// across images and must deduplicate to one chunk.
func dedupFillImage(p *sim.Proc, fs *extfs.FS, path string, uid uint32, blocks, blockSize int, seedOf func(b int) int64) error {
	f, err := fs.Open(p, path, uid, extfs.PermWrite)
	if err != nil {
		return err
	}
	buf := make([]byte, blockSize)
	for b := 0; b < blocks; b++ {
		fabricFill(buf, seedOf(b))
		if _, err := f.WriteAt(p, buf, int64(b)*int64(blockSize)); err != nil {
			return err
		}
	}
	return nil
}

func dedupRatio(cfg Config) (*stats.Table, error) {
	tbl := stats.NewTable("CAS dedup: sealing 8 similar 512 KB images (1/8 of each image diverges)",
		"images sealed", "", "logical blocks", "unique chunks", "dedup ratio", "dedup hits")
	const imageBlocks = 512
	cfg.CAS = true
	pl := NewPlatform(cfg)
	bs := cfg.Core.BlockSize
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		report := map[int]bool{1: true, 2: true, 4: true, 8: true}
		for i := 0; i < 8; i++ {
			path := fmt.Sprintf("/variant%d.img", i)
			if err := pl.MkImage(p, path, 1, imageBlocks, true); err != nil {
				return err
			}
			// Every 8th block is this variant's own divergence (installed
			// packages, host keys); the rest is the shared base content.
			img := i
			err := dedupFillImage(p, pl.Hyp.HostFS, path, 1, imageBlocks, bs, func(b int) int64 {
				if b%8 == 0 {
					return int64(1000*(img+1) + b)
				}
				return int64(b)
			})
			if err != nil {
				return err
			}
			if _, err := pl.Hyp.SealImage(p, path, fmt.Sprintf("variant%d", i), 1); err != nil {
				return err
			}
			if !report[i+1] {
				continue
			}
			st := pl.Hyp.CAS().Stats()
			row := fmt.Sprintf("%d", i+1)
			tbl.Set(row, "logical blocks", float64(st.BlocksLogical))
			tbl.Set(row, "unique chunks", float64(st.ChunksLive))
			tbl.Set(row, "dedup ratio", pl.Hyp.CAS().DedupRatio())
			tbl.Set(row, "dedup hits", float64(st.DedupHits))
		}
		st := pl.Hyp.CAS().Stats()
		tbl.Note(fmt.Sprintf("remote tier carried %d chunk payloads in %d batched PUT round trip(s) for %d logical blocks",
			st.ChunksLive, st.RemotePuts, st.BlocksLogical))
		return nil
	})
	if err != nil {
		return nil, err
	}
	tbl.Note("dedup ratio = logical blocks referenced / unique chunks stored; siblings add only their divergent 1/8")
	return tbl, nil
}

func dedupLatency(cfg Config) (*stats.Table, error) {
	tbl := stats.NewTable("CAS first touch: 4KB reads over a 256 KB fork (cold fetch vs warm cache vs materialized)",
		"pass", "", "mean latency us", "p99 latency us", "remote fetches", "cache hits")
	const imageBlocks = 256
	cfg.CAS = true
	cfg.CASCacheChunks = 1024 // hold the whole image: the warm pass must never evict
	pl := NewPlatform(cfg)
	bs := cfg.Core.BlockSize
	total := int64(imageBlocks) * int64(bs)
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		if err := pl.MkImage(p, "/master.img", 1, imageBlocks, true); err != nil {
			return err
		}
		err := dedupFillImage(p, pl.Hyp.HostFS, "/master.img", 1, imageBlocks, bs, func(b int) int64 {
			return int64(5000 + b) // all blocks distinct: no intra-image dedup masking fetches
		})
		if err != nil {
			return err
		}
		if _, err := pl.Hyp.SealImage(p, "/master.img", "golden", 1); err != nil {
			return err
		}
		pass := func(row, path string, vm *hypervisor.VM) (*hypervisor.VM, error) {
			if vm == nil {
				if err := pl.Hyp.ForkImage(p, "golden", path, 1); err != nil {
					return nil, err
				}
				nvm, err := pl.Hyp.NewVM(p, row, hypervisor.VMConfig{
					Backend: hypervisor.BackendDirect, DiskPath: path, UID: 1, Guest: pl.Cfg.Guest,
				})
				if err != nil {
					return nil, err
				}
				vm = nvm
			}
			preF := pl.Hyp.CAS().Stats().RemoteFetches
			preH := pl.Hyp.CASCacheStatsNow().Hits
			res, err := (workload.DD{BlockBytes: 4096, TotalBytes: total}).Run(p, NewVMRawTarget(vm.Kernel))
			if err != nil {
				return nil, err
			}
			tbl.Set(row, "mean latency us", res.MeanLatencyUs())
			tbl.Set(row, "p99 latency us", res.Lat.Percentile(99))
			tbl.Set(row, "remote fetches", float64(pl.Hyp.CAS().Stats().RemoteFetches-preF))
			tbl.Set(row, "cache hits", float64(pl.Hyp.CASCacheStatsNow().Hits-preH))
			return vm, nil
		}
		cold, err := pass("cold fork (remote fetch)", "/cold.img", nil)
		if err != nil {
			return err
		}
		if _, err := pass("warm fork (cache hit)", "/warm.img", nil); err != nil {
			return err
		}
		if _, err := pass("materialized re-read", "", cold); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tbl.Note("cold first touch rides the translation-miss path to the remote tier (latency + bandwidth cost model)")
	tbl.Note("the warm fork pays the same miss interrupt but serves every chunk from the host cache; re-reads of materialized blocks are ordinary extent hits")
	return tbl, nil
}

func dedupFleetFork(cfg Config) (*stats.Table, error) {
	tbl := stats.NewTable("CAS fleet provisioning: one 1 MB golden image forked onto 8 hosts",
		"metric", "", "value")
	const imageBlocks = 1024
	const hosts = 8
	cfg.CAS = true
	cfg.NumDevices = hosts
	pl := NewPlatform(cfg)
	bs := cfg.Core.BlockSize
	err := pl.Run(func(p *sim.Proc) error {
		if err := pl.Boot(p); err != nil {
			return err
		}
		d0 := pl.Hyp.Device(0)
		if err := d0.MkImage(p, "/golden.img", 1, imageBlocks, true); err != nil {
			return err
		}
		err := dedupFillImage(p, d0.HostFS, "/golden.img", 1, imageBlocks, bs, func(b int) int64 {
			return int64(9000 + b)
		})
		if err != nil {
			return err
		}
		sealStart := p.Now()
		if _, err := pl.Hyp.SealImage(p, "/golden.img", "golden", 1); err != nil {
			return err
		}
		sealTime := p.Now() - sealStart
		// Fork onto every host: metadata-only, so not one chunk payload may
		// cross the fabric until a guest touches a block.
		var forkTotal, forkMax sim.Time
		forkStart := p.Now()
		for i := 0; i < hosts; i++ {
			t0 := p.Now()
			if err := pl.Hyp.Device(i).ForkImage(p, "golden", "/guest.img", 1); err != nil {
				return err
			}
			if ft := p.Now() - t0; ft > forkMax {
				forkMax = ft
			}
		}
		forkTotal = p.Now() - forkStart
		if f := pl.Hyp.CAS().Stats().RemoteFetches; f != 0 {
			return fmt.Errorf("fork moved %d chunk payloads; provisioning must be metadata-only", f)
		}
		tbl.Set("seal us (1024 blocks)", "value", float64(sealTime)/1000)
		tbl.Set("mean fork us per host", "value", float64(forkTotal)/hosts/1000)
		tbl.Set("max fork us", "value", float64(forkMax)/1000)
		tbl.Set("chunk payloads moved at fork", "value", 0)
		tbl.Set("dedup ratio after 8 forks", "value", pl.Hyp.CAS().DedupRatio())
		// Every host boots a guest and first-touches its own 128 KB working
		// set, verifying the materialized content bit-exactly.
		const touchBlocks = 128
		want := make([]byte, bs)
		got := make([]byte, int(touchBlocks)*bs)
		touchStart := p.Now()
		for i := 0; i < hosts; i++ {
			vm, err := pl.Hyp.NewVM(p, fmt.Sprintf("guest%d", i), hypervisor.VMConfig{
				Backend: hypervisor.BackendDirect, DiskPath: "/guest.img", UID: 1,
				Guest: pl.Cfg.Guest, Device: i,
			})
			if err != nil {
				return err
			}
			// Stagger working sets so hosts materialize different chunks.
			off := int64(i) * touchBlocks * int64(bs)
			if err := vm.Kernel.ReadBytes(p, off, got); err != nil {
				return fmt.Errorf("host %d first touch: %w", i, err)
			}
			for b := 0; b < touchBlocks; b++ {
				fabricFill(want, int64(9000)+off/int64(bs)+int64(b))
				if !bytes.Equal(got[b*bs:(b+1)*bs], want) {
					return fmt.Errorf("host %d block %d materialized wrong content", i, b)
				}
			}
		}
		touchTime := p.Now() - touchStart
		st := pl.Hyp.CAS().Stats()
		tbl.Set("first-touch blocks per host", "value", touchBlocks)
		tbl.Set("mean first-touch us per host", "value", float64(touchTime)/hosts/1000)
		tbl.Set("remote fetches after first touch", "value", float64(st.RemoteFetches))
		tbl.Set("materializations after first touch", "value", float64(pl.Hyp.CASMaterializations))
		tbl.Note(fmt.Sprintf("8 hosts reference %d logical blocks backed by %d unique chunks; fork time is refcounts plus one metadata PUT",
			st.BlocksLogical, st.ChunksLive))
		return nil
	})
	if err != nil {
		return nil, err
	}
	tbl.Note("every host verifies its materialized working set bit-exactly against the sealed content")
	return tbl, nil
}
