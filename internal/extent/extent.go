// Package extent implements the NeSC extent tree (paper §IV-B, Fig. 4): the
// per-VF translation table the hypervisor serializes into host memory and
// the device walks with DMA reads to translate virtual LBAs (vLBA) into
// physical LBAs (pLBA).
//
// A tree node is a fixed-size record:
//
//	header (8 bytes, big-endian):
//	    magic    uint16  0xE5C0
//	    depth    uint16  0 = leaf (extent pointers), >0 = internal (node pointers)
//	    count    uint16  valid entries
//	    capacity uint16  entry slots in this node
//	entries (24 bytes each):
//	    firstLogical uint64  first vLBA covered by the entry
//	    count        uint32  number of logical blocks covered
//	    flags        uint32  leaf: bit 0 = write-protected (copy-on-write
//	                         shared extent; device writes trap to the host)
//	    pointer      uint64  leaf: first pLBA of the extent
//	                         internal: host address of the child node,
//	                                   0 (NULL) = subtree pruned by the host
//
// The layout mirrors the paper's Fig. 4b: an extent pointer is
// (first logical block, number of blocks, first physical block); a node
// pointer is (first logical block, number of blocks, next node pointer), and
// a NULL next-node pointer marks a subtree the hypervisor pruned under
// memory pressure.
package extent

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"nesc/internal/hostmem"
)

const (
	// Magic marks a valid serialized node.
	Magic = 0xE5C0
	// HeaderSize and EntrySize define the wire layout.
	HeaderSize = 8
	EntrySize  = 24
	// DefaultFanout yields 248-byte nodes, close to the 256-byte fetch unit
	// a hardware walker would use.
	DefaultFanout = 10
	// FlagProtected marks a leaf extent as write-protected: its physical
	// blocks are shared (copy-on-write) and a device-side write must trap to
	// the hypervisor instead of writing through.
	FlagProtected = uint32(1) << 0
)

// NodeBytes reports the serialized size of a node with the given fanout.
func NodeBytes(fanout int) int64 { return HeaderSize + int64(fanout)*EntrySize }

// Run is one contiguous mapping of Count logical blocks starting at Logical
// onto physical blocks starting at Physical. Flags carries the on-wire entry
// flags (FlagProtected); the zero value is an ordinary writable mapping.
type Run struct {
	Logical  uint64
	Physical uint64
	Count    uint64
	Flags    uint32
}

// End reports the first logical block past the run.
func (r Run) End() uint64 { return r.Logical + r.Count }

// Protected reports whether the run is write-protected (CoW shared).
func (r Run) Protected() bool { return r.Flags&FlagProtected != 0 }

// Entry is a decoded node entry. For leaves Ptr is the first physical block;
// for internal nodes it is the child node's host address (0 = pruned).
type Entry struct {
	FirstLogical uint64
	Count        uint32
	Flags        uint32
	Ptr          uint64
}

// NodeView is a decoded node as the device's block-walk unit sees it.
type NodeView struct {
	Depth    int
	Count    int
	Capacity int
	Entries  []Entry
}

// Leaf reports whether the node holds extent pointers.
func (n *NodeView) Leaf() bool { return n.Depth == 0 }

// Find locates the entry covering vlba using binary search, reporting false
// when vlba falls in a coverage gap (a hole).
func (n *NodeView) Find(vlba uint64) (Entry, bool) {
	ents := n.Entries[:n.Count]
	// First entry with FirstLogical > vlba; candidate is its predecessor.
	i := sort.Search(len(ents), func(i int) bool { return ents[i].FirstLogical > vlba })
	if i == 0 {
		return Entry{}, false
	}
	e := ents[i-1]
	if vlba >= e.FirstLogical+uint64(e.Count) {
		return Entry{}, false
	}
	return e, true
}

// ParseNode decodes a serialized node image. It is the exact inverse of the
// serializer and is shared by the device walker, the software Lookup, and
// tests.
func ParseNode(b []byte) (*NodeView, error) {
	if len(b) < HeaderSize {
		return nil, fmt.Errorf("extent: node image of %d bytes too small", len(b))
	}
	if m := binary.BigEndian.Uint16(b[0:]); m != Magic {
		return nil, fmt.Errorf("extent: bad node magic %#x", m)
	}
	n := &NodeView{
		Depth:    int(binary.BigEndian.Uint16(b[2:])),
		Count:    int(binary.BigEndian.Uint16(b[4:])),
		Capacity: int(binary.BigEndian.Uint16(b[6:])),
	}
	if n.Count > n.Capacity {
		return nil, fmt.Errorf("extent: node count %d exceeds capacity %d", n.Count, n.Capacity)
	}
	if int64(len(b)) < HeaderSize+int64(n.Count)*EntrySize {
		return nil, fmt.Errorf("extent: node image truncated")
	}
	n.Entries = make([]Entry, n.Count)
	for i := 0; i < n.Count; i++ {
		off := HeaderSize + i*EntrySize
		n.Entries[i] = Entry{
			FirstLogical: binary.BigEndian.Uint64(b[off:]),
			Count:        binary.BigEndian.Uint32(b[off+8:]),
			Flags:        binary.BigEndian.Uint32(b[off+12:]),
			Ptr:          binary.BigEndian.Uint64(b[off+16:]),
		}
	}
	return n, nil
}

func serializeNode(b []byte, depth, capacity int, entries []Entry) {
	binary.BigEndian.PutUint16(b[0:], Magic)
	binary.BigEndian.PutUint16(b[2:], uint16(depth))
	binary.BigEndian.PutUint16(b[4:], uint16(len(entries)))
	binary.BigEndian.PutUint16(b[6:], uint16(capacity))
	for i, e := range entries {
		off := HeaderSize + i*EntrySize
		binary.BigEndian.PutUint64(b[off:], e.FirstLogical)
		binary.BigEndian.PutUint32(b[off+8:], e.Count)
		binary.BigEndian.PutUint32(b[off+12:], e.Flags)
		binary.BigEndian.PutUint64(b[off+16:], e.Ptr)
	}
}

// Tree is a serialized extent tree resident in host memory, owned by the
// hypervisor. The device only ever sees the root address and raw node bytes.
type Tree struct {
	mem    *hostmem.Memory
	fanout int
	root   hostmem.Addr
	nodes  []hostmem.Addr // every allocation, for Free/accounting
	runs   []Run          // authoritative mapping, kept for rebuilds
}

// Build validates and serializes runs into a tree in mem. Runs must be
// sorted by Logical and non-overlapping; runs longer than MaxUint32 blocks
// are split transparently.
func Build(mem *hostmem.Memory, runs []Run, fanout int) (*Tree, error) {
	if fanout < 2 {
		fanout = DefaultFanout
	}
	norm, err := normalize(runs)
	if err != nil {
		return nil, err
	}
	t := &Tree{mem: mem, fanout: fanout, runs: norm}
	if err := t.serialize(); err != nil {
		t.Free()
		return nil, err
	}
	return t, nil
}

func normalize(runs []Run) ([]Run, error) {
	out := make([]Run, 0, len(runs))
	var prevEnd uint64
	first := true
	for i, r := range runs {
		if r.Count == 0 {
			continue
		}
		if !first && r.Logical < prevEnd {
			return nil, fmt.Errorf("extent: run %d (logical %d) overlaps or is unsorted (previous end %d)", i, r.Logical, prevEnd)
		}
		if r.Logical+r.Count < r.Logical {
			return nil, fmt.Errorf("extent: run %d overflows logical space", i)
		}
		// Split runs exceeding the 32-bit on-wire count.
		for r.Count > math.MaxUint32 {
			out = append(out, Run{Logical: r.Logical, Physical: r.Physical, Count: math.MaxUint32, Flags: r.Flags})
			r.Logical += math.MaxUint32
			r.Physical += math.MaxUint32
			r.Count -= math.MaxUint32
		}
		out = append(out, r)
		prevEnd = r.End()
		first = false
	}
	return out, nil
}

// serialize writes t.runs as a fresh node hierarchy and updates t.root.
func (t *Tree) serialize() error {
	// Leaves.
	type built struct {
		addr  hostmem.Addr
		first uint64
		span  uint64 // coverage from first to end of last entry
	}
	var level []built
	entries := make([]Entry, 0, t.fanout)
	flushLeaf := func() error {
		if len(entries) == 0 {
			return nil
		}
		addr, err := t.allocNode()
		if err != nil {
			return err
		}
		img, err := t.mem.Slice(addr, NodeBytes(t.fanout))
		if err != nil {
			return err
		}
		serializeNode(img, 0, t.fanout, entries)
		first := entries[0].FirstLogical
		last := entries[len(entries)-1]
		level = append(level, built{addr: addr, first: first, span: last.FirstLogical + uint64(last.Count) - first})
		entries = entries[:0]
		return nil
	}
	for _, r := range t.runs {
		entries = append(entries, Entry{FirstLogical: r.Logical, Count: uint32(r.Count), Flags: r.Flags, Ptr: r.Physical})
		if len(entries) == t.fanout {
			if err := flushLeaf(); err != nil {
				return err
			}
		}
	}
	if err := flushLeaf(); err != nil {
		return err
	}
	if len(level) == 0 {
		// Empty mapping: a single empty leaf so the device always has a
		// valid node to walk (every vLBA is a hole).
		addr, err := t.allocNode()
		if err != nil {
			return err
		}
		img, err := t.mem.Slice(addr, NodeBytes(t.fanout))
		if err != nil {
			return err
		}
		serializeNode(img, 0, t.fanout, nil)
		t.root = addr
		return nil
	}

	// Internal levels until a single root remains.
	depth := 1
	for len(level) > 1 {
		var parents []built
		for i := 0; i < len(level); i += t.fanout {
			end := i + t.fanout
			if end > len(level) {
				end = len(level)
			}
			group := level[i:end]
			ents := make([]Entry, len(group))
			for j, c := range group {
				count := c.span
				if count > math.MaxUint32 {
					count = math.MaxUint32
				}
				ents[j] = Entry{FirstLogical: c.first, Count: uint32(count), Ptr: uint64(c.addr)}
			}
			addr, err := t.allocNode()
			if err != nil {
				return err
			}
			img, err := t.mem.Slice(addr, NodeBytes(t.fanout))
			if err != nil {
				return err
			}
			serializeNode(img, depth, t.fanout, ents)
			first := group[0].first
			lastC := group[len(group)-1]
			parents = append(parents, built{addr: addr, first: first, span: lastC.first + lastC.span - first})
		}
		level = parents
		depth++
	}
	t.root = level[0].addr
	return nil
}

func (t *Tree) allocNode() (hostmem.Addr, error) {
	addr, err := t.mem.Alloc(NodeBytes(t.fanout), 8)
	if err != nil {
		return 0, err
	}
	t.nodes = append(t.nodes, addr)
	return addr, nil
}

// Root reports the host address of the root node — the value the hypervisor
// programs into the VF's ExtentTreeRoot register.
func (t *Tree) Root() hostmem.Addr { return t.root }

// Fanout reports the node fanout.
func (t *Tree) Fanout() int { return t.fanout }

// Nodes reports how many nodes are currently resident in host memory.
func (t *Tree) Nodes() int { return len(t.nodes) }

// ResidentBytes reports the host memory held by the serialized tree.
func (t *Tree) ResidentBytes() int64 { return int64(len(t.nodes)) * NodeBytes(t.fanout) }

// Runs returns the authoritative mapping (a copy).
func (t *Tree) Runs() []Run { return append([]Run(nil), t.runs...) }

// Free releases every node of the tree from host memory.
func (t *Tree) Free() {
	for _, a := range t.nodes {
		// Free can only fail on double-free, which would be a Tree bug.
		if err := t.mem.Free(a); err != nil {
			panic(err)
		}
	}
	t.nodes = nil
	t.root = 0
}

// Rebuild replaces the mapping with runs and reserializes the whole tree.
// This is the hypervisor's response both to lazy allocation (new blocks
// mapped on first write) and to a device miss on a pruned subtree. The root
// address changes; the caller must reprogram ExtentTreeRoot before signaling
// RewalkTree.
func (t *Tree) Rebuild(runs []Run) error {
	norm, err := normalize(runs)
	if err != nil {
		return err
	}
	old := t.nodes
	t.nodes = nil
	t.runs = norm
	if err := t.serialize(); err != nil {
		// Roll back allocation bookkeeping; the tree is now unusable but
		// memory is not leaked.
		for _, a := range t.nodes {
			if ferr := t.mem.Free(a); ferr != nil {
				panic(ferr)
			}
		}
		t.nodes = old
		return err
	}
	for _, a := range old {
		if err := t.mem.Free(a); err != nil {
			panic(err)
		}
	}
	return nil
}

// Prune walks the tree and detaches up to maxNodes descendant subtrees,
// freeing their memory and NULLing the parent pointers (paper §IV-B: "If
// memory becomes tight, the hypervisor can prune parts of the extent tree
// and mark the pruned sections by storing NULL in their respective Next Node
// Pointer"). It returns the number of nodes freed. Pruning a tree whose root
// is a leaf is a no-op.
func (t *Tree) Prune(maxNodes int) (int, error) {
	if maxNodes <= 0 {
		return 0, nil
	}
	img := make([]byte, NodeBytes(t.fanout))
	freed := 0
	// BFS from the root over internal nodes; prune children greedily.
	queue := []hostmem.Addr{t.root}
	for len(queue) > 0 && freed < maxNodes {
		addr := queue[0]
		queue = queue[1:]
		if err := t.mem.Read(addr, img); err != nil {
			return freed, err
		}
		n, err := ParseNode(img)
		if err != nil {
			return freed, err
		}
		if n.Leaf() {
			continue
		}
		for i := 0; i < n.Count && freed < maxNodes; i++ {
			child := hostmem.Addr(n.Entries[i].Ptr)
			if child == 0 {
				continue
			}
			nf, err := t.freeSubtree(child)
			if err != nil {
				return freed, err
			}
			freed += nf
			// NULL the child pointer in place.
			off := addr + HeaderSize + int64(i)*EntrySize + 16
			if err := t.mem.WriteU64(off, 0); err != nil {
				return freed, err
			}
		}
	}
	return freed, nil
}

// freeSubtree recursively frees the subtree rooted at addr, returning the
// node count freed, and drops the addresses from the tree's node list.
func (t *Tree) freeSubtree(addr hostmem.Addr) (int, error) {
	img := make([]byte, NodeBytes(t.fanout))
	if err := t.mem.Read(addr, img); err != nil {
		return 0, err
	}
	n, err := ParseNode(img)
	if err != nil {
		return 0, err
	}
	freed := 0
	if !n.Leaf() {
		for i := 0; i < n.Count; i++ {
			if child := hostmem.Addr(n.Entries[i].Ptr); child != 0 {
				nf, err := t.freeSubtree(child)
				if err != nil {
					return freed, err
				}
				freed += nf
			}
		}
	}
	if err := t.mem.Free(addr); err != nil {
		return freed, err
	}
	for i, a := range t.nodes {
		if a == addr {
			t.nodes = append(t.nodes[:i], t.nodes[i+1:]...)
			break
		}
	}
	return freed + 1, nil
}

// Resolution is the outcome of translating one vLBA.
type Resolution struct {
	// Mapped: a physical mapping exists; PLBA is valid.
	Mapped bool
	// Hole: no extent covers the vLBA (reads return zeros; writes require
	// allocation).
	Hole bool
	// Pruned: the walk hit a NULL child pointer; the host must regenerate
	// the mapping.
	Pruned bool
	// Protected: the covering extent is write-protected (CoW shared); a
	// write must trap to the host to break sharing before it may proceed.
	Protected bool
	// PLBA is the translated physical block address (valid when Mapped).
	PLBA uint64
	// Extent is the whole covering extent (valid when Mapped) — what the
	// BTLB caches.
	Extent Run
	// Levels counts nodes visited during the walk.
	Levels int
}

// Lookup is the software reference walker: it performs the same walk the
// device's block-walk unit performs, synchronously against host memory. The
// device model, tests, and the hypervisor all use it as ground truth.
func Lookup(mem *hostmem.Memory, root hostmem.Addr, fanout int, vlba uint64) (Resolution, error) {
	var res Resolution
	if root == 0 {
		return res, fmt.Errorf("extent: NULL root")
	}
	img := make([]byte, NodeBytes(fanout))
	addr := root
	for {
		if err := mem.Read(addr, img); err != nil {
			return res, err
		}
		n, err := ParseNode(img)
		if err != nil {
			return res, err
		}
		res.Levels++
		e, ok := n.Find(vlba)
		if !ok {
			res.Hole = true
			return res, nil
		}
		if n.Leaf() {
			res.Mapped = true
			res.Extent = Run{Logical: e.FirstLogical, Physical: e.Ptr, Count: uint64(e.Count), Flags: e.Flags}
			res.Protected = e.Flags&FlagProtected != 0
			res.PLBA = e.Ptr + (vlba - e.FirstLogical)
			return res, nil
		}
		if e.Ptr == 0 {
			res.Pruned = true
			return res, nil
		}
		addr = hostmem.Addr(e.Ptr)
	}
}

// CollectRuns walks the whole tree and returns the mapped runs in logical
// order. Pruned subtrees contribute nothing; callers that need completeness
// should consult Tree.Runs instead.
func CollectRuns(mem *hostmem.Memory, root hostmem.Addr, fanout int) ([]Run, error) {
	var out []Run
	img := make([]byte, NodeBytes(fanout))
	var walk func(addr hostmem.Addr) error
	walk = func(addr hostmem.Addr) error {
		if err := mem.Read(addr, img); err != nil {
			return err
		}
		n, err := ParseNode(img)
		if err != nil {
			return err
		}
		if n.Leaf() {
			for _, e := range n.Entries {
				out = append(out, Run{Logical: e.FirstLogical, Physical: e.Ptr, Count: uint64(e.Count), Flags: e.Flags})
			}
			return nil
		}
		children := make([]hostmem.Addr, 0, n.Count)
		for _, e := range n.Entries {
			if e.Ptr != 0 {
				children = append(children, hostmem.Addr(e.Ptr))
			}
		}
		for _, c := range children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return out, nil
}

// Depth reports the tree height in levels (1 for a single leaf).
func (t *Tree) Depth() (int, error) {
	img := make([]byte, NodeBytes(t.fanout))
	if err := t.mem.Read(t.root, img); err != nil {
		return 0, err
	}
	n, err := ParseNode(img)
	if err != nil {
		return 0, err
	}
	return n.Depth + 1, nil
}
