package extent

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nesc/internal/hostmem"
)

func newMem() *hostmem.Memory { return hostmem.New(8 << 20) }

func mustBuild(t *testing.T, mem *hostmem.Memory, runs []Run, fanout int) *Tree {
	t.Helper()
	tr, err := Build(mem, runs, fanout)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSingleExtentLookup(t *testing.T) {
	mem := newMem()
	tr := mustBuild(t, mem, []Run{{Logical: 0, Physical: 100, Count: 50}}, DefaultFanout)
	for _, vlba := range []uint64{0, 1, 49} {
		res, err := Lookup(mem, tr.Root(), tr.Fanout(), vlba)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Mapped || res.PLBA != 100+vlba {
			t.Fatalf("vlba %d -> %+v", vlba, res)
		}
		if res.Levels != 1 {
			t.Fatalf("single-leaf tree walked %d levels", res.Levels)
		}
	}
	res, err := Lookup(mem, tr.Root(), tr.Fanout(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hole || res.Mapped {
		t.Fatalf("past-end lookup = %+v, want hole", res)
	}
}

func TestHoleBetweenExtents(t *testing.T) {
	mem := newMem()
	tr := mustBuild(t, mem, []Run{
		{Logical: 0, Physical: 10, Count: 4},
		{Logical: 8, Physical: 20, Count: 4},
	}, DefaultFanout)
	for vlba, wantHole := range map[uint64]bool{0: false, 3: false, 4: true, 7: true, 8: false, 11: false, 12: true} {
		res, err := Lookup(mem, tr.Root(), tr.Fanout(), vlba)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hole != wantHole {
			t.Fatalf("vlba %d: hole=%v, want %v", vlba, res.Hole, wantHole)
		}
	}
}

func TestMultiLevelTree(t *testing.T) {
	mem := newMem()
	// 100 discontiguous runs with fanout 4 forces >= 3 levels.
	var runs []Run
	for i := 0; i < 100; i++ {
		runs = append(runs, Run{Logical: uint64(i * 10), Physical: uint64(1000 + i*7), Count: 5})
	}
	tr := mustBuild(t, mem, runs, 4)
	d, err := tr.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d < 3 {
		t.Fatalf("depth = %d, want >= 3", d)
	}
	for _, r := range runs {
		for off := uint64(0); off < r.Count; off++ {
			res, err := Lookup(mem, tr.Root(), tr.Fanout(), r.Logical+off)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Mapped || res.PLBA != r.Physical+off {
				t.Fatalf("vlba %d -> %+v, want plba %d", r.Logical+off, res, r.Physical+off)
			}
			if res.Levels != d {
				t.Fatalf("walk visited %d levels, want %d", res.Levels, d)
			}
		}
		// Gap after each run is a hole.
		res, _ := Lookup(mem, tr.Root(), tr.Fanout(), r.End())
		if !res.Hole {
			t.Fatalf("gap at %d not a hole", r.End())
		}
	}
}

func TestBuildRejectsOverlapsAndUnsorted(t *testing.T) {
	mem := newMem()
	if _, err := Build(mem, []Run{{Logical: 0, Physical: 0, Count: 10}, {Logical: 5, Physical: 100, Count: 10}}, DefaultFanout); err == nil {
		t.Fatal("overlapping runs accepted")
	}
	if _, err := Build(mem, []Run{{Logical: 10, Physical: 0, Count: 5}, {Logical: 0, Physical: 100, Count: 5}}, DefaultFanout); err == nil {
		t.Fatal("unsorted runs accepted")
	}
	if _, err := Build(mem, []Run{{Logical: math.MaxUint64 - 2, Physical: 0, Count: 10}}, DefaultFanout); err == nil {
		t.Fatal("logical overflow accepted")
	}
}

func TestBuildEmptyMapping(t *testing.T) {
	mem := newMem()
	tr := mustBuild(t, mem, nil, DefaultFanout)
	if tr.Root() == 0 {
		t.Fatal("empty tree has NULL root")
	}
	res, err := Lookup(mem, tr.Root(), tr.Fanout(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hole {
		t.Fatalf("empty tree lookup = %+v, want hole", res)
	}
}

func TestZeroCountRunsSkipped(t *testing.T) {
	mem := newMem()
	tr := mustBuild(t, mem, []Run{{Logical: 0, Physical: 5, Count: 0}, {Logical: 3, Physical: 30, Count: 2}}, DefaultFanout)
	res, _ := Lookup(mem, tr.Root(), tr.Fanout(), 0)
	if !res.Hole {
		t.Fatal("zero-count run produced a mapping")
	}
	res, _ = Lookup(mem, tr.Root(), tr.Fanout(), 3)
	if !res.Mapped || res.PLBA != 30 {
		t.Fatalf("lookup = %+v", res)
	}
}

func TestHugeRunSplit(t *testing.T) {
	mem := newMem()
	count := uint64(math.MaxUint32) + 5
	tr := mustBuild(t, mem, []Run{{Logical: 0, Physical: 0, Count: count}}, DefaultFanout)
	// The tail past MaxUint32 must still translate correctly.
	vlba := uint64(math.MaxUint32) + 2
	res, err := Lookup(mem, tr.Root(), tr.Fanout(), vlba)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mapped || res.PLBA != vlba {
		t.Fatalf("tail lookup = %+v", res)
	}
}

func TestFreeReleasesAllMemory(t *testing.T) {
	mem := newMem()
	before := mem.AllocBytes
	var runs []Run
	for i := 0; i < 500; i++ {
		runs = append(runs, Run{Logical: uint64(i * 4), Physical: uint64(i * 4), Count: 2})
	}
	tr := mustBuild(t, mem, runs, 4)
	if tr.ResidentBytes() == 0 || tr.Nodes() == 0 {
		t.Fatal("tree reports no resident memory")
	}
	tr.Free()
	if mem.AllocBytes != before {
		t.Fatalf("leak: %d bytes still allocated", mem.AllocBytes-before)
	}
}

func TestRebuildChangesMappingAndFreesOldNodes(t *testing.T) {
	mem := newMem()
	tr := mustBuild(t, mem, []Run{{Logical: 0, Physical: 100, Count: 10}}, DefaultFanout)
	live := mem.AllocBytes
	if err := tr.Rebuild([]Run{{Logical: 0, Physical: 100, Count: 10}, {Logical: 10, Physical: 500, Count: 10}}); err != nil {
		t.Fatal(err)
	}
	res, err := Lookup(mem, tr.Root(), tr.Fanout(), 15)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mapped || res.PLBA != 505 {
		t.Fatalf("post-rebuild lookup = %+v", res)
	}
	// Same node count (still one leaf), so allocation steady-state holds.
	if mem.AllocBytes != live {
		t.Fatalf("rebuild leaked: %d -> %d", live, mem.AllocBytes)
	}
}

func TestPruneProducesPrunedResolution(t *testing.T) {
	mem := newMem()
	var runs []Run
	for i := 0; i < 64; i++ {
		runs = append(runs, Run{Logical: uint64(i * 4), Physical: uint64(i * 4), Count: 2})
	}
	tr := mustBuild(t, mem, runs, 4)
	nodesBefore := tr.Nodes()
	freed, err := tr.Prune(4)
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Fatal("prune freed nothing on a multi-level tree")
	}
	if tr.Nodes() != nodesBefore-freed {
		t.Fatalf("node accounting: %d -> %d after freeing %d", nodesBefore, tr.Nodes(), freed)
	}
	// Some lookups now resolve as Pruned (never as wrong mappings).
	pruned := 0
	for _, r := range runs {
		res, err := Lookup(mem, tr.Root(), tr.Fanout(), r.Logical)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case res.Pruned:
			pruned++
		case res.Mapped:
			if res.PLBA != r.Physical {
				t.Fatalf("surviving mapping wrong: %+v", res)
			}
		default:
			t.Fatalf("unexpected resolution %+v", res)
		}
	}
	if pruned == 0 {
		t.Fatal("no lookup hit a pruned subtree")
	}
	// Rebuild restores everything.
	if err := tr.Rebuild(runs); err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		res, _ := Lookup(mem, tr.Root(), tr.Fanout(), r.Logical)
		if !res.Mapped || res.PLBA != r.Physical {
			t.Fatalf("post-rebuild mapping wrong at %d: %+v", r.Logical, res)
		}
	}
}

func TestPruneLeafRootNoop(t *testing.T) {
	mem := newMem()
	tr := mustBuild(t, mem, []Run{{Logical: 0, Physical: 0, Count: 10}}, DefaultFanout)
	freed, err := tr.Prune(100)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatalf("pruned %d nodes from single-leaf tree", freed)
	}
}

func TestCollectRunsRoundTrip(t *testing.T) {
	mem := newMem()
	var runs []Run
	for i := 0; i < 77; i++ {
		runs = append(runs, Run{Logical: uint64(i * 9), Physical: uint64(3000 + i*5), Count: 3})
	}
	tr := mustBuild(t, mem, runs, 5)
	got, err := CollectRuns(mem, tr.Root(), tr.Fanout())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(runs) {
		t.Fatalf("collected %d runs, want %d", len(got), len(runs))
	}
	for i := range runs {
		if got[i] != runs[i] {
			t.Fatalf("run %d = %+v, want %+v", i, got[i], runs[i])
		}
	}
}

func TestParseNodeRejectsGarbage(t *testing.T) {
	if _, err := ParseNode(nil); err == nil {
		t.Fatal("nil image accepted")
	}
	b := make([]byte, 64)
	if _, err := ParseNode(b); err == nil {
		t.Fatal("zero magic accepted")
	}
	// Valid magic but count > capacity.
	b[0], b[1] = 0xE5, 0xC0
	b[4], b[5] = 0x00, 0x09 // count 9
	b[6], b[7] = 0x00, 0x02 // capacity 2
	if _, err := ParseNode(b); err == nil {
		t.Fatal("count > capacity accepted")
	}
}

func TestNodeViewFind(t *testing.T) {
	n := &NodeView{Depth: 0, Count: 3, Capacity: 4, Entries: []Entry{
		{FirstLogical: 10, Count: 5, Ptr: 100},
		{FirstLogical: 20, Count: 5, Ptr: 200},
		{FirstLogical: 30, Count: 5, Ptr: 300},
	}}
	if _, ok := n.Find(5); ok {
		t.Fatal("found entry before first")
	}
	if e, ok := n.Find(12); !ok || e.Ptr != 100 {
		t.Fatalf("Find(12) = %+v, %v", e, ok)
	}
	if _, ok := n.Find(17); ok {
		t.Fatal("found entry in gap")
	}
	if e, ok := n.Find(34); !ok || e.Ptr != 300 {
		t.Fatalf("Find(34) = %+v, %v", e, ok)
	}
	if _, ok := n.Find(35); ok {
		t.Fatal("found entry past last")
	}
}

// Property: for random mappings and random probes, Lookup agrees with a
// naive linear scan over the runs, across fanouts.
func TestLookupMatchesReferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		mem := newMem()
		fanout := 2 + rng.Intn(9)
		nRuns := 1 + rng.Intn(200)
		var runs []Run
		next := uint64(0)
		for i := 0; i < nRuns; i++ {
			next += uint64(rng.Intn(5)) // occasional holes (gap 0 = adjacent)
			count := uint64(1 + rng.Intn(20))
			runs = append(runs, Run{Logical: next, Physical: uint64(rng.Intn(1 << 20)), Count: count})
			next += count
		}
		tr, err := Build(mem, runs, fanout)
		if err != nil {
			t.Fatal(err)
		}
		ref := func(vlba uint64) (uint64, bool) {
			for _, r := range runs {
				if vlba >= r.Logical && vlba < r.End() {
					return r.Physical + (vlba - r.Logical), true
				}
			}
			return 0, false
		}
		for probe := 0; probe < 200; probe++ {
			vlba := uint64(rng.Intn(int(next) + 10))
			wantP, wantMapped := ref(vlba)
			res, err := Lookup(mem, tr.Root(), tr.Fanout(), vlba)
			if err != nil {
				t.Fatal(err)
			}
			if res.Mapped != wantMapped {
				t.Fatalf("trial %d fanout %d vlba %d: mapped=%v want %v", trial, fanout, vlba, res.Mapped, wantMapped)
			}
			if wantMapped && res.PLBA != wantP {
				t.Fatalf("trial %d vlba %d: plba=%d want %d", trial, vlba, res.PLBA, wantP)
			}
			if wantMapped {
				// The covering extent must actually cover vlba.
				e := res.Extent
				if vlba < e.Logical || vlba >= e.End() || e.Physical+(vlba-e.Logical) != res.PLBA {
					t.Fatalf("covering extent inconsistent: vlba %d, extent %+v", vlba, e)
				}
			}
		}
		tr.Free()
	}
}

// Property: serialization round-trips through ParseNode for arbitrary entry
// sets.
func TestSerializeParseRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		fanout := DefaultFanout
		n := len(raw)
		if n > fanout {
			n = fanout
		}
		entries := make([]Entry, n)
		logical := uint64(0)
		for i := 0; i < n; i++ {
			count := raw[i]%1000 + 1
			entries[i] = Entry{FirstLogical: logical, Count: count, Ptr: uint64(raw[i]) * 7}
			logical += uint64(count) + 1
		}
		b := make([]byte, NodeBytes(fanout))
		serializeNode(b, 0, fanout, entries)
		nv, err := ParseNode(b)
		if err != nil {
			return false
		}
		if nv.Count != n || !nv.Leaf() || nv.Capacity != fanout {
			return false
		}
		for i := range entries {
			if nv.Entries[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthGrowsLogarithmically(t *testing.T) {
	mem := hostmem.New(64 << 20)
	var runs []Run
	for i := 0; i < 10000; i++ {
		runs = append(runs, Run{Logical: uint64(i * 2), Physical: uint64(i * 2), Count: 1})
	}
	tr := mustBuild(t, mem, runs, 10)
	d, err := tr.Depth()
	if err != nil {
		t.Fatal(err)
	}
	// 10000 entries at fanout 10: 1000 leaves -> 100 -> 10 -> 1 root,
	// i.e. 4 levels of nodes.
	if d != 4 {
		t.Fatalf("depth = %d, want 4", d)
	}
}
