package ring

import "testing"

func TestDescriptorRoundTrip(t *testing.T) {
	var b [DescBytes]byte
	EncodeDescriptor(b[:], OpWrite, 77, 0xdeadbeefcafe, 9, 0x7ffff000)
	op, id, lba, count, buf := DecodeDescriptor(b[:])
	if op != OpWrite || id != 77 || lba != 0xdeadbeefcafe || count != 9 || buf != 0x7ffff000 {
		t.Fatalf("round trip mangled: op=%d id=%d lba=%#x count=%d buf=%#x", op, id, lba, count, buf)
	}
}

func TestCompletionRoundTrip(t *testing.T) {
	var b [CplBytes]byte
	EncodeCompletion(b[:], 42, StatusMediumError, 1<<31)
	id, status, seq := DecodeCompletion(b[:])
	if id != 42 || status != StatusMediumError || seq != 1<<31 {
		t.Fatalf("round trip mangled: id=%d status=%d seq=%d", id, status, seq)
	}
}

func TestValidSize(t *testing.T) {
	for _, n := range []uint64{1, 2, 8, 128, 256, MaxEntries} {
		if !ValidSize(n) {
			t.Errorf("ValidSize(%d) = false, want true", n)
		}
	}
	for _, n := range []uint64{0, 3, 100, 255, 257, MaxEntries + 1, MaxEntries * 2} {
		if ValidSize(n) {
			t.Errorf("ValidSize(%d) = true, want false", n)
		}
	}
}

func TestDoorbellValid(t *testing.T) {
	cases := []struct {
		prod, cons, entries uint32
		want                bool
	}{
		{0, 0, 8, true},           // empty announcement
		{8, 0, 8, true},           // exactly one full ring
		{9, 0, 8, false},          // claims more than the ring holds
		{1, 0xFFFFFFFF, 8, true},  // wraparound: distance 2
		{0xFFFFFFF0, 4, 8, false}, // backwards (huge modular distance)
		{260, 255, 256, true},     // free-running indices past the size
		{1024, 512, 256, false},   // a lap ahead of the consumer
	}
	for _, c := range cases {
		if got := DoorbellValid(c.prod, c.cons, c.entries); got != c.want {
			t.Errorf("DoorbellValid(%d,%d,%d) = %v, want %v", c.prod, c.cons, c.entries, got, c.want)
		}
	}
}

func TestSlots(t *testing.T) {
	if got := DescSlot(1000, 9, 8); got != 1000+1*DescBytes {
		t.Errorf("DescSlot wrap: got %d", got)
	}
	// Sequence 1 is the first completion and occupies slot 0.
	if got := CplSlot(2000, 1, 8); got != 2000 {
		t.Errorf("CplSlot(seq=1): got %d", got)
	}
	if got := CplSlot(2000, 9, 8); got != 2000 {
		t.Errorf("CplSlot(seq=9) should wrap to slot 0: got %d", got)
	}
}

func TestStatusError(t *testing.T) {
	if StatusError(StatusOK) != nil {
		t.Error("StatusOK must map to nil")
	}
	for _, st := range []uint32{StatusOutOfRange, StatusNoSpace, StatusDisabled, StatusDMAFault, StatusMediumError, StatusAborted, 99} {
		if StatusError(st) == nil {
			t.Errorf("status %d must map to an error", st)
		}
	}
}
