package ring

import (
	"bytes"
	"errors"
	"testing"
)

func TestPIDescriptorRoundTrip(t *testing.T) {
	b := make([]byte, DescBytes)
	EncodeDescriptorPI(b, OpWrite|OpFlagPI, 42, 1000, 8, 0x4000, 0xDEADBEEF)
	op, id, lba, count, buf, guard := DecodeDescriptorPI(b)
	if op != OpWrite|OpFlagPI || id != 42 || lba != 1000 || count != 8 || buf != 0x4000 || guard != 0xDEADBEEF {
		t.Fatalf("round trip: op=%#x id=%d lba=%d count=%d buf=%#x guard=%#x", op, id, lba, count, buf, guard)
	}
	if OpCode(op) != OpWrite {
		t.Fatalf("OpCode(%#x) = %#x, want OpWrite", op, OpCode(op))
	}
}

func TestPICompletionRoundTrip(t *testing.T) {
	b := make([]byte, CplBytes)
	EncodeCompletionPI(b, 7, StatusOK, 99, 0xCAFEF00D)
	id, status, seq, guard := DecodeCompletionPI(b)
	if id != 7 || status != StatusOK || seq != 99 || guard != 0xCAFEF00D {
		t.Fatalf("round trip: id=%d status=%d seq=%d guard=%#x", id, status, seq, guard)
	}
}

// TestPIWordsOccupyReservedFields pins the compatibility contract: non-PI
// encodes must produce the exact wire image of a PI encode with guard 0, so
// pre-PI traffic is bit-identical on the wire.
func TestPIWordsOccupyReservedFields(t *testing.T) {
	legacy := make([]byte, DescBytes)
	pi := make([]byte, DescBytes)
	EncodeDescriptor(legacy, OpRead, 1, 2, 3, 4)
	EncodeDescriptorPI(pi, OpRead, 1, 2, 3, 4, 0)
	if !bytes.Equal(legacy, pi) {
		t.Fatal("legacy descriptor differs from PI descriptor with zero guard")
	}
	lc := make([]byte, CplBytes)
	pc := make([]byte, CplBytes)
	EncodeCompletion(lc, 1, 2, 3)
	EncodeCompletionPI(pc, 1, 2, 3, 0)
	if !bytes.Equal(lc, pc) {
		t.Fatal("legacy completion differs from PI completion with zero guard")
	}
}

// TestPIGuardOrderIndependent verifies the XOR-accumulation property the
// device relies on: chunks folded in any order yield the request guard.
func TestPIGuardOrderIndependent(t *testing.T) {
	const bs = 64
	payload := make([]byte, 4*bs)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	want := PIGuard(payload, bs)
	// Fold per-block CRCs in reverse order.
	var got uint32
	for b := 3; b >= 0; b-- {
		got ^= BlockCRC(payload[b*bs : (b+1)*bs])
	}
	if got != want {
		t.Fatalf("reverse accumulation %#x != request guard %#x", got, want)
	}
	// A single flipped bit anywhere must move the guard.
	payload[137] ^= 1
	if PIGuard(payload, bs) == want {
		t.Fatal("guard did not change after a bit flip")
	}
}

func TestStatusIntegrityErrorMapsToSentinel(t *testing.T) {
	err := StatusError(StatusIntegrityError)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("StatusError(StatusIntegrityError) = %v, not ErrIntegrity", err)
	}
	if StatusError(StatusOK) != nil {
		t.Fatal("StatusOK produced an error")
	}
}
