// Package ring defines the NeSC queue-pair protocol: the submission/completion
// wire format, the producer/consumer index arithmetic, the doorbell coherence
// rule, and the completion-status vocabulary. The device (internal/core), the
// guest VF driver, and the hypervisor's PF driver (internal/guest, shared) all
// consume this one definition, so the two sides of the wire cannot drift.
//
// Protocol summary (paper §IV-C, Fig. 6, generalized to N queue pairs per
// function):
//
//   - A queue pair is a submission ring of DescBytes descriptors and a
//     completion ring of CplBytes entries, both resident in host memory and
//     DMAed by the device.
//   - Producer and consumer indices free-run over uint32 and are reduced to a
//     ring slot modulo the entry count; ring sizes are powers of two so the
//     reduction is well defined across wraparound.
//   - A doorbell write announces a new producer index. It is coherent only if
//     it claims at most `entries` not-yet-consumed descriptors; anything else
//     would silently wrap live descriptors and is dropped (with an AER-style
//     error counter on the device).
//   - Completions carry a sequence number that starts at 1 and increments per
//     completion; entry seq occupies slot (seq-1) % entries. The driver's
//     interrupt path consumes strictly in sequence, and its timeout path may
//     skip over gaps left by lost completion writes.
package ring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// piTable is the CRC-32C (Castagnoli) table shared by both ends of the PI
// protocol — the same polynomial T10 DIF guard tags use.
var piTable = crc32.MakeTable(crc32.Castagnoli)

// BlockCRC computes the protection-information CRC of one block image.
func BlockCRC(p []byte) uint32 { return crc32.Checksum(p, piTable) }

// PIGuard computes a request-level guard over a multi-block payload: the XOR
// of each block's CRC-32C. XOR is order-independent, so the device can
// accumulate it chunk by chunk even when chunks complete out of order across
// DMA channels.
func PIGuard(p []byte, blockBytes int) uint32 {
	var g uint32
	for off := 0; off+blockBytes <= len(p); off += blockBytes {
		g ^= crc32.Checksum(p[off:off+blockBytes], piTable)
	}
	return g
}

// ErrIntegrity is the driver-visible sentinel for a guard-tag mismatch that
// survived the device's retry ladder (StatusIntegrityError) or was caught by
// the driver's own end-to-end PI verification. Match with errors.Is.
var ErrIntegrity = errors.New("nesc: data integrity error (guard mismatch)")

// ErrBusy is the driver-visible sentinel for an admission-control fast-fail
// (StatusBusy): the device rejected the request before executing anything
// because the function's inflight budget was exhausted or its deadline could
// no longer be met. Always retryable — nothing was read or written. Match
// with errors.Is.
var ErrBusy = errors.New("nesc: device busy (admission control)")

// Wire sizes.
const (
	// DescBytes is the submission descriptor size.
	DescBytes = 32
	// CplBytes is the completion entry size.
	CplBytes = 16
)

// Operation codes in request descriptors. The low byte is the opcode; the
// bits above it are per-request flags.
const (
	OpRead   = 1
	OpWrite  = 2
	OpVerify = 3 // read and guard-check, no data DMA (scrub traffic)

	// OpFlagPI marks a request carrying end-to-end protection information:
	// the descriptor guard field holds the submitter-computed XOR of the
	// payload's per-block CRC-32C tags on writes, and the completion guard
	// field returns the device-computed XOR on reads.
	OpFlagPI = 0x100

	// OpCodeMask extracts the opcode from an op field.
	OpCodeMask = 0xFF
)

// OpCode strips the flag bits from an op field.
func OpCode(op uint32) uint32 { return op & OpCodeMask }

// Completion status codes.
const (
	StatusOK             = 0
	StatusOutOfRange     = 1 // request exceeds the virtual device
	StatusNoSpace        = 2 // hypervisor denied allocation (quota/space)
	StatusDisabled       = 3 // function not enabled
	StatusDMAFault       = 4 // data-buffer DMA faulted in the IOMMU
	StatusMediumError    = 5 // medium error persisted through all retries
	StatusAborted        = 6 // request killed by a function-level reset
	StatusIntegrityError = 7 // guard-tag mismatch persisted through all retries
	StatusBusy           = 8 // admission control fast-fail: retryable, nothing executed
)

// MaxEntries bounds a ring's entry count.
const MaxEntries = 1 << 16

// Shadow-doorbell block layout. A queue pair may carry an optional 8-byte
// host-memory block shared between driver and device (the NVMe shadow
// doorbell / EventIdx scheme): the driver publishes every new producer index
// in the SHADOW word with a plain memory write, and the device publishes the
// producer index it has caught up to in the EVENT word before it goes idle.
// The driver then rings the MMIO doorbell only when the device needs the
// wakeup — when the device's published EVENT has reached the producer value
// the driver last announced — and skips the write while the device is still
// actively fetching behind it.
const (
	// ShadowBytes is the size of the per-queue shadow block.
	ShadowBytes = 8
	// ShadowOffProd is the offset of the driver-written SHADOW producer word.
	ShadowOffProd = 0
	// ShadowOffEvent is the offset of the device-written EVENT word: the
	// producer index the device had consumed up to when it last went idle.
	ShadowOffEvent = 4
)

// ShouldRing reports whether a submission that advances the producer index
// from prevProd must ring the MMIO doorbell, given the device's published
// EVENT word. The device is guaranteed awake only while it still has
// unconsumed work the driver already announced; once event has caught up to
// prevProd (modulo 2^32) the device may be parked and needs the doorbell.
// Free-running indices make this a signed distance check.
func ShouldRing(prevProd, event uint32) bool {
	return int32(event-prevProd) >= 0
}

// ValidSize reports whether n is an acceptable ring size: a nonzero power of
// two no larger than MaxEntries. Power-of-two sizes keep the free-running
// index arithmetic exact across uint32 wraparound.
func ValidSize(n uint64) bool {
	return n > 0 && n <= MaxEntries && n&(n-1) == 0
}

// DoorbellValid reports whether a doorbell announcing producer index prod is
// coherent with the device's consumer index cons on a ring of `entries`
// slots: the write may claim at most one full ring of not-yet-consumed
// descriptors. Indices free-run, so the distance is computed modulo 2^32.
func DoorbellValid(prod, cons, entries uint32) bool {
	return prod-cons <= entries
}

// DescSlot locates the submission-ring slot of free-running producer/consumer
// index idx.
func DescSlot(base int64, idx, entries uint32) int64 {
	return base + int64(idx%entries)*DescBytes
}

// CplSlot locates the completion-ring slot carrying sequence number seq
// (sequences start at 1; entry seq lives in slot (seq-1) % entries).
func CplSlot(base int64, seq, entries uint32) int64 {
	return base + int64((seq-1)%entries)*CplBytes
}

// EncodeDescriptor writes a request descriptor in the device wire format.
// The word at offset 20 — reserved (always zero) before protection
// information existed — carries the write-direction PI guard; requests
// without OpFlagPI still encode zero there, so the wire image is unchanged
// for non-PI traffic.
func EncodeDescriptor(b []byte, op, id uint32, lba uint64, count uint32, buf int64) {
	EncodeDescriptorPI(b, op, id, lba, count, buf, 0)
}

// EncodeDescriptorPI is EncodeDescriptor with an explicit guard word.
func EncodeDescriptorPI(b []byte, op, id uint32, lba uint64, count uint32, buf int64, guard uint32) {
	binary.BigEndian.PutUint32(b[0:], op)
	binary.BigEndian.PutUint32(b[4:], id)
	binary.BigEndian.PutUint64(b[8:], lba)
	binary.BigEndian.PutUint32(b[16:], count)
	binary.BigEndian.PutUint32(b[20:], guard)
	binary.BigEndian.PutUint64(b[24:], uint64(buf))
}

// DecodeDescriptor parses a request descriptor.
func DecodeDescriptor(b []byte) (op, id uint32, lba uint64, count uint32, buf int64) {
	op, id, lba, count, buf, _ = DecodeDescriptorPI(b)
	return
}

// DecodeDescriptorPI parses a request descriptor including its guard word.
func DecodeDescriptorPI(b []byte) (op, id uint32, lba uint64, count uint32, buf int64, guard uint32) {
	op = binary.BigEndian.Uint32(b[0:])
	id = binary.BigEndian.Uint32(b[4:])
	lba = binary.BigEndian.Uint64(b[8:])
	count = binary.BigEndian.Uint32(b[16:])
	guard = binary.BigEndian.Uint32(b[20:])
	buf = int64(binary.BigEndian.Uint64(b[24:]))
	return
}

// EncodeCompletion writes a completion entry. The word at offset 12 —
// formerly reserved — carries the read-direction PI guard (zero for non-PI
// traffic, keeping the wire image unchanged).
func EncodeCompletion(b []byte, id, status, seq uint32) {
	EncodeCompletionPI(b, id, status, seq, 0)
}

// EncodeCompletionPI is EncodeCompletion with an explicit guard word.
func EncodeCompletionPI(b []byte, id, status, seq, guard uint32) {
	binary.BigEndian.PutUint32(b[0:], id)
	binary.BigEndian.PutUint32(b[4:], status)
	binary.BigEndian.PutUint32(b[8:], seq)
	binary.BigEndian.PutUint32(b[12:], guard)
}

// DecodeCompletion parses a completion entry.
func DecodeCompletion(b []byte) (id, status, seq uint32) {
	id, status, seq, _ = DecodeCompletionPI(b)
	return
}

// DecodeCompletionPI parses a completion entry including its guard word.
func DecodeCompletionPI(b []byte) (id, status, seq, guard uint32) {
	return binary.BigEndian.Uint32(b[0:]), binary.BigEndian.Uint32(b[4:]),
		binary.BigEndian.Uint32(b[8:]), binary.BigEndian.Uint32(b[12:])
}

// StatusError converts a device status to an error (nil for StatusOK). Every
// ring driver maps completions through this one table.
func StatusError(status uint32) error {
	switch status {
	case StatusOK:
		return nil
	case StatusOutOfRange:
		return fmt.Errorf("nesc: request out of device range")
	case StatusNoSpace:
		return fmt.Errorf("nesc: no space (hypervisor denied allocation)")
	case StatusDisabled:
		return fmt.Errorf("nesc: function disabled")
	case StatusDMAFault:
		return fmt.Errorf("nesc: DMA fault")
	case StatusMediumError:
		return fmt.Errorf("nesc: unrecoverable medium error")
	case StatusAborted:
		return fmt.Errorf("nesc: request aborted by reset")
	case StatusIntegrityError:
		return fmt.Errorf("%w (unrecovered by device retries)", ErrIntegrity)
	case StatusBusy:
		return fmt.Errorf("%w (retry budget exhausted)", ErrBusy)
	default:
		return fmt.Errorf("nesc: device status %d", status)
	}
}
