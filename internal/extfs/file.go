package extfs

import (
	"fmt"
	"io"
	"sort"

	"nesc/internal/extent"
	"nesc/internal/sim"
)

// Extent-map manipulation and the file data path.

// mapLookup finds the physical block backing logical block lblk of inode in,
// returning the physical block, the number of contiguously mapped blocks
// from lblk, and whether a mapping exists.
func mapLookup(in *inode, lblk uint64) (uint64, uint64, bool) {
	exts := in.extents
	i := sort.Search(len(exts), func(i int) bool { return exts[i].Logical > lblk })
	if i == 0 {
		return 0, 0, false
	}
	e := exts[i-1]
	if lblk >= e.End() {
		return 0, 0, false
	}
	off := lblk - e.Logical
	return e.Physical + off, e.Count - off, true
}

// insertMapping adds a run to the inode's extent map, merging with adjacent
// extents when both logical and physical spaces are contiguous and the flag
// bits match (a protected extent must never absorb unprotected blocks, or
// the CoW break would copy too much — and vice versa).
func insertMapping(in *inode, r extent.Run) {
	exts := in.extents
	i := sort.Search(len(exts), func(i int) bool { return exts[i].Logical > r.Logical })
	// Try merging with the predecessor.
	if i > 0 {
		p := &exts[i-1]
		if p.End() == r.Logical && p.Physical+p.Count == r.Physical && p.Flags == r.Flags {
			p.Count += r.Count
			// Try merging the successor too.
			if i < len(exts) {
				s := exts[i]
				if p.End() == s.Logical && p.Physical+p.Count == s.Physical && p.Flags == s.Flags {
					p.Count += s.Count
					in.extents = append(exts[:i], exts[i+1:]...)
				}
			}
			return
		}
	}
	// Try merging with the successor.
	if i < len(exts) {
		s := &exts[i]
		if r.End() == s.Logical && r.Physical+r.Count == s.Physical && r.Flags == s.Flags {
			s.Logical = r.Logical
			s.Physical = r.Physical
			s.Count += r.Count
			return
		}
	}
	in.extents = append(exts, extent.Run{})
	copy(in.extents[i+1:], in.extents[i:])
	in.extents[i] = r
}

// ensureAllocated backs every hole in logical blocks [lblk, lblk+n) with
// freshly allocated (and zeroed) physical blocks. Newly allocated blocks are
// zero-filled on disk so stale contents of reused blocks can never leak into
// a file — the isolation property NeSC inherits from the filesystem.
func (fs *FS) ensureAllocated(ctx *sim.Proc, in *inode, lblk, n uint64, zeroFill bool) error {
	end := lblk + n
	for cur := lblk; cur < end; {
		if _, runLen, ok := mapLookup(in, cur); ok {
			cur += runLen
			continue
		}
		// Hole: find its extent (up to the next mapped block or range end).
		holeEnd := end
		i := sort.Search(len(in.extents), func(i int) bool { return in.extents[i].Logical > cur })
		if i < len(in.extents) && in.extents[i].Logical < holeEnd {
			holeEnd = in.extents[i].Logical
		}
		want := holeEnd - cur
		start, got := fs.allocRun(fs.allocHint, want)
		if got == 0 {
			return ErrNoSpace
		}
		if zeroFill {
			if err := fs.zeroBlocks(ctx, start, got); err != nil {
				return err
			}
		}
		insertMapping(in, extent.Run{Logical: cur, Physical: start, Count: got})
		cur += got
	}
	return nil
}

func (fs *FS) zeroBlocks(ctx *sim.Proc, pblk, n uint64) error {
	img := make([]byte, int(n)*fs.bs)
	fs.DataBlockWrites += int64(n)
	return fs.devWrite(ctx, int64(pblk), img)
}

// readRange reads len(p) bytes at byte offset off from the inode's data,
// returning zeros for holes. The caller bounds the range to the file size.
func (fs *FS) readRange(ctx *sim.Proc, in *inode, off uint64, p []byte) error {
	bs := uint64(fs.bs)
	pos := uint64(0)
	for pos < uint64(len(p)) {
		cur := off + pos
		lblk := cur / bs
		inBlk := cur % bs
		pblk, runLen, ok := mapLookup(in, lblk)
		if !ok {
			// Hole: zero until the next mapped extent or end of request.
			holeEnd := uint64(len(p))
			i := sort.Search(len(in.extents), func(i int) bool { return in.extents[i].Logical > lblk })
			if i < len(in.extents) {
				nb := in.extents[i].Logical * bs
				if nb > cur && nb-off < holeEnd {
					holeEnd = nb - off
				}
			}
			clear(p[pos:holeEnd])
			pos = holeEnd
			continue
		}
		// Contiguous mapped span: read as one device operation.
		spanBytes := runLen*bs - inBlk
		if rem := uint64(len(p)) - pos; spanBytes > rem {
			spanBytes = rem
		}
		if inBlk == 0 && spanBytes%bs == 0 {
			fs.DataBlockReads += int64(spanBytes / bs)
			if err := fs.dev.ReadBlocks(ctx, int64(pblk), p[pos:pos+spanBytes]); err != nil {
				return err
			}
		} else {
			// Unaligned edge: read covering whole blocks and copy out.
			firstB := pblk
			nBlocks := (inBlk + spanBytes + bs - 1) / bs
			tmp := make([]byte, nBlocks*bs)
			fs.DataBlockReads += int64(nBlocks)
			if err := fs.dev.ReadBlocks(ctx, int64(firstB), tmp); err != nil {
				return err
			}
			copy(p[pos:pos+spanBytes], tmp[inBlk:])
		}
		pos += spanBytes
	}
	return nil
}

// writeRange writes p at byte offset off, allocating backing blocks for
// holes. meta marks directory data (journaled under metadata mode).
func (fs *FS) writeRange(ctx *sim.Proc, in *inode, off uint64, p []byte, meta bool) error {
	if len(p) == 0 {
		return nil
	}
	bs := uint64(fs.bs)
	firstBlk := off / bs
	lastBlk := (off + uint64(len(p)) - 1) / bs
	// Partially covered edge blocks need read-modify-write; when freshly
	// allocated they are zero-filled first so stale block contents cannot
	// leak. Fully covered blocks are simply overwritten, so zero-filling
	// them would only double write traffic.
	firstPartial := off%bs != 0
	lastPartial := (off+uint64(len(p)))%bs != 0
	interiorStart, interiorEnd := firstBlk, lastBlk+1
	if firstBlk == lastBlk {
		if err := fs.ensureAllocated(ctx, in, firstBlk, 1, firstPartial || lastPartial); err != nil {
			return err
		}
		interiorStart, interiorEnd = 0, 0
	} else {
		if firstPartial {
			if err := fs.ensureAllocated(ctx, in, firstBlk, 1, true); err != nil {
				return err
			}
			interiorStart = firstBlk + 1
		}
		if lastPartial {
			if err := fs.ensureAllocated(ctx, in, lastBlk, 1, true); err != nil {
				return err
			}
			interiorEnd = lastBlk
		}
	}
	if interiorEnd > interiorStart {
		if err := fs.ensureAllocated(ctx, in, interiorStart, interiorEnd-interiorStart, false); err != nil {
			return err
		}
	}

	pos := uint64(0)
	for pos < uint64(len(p)) {
		cur := off + pos
		lblk := cur / bs
		inBlk := cur % bs
		pblk, runLen, ok := mapLookup(in, lblk)
		if !ok {
			return fmt.Errorf("extfs: internal: unallocated block %d after ensureAllocated", lblk)
		}
		spanBytes := runLen*bs - inBlk
		if rem := uint64(len(p)) - pos; spanBytes > rem {
			spanBytes = rem
		}
		if inBlk == 0 && spanBytes%bs == 0 {
			// Whole-block span.
			nBlocks := spanBytes / bs
			fs.countDataWrite(meta, int64(nBlocks))
			if err := fs.writeDataSpan(ctx, pblk, p[pos:pos+spanBytes], meta); err != nil {
				return err
			}
		} else {
			// Partial edge: RMW one block (zero-filled if fresh).
			img := make([]byte, bs)
			fs.DataBlockReads++
			if err := fs.dev.ReadBlocks(ctx, int64(pblk), img); err != nil {
				return err
			}
			n := copy(img[inBlk:], p[pos:])
			if uint64(n) > spanBytes {
				n = int(spanBytes)
			}
			fs.countDataWrite(meta, 1)
			if err := fs.writeDataSpan(ctx, pblk, img, meta); err != nil {
				return err
			}
			spanBytes = uint64(n)
		}
		pos += spanBytes
	}
	if end := off + uint64(len(p)); end > in.size {
		in.size = end
	}
	return nil
}

func (fs *FS) countDataWrite(meta bool, n int64) {
	if meta {
		fs.MetaBlockWrites += n
	} else {
		fs.DataBlockWrites += n
	}
}

// writeDataSpan routes a whole-block span through the journal policy:
// metadata (directory) blocks and — under JournalFull — data blocks go
// block-by-block into the transaction; otherwise the span is written in one
// device operation.
func (fs *FS) writeDataSpan(ctx *sim.Proc, pblk uint64, p []byte, meta bool) error {
	journal := fs.tx != nil && (meta || fs.sb.mode == JournalFull)
	if !journal {
		return fs.devWrite(ctx, int64(pblk), p)
	}
	bs := uint64(fs.bs)
	for i := uint64(0); i < uint64(len(p))/bs; i++ {
		if err := fs.writeBlock(ctx, int64(pblk+i), p[i*bs:(i+1)*bs], meta); err != nil {
			return err
		}
		// writeBlock counted nothing (buffered); commit counts home writes.
		fs.uncountBuffered(meta)
	}
	return nil
}

// uncountBuffered compensates counters for buffered writes, which are
// counted at checkpoint time instead.
func (fs *FS) uncountBuffered(meta bool) {
	// writeBlock only counts on the direct path, so nothing to undo; the
	// caller pre-counted the span, so remove that.
	if meta {
		fs.MetaBlockWrites--
	} else {
		fs.DataBlockWrites--
	}
}

// truncateTo shrinks or grows the file to size bytes, freeing blocks beyond
// the last retained block on shrink. Growth is sparse (no allocation). On a
// shrink that leaves a partially used last block, the tail of that block is
// zeroed on disk so later growth cannot resurrect stale bytes.
func (fs *FS) truncateTo(ctx *sim.Proc, in *inode, size uint64) error {
	bs := uint64(fs.bs)
	keep := (size + bs - 1) / bs
	shrinking := size < in.size
	var kept []extent.Run
	for _, e := range in.extents {
		switch {
		case e.End() <= keep:
			kept = append(kept, e)
		case e.Logical >= keep:
			fs.freeRun(e.Physical, e.Count)
		default:
			n := keep - e.Logical
			kept = append(kept, extent.Run{Logical: e.Logical, Physical: e.Physical, Count: n, Flags: e.Flags})
			fs.freeRun(e.Physical+n, e.Count-n)
		}
	}
	in.extents = kept
	in.size = size
	if shrinking && size%bs != 0 {
		// The last block is rewritten in place below, so it must not be
		// shared with a snapshot.
		if _, err := fs.breakShareLocked(ctx, in, size/bs, 1); err != nil {
			return err
		}
		if pblk, _, ok := mapLookup(in, size/bs); ok {
			img := make([]byte, bs)
			fs.DataBlockReads++
			if err := fs.dev.ReadBlocks(ctx, int64(pblk), img); err != nil {
				return err
			}
			clear(img[size%bs:])
			fs.DataBlockWrites++
			if err := fs.devWrite(ctx, int64(pblk), img); err != nil {
				return err
			}
		}
	}
	return nil
}

// File is an open handle.
type File struct {
	fs       *FS
	ino      uint32
	writable bool
}

// Ino reports the file's inode number.
func (f *File) Ino() uint32 { return f.ino }

// Size reports the file size in bytes.
func (f *File) Size() uint64 { return f.fs.inodes[f.ino].size }

// ReadAt reads len(p) bytes at offset off. Holes read as zeros. Reads past
// EOF are truncated and return io.EOF.
func (f *File) ReadAt(ctx *sim.Proc, p []byte, off int64) (int, error) {
	fs := f.fs
	if err := fs.begin(ctx); err != nil {
		return 0, err
	}
	defer fs.end(ctx)
	in := &fs.inodes[f.ino]
	if off < 0 {
		return 0, fmt.Errorf("extfs: negative offset")
	}
	if uint64(off) >= in.size {
		return 0, io.EOF
	}
	n := len(p)
	var eof error
	if uint64(off)+uint64(n) > in.size {
		n = int(in.size - uint64(off))
		eof = io.EOF
	}
	if err := fs.readRange(ctx, in, uint64(off), p[:n]); err != nil {
		return 0, err
	}
	return n, eof
}

// WriteAt writes p at offset off, allocating blocks lazily and extending the
// file as needed.
func (f *File) WriteAt(ctx *sim.Proc, p []byte, off int64) (int, error) {
	fs := f.fs
	if err := fs.begin(ctx); err != nil {
		return 0, err
	}
	defer fs.end(ctx)
	if !f.writable {
		return 0, ErrPerm
	}
	if off < 0 {
		return 0, fmt.Errorf("extfs: negative offset")
	}
	fs.txBegin()
	in := &fs.inodes[f.ino]
	sizeBefore, allocBefore := in.size, fs.allocSeq
	// Unshare any CoW-protected blocks in the write range first: writeRange
	// overwrites mapped blocks in place, which must never touch a block a
	// snapshot still references.
	broke := false
	if len(p) > 0 {
		bs := uint64(fs.bs)
		first := uint64(off) / bs
		last := (uint64(off) + uint64(len(p)) - 1) / bs
		b, err := fs.breakShareLocked(ctx, in, first, last-first+1)
		if err != nil {
			fs.tx = nil
			return 0, err
		}
		broke = b
	}
	if err := fs.writeRange(ctx, in, uint64(off), p, false); err != nil {
		return 0, err
	}
	// Overwrites of already-allocated blocks change no metadata, so — like
	// a real filesystem — they skip the inode write and its journaling.
	if broke || in.size != sizeBefore || fs.allocSeq != allocBefore {
		if err := fs.writeInode(ctx, f.ino); err != nil {
			return 0, err
		}
		if err := fs.flushDirtyBitmap(ctx); err != nil {
			return 0, err
		}
	}
	if err := fs.txCommit(ctx); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Truncate sets the file size, freeing blocks on shrink.
func (f *File) Truncate(ctx *sim.Proc, size uint64) error {
	fs := f.fs
	if err := fs.begin(ctx); err != nil {
		return err
	}
	defer fs.end(ctx)
	if !f.writable {
		return ErrPerm
	}
	fs.txBegin()
	if err := fs.truncateTo(ctx, &fs.inodes[f.ino], size); err != nil {
		fs.tx = nil
		return err
	}
	if err := fs.writeInode(ctx, f.ino); err != nil {
		return err
	}
	if err := fs.flushDirtyBitmap(ctx); err != nil {
		return err
	}
	return fs.txCommit(ctx)
}

// Sync flushes the underlying device.
func (f *File) Sync(ctx *sim.Proc) error {
	if err := f.fs.begin(ctx); err != nil {
		return err
	}
	defer f.fs.end(ctx)
	return f.fs.dev.Flush(ctx)
}
