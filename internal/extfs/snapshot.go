package extfs

import (
	"encoding/binary"
	"sort"

	"nesc/internal/extent"
	"nesc/internal/sim"
)

// Copy-on-write snapshots. A snapshot shares the source file's physical
// blocks instead of copying them: both files' extents are marked
// write-protected (extent.FlagProtected, persisted in the count word's top
// bit), and every shared block gains an entry in the on-disk reference-count
// table. The table counts EXTRA references — 0 means sole owner — so a
// freshly formatted volume needs no table at all; it is allocated lazily
// from the data region by the first Snapshot and published through the
// superblock (refcntStart/refcntBlocks), all inside one journaled
// transaction. Writes to a protected extent — from the host through
// WriteAt/Truncate, or from a guest via the device's CoW fault — go through
// BreakRange, which copies the shared blocks aside (or just clears a stale
// flag once every other owner is gone) and drops one reference.

// refEntrySize is the on-disk size of one reference-count entry.
const refEntrySize = 4

// refEntries reports how many data-region blocks the table covers.
func (fs *FS) refEntries() uint64 { return fs.sb.numBlocks - fs.sb.dataStart }

// loadRefcntTable reads the on-disk table into memory (mount path).
func (fs *FS) loadRefcntTable(ctx *sim.Proc) error {
	entries := fs.refEntries()
	fs.refcnt = make([]uint32, entries)
	img := make([]byte, fs.bs)
	per := uint64(fs.bs / refEntrySize)
	for b := uint64(0); b < fs.sb.refcntBlocks; b++ {
		if err := fs.dev.ReadBlocks(ctx, int64(fs.sb.refcntStart+b), img); err != nil {
			return err
		}
		for i := uint64(0); i < per && b*per+i < entries; i++ {
			fs.refcnt[b*per+i] = binary.BigEndian.Uint32(img[i*refEntrySize:])
		}
	}
	return nil
}

// ensureRefcntTable allocates, zeroes, and publishes the reference-count
// table on first use. Must run inside an open transaction: the superblock
// update that makes the table reachable commits atomically with the
// snapshot that needed it; until then the blocks read as free on disk, so a
// crash leaks nothing.
func (fs *FS) ensureRefcntTable(ctx *sim.Proc) error {
	if fs.refcnt != nil {
		return nil
	}
	entries := fs.refEntries()
	need := (entries*refEntrySize + uint64(fs.bs) - 1) / uint64(fs.bs)
	start, got := fs.allocRun(fs.sb.dataStart, need)
	if got < need {
		if got > 0 {
			fs.freeRun(start, got)
		}
		return ErrNoSpace
	}
	// Zero the table region directly (the blocks are unreachable until the
	// superblock lands, exactly like fresh data blocks).
	zero := make([]byte, 64*fs.bs)
	for off := uint64(0); off < need; {
		n := need - off
		if n > 64 {
			n = 64
		}
		fs.MetaBlockWrites += int64(n)
		if err := fs.devWrite(ctx, int64(start+off), zero[:n*uint64(fs.bs)]); err != nil {
			return err
		}
		off += n
	}
	fs.sb.refcntStart = start
	fs.sb.refcntBlocks = need
	fs.refcnt = make([]uint32, entries)
	sbImg := make([]byte, fs.bs)
	fs.sb.encode(sbImg)
	return fs.writeBlock(ctx, 0, sbImg, true)
}

// refGet reports the extra-reference count of a volume block (0 when no
// table exists or the block is outside the data region).
func (fs *FS) refGet(blk uint64) uint32 {
	if fs.refcnt == nil || blk < fs.sb.dataStart || blk >= fs.sb.numBlocks {
		return 0
	}
	return fs.refcnt[blk-fs.sb.dataStart]
}

// refAdd moves a block's extra-reference count by delta and marks the
// covering table disk block dirty for the current transaction.
func (fs *FS) refAdd(blk uint64, delta int32) {
	idx := blk - fs.sb.dataStart
	fs.refcnt[idx] = uint32(int32(fs.refcnt[idx]) + delta)
	if fs.dirtyRefcntBlks == nil {
		fs.dirtyRefcntBlks = make(map[uint64]struct{})
	}
	fs.dirtyRefcntBlks[idx*refEntrySize/uint64(fs.bs)] = struct{}{}
}

// flushDirtyRefcnt journals the refcount table disk blocks touched since the
// last flush (called from flushDirtyBitmap, so every existing commit point
// covers the table too).
func (fs *FS) flushDirtyRefcnt(ctx *sim.Proc) error {
	if len(fs.dirtyRefcntBlks) == 0 {
		return nil
	}
	img := make([]byte, fs.bs)
	blks := make([]uint64, 0, len(fs.dirtyRefcntBlks))
	for b := range fs.dirtyRefcntBlks {
		blks = append(blks, b)
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	per := uint64(fs.bs / refEntrySize)
	entries := fs.refEntries()
	for _, b := range blks {
		clear(img)
		for i := uint64(0); i < per && b*per+i < entries; i++ {
			binary.BigEndian.PutUint32(img[i*refEntrySize:], fs.refcnt[b*per+i])
		}
		if err := fs.writeBlock(ctx, int64(fs.sb.refcntStart+b), img, true); err != nil {
			return err
		}
	}
	fs.dirtyRefcntBlks = nil
	return nil
}

// SharedBlocks reports how many data blocks carry at least one extra (CoW)
// reference — the shared-block gauge.
func (fs *FS) SharedBlocks() int64 {
	var n int64
	for _, c := range fs.refcnt {
		if c > 0 {
			n++
		}
	}
	return n
}

// Snapshot creates dstPath as a copy-on-write image of srcPath: the new
// file shares every physical block with the source, both files' extents are
// write-protected, and each shared block gains one reference. The caller
// needs read permission on the source and write permission on the
// destination's parent (checked by createNode). The new file is owned by
// uid with the source's permission bits.
func (fs *FS) Snapshot(ctx *sim.Proc, srcPath, dstPath string, uid uint32) error {
	if err := fs.begin(ctx); err != nil {
		return err
	}
	defer fs.end(ctx)
	srcIno, err := fs.resolve(ctx, srcPath, uid)
	if err != nil {
		return err
	}
	src := &fs.inodes[srcIno]
	if src.isDir() {
		return ErrIsDir
	}
	if !accessOK(src, uid, PermRead) {
		return ErrPerm
	}
	fs.txBegin()
	if err := fs.ensureRefcntTable(ctx); err != nil {
		fs.tx = nil
		return err
	}
	dstIno, err := fs.createNode(ctx, dstPath, uid, ModeFile|(src.mode&0o777))
	if err != nil {
		fs.tx = nil
		return err
	}
	dst := &fs.inodes[dstIno]
	dst.size = src.size
	dst.extents = make([]extent.Run, len(src.extents))
	for i := range src.extents {
		src.extents[i].Flags |= extent.FlagProtected
		dst.extents[i] = src.extents[i]
		e := src.extents[i]
		for b := e.Physical; b < e.Physical+e.Count; b++ {
			fs.refAdd(b, 1)
		}
	}
	fs.allocSeq++
	if err := fs.writeInode(ctx, srcIno); err != nil {
		return err
	}
	if err := fs.writeInode(ctx, dstIno); err != nil {
		return err
	}
	if err := fs.flushDirtyBitmap(ctx); err != nil {
		return err
	}
	return fs.txCommit(ctx)
}

// BreakRange unshares logical blocks [blk, blk+n) of path: protected
// extents overlapping the range are split, shared blocks are copied to
// fresh storage (dropping one reference on the originals), and blocks whose
// other owners are already gone are simply unprotected in place. This is
// the hypervisor's CoW-fault service (device miss with MissReasonCoW) and
// runs as one journaled transaction, so a crash never leaks or double-frees
// a block. It is idempotent: re-running it over an already-broken range
// changes nothing.
func (fs *FS) BreakRange(ctx *sim.Proc, path string, blk, n uint64) error {
	if err := fs.begin(ctx); err != nil {
		return err
	}
	defer fs.end(ctx)
	ino, err := fs.resolve(ctx, path, 0)
	if err != nil {
		return err
	}
	in := &fs.inodes[ino]
	if in.isDir() {
		return ErrIsDir
	}
	fs.txBegin()
	changed, err := fs.breakShareLocked(ctx, in, blk, n)
	if err != nil {
		fs.tx = nil
		return err
	}
	if !changed {
		fs.tx = nil
		return nil
	}
	if err := fs.writeInode(ctx, ino); err != nil {
		return err
	}
	if err := fs.flushDirtyBitmap(ctx); err != nil {
		return err
	}
	return fs.txCommit(ctx)
}

// breakShareLocked walks the protected extents overlapping logical blocks
// [lblk, lblk+n) of in and unshares each covered window. Caller holds the
// lock and an open transaction. Reports whether anything changed.
func (fs *FS) breakShareLocked(ctx *sim.Proc, in *inode, lblk, n uint64) (bool, error) {
	changed := false
	end := lblk + n
	cur := lblk
	for cur < end {
		i := sort.Search(len(in.extents), func(i int) bool { return in.extents[i].Logical > cur })
		if i == 0 {
			// cur precedes every extent: skip to the first one in range.
			if len(in.extents) == 0 || in.extents[0].Logical >= end {
				break
			}
			cur = in.extents[0].Logical
			continue
		}
		e := in.extents[i-1]
		if cur >= e.End() {
			// Gap: skip to the next extent in range.
			if i >= len(in.extents) || in.extents[i].Logical >= end {
				break
			}
			cur = in.extents[i].Logical
			continue
		}
		if !e.Protected() {
			cur = e.End()
			continue
		}
		winEnd := e.End()
		if winEnd > end {
			winEnd = end
		}
		if err := fs.breakOne(ctx, in, i-1, cur, winEnd); err != nil {
			return changed, err
		}
		changed = true
		cur = winEnd
	}
	return changed, nil
}

// breakOne unshares logical blocks [cur, winEnd) of the protected extent at
// index idx: if any covered block still has extra references the window is
// copied to fresh blocks and the originals lose this file's reference;
// otherwise (every other owner already broke or deleted) the flag is
// cleared in place. The extent is split into up to three pieces with the
// middle one unprotected.
func (fs *FS) breakOne(ctx *sim.Proc, in *inode, idx int, cur, winEnd uint64) error {
	e := in.extents[idx]
	physAt := func(l uint64) uint64 { return e.Physical + (l - e.Logical) }
	shared := false
	for b := cur; b < winEnd; b++ {
		if fs.refGet(physAt(b)) > 0 {
			shared = true
			break
		}
	}
	var mid []extent.Run
	if !shared {
		mid = []extent.Run{{Logical: cur, Physical: physAt(cur), Count: winEnd - cur}}
	} else {
		// Data lands on the new blocks before the metadata commits; until
		// then the new blocks read as free on disk, so a crash mid-copy
		// rolls the whole break back.
		img := make([]byte, fs.bs)
		rem := winEnd - cur
		l := cur
		for rem > 0 {
			start, got := fs.allocRun(fs.allocHint, rem)
			if got == 0 {
				for _, r := range mid {
					fs.freeRun(r.Physical, r.Count)
				}
				return ErrNoSpace
			}
			for o := uint64(0); o < got; o++ {
				fs.DataBlockReads++
				if err := fs.dev.ReadBlocks(ctx, int64(physAt(l+o)), img); err != nil {
					return err
				}
				fs.DataBlockWrites++
				if err := fs.devWrite(ctx, int64(start+o), img); err != nil {
					return err
				}
			}
			mid = append(mid, extent.Run{Logical: l, Physical: start, Count: got})
			l += got
			rem -= got
		}
		fs.freeRun(physAt(cur), winEnd-cur)
	}
	var repl []extent.Run
	if cur > e.Logical {
		repl = append(repl, extent.Run{Logical: e.Logical, Physical: e.Physical, Count: cur - e.Logical, Flags: e.Flags})
	}
	repl = append(repl, mid...)
	if winEnd < e.End() {
		repl = append(repl, extent.Run{Logical: winEnd, Physical: physAt(winEnd), Count: e.End() - winEnd, Flags: e.Flags})
	}
	spliceExtent(in, idx, repl)
	fs.allocSeq++
	fs.CowBreaks++
	return nil
}

// spliceExtent replaces in.extents[idx] with repl (sorted runs covering the
// same logical span).
func spliceExtent(in *inode, idx int, repl []extent.Run) {
	out := make([]extent.Run, 0, len(in.extents)-1+len(repl))
	out = append(out, in.extents[:idx]...)
	out = append(out, repl...)
	out = append(out, in.extents[idx+1:]...)
	in.extents = out
}
