package extfs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"nesc/internal/sim"
)

// Write-ahead redo journal. Each public mutating operation is one
// transaction: block images are buffered, then on commit written to the
// journal region (descriptor block, image blocks, commit block with a
// checksum) and finally checkpointed to their home locations. Mount replays
// committed transactions in sequence order, which makes every operation
// atomic across a crash between commit and checkpoint.

const (
	jDescMagic   = 0x4A444553 // "JDES"
	jCommitMagic = 0x4A434D54 // "JCMT"
)

type txState struct {
	order  []int64
	images map[int64][]byte
}

// txBegin opens a transaction buffer. No-op when journaling is off.
func (fs *FS) txBegin() {
	if fs.sb.mode == JournalNone {
		return
	}
	fs.tx = &txState{images: make(map[int64][]byte)}
}

// writeBlock routes one block image either into the open transaction (when
// the journal covers this class of block) or directly to disk. When a
// transaction outgrows the journal descriptor's capacity (full-data mode
// with large writes), the accumulated batch is committed and a fresh
// transaction continues — multi-transaction operations, as in ext4.
func (fs *FS) writeBlock(ctx *sim.Proc, lba int64, img []byte, meta bool) error {
	journal := fs.tx != nil && (meta || fs.sb.mode == JournalFull)
	if !journal {
		if meta {
			fs.MetaBlockWrites++
		} else {
			fs.DataBlockWrites++
		}
		return fs.devWrite(ctx, lba, img)
	}
	batch := fs.txEntriesPerDesc() - 8
	if jb := int(fs.sb.journalBlocks) - 2; jb < batch {
		batch = jb
	}
	if batch < 1 {
		batch = 1
	}
	if len(fs.tx.order) >= batch {
		if err := fs.txCommit(ctx); err != nil {
			return err
		}
		fs.txBegin()
	}
	buf, ok := fs.tx.images[lba]
	if !ok {
		buf = make([]byte, fs.bs)
		fs.tx.images[lba] = buf
		fs.tx.order = append(fs.tx.order, lba)
	}
	copy(buf, img)
	return nil
}

// txEntriesPerDesc reports how many block numbers fit in one descriptor
// block: header is magic(4) seq(8) count(4) = 16 bytes, then 8 bytes per
// block number.
func (fs *FS) txEntriesPerDesc() int { return (fs.bs - 16) / 8 }

// txCommit writes the journal record and checkpoints the buffered blocks.
func (fs *FS) txCommit(ctx *sim.Proc) error {
	tx := fs.tx
	fs.tx = nil
	if tx == nil || len(tx.order) == 0 {
		fs.tx = nil
		return nil
	}
	if len(tx.order) > fs.txEntriesPerDesc() {
		return fmt.Errorf("extfs: transaction of %d blocks exceeds journal descriptor capacity %d", len(tx.order), fs.txEntriesPerDesc())
	}
	need := uint64(len(tx.order) + 2) // descriptor + images + commit
	if need > fs.sb.journalBlocks {
		return fmt.Errorf("extfs: transaction of %d blocks exceeds journal of %d blocks", len(tx.order), fs.sb.journalBlocks)
	}
	if fs.journalHead+need > fs.sb.journalBlocks {
		fs.journalHead = 0 // wrap; old records become garbage
	}
	fs.journalSeq++
	head := fs.sb.journalStart + fs.journalHead

	// Descriptor.
	desc := make([]byte, fs.bs)
	binary.BigEndian.PutUint32(desc[0:], jDescMagic)
	binary.BigEndian.PutUint64(desc[4:], fs.journalSeq)
	binary.BigEndian.PutUint32(desc[12:], uint32(len(tx.order)))
	for i, lba := range tx.order {
		binary.BigEndian.PutUint64(desc[16+8*i:], uint64(lba))
	}
	if err := fs.devWrite(ctx, int64(head), desc); err != nil {
		return err
	}
	fs.JournalBlockWrites++

	// Images, with a rolling checksum sealed into the commit block.
	var sum uint64
	for i, lba := range tx.order {
		img := tx.images[lba]
		sum = checksum(sum, img)
		if err := fs.devWrite(ctx, int64(head)+1+int64(i), img); err != nil {
			return err
		}
		fs.JournalBlockWrites++
	}

	// Commit record.
	commit := make([]byte, fs.bs)
	binary.BigEndian.PutUint32(commit[0:], jCommitMagic)
	binary.BigEndian.PutUint64(commit[4:], fs.journalSeq)
	binary.BigEndian.PutUint64(commit[12:], sum)
	if err := fs.devWrite(ctx, int64(head)+1+int64(len(tx.order)), commit); err != nil {
		return err
	}
	fs.JournalBlockWrites++
	fs.journalHead += need

	if fs.failAfterCommit {
		fs.dead = true
		return nil // committed but not checkpointed: recovery's job
	}

	// Checkpoint to home locations.
	for _, lba := range tx.order {
		fs.MetaBlockWrites++
		if err := fs.devWrite(ctx, lba, tx.images[lba]); err != nil {
			return err
		}
	}
	return nil
}

func checksum(sum uint64, b []byte) uint64 {
	// FNV-1a folded over the existing sum; cheap and order-sensitive.
	const prime = 1099511628211
	if sum == 0 {
		sum = 14695981039346656037
	}
	for _, c := range b {
		sum ^= uint64(c)
		sum *= prime
	}
	return sum
}

// replayJournal scans the journal region at mount and redoes every fully
// committed transaction in sequence order.
func (fs *FS) replayJournal(ctx *sim.Proc) error {
	if fs.sb.journalBlocks == 0 {
		return nil
	}
	type rec struct {
		seq    uint64
		blocks []int64
		start  uint64 // journal block index of first image
	}
	img := make([]byte, fs.bs)
	var recs []rec
	var maxSeq uint64
	for j := uint64(0); j < fs.sb.journalBlocks; j++ {
		if err := fs.dev.ReadBlocks(ctx, int64(fs.sb.journalStart+j), img); err != nil {
			return err
		}
		if binary.BigEndian.Uint32(img[0:]) != jDescMagic {
			continue
		}
		seq := binary.BigEndian.Uint64(img[4:])
		n := binary.BigEndian.Uint32(img[12:])
		if n == 0 || uint64(n) > fs.sb.journalBlocks || j+uint64(n)+1 >= fs.sb.journalBlocks {
			continue
		}
		blocks := make([]int64, n)
		for i := uint32(0); i < n; i++ {
			blocks[i] = int64(binary.BigEndian.Uint64(img[16+8*i:]))
		}
		// Validate the commit record and checksum.
		cb := make([]byte, fs.bs)
		if err := fs.dev.ReadBlocks(ctx, int64(fs.sb.journalStart+j+uint64(n)+1), cb); err != nil {
			return err
		}
		if binary.BigEndian.Uint32(cb[0:]) != jCommitMagic || binary.BigEndian.Uint64(cb[4:]) != seq {
			continue
		}
		var sum uint64
		bimg := make([]byte, fs.bs)
		valid := true
		for i := uint32(0); i < n; i++ {
			if err := fs.dev.ReadBlocks(ctx, int64(fs.sb.journalStart+j+1+uint64(i)), bimg); err != nil {
				return err
			}
			sum = checksum(sum, bimg)
		}
		if sum != binary.BigEndian.Uint64(cb[12:]) {
			valid = false
		}
		if !valid {
			continue
		}
		recs = append(recs, rec{seq: seq, blocks: blocks, start: j + 1})
		if seq > maxSeq {
			maxSeq = seq
		}
		j += uint64(n) + 1 // skip past this record
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].seq < recs[k].seq })
	for _, r := range recs {
		for i, lba := range r.blocks {
			if err := fs.dev.ReadBlocks(ctx, int64(fs.sb.journalStart+r.start+uint64(i)), img); err != nil {
				return err
			}
			if err := fs.devWrite(ctx, lba, img); err != nil {
				return err
			}
		}
	}
	fs.journalSeq = maxSeq
	// Leave journalHead at 0: fresh records overwrite old ones; stale
	// records lose to the checksum/seq validation.
	fs.journalHead = 0
	return nil
}

// flushDirtyBitmap writes bitmap disk blocks touched since the last flush
// into the current transaction, then does the same for dirty refcount-table
// blocks so every existing commit point covers both.
func (fs *FS) flushDirtyBitmap(ctx *sim.Proc) error {
	if len(fs.dirtyBitmapBlks) > 0 {
		img := make([]byte, fs.bs)
		blks := make([]uint64, 0, len(fs.dirtyBitmapBlks))
		for b := range fs.dirtyBitmapBlks {
			blks = append(blks, b)
		}
		sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
		for _, b := range blks {
			off := b * uint64(fs.bs)
			clear(img)
			end := off + uint64(fs.bs)
			if end > uint64(len(fs.bitmap)) {
				end = uint64(len(fs.bitmap))
			}
			if off < end {
				copy(img, fs.bitmap[off:end])
			}
			if err := fs.writeBlock(ctx, int64(fs.sb.bitmapStart+b), img, true); err != nil {
				return err
			}
		}
		fs.dirtyBitmapBlks = nil
	}
	return fs.flushDirtyRefcnt(ctx)
}

// flushBitmapAll writes the entire bitmap (mkfs path).
func (fs *FS) flushBitmapAll(ctx *sim.Proc) error {
	img := make([]byte, fs.bs)
	for b := uint64(0); b < fs.sb.bitmapBlocks; b++ {
		off := b * uint64(fs.bs)
		clear(img)
		end := off + uint64(fs.bs)
		if end > uint64(len(fs.bitmap)) {
			end = uint64(len(fs.bitmap))
		}
		if off < end {
			copy(img, fs.bitmap[off:end])
		}
		if err := fs.devWrite(ctx, int64(fs.sb.bitmapStart+b), img); err != nil {
			return err
		}
	}
	fs.dirtyBitmapBlks = nil
	return nil
}
