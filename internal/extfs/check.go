package extfs

import (
	"fmt"

	"nesc/internal/sim"
)

// Check is the fsck: it validates the cross-structure invariants that the
// property tests (and the VF-creation path) rely on. It returns the first
// violation found.
//
// Invariants:
//  1. every metadata block (including the refcount table, if allocated) is
//     marked allocated in the bitmap;
//  2. every extent and overflow block of a used inode lies in the data
//     region, is marked allocated, and is referenced exactly 1 + its extra
//     (CoW) reference count times;
//  3. a block referenced more than once is reached only through
//     write-protected extents;
//  4. every allocated data block is referenced (no leaks), and no free
//     block carries a reference count;
//  5. no extent extends past the file's size (rounded up to a block);
//  6. directory entries reference used inodes, and directory link counts
//     are 2 + number of subdirectories.
func (fs *FS) Check(ctx *sim.Proc) error {
	if err := fs.begin(ctx); err != nil {
		return err
	}
	defer fs.end(ctx)

	for b := uint64(0); b < fs.sb.dataStart; b++ {
		if !fs.bitmapGet(b) {
			return fmt.Errorf("extfs: metadata block %d not marked allocated", b)
		}
	}
	inRefcntTable := func(b uint64) bool {
		return fs.sb.refcntStart != 0 && b >= fs.sb.refcntStart && b < fs.sb.refcntStart+fs.sb.refcntBlocks
	}

	refs := make(map[uint64][]uint32) // block -> referencing inodes
	unprot := make(map[uint64]bool)   // block reached via an unprotected extent
	ref := func(blk uint64, ino uint32, protected bool) error {
		if blk < fs.sb.dataStart || blk >= fs.sb.numBlocks {
			return fmt.Errorf("extfs: inode %d references block %d outside data region", ino, blk)
		}
		if inRefcntTable(blk) {
			return fmt.Errorf("extfs: inode %d references refcount-table block %d", ino, blk)
		}
		if !fs.bitmapGet(blk) {
			return fmt.Errorf("extfs: inode %d references free block %d", ino, blk)
		}
		refs[blk] = append(refs[blk], ino)
		if !protected {
			unprot[blk] = true
		}
		return nil
	}

	bs := uint64(fs.bs)
	for ino := uint32(1); ino < uint32(len(fs.inodes)); ino++ {
		in := &fs.inodes[ino]
		if !in.used {
			continue
		}
		maxBlk := (in.size + bs - 1) / bs
		var prevEnd uint64
		for i, e := range in.extents {
			if i > 0 && e.Logical < prevEnd {
				return fmt.Errorf("extfs: inode %d extents unsorted/overlapping at %d", ino, e.Logical)
			}
			prevEnd = e.End()
			if e.End() > maxBlk {
				return fmt.Errorf("extfs: inode %d extent [%d,%d) past size %d", ino, e.Logical, e.End(), in.size)
			}
			for b := e.Physical; b < e.Physical+e.Count; b++ {
				if err := ref(b, ino, e.Protected()); err != nil {
					return err
				}
			}
		}
		for _, b := range in.overflow {
			if err := ref(b, ino, false); err != nil {
				return err
			}
		}
	}

	for b := fs.sb.dataStart; b < fs.sb.numBlocks; b++ {
		if inRefcntTable(b) {
			if !fs.bitmapGet(b) {
				return fmt.Errorf("extfs: refcount-table block %d not marked allocated", b)
			}
			continue
		}
		n := uint32(len(refs[b]))
		extra := fs.refGet(b)
		if fs.bitmapGet(b) {
			if n == 0 {
				return fmt.Errorf("extfs: block %d allocated but unreferenced (leak)", b)
			}
			if n != 1+extra {
				return fmt.Errorf("extfs: block %d has %d references but refcount says %d", b, n, 1+extra)
			}
			if n > 1 && unprot[b] {
				return fmt.Errorf("extfs: shared block %d reached via unprotected extent (inodes %v)", b, refs[b])
			}
		} else if extra != 0 {
			return fmt.Errorf("extfs: free block %d carries refcount %d", b, extra)
		}
	}

	// Directory structure.
	subdirs := make(map[uint32]uint16)
	seenChild := make(map[uint32]bool)
	for ino := uint32(1); ino < uint32(len(fs.inodes)); ino++ {
		in := &fs.inodes[ino]
		if !in.used || !in.isDir() {
			continue
		}
		data, err := fs.readDirData(ctx, in)
		if err != nil {
			return err
		}
		for off := 0; off+DirentSize <= len(data); off += DirentSize {
			child, name := decodeDirent(data[off:])
			if child == 0 {
				continue
			}
			if int(child) >= len(fs.inodes) || !fs.inodes[child].used {
				return fmt.Errorf("extfs: dir %d entry %q references unused inode %d", ino, name, child)
			}
			if seenChild[child] {
				return fmt.Errorf("extfs: inode %d linked twice", child)
			}
			seenChild[child] = true
			if fs.inodes[child].isDir() {
				subdirs[ino]++
			}
		}
	}
	for ino := uint32(1); ino < uint32(len(fs.inodes)); ino++ {
		in := &fs.inodes[ino]
		if !in.used {
			continue
		}
		if in.isDir() {
			if want := 2 + subdirs[ino]; in.links != want {
				return fmt.Errorf("extfs: dir %d link count %d, want %d", ino, in.links, want)
			}
			if ino != RootIno && !seenChild[ino] {
				return fmt.Errorf("extfs: dir inode %d orphaned", ino)
			}
		} else if ino != RootIno && !seenChild[ino] {
			return fmt.Errorf("extfs: file inode %d orphaned", ino)
		}
	}
	return nil
}
