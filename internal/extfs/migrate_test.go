package extfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

func TestMigratePreservesContentAndMovesBlocks(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/m", 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300*1024)
	rand.New(rand.NewSource(8)).Read(data)
	if _, err := f.WriteAt(nil, data, 0); err != nil {
		t.Fatal(err)
	}
	before, _, err := fs.Runs(nil, "/m")
	if err != nil {
		t.Fatal(err)
	}
	free0 := fs.FreeBlocks()
	if err := fs.Migrate(nil, "/m"); err != nil {
		t.Fatal(err)
	}
	after, _, err := fs.Runs(nil, "/m")
	if err != nil {
		t.Fatal(err)
	}
	if before[0].Physical == after[0].Physical {
		t.Fatal("migration left blocks in place")
	}
	if fs.FreeBlocks() != free0 {
		t.Fatalf("migration changed free space: %d -> %d", free0, fs.FreeBlocks())
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(nil, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("migration corrupted content")
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateSparseFile(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, _ := fs.Create(nil, "/s", 0, 0o644)
	if _, err := f.WriteAt(nil, []byte("island"), 100*1024); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(nil, 500*1024); err != nil {
		t.Fatal(err)
	}
	if err := fs.Migrate(nil, "/s"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if _, err := f.ReadAt(nil, got, 100*1024); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != "island" {
		t.Fatalf("sparse migration lost data: %q", got)
	}
	// Holes stay holes.
	runs, _, _ := fs.Runs(nil, "/s")
	var mapped uint64
	for _, r := range runs {
		mapped += r.Count
	}
	if mapped != 1 {
		t.Fatalf("sparse file maps %d blocks after migration, want 1", mapped)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateErrors(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	if err := fs.Migrate(nil, "/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("migrate missing = %v", err)
	}
	if err := fs.Mkdir(nil, "/d", 0, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Migrate(nil, "/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("migrate dir = %v", err)
	}
	// Out of space: a file larger than half the free space cannot migrate
	// (needs a full second copy in flight), and must roll back cleanly.
	dev := NewMemDev(1024, 2048)
	small, err := Format(nil, dev, Params{InodeCount: 16, JournalBlocks: 16, Mode: JournalMetadata})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := small.Create(nil, "/big", 0, 0o644)
	free := small.FreeBlocks()
	if _, err := f.WriteAt(nil, make([]byte, (free*2/3)*1024), 0); err != nil {
		t.Fatal(err)
	}
	if err := small.Migrate(nil, "/big"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversized migrate = %v", err)
	}
	if err := small.Check(nil); err != nil {
		t.Fatalf("rollback left inconsistency: %v", err)
	}
}

// Crash-recovery property: whatever transaction the crash lands on, the
// remounted filesystem is consistent.
func TestCrashRecoveryProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		mode := JournalMetadata
		if trial%2 == 1 {
			mode = JournalFull
		}
		dev := NewMemDev(1024, 8192)
		fs, err := Format(nil, dev, Params{InodeCount: 64, JournalBlocks: 128, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		crashAt := rng.Intn(30) + 2
		names := []string{"/a", "/b", "/c"}
		handles := map[string]*File{}
		for op := 0; ; op++ {
			if op == crashAt {
				fs.failAfterCommit = true
			}
			name := names[rng.Intn(len(names))]
			var err error
			switch rng.Intn(4) {
			case 0:
				var f *File
				f, err = fs.Create(nil, name, 0, 0o644)
				if err == nil {
					handles[name] = f
				} else if errors.Is(err, ErrExist) {
					err = nil
				}
			case 1:
				if f := handles[name]; f != nil {
					// Keep writes within the full-journal transaction cap.
					_, err = f.WriteAt(nil, make([]byte, 1+rng.Intn(8000)), int64(rng.Intn(20000)))
				}
			case 2:
				if f := handles[name]; f != nil {
					err = f.Truncate(nil, uint64(rng.Intn(20000)))
				}
			case 3:
				err = fs.Remove(nil, name, 0)
				if err == nil {
					delete(handles, name)
				} else if errors.Is(err, ErrNotExist) {
					err = nil
				}
			}
			if errors.Is(err, ErrDead) {
				break // crashed
			}
			if err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
			if op > crashAt+20 {
				t.Fatalf("trial %d: crash never triggered", trial)
			}
		}
		// Remount: journal redo must yield a consistent filesystem.
		fs2, err := Mount(nil, dev, 0)
		if err != nil {
			t.Fatalf("trial %d: remount failed: %v", trial, err)
		}
		if err := fs2.Check(nil); err != nil {
			t.Fatalf("trial %d: post-crash fsck: %v", trial, err)
		}
	}
}
