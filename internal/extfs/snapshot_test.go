package extfs

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"nesc/internal/extent"
)

func readBack(t *testing.T, f *File) []byte {
	t.Helper()
	buf := make([]byte, f.Size())
	if _, err := f.ReadAt(nil, buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return buf
}

func mustCheck(t *testing.T, fs *FS) {
	t.Helper()
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSharesBlocksAndReadsIdentical(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/vm.img", 100, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("base image "), 2000)
	if _, err := f.WriteAt(nil, data, 0); err != nil {
		t.Fatal(err)
	}
	freeBefore := fs.FreeBlocks()
	if err := fs.Snapshot(nil, "/vm.img", "/vm.snap", 100); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, fs)
	// The snapshot shares every data block: only the lazily allocated
	// refcount table (plus at most an inode/overflow block) may be consumed.
	tableBlocks := fs.sb.refcntBlocks
	if used := freeBefore - fs.FreeBlocks(); used > tableBlocks+2 {
		t.Fatalf("snapshot consumed %d blocks (table is %d): not sharing", used, tableBlocks)
	}
	if fs.SharedBlocks() == 0 {
		t.Fatal("no blocks marked shared")
	}
	snap, err := fs.Open(nil, "/vm.snap", 100, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, snap); !bytes.Equal(got, data) {
		t.Fatal("snapshot reads differ from source at snapshot time")
	}
	// Every extent of both files is write-protected.
	for _, path := range []string{"/vm.img", "/vm.snap"} {
		runs, _, err := fs.Runs(nil, path)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range runs {
			if !r.Protected() {
				t.Fatalf("%s extent %+v not protected", path, r)
			}
		}
	}
}

func TestSnapshotWriteIsolationBothDirections(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/a", 100, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	base := bytes.Repeat([]byte{0xAB}, 8000)
	if _, err := f.WriteAt(nil, base, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Snapshot(nil, "/a", "/a.snap", 100); err != nil {
		t.Fatal(err)
	}
	snap, err := fs.Open(nil, "/a.snap", 100, PermRead|PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	// Parent writes must not leak into the snapshot...
	if _, err := f.WriteAt(nil, bytes.Repeat([]byte{0x11}, 3000), 1000); err != nil {
		t.Fatal(err)
	}
	if fs.CowBreaks == 0 {
		t.Fatal("overwrite of protected extent did not break sharing")
	}
	if got := readBack(t, snap); !bytes.Equal(got, base) {
		t.Fatal("parent write leaked into snapshot")
	}
	// ...and snapshot writes must not leak into the parent.
	want := append([]byte(nil), base...)
	copy(want[1000:], bytes.Repeat([]byte{0x11}, 3000))
	if _, err := snap.WriteAt(nil, []byte{0x77}, 5000); err != nil {
		t.Fatal(err)
	}
	got := readBack(t, f)
	if !bytes.Equal(got, want) {
		t.Fatal("snapshot write leaked into parent")
	}
	mustCheck(t, fs)
}

func TestSnapshotPersistsAcrossRemount(t *testing.T) {
	fs, dev := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/p", 100, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("persist"), 3000)
	if _, err := f.WriteAt(nil, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Snapshot(nil, "/p", "/p.snap", 100); err != nil {
		t.Fatal(err)
	}
	shared := fs.SharedBlocks()

	fs2, err := Mount(nil, dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustCheck(t, fs2)
	if got := fs2.SharedBlocks(); got != shared {
		t.Fatalf("remount: %d shared blocks, want %d", got, shared)
	}
	// The protect flag survives the inode round trip, so a post-remount
	// write still breaks sharing.
	f2, err := fs2.Open(nil, "/p", 100, PermRead|PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.WriteAt(nil, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if fs2.CowBreaks == 0 {
		t.Fatal("post-remount write did not take the CoW path")
	}
	snap, err := fs2.Open(nil, "/p.snap", 100, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, snap); !bytes.Equal(got, data) {
		t.Fatal("snapshot changed across remount + parent write")
	}
	mustCheck(t, fs2)
}

func TestDeleteSnapshotReclaimsOnlyPrivateBlocks(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/d", 100, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{1}, 16*1024)
	if _, err := f.WriteAt(nil, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Snapshot(nil, "/d", "/d.snap", 100); err != nil {
		t.Fatal(err)
	}
	// Parent diverges on a few blocks; those copies are private to it.
	if _, err := f.WriteAt(nil, bytes.Repeat([]byte{2}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	free := fs.FreeBlocks()
	if err := fs.Remove(nil, "/d.snap", 100); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, fs)
	reclaimed := fs.FreeBlocks() - free
	// The snapshot privately owned the 4 blocks the parent diverged from;
	// the rest were shared with the parent and must survive.
	if reclaimed < 4 || reclaimed > 5 {
		t.Fatalf("reclaimed %d blocks, want the snapshot's ~4 private ones", reclaimed)
	}
	if fs.SharedBlocks() != 0 {
		t.Fatalf("%d blocks still marked shared after last snapshot deleted", fs.SharedBlocks())
	}
	// Parent data intact and writable without copies (stale flags clear in
	// place, no fresh allocation).
	want := append([]byte(nil), data...)
	copy(want, bytes.Repeat([]byte{2}, 4096))
	if got := readBack(t, f); !bytes.Equal(got, want) {
		t.Fatal("parent corrupted by snapshot delete")
	}
	freeBefore := fs.FreeBlocks()
	if _, err := f.WriteAt(nil, []byte{9}, 8192); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() != freeBefore {
		t.Fatal("write after last-sharer delete still copied blocks")
	}
	mustCheck(t, fs)
}

func TestCloneFanoutSharing(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/base", 100, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32*1024)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := f.WriteAt(nil, data, 0); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/c1", "/c2", "/c3"} {
		if err := fs.Snapshot(nil, "/base", p, 100); err != nil {
			t.Fatal(err)
		}
	}
	mustCheck(t, fs)
	// Each clone writes a disjoint region; all others keep the base bytes.
	clones := []string{"/c1", "/c2", "/c3"}
	for i, p := range clones {
		cf, err := fs.Open(nil, p, 100, PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		patch := bytes.Repeat([]byte{byte(0xC0 + i)}, 2048)
		if _, err := cf.WriteAt(nil, patch, int64(i)*8192); err != nil {
			t.Fatal(err)
		}
	}
	mustCheck(t, fs)
	if got := readBack(t, f); !bytes.Equal(got, data) {
		t.Fatal("clone writes leaked into base")
	}
	for i, p := range clones {
		cf, err := fs.Open(nil, p, 100, PermRead)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), data...)
		copy(want[i*8192:], bytes.Repeat([]byte{byte(0xC0 + i)}, 2048))
		if got := readBack(t, cf); !bytes.Equal(got, want) {
			t.Fatalf("clone %s diverged wrong", p)
		}
	}
}

func TestBreakRangeIdempotentAndTargeted(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/b", 100, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(nil, bytes.Repeat([]byte{5}, 10*1024), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Snapshot(nil, "/b", "/b.snap", 100); err != nil {
		t.Fatal(err)
	}
	free := fs.FreeBlocks()
	if err := fs.BreakRange(nil, "/b", 2, 1); err != nil {
		t.Fatal(err)
	}
	if used := free - fs.FreeBlocks(); used != 1 {
		t.Fatalf("single-block break copied %d blocks", used)
	}
	breaks := fs.CowBreaks
	if err := fs.BreakRange(nil, "/b", 2, 1); err != nil {
		t.Fatal(err)
	}
	if fs.CowBreaks != breaks {
		t.Fatal("re-breaking an already-private block did work")
	}
	// The broken block is no longer protected; its neighbours still are.
	runs, _, err := fs.Runs(nil, "/b")
	if err != nil {
		t.Fatal(err)
	}
	var prot, unprot int
	for _, r := range runs {
		if r.Protected() {
			prot++
		} else {
			unprot++
			if r.Logical != 2 || r.Count != 1 {
				t.Fatalf("unprotected run %+v, want block 2 only", r)
			}
		}
	}
	if prot == 0 || unprot != 1 {
		t.Fatalf("runs after targeted break: %d protected, %d unprotected", prot, unprot)
	}
	mustCheck(t, fs)
}

func TestSnapshotOfSnapshotChains(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/g0", 100, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("gen"), 4000)
	if _, err := f.WriteAt(nil, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Snapshot(nil, "/g0", "/g1", 100); err != nil {
		t.Fatal(err)
	}
	if err := fs.Snapshot(nil, "/g1", "/g2", 100); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, fs)
	// Diverge every generation and verify they stay independent.
	for i, p := range []string{"/g0", "/g1", "/g2"} {
		h, err := fs.Open(nil, p, 100, PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WriteAt(nil, []byte{byte(i + 1)}, int64(i)*1024); err != nil {
			t.Fatal(err)
		}
	}
	mustCheck(t, fs)
	for i, p := range []string{"/g0", "/g1", "/g2"} {
		h, err := fs.Open(nil, p, 100, PermRead)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), data...)
		want[i*1024] = byte(i + 1)
		if got := readBack(t, h); !bytes.Equal(got, want) {
			t.Fatalf("generation %s corrupted", p)
		}
	}
}

func TestTruncateBreaksSharedTailBlock(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/t", 100, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xEE}, 4096)
	if _, err := f.WriteAt(nil, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Snapshot(nil, "/t", "/t.snap", 100); err != nil {
		t.Fatal(err)
	}
	// Shrink to mid-block: the tail zeroing rewrites the last kept block,
	// which must not touch the snapshot's shared copy.
	if err := f.Truncate(nil, 1500); err != nil {
		t.Fatal(err)
	}
	snap, err := fs.Open(nil, "/t.snap", 100, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, snap); !bytes.Equal(got, data) {
		t.Fatal("truncate of parent mutated snapshot data")
	}
	if _, err := f.WriteAt(nil, bytes.Repeat([]byte{0xDD}, 2596), 1500); err != nil {
		t.Fatal(err)
	}
	got := readBack(t, f)
	want := append(bytes.Repeat([]byte{0xEE}, 1500), bytes.Repeat([]byte{0xDD}, 2596)...)
	if !bytes.Equal(got, want) {
		t.Fatal("tail zeroing lost after CoW truncate")
	}
	if got := readBack(t, snap); !bytes.Equal(got, data) {
		t.Fatal("regrow leaked into snapshot")
	}
	mustCheck(t, fs)
}

func TestSnapshotPermissionsAndErrors(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	if _, err := fs.Create(nil, "/secret", 100, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Snapshot(nil, "/secret", "/stolen", 200); err == nil {
		t.Fatal("snapshot of unreadable file allowed")
	}
	if err := fs.Snapshot(nil, "/", "/dirsnap", 0); err == nil {
		t.Fatal("snapshot of a directory allowed")
	}
	if err := fs.Snapshot(nil, "/nope", "/x", 0); err == nil {
		t.Fatal("snapshot of missing file allowed")
	}
	mustCheck(t, fs)
}

func TestMigrateOfSharedFileKeepsSnapshotIntact(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/m", 100, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("mig"), 5000)
	if _, err := f.WriteAt(nil, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Snapshot(nil, "/m", "/m.snap", 100); err != nil {
		t.Fatal(err)
	}
	// Migration relocates the parent's blocks; the snapshot keeps the old
	// ones (its references hold them live).
	if err := fs.Migrate(nil, "/m"); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, fs)
	if got := readBack(t, f); !bytes.Equal(got, data) {
		t.Fatal("migrate corrupted parent")
	}
	snap, err := fs.Open(nil, "/m.snap", 100, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, snap); !bytes.Equal(got, data) {
		t.Fatal("migrate corrupted snapshot")
	}
}

func TestRefcountFlagRoundTrip(t *testing.T) {
	r := extent.Run{Logical: 3, Physical: 9, Count: 7, Flags: extent.FlagProtected}
	if c := packExtCount(r); c != 7|countProtectBit {
		t.Fatalf("packed = %#x", c)
	}
	count, flags := unpackExtCount(7 | countProtectBit)
	if count != 7 || flags != extent.FlagProtected {
		t.Fatalf("unpacked = %d, %#x", count, flags)
	}
	count, flags = unpackExtCount(7)
	if count != 7 || flags != 0 {
		t.Fatalf("unpacked plain = %d, %#x", count, flags)
	}
}
