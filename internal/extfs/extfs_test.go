package extfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"nesc/internal/sim"
)

func newFS(t *testing.T, mode JournalMode) (*FS, *MemDev) {
	t.Helper()
	dev := NewMemDev(1024, 16384) // 16 MB volume
	fs, err := Format(nil, dev, Params{InodeCount: 256, JournalBlocks: 128, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/a.dat", 100, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("nesc"), 1000)
	if _, err := f.WriteAt(nil, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n, err := f.ReadAt(nil, got, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("read back %d bytes, match=%v", n, bytes.Equal(got, data))
	}
	if f.Size() != uint64(len(data)) {
		t.Fatalf("size = %d", f.Size())
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnalignedWritesAndReads(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/u", 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	shadow := make([]byte, 10000)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		off := rng.Intn(9000)
		n := 1 + rng.Intn(999)
		chunk := make([]byte, n)
		rng.Read(chunk)
		if _, err := f.WriteAt(nil, chunk, int64(off)); err != nil {
			t.Fatal(err)
		}
		copy(shadow[off:], chunk)
	}
	size := int(f.Size())
	got := make([]byte, size)
	if _, err := f.ReadAt(nil, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow[:size]) {
		t.Fatal("unaligned write/read mismatch")
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSparseFilesReadZeros(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/sparse", 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Write at 8KB, leaving a 8KB hole at the front.
	if _, err := f.WriteAt(nil, []byte("tail"), 8192); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8196)
	if _, err := f.ReadAt(nil, buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for i := 0; i < 8192; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole byte %d = %d", i, buf[i])
		}
	}
	if string(buf[8192:8196]) != "tail" {
		t.Fatalf("tail = %q", buf[8192:8196])
	}
	info, err := fs.Stat(nil, "/sparse", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Extents != 1 {
		t.Fatalf("sparse file has %d extents, want 1", info.Extents)
	}
}

func TestTruncateGrowAndShrink(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, err := fs.Create(nil, "/t", 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(nil, bytes.Repeat([]byte{7}, 5000), 0); err != nil {
		t.Fatal(err)
	}
	free0 := fs.FreeBlocks()
	if err := f.Truncate(nil, 100000); err != nil { // sparse growth
		t.Fatal(err)
	}
	if fs.FreeBlocks() != free0 {
		t.Fatal("sparse growth allocated blocks")
	}
	if f.Size() != 100000 {
		t.Fatalf("size = %d", f.Size())
	}
	if err := f.Truncate(nil, 1000); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() <= free0 {
		t.Fatal("shrink freed nothing")
	}
	got := make([]byte, 1000)
	if _, err := f.ReadAt(nil, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 7 {
			t.Fatal("shrink corrupted retained data")
		}
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadPastEOF(t *testing.T) {
	fs, _ := newFS(t, JournalNone)
	f, _ := fs.Create(nil, "/f", 0, 0o644)
	if _, err := f.WriteAt(nil, []byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := f.ReadAt(nil, buf, 0)
	if n != 5 || err != io.EOF {
		t.Fatalf("short read = %d, %v", n, err)
	}
	if _, err := f.ReadAt(nil, buf, 100); err != io.EOF {
		t.Fatalf("read past EOF = %v", err)
	}
}

func TestDirectoriesAndPaths(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	if err := fs.Mkdir(nil, "/vms", 0, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(nil, "/vms/alpha", 0, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(nil, "/vms/alpha/disk.img", 0, 0o600); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(nil, "/vms", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "alpha" {
		t.Fatalf("ReadDir = %+v", ents)
	}
	info, err := fs.Stat(nil, "/vms/alpha/disk.img", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDir() || info.Mode&0o777 != 0o600 {
		t.Fatalf("stat = %+v", info)
	}
	if _, err := fs.Create(nil, "/vms/alpha/disk.img", 0, 0o600); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create = %v", err)
	}
	if _, err := fs.Open(nil, "/vms/alpha", 0, PermRead); !errors.Is(err, ErrIsDir) {
		t.Fatalf("open dir = %v", err)
	}
	if _, err := fs.Open(nil, "/nope", 0, PermRead); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing = %v", err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	free0 := fs.FreeBlocks()
	f, _ := fs.Create(nil, "/big", 0, 0o644)
	if _, err := f.WriteAt(nil, make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(nil, "/d", 0, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(nil, "/d/x", 0, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(nil, "/d", 0); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty dir = %v", err)
	}
	if err := fs.Remove(nil, "/d/x", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(nil, "/d", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(nil, "/big", 0); err != nil {
		t.Fatal(err)
	}
	// Root dir data block may remain allocated; everything else returns.
	if fs.FreeBlocks() < free0-1 {
		t.Fatalf("blocks leaked: %d -> %d", free0, fs.FreeBlocks())
	}
	if _, err := fs.Stat(nil, "/big", 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat removed = %v", err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermissions(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	const alice, bob = 100, 200
	f, err := fs.Create(nil, "/secret", alice, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(nil, []byte("top"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(nil, "/secret", bob, PermRead); !errors.Is(err, ErrPerm) {
		t.Fatalf("bob read secret = %v", err)
	}
	if _, err := fs.Open(nil, "/secret", alice, PermRead|PermWrite); err != nil {
		t.Fatalf("alice denied: %v", err)
	}
	// Root always allowed.
	if _, err := fs.Open(nil, "/secret", 0, PermRead|PermWrite); err != nil {
		t.Fatalf("root denied: %v", err)
	}
	// World-readable file: bob can read, not write.
	g, err := fs.Create(nil, "/public", alice, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	if _, err := fs.Open(nil, "/public", bob, PermRead); err != nil {
		t.Fatalf("bob read public = %v", err)
	}
	if _, err := fs.Open(nil, "/public", bob, PermWrite); !errors.Is(err, ErrPerm) {
		t.Fatalf("bob write public = %v", err)
	}
	// Access mirrors Open's checks (the VF-creation gate).
	if err := fs.Access(nil, "/secret", bob, PermRead); !errors.Is(err, ErrPerm) {
		t.Fatalf("Access = %v", err)
	}
	// Read-only handles reject writes.
	ro, err := fs.Open(nil, "/public", bob, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.WriteAt(nil, []byte("x"), 0); !errors.Is(err, ErrPerm) {
		t.Fatalf("write through RO handle = %v", err)
	}
}

func TestRunsExportAndExtentCoalescing(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, _ := fs.Create(nil, "/img", 0, 0o644)
	// Sequential writes should coalesce into very few extents.
	chunk := make([]byte, 4096)
	for i := 0; i < 64; i++ {
		if _, err := f.WriteAt(nil, chunk, int64(i*4096)); err != nil {
			t.Fatal(err)
		}
	}
	runs, size, err := fs.Runs(nil, "/img")
	if err != nil {
		t.Fatal(err)
	}
	if size != 64*4096 {
		t.Fatalf("size = %d", size)
	}
	if len(runs) > 4 {
		t.Fatalf("sequential writes produced %d extents; allocator not coalescing", len(runs))
	}
	var covered uint64
	for _, r := range runs {
		covered += r.Count
	}
	if covered != 64*4 { // 64 * 4KB in 1KB blocks
		t.Fatalf("runs cover %d blocks, want 256", covered)
	}
}

func TestAllocateRangeFillsHoles(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, _ := fs.Create(nil, "/lazy", 0, 0o644)
	if err := f.Truncate(nil, 64*1024); err != nil {
		t.Fatal(err)
	}
	runs, _, _ := fs.Runs(nil, "/lazy")
	if len(runs) != 0 {
		t.Fatalf("sparse file has %d runs", len(runs))
	}
	if err := fs.AllocateRange(nil, "/lazy", 8, 4); err != nil {
		t.Fatal(err)
	}
	runs, _, _ = fs.Runs(nil, "/lazy")
	if len(runs) != 1 || runs[0].Logical != 8 || runs[0].Count != 4 {
		t.Fatalf("runs after AllocateRange = %+v", runs)
	}
	// The allocated blocks must read back as zeros (no stale data).
	buf := make([]byte, 4096)
	if _, err := f.ReadAt(nil, buf, 8*1024); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("lazily allocated block not zeroed")
		}
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestManyExtentsOverflowChain(t *testing.T) {
	fs, _ := newFS(t, JournalMetadata)
	f, _ := fs.Create(nil, "/frag", 0, 0o644)
	// Force fragmentation: write every other 1KB block.
	blk := make([]byte, 1024)
	for i := 0; i < 200; i++ {
		blk[0] = byte(i)
		if _, err := f.WriteAt(nil, blk, int64(i*2048)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := fs.Stat(nil, "/frag", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Extents <= inlineExtents {
		t.Fatalf("only %d extents; test needs overflow chain", info.Extents)
	}
	// Every block reads back correctly.
	for i := 0; i < 200; i++ {
		got := make([]byte, 1024)
		if _, err := f.ReadAt(nil, got, int64(i*2048)); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("block %d = %d", i, got[0])
		}
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestMountReloadsEverything(t *testing.T) {
	fs, dev := newFS(t, JournalMetadata)
	f, _ := fs.Create(nil, "/persist", 42, 0o640)
	data := bytes.Repeat([]byte{0xCD}, 300000)
	if _, err := f.WriteAt(nil, data, 0); err != nil {
		t.Fatal(err)
	}
	// Fragmented file to exercise overflow persistence.
	g, _ := fs.Create(nil, "/frag", 0, 0o644)
	blk := make([]byte, 1024)
	for i := 0; i < 50; i++ {
		if _, err := g.WriteAt(nil, blk, int64(i*2048)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Mkdir(nil, "/dir", 7, 0o700); err != nil {
		t.Fatal(err)
	}

	fs2, err := Mount(nil, dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, err := fs2.Stat(nil, "/persist", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.UID != 42 || info.Size != uint64(len(data)) || info.Mode&0o777 != 0o640 {
		t.Fatalf("remounted stat = %+v", info)
	}
	h, err := fs2.Open(nil, "/persist", 42, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := h.ReadAt(nil, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across remount")
	}
	fi, err := fs2.Stat(nil, "/frag", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Extents < 50 {
		t.Fatalf("fragmented extents lost: %d", fi.Extents)
	}
	if err := fs2.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRecovery(t *testing.T) {
	fs, dev := newFS(t, JournalMetadata)
	f, _ := fs.Create(nil, "/a", 0, 0o644)
	if _, err := f.WriteAt(nil, []byte("before"), 0); err != nil {
		t.Fatal(err)
	}
	// Crash between commit and checkpoint of the next operation.
	fs.failAfterCommit = true
	if _, err := fs.Create(nil, "/b", 0, 0o644); err != nil {
		t.Fatal(err)
	}
	// The FS is now dead; further ops fail.
	if _, err := fs.Create(nil, "/c", 0, 0o644); !errors.Is(err, ErrDead) {
		t.Fatalf("op on dead fs = %v", err)
	}
	// Remount: the journal redo must make /b visible.
	fs2, err := Mount(nil, dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Stat(nil, "/b", 0); err != nil {
		t.Fatalf("/b lost after recovery: %v", err)
	}
	if _, err := fs2.Stat(nil, "/a", 0); err != nil {
		t.Fatalf("/a lost: %v", err)
	}
	if err := fs2.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestJournalModesWriteAmplification(t *testing.T) {
	write := func(mode JournalMode) (journal int64, data int64) {
		fs, _ := newFS(t, mode)
		f, _ := fs.Create(nil, "/w", 0, 0o644)
		buf := make([]byte, 64*1024)
		if _, err := f.WriteAt(nil, buf, 0); err != nil {
			t.Fatal(err)
		}
		return fs.JournalBlockWrites, fs.DataBlockWrites
	}
	jNone, dNone := write(JournalNone)
	jMeta, dMeta := write(JournalMetadata)
	jFull, _ := write(JournalFull)
	if jNone != 0 {
		t.Fatalf("JournalNone wrote %d journal blocks", jNone)
	}
	if jMeta == 0 {
		t.Fatal("JournalMetadata wrote no journal blocks")
	}
	if dMeta != dNone {
		t.Fatalf("metadata journaling changed data writes: %d vs %d", dMeta, dNone)
	}
	// Full journaling at least doubles journal traffic relative to
	// metadata-only for a data-heavy write (64 data blocks journaled).
	if jFull < jMeta+60 {
		t.Fatalf("full journaling wrote %d journal blocks, metadata %d", jFull, jMeta)
	}
}

func TestJournalWrapAround(t *testing.T) {
	fs, dev := newFS(t, JournalMetadata)
	// Many small metadata transactions to wrap the 128-block journal
	// several times; create/remove pairs keep inode usage bounded.
	for i := 0; i < 300; i++ {
		name := "/wrap" + string(rune('a'+i%26))
		if _, err := fs.Create(nil, name, 0, 0o644); err != nil && !errors.Is(err, ErrExist) {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if err := fs.Remove(nil, name, 0); err != nil && !errors.Is(err, ErrNotExist) {
				t.Fatal(err)
			}
		}
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(nil, dev, 0); err != nil {
		t.Fatalf("mount after journal wrap: %v", err)
	}
}

func TestOutOfSpace(t *testing.T) {
	dev := NewMemDev(1024, 600) // tiny volume
	fs, err := Format(nil, dev, Params{InodeCount: 16, JournalBlocks: 16, Mode: JournalMetadata})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create(nil, "/fill", 0, 0o644)
	_, err = f.WriteAt(nil, make([]byte, 2<<20), 0)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overfill = %v", err)
	}
}

func TestPathValidation(t *testing.T) {
	fs, _ := newFS(t, JournalNone)
	for _, bad := range []string{"/a/../b", "/a//b", "/."} {
		if _, err := fs.Create(nil, bad, 0, 0o644); err == nil {
			t.Fatalf("path %q accepted", bad)
		}
	}
	long := "/" + string(bytes.Repeat([]byte{'x'}, MaxNameLen+1))
	if _, err := fs.Create(nil, long, 0, 0o644); !errors.Is(err, ErrNameTooLng) {
		t.Fatalf("long name = %v", err)
	}
}

// Property-style: random operation sequences keep the filesystem consistent
// (fsck passes) and a parallel in-memory model agrees on file contents.
func TestRandomOpsModelCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fs, dev := newFS(t, JournalMetadata)
	type model struct{ data []byte }
	files := map[string]*model{}
	handles := map[string]*File{}
	names := []string{"/f0", "/f1", "/f2", "/f3", "/f4"}
	for iter := 0; iter < 400; iter++ {
		name := names[rng.Intn(len(names))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // write
			if files[name] == nil {
				f, err := fs.Create(nil, name, 0, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				files[name] = &model{}
				handles[name] = f
			}
			off := rng.Intn(50000)
			n := 1 + rng.Intn(4000)
			chunk := make([]byte, n)
			rng.Read(chunk)
			if _, err := handles[name].WriteAt(nil, chunk, int64(off)); err != nil {
				t.Fatal(err)
			}
			m := files[name]
			if off+n > len(m.data) {
				nd := make([]byte, off+n)
				copy(nd, m.data)
				m.data = nd
			}
			copy(m.data[off:], chunk)
		case 5, 6, 7: // read & compare
			if files[name] == nil {
				continue
			}
			m := files[name]
			if len(m.data) == 0 {
				continue
			}
			off := rng.Intn(len(m.data))
			n := 1 + rng.Intn(len(m.data)-off)
			got := make([]byte, n)
			if _, err := handles[name].ReadAt(nil, got, int64(off)); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, m.data[off:off+n]) {
				t.Fatalf("iter %d: content mismatch on %s [%d:%d]", iter, name, off, off+n)
			}
		case 8: // truncate
			if files[name] == nil {
				continue
			}
			m := files[name]
			sz := rng.Intn(60000)
			if err := handles[name].Truncate(nil, uint64(sz)); err != nil {
				t.Fatal(err)
			}
			if sz <= len(m.data) {
				m.data = m.data[:sz]
			} else {
				nd := make([]byte, sz)
				copy(nd, m.data)
				m.data = nd
			}
		case 9: // remove
			if files[name] == nil {
				continue
			}
			if err := fs.Remove(nil, name, 0); err != nil {
				t.Fatal(err)
			}
			delete(files, name)
			delete(handles, name)
		}
		if iter%100 == 99 {
			if err := fs.Check(nil); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
	// Survives a remount with identical content.
	fs2, err := Mount(nil, dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range files {
		h, err := fs2.Open(nil, name, 0, PermRead)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(m.data))
		if len(got) > 0 {
			if _, err := h.ReadAt(nil, got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(got, m.data) {
			t.Fatalf("remount content mismatch on %s", name)
		}
	}
}

func TestOpsChargeTimeUnderProcess(t *testing.T) {
	eng := sim.NewEngine()
	dev := NewMemDev(1024, 4096)
	fs, err := Format(nil, dev, Params{InodeCount: 64, JournalBlocks: 32, Mode: JournalMetadata, OpCost: 5 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Time
	eng.Go("io", func(p *sim.Proc) {
		f, err := fs.Create(p, "/x", 0, 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.WriteAt(p, make([]byte, 4096), 0); err != nil {
			t.Error(err)
		}
		elapsed = p.Now()
	})
	eng.Run()
	if elapsed < 10*sim.Microsecond {
		t.Fatalf("two ops charged only %v", elapsed)
	}
}

func TestFSLockSerializesProcesses(t *testing.T) {
	eng := sim.NewEngine()
	dev := NewMemDev(1024, 4096)
	fs, err := Format(nil, dev, Params{InodeCount: 64, JournalBlocks: 32, Mode: JournalMetadata, OpCost: 10 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		name := "/p" + string(rune('0'+i))
		eng.Go("vm", func(p *sim.Proc) {
			if _, err := fs.Create(p, name, 0, 0o644); err != nil {
				t.Error(err)
			}
			ends = append(ends, p.Now())
		})
	}
	eng.Run()
	if len(ends) != 3 {
		t.Fatalf("completions = %d", len(ends))
	}
	// With a 10us op cost and one lock, completions must be spread.
	if ends[2] < 30*sim.Microsecond {
		t.Fatalf("ops not serialized: %v", ends)
	}
}

func TestFullJournalLargeWriteBatches(t *testing.T) {
	// A write larger than one journal transaction must split into batches
	// instead of failing (multi-transaction operations, as in ext4).
	fs, dev := newFS(t, JournalFull)
	f, err := fs.Create(nil, "/big", 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x3C}, 600*1024) // 600 blocks >> one tx
	if _, err := f.WriteAt(nil, data, 0); err != nil {
		t.Fatalf("large full-journal write: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(nil, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch after batched journaling")
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
	// And the volume still mounts cleanly.
	if _, err := Mount(nil, dev, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTinyJournalStillWorks(t *testing.T) {
	dev := NewMemDev(1024, 4096)
	fs, err := Format(nil, dev, Params{InodeCount: 32, JournalBlocks: 8, Mode: JournalFull})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(nil, "/x", 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(nil, make([]byte, 64*1024), 0); err != nil {
		t.Fatalf("write through tiny journal: %v", err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}
