package extfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"nesc/internal/sim"
)

// Exhaustive journal crash-point sweep: record every block write one
// mutating operation issues — journal descriptor, each image block, the
// commit record, every checkpoint and direct data write — and for every
// prefix of that sequence rebuild the device as if power died right there,
// remount (replaying the journal), and assert the filesystem invariants
// hold. A committed transaction must replay fully; an uncommitted one must
// vanish fully.

// recWrite is one recorded block write.
type recWrite struct {
	lba  int64
	data []byte
}

// recordingDev wraps a BlockDev and records every write, split per block so
// the sweep can truncate at every block boundary a real power cut can.
type recordingDev struct {
	inner  *MemDev
	writes []recWrite
}

func (d *recordingDev) BlockSize() int        { return d.inner.BlockSize() }
func (d *recordingDev) NumBlocks() int64      { return d.inner.NumBlocks() }
func (d *recordingDev) Flush(*sim.Proc) error { return nil }

func (d *recordingDev) ReadBlocks(ctx *sim.Proc, lba int64, p []byte) error {
	return d.inner.ReadBlocks(ctx, lba, p)
}

func (d *recordingDev) WriteBlocks(ctx *sim.Proc, lba int64, p []byte) error {
	bs := d.BlockSize()
	for off := 0; off < len(p); off += bs {
		d.writes = append(d.writes, recWrite{lba: lba + int64(off/bs), data: append([]byte(nil), p[off:off+bs]...)})
	}
	return d.inner.WriteBlocks(ctx, lba, p)
}

// snapshot copies the device's full image.
func snapshot(d *MemDev) []byte {
	img, err := d.S.Slice(0, d.S.NumBlocks())
	if err != nil {
		panic(err)
	}
	return append([]byte(nil), img...)
}

// devFrom builds a fresh device holding image img.
func devFrom(bs int, nb int64, img []byte) *MemDev {
	d := NewMemDev(bs, nb)
	if err := d.S.WriteBlocks(0, img); err != nil {
		panic(err)
	}
	return d
}

const (
	crashBS = 1024
	crashNB = 4096
)

// recordOp formats a filesystem, runs setup, snapshots the (consistent)
// disk, then runs op on a recording device and returns the pre-image plus
// the ordered writes op issued.
func recordOp(t *testing.T, mode JournalMode, setup, op func(t *testing.T, fs *FS)) (pre []byte, writes []recWrite) {
	t.Helper()
	dev0 := NewMemDev(crashBS, crashNB)
	fs0, err := Format(nil, dev0, Params{InodeCount: 64, JournalBlocks: 64, Mode: mode})
	if err != nil {
		t.Fatalf("format: %v", err)
	}
	setup(t, fs0)
	pre = snapshot(dev0)

	rec := &recordingDev{inner: devFrom(crashBS, crashNB, pre)}
	fs1, err := Mount(nil, rec, 0)
	if err != nil {
		t.Fatalf("mount for recorded op: %v", err)
	}
	op(t, fs1)
	return pre, rec.writes
}

// sweep replays every write-prefix of a recorded operation onto the
// pre-image and hands the remounted filesystem to check.
func sweep(t *testing.T, pre []byte, writes []recWrite, check func(t *testing.T, point int, fs *FS)) {
	t.Helper()
	for k := 0; k <= len(writes); k++ {
		dev := devFrom(crashBS, crashNB, pre)
		for _, w := range writes[:k] {
			if err := dev.S.WriteBlocks(w.lba, w.data); err != nil {
				t.Fatalf("crash point %d: apply write: %v", k, err)
			}
		}
		fs, err := Mount(nil, dev, 0)
		if err != nil {
			t.Fatalf("crash point %d/%d: remount: %v", k, len(writes), err)
		}
		if err := fs.Check(nil); err != nil {
			t.Fatalf("crash point %d/%d: fsck: %v", k, len(writes), err)
		}
		check(t, k, fs)
	}
}

func pattern(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

func readAll(t *testing.T, fs *FS, path string, n int) []byte {
	t.Helper()
	f, err := fs.Open(nil, path, 0, PermRead)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	got := make([]byte, n)
	if _, err := f.ReadAt(nil, got, 0); err != nil && err != io.EOF {
		t.Fatalf("read %s: %v", path, err)
	}
	return got
}

// TestJournalCrashSweepOverwrite overwrites an existing file's blocks and
// sweeps every crash point. In full-data journaling the content must be
// all-old or all-new at every point; in metadata journaling data blocks
// bypass the journal, so only the structural invariants (fsck, unchanged
// size) are promised.
func TestJournalCrashSweepOverwrite(t *testing.T) {
	const fileBytes = 4 * crashBS
	oldData := pattern(0xAA, fileBytes)
	newData := pattern(0x55, fileBytes)
	for _, mode := range []JournalMode{JournalMetadata, JournalFull} {
		mode := mode
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			pre, writes := recordOp(t, mode,
				func(t *testing.T, fs *FS) {
					f, err := fs.Create(nil, "/f", 0, 0o644)
					if err != nil {
						t.Fatalf("create: %v", err)
					}
					if _, err := f.WriteAt(nil, oldData, 0); err != nil {
						t.Fatalf("seed write: %v", err)
					}
				},
				func(t *testing.T, fs *FS) {
					f, err := fs.Open(nil, "/f", 0, PermRead|PermWrite)
					if err != nil {
						t.Fatalf("open: %v", err)
					}
					if _, err := f.WriteAt(nil, newData, 0); err != nil {
						t.Fatalf("overwrite: %v", err)
					}
				})
			if len(writes) == 0 {
				t.Fatal("recorded operation issued no writes")
			}
			sweep(t, pre, writes, func(t *testing.T, point int, fs *FS) {
				got := readAll(t, fs, "/f", fileBytes)
				if mode == JournalFull {
					if !bytes.Equal(got, oldData) && !bytes.Equal(got, newData) {
						t.Fatalf("crash point %d: torn content in full-data mode", point)
					}
					return
				}
				// Metadata mode: every block still must be fully old or fully
				// new — writes land in whole blocks, never partial ones.
				for b := 0; b < fileBytes/crashBS; b++ {
					blk := got[b*crashBS : (b+1)*crashBS]
					if !bytes.Equal(blk, oldData[:crashBS]) && !bytes.Equal(blk, newData[:crashBS]) {
						t.Fatalf("crash point %d: block %d torn mid-block", point, b)
					}
				}
			})
		})
	}
}

// TestJournalCrashSweepAppend sweeps an allocating append: at every crash
// point the file is either untouched (size 0) or fully extended, and no
// data block may leak (fsck inside sweep enforces that).
func TestJournalCrashSweepAppend(t *testing.T) {
	const fileBytes = 3 * crashBS
	data := pattern(0x3C, fileBytes)
	for _, mode := range []JournalMode{JournalMetadata, JournalFull} {
		mode := mode
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			pre, writes := recordOp(t, mode,
				func(t *testing.T, fs *FS) {
					if _, err := fs.Create(nil, "/a", 0, 0o644); err != nil {
						t.Fatalf("create: %v", err)
					}
				},
				func(t *testing.T, fs *FS) {
					f, err := fs.Open(nil, "/a", 0, PermRead|PermWrite)
					if err != nil {
						t.Fatalf("open: %v", err)
					}
					if _, err := f.WriteAt(nil, data, 0); err != nil {
						t.Fatalf("append: %v", err)
					}
				})
			sweep(t, pre, writes, func(t *testing.T, point int, fs *FS) {
				f, err := fs.Open(nil, "/a", 0, PermRead)
				if err != nil {
					t.Fatalf("crash point %d: open: %v", point, err)
				}
				switch sz := f.Size(); sz {
				case 0:
					// Transaction discarded: the append never happened.
				case uint64(fileBytes):
					if mode == JournalFull {
						if got := readAll(t, fs, "/a", fileBytes); !bytes.Equal(got, data) {
							t.Fatalf("crash point %d: size committed but content wrong", point)
						}
					}
				default:
					t.Fatalf("crash point %d: size %d is neither 0 nor %d (partial metadata replay)", point, sz, fileBytes)
				}
			})
		})
	}
}

// TestJournalCrashSweepSnapshot sweeps a snapshot: at every crash point the
// snapshot either exists in full — sharing verified by fsck's refcount
// cross-check — or not at all, and the first snapshot's lazily allocated
// refcount table never leaks.
func TestJournalCrashSweepSnapshot(t *testing.T) {
	const fileBytes = 4 * crashBS
	data := pattern(0x5A, fileBytes)
	for _, mode := range []JournalMode{JournalMetadata, JournalFull} {
		mode := mode
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			pre, writes := recordOp(t, mode,
				func(t *testing.T, fs *FS) {
					f, err := fs.Create(nil, "/src", 0, 0o644)
					if err != nil {
						t.Fatalf("create: %v", err)
					}
					if _, err := f.WriteAt(nil, data, 0); err != nil {
						t.Fatalf("seed write: %v", err)
					}
				},
				func(t *testing.T, fs *FS) {
					if err := fs.Snapshot(nil, "/src", "/src.snap", 0); err != nil {
						t.Fatalf("snapshot: %v", err)
					}
				})
			sweep(t, pre, writes, func(t *testing.T, point int, fs *FS) {
				if got := readAll(t, fs, "/src", fileBytes); !bytes.Equal(got, data) {
					t.Fatalf("crash point %d: source data changed", point)
				}
				_, err := fs.Stat(nil, "/src.snap", 0)
				switch {
				case err == nil:
					if got := readAll(t, fs, "/src.snap", fileBytes); !bytes.Equal(got, data) {
						t.Fatalf("crash point %d: snapshot exists but content wrong", point)
					}
					if fs.SharedBlocks() == 0 {
						t.Fatalf("crash point %d: snapshot exists with no shared refcounts", point)
					}
				case errors.Is(err, ErrNotExist):
					if fs.SharedBlocks() != 0 {
						t.Fatalf("crash point %d: no snapshot but %d refcounted blocks", point, fs.SharedBlocks())
					}
				default:
					t.Fatalf("crash point %d: stat: %v", point, err)
				}
			})
		})
	}
}

// TestJournalCrashSweepCowBreak sweeps a write that breaks snapshot sharing
// (the CoW copy path). A power cut mid-break must never leak a block,
// double-free one, or corrupt the snapshot — fsck's refcount cross-check
// inside sweep enforces the first two, the content checks the third.
func TestJournalCrashSweepCowBreak(t *testing.T) {
	const fileBytes = 4 * crashBS
	oldData := pattern(0xAA, fileBytes)
	newBlock := pattern(0x55, crashBS)
	for _, mode := range []JournalMode{JournalMetadata, JournalFull} {
		mode := mode
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			pre, writes := recordOp(t, mode,
				func(t *testing.T, fs *FS) {
					f, err := fs.Create(nil, "/c", 0, 0o644)
					if err != nil {
						t.Fatalf("create: %v", err)
					}
					if _, err := f.WriteAt(nil, oldData, 0); err != nil {
						t.Fatalf("seed write: %v", err)
					}
					if err := fs.Snapshot(nil, "/c", "/c.snap", 0); err != nil {
						t.Fatalf("snapshot: %v", err)
					}
				},
				func(t *testing.T, fs *FS) {
					f, err := fs.Open(nil, "/c", 0, PermRead|PermWrite)
					if err != nil {
						t.Fatalf("open: %v", err)
					}
					// Overwrite one shared block: copy-aside + extent splice.
					if _, err := f.WriteAt(nil, newBlock, crashBS); err != nil {
						t.Fatalf("cow write: %v", err)
					}
				})
			if len(writes) == 0 {
				t.Fatal("recorded CoW break issued no writes")
			}
			sweep(t, pre, writes, func(t *testing.T, point int, fs *FS) {
				// The snapshot must read the pre-break image at every point.
				if got := readAll(t, fs, "/c.snap", fileBytes); !bytes.Equal(got, oldData) {
					t.Fatalf("crash point %d: CoW break leaked into snapshot", point)
				}
				// The parent's written block is all-old or all-new.
				got := readAll(t, fs, "/c", fileBytes)
				blk := got[crashBS : 2*crashBS]
				if !bytes.Equal(blk, oldData[:crashBS]) && !bytes.Equal(blk, newBlock) {
					t.Fatalf("crash point %d: parent block torn by CoW break", point)
				}
				// The untouched blocks stay shared and intact.
				rest := append(append([]byte(nil), got[:crashBS]...), got[2*crashBS:]...)
				want := append(append([]byte(nil), oldData[:crashBS]...), oldData[2*crashBS:]...)
				if !bytes.Equal(rest, want) {
					t.Fatalf("crash point %d: unwritten parent blocks changed", point)
				}
			})
		})
	}
}

// TestJournalCrashSweepCreate sweeps a file creation (pure metadata): the
// file must exist fully linked or not at all at every crash point.
func TestJournalCrashSweepCreate(t *testing.T) {
	for _, mode := range []JournalMode{JournalMetadata, JournalFull} {
		mode := mode
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			pre, writes := recordOp(t, mode,
				func(t *testing.T, fs *FS) {
					if err := fs.Mkdir(nil, "/dir", 0, 0o755); err != nil {
						t.Fatalf("mkdir: %v", err)
					}
				},
				func(t *testing.T, fs *FS) {
					if _, err := fs.Create(nil, "/dir/new", 0, 0o600); err != nil {
						t.Fatalf("create: %v", err)
					}
				})
			sweep(t, pre, writes, func(t *testing.T, point int, fs *FS) {
				// fsck (in sweep) has already validated link counts and
				// orphans; existence itself may be either way.
				_, err := fs.Open(nil, "/dir/new", 0, PermRead)
				if err != nil && !errors.Is(err, ErrNotExist) {
					t.Fatalf("crash point %d: open: %v", point, err)
				}
			})
		})
	}
}
