package extfs

import (
	"encoding/binary"
	"fmt"

	"nesc/internal/extent"
	"nesc/internal/sim"
)

// On-disk inode layout (128 bytes, big-endian):
//
//	mode      uint16
//	links     uint16
//	uid       uint32
//	size      uint64
//	extCount  uint32   total extents (inline + spilled)
//	overflow  uint64   first overflow block (0 = none)
//	inline    5 × {logical uint64, physical uint64, count uint32}
//
// Extents past the inline capacity spill to a chain of overflow blocks:
//
//	magic uint32, count uint32, next uint64, entries 20 bytes each.
const (
	ovfMagic  = 0x584F5646 // "XOVF"
	ovfHeader = 16
	extEntry  = 20

	// countProtectBit marks a write-protected (CoW shared) extent in the
	// on-disk count word. The 20-byte entry has no spare bytes (5 inline
	// entries + the 28-byte fixed header exactly fill the 128-byte inode),
	// and extents never approach 2^31 blocks, so the top bit of count is
	// free to carry the flag.
	countProtectBit = uint32(1) << 31
)

// packExtCount encodes a run's block count and protect flag into the on-disk
// count word; unpackExtCount is its inverse.
func packExtCount(r extent.Run) uint32 {
	c := uint32(r.Count)
	if r.Flags&extent.FlagProtected != 0 {
		c |= countProtectBit
	}
	return c
}

func unpackExtCount(raw uint32) (count uint64, flags uint32) {
	if raw&countProtectBit != 0 {
		return uint64(raw &^ countProtectBit), extent.FlagProtected
	}
	return uint64(raw), 0
}

func (fs *FS) ovfEntriesPerBlock() int { return (fs.bs - ovfHeader) / extEntry }

func encodeInode(b []byte, in *inode) {
	clear(b[:InodeSize])
	if !in.used {
		return
	}
	binary.BigEndian.PutUint16(b[0:], in.mode)
	binary.BigEndian.PutUint16(b[2:], in.links)
	binary.BigEndian.PutUint32(b[4:], in.uid)
	binary.BigEndian.PutUint64(b[8:], in.size)
	binary.BigEndian.PutUint32(b[16:], uint32(len(in.extents)))
	var ovf uint64
	if len(in.overflow) > 0 {
		ovf = in.overflow[0]
	}
	binary.BigEndian.PutUint64(b[20:], ovf)
	n := len(in.extents)
	if n > inlineExtents {
		n = inlineExtents
	}
	for i := 0; i < n; i++ {
		off := 28 + i*extEntry
		binary.BigEndian.PutUint64(b[off:], in.extents[i].Logical)
		binary.BigEndian.PutUint64(b[off+8:], in.extents[i].Physical)
		binary.BigEndian.PutUint32(b[off+16:], packExtCount(in.extents[i]))
	}
}

// decodeInode fills in the fixed fields and inline extents; overflow extents
// are loaded separately because they need device reads.
func decodeInode(b []byte, in *inode) (extCount int, overflowBlk uint64) {
	in.mode = binary.BigEndian.Uint16(b[0:])
	in.links = binary.BigEndian.Uint16(b[2:])
	in.uid = binary.BigEndian.Uint32(b[4:])
	in.size = binary.BigEndian.Uint64(b[8:])
	in.used = in.mode != 0
	extCount = int(binary.BigEndian.Uint32(b[16:]))
	overflowBlk = binary.BigEndian.Uint64(b[20:])
	n := extCount
	if n > inlineExtents {
		n = inlineExtents
	}
	in.extents = make([]extent.Run, 0, extCount)
	for i := 0; i < n; i++ {
		off := 28 + i*extEntry
		count, flags := unpackExtCount(binary.BigEndian.Uint32(b[off+16:]))
		in.extents = append(in.extents, extent.Run{
			Logical:  binary.BigEndian.Uint64(b[off:]),
			Physical: binary.BigEndian.Uint64(b[off+8:]),
			Count:    count,
			Flags:    flags,
		})
	}
	return extCount, overflowBlk
}

// inodeBlock reports which device block holds inode ino and the byte offset
// within it.
func (fs *FS) inodeBlock(ino uint32) (int64, int) {
	byteOff := uint64(ino-1) * InodeSize
	return int64(fs.sb.inodeTableStart + byteOff/uint64(fs.bs)), int(byteOff % uint64(fs.bs))
}

// writeInode serializes the disk block containing ino (and its neighbours in
// the same block) into the current transaction, spilling extents to overflow
// blocks as needed.
func (fs *FS) writeInode(ctx *sim.Proc, ino uint32) error {
	in := &fs.inodes[ino]
	if err := fs.syncOverflow(ctx, in); err != nil {
		return err
	}
	blk, _ := fs.inodeBlock(ino)
	img := make([]byte, fs.bs)
	perBlock := fs.bs / InodeSize
	first := uint32((int64(blk)-int64(fs.sb.inodeTableStart))*int64(perBlock)) + 1
	for i := 0; i < perBlock; i++ {
		n := first + uint32(i)
		if int(n) >= len(fs.inodes) {
			break
		}
		encodeInode(img[i*InodeSize:], &fs.inodes[n])
	}
	return fs.writeBlock(ctx, blk, img, true)
}

// syncOverflow (re)writes the overflow chain for extents beyond the inline
// capacity, allocating or freeing chain blocks as the extent count changes.
func (fs *FS) syncOverflow(ctx *sim.Proc, in *inode) error {
	spill := 0
	if len(in.extents) > inlineExtents {
		spill = len(in.extents) - inlineExtents
	}
	per := fs.ovfEntriesPerBlock()
	needBlocks := (spill + per - 1) / per
	// Adjust chain length.
	for len(in.overflow) > needBlocks {
		last := in.overflow[len(in.overflow)-1]
		fs.freeRun(last, 1)
		in.overflow = in.overflow[:len(in.overflow)-1]
	}
	for len(in.overflow) < needBlocks {
		start, n := fs.allocRun(fs.allocHint, 1)
		if n == 0 {
			return ErrNoSpace
		}
		in.overflow = append(in.overflow, start)
	}
	if needBlocks == 0 {
		return nil
	}
	img := make([]byte, fs.bs)
	for bi := 0; bi < needBlocks; bi++ {
		clear(img)
		lo := inlineExtents + bi*per
		hi := lo + per
		if hi > len(in.extents) {
			hi = len(in.extents)
		}
		binary.BigEndian.PutUint32(img[0:], ovfMagic)
		binary.BigEndian.PutUint32(img[4:], uint32(hi-lo))
		if bi+1 < needBlocks {
			binary.BigEndian.PutUint64(img[8:], in.overflow[bi+1])
		}
		for i := lo; i < hi; i++ {
			off := ovfHeader + (i-lo)*extEntry
			binary.BigEndian.PutUint64(img[off:], in.extents[i].Logical)
			binary.BigEndian.PutUint64(img[off+8:], in.extents[i].Physical)
			binary.BigEndian.PutUint32(img[off+16:], packExtCount(in.extents[i]))
		}
		if err := fs.writeBlock(ctx, int64(in.overflow[bi]), img, true); err != nil {
			return err
		}
	}
	return nil
}

// loadInodeTable reads all inodes (and their overflow chains) into memory.
func (fs *FS) loadInodeTable(ctx *sim.Proc) error {
	img := make([]byte, fs.bs)
	perBlock := fs.bs / InodeSize
	for b := uint64(0); b < fs.sb.inodeTableBlocks; b++ {
		if err := fs.dev.ReadBlocks(ctx, int64(fs.sb.inodeTableStart+b), img); err != nil {
			return err
		}
		for i := 0; i < perBlock; i++ {
			ino := uint32(b)*uint32(perBlock) + uint32(i) + 1
			if int(ino) >= len(fs.inodes) {
				break
			}
			in := &fs.inodes[ino]
			extCount, ovf := decodeInode(img[i*InodeSize:], in)
			if !in.used {
				continue
			}
			if err := fs.loadOverflow(ctx, in, extCount, ovf); err != nil {
				return fmt.Errorf("extfs: inode %d: %w", ino, err)
			}
		}
	}
	return nil
}

func (fs *FS) loadOverflow(ctx *sim.Proc, in *inode, extCount int, ovf uint64) error {
	in.overflow = nil
	img := make([]byte, fs.bs)
	for ovf != 0 {
		if err := fs.dev.ReadBlocks(ctx, int64(ovf), img); err != nil {
			return err
		}
		if binary.BigEndian.Uint32(img[0:]) != ovfMagic {
			return fmt.Errorf("bad overflow block magic at %d", ovf)
		}
		in.overflow = append(in.overflow, ovf)
		count := int(binary.BigEndian.Uint32(img[4:]))
		next := binary.BigEndian.Uint64(img[8:])
		for i := 0; i < count; i++ {
			off := ovfHeader + i*extEntry
			c, flags := unpackExtCount(binary.BigEndian.Uint32(img[off+16:]))
			in.extents = append(in.extents, extent.Run{
				Logical:  binary.BigEndian.Uint64(img[off:]),
				Physical: binary.BigEndian.Uint64(img[off+8:]),
				Count:    c,
				Flags:    flags,
			})
		}
		ovf = next
	}
	if len(in.extents) != extCount {
		return fmt.Errorf("extent count mismatch: inode says %d, loaded %d", extCount, len(in.extents))
	}
	return nil
}

// flushInodeTableAll writes the whole inode table (mkfs path).
func (fs *FS) flushInodeTableAll(ctx *sim.Proc) error {
	img := make([]byte, fs.bs)
	perBlock := fs.bs / InodeSize
	for b := uint64(0); b < fs.sb.inodeTableBlocks; b++ {
		clear(img)
		for i := 0; i < perBlock; i++ {
			ino := uint32(b)*uint32(perBlock) + uint32(i) + 1
			if int(ino) >= len(fs.inodes) {
				break
			}
			encodeInode(img[i*InodeSize:], &fs.inodes[ino])
		}
		if err := fs.devWrite(ctx, int64(fs.sb.inodeTableStart+b), img); err != nil {
			return err
		}
	}
	return nil
}

// allocInode finds a free inode slot.
func (fs *FS) allocInode() (uint32, error) {
	for i := uint32(1); i < uint32(len(fs.inodes)); i++ {
		if !fs.inodes[i].used {
			return i, nil
		}
	}
	return 0, fmt.Errorf("extfs: out of inodes")
}

// Access checks POSIX-style permission bits for uid against inode in.
// uid 0 (the hypervisor/root) is always allowed.
func accessOK(in *inode, uid uint32, perm uint16) bool {
	if uid == 0 {
		return true
	}
	var bits uint16
	if uid == in.uid {
		bits = (in.mode >> 6) & 7
	} else {
		bits = in.mode & 7
	}
	return bits&perm == perm
}
