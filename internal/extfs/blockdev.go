package extfs

import (
	"fmt"

	"nesc/internal/blockdev"
	"nesc/internal/sim"
)

// BlockDev is the block transport a filesystem instance is mounted on. The
// same filesystem code runs in two places in the NeSC stack:
//
//   - the hypervisor's filesystem, mounted on the physical function of the
//     device (its block I/O flows through the PF's out-of-band channel), and
//   - a guest's filesystem, mounted on a virtual disk (a VF, a virtio disk,
//     or an emulated disk).
//
// Implementations charge virtual time against the calling process ctx; a nil
// ctx is allowed for timeless (functional) use in tests and setup code.
type BlockDev interface {
	BlockSize() int
	NumBlocks() int64
	ReadBlocks(ctx *sim.Proc, lba int64, p []byte) error
	WriteBlocks(ctx *sim.Proc, lba int64, p []byte) error
	// Flush orders previously written data onto stable storage.
	Flush(ctx *sim.Proc) error
}

// MemDev adapts a blockdev.Store into a timeless BlockDev for functional
// tests and image preparation.
type MemDev struct {
	S *blockdev.Store
}

// NewMemDev returns a MemDev over a fresh store.
func NewMemDev(blockSize int, numBlocks int64) *MemDev {
	return &MemDev{S: blockdev.NewStore(blockSize, numBlocks)}
}

// BlockSize implements BlockDev.
func (d *MemDev) BlockSize() int { return d.S.BlockSize() }

// NumBlocks implements BlockDev.
func (d *MemDev) NumBlocks() int64 { return d.S.NumBlocks() }

// ReadBlocks implements BlockDev.
func (d *MemDev) ReadBlocks(_ *sim.Proc, lba int64, p []byte) error {
	return d.S.ReadBlocks(lba, p)
}

// WriteBlocks implements BlockDev.
func (d *MemDev) WriteBlocks(_ *sim.Proc, lba int64, p []byte) error {
	return d.S.WriteBlocks(lba, p)
}

// Flush implements BlockDev.
func (d *MemDev) Flush(*sim.Proc) error { return nil }

// faultyDev wraps a BlockDev and fails writes after a countdown; the journal
// recovery tests use it to model a crash mid-update.
type faultyDev struct {
	BlockDev
	writesLeft int
}

func (d *faultyDev) WriteBlocks(ctx *sim.Proc, lba int64, p []byte) error {
	if d.writesLeft <= 0 {
		return fmt.Errorf("extfs: injected write failure")
	}
	d.writesLeft--
	return d.BlockDev.WriteBlocks(ctx, lba, p)
}
