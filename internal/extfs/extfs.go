// Package extfs implements the extent-based filesystem of the NeSC stack.
//
// NeSC's protection model (paper §IV) is built on the observation that
// "modern UNIX filesystems (e.g., ext4, btrfs, xfs) group contiguous
// physical blocks into extents and construct extent trees"; the hypervisor
// translates a file's extent map into the device's per-VF extent tree. This
// package provides that filesystem: an ext4-flavoured design with per-inode
// extent maps, lazy allocation (holes), owner/mode permissions, a redo
// journal with metadata-only and full-data modes (the nested-journaling
// discussion of §IV-D), and an exportable logical-to-physical mapping
// (Runs) that feeds VF creation.
//
// The same implementation runs as the hypervisor's filesystem on the
// physical device and as a guest filesystem inside a virtual disk, which is
// exactly the nested-filesystem structure whose overheads the paper
// measures.
package extfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"nesc/internal/extent"
	"nesc/internal/sim"
)

// JournalMode selects what the write-ahead journal captures.
type JournalMode int

const (
	// JournalNone disables the journal.
	JournalNone JournalMode = iota
	// JournalMetadata journals metadata blocks only (ext4 "ordered"-like);
	// the hypervisor-side recommendation for nested filesystems.
	JournalMetadata
	// JournalFull journals data blocks too (ext4 "journal" mode); doubles
	// data write traffic, which is what makes nested journaling expensive.
	JournalFull
)

func (m JournalMode) String() string {
	switch m {
	case JournalNone:
		return "none"
	case JournalMetadata:
		return "metadata"
	case JournalFull:
		return "full"
	default:
		return fmt.Sprintf("JournalMode(%d)", int(m))
	}
}

// Filesystem geometry and on-disk format constants.
const (
	sbMagic       = 0x4E455346 // "NESF"
	version       = 1
	InodeSize     = 128
	DirentSize    = 64
	MaxNameLen    = DirentSize - 6
	inlineExtents = 5
	// RootIno is the inode number of the root directory.
	RootIno = 1
	// Mode type bits (subset of POSIX).
	ModeDir  = 0x4000
	ModeFile = 0x8000
	// Permission bits for Access.
	PermRead  = 4
	PermWrite = 2
	PermExec  = 1
)

// Common errors.
var (
	ErrNotExist   = errors.New("extfs: no such file or directory")
	ErrExist      = errors.New("extfs: file exists")
	ErrPerm       = errors.New("extfs: permission denied")
	ErrNotDir     = errors.New("extfs: not a directory")
	ErrIsDir      = errors.New("extfs: is a directory")
	ErrNotEmpty   = errors.New("extfs: directory not empty")
	ErrNoSpace    = errors.New("extfs: no space left on device")
	ErrNameTooLng = errors.New("extfs: name too long")
	ErrDead       = errors.New("extfs: filesystem failed (crashed); remount to recover")
)

// Params configures Format and Mount.
type Params struct {
	// InodeCount is the inode table capacity (Format only).
	InodeCount int
	// JournalBlocks sizes the journal region (Format only).
	JournalBlocks int64
	// Mode selects the journaling mode (stored in the superblock).
	Mode JournalMode
	// OpCost is the CPU cost charged per public filesystem operation,
	// modeling the VFS + filesystem code path.
	OpCost sim.Time
}

// DefaultParams returns a sensible configuration for a medium-sized volume.
func DefaultParams() Params {
	return Params{InodeCount: 1024, JournalBlocks: 256, Mode: JournalMetadata}
}

// superblock is the decoded block-0 content.
type superblock struct {
	blockSize        uint32
	numBlocks        uint64
	inodeCount       uint32
	inodeTableStart  uint64
	inodeTableBlocks uint64
	bitmapStart      uint64
	bitmapBlocks     uint64
	journalStart     uint64
	journalBlocks    uint64
	dataStart        uint64
	mode             JournalMode
	// Snapshot support: the per-block reference-count table, allocated
	// lazily from the data region on the first Snapshot (0 = no table, the
	// state every freshly formatted volume is in).
	refcntStart  uint64
	refcntBlocks uint64
}

func (sb *superblock) encode(b []byte) {
	clear(b)
	binary.BigEndian.PutUint32(b[0:], sbMagic)
	binary.BigEndian.PutUint32(b[4:], version)
	binary.BigEndian.PutUint32(b[8:], sb.blockSize)
	binary.BigEndian.PutUint64(b[12:], sb.numBlocks)
	binary.BigEndian.PutUint32(b[20:], sb.inodeCount)
	binary.BigEndian.PutUint64(b[24:], sb.inodeTableStart)
	binary.BigEndian.PutUint64(b[32:], sb.inodeTableBlocks)
	binary.BigEndian.PutUint64(b[40:], sb.bitmapStart)
	binary.BigEndian.PutUint64(b[48:], sb.bitmapBlocks)
	binary.BigEndian.PutUint64(b[56:], sb.journalStart)
	binary.BigEndian.PutUint64(b[64:], sb.journalBlocks)
	binary.BigEndian.PutUint64(b[72:], sb.dataStart)
	binary.BigEndian.PutUint32(b[80:], uint32(sb.mode))
	binary.BigEndian.PutUint64(b[84:], sb.refcntStart)
	binary.BigEndian.PutUint64(b[92:], sb.refcntBlocks)
}

func (sb *superblock) decode(b []byte) error {
	if binary.BigEndian.Uint32(b[0:]) != sbMagic {
		return fmt.Errorf("extfs: bad superblock magic")
	}
	if v := binary.BigEndian.Uint32(b[4:]); v != version {
		return fmt.Errorf("extfs: unsupported version %d", v)
	}
	sb.blockSize = binary.BigEndian.Uint32(b[8:])
	sb.numBlocks = binary.BigEndian.Uint64(b[12:])
	sb.inodeCount = binary.BigEndian.Uint32(b[20:])
	sb.inodeTableStart = binary.BigEndian.Uint64(b[24:])
	sb.inodeTableBlocks = binary.BigEndian.Uint64(b[32:])
	sb.bitmapStart = binary.BigEndian.Uint64(b[40:])
	sb.bitmapBlocks = binary.BigEndian.Uint64(b[48:])
	sb.journalStart = binary.BigEndian.Uint64(b[56:])
	sb.journalBlocks = binary.BigEndian.Uint64(b[64:])
	sb.dataStart = binary.BigEndian.Uint64(b[72:])
	sb.mode = JournalMode(binary.BigEndian.Uint32(b[80:]))
	sb.refcntStart = binary.BigEndian.Uint64(b[84:])
	sb.refcntBlocks = binary.BigEndian.Uint64(b[92:])
	return nil
}

// inode is the in-memory (authoritative) form of an on-disk inode.
type inode struct {
	used     bool
	mode     uint16
	links    uint16
	uid      uint32
	size     uint64
	extents  []extent.Run // sorted, non-overlapping, FS-block units
	overflow []uint64     // blocks holding spilled extent entries
}

func (in *inode) isDir() bool  { return in.mode&ModeDir != 0 }
func (in *inode) isFile() bool { return in.mode&ModeFile != 0 }

// FS is a mounted filesystem instance.
type FS struct {
	dev    BlockDev
	bs     int
	sb     superblock
	bitmap []byte
	inodes []inode // index by ino; [0] unused
	opCost sim.Time

	lock *sim.Semaphore // created lazily from the first ctx's engine

	tx              *txState
	journalHead     uint64 // next free block offset within the journal region
	journalSeq      uint64
	dirtyBitmapBlks map[uint64]struct{}
	allocHint       uint64
	allocSeq        uint64 // bumped on any allocator mutation

	// Snapshot state: refcnt[i] counts EXTRA references to data block
	// dataStart+i (0 = sole owner); nil until the first Snapshot allocates
	// the on-disk table. Dirty table blocks are flushed with the bitmap so
	// every transaction that moves a count journals it.
	refcnt          []uint32
	dirtyRefcntBlks map[uint64]struct{}

	dead bool
	// failAfterCommit, when set, crashes the filesystem after the journal
	// commit record lands and before the home-location writes — the window
	// the journal exists to protect. Test hook.
	failAfterCommit bool

	// Counters for the nested-journaling and overhead experiments.
	MetaBlockWrites    int64
	DataBlockWrites    int64
	JournalBlockWrites int64
	DataBlockReads     int64
	Ops                int64
	// CowBreaks counts shared extents unshared (copied or unprotected in
	// place) by BreakRange.
	CowBreaks int64
}

// Format writes a fresh filesystem onto dev and returns it mounted.
func Format(ctx *sim.Proc, dev BlockDev, p Params) (*FS, error) {
	bs := dev.BlockSize()
	if bs < 512 {
		return nil, fmt.Errorf("extfs: block size %d too small", bs)
	}
	if p.InodeCount <= 1 {
		p.InodeCount = 1024
	}
	if p.JournalBlocks < 8 && p.Mode != JournalNone {
		p.JournalBlocks = 64
	}
	nb := uint64(dev.NumBlocks())
	var sb superblock
	sb.blockSize = uint32(bs)
	sb.numBlocks = nb
	sb.inodeCount = uint32(p.InodeCount)
	sb.mode = p.Mode

	bitmapBytes := (nb + 7) / 8
	sb.bitmapStart = 1
	sb.bitmapBlocks = (bitmapBytes + uint64(bs) - 1) / uint64(bs)
	sb.inodeTableStart = sb.bitmapStart + sb.bitmapBlocks
	sb.inodeTableBlocks = (uint64(p.InodeCount)*InodeSize + uint64(bs) - 1) / uint64(bs)
	sb.journalStart = sb.inodeTableStart + sb.inodeTableBlocks
	sb.journalBlocks = uint64(p.JournalBlocks)
	if p.Mode == JournalNone {
		sb.journalBlocks = 0
	}
	sb.dataStart = sb.journalStart + sb.journalBlocks
	if sb.dataStart >= nb {
		return nil, fmt.Errorf("extfs: device of %d blocks too small for metadata", nb)
	}

	fs := &FS{
		dev:    dev,
		bs:     bs,
		sb:     sb,
		bitmap: make([]byte, bitmapBytes),
		inodes: make([]inode, p.InodeCount+1),
		opCost: p.OpCost,
	}
	// Reserve metadata blocks in the bitmap.
	for b := uint64(0); b < sb.dataStart; b++ {
		fs.bitmapSet(b, true)
	}
	// Root directory: world-writable so per-tenant (per-uid) files can be
	// created directly under it; per-tenant subdirectories tighten modes.
	fs.inodes[RootIno] = inode{used: true, mode: ModeDir | 0o777, links: 2, uid: 0}

	// Write everything out, unjournaled (mkfs).
	img := make([]byte, bs)
	sb.encode(img)
	if err := fs.devWrite(ctx, 0, img); err != nil {
		return nil, err
	}
	if err := fs.flushBitmapAll(ctx); err != nil {
		return nil, err
	}
	if err := fs.flushInodeTableAll(ctx); err != nil {
		return nil, err
	}
	// Zero the journal region so stale magic can never replay.
	clear(img)
	for b := uint64(0); b < sb.journalBlocks; b++ {
		if err := fs.devWrite(ctx, int64(sb.journalStart+b), img); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// Mount reads an existing filesystem from dev, replaying the journal if it
// holds committed-but-unapplied transactions. opCost is the per-operation
// CPU cost to charge.
func Mount(ctx *sim.Proc, dev BlockDev, opCost sim.Time) (*FS, error) {
	bs := dev.BlockSize()
	img := make([]byte, bs)
	if err := dev.ReadBlocks(ctx, 0, img); err != nil {
		return nil, err
	}
	var sb superblock
	if err := sb.decode(img); err != nil {
		return nil, err
	}
	if int(sb.blockSize) != bs {
		return nil, fmt.Errorf("extfs: superblock block size %d != device %d", sb.blockSize, bs)
	}
	fs := &FS{
		dev:    dev,
		bs:     bs,
		sb:     sb,
		opCost: opCost,
	}
	if err := fs.replayJournal(ctx); err != nil {
		return nil, err
	}
	// Replay may have rewritten the superblock (publishing the refcount
	// table is a journaled block-0 update): re-read it.
	if err := dev.ReadBlocks(ctx, 0, img); err != nil {
		return nil, err
	}
	if err := fs.sb.decode(img); err != nil {
		return nil, err
	}
	sb = fs.sb
	// Load the bitmap.
	fs.bitmap = make([]byte, (sb.numBlocks+7)/8)
	for b := uint64(0); b < sb.bitmapBlocks; b++ {
		if err := dev.ReadBlocks(ctx, int64(sb.bitmapStart+b), img); err != nil {
			return nil, err
		}
		copy(fs.bitmap[b*uint64(bs):], img)
	}
	// Load the inode table.
	fs.inodes = make([]inode, sb.inodeCount+1)
	if err := fs.loadInodeTable(ctx); err != nil {
		return nil, err
	}
	// Load the refcount table when a snapshot has ever been taken.
	if sb.refcntStart != 0 {
		if err := fs.loadRefcntTable(ctx); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// Mode reports the journaling mode.
func (fs *FS) Mode() JournalMode { return fs.sb.mode }

// BlockSize reports the filesystem block size.
func (fs *FS) BlockSize() int { return fs.bs }

// DataStart reports the first data block (diagnostics).
func (fs *FS) DataStart() uint64 { return fs.sb.dataStart }

// devWrite is the bottom write path (bypasses the journal).
func (fs *FS) devWrite(ctx *sim.Proc, lba int64, img []byte) error {
	return fs.dev.WriteBlocks(ctx, lba, img)
}

// begin enters a public operation: liveness check, lock, op cost.
func (fs *FS) begin(ctx *sim.Proc) error {
	if fs.dead {
		return ErrDead
	}
	if ctx != nil {
		if fs.lock == nil {
			fs.lock = sim.NewSemaphore(ctx.Engine(), 1)
		}
		fs.lock.Acquire(ctx)
		if fs.opCost > 0 {
			ctx.Sleep(fs.opCost)
		}
	}
	fs.Ops++
	return nil
}

func (fs *FS) end(ctx *sim.Proc) {
	if ctx != nil && fs.lock != nil {
		fs.lock.Release()
	}
}

// pathParts splits and validates a path.
func pathParts(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, fmt.Errorf("extfs: invalid path component %q", p)
		}
		if len(p) > MaxNameLen {
			return nil, ErrNameTooLng
		}
	}
	return parts, nil
}
