package extfs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"nesc/internal/extent"
	"nesc/internal/sim"
)

// Directories are regular extent-mapped data streams of fixed 64-byte
// entries: {ino uint32, nameLen uint8, pad uint8, name[58]}; ino 0 marks a
// free slot.

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name string
	Ino  uint32
}

// Info is the Stat result.
type Info struct {
	Ino   uint32
	Mode  uint16
	UID   uint32
	Size  uint64
	Links uint16
	// Extents is the number of extents backing the file.
	Extents int
}

// IsDir reports whether the entry is a directory.
func (i Info) IsDir() bool { return i.Mode&ModeDir != 0 }

func encodeDirent(b []byte, ino uint32, name string) {
	clear(b[:DirentSize])
	binary.BigEndian.PutUint32(b[0:], ino)
	b[4] = uint8(len(name))
	copy(b[6:], name)
}

func decodeDirent(b []byte) (uint32, string) {
	ino := binary.BigEndian.Uint32(b[0:])
	n := int(b[4])
	if n > MaxNameLen {
		n = MaxNameLen
	}
	return ino, string(b[6 : 6+n])
}

// readDirData slurps a directory's content.
func (fs *FS) readDirData(ctx *sim.Proc, in *inode) ([]byte, error) {
	buf := make([]byte, in.size)
	if err := fs.readRange(ctx, in, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// lookupDirent finds name in directory dirIno, returning the target inode
// and the byte offset of the entry.
func (fs *FS) lookupDirent(ctx *sim.Proc, dirIno uint32, name string) (uint32, uint64, error) {
	in := &fs.inodes[dirIno]
	data, err := fs.readDirData(ctx, in)
	if err != nil {
		return 0, 0, err
	}
	for off := 0; off+DirentSize <= len(data); off += DirentSize {
		ino, n := decodeDirent(data[off:])
		if ino != 0 && n == name {
			return ino, uint64(off), nil
		}
	}
	return 0, 0, ErrNotExist
}

// addDirent inserts a (name, ino) entry into dirIno, reusing a free slot or
// appending.
func (fs *FS) addDirent(ctx *sim.Proc, dirIno uint32, name string, ino uint32) error {
	in := &fs.inodes[dirIno]
	data, err := fs.readDirData(ctx, in)
	if err != nil {
		return err
	}
	slot := uint64(len(data))
	for off := 0; off+DirentSize <= len(data); off += DirentSize {
		if e, _ := decodeDirent(data[off:]); e == 0 {
			slot = uint64(off)
			break
		}
	}
	var ent [DirentSize]byte
	encodeDirent(ent[:], ino, name)
	return fs.writeRange(ctx, in, slot, ent[:], true)
}

// clearDirent frees the entry at byte offset off in dirIno.
func (fs *FS) clearDirent(ctx *sim.Proc, dirIno uint32, off uint64) error {
	var ent [DirentSize]byte
	return fs.writeRange(ctx, &fs.inodes[dirIno], off, ent[:], true)
}

// dirEmpty reports whether a directory holds no live entries.
func (fs *FS) dirEmpty(ctx *sim.Proc, dirIno uint32) (bool, error) {
	data, err := fs.readDirData(ctx, &fs.inodes[dirIno])
	if err != nil {
		return false, err
	}
	for off := 0; off+DirentSize <= len(data); off += DirentSize {
		if ino, _ := decodeDirent(data[off:]); ino != 0 {
			return false, nil
		}
	}
	return true, nil
}

// resolve walks path from the root, enforcing exec (search) permission on
// every traversed directory.
func (fs *FS) resolve(ctx *sim.Proc, path string, uid uint32) (uint32, error) {
	parts, err := pathParts(path)
	if err != nil {
		return 0, err
	}
	cur := uint32(RootIno)
	for _, name := range parts {
		in := &fs.inodes[cur]
		if !in.isDir() {
			return 0, ErrNotDir
		}
		if !accessOK(in, uid, PermExec) {
			return 0, ErrPerm
		}
		next, _, err := fs.lookupDirent(ctx, cur, name)
		if err != nil {
			return 0, err
		}
		cur = next
	}
	return cur, nil
}

// resolveParent resolves everything but the final component, returning the
// parent directory inode and the final name.
func (fs *FS) resolveParent(ctx *sim.Proc, path string, uid uint32) (uint32, string, error) {
	parts, err := pathParts(path)
	if err != nil {
		return 0, "", err
	}
	if len(parts) == 0 {
		return 0, "", fmt.Errorf("extfs: empty path")
	}
	dir := uint32(RootIno)
	for _, name := range parts[:len(parts)-1] {
		in := &fs.inodes[dir]
		if !in.isDir() {
			return 0, "", ErrNotDir
		}
		if !accessOK(in, uid, PermExec) {
			return 0, "", ErrPerm
		}
		next, _, err := fs.lookupDirent(ctx, dir, name)
		if err != nil {
			return 0, "", err
		}
		dir = next
	}
	return dir, parts[len(parts)-1], nil
}

// createNode is the shared Create/Mkdir implementation.
func (fs *FS) createNode(ctx *sim.Proc, path string, uid uint32, mode uint16) (uint32, error) {
	parent, name, err := fs.resolveParent(ctx, path, uid)
	if err != nil {
		return 0, err
	}
	pin := &fs.inodes[parent]
	if !pin.isDir() {
		return 0, ErrNotDir
	}
	if !accessOK(pin, uid, PermWrite|PermExec) {
		return 0, ErrPerm
	}
	if _, _, err := fs.lookupDirent(ctx, parent, name); err == nil {
		return 0, ErrExist
	}
	ino, err := fs.allocInode()
	if err != nil {
		return 0, err
	}
	fs.inodes[ino] = inode{used: true, mode: mode, links: 1, uid: uid}
	if mode&ModeDir != 0 {
		fs.inodes[ino].links = 2
		fs.inodes[parent].links++
	}
	if err := fs.addDirent(ctx, parent, name, ino); err != nil {
		fs.inodes[ino] = inode{}
		return 0, err
	}
	if err := fs.writeInode(ctx, ino); err != nil {
		return 0, err
	}
	if err := fs.writeInode(ctx, parent); err != nil {
		return 0, err
	}
	return ino, nil
}

// Create makes a new regular file owned by uid with the given permission
// bits and returns a writable handle.
func (fs *FS) Create(ctx *sim.Proc, path string, uid uint32, perm uint16) (*File, error) {
	if err := fs.begin(ctx); err != nil {
		return nil, err
	}
	defer fs.end(ctx)
	fs.txBegin()
	ino, err := fs.createNode(ctx, path, uid, ModeFile|(perm&0o777))
	if err != nil {
		fs.tx = nil
		return nil, err
	}
	if err := fs.flushDirtyBitmap(ctx); err != nil {
		return nil, err
	}
	if err := fs.txCommit(ctx); err != nil {
		return nil, err
	}
	return &File{fs: fs, ino: ino, writable: true}, nil
}

// Mkdir makes a new directory.
func (fs *FS) Mkdir(ctx *sim.Proc, path string, uid uint32, perm uint16) error {
	if err := fs.begin(ctx); err != nil {
		return err
	}
	defer fs.end(ctx)
	fs.txBegin()
	if _, err := fs.createNode(ctx, path, uid, ModeDir|(perm&0o777)); err != nil {
		fs.tx = nil
		return err
	}
	if err := fs.flushDirtyBitmap(ctx); err != nil {
		return err
	}
	return fs.txCommit(ctx)
}

// Open opens an existing file. perm is the access the caller wants
// (PermRead and/or PermWrite); the handle is writable iff PermWrite was
// requested and granted.
func (fs *FS) Open(ctx *sim.Proc, path string, uid uint32, perm uint16) (*File, error) {
	if err := fs.begin(ctx); err != nil {
		return nil, err
	}
	defer fs.end(ctx)
	ino, err := fs.resolve(ctx, path, uid)
	if err != nil {
		return nil, err
	}
	in := &fs.inodes[ino]
	if in.isDir() {
		return nil, ErrIsDir
	}
	if !accessOK(in, uid, perm) {
		return nil, ErrPerm
	}
	return &File{fs: fs, ino: ino, writable: perm&PermWrite != 0}, nil
}

// Remove unlinks a file or an empty directory.
func (fs *FS) Remove(ctx *sim.Proc, path string, uid uint32) error {
	if err := fs.begin(ctx); err != nil {
		return err
	}
	defer fs.end(ctx)
	fs.txBegin()
	err := fs.removeLocked(ctx, path, uid)
	if err != nil {
		fs.tx = nil
		return err
	}
	if err := fs.flushDirtyBitmap(ctx); err != nil {
		return err
	}
	return fs.txCommit(ctx)
}

func (fs *FS) removeLocked(ctx *sim.Proc, path string, uid uint32) error {
	parent, name, err := fs.resolveParent(ctx, path, uid)
	if err != nil {
		return err
	}
	pin := &fs.inodes[parent]
	if !accessOK(pin, uid, PermWrite|PermExec) {
		return ErrPerm
	}
	ino, slot, err := fs.lookupDirent(ctx, parent, name)
	if err != nil {
		return err
	}
	in := &fs.inodes[ino]
	if in.isDir() {
		empty, err := fs.dirEmpty(ctx, ino)
		if err != nil {
			return err
		}
		if !empty {
			return ErrNotEmpty
		}
		fs.inodes[parent].links--
	}
	if err := fs.clearDirent(ctx, parent, slot); err != nil {
		return err
	}
	// Free data and metadata.
	if err := fs.truncateTo(ctx, in, 0); err != nil {
		return err
	}
	for _, b := range in.overflow {
		fs.freeRun(b, 1)
	}
	in.overflow = nil
	blk, _ := fs.inodeBlock(ino)
	fs.inodes[ino] = inode{}
	// Rewrite both inode blocks (target cleared, parent link count).
	img := make([]byte, fs.bs)
	perBlock := fs.bs / InodeSize
	first := uint32((blk-int64(fs.sb.inodeTableStart))*int64(perBlock)) + 1
	for i := 0; i < perBlock; i++ {
		n := first + uint32(i)
		if int(n) >= len(fs.inodes) {
			break
		}
		encodeInode(img[i*InodeSize:], &fs.inodes[n])
	}
	if err := fs.writeBlock(ctx, blk, img, true); err != nil {
		return err
	}
	return fs.writeInode(ctx, parent)
}

// Stat reports metadata for a path.
func (fs *FS) Stat(ctx *sim.Proc, path string, uid uint32) (Info, error) {
	if err := fs.begin(ctx); err != nil {
		return Info{}, err
	}
	defer fs.end(ctx)
	ino, err := fs.resolve(ctx, path, uid)
	if err != nil {
		return Info{}, err
	}
	in := &fs.inodes[ino]
	return Info{Ino: ino, Mode: in.mode, UID: in.uid, Size: in.size, Links: in.links, Extents: len(in.extents)}, nil
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(ctx *sim.Proc, path string, uid uint32) ([]DirEntry, error) {
	if err := fs.begin(ctx); err != nil {
		return nil, err
	}
	defer fs.end(ctx)
	ino, err := fs.resolve(ctx, path, uid)
	if err != nil {
		return nil, err
	}
	in := &fs.inodes[ino]
	if !in.isDir() {
		return nil, ErrNotDir
	}
	if !accessOK(in, uid, PermRead) {
		return nil, ErrPerm
	}
	data, err := fs.readDirData(ctx, in)
	if err != nil {
		return nil, err
	}
	var out []DirEntry
	for off := 0; off+DirentSize <= len(data); off += DirentSize {
		if e, name := decodeDirent(data[off:]); e != 0 {
			out = append(out, DirEntry{Name: name, Ino: e})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Access reports whether uid holds perm on path (the hypervisor's check
// before exporting a file as a VF).
func (fs *FS) Access(ctx *sim.Proc, path string, uid uint32, perm uint16) error {
	if err := fs.begin(ctx); err != nil {
		return err
	}
	defer fs.end(ctx)
	ino, err := fs.resolve(ctx, path, uid)
	if err != nil {
		return err
	}
	if !accessOK(&fs.inodes[ino], uid, perm) {
		return ErrPerm
	}
	return nil
}

// Runs exports the file's logical-to-physical extent map in filesystem-block
// units along with its size — the input to NeSC VF creation. The mapping is
// exactly what the inode's extent map says; holes are simply absent.
func (fs *FS) Runs(ctx *sim.Proc, path string) ([]extent.Run, uint64, error) {
	if err := fs.begin(ctx); err != nil {
		return nil, 0, err
	}
	defer fs.end(ctx)
	ino, err := fs.resolve(ctx, path, 0)
	if err != nil {
		return nil, 0, err
	}
	in := &fs.inodes[ino]
	if in.isDir() {
		return nil, 0, ErrIsDir
	}
	return append([]extent.Run(nil), in.extents...), in.size, nil
}

// Migrate relocates every physical block of path to freshly allocated
// blocks, copying the data and updating the extent map — the filesystem
// half of host-side block optimizations like deduplication or
// defragmentation. Callers exporting the file through NeSC must rebuild the
// device extent tree and flush the BTLB afterwards (paper §V-B).
func (fs *FS) Migrate(ctx *sim.Proc, path string) error {
	if err := fs.begin(ctx); err != nil {
		return err
	}
	defer fs.end(ctx)
	ino, err := fs.resolve(ctx, path, 0)
	if err != nil {
		return err
	}
	in := &fs.inodes[ino]
	if in.isDir() {
		return ErrIsDir
	}
	fs.txBegin()
	oldExts := in.extents
	var newExts []extent.Run
	rollback := func() {
		for _, e := range newExts {
			fs.freeRun(e.Physical, e.Count)
		}
	}
	buf := make([]byte, 64*fs.bs)
	for _, e := range oldExts {
		rem := e
		for rem.Count > 0 {
			start, got := fs.allocRun(fs.allocHint, rem.Count)
			if got == 0 {
				rollback()
				fs.tx = nil
				return ErrNoSpace
			}
			for off := uint64(0); off < got; {
				n := got - off
				if n > uint64(len(buf)/fs.bs) {
					n = uint64(len(buf) / fs.bs)
				}
				span := buf[:n*uint64(fs.bs)]
				fs.DataBlockReads += int64(n)
				if err := fs.dev.ReadBlocks(ctx, int64(rem.Physical+off), span); err != nil {
					rollback()
					fs.tx = nil
					return err
				}
				fs.DataBlockWrites += int64(n)
				if err := fs.devWrite(ctx, int64(start+off), span); err != nil {
					rollback()
					fs.tx = nil
					return err
				}
				off += n
			}
			newExts = append(newExts, extent.Run{Logical: rem.Logical, Physical: start, Count: got})
			rem.Logical += got
			rem.Physical += got
			rem.Count -= got
		}
	}
	for _, e := range oldExts {
		fs.freeRun(e.Physical, e.Count)
	}
	in.extents = nil
	for _, r := range newExts {
		insertMapping(in, r)
	}
	if err := fs.writeInode(ctx, ino); err != nil {
		return err
	}
	if err := fs.flushDirtyBitmap(ctx); err != nil {
		return err
	}
	return fs.txCommit(ctx)
}

// AllocateRange backs logical blocks [blk, blk+n) of path with physical
// storage (zero-filled), extending the file size if the range reaches past
// EOF. This is the hypervisor's lazy-allocation response to a NeSC write
// miss (paper Fig. 5b: "Allocate blocks, add extents").
func (fs *FS) AllocateRange(ctx *sim.Proc, path string, blk, n uint64) error {
	if err := fs.begin(ctx); err != nil {
		return err
	}
	defer fs.end(ctx)
	ino, err := fs.resolve(ctx, path, 0)
	if err != nil {
		return err
	}
	fs.txBegin()
	in := &fs.inodes[ino]
	if err := fs.ensureAllocated(ctx, in, blk, n, true); err != nil {
		fs.tx = nil
		return err
	}
	if end := (blk + n) * uint64(fs.bs); end > in.size {
		in.size = end
	}
	if err := fs.writeInode(ctx, ino); err != nil {
		return err
	}
	if err := fs.flushDirtyBitmap(ctx); err != nil {
		return err
	}
	return fs.txCommit(ctx)
}
