package extfs

// Block allocation: a bitmap over the whole volume with a greedy contiguous
// search, so sequential writes produce long extents — the property NeSC's
// per-VF extent trees (and their BTLB hit rates) depend on.

func (fs *FS) bitmapGet(b uint64) bool {
	return fs.bitmap[b/8]&(1<<(b%8)) != 0
}

func (fs *FS) bitmapSet(b uint64, v bool) {
	if v {
		fs.bitmap[b/8] |= 1 << (b % 8)
	} else {
		fs.bitmap[b/8] &^= 1 << (b % 8)
	}
	fs.dirtyBitmap(b)
}

// dirtyBitmap records that the bitmap disk block covering volume block b
// needs to be written out with the current transaction.
func (fs *FS) dirtyBitmap(b uint64) {
	if fs.dirtyBitmapBlks == nil {
		fs.dirtyBitmapBlks = make(map[uint64]struct{})
	}
	fs.dirtyBitmapBlks[b/8/uint64(fs.bs)] = struct{}{}
}

// allocRun reserves up to want contiguous free blocks, preferring the area
// at/after hint, and returns (start, length). Length 0 means the volume is
// full. Only data-region blocks are eligible.
func (fs *FS) allocRun(hint, want uint64) (uint64, uint64) {
	if want == 0 {
		return 0, 0
	}
	lo := fs.sb.dataStart
	hi := fs.sb.numBlocks
	if hint < lo || hint >= hi {
		hint = lo
	}
	scan := func(from, to uint64) (uint64, uint64) {
		b := from
		for b < to {
			if fs.bitmapGet(b) {
				b++
				continue
			}
			start := b
			for b < to && b-start < want && !fs.bitmapGet(b) {
				b++
			}
			return start, b - start
		}
		return 0, 0
	}
	start, n := scan(hint, hi)
	if n == 0 {
		start, n = scan(lo, hint)
	}
	if n == 0 {
		return 0, 0
	}
	for b := start; b < start+n; b++ {
		fs.bitmapSet(b, true)
	}
	fs.allocHint = start + n
	fs.allocSeq++
	return start, n
}

// freeRun releases one reference to a contiguous run of blocks. A block with
// extra references (CoW shared) just loses one count; a sole-owner block
// returns to the bitmap.
func (fs *FS) freeRun(start, n uint64) {
	for b := start; b < start+n; b++ {
		if !fs.bitmapGet(b) {
			panic("extfs: double free of block")
		}
		if fs.refGet(b) > 0 {
			fs.refAdd(b, -1)
			continue
		}
		fs.bitmapSet(b, false)
	}
	fs.allocSeq++
}

// FreeBlocks reports the number of unallocated blocks (df).
func (fs *FS) FreeBlocks() uint64 {
	var n uint64
	for b := fs.sb.dataStart; b < fs.sb.numBlocks; b++ {
		if !fs.bitmapGet(b) {
			n++
		}
	}
	return n
}
