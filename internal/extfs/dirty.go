package extfs

// DirtyLog is a coarse-grained dirty-region bitmap over a virtual disk's
// block space. The fabric layer uses one per replica to remember which
// regions of a mirrored virtual disk missed writes while the replica was
// unreachable (so the resilver knows what to copy), and one per migration
// to track blocks written after the bulk copy pass. Regions — not single
// blocks — keep the log small and make resilver I/O sequential, the same
// trade DRBD's activity log and md's write-intent bitmap make.
//
// The log is purely bookkeeping: timeless, no simulated cost. The I/O that
// consults it pays its own way.
type DirtyLog struct {
	regionBlocks uint64
	totalBlocks  uint64
	bits         []uint64
	dirty        int // population count of bits
	// Marks counts every Mark call; MarkedBlocks totals the block spans
	// marked (both monotonic, for telemetry).
	Marks        int64
	MarkedBlocks int64
}

// NewDirtyLog covers totalBlocks of disk in regions of regionBlocks blocks
// (minimum 1).
func NewDirtyLog(totalBlocks, regionBlocks uint64) *DirtyLog {
	if regionBlocks == 0 {
		regionBlocks = 1
	}
	n := (totalBlocks + regionBlocks - 1) / regionBlocks
	return &DirtyLog{
		regionBlocks: regionBlocks,
		totalBlocks:  totalBlocks,
		bits:         make([]uint64, (n+63)/64),
	}
}

// RegionBlocks reports the region granularity in blocks.
func (l *DirtyLog) RegionBlocks() uint64 { return l.regionBlocks }

// Regions reports the total number of regions covering the disk.
func (l *DirtyLog) Regions() int {
	return int((l.totalBlocks + l.regionBlocks - 1) / l.regionBlocks)
}

// DirtyRegions reports how many regions are currently marked.
func (l *DirtyLog) DirtyRegions() int { return l.dirty }

// RegionOf maps a block address to its region index.
func (l *DirtyLog) RegionOf(lba uint64) int { return int(lba / l.regionBlocks) }

// RegionSpan reports region r's block range [lba, lba+count), clipped to
// the disk.
func (l *DirtyLog) RegionSpan(r int) (lba, count uint64) {
	lba = uint64(r) * l.regionBlocks
	count = l.regionBlocks
	if lba+count > l.totalBlocks {
		count = l.totalBlocks - lba
	}
	return lba, count
}

// Mark flags every region overlapping [lba, lba+count) dirty.
func (l *DirtyLog) Mark(lba, count uint64) {
	if count == 0 {
		return
	}
	l.Marks++
	l.MarkedBlocks += int64(count)
	for r := l.RegionOf(lba); r <= l.RegionOf(lba+count-1); r++ {
		w, b := r/64, uint(r%64)
		if l.bits[w]&(1<<b) == 0 {
			l.bits[w] |= 1 << b
			l.dirty++
		}
	}
}

// Clear unmarks region r.
func (l *DirtyLog) Clear(r int) {
	w, b := r/64, uint(r%64)
	if l.bits[w]&(1<<b) != 0 {
		l.bits[w] &^= 1 << b
		l.dirty--
	}
}

// Next returns the first dirty region with index >= from, or -1.
func (l *DirtyLog) Next(from int) int {
	n := l.Regions()
	for r := from; r < n; r++ {
		if l.bits[r/64]&(1<<uint(r%64)) != 0 {
			return r
		}
	}
	return -1
}

// Intersects reports whether [lba, lba+count) touches any dirty region.
func (l *DirtyLog) Intersects(lba, count uint64) bool {
	if count == 0 || l.dirty == 0 {
		return false
	}
	for r := l.RegionOf(lba); r <= l.RegionOf(lba+count-1); r++ {
		if l.bits[r/64]&(1<<uint(r%64)) != 0 {
			return true
		}
	}
	return false
}
