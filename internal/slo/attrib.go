package slo

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"nesc/internal/metrics"
	"nesc/internal/sim"
)

// Causal request attribution: every request carries a fixed vector of
// per-segment durations accumulated as it moves through the pipeline
// (queue-wait, translate, DTU-wait, medium, retry, ...), and the attributor
// folds finished vectors into a per-{vf,op} latency budget table plus a
// bounded reservoir of whole-request profiles. The reservoir is what powers
// the p99 explainer: it diffs the mean segment profile of the tail requests
// against the median band's and names the segment whose growth dominates the
// tail — "vf 3's p99 is queue-wait", not just "vf 3's p99 moved".

// Segment indices of a request's attribution vector.
const (
	SegFetch      = iota // descriptor fetch + decode
	SegQueue             // vLBA queue residence
	SegTranslate         // BTLB lookup / tree walk / miss service
	SegDTUWait           // pLBA queue residence
	SegMedium            // DMA channel service (medium + PCIe), retries excluded
	SegRetry             // medium/integrity retry rounds
	SegAdmission         // admission-control fast-fail or driver busy-backoff
	SegFabricWait        // mirror-client overhead beyond the winning leg
	SegOther             // residual wall time (completion write, mux, overlap slack)
	NumSegments
)

var segmentNames = [NumSegments]string{
	"fetch", "queue_wait", "translate", "dtu_wait", "medium",
	"retry", "admission", "fabric_wait", "other",
}

// SegmentName renders a segment index ("" when out of range).
func SegmentName(i int) string {
	if i < 0 || i >= NumSegments {
		return ""
	}
	return segmentNames[i]
}

// Segments is one request's per-segment duration vector. A fixed array, so
// carrying one inside every request costs no allocation.
type Segments [NumSegments]sim.Time

// cellKey identifies one budget-table row.
type cellKey struct {
	vf int
	op string
}

// profile is one whole-request sample retained for the explainer.
type profile struct {
	reqID uint64
	total sim.Time
	segs  Segments
}

// cell is one {vf,op} row: running segment sums plus a profile reservoir.
type cell struct {
	key     cellKey
	count   int64
	errors  int64
	totalNs int64
	segNs   [NumSegments]int64

	prof    []profile // ring of the most recent profiles
	next    int
	wrapped bool
}

// Attributor folds finished request vectors into the budget table. A nil
// *Attributor is a valid disabled sink. Record is one map hit plus array
// stores under a mutex — no steady-state allocation (a row allocates once,
// on its first request).
type Attributor struct {
	mu        sync.Mutex
	reservoir int
	cells     map[cellKey]*cell
	reg       *metrics.Registry
}

// NewAttributor builds an attributor whose rows each retain the last
// reservoir request profiles (min 16) for tail analysis.
func NewAttributor(reservoir int) *Attributor {
	if reservoir < 16 {
		reservoir = 16
	}
	return &Attributor{reservoir: reservoir, cells: make(map[cellKey]*cell)}
}

// lookup returns the row for {vf,op}, creating it if fresh. Caller holds
// a.mu; a fresh row is returned with fresh=true so the caller can register
// its gauges after unlocking.
func (a *Attributor) lookup(vf int, op string) (c *cell, fresh bool) {
	k := cellKey{vf: vf, op: op}
	if c = a.cells[k]; c != nil {
		return c, false
	}
	c = &cell{key: k, prof: make([]profile, a.reservoir)}
	a.cells[k] = c
	return c, true
}

// Record folds one finished request into its row. Nil-safe.
func (a *Attributor) Record(vf int, op string, reqID uint64, total sim.Time, ok bool, segs Segments) {
	if a == nil {
		return
	}
	a.mu.Lock()
	c, fresh := a.lookup(vf, op)
	c.count++
	if !ok {
		c.errors++
	}
	c.totalNs += int64(total)
	for i := 0; i < NumSegments; i++ {
		c.segNs[i] += int64(segs[i])
	}
	c.prof[c.next] = profile{reqID: reqID, total: total, segs: segs}
	c.next++
	if c.next == len(c.prof) {
		c.next = 0
		c.wrapped = true
	}
	a.mu.Unlock()
	if fresh && a.reg != nil {
		a.registerCell(c)
	}
}

// AddSegment credits a duration to one segment of a row without a request
// profile — for time observed outside the device pipeline (a guest driver's
// busy-backoff, fabric steering overhead on reads served cache-side).
// Nil-safe.
func (a *Attributor) AddSegment(vf int, op string, seg int, d sim.Time) {
	if a == nil || seg < 0 || seg >= NumSegments || d <= 0 {
		return
	}
	a.mu.Lock()
	c, fresh := a.lookup(vf, op)
	c.segNs[seg] += int64(d)
	a.mu.Unlock()
	if fresh && a.reg != nil {
		a.registerCell(c)
	}
}

// Row is one externally visible budget-table row.
type Row struct {
	VF       int
	Op       string
	Requests int64
	Errors   int64
	TotalNs  int64
	SegNs    [NumSegments]int64
}

// Share reports segment seg's fraction of the row's summed segment time.
func (r Row) Share(seg int) float64 {
	var sum int64
	for _, v := range r.SegNs {
		sum += v
	}
	if sum == 0 || seg < 0 || seg >= NumSegments {
		return 0
	}
	return float64(r.SegNs[seg]) / float64(sum)
}

// Rows snapshots the budget table sorted by (vf, op).
func (a *Attributor) Rows() []Row {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]Row, 0, len(a.cells))
	for _, c := range a.cells {
		out = append(out, Row{VF: c.key.vf, Op: c.key.op, Requests: c.count,
			Errors: c.errors, TotalNs: c.totalNs, SegNs: c.segNs})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].VF != out[j].VF {
			return out[i].VF < out[j].VF
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// Explanation is the p99 explainer's verdict for one row: which segment's
// growth dominates the tail, with the evidence.
type Explanation struct {
	VF       int
	Op       string
	Requests int64 // profiles examined (reservoir-bounded)

	MedianNs int64 // mean total of the median band
	TailNs   int64 // mean total of the tail band

	Dominant        string  // segment whose tail-vs-median growth is largest
	DominantDeltaNs int64   // that segment's mean growth, tail minus median
	DominantShare   float64 // that segment's share of the tail's summed segments

	TailReqIDs []uint64 // example tail request ids (flight-recorder cross-links)
}

// explainProfiles runs the tail-vs-median diff over a profile snapshot.
func explainProfiles(key cellKey, profs []profile) Explanation {
	ex := Explanation{VF: key.vf, Op: key.op, Requests: int64(len(profs))}
	if len(profs) == 0 {
		return ex
	}
	sort.Slice(profs, func(i, j int) bool {
		if profs[i].total != profs[j].total {
			return profs[i].total < profs[j].total
		}
		return profs[i].reqID < profs[j].reqID
	})
	n := len(profs)
	// Tail band: the top 1%, but at least 3 profiles (or everything, for
	// tiny rows). Median band: the middle fifth, at least 1.
	tn := n / 100
	if tn < 3 {
		tn = 3
	}
	if tn > n {
		tn = n
	}
	tail := profs[n-tn:]
	mLo, mHi := n*2/5, n*3/5
	if mHi <= mLo {
		mHi = mLo + 1
	}
	med := profs[mLo:mHi]

	mean := func(band []profile) (total int64, segs [NumSegments]int64) {
		for _, p := range band {
			total += int64(p.total)
			for i := 0; i < NumSegments; i++ {
				segs[i] += int64(p.segs[i])
			}
		}
		total /= int64(len(band))
		for i := range segs {
			segs[i] /= int64(len(band))
		}
		return total, segs
	}
	medTotal, medSegs := mean(med)
	tailTotal, tailSegs := mean(tail)
	ex.MedianNs, ex.TailNs = medTotal, tailTotal

	dom, domDelta := 0, int64(-1)
	var tailSum int64
	for i := 0; i < NumSegments; i++ {
		tailSum += tailSegs[i]
		if delta := tailSegs[i] - medSegs[i]; delta > domDelta {
			dom, domDelta = i, delta
		}
	}
	ex.Dominant = segmentNames[dom]
	ex.DominantDeltaNs = domDelta
	if tailSum > 0 {
		ex.DominantShare = float64(tailSegs[dom]) / float64(tailSum)
	}
	for i := len(tail) - 1; i >= 0 && len(ex.TailReqIDs) < 4; i-- {
		if tail[i].reqID != 0 {
			ex.TailReqIDs = append(ex.TailReqIDs, tail[i].reqID)
		}
	}
	return ex
}

// snapshotProfiles copies a cell's live profiles oldest-first. Caller holds
// a.mu.
func (c *cell) snapshotProfiles() []profile {
	if !c.wrapped {
		return append([]profile(nil), c.prof[:c.next]...)
	}
	out := make([]profile, 0, len(c.prof))
	out = append(out, c.prof[c.next:]...)
	out = append(out, c.prof[:c.next]...)
	return out
}

// Explain runs the p99 explainer for one row; ok is false when the row does
// not exist or holds no profiles.
func (a *Attributor) Explain(vf int, op string) (Explanation, bool) {
	if a == nil {
		return Explanation{}, false
	}
	a.mu.Lock()
	c := a.cells[cellKey{vf: vf, op: op}]
	var profs []profile
	if c != nil {
		profs = c.snapshotProfiles()
	}
	a.mu.Unlock()
	if len(profs) == 0 {
		return Explanation{VF: vf, Op: op}, false
	}
	return explainProfiles(cellKey{vf: vf, op: op}, profs), true
}

// Explanations runs the explainer over every row, sorted by (vf, op).
func (a *Attributor) Explanations() []Explanation {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	type snap struct {
		key   cellKey
		profs []profile
	}
	snaps := make([]snap, 0, len(a.cells))
	for k, c := range a.cells {
		if p := c.snapshotProfiles(); len(p) > 0 {
			snaps = append(snaps, snap{key: k, profs: p})
		}
	}
	a.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool {
		if snaps[i].key.vf != snaps[j].key.vf {
			return snaps[i].key.vf < snaps[j].key.vf
		}
		return snaps[i].key.op < snaps[j].key.op
	})
	out := make([]Explanation, 0, len(snaps))
	for _, s := range snaps {
		out = append(out, explainProfiles(s.key, s.profs))
	}
	return out
}

// JSON report shapes.
type jsonSegment struct {
	Ns    int64   `json:"ns"`
	Share float64 `json:"share"`
}

type jsonExplain struct {
	MedianNs        int64    `json:"median_ns"`
	TailNs          int64    `json:"tail_ns"`
	Dominant        string   `json:"dominant"`
	DominantDeltaNs int64    `json:"dominant_delta_ns"`
	DominantShare   float64  `json:"dominant_share"`
	TailReqIDs      []uint64 `json:"tail_req_ids,omitempty"`
}

type jsonRow struct {
	VF       int                    `json:"vf"`
	Op       string                 `json:"op"`
	Requests int64                  `json:"requests"`
	Errors   int64                  `json:"errors"`
	MeanNs   int64                  `json:"mean_ns"`
	Segments map[string]jsonSegment `json:"segments"`
	Explain  *jsonExplain           `json:"explain,omitempty"`
}

// WriteReport renders the budget table plus per-row explainer verdicts as an
// indented JSON document. Nil-safe (writes an empty array).
func (a *Attributor) WriteReport(w io.Writer) error {
	rows := a.Rows()
	exps := a.Explanations()
	exByKey := make(map[cellKey]Explanation, len(exps))
	for _, ex := range exps {
		exByKey[cellKey{vf: ex.VF, op: ex.Op}] = ex
	}
	doc := make([]jsonRow, 0, len(rows))
	for _, r := range rows {
		jr := jsonRow{VF: r.VF, Op: r.Op, Requests: r.Requests, Errors: r.Errors,
			Segments: make(map[string]jsonSegment, NumSegments)}
		if r.Requests > 0 {
			jr.MeanNs = r.TotalNs / r.Requests
		}
		for i := 0; i < NumSegments; i++ {
			if r.SegNs[i] == 0 {
				continue
			}
			jr.Segments[segmentNames[i]] = jsonSegment{Ns: r.SegNs[i], Share: r.Share(i)}
		}
		if ex, ok := exByKey[cellKey{vf: r.VF, op: r.Op}]; ok && ex.Requests > 0 {
			jr.Explain = &jsonExplain{
				MedianNs: ex.MedianNs, TailNs: ex.TailNs,
				Dominant: ex.Dominant, DominantDeltaNs: ex.DominantDeltaNs,
				DominantShare: ex.DominantShare, TailReqIDs: ex.TailReqIDs,
			}
		}
		doc = append(doc, jr)
	}
	enc, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// AttachMetrics publishes the budget table as export-time gauges: per-row
// request/error counters plus one nesc_attrib_<segment>_ns_total family per
// segment, labelled {vf, op}. Rows created later register as they appear.
// Nil-safe.
func (a *Attributor) AttachMetrics(reg *metrics.Registry) {
	if a == nil || reg == nil {
		return
	}
	a.mu.Lock()
	a.reg = reg
	live := make([]*cell, 0, len(a.cells))
	for _, c := range a.cells {
		live = append(live, c)
	}
	a.mu.Unlock()
	sort.Slice(live, func(i, j int) bool {
		if live[i].key.vf != live[j].key.vf {
			return live[i].key.vf < live[j].key.vf
		}
		return live[i].key.op < live[j].key.op
	})
	for _, c := range live {
		a.registerCell(c)
	}
}

// registerCell publishes one row's gauges. Called without a.mu held; the
// closures reacquire it per export.
func (a *Attributor) registerCell(c *cell) {
	l := metrics.Labels{VF: c.key.vf, Q: -1, Op: c.key.op}
	sample := func(get func(*cell) float64) func() float64 {
		return func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return get(c)
		}
	}
	a.reg.GaugeFunc("nesc_attrib_requests_total", "requests folded into the attribution row", l,
		sample(func(c *cell) float64 { return float64(c.count) }))
	a.reg.GaugeFunc("nesc_attrib_errors_total", "non-OK requests in the attribution row", l,
		sample(func(c *cell) float64 { return float64(c.errors) }))
	for i := 0; i < NumSegments; i++ {
		i := i
		a.reg.GaugeFunc("nesc_attrib_"+segmentNames[i]+"_ns_total",
			"summed "+segmentNames[i]+" time attributed to this row", l,
			sample(func(c *cell) float64 { return float64(c.segNs[i]) }))
	}
}
