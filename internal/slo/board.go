// Package slo is the production-telemetry layer over the device's spans and
// detectors: causal request attribution (where did each request's time go,
// and what makes the tail different — attrib.go), per-tenant service-level
// objectives with error-budget accounting and multi-window burn-rate alerts
// (engine.go), and this file's anomaly scoreboard — a bounded ring of
// structured events (SLO burns, quarantines, deadline expirations, admission
// rejects, detector trips, FLRs) cross-linked by request ID to the flight
// recorder. Everything is off by default, nil-safe at every receiver, and
// only ever READS the virtual clock, so arming the layer cannot perturb the
// event schedule.
package slo

import (
	"fmt"
	"io"
	"sync"

	"nesc/internal/metrics"
	"nesc/internal/sim"
)

// EventKind classifies one scoreboard entry.
type EventKind uint8

// Scoreboard event kinds. The order is stable (kinds are exported as metric
// label values and appear in dumps); append only.
const (
	EventSLOBurn         EventKind = iota // burn-rate alert fired (Value = short-window burn)
	EventBudgetExhausted                  // a tenant's error budget crossed 100% consumed
	EventDetectorTrip                     // a fail-slow detector fired (Value = slowdown ratio)
	EventQuarantine                       // a mirror leg was quarantined (Value = duration ns)
	EventRejoin                           // a quarantined leg rejoined service
	EventDeadline                         // a request/chunk expired its deadline (Note = stage)
	EventAdmitReject                      // admission control fast-failed a request
	EventFLR                              // function-level reset performed
	EventRequestError                     // a request retired with a terminal error status
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"slo-burn", "budget-exhausted", "detector-trip", "quarantine",
	"rejoin", "deadline", "admit-reject", "flr", "request-error",
}

// String renders the kind; unknown values render as EventKind(%d).
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one structured anomaly record. ReqID cross-links the event to
// span and flight-recorder captures of the same request (0 = not
// request-scoped); Dev/VF are -1 when the event is not device- or
// tenant-scoped.
type Event struct {
	Seq   int64     // 1-based emission sequence number
	At    sim.Time  // virtual emission time
	Kind  EventKind //
	Dev   int       // device index, -1 when fabric/tenant-level
	VF    int       // function index (tenant), -1 when none
	ReqID uint64    // causal request id, 0 when none
	Value float64   // kind-specific magnitude (burn rate, ratio, ns)
	Note  string    // short static detail ("mux", "walker", "dtu", ...)
}

// Scoreboard retains the last capacity events in a ring and counts every
// emission by kind. A nil *Scoreboard is a valid disabled board: Emit and
// every query no-op, so instrumented code needs no conditionals. Emission is
// one ring store under a mutex — no allocation.
type Scoreboard struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	wrapped bool
	seq     int64
	counts  [numEventKinds]int64
}

// NewScoreboard builds a board holding the last capacity events (min 1).
func NewScoreboard(capacity int) *Scoreboard {
	if capacity < 1 {
		capacity = 1
	}
	return &Scoreboard{ring: make([]Event, capacity)}
}

// Emit records one event, stamping its sequence number. Nil-safe.
func (b *Scoreboard) Emit(ev Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	if int(ev.Kind) < len(b.counts) {
		b.counts[ev.Kind]++
	}
	b.ring[b.next] = ev
	b.next++
	if b.next == len(b.ring) {
		b.next = 0
		b.wrapped = true
	}
	b.mu.Unlock()
}

// Total reports every event ever emitted (including overwritten ones).
func (b *Scoreboard) Total() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Count reports how many events of kind k were ever emitted.
func (b *Scoreboard) Count(k EventKind) int64 {
	if b == nil || int(k) >= int(numEventKinds) {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts[k]
}

// Events returns the held events oldest-first (a copy).
func (b *Scoreboard) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.wrapped {
		return append([]Event(nil), b.ring[:b.next]...)
	}
	out := make([]Event, 0, len(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Dump writes the held events human-readably, oldest first.
func (b *Scoreboard) Dump(w io.Writer) error {
	evs := b.Events()
	if len(evs) == 0 {
		_, err := fmt.Fprintln(w, "scoreboard: no events")
		return err
	}
	for _, ev := range evs {
		line := fmt.Sprintf("#%-4d %10dus  %-16s", ev.Seq, int64(ev.At)/1000, ev.Kind)
		if ev.Dev >= 0 {
			line += fmt.Sprintf(" dev=%d", ev.Dev)
		}
		if ev.VF >= 0 {
			line += fmt.Sprintf(" vf=%d", ev.VF)
		}
		if ev.ReqID != 0 {
			line += fmt.Sprintf(" req=%d", ev.ReqID)
		}
		if ev.Note != "" {
			line += " " + ev.Note
		}
		if ev.Value != 0 {
			line += fmt.Sprintf(" value=%.3g", ev.Value)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// AttachMetrics publishes per-kind emission counters as export-time gauges
// (family nesc_scoreboard_events_total, labelled by kind name). Nil-safe on
// both receivers.
func (b *Scoreboard) AttachMetrics(reg *metrics.Registry) {
	if b == nil || reg == nil {
		return
	}
	for k := EventKind(0); k < numEventKinds; k++ {
		k := k
		reg.GaugeFunc("nesc_scoreboard_events_total", "structured anomaly events emitted, by kind",
			metrics.Labels{VF: -1, Q: -1, Op: k.String()},
			func() float64 { return float64(b.Count(k)) })
	}
}
