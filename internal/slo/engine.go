package slo

import (
	"sort"
	"sync"

	"nesc/internal/metrics"
	"nesc/internal/sim"
	"nesc/internal/stats"
)

// Per-tenant SLO engine: each VF gets a declared Objective (a latency target
// plus a good-request goal), and every completed request is classified good
// (status OK and within the latency target) or bad. The engine keeps the
// cumulative error budget — consumed = bad / ((1-goal) · total) — and two
// stats.RateWindows per tenant for the SRE-style multi-window burn-rate
// alert: the alert fires only when BOTH the short and the long window burn
// faster than BurnThreshold× the sustainable rate, which makes it fast on
// real incidents and quiet on blips. Alerts land on the scoreboard as
// structured events and (when a registry is attached) as gauges.

// Objective declares one tenant's service-level objective.
type Objective struct {
	// Latency is the per-request latency target: an OK completion slower
	// than this is still a bad event.
	Latency sim.Time
	// Goal is the required good fraction in (0,1), e.g. 0.99; the error
	// budget is the complementary 1-Goal fraction.
	Goal float64
	// ShortWindow/LongWindow bound the two burn-rate windows of the
	// multi-window alert (virtual time).
	ShortWindow sim.Time
	LongWindow  sim.Time
	// BurnThreshold is the multiple of the sustainable bad rate at which
	// the alert fires (both windows must exceed it).
	BurnThreshold float64
	// MinSamples is the short-window event floor below which no alert
	// fires (keeps a single early failure from alerting on an empty window).
	MinSamples int64
}

// DefaultObjective is a starting point sized for the simulation's
// millisecond-scale experiment runs: 99% of requests under 500µs, alert at
// 4× burn sustained across 200µs and 1ms windows.
func DefaultObjective() Objective {
	return Objective{
		Latency:       500 * sim.Microsecond,
		Goal:          0.99,
		ShortWindow:   200 * sim.Microsecond,
		LongWindow:    1000 * sim.Microsecond,
		BurnThreshold: 4,
		MinSamples:    8,
	}
}

// normalize clamps nonsense objective fields to the defaults.
func (o Objective) normalize() Objective {
	d := DefaultObjective()
	if o.Latency <= 0 {
		o.Latency = d.Latency
	}
	if o.Goal <= 0 || o.Goal >= 1 {
		o.Goal = d.Goal
	}
	if o.ShortWindow <= 0 {
		o.ShortWindow = d.ShortWindow
	}
	if o.LongWindow < o.ShortWindow {
		o.LongWindow = 5 * o.ShortWindow
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = d.BurnThreshold
	}
	if o.MinSamples <= 0 {
		o.MinSamples = d.MinSamples
	}
	return o
}

// burnWindowBuckets is the ring granularity of each burn window.
const burnWindowBuckets = 8

// tracker is one tenant's budget accounting.
type tracker struct {
	vf  int
	obj Objective

	good, bad int64 // cumulative since attach

	shortW, longW *stats.RateWindow

	alerting     bool
	alerts       int64
	firstAlertAt sim.Time // 0 = never fired
	exhaustedAt  sim.Time // 0 = budget never fully consumed
}

func newTracker(vf int, obj Objective) *tracker {
	return &tracker{
		vf:     vf,
		obj:    obj,
		shortW: stats.NewRateWindow(int64(obj.ShortWindow), burnWindowBuckets),
		longW:  stats.NewRateWindow(int64(obj.LongWindow), burnWindowBuckets),
	}
}

// burn converts a window's bad fraction into a burn rate: 1.0 means the
// budget drains exactly at the sustainable rate, N means N× too fast.
func (t *tracker) burn(w *stats.RateWindow) float64 {
	return w.BadFraction() / (1 - t.obj.Goal)
}

// budgetConsumed reports the cumulative error-budget fraction spent.
func (t *tracker) budgetConsumed() float64 {
	total := t.good + t.bad
	if total == 0 {
		return 0
	}
	return float64(t.bad) / ((1 - t.obj.Goal) * float64(total))
}

// observe classifies one completion and runs the alert logic. Reports
// whether the burn alert fired and whether the budget just crossed 100%.
func (t *tracker) observe(at, latency sim.Time, ok bool) (fired, exhausted bool, burnS float64) {
	good := ok && latency <= t.obj.Latency
	if good {
		t.good++
	} else {
		t.bad++
	}
	t.shortW.Observe(int64(at), good)
	t.longW.Observe(int64(at), good)

	burnS = t.burn(t.shortW)
	burnL := t.burn(t.longW)
	sg, sb := t.shortW.Totals()
	switch {
	case !t.alerting && sg+sb >= t.obj.MinSamples &&
		burnS >= t.obj.BurnThreshold && burnL >= t.obj.BurnThreshold:
		t.alerting = true
		t.alerts++
		if t.firstAlertAt == 0 {
			t.firstAlertAt = at
		}
		fired = true
	case t.alerting && burnS < t.obj.BurnThreshold/2:
		// Hysteresis: clear only once the short window cools well below
		// the firing threshold, so a flapping burn emits one alert.
		t.alerting = false
	}
	if t.exhaustedAt == 0 && t.budgetConsumed() >= 1 {
		t.exhaustedAt = at
		exhausted = true
	}
	return fired, exhausted, burnS
}

// Status is one tenant's externally visible SLO state.
type Status struct {
	VF             int
	Objective      Objective
	Good, Bad      int64
	BudgetConsumed float64
	BurnShort      float64
	BurnLong       float64
	Alerting       bool
	Alerts         int64
	FirstAlertAt   sim.Time // 0 = never
	ExhaustedAt    sim.Time // 0 = never
}

// Engine tracks objectives for every observed tenant. Trackers materialize
// lazily on a VF's first completion; the default objective applies unless
// SetObjective installed a per-VF override first. A nil *Engine is a valid
// disabled engine. The steady-state Observe path is one map hit plus integer
// ring arithmetic — no allocation.
type Engine struct {
	mu        sync.Mutex
	def       Objective
	overrides map[int]Objective
	trackers  map[int]*tracker
	board     *Scoreboard
	reg       *metrics.Registry
	alerts    int64
}

// NewEngine builds an engine applying def to every tenant, emitting alert
// events to board (nil = no scoreboard).
func NewEngine(def Objective, board *Scoreboard) *Engine {
	return &Engine{
		def:       def.normalize(),
		overrides: make(map[int]Objective),
		trackers:  make(map[int]*tracker),
		board:     board,
	}
}

// SetObjective installs a per-VF objective override. Must run before the
// VF's first completion to take effect (a live tracker keeps its objective).
func (e *Engine) SetObjective(vf int, obj Objective) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.overrides[vf] = obj.normalize()
	e.mu.Unlock()
}

// Observe classifies one completed request for tenant vf. Nil-safe.
func (e *Engine) Observe(vf int, at, latency sim.Time, ok bool, reqID uint64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	t, fresh := e.trackers[vf], false
	if t == nil {
		obj, over := e.overrides[vf]
		if !over {
			obj = e.def
		}
		t = newTracker(vf, obj)
		e.trackers[vf] = t
		fresh = true
	}
	fired, exhausted, burnS := t.observe(at, latency, ok)
	if fired {
		e.alerts++
	}
	e.mu.Unlock()

	// Emissions and registration happen outside e.mu: the scoreboard and the
	// registry have their own locks, and gauge closures take e.mu at export.
	if fresh && e.reg != nil {
		e.registerTracker(t)
	}
	if fired {
		e.board.Emit(Event{At: at, Kind: EventSLOBurn, Dev: -1, VF: vf, ReqID: reqID, Value: burnS})
	}
	if exhausted {
		e.board.Emit(Event{At: at, Kind: EventBudgetExhausted, Dev: -1, VF: vf, ReqID: reqID, Value: 1})
	}
}

// TotalAlerts reports burn alerts fired across all tenants.
func (e *Engine) TotalAlerts() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.alerts
}

// Status snapshots every tracked tenant, sorted by VF.
func (e *Engine) Status() []Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	out := make([]Status, 0, len(e.trackers))
	for _, t := range e.trackers {
		out = append(out, Status{
			VF:             t.vf,
			Objective:      t.obj,
			Good:           t.good,
			Bad:            t.bad,
			BudgetConsumed: t.budgetConsumed(),
			BurnShort:      t.burn(t.shortW),
			BurnLong:       t.burn(t.longW),
			Alerting:       t.alerting,
			Alerts:         t.alerts,
			FirstAlertAt:   t.firstAlertAt,
			ExhaustedAt:    t.exhaustedAt,
		})
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].VF < out[j].VF })
	return out
}

// AttachMetrics publishes the engine's gauges: a global alert counter plus
// per-tenant burn/budget series as trackers materialize. Nil-safe.
func (e *Engine) AttachMetrics(reg *metrics.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.mu.Lock()
	e.reg = reg
	live := make([]*tracker, 0, len(e.trackers))
	for _, t := range e.trackers {
		live = append(live, t)
	}
	e.mu.Unlock()
	reg.GaugeFunc("nesc_slo_alerts_total", "burn-rate alerts fired across all tenants",
		metrics.NoLabels, func() float64 { return float64(e.TotalAlerts()) })
	sort.Slice(live, func(i, j int) bool { return live[i].vf < live[j].vf })
	for _, t := range live {
		e.registerTracker(t)
	}
}

// registerTracker publishes one tenant's SLO gauges. Called without e.mu
// held; the closures reacquire it per export.
func (e *Engine) registerTracker(t *tracker) {
	l := metrics.VFLabel(t.vf)
	sample := func(get func(*tracker) float64) func() float64 {
		return func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return get(t)
		}
	}
	e.reg.GaugeFunc("nesc_slo_burn_rate_short", "short-window error-budget burn rate", l,
		sample(func(t *tracker) float64 { return t.burn(t.shortW) }))
	e.reg.GaugeFunc("nesc_slo_burn_rate_long", "long-window error-budget burn rate", l,
		sample(func(t *tracker) float64 { return t.burn(t.longW) }))
	e.reg.GaugeFunc("nesc_slo_budget_consumed", "cumulative error-budget fraction spent", l,
		sample(func(t *tracker) float64 { return t.budgetConsumed() }))
	e.reg.GaugeFunc("nesc_slo_alerts_total", "burn-rate alerts fired for this tenant", l,
		sample(func(t *tracker) float64 { return float64(t.alerts) }))
}
