package slo

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nesc/internal/sim"
)

// --- Scoreboard -----------------------------------------------------------

func TestScoreboardRingWrapAndCounts(t *testing.T) {
	b := NewScoreboard(4)
	for i := 0; i < 10; i++ {
		kind := EventDeadline
		if i%2 == 0 {
			kind = EventAdmitReject
		}
		b.Emit(Event{At: sim.Time(i * 100), Kind: kind, Dev: -1, VF: i})
	}
	if got := b.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10 (overwritten events still count)", got)
	}
	if got := b.Count(EventAdmitReject); got != 5 {
		t.Fatalf("Count(admit-reject) = %d, want 5", got)
	}
	if got := b.Count(EventDeadline); got != 5 {
		t.Fatalf("Count(deadline) = %d, want 5", got)
	}
	if got := b.Count(EventFLR); got != 0 {
		t.Fatalf("Count(flr) = %d, want 0", got)
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events()) = %d, want ring capacity 4", len(evs))
	}
	for i, ev := range evs {
		want := int64(7 + i) // oldest-first: sequence numbers 7..10 survive
		if ev.Seq != want {
			t.Fatalf("Events()[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestScoreboardCapacityClampsToOne(t *testing.T) {
	b := NewScoreboard(0)
	b.Emit(Event{Kind: EventFLR, VF: 1})
	b.Emit(Event{Kind: EventFLR, VF: 2})
	evs := b.Events()
	if len(evs) != 1 || evs[0].VF != 2 || evs[0].Seq != 2 {
		t.Fatalf("Events() = %+v, want just the newest event (seq 2, vf 2)", evs)
	}
}

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EventSLOBurn:         "slo-burn",
		EventBudgetExhausted: "budget-exhausted",
		EventDetectorTrip:    "detector-trip",
		EventQuarantine:      "quarantine",
		EventRejoin:          "rejoin",
		EventDeadline:        "deadline",
		EventAdmitReject:     "admit-reject",
		EventFLR:             "flr",
		EventRequestError:    "request-error",
	}
	if len(want) != int(numEventKinds) {
		t.Fatalf("test covers %d kinds, package defines %d", len(want), numEventKinds)
	}
	for k, name := range want {
		if got := k.String(); got != name {
			t.Fatalf("EventKind(%d).String() = %q, want %q", k, got, name)
		}
	}
	if got := EventKind(99).String(); got != "EventKind(99)" {
		t.Fatalf("unknown kind String() = %q, want EventKind(99)", got)
	}
	// Counting an unknown kind must not panic or corrupt the table.
	b := NewScoreboard(2)
	b.Emit(Event{Kind: EventKind(200)})
	if b.Total() != 1 || b.Count(EventKind(200)) != 0 {
		t.Fatalf("unknown-kind emission: Total=%d Count=%d, want 1 and 0", b.Total(), b.Count(EventKind(200)))
	}
}

func TestScoreboardDump(t *testing.T) {
	b := NewScoreboard(8)
	var empty bytes.Buffer
	if err := b.Dump(&empty); err != nil {
		t.Fatalf("Dump(empty) error: %v", err)
	}
	if !strings.Contains(empty.String(), "no events") {
		t.Fatalf("empty dump = %q, want a 'no events' marker", empty.String())
	}
	b.Emit(Event{At: 1500 * sim.Microsecond, Kind: EventQuarantine, Dev: 0, VF: 3, ReqID: 42, Value: 2.5, Note: "legB"})
	var buf bytes.Buffer
	if err := b.Dump(&buf); err != nil {
		t.Fatalf("Dump error: %v", err)
	}
	out := buf.String()
	for _, frag := range []string{"quarantine", "dev=0", "vf=3", "req=42", "legB", "value=2.5", "1500us"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("dump %q missing %q", out, frag)
		}
	}
}

func TestScoreboardNilSafe(t *testing.T) {
	var b *Scoreboard
	b.Emit(Event{Kind: EventFLR})
	if b.Total() != 0 || b.Count(EventFLR) != 0 || b.Events() != nil {
		t.Fatal("nil scoreboard must report zero state")
	}
	b.AttachMetrics(nil)
}

// --- Engine ---------------------------------------------------------------

// testObjective is small enough to reason about by hand: 90% of requests
// under 100ns, windows 800ns/1600ns, alert at 2x burn with 4 samples.
func testObjective() Objective {
	return Objective{
		Latency:       100,
		Goal:          0.9,
		ShortWindow:   800,
		LongWindow:    1600,
		BurnThreshold: 2,
		MinSamples:    4,
	}
}

func TestEngineAlertFiresAndLatchesOnce(t *testing.T) {
	board := NewScoreboard(64)
	e := NewEngine(testObjective(), board)
	at := sim.Time(0)
	step := func(n int, lat sim.Time) {
		for i := 0; i < n; i++ {
			at += 100
			e.Observe(1, at, lat, true, uint64(at))
		}
	}
	step(8, 50) // healthy warm-up fills MinSamples with goods
	if e.TotalAlerts() != 0 {
		t.Fatalf("alerts after healthy traffic = %d, want 0", e.TotalAlerts())
	}
	step(12, 500) // sustained over-latency burn
	if e.TotalAlerts() != 1 {
		t.Fatalf("alerts after one sustained burn = %d, want exactly 1 (hysteresis)", e.TotalAlerts())
	}
	st := e.Status()
	if len(st) != 1 || st[0].VF != 1 {
		t.Fatalf("Status() = %+v, want one tracker for vf 1", st)
	}
	if !st[0].Alerting || st[0].FirstAlertAt == 0 || st[0].Alerts != 1 {
		t.Fatalf("Status = %+v, want alerting with FirstAlertAt set", st[0])
	}
	if got := board.Count(EventSLOBurn); got != 1 {
		t.Fatalf("scoreboard slo-burn events = %d, want 1", got)
	}

	first := st[0].FirstAlertAt
	step(40, 50) // cool: the short window drains below threshold/2
	step(12, 500)
	if e.TotalAlerts() != 2 {
		t.Fatalf("alerts after cool-down and second burn = %d, want 2", e.TotalAlerts())
	}
	if st = e.Status(); st[0].FirstAlertAt != first {
		t.Fatalf("FirstAlertAt moved from %d to %d on re-alert", first, st[0].FirstAlertAt)
	}
}

func TestEngineMinSamplesFloor(t *testing.T) {
	e := NewEngine(testObjective(), nil)
	// Three straight failures burn at 10x but sit under the 4-sample floor.
	for i := sim.Time(1); i <= 3; i++ {
		e.Observe(2, i*100, 500, false, 0)
	}
	if e.TotalAlerts() != 0 {
		t.Fatalf("alerts below MinSamples = %d, want 0", e.TotalAlerts())
	}
	e.Observe(2, 400, 500, false, 0)
	if e.TotalAlerts() != 1 {
		t.Fatalf("alerts at MinSamples = %d, want 1", e.TotalAlerts())
	}
}

func TestEngineBudgetExhaustionLatches(t *testing.T) {
	board := NewScoreboard(16)
	e := NewEngine(testObjective(), board)
	e.Observe(3, 100, 50, true, 0)
	// One bad of two total consumes 1/(0.1*2) = 5x the budget: exhausted.
	e.Observe(3, 200, 50, false, 0)
	st := e.Status()[0]
	if st.ExhaustedAt != 200 {
		t.Fatalf("ExhaustedAt = %d, want 200", st.ExhaustedAt)
	}
	if st.BudgetConsumed < 1 {
		t.Fatalf("BudgetConsumed = %v, want >= 1", st.BudgetConsumed)
	}
	e.Observe(3, 300, 50, false, 0)
	if got := e.Status()[0].ExhaustedAt; got != 200 {
		t.Fatalf("ExhaustedAt moved to %d after more failures, want latched 200", got)
	}
	if got := board.Count(EventBudgetExhausted); got != 1 {
		t.Fatalf("budget-exhausted events = %d, want 1 (latched)", got)
	}
}

func TestEngineSetObjectiveOverride(t *testing.T) {
	e := NewEngine(testObjective(), nil)
	e.SetObjective(7, Objective{Latency: 1000, Goal: 0.5, ShortWindow: 800, LongWindow: 1600, BurnThreshold: 2, MinSamples: 4})
	e.Observe(7, 100, 500, true, 0) // slow by the default, fine by the override
	e.Observe(1, 100, 500, true, 0) // same latency is bad under the default
	st := e.Status()
	if len(st) != 2 {
		t.Fatalf("Status() tracks %d tenants, want 2", len(st))
	}
	if st[0].VF != 1 || st[1].VF != 7 {
		t.Fatalf("Status() order = [%d %d], want sorted [1 7]", st[0].VF, st[1].VF)
	}
	if st[0].Good != 0 || st[0].Bad != 1 {
		t.Fatalf("default tenant good/bad = %d/%d, want 0/1", st[0].Good, st[0].Bad)
	}
	if st[1].Good != 1 || st[1].Bad != 0 {
		t.Fatalf("override tenant good/bad = %d/%d, want 1/0", st[1].Good, st[1].Bad)
	}
	// A live tracker keeps its objective: late overrides are ignored.
	e.SetObjective(7, Objective{Latency: 1})
	if got := e.Status()[1].Objective.Latency; got != 1000 {
		t.Fatalf("live tracker Latency = %d after late override, want 1000", got)
	}
}

func TestObjectiveNormalize(t *testing.T) {
	e := NewEngine(Objective{}, nil) // all-zero objective clamps to defaults
	e.Observe(0, 100, 50, true, 0)
	got := e.Status()[0].Objective
	if got != DefaultObjective() {
		t.Fatalf("normalized objective = %+v, want defaults %+v", got, DefaultObjective())
	}
	// A long window shorter than the short window stretches to 5x short.
	n := Objective{Latency: 10, Goal: 0.9, ShortWindow: 1000, LongWindow: 100,
		BurnThreshold: 2, MinSamples: 1}.normalize()
	if n.LongWindow != 5000 {
		t.Fatalf("LongWindow = %d, want 5000", n.LongWindow)
	}
}

func TestEngineNilSafe(t *testing.T) {
	var e *Engine
	e.Observe(1, 100, 50, true, 0)
	e.SetObjective(1, Objective{})
	if e.TotalAlerts() != 0 || e.Status() != nil {
		t.Fatal("nil engine must report zero state")
	}
	e.AttachMetrics(nil)
}

// --- Attributor -----------------------------------------------------------

func TestAttributorRowsAndShares(t *testing.T) {
	a := NewAttributor(0) // clamps to the 16-profile minimum
	var segs Segments
	segs[SegMedium] = 300
	segs[SegQueue] = 100
	a.Record(2, "read", 1, 400, true, segs)
	a.Record(2, "read", 2, 400, false, segs)
	a.Record(1, "write", 3, 400, true, segs)
	a.Record(2, "flush", 4, 400, true, segs)
	rows := a.Rows()
	if len(rows) != 3 {
		t.Fatalf("Rows() = %d rows, want 3", len(rows))
	}
	wantOrder := []struct {
		vf int
		op string
	}{{1, "write"}, {2, "flush"}, {2, "read"}}
	for i, w := range wantOrder {
		if rows[i].VF != w.vf || rows[i].Op != w.op {
			t.Fatalf("Rows()[%d] = {%d %s}, want {%d %s}", i, rows[i].VF, rows[i].Op, w.vf, w.op)
		}
	}
	r := rows[2]
	if r.Requests != 2 || r.Errors != 1 || r.TotalNs != 800 {
		t.Fatalf("read row = %+v, want 2 requests, 1 error, 800ns", r)
	}
	if got := r.Share(SegMedium); got != 0.75 {
		t.Fatalf("Share(medium) = %v, want 0.75", got)
	}
	if got := r.Share(-1); got != 0 {
		t.Fatalf("Share(-1) = %v, want 0", got)
	}
}

func TestAttributorAddSegmentGuards(t *testing.T) {
	a := NewAttributor(16)
	a.AddSegment(1, "read", SegAdmission, 500)
	a.AddSegment(1, "read", SegAdmission, 0)  // no-op: non-positive duration
	a.AddSegment(1, "read", -1, 100)          // no-op: segment out of range
	a.AddSegment(1, "read", NumSegments, 100) // no-op: segment out of range
	rows := a.Rows()
	if len(rows) != 1 || rows[0].SegNs[SegAdmission] != 500 {
		t.Fatalf("rows after AddSegment = %+v, want one row with admission=500", rows)
	}
	if rows[0].Requests != 0 {
		t.Fatalf("AddSegment must not count a request, got %d", rows[0].Requests)
	}
}

func TestExplainerNamesTheDominantSegment(t *testing.T) {
	a := NewAttributor(256)
	// 90 healthy requests: all medium. 10 tail requests: the same medium
	// plus a large queue-wait — the explainer must blame queue_wait.
	for i := 0; i < 90; i++ {
		var segs Segments
		segs[SegMedium] = 100_000
		a.Record(5, "read", uint64(i+1), 100_000, true, segs)
	}
	for i := 0; i < 10; i++ {
		var segs Segments
		segs[SegMedium] = 100_000
		segs[SegQueue] = 400_000
		a.Record(5, "read", uint64(1000+i), 500_000, true, segs)
	}
	ex, ok := a.Explain(5, "read")
	if !ok {
		t.Fatal("Explain found no profiles")
	}
	if ex.Dominant != SegmentName(SegQueue) {
		t.Fatalf("Dominant = %q, want queue_wait", ex.Dominant)
	}
	if ex.DominantDeltaNs != 400_000 {
		t.Fatalf("DominantDeltaNs = %d, want 400000", ex.DominantDeltaNs)
	}
	if ex.TailNs != 500_000 || ex.MedianNs != 100_000 {
		t.Fatalf("tail/median = %d/%d, want 500000/100000", ex.TailNs, ex.MedianNs)
	}
	if ex.DominantShare != 0.8 {
		t.Fatalf("DominantShare = %v, want 0.8", ex.DominantShare)
	}
	if len(ex.TailReqIDs) != 3 {
		t.Fatalf("TailReqIDs = %v, want 3 cross-link ids (the whole tail band)", ex.TailReqIDs)
	}
	for _, id := range ex.TailReqIDs {
		if id < 1000 {
			t.Fatalf("TailReqIDs %v include a non-tail request", ex.TailReqIDs)
		}
	}
	if _, ok := a.Explain(5, "write"); ok {
		t.Fatal("Explain on a missing row must report !ok")
	}
}

func TestAttributorWriteReportIsValidJSON(t *testing.T) {
	a := NewAttributor(16)
	var segs Segments
	segs[SegTranslate] = 250
	a.Record(1, `na"me`+"\n", 7, 250, true, segs) // hostile op string must escape
	var buf bytes.Buffer
	if err := a.WriteReport(&buf); err != nil {
		t.Fatalf("WriteReport error: %v", err)
	}
	var doc []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc) != 1 || doc[0]["op"] != `na"me`+"\n" {
		t.Fatalf("report rows = %+v, want the hostile op round-tripped", doc)
	}
}

func TestAttributorNilSafe(t *testing.T) {
	var a *Attributor
	a.Record(1, "read", 0, 100, true, Segments{})
	a.AddSegment(1, "read", SegQueue, 100)
	if a.Rows() != nil || a.Explanations() != nil {
		t.Fatal("nil attributor must report empty state")
	}
	if _, ok := a.Explain(1, "read"); ok {
		t.Fatal("nil attributor Explain must report !ok")
	}
	var buf bytes.Buffer
	if err := a.WriteReport(&buf); err != nil {
		t.Fatalf("nil WriteReport error: %v", err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil report = %q, want []", buf.String())
	}
	a.AttachMetrics(nil)
}

func TestSegmentNameRange(t *testing.T) {
	if SegmentName(SegFetch) != "fetch" || SegmentName(SegOther) != "other" {
		t.Fatal("SegmentName mismatch on the endpoints")
	}
	if SegmentName(-1) != "" || SegmentName(NumSegments) != "" {
		t.Fatal("out-of-range SegmentName must be empty")
	}
}

// --- hot-path allocation guards ------------------------------------------

func TestHotPathsDoNotAllocate(t *testing.T) {
	board := NewScoreboard(64)
	ev := Event{At: 100, Kind: EventDeadline, Dev: 0, VF: 1, ReqID: 9, Note: "mux"}
	if avg := testing.AllocsPerRun(1000, func() { board.Emit(ev) }); avg != 0 {
		t.Fatalf("Scoreboard.Emit allocates %v per call, want 0", avg)
	}

	e := NewEngine(testObjective(), board)
	at := sim.Time(0)
	e.Observe(1, at, 50, true, 1) // first call materializes the tracker
	if avg := testing.AllocsPerRun(1000, func() {
		at += 100
		e.Observe(1, at, 50, true, 1)
	}); avg != 0 {
		t.Fatalf("Engine.Observe allocates %v per call, want 0", avg)
	}

	a := NewAttributor(64)
	var segs Segments
	segs[SegMedium] = 100
	a.Record(1, "read", 1, 100, true, segs) // first call materializes the row
	if avg := testing.AllocsPerRun(1000, func() {
		a.Record(1, "read", 2, 100, true, segs)
	}); avg != 0 {
		t.Fatalf("Attributor.Record allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		a.AddSegment(1, "read", SegQueue, 10)
	}); avg != 0 {
		t.Fatalf("Attributor.AddSegment allocates %v per call, want 0", avg)
	}
}

func BenchmarkScoreboardEmit(b *testing.B) {
	board := NewScoreboard(256)
	ev := Event{At: 100, Kind: EventDeadline, VF: 1, ReqID: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		board.Emit(ev)
	}
}

func BenchmarkEngineObserve(b *testing.B) {
	e := NewEngine(testObjective(), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Observe(1, sim.Time(i*100), 50, true, uint64(i))
	}
}

func BenchmarkAttributorRecord(b *testing.B) {
	a := NewAttributor(256)
	var segs Segments
	segs[SegMedium] = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Record(1, "read", uint64(i), 100, true, segs)
	}
}
