package cas

import (
	"fmt"

	"nesc/internal/fault"
	"nesc/internal/sim"
)

// Remote-tier traffic: every byte that crosses to or from the simulated
// object store pays the tier's latency/bandwidth cost model and passes the
// fault.RemoteFetch / fault.RemoteStore injection sites, so the chaos and
// gray-failure machinery (delays, transient errors) applies to the
// content-addressed tier exactly as it does to the local medium.

// xferTime is the payload cost of moving n bytes across the tier.
func (s *Store) xferTime(n int64) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.Time(float64(n) / s.P.RemoteBandwidth)
}

// sleep advances virtual time when a proc is present; timeless callers
// (setup paths mirroring PFDisk's nil-ctx Store bypass) pay nothing.
func sleep(p *sim.Proc, d sim.Time) {
	if p != nil && d > 0 {
		p.Sleep(d)
	}
}

// remotePut models one batched PUT: a single round trip carrying newChunks
// payload chunks (seal) or pure metadata (fork, release). Transient
// remote-store faults retry the whole round trip — the tier's PUTs are
// idempotent, content-addressed writes.
func (s *Store) remotePut(p *sim.Proc, newChunks int, newBytes int64) {
	cost := s.P.RemoteLatency + s.xferTime(newBytes) + sim.Time(newChunks)*s.P.PutOverhead
	for attempt := 0; ; attempt++ {
		d := s.Inj.Decide(fault.RemoteStore)
		s.stats.RemotePuts++
		sleep(p, cost+d.Delay)
		if !d.Fault {
			return
		}
		s.stats.RemoteRetries++
		if attempt >= s.P.FetchRetryMax {
			// PUTs never fail permanently in this model: the store keeps
			// retrying on the caller's virtual time, like the DTU's bounded
			// ladder backed by an idempotent operation. Bound the accounting
			// loop anyway so a 100%-fault plan terminates.
			return
		}
	}
}

// Fetch GETs one chunk from the remote tier: cost model, transient-fault
// retry ladder, and content verification. A payload whose hash does not
// match its address is never served — it is retried (a clean replica may
// answer) and, when the corruption is persistent, surfaced as ErrIntegrity.
func (s *Store) Fetch(p *sim.Proc, h Hash) ([]byte, error) {
	if s == nil {
		return nil, ErrDisabled
	}
	c, ok := s.chunks[h]
	if !ok {
		return nil, fmt.Errorf("cas: fetch of unknown chunk %x", h[:4])
	}
	cost := s.P.RemoteLatency + s.xferTime(int64(len(c.data)))
	var lastErr error
	for attempt := 0; attempt <= s.P.FetchRetryMax; attempt++ {
		if attempt > 0 {
			s.stats.RemoteRetries++
		}
		d := s.Inj.Decide(fault.RemoteFetch)
		s.stats.RemoteFetches++
		sleep(p, cost+d.Delay)
		s.stats.RemoteFetchTime += cost + d.Delay
		if d.Fault {
			lastErr = fmt.Errorf("cas: remote fetch fault on chunk %x", h[:4])
			continue
		}
		if HashOf(c.data) != h {
			s.stats.HashMismatches++
			lastErr = ErrIntegrity
			continue
		}
		return c.data, nil
	}
	s.stats.FetchFails++
	return nil, lastErr
}
