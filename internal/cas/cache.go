package cas

// Per-device LRU chunk cache: the local tier between a device's miss path
// and the remote object store. Recently materialized chunks are served from
// here without a remote round trip — the golden-image case, where every
// host forking the same image touches the same chunks. Entries can be
// pinned (an in-flight materialization DMA must not have its source
// evicted); eviction walks the LRU tail past pinned entries. A nil *Cache
// is a valid disabled cache: Get always misses, Put drops.

// centry is one resident chunk on the cache's doubly linked LRU list
// (front = most recent).
type centry struct {
	hash       Hash
	data       []byte
	pins       int
	prev, next *centry
}

// CacheStats is the cache's counter snapshot.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Resident                int64
}

// Cache is one device's local chunk cache. Single-threaded, like everything
// behind the engine hand-off.
type Cache struct {
	capacity    int
	entries     map[Hash]*centry
	front, back *centry

	hits, misses, evictions int64
}

// NewCache builds a cache holding up to capacity chunks (min 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{capacity: capacity, entries: make(map[Hash]*centry)}
}

// Stats snapshots the counters (zero value on nil).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Resident: int64(len(c.entries))}
}

// unlink removes e from the LRU list.
func (c *Cache) unlink(e *centry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.back = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (c *Cache) pushFront(e *centry) {
	e.next = c.front
	if c.front != nil {
		c.front.prev = e
	}
	c.front = e
	if c.back == nil {
		c.back = e
	}
}

// Get returns the cached chunk and promotes it to most recently used.
func (c *Cache) Get(h Hash) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	e, ok := c.entries[h]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.unlink(e)
	c.pushFront(e)
	return e.data, true
}

// Put inserts a chunk at the front, evicting from the LRU tail — skipping
// pinned entries — until the cache fits. If every entry is pinned the cache
// temporarily overflows rather than evicting an in-use chunk.
func (c *Cache) Put(h Hash, data []byte) {
	if c == nil {
		return
	}
	if e, ok := c.entries[h]; ok {
		c.unlink(e)
		c.pushFront(e)
		return
	}
	e := &centry{hash: h, data: append([]byte(nil), data...)}
	c.entries[h] = e
	c.pushFront(e)
	for len(c.entries) > c.capacity {
		victim := c.back
		for victim != nil && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == nil || victim == e {
			return // everything pinned (or only the new entry is evictable)
		}
		c.unlink(victim)
		delete(c.entries, victim.hash)
		c.evictions++
	}
}

// Pin protects a resident chunk from eviction until Unpin. Pinning a chunk
// that is not resident is a no-op (it cannot be evicted either way).
func (c *Cache) Pin(h Hash) {
	if c == nil {
		return
	}
	if e, ok := c.entries[h]; ok {
		e.pins++
	}
}

// Unpin releases one Pin.
func (c *Cache) Unpin(h Hash) {
	if c == nil {
		return
	}
	if e, ok := c.entries[h]; ok && e.pins > 0 {
		e.pins--
	}
}
