// Package cas is the content-addressed block tier: a refcounted chunk store
// (hash → block) shared by every device in the fleet, backed by a simulated
// remote object tier with its own latency/bandwidth cost model and fault
// domain, and fronted by per-device LRU caches (cache.go).
//
// The store is the dedup and golden-image layer under the NeSC fleet:
// sealing an image content-addresses its blocks into the store (identical
// blocks across images collapse into one refcounted chunk), and forking a
// sealed image onto another device is a metadata-only manifest copy whose
// chunks materialize lazily through the device's miss path on first touch.
//
// Durability follows the extfs refcount discipline: every mutating operation
// (seal, fork, release) runs as one journaled transaction — begin record,
// one record per chunk put / refcount delta / manifest write, commit record.
// The journal is the store's durable medium; Replay applies only complete
// transactions, so a crash sweep over every journal prefix sees each
// operation all-or-nothing, never torn (crash_test.go mirrors
// internal/extfs/crash_test.go over this log).
//
// A nil *Store is a valid disabled tier: every method no-ops or errors
// without touching the engine, so simulations that never enable cas pay
// nothing and replay bit-identically to builds that predate it.
package cas

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"nesc/internal/fault"
	"nesc/internal/sim"
)

// Hash is a chunk's content address.
type Hash [sha256.Size]byte

// HashOf content-addresses one block.
func HashOf(data []byte) Hash { return sha256.Sum256(data) }

// maxRefs guards the refcount against overflow; far beyond any realistic
// fan-out, but an unguarded counter is how silent corruption starts.
const maxRefs = 1<<31 - 1

// Errors.
var (
	// ErrIntegrity reports a chunk whose stored bytes no longer match its
	// content address — hash-collision-shaped corruption the fetch ladder
	// refuses to serve.
	ErrIntegrity = errors.New("cas: chunk content does not match its hash")
	// ErrNotSealed reports a manifest lookup for a name never sealed.
	ErrNotSealed = errors.New("cas: no manifest with that name")
	// ErrExists reports sealing or forking onto a name already bound.
	ErrExists = errors.New("cas: manifest name already exists")
	// ErrDisabled reports an operation on a nil (disabled) store.
	ErrDisabled = errors.New("cas: tier disabled")
)

// Params is the remote tier's cost model.
type Params struct {
	// BlockSize is the chunk size in bytes (one device block).
	BlockSize int
	// RemoteLatency is the base round-trip of one remote-tier operation.
	RemoteLatency sim.Time
	// RemoteBandwidth is the tier's payload bandwidth in bytes/ns.
	RemoteBandwidth float64
	// PutOverhead is the per-chunk pipeline cost inside a batched seal PUT.
	PutOverhead sim.Time
	// FetchRetryMax bounds the fetch retry ladder (transient remote faults
	// and integrity re-reads).
	FetchRetryMax int
}

// DefaultParams returns the calibrated remote tier: a disaggregated object
// store an order of magnitude slower than the local medium.
func DefaultParams(blockSize int) Params {
	return Params{
		BlockSize:       blockSize,
		RemoteLatency:   40 * sim.Microsecond,
		RemoteBandwidth: 2.0, // 2 GB/s
		PutOverhead:     200 * sim.Nanosecond,
		FetchRetryMax:   3,
	}
}

// Manifest is one sealed image: the ordered chunk-hash list that reproduces
// its content, plus a generation for staleness checks.
type Manifest struct {
	Name   string
	Gen    uint64
	Hashes []Hash
}

// Blocks reports the manifest's length in blocks.
func (m *Manifest) Blocks() int64 { return int64(len(m.Hashes)) }

// chunk is one refcounted content-addressed block.
type chunk struct {
	data []byte
	refs int64
}

// recKind discriminates journal records.
type recKind uint8

const (
	recBegin recKind = iota
	recPutChunk
	recAddRef
	recDecRef
	recPutManifest
	recDelManifest
	recCommit
)

// rec is one journal record. The journal is the store's durable medium:
// state is exactly what Replay derives from it.
type rec struct {
	kind   recKind
	hash   Hash
	n      int64
	name   string
	gen    uint64
	hashes []Hash
	data   []byte
}

// Stats is the store's counter snapshot.
type Stats struct {
	Seals, Forks, Releases int64
	// DedupHits counts sealed blocks that matched an existing chunk.
	DedupHits int64
	// ChunksLive / BlocksLogical drive the dedup ratio: logical blocks
	// across all manifests vs unique chunks actually stored.
	ChunksLive    int64
	BlocksLogical int64
	// Remote-tier traffic.
	RemoteFetches   int64
	RemoteFetchTime sim.Time
	RemotePuts      int64
	RemoteRetries   int64
	FetchFails      int64
	// HashMismatches counts fetches whose payload failed content
	// verification (corruption shaped like a hash collision).
	HashMismatches int64
}

// Store is the fleet-shared content-addressed tier. Not safe for concurrent
// use outside the simulation engine's single-threaded hand-off.
type Store struct {
	P   Params
	Inj *fault.Injector

	log       []rec
	chunks    map[Hash]*chunk
	manifests map[string]*Manifest

	stats Stats
}

// NewStore builds an empty store over the given remote-tier model.
func NewStore(p Params, inj *fault.Injector) *Store {
	if p.BlockSize <= 0 {
		p.BlockSize = 1024
	}
	if p.RemoteLatency <= 0 {
		p.RemoteLatency = DefaultParams(p.BlockSize).RemoteLatency
	}
	if p.RemoteBandwidth <= 0 {
		p.RemoteBandwidth = DefaultParams(p.BlockSize).RemoteBandwidth
	}
	if p.PutOverhead <= 0 {
		p.PutOverhead = DefaultParams(p.BlockSize).PutOverhead
	}
	if p.FetchRetryMax <= 0 {
		p.FetchRetryMax = DefaultParams(p.BlockSize).FetchRetryMax
	}
	return &Store{
		P:         p,
		Inj:       inj,
		chunks:    make(map[Hash]*chunk),
		manifests: make(map[string]*Manifest),
	}
}

// Enabled reports whether the tier exists.
func (s *Store) Enabled() bool { return s != nil }

// Stats snapshots the counters (zero value on nil).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	st := s.stats
	st.ChunksLive = int64(len(s.chunks))
	var logical int64
	for _, m := range s.manifests {
		logical += m.Blocks()
	}
	st.BlocksLogical = logical
	return st
}

// DedupRatio reports logical blocks per stored chunk (1.0 with no sharing,
// 0 when empty).
func (s *Store) DedupRatio() float64 {
	st := s.Stats()
	if st.ChunksLive == 0 {
		return 0
	}
	return float64(st.BlocksLogical) / float64(st.ChunksLive)
}

// Manifest returns the named manifest, or nil.
func (s *Store) Manifest(name string) *Manifest {
	if s == nil {
		return nil
	}
	return s.manifests[name]
}

// Log returns a copy of the journal for crash sweeps.
func (s *Store) Log() []rec {
	if s == nil {
		return nil
	}
	return append([]rec(nil), s.log...)
}

// apply folds one record into the live maps. Shared by runtime commit and
// Replay so the durable journal and the live state can never disagree.
func apply(chunks map[Hash]*chunk, manifests map[string]*Manifest, r rec) {
	switch r.kind {
	case recPutChunk:
		if _, ok := chunks[r.hash]; !ok {
			chunks[r.hash] = &chunk{data: append([]byte(nil), r.data...)}
		}
	case recAddRef:
		chunks[r.hash].refs += r.n
	case recDecRef:
		c := chunks[r.hash]
		c.refs -= r.n
		if c.refs <= 0 {
			delete(chunks, r.hash)
		}
	case recPutManifest:
		manifests[r.name] = &Manifest{Name: r.name, Gen: r.gen, Hashes: append([]Hash(nil), r.hashes...)}
	case recDelManifest:
		delete(manifests, r.name)
	}
}

// commit journals one transaction (begin, records, commit) and applies it.
func (s *Store) commit(recs []rec) {
	s.log = append(s.log, rec{kind: recBegin})
	for _, r := range recs {
		s.log = append(s.log, r)
		apply(s.chunks, s.manifests, r)
	}
	s.log = append(s.log, rec{kind: recCommit})
}

// Replay rebuilds store state from a journal prefix, applying only complete
// (committed) transactions — the remount path of the crash sweep.
func Replay(log []rec) *Store {
	s := NewStore(Params{}, nil)
	var tx []rec
	inTx := false
	for _, r := range log {
		switch r.kind {
		case recBegin:
			tx, inTx = tx[:0], true
		case recCommit:
			for _, tr := range tx {
				apply(s.chunks, s.manifests, tr)
			}
			tx, inTx = tx[:0], false
		default:
			if inTx {
				tx = append(tx, r)
			}
		}
	}
	return s
}

// Check cross-verifies refcounts against the manifests, the way extfs's
// fsck cross-checks its refcount table: every manifest hash must resolve to
// a live chunk, every chunk's refcount must equal its manifest references,
// and every stored chunk must still match its content address.
func (s *Store) Check() error {
	if s == nil {
		return nil
	}
	want := make(map[Hash]int64, len(s.chunks))
	names := make([]string, 0, len(s.manifests))
	for n := range s.manifests {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for i, h := range s.manifests[n].Hashes {
			if _, ok := s.chunks[h]; !ok {
				return fmt.Errorf("cas: manifest %q block %d references a missing chunk", n, i)
			}
			want[h]++
		}
	}
	for h, c := range s.chunks {
		if c.refs != want[h] {
			return fmt.Errorf("cas: chunk %x refcount %d, %d manifest references", h[:4], c.refs, want[h])
		}
		if HashOf(c.data) != h {
			return fmt.Errorf("cas: chunk %x content does not match its address", h[:4])
		}
	}
	for h, n := range want {
		if _, ok := s.chunks[h]; !ok && n > 0 {
			return fmt.Errorf("cas: %d dangling references to missing chunk %x", n, h[:4])
		}
	}
	return nil
}

// Seal content-addresses an image into the store under name: each block is
// hashed, new chunks are PUT to the remote tier (batched cost model),
// existing chunks take a refcount bump (the dedup hit), and the ordered
// hash list becomes the image's manifest — all as one journaled transaction.
func (s *Store) Seal(p *sim.Proc, name string, blocks [][]byte) (*Manifest, error) {
	if s == nil {
		return nil, ErrDisabled
	}
	if _, ok := s.manifests[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	hashes := make([]Hash, len(blocks))
	refs := make(map[Hash]int64, len(blocks))
	var recs []rec
	var newChunks int
	var newBytes int64
	for i, b := range blocks {
		h := HashOf(b)
		hashes[i] = h
		_, live := s.chunks[h]
		if !live && refs[h] == 0 {
			recs = append(recs, rec{kind: recPutChunk, hash: h, data: b})
			newChunks++
			newBytes += int64(len(b))
		} else {
			s.stats.DedupHits++
		}
		refs[h]++
	}
	// Refcount deltas in first-appearance order (deterministic, not map
	// order), each guarded against overflow before anything commits.
	seen := make(map[Hash]bool, len(refs))
	for _, h := range hashes {
		if seen[h] {
			continue
		}
		seen[h] = true
		base := int64(0)
		if c, ok := s.chunks[h]; ok {
			base = c.refs
		}
		if base+refs[h] > maxRefs {
			return nil, fmt.Errorf("cas: refcount overflow on chunk %x sealing %s", h[:4], name)
		}
		recs = append(recs, rec{kind: recAddRef, hash: h, n: refs[h]})
	}
	recs = append(recs, rec{kind: recPutManifest, name: name, gen: 1, hashes: hashes})
	s.remotePut(p, newChunks, newBytes)
	s.commit(recs)
	s.stats.Seals++
	return s.manifests[name], nil
}

// Fork clones manifest src under dst — a metadata-only copy: one refcount
// bump per referenced chunk and a manifest write, no data movement. The
// clone's chunks materialize later through Fetch on first access.
func (s *Store) Fork(p *sim.Proc, src, dst string) (*Manifest, error) {
	if s == nil {
		return nil, ErrDisabled
	}
	m, ok := s.manifests[src]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotSealed, src)
	}
	if _, ok := s.manifests[dst]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, dst)
	}
	var recs []rec
	seen := make(map[Hash]int64, len(m.Hashes))
	for _, h := range m.Hashes {
		seen[h]++
	}
	for _, h := range m.Hashes {
		n, pending := seen[h]
		if !pending {
			continue
		}
		delete(seen, h)
		if s.chunks[h].refs+n > maxRefs {
			return nil, fmt.Errorf("cas: refcount overflow on chunk %x forking %s", h[:4], dst)
		}
		recs = append(recs, rec{kind: recAddRef, hash: h, n: n})
	}
	recs = append(recs, rec{kind: recPutManifest, name: dst, gen: m.Gen + 1, hashes: m.Hashes})
	// Metadata-only PUT: one round trip, no payload.
	s.remotePut(p, 0, 0)
	s.commit(recs)
	s.stats.Forks++
	return s.manifests[dst], nil
}

// Release drops manifest name, decrementing every chunk it referenced;
// chunks reaching zero references are freed. Underflow — releasing more
// references than exist — is a refcount bug and fails before commit.
func (s *Store) Release(p *sim.Proc, name string) error {
	if s == nil {
		return ErrDisabled
	}
	m, ok := s.manifests[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotSealed, name)
	}
	var recs []rec
	seen := make(map[Hash]int64, len(m.Hashes))
	for _, h := range m.Hashes {
		seen[h]++
	}
	for _, h := range m.Hashes {
		n, pending := seen[h]
		if !pending {
			continue
		}
		delete(seen, h)
		c, live := s.chunks[h]
		if !live || c.refs < n {
			return fmt.Errorf("cas: refcount underflow on chunk %x releasing %s", h[:4], name)
		}
		recs = append(recs, rec{kind: recDecRef, hash: h, n: n})
	}
	recs = append(recs, rec{kind: recDelManifest, name: name})
	s.remotePut(p, 0, 0)
	s.commit(recs)
	s.stats.Releases++
	return nil
}

// CorruptChunk flips a byte of a stored chunk's payload without touching its
// address — the hash-collision-shaped corruption the fetch ladder must
// catch. Test hook; returns false when the chunk does not exist.
func (s *Store) CorruptChunk(h Hash) bool {
	if s == nil {
		return false
	}
	c, ok := s.chunks[h]
	if !ok {
		return false
	}
	c.data[0] ^= 0x80
	return true
}
