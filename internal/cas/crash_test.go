package cas

import (
	"testing"
)

// Journal crash sweep, mirroring internal/extfs/crash_test.go: the store's
// journal is its durable medium, so a power cut is a journal prefix. For
// every prefix of the records an operation appends, rebuild the store as if
// power died right there (Replay applies only complete transactions) and
// assert the refcount invariants hold — a committed seal/fork/release is
// fully there, an uncommitted one has fully vanished.

// sweepOp seals a fixture, snapshots the journal, runs op, and sweeps every
// crash point of the records op appended.
func sweepOp(t *testing.T, setup func(s *Store), op func(s *Store) error,
	check func(t *testing.T, point int, s *Store)) {
	t.Helper()
	s := NewStore(Params{BlockSize: 1024}, nil)
	setup(s)
	preLen := len(s.log)
	if err := op(s); err != nil {
		t.Fatalf("recorded op: %v", err)
	}
	log := s.Log()
	if len(log) == preLen {
		t.Fatal("recorded operation appended no journal records")
	}
	for k := preLen; k <= len(log); k++ {
		re := Replay(log[:k])
		if err := re.Check(); err != nil {
			t.Fatalf("crash point %d/%d: check: %v", k-preLen, len(log)-preLen, err)
		}
		check(t, k-preLen, re)
	}
}

func TestJournalCrashSweepSeal(t *testing.T) {
	sweepOp(t,
		func(s *Store) { mustSeal(t, s, "base", 1, 2) },
		func(s *Store) error {
			_, err := s.Seal(nil, "img", blocksFrom(2, 3, 3, 4))
			return err
		},
		func(t *testing.T, point int, s *Store) {
			// base must be intact at every point.
			if m := s.Manifest("base"); m == nil || m.Blocks() != 2 {
				t.Fatalf("crash point %d: base manifest damaged", point)
			}
			switch m := s.Manifest("img"); {
			case m == nil:
				// Seal not committed: none of its chunks or refs may remain.
				if st := s.Stats(); st.ChunksLive != 2 || st.BlocksLogical != 2 {
					t.Fatalf("crash point %d: uncommitted seal leaked state: %+v", point, st)
				}
			default:
				if m.Blocks() != 4 {
					t.Fatalf("crash point %d: committed seal truncated: %d blocks", point, m.Blocks())
				}
				// Chunks 1,2,3,4 live; shared chunk 2 carries both references
				// (Check already cross-verified the counts).
				if st := s.Stats(); st.ChunksLive != 4 || st.BlocksLogical != 6 {
					t.Fatalf("crash point %d: committed seal state wrong: %+v", point, st)
				}
			}
		})
}

func TestJournalCrashSweepFork(t *testing.T) {
	sweepOp(t,
		func(s *Store) { mustSeal(t, s, "golden", 1, 2, 2, 3) },
		func(s *Store) error {
			_, err := s.Fork(nil, "golden", "clone")
			return err
		},
		func(t *testing.T, point int, s *Store) {
			if m := s.Manifest("golden"); m == nil || m.Blocks() != 4 {
				t.Fatalf("crash point %d: golden manifest damaged", point)
			}
			switch m := s.Manifest("clone"); {
			case m == nil:
				if st := s.Stats(); st.BlocksLogical != 4 {
					t.Fatalf("crash point %d: uncommitted fork leaked refs: %+v", point, st)
				}
			default:
				if m.Blocks() != 4 || m.Gen != 2 {
					t.Fatalf("crash point %d: committed fork wrong: blocks=%d gen=%d", point, m.Blocks(), m.Gen)
				}
			}
			// A fork never changes the chunk population.
			if st := s.Stats(); st.ChunksLive != 3 {
				t.Fatalf("crash point %d: fork changed chunk count: %+v", point, st)
			}
		})
}

func TestJournalCrashSweepRelease(t *testing.T) {
	sweepOp(t,
		func(s *Store) {
			mustSeal(t, s, "golden", 1, 2, 3)
			if _, err := s.Fork(nil, "golden", "clone"); err != nil {
				t.Fatalf("setup fork: %v", err)
			}
		},
		func(s *Store) error { return s.Release(nil, "clone") },
		func(t *testing.T, point int, s *Store) {
			if m := s.Manifest("golden"); m == nil || m.Blocks() != 3 {
				t.Fatalf("crash point %d: golden manifest damaged by release", point)
			}
			// Whether or not the release committed, golden's chunks survive.
			if st := s.Stats(); st.ChunksLive != 3 {
				t.Fatalf("crash point %d: release freed shared chunks: %+v", point, st)
			}
		})
}
