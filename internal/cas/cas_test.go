package cas

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"nesc/internal/fault"
	"nesc/internal/sim"
)

// block builds a 1 KB test block whose content is derived from tag.
func block(tag byte) []byte { return bytes.Repeat([]byte{tag}, 1024) }

// blocksFrom builds an image from per-block tags.
func blocksFrom(tags ...byte) [][]byte {
	out := make([][]byte, len(tags))
	for i, t := range tags {
		out[i] = block(t)
	}
	return out
}

func mustSeal(t *testing.T, s *Store, name string, tags ...byte) *Manifest {
	t.Helper()
	m, err := s.Seal(nil, name, blocksFrom(tags...))
	if err != nil {
		t.Fatalf("seal %s: %v", name, err)
	}
	return m
}

func TestSealDedupAndRatio(t *testing.T) {
	s := NewStore(Params{BlockSize: 1024}, nil)
	mustSeal(t, s, "a", 1, 2, 3, 1) // block 1 appears twice: one intra-image dup
	mustSeal(t, s, "b", 1, 2, 4, 4) // two cross-image dups, one intra-image dup
	st := s.Stats()
	if st.ChunksLive != 4 { // blocks 1,2,3,4
		t.Errorf("ChunksLive = %d, want 4", st.ChunksLive)
	}
	if st.BlocksLogical != 8 {
		t.Errorf("BlocksLogical = %d, want 8", st.BlocksLogical)
	}
	if st.DedupHits != 4 {
		t.Errorf("DedupHits = %d, want 4", st.DedupHits)
	}
	if r := s.DedupRatio(); r != 2.0 {
		t.Errorf("DedupRatio = %v, want 2.0", r)
	}
	if err := s.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if _, err := s.Seal(nil, "a", blocksFrom(9)); !errors.Is(err, ErrExists) {
		t.Errorf("re-seal of existing name: got %v, want ErrExists", err)
	}
}

func TestForkIsMetadataOnlyAndRelease(t *testing.T) {
	s := NewStore(Params{BlockSize: 1024}, nil)
	mustSeal(t, s, "golden", 1, 2, 3)
	preFetches := s.Stats().RemoteFetches
	m, err := s.Fork(nil, "golden", "clone")
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	if m.Blocks() != 3 || s.Stats().ChunksLive != 3 {
		t.Errorf("fork changed chunk population: %+v", s.Stats())
	}
	if got := s.Stats().RemoteFetches; got != preFetches {
		t.Errorf("fork moved data: %d remote fetches", got-preFetches)
	}
	if err := s.Check(); err != nil {
		t.Fatalf("Check after fork: %v", err)
	}
	// Release the original; the clone keeps every chunk alive.
	if err := s.Release(nil, "golden"); err != nil {
		t.Fatalf("release golden: %v", err)
	}
	if st := s.Stats(); st.ChunksLive != 3 {
		t.Errorf("chunks freed while clone still references them: %+v", st)
	}
	if err := s.Release(nil, "clone"); err != nil {
		t.Fatalf("release clone: %v", err)
	}
	if st := s.Stats(); st.ChunksLive != 0 {
		t.Errorf("ChunksLive = %d after final release, want 0", st.ChunksLive)
	}
	if err := s.Check(); err != nil {
		t.Fatalf("Check after releases: %v", err)
	}
	if _, err := s.Fork(nil, "golden", "c2"); !errors.Is(err, ErrNotSealed) {
		t.Errorf("fork of released manifest: got %v, want ErrNotSealed", err)
	}
}

func TestRefcountGuards(t *testing.T) {
	s := NewStore(Params{BlockSize: 1024}, nil)
	mustSeal(t, s, "img", 7)
	h := HashOf(block(7))

	// Underflow: damage the refcount below the manifest population, then
	// release — the guard must fail before commit, leaving state untouched.
	s.chunks[h].refs = 0
	if err := s.Release(nil, "img"); err == nil {
		t.Fatal("release with damaged refcount succeeded; underflow guard missing")
	}
	if s.Manifest("img") == nil {
		t.Error("failed release mutated state (manifest gone)")
	}
	s.chunks[h].refs = 1 // repair

	// Overflow: push the refcount to the cap; the next fork must refuse.
	s.chunks[h].refs = maxRefs
	if _, err := s.Fork(nil, "img", "over"); err == nil {
		t.Fatal("fork past maxRefs succeeded; overflow guard missing")
	}
	if s.Manifest("over") != nil {
		t.Error("failed fork left a manifest behind")
	}
	s.chunks[h].refs = 1
	if _, err := s.Seal(nil, "img2", blocksFrom(7, 7)); err != nil {
		t.Fatalf("seal after guard exercises: %v", err)
	}
	if err := s.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestFetchIntegrityLadder(t *testing.T) {
	s := NewStore(Params{BlockSize: 1024}, nil)
	mustSeal(t, s, "img", 5)
	h := HashOf(block(5))
	got, err := s.Fetch(nil, h)
	if err != nil || !bytes.Equal(got, block(5)) {
		t.Fatalf("clean fetch: %v", err)
	}
	if !s.CorruptChunk(h) {
		t.Fatal("CorruptChunk missed a live chunk")
	}
	// Corruption shaped like a hash collision: the payload no longer matches
	// its address. The ladder must retry, never serve it, and surface
	// ErrIntegrity once the retries exhaust.
	if _, err := s.Fetch(nil, h); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("fetch of corrupt chunk: got %v, want ErrIntegrity", err)
	}
	st := s.Stats()
	if st.HashMismatches == 0 {
		t.Error("no hash mismatches counted")
	}
	if st.FetchFails != 1 {
		t.Errorf("FetchFails = %d, want 1", st.FetchFails)
	}
	if st.RemoteRetries == 0 {
		t.Error("integrity failure did not walk the retry ladder")
	}
}

func TestFetchRemoteFaultsAndCostModel(t *testing.T) {
	plan := fault.Plan{Seed: 42}
	plan.Sites[fault.RemoteFetch] = fault.SiteParams{OneShot: []int64{1}, DelayProb: 1, Delay: 5 * sim.Microsecond}
	inj := fault.NewInjector(plan)
	s := NewStore(Params{BlockSize: 1024, RemoteLatency: 40 * sim.Microsecond, RemoteBandwidth: 2.0}, inj)
	mustSeal(t, s, "img", 9)
	h := HashOf(block(9))

	eng := sim.NewEngine()
	var elapsed sim.Time
	var fetchErr error
	eng.Go("fetch", func(p *sim.Proc) {
		start := p.Now()
		_, fetchErr = s.Fetch(p, h)
		elapsed = p.Now() - start
	})
	eng.Run()
	eng.Shutdown()
	if fetchErr != nil {
		t.Fatalf("fetch under one-shot fault: %v (retry ladder should absorb it)", fetchErr)
	}
	// Two attempts (one faulted), each 40us latency + 512ns payload + 5us
	// injected delay.
	per := 40*sim.Microsecond + sim.Time(float64(1024)/2.0) + 5*sim.Microsecond
	if want := 2 * per; elapsed != want {
		t.Errorf("fetch elapsed %v, want %v", elapsed, want)
	}
	st := s.Stats()
	if st.RemoteFetches != 2 || st.RemoteRetries != 1 {
		t.Errorf("fetches=%d retries=%d, want 2/1", st.RemoteFetches, st.RemoteRetries)
	}
	if st.RemoteFetchTime != elapsed {
		t.Errorf("RemoteFetchTime = %v, elapsed %v", st.RemoteFetchTime, elapsed)
	}
}

func TestNilStoreAndCacheAreSafe(t *testing.T) {
	var s *Store
	if s.Enabled() {
		t.Error("nil store reports enabled")
	}
	if _, err := s.Seal(nil, "x", nil); !errors.Is(err, ErrDisabled) {
		t.Errorf("nil seal: %v", err)
	}
	if _, err := s.Fork(nil, "a", "b"); !errors.Is(err, ErrDisabled) {
		t.Errorf("nil fork: %v", err)
	}
	if err := s.Release(nil, "a"); !errors.Is(err, ErrDisabled) {
		t.Errorf("nil release: %v", err)
	}
	if _, err := s.Fetch(nil, Hash{}); !errors.Is(err, ErrDisabled) {
		t.Errorf("nil fetch: %v", err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("nil stats: %+v", st)
	}
	var c *Cache
	if _, ok := c.Get(Hash{}); ok {
		t.Error("nil cache hit")
	}
	c.Put(Hash{}, nil)
	c.Pin(Hash{})
	c.Unpin(Hash{})
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(3)
	h := func(i byte) Hash { return HashOf(block(i)) }
	c.Put(h(1), block(1))
	c.Put(h(2), block(2))
	c.Put(h(3), block(3))
	// Touch 1: LRU order is now 2, 3, 1 (oldest first).
	if _, ok := c.Get(h(1)); !ok {
		t.Fatal("resident chunk missed")
	}
	c.Put(h(4), block(4)) // evicts 2
	if _, ok := c.Get(h(2)); ok {
		t.Error("LRU victim 2 still resident")
	}
	c.Put(h(5), block(5)) // evicts 3
	if _, ok := c.Get(h(3)); ok {
		t.Error("LRU victim 3 still resident")
	}
	for _, want := range []byte{1, 4, 5} {
		if got, ok := c.Get(h(want)); !ok || !bytes.Equal(got, block(want)) {
			t.Errorf("chunk %d should be resident and intact", want)
		}
	}
	st := c.Stats()
	if st.Evictions != 2 || st.Resident != 3 {
		t.Errorf("evictions=%d resident=%d, want 2/3", st.Evictions, st.Resident)
	}
}

func TestCachePinnedChunksSurviveEviction(t *testing.T) {
	c := NewCache(2)
	h := func(i byte) Hash { return HashOf(block(i)) }
	c.Put(h(1), block(1))
	c.Pin(h(1))
	c.Put(h(2), block(2))
	c.Put(h(3), block(3)) // LRU victim would be 1, but it is pinned: 2 goes
	if _, ok := c.Get(h(1)); !ok {
		t.Error("pinned chunk was evicted")
	}
	if _, ok := c.Get(h(2)); ok {
		t.Error("unpinned chunk 2 survived over the pinned victim")
	}
	// With everything pinned the cache overflows rather than evicting.
	c.Pin(h(3))
	c.Put(h(4), block(4))
	if st := c.Stats(); st.Resident != 3 {
		t.Errorf("fully pinned cache evicted: resident=%d, want 3 (overflow)", st.Resident)
	}
	// Unpin 1; the next insert can evict it again.
	c.Unpin(h(1))
	c.Put(h(5), block(5))
	if _, ok := c.Get(h(1)); ok {
		t.Error("unpinned chunk 1 not evictable again")
	}
}

func TestStoreDeterminism(t *testing.T) {
	run := func() (Stats, sim.Time) {
		plan := fault.Plan{Seed: 99}
		plan.Sites[fault.RemoteFetch] = fault.SiteParams{Prob: 0.2, DelayProb: 0.3, Delay: 3 * sim.Microsecond}
		plan.Sites[fault.RemoteStore] = fault.SiteParams{Prob: 0.1}
		s := NewStore(Params{BlockSize: 1024}, fault.NewInjector(plan))
		eng := sim.NewEngine()
		var end sim.Time
		eng.Go("churn", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				name := fmt.Sprintf("img%d", i)
				if _, err := s.Seal(p, name, blocksFrom(byte(i), byte(i%3), byte(i%5))); err != nil {
					t.Errorf("seal %s: %v", name, err)
				}
				if _, err := s.Fork(p, name, name+".fork"); err != nil {
					t.Errorf("fork %s: %v", name, err)
				}
				for _, h := range s.Manifest(name).Hashes {
					s.Fetch(p, h)
				}
				if i%2 == 1 {
					if err := s.Release(p, name+".fork"); err != nil {
						t.Errorf("release: %v", err)
					}
				}
			}
			end = p.Now()
		})
		eng.Run()
		eng.Shutdown()
		if err := s.Check(); err != nil {
			t.Fatalf("Check: %v", err)
		}
		return s.Stats(), end
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Errorf("same-seed churn diverged:\nA: %+v @ %v\nB: %+v @ %v", s1, t1, s2, t2)
	}
}
