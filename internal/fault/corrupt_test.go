package fault

import (
	"bytes"
	"testing"
)

func TestCorruptSectorsLatchAndClear(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, CorruptSectors: []int64{5, 9}})
	if got := in.CorruptCount(); got != 2 {
		t.Fatalf("seeded corrupt count = %d, want 2", got)
	}

	d := in.MediumAccess(false, 0, 16)
	if d.Fault {
		t.Fatal("corrupt sectors must not fail the read loudly")
	}
	if len(d.CorruptBlocks) != 2 || d.CorruptBlocks[0] != 5 || d.CorruptBlocks[1] != 9 {
		t.Fatalf("CorruptBlocks = %v, want [5 9]", d.CorruptBlocks)
	}
	if in.CorruptHits != 2 {
		t.Fatalf("CorruptHits = %d, want 2", in.CorruptHits)
	}

	// A successful write over sector 5 heals it; 9 stays latched.
	if d := in.MediumAccess(true, 4, 4); d.Fault {
		t.Fatal("write faulted with no write sites armed")
	}
	if in.CorruptCleared != 1 {
		t.Fatalf("CorruptCleared = %d, want 1", in.CorruptCleared)
	}
	d = in.MediumAccess(false, 0, 16)
	if len(d.CorruptBlocks) != 1 || d.CorruptBlocks[0] != 9 {
		t.Fatalf("after heal CorruptBlocks = %v, want [9]", d.CorruptBlocks)
	}
}

func TestCorruptWriteLatchesFirstLBA(t *testing.T) {
	var plan Plan
	plan.Seed = 7
	plan.Sites[MediumCorruptWrite].Prob = 1
	in := NewInjector(plan)

	// The write itself succeeds — that is the whole point of the site.
	if d := in.MediumAccess(true, 40, 4); d.Fault {
		t.Fatal("corrupt-write must not fail the write")
	}
	if in.CorruptAdded != 1 || in.CorruptCount() != 1 {
		t.Fatalf("CorruptAdded=%d CorruptCount=%d, want 1/1", in.CorruptAdded, in.CorruptCount())
	}
	d := in.MediumAccess(false, 40, 4)
	if len(d.CorruptBlocks) != 1 || d.CorruptBlocks[0] != 40 {
		t.Fatalf("CorruptBlocks = %v, want [40]", d.CorruptBlocks)
	}
}

func TestCorruptReadIsTransient(t *testing.T) {
	var plan Plan
	plan.Seed = 7
	plan.Sites[MediumCorruptRead].Prob = 1
	in := NewInjector(plan)

	d := in.MediumAccess(false, 12, 2)
	if d.Fault {
		t.Fatal("corrupt-read must not fail the read")
	}
	if len(d.CorruptBlocks) != 1 || d.CorruptBlocks[0] != 12 {
		t.Fatalf("CorruptBlocks = %v, want [12]", d.CorruptBlocks)
	}
	// Nothing latched: the sector itself is fine.
	if in.CorruptCount() != 0 {
		t.Fatalf("transient flip latched a sector: CorruptCount = %d", in.CorruptCount())
	}
}

func TestFlipDeterministicSingleBit(t *testing.T) {
	orig := []byte("the quick brown fox jumps over the lazy dog, padded to a block")
	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	Flip(a, 42)
	Flip(b, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("same salt produced different flips")
	}
	diff := 0
	for i := range a {
		for bit := 0; bit < 8; bit++ {
			if (a[i]^orig[i])>>bit&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flip changed %d bits, want exactly 1", diff)
	}
	// Flipping again with the same salt restores the original.
	Flip(a, 42)
	if !bytes.Equal(a, orig) {
		t.Fatal("double flip did not restore the payload")
	}
}

// TestCorruptSitesPreserveLoudSchedule is the replay-compatibility
// guarantee: arming the corruption sites must not perturb the loud sites'
// PRNG draws, so a pre-corruption fault schedule stays bit-identical.
func TestCorruptSitesPreserveLoudSchedule(t *testing.T) {
	var loud Plan
	loud.Seed = 99
	loud.Sites[MediumRead].Prob = 0.3
	loud.Sites[MediumWrite].Prob = 0.2

	armed := loud
	armed.Sites[MediumCorruptRead].Prob = 0.5
	armed.Sites[MediumCorruptWrite].Prob = 0.5
	armed.Sites[DMACorrupt].Prob = 0.5

	a, b := NewInjector(loud), NewInjector(armed)
	for i := 0; i < 4096; i++ {
		write := i%3 == 0
		da := a.MediumAccess(write, int64(i%64), 4)
		db := b.MediumAccess(write, int64(i%64), 4)
		if da.Fault != db.Fault {
			t.Fatalf("op %d: loud verdict diverged (%v vs %v) once corruption sites armed", i, da.Fault, db.Fault)
		}
	}
	if a.Faults(MediumRead) != b.Faults(MediumRead) || a.Faults(MediumWrite) != b.Faults(MediumWrite) {
		t.Fatal("loud fault counts diverged with corruption sites armed")
	}
}
