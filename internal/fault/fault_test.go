package fault

import (
	"testing"

	"nesc/internal/sim"
)

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	if d := in.Decide(MSI); d.Fault || d.Delay != 0 {
		t.Fatalf("nil injector decided %+v", d)
	}
	if d := in.MediumAccess(false, 0, 8); d.Fault {
		t.Fatalf("nil injector faulted a medium access")
	}
	if in.TotalFaults() != 0 || in.Ops(MSI) != 0 || in.LatentCount() != 0 {
		t.Fatalf("nil injector has state")
	}
	if in.Summary() == "" {
		t.Fatalf("nil injector summary empty")
	}
}

func TestSeedReproducibility(t *testing.T) {
	plan := Plan{Seed: 7}
	plan.Sites[DMARead] = SiteParams{Prob: 0.3}
	plan.Sites[MSI] = SiteParams{Prob: 0.1, DelayProb: 0.2, Delay: 5 * sim.Microsecond}
	run := func() ([]Decision, string) {
		in := NewInjector(plan)
		var out []Decision
		for i := 0; i < 500; i++ {
			out = append(out, in.Decide(DMARead))
			out = append(out, in.Decide(MSI))
		}
		return out, in.Summary()
	}
	a, sa := run()
	b, sb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if sa != sb {
		t.Fatalf("summaries differ:\n%s\nvs\n%s", sa, sb)
	}
	// A 30% site should have faulted a plausible number of times.
	in := NewInjector(plan)
	for i := 0; i < 1000; i++ {
		in.Decide(DMARead)
	}
	if f := in.Faults(DMARead); f < 200 || f > 400 {
		t.Fatalf("30%% fault site faulted %d/1000 times", f)
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	plan := Plan{Seed: 11}
	plan.Sites[DMARead] = SiteParams{Prob: 0.5}
	plan.Sites[DMAWrite] = SiteParams{Prob: 0.5}
	// Run A: interleave the two sites. Run B: consume extra DMAWrite draws
	// between DMARead draws. DMARead's sequence must be unchanged.
	seqA := func() []bool {
		in := NewInjector(plan)
		var out []bool
		for i := 0; i < 100; i++ {
			out = append(out, in.Decide(DMARead).Fault)
			in.Decide(DMAWrite)
		}
		return out
	}()
	seqB := func() []bool {
		in := NewInjector(plan)
		var out []bool
		for i := 0; i < 100; i++ {
			out = append(out, in.Decide(DMARead).Fault)
			in.Decide(DMAWrite)
			in.Decide(DMAWrite)
			in.Decide(DMAWrite)
		}
		return out
	}()
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("DMARead decision %d perturbed by DMAWrite draws", i)
		}
	}
}

func TestOneShotTrigger(t *testing.T) {
	plan := Plan{Seed: 1}
	plan.Sites[MediumWrite] = SiteParams{OneShot: []int64{3}}
	in := NewInjector(plan)
	for i := 1; i <= 5; i++ {
		d := in.Decide(MediumWrite)
		if got, want := d.Fault, i == 3; got != want {
			t.Fatalf("op %d: fault=%v, want %v", i, got, want)
		}
	}
}

func TestLatentSectors(t *testing.T) {
	plan := Plan{Seed: 1, LatentSectors: []int64{42}}
	in := NewInjector(plan)
	// Reads covering the latent sector fail; others succeed.
	if d := in.MediumAccess(false, 40, 4); !d.Fault {
		t.Fatalf("read over latent sector did not fault")
	}
	if d := in.MediumAccess(false, 0, 4); d.Fault {
		t.Fatalf("clean read faulted")
	}
	// A successful write repairs the sector.
	if d := in.MediumAccess(true, 42, 1); d.Fault {
		t.Fatalf("write faulted with no write probability")
	}
	if d := in.MediumAccess(false, 40, 4); d.Fault {
		t.Fatalf("read still faults after repair write")
	}
	if in.LatentHits != 1 || in.LatentCleared != 1 || in.LatentCount() != 0 {
		t.Fatalf("latent counters: hits=%d cleared=%d live=%d",
			in.LatentHits, in.LatentCleared, in.LatentCount())
	}
}

func TestLatentLatching(t *testing.T) {
	plan := Plan{Seed: 9, LatentProb: 1.0}
	plan.Sites[MediumRead] = SiteParams{OneShot: []int64{1}}
	in := NewInjector(plan)
	if d := in.MediumAccess(false, 7, 1); !d.Fault {
		t.Fatalf("one-shot read did not fault")
	}
	if in.LatentAdded != 1 || in.LatentCount() != 1 {
		t.Fatalf("fault with LatentProb=1 did not latch: added=%d live=%d",
			in.LatentAdded, in.LatentCount())
	}
	// Subsequent reads of that sector keep failing with no probability.
	if d := in.MediumAccess(false, 7, 1); !d.Fault {
		t.Fatalf("latched sector read did not fault")
	}
}
