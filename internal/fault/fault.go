// Package fault is the platform's seeded, deterministic fault-injection
// engine. A Plan names the faults a simulation should experience — per-site
// probabilities, one-shot triggers, injected delays, and latent medium
// sectors — and an Injector turns the plan into per-operation decisions.
//
// Determinism is the whole point: the simulation kernel is single-threaded
// and event-ordered, every injection site draws from its own PRNG stream
// derived from the plan seed, and no wall-clock state is consulted, so the
// same seed always produces the identical fault sequence. A chaos run that
// corrupts data or deadlocks a submitter is therefore replayable bit-exactly
// for debugging.
//
// The injector hooks the three I/O boundaries of the platform:
//
//   - blockdev.Medium — transient and latent sector errors on reads and
//     writes (latent sectors persist until successfully rewritten);
//   - pcie.Fabric — DMA TLP faults (the transfer is rejected at the
//     requester) and dropped or delayed MSIs;
//   - the hypervisor miss handler — slow or failing lazy allocation.
//
// A nil *Injector is valid everywhere and decides "no fault" at zero cost,
// so fault-free simulations pay nothing.
package fault

import (
	"fmt"
	"strings"

	"nesc/internal/sim"
)

// Site identifies one injection point.
type Site int

// The injection sites, in boundary order.
const (
	MediumRead Site = iota
	MediumWrite
	DMARead
	DMAWrite
	MSI
	MissHandler
	// Silent-corruption sites: instead of failing the operation these
	// bit-flip its payload, so only integrity metadata can catch them.
	MediumCorruptRead
	MediumCorruptWrite
	DMACorrupt
	// Device-scoped sites for multi-device fabrics. A DeviceKill fault
	// latches the accessed device dead: every subsequent operation on it
	// fails until ReviveDevice. A DevicePartition fault makes the device
	// unreachable for Plan.PartitionDuration and then heals on its own —
	// a link flap rather than a dead controller.
	DeviceKill
	DevicePartition
	// Remote-tier sites for the content-addressed store (cas). RemoteFetch
	// covers GETs from the simulated object tier (chunk materialization);
	// RemoteStore covers PUTs (sealing). Both support delay injection — the
	// remote tier is a network service, so chronic slowness is its most
	// realistic failure shape.
	RemoteFetch
	RemoteStore
	NumSites
)

func (s Site) String() string {
	switch s {
	case MediumRead:
		return "medium-read"
	case MediumWrite:
		return "medium-write"
	case DMARead:
		return "dma-read"
	case DMAWrite:
		return "dma-write"
	case MSI:
		return "msi"
	case MissHandler:
		return "miss-handler"
	case MediumCorruptRead:
		return "corrupt-read"
	case MediumCorruptWrite:
		return "corrupt-write"
	case DMACorrupt:
		return "dma-corrupt"
	case DeviceKill:
		return "device-kill"
	case DevicePartition:
		return "device-partition"
	case RemoteFetch:
		return "remote-fetch"
	case RemoteStore:
		return "remote-store"
	default:
		return fmt.Sprintf("Site(%d)", int(s))
	}
}

// SiteParams configures one site's fault behavior.
type SiteParams struct {
	// Prob is the per-operation fault probability in [0, 1].
	Prob float64
	// OneShot lists 1-based operation ordinals that fault unconditionally
	// (deterministic triggers for targeted tests).
	OneShot []int64
	// DelayProb is the per-operation probability of injecting Delay extra
	// latency (the operation still succeeds unless it also faulted).
	DelayProb float64
	// Delay is the injected extra latency.
	Delay sim.Time
}

// Plan is a complete, reproducible fault schedule.
type Plan struct {
	// Seed derives every site's PRNG stream.
	Seed uint64
	// Sites holds the per-site parameters, indexed by Site.
	Sites [NumSites]SiteParams
	// LatentSectors are medium LBAs that are bad from the start: reads fail
	// until the sector is successfully rewritten.
	LatentSectors []int64
	// LatentProb is the probability that a faulted medium read latches the
	// first LBA of the access as a latent bad sector.
	LatentProb float64
	// CorruptSectors are medium LBAs that hold silently corrupted data from
	// the start: reads return bit-flipped payloads (no error) until the
	// sector is successfully rewritten. Only integrity metadata detects them.
	CorruptSectors []int64
	// PartitionDuration is how long a DevicePartition fault keeps the
	// device unreachable (default 2ms when the site is armed).
	PartitionDuration sim.Time
	// Degradations are fail-slow profiles armed from the start: devices that
	// turn chronically slow mid-run instead of failing loudly. Profiles draw
	// no randomness — the extra latency is pure ramp arithmetic over virtual
	// time — so arming one never perturbs any other site's fault sequence.
	Degradations []Degradation
}

// Degradation is one persistent fail-slow profile: from Start the named
// device's per-operation latency grows — linearly over Ramp — until the full
// degradation holds, and stays degraded for Duration (0 = forever). The
// slowdown has a multiplicative half (Factor scales the operation's base
// service time) and an additive half (Extra flat latency per operation);
// either alone suffices. Unlike SiteParams.Delay this is chronic, not
// one-shot: every operation in the window pays, which is exactly the gray
// failure a fail-stop detector cannot see.
type Degradation struct {
	// Device is the target device index (blockdev.Medium.DeviceIndex).
	Device int
	// Start is when the degradation begins.
	Start sim.Time
	// Ramp is how long the slowdown takes to reach full strength (0 = step).
	Ramp sim.Time
	// Duration bounds the degraded window measured from Start (0 = forever).
	Duration sim.Time
	// Factor multiplies the operation's base latency at full strength
	// (e.g. 4.0 = 4x slower). Values <= 1 contribute nothing.
	Factor float64
	// Extra is flat added latency per operation at full strength.
	Extra sim.Time
}

// Decision is the injector's verdict for one operation.
type Decision struct {
	// Fault fails the operation.
	Fault bool
	// Delay is extra latency to add (independently of Fault).
	Delay sim.Time
}

// MediumDecision is the verdict for one medium access: the loud half
// (Decision) plus the silent half — blocks whose payload must be returned
// bit-flipped. The store keeps the true bytes; corruption is applied on the
// way out, which is what lets a later scrub recover the sector.
type MediumDecision struct {
	Decision
	// CorruptBlocks lists LBAs within the access whose read payload must be
	// bit-flipped (persistently latched sectors plus transient read flips).
	CorruptBlocks []int64
}

// Injector executes a Plan. Not safe for concurrent use — like the rest of
// the simulation it relies on the engine's single-threaded hand-off.
type Injector struct {
	plan    Plan
	streams [NumSites]uint64
	ops     [NumSites]int64
	faults  [NumSites]int64
	delays  [NumSites]int64
	latent  map[int64]struct{}
	corrupt map[int64]struct{}
	// killed latches dead devices; partitioned maps a device to the virtual
	// time its current partition window ends.
	killed      map[int]struct{}
	partitioned map[int]sim.Time
	// degr holds the live fail-slow profiles (plan-armed plus runtime
	// Degrade calls), in arming order.
	degr []Degradation

	// LatentHits counts reads that failed on a latent sector; LatentAdded
	// counts sectors latched latent by a faulted read; LatentCleared counts
	// sectors repaired by a successful rewrite.
	LatentHits, LatentAdded, LatentCleared int64
	// CorruptHits counts read blocks returned corrupted from a latched
	// sector; CorruptAdded counts sectors latched corrupt by a corrupt-write
	// fault; CorruptCleared counts sectors healed by a successful rewrite.
	CorruptHits, CorruptAdded, CorruptCleared int64
	// DeviceKills counts kill latches (injected and explicit); DeviceRevives
	// counts explicit revives; PartitionHits counts operations rejected
	// because their device was killed or inside a partition window.
	DeviceKills, DeviceRevives, PartitionHits int64
	// DegradedOps counts operations that paid fail-slow latency;
	// DegradedTime totals the extra latency injected by degradation profiles.
	DegradedOps  int64
	DegradedTime sim.Time
}

// NewInjector compiles a plan into a ready injector.
func NewInjector(plan Plan) *Injector {
	in := &Injector{
		plan:        plan,
		latent:      make(map[int64]struct{}),
		corrupt:     make(map[int64]struct{}),
		killed:      make(map[int]struct{}),
		partitioned: make(map[int]sim.Time),
	}
	if in.plan.PartitionDuration <= 0 {
		in.plan.PartitionDuration = 2 * sim.Millisecond
	}
	for s := Site(0); s < NumSites; s++ {
		// Distinct, seed-derived stream per site so decisions at one site
		// never perturb another site's sequence.
		in.streams[s] = plan.Seed ^ (uint64(s)+1)*0x9e3779b97f4a7c15
	}
	for _, lba := range plan.LatentSectors {
		in.latent[lba] = struct{}{}
	}
	for _, lba := range plan.CorruptSectors {
		in.corrupt[lba] = struct{}{}
	}
	in.degr = append(in.degr, plan.Degradations...)
	return in
}

// splitmix64 advances a stream and returns the next 64 uniform bits.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rand draws a uniform float in [0, 1) from site s's stream.
func (in *Injector) rand(s Site) float64 {
	return float64(splitmix64(&in.streams[s])>>11) / (1 << 53)
}

// Decide draws one verdict for an operation at site s. Safe on a nil
// receiver (never faults, never delays).
func (in *Injector) Decide(s Site) Decision {
	if in == nil {
		return Decision{}
	}
	sp := &in.plan.Sites[s]
	in.ops[s]++
	var d Decision
	for _, shot := range sp.OneShot {
		if shot == in.ops[s] {
			d.Fault = true
			break
		}
	}
	if !d.Fault && sp.Prob > 0 && in.rand(s) < sp.Prob {
		d.Fault = true
	}
	if sp.DelayProb > 0 && in.rand(s) < sp.DelayProb {
		d.Delay = sp.Delay
		in.delays[s]++
	}
	if d.Fault {
		in.faults[s]++
	}
	return d
}

// MediumAccess decides one medium operation covering blocks [lba,
// lba+blocks). Reads additionally fail on latent sectors; a successful write
// repairs any latent (and silently corrupt) sectors it covers. Reads of
// latched-corrupt sectors, and reads hit by a transient corrupt-read fault,
// report those blocks in CorruptBlocks — the operation itself succeeds.
// A corrupt-write fault lets the operation "succeed" but latches its first
// LBA as persistently corrupt. Safe on a nil receiver.
func (in *Injector) MediumAccess(write bool, lba, blocks int64) MediumDecision {
	if in == nil {
		return MediumDecision{}
	}
	site := MediumRead
	if write {
		site = MediumWrite
	}
	// The loud half draws exactly as before the corruption sites existed, so
	// pre-existing fault schedules replay bit-identically.
	d := MediumDecision{Decision: in.Decide(site)}
	if write {
		if !d.Fault {
			for b := lba; b < lba+blocks; b++ {
				if _, ok := in.latent[b]; ok {
					delete(in.latent, b)
					in.LatentCleared++
				}
				if _, ok := in.corrupt[b]; ok {
					delete(in.corrupt, b)
					in.CorruptCleared++
				}
			}
			if cd := in.Decide(MediumCorruptWrite); cd.Fault {
				if _, ok := in.corrupt[lba]; !ok {
					in.corrupt[lba] = struct{}{}
					in.CorruptAdded++
				}
			}
		}
		return d
	}
	for b := lba; b < lba+blocks; b++ {
		if _, ok := in.latent[b]; ok {
			d.Fault = true
			in.LatentHits++
			break
		}
	}
	if d.Fault && in.plan.LatentProb > 0 && in.rand(MediumRead) < in.plan.LatentProb {
		if _, ok := in.latent[lba]; !ok {
			in.latent[lba] = struct{}{}
			in.LatentAdded++
		}
	}
	if !d.Fault {
		for b := lba; b < lba+blocks; b++ {
			if _, ok := in.corrupt[b]; ok {
				d.CorruptBlocks = append(d.CorruptBlocks, b)
				in.CorruptHits++
			}
		}
		if cd := in.Decide(MediumCorruptRead); cd.Fault && len(d.CorruptBlocks) == 0 {
			// Transient flip: this read of the first block comes back wrong,
			// but the sector itself is fine (a retry sees clean data).
			d.CorruptBlocks = append(d.CorruptBlocks, lba)
		}
	}
	return d
}

// siteArmed reports whether a site can ever fire under the plan; unarmed
// device sites draw nothing, so pre-fabric fault schedules replay
// bit-identically.
func (in *Injector) siteArmed(s Site) bool {
	sp := &in.plan.Sites[s]
	return sp.Prob > 0 || len(sp.OneShot) > 0
}

// DeviceAccess decides whether an operation on device dev is reachable at
// virtual time now. A killed device rejects everything until ReviveDevice; a
// partitioned one rejects until its window closes. When neither latch holds,
// the armed DeviceKill/DevicePartition sites each draw one verdict for this
// operation and may latch the device. Safe on a nil receiver.
func (in *Injector) DeviceAccess(dev int, now sim.Time) Decision {
	if in == nil {
		return Decision{}
	}
	if _, dead := in.killed[dev]; dead {
		in.PartitionHits++
		return Decision{Fault: true}
	}
	if until, ok := in.partitioned[dev]; ok {
		if now < until {
			in.PartitionHits++
			return Decision{Fault: true}
		}
		delete(in.partitioned, dev)
	}
	var d Decision
	if in.siteArmed(DeviceKill) {
		if kd := in.Decide(DeviceKill); kd.Fault {
			in.killed[dev] = struct{}{}
			in.DeviceKills++
			d.Fault = true
		}
	}
	if !d.Fault && in.siteArmed(DevicePartition) {
		if pd := in.Decide(DevicePartition); pd.Fault {
			in.partitioned[dev] = now + in.plan.PartitionDuration
			d.Fault = true
		}
	}
	return d
}

// KillDevice latches a device dead, exactly as a DeviceKill fault would —
// the explicit chaos-experiment form of pulling a controller.
func (in *Injector) KillDevice(dev int) {
	if in == nil {
		return
	}
	if _, ok := in.killed[dev]; !ok {
		in.killed[dev] = struct{}{}
		in.DeviceKills++
	}
}

// ReviveDevice clears a device's kill (and partition) latch: the replaced or
// repaired controller is reachable again and may be resilvered.
func (in *Injector) ReviveDevice(dev int) {
	if in == nil {
		return
	}
	if _, ok := in.killed[dev]; ok {
		in.DeviceRevives++
	}
	delete(in.killed, dev)
	delete(in.partitioned, dev)
}

// DeviceDead reports whether a device is currently kill-latched.
func (in *Injector) DeviceDead(dev int) bool {
	if in == nil {
		return false
	}
	_, ok := in.killed[dev]
	return ok
}

// Degrade arms a fail-slow profile at runtime — the chaos-experiment form of
// a medium that starts running hot mid-experiment. Safe on a nil receiver
// (no-op).
func (in *Injector) Degrade(d Degradation) {
	if in == nil {
		return
	}
	in.degr = append(in.degr, d)
}

// ClearDegradations drops every profile targeting dev (the component was
// replaced or cooled off). Safe on a nil receiver.
func (in *Injector) ClearDegradations(dev int) {
	if in == nil {
		return
	}
	kept := in.degr[:0]
	for _, d := range in.degr {
		if d.Device != dev {
			kept = append(kept, d)
		}
	}
	in.degr = kept
}

// DegradeDelay reports the extra fail-slow latency an operation on device dev
// with base service time base pays at virtual time now, summed over every
// active profile. The computation is pure ramp arithmetic — no PRNG stream is
// touched — so armed degradations leave every fault schedule bit-identical.
// Safe on a nil receiver (zero).
func (in *Injector) DegradeDelay(dev int, base, now sim.Time) sim.Time {
	if in == nil || len(in.degr) == 0 {
		return 0
	}
	var extra sim.Time
	for _, d := range in.degr {
		if d.Device != dev || now < d.Start {
			continue
		}
		if d.Duration > 0 && now >= d.Start+d.Duration {
			continue
		}
		full := d.Extra
		if d.Factor > 1 {
			full += sim.Time(float64(base) * (d.Factor - 1))
		}
		if full <= 0 {
			continue
		}
		if elapsed := now - d.Start; d.Ramp > 0 && elapsed < d.Ramp {
			extra += sim.Time(float64(full) * float64(elapsed) / float64(d.Ramp))
		} else {
			extra += full
		}
	}
	if extra > 0 {
		in.DegradedOps++
		in.DegradedTime += extra
	}
	return extra
}

// Degraded reports whether any profile is currently active for dev at time
// now. Safe on a nil receiver.
func (in *Injector) Degraded(dev int, now sim.Time) bool {
	if in == nil {
		return false
	}
	for _, d := range in.degr {
		if d.Device == dev && now >= d.Start &&
			(d.Duration == 0 || now < d.Start+d.Duration) {
			return true
		}
	}
	return false
}

// Ops reports how many decisions site s has made.
func (in *Injector) Ops(s Site) int64 {
	if in == nil {
		return 0
	}
	return in.ops[s]
}

// Faults reports how many operations site s has faulted.
func (in *Injector) Faults(s Site) int64 {
	if in == nil {
		return 0
	}
	return in.faults[s]
}

// Delays reports how many operations site s has slowed via Decision.Delay.
func (in *Injector) Delays(s Site) int64 {
	if in == nil {
		return 0
	}
	return in.delays[s]
}

// TotalDelays reports delay injections across all sites.
func (in *Injector) TotalDelays() int64 {
	if in == nil {
		return 0
	}
	var t int64
	for s := Site(0); s < NumSites; s++ {
		t += in.delays[s]
	}
	return t
}

// TotalFaults reports faults across all sites.
func (in *Injector) TotalFaults() int64 {
	if in == nil {
		return 0
	}
	var t int64
	for s := Site(0); s < NumSites; s++ {
		t += in.faults[s]
	}
	return t
}

// LatentCount reports the number of currently latent sectors.
func (in *Injector) LatentCount() int {
	if in == nil {
		return 0
	}
	return len(in.latent)
}

// CorruptCount reports the number of currently latched-corrupt sectors.
func (in *Injector) CorruptCount() int {
	if in == nil {
		return 0
	}
	return len(in.corrupt)
}

// LatentList returns the currently latent sector LBAs in ascending order
// (for scrubbers that target known-bad sectors deterministically).
func (in *Injector) LatentList() []int64 {
	if in == nil {
		return nil
	}
	out := make([]int64, 0, len(in.latent))
	for lba := range in.latent {
		out = append(out, lba)
	}
	sortInt64s(out)
	return out
}

// CorruptList returns the currently latched-corrupt sector LBAs in
// ascending order.
func (in *Injector) CorruptList() []int64 {
	if in == nil {
		return nil
	}
	out := make([]int64, 0, len(in.corrupt))
	for lba := range in.corrupt {
		out = append(out, lba)
	}
	sortInt64s(out)
	return out
}

// CorruptionsInjected totals the silent corruptions the plan has inflicted:
// latched-sector read hits plus transient read flips plus DMA flips.
func (in *Injector) CorruptionsInjected() int64 {
	if in == nil {
		return 0
	}
	return in.CorruptHits + in.faults[MediumCorruptRead] + in.faults[DMACorrupt]
}

// Flip corrupts p in place by flipping one bit at a position derived
// deterministically from salt. The same salt always flips the same bit, so a
// latched-corrupt sector returns the same wrong bytes on every read.
func Flip(p []byte, salt uint64) {
	if len(p) == 0 {
		return
	}
	z := salt + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	p[z%uint64(len(p))] ^= 1 << ((z >> 8) % 8)
}

func sortInt64s(a []int64) {
	// Insertion sort: the latch sets are tiny and this avoids an import.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Summary renders the per-site counters as one deterministic line per site —
// chaos tests compare summaries across runs to prove seed reproducibility.
func (in *Injector) Summary() string {
	if in == nil {
		return "fault: no plan"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan seed=%d\n", in.plan.Seed)
	for s := Site(0); s < NumSites; s++ {
		fmt.Fprintf(&b, "  %-12s ops=%-8d faults=%-6d delays=%d\n",
			s, in.ops[s], in.faults[s], in.delays[s])
	}
	fmt.Fprintf(&b, "  latent: hits=%d added=%d cleared=%d live=%d\n",
		in.LatentHits, in.LatentAdded, in.LatentCleared, len(in.latent))
	fmt.Fprintf(&b, "  corrupt: hits=%d added=%d cleared=%d live=%d\n",
		in.CorruptHits, in.CorruptAdded, in.CorruptCleared, len(in.corrupt))
	fmt.Fprintf(&b, "  devices: kills=%d revives=%d rejected=%d dead=%d\n",
		in.DeviceKills, in.DeviceRevives, in.PartitionHits, len(in.killed))
	fmt.Fprintf(&b, "  degraded: ops=%d extra=%d live=%d\n",
		in.DegradedOps, int64(in.DegradedTime), len(in.degr))
	return b.String()
}
