// Package workload implements the paper's benchmarks (Table II):
//
//	dd        — sequential raw-device read/write microbenchmark
//	sysbench  — Sysbench file I/O: random read/write mix over a prepared file
//	postmark  — mail-server simulation: transactions over a pool of small
//	            files (create/delete + read/append)
//	oltp      — relational-style transactions (point selects and updates
//	            with sync) over a paged table file, the SysBench OLTP
//	            workload served by a database engine
//
// Workloads are deterministic (seeded) and target-agnostic: they run
// identically against a NeSC VF, a virtio disk, an emulated disk, or the
// bare host device, which is exactly how the paper compares backends.
package workload

import (
	"fmt"

	"nesc/internal/sim"
	"nesc/internal/stats"
)

// ByteTarget is a raw byte-addressable device or file view.
type ByteTarget interface {
	// ReadAt / WriteAt move n bytes at off; content is carried by the
	// target's own buffers (workloads measure movement, not values).
	ReadAt(p *sim.Proc, off int64, n int) error
	WriteAt(p *sim.Proc, off int64, n int) error
	Size() int64
	// Sync orders outstanding writes (fsync).
	Sync(p *sim.Proc) error
}

// FS is the minimal filesystem facade the file workloads need.
type FS interface {
	Create(p *sim.Proc, name string) (ByteTarget, error)
	Open(p *sim.Proc, name string) (ByteTarget, error)
	Remove(p *sim.Proc, name string) error
}

// Result summarizes one workload run.
type Result struct {
	Name    string
	Ops     int64
	Bytes   int64
	Elapsed sim.Time
	// Lat samples per-operation latency in microseconds.
	Lat stats.Sampler
}

// BandwidthMBps reports throughput in MB/s (10^6 bytes per second).
func (r Result) BandwidthMBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// OpsPerSec reports the operation rate.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// MeanLatencyUs reports the mean per-operation latency in microseconds.
func (r Result) MeanLatencyUs() float64 { return r.Lat.Mean() }

func (r Result) String() string {
	return fmt.Sprintf("%s: %d ops, %.1f MB/s, %.1f us/op, %.0f ops/s",
		r.Name, r.Ops, r.BandwidthMBps(), r.MeanLatencyUs(), r.OpsPerSec())
}

// timeOp measures one operation into a result.
func timeOp(p *sim.Proc, r *Result, bytes int64, fn func() error) error {
	start := p.Now()
	if err := fn(); err != nil {
		return err
	}
	d := p.Now() - start
	r.Ops++
	r.Bytes += bytes
	r.Lat.Add(d.Micros())
	return nil
}
