package workload

import (
	"fmt"
	"testing"

	"nesc/internal/sim"
)

// fakeTarget is a timed in-memory target: each op costs a fixed latency plus
// bandwidth-proportional time.
type fakeTarget struct {
	eng     *sim.Engine
	size    int64
	lat     sim.Time
	bw      float64
	reads   int64
	writes  int64
	syncs   int64
	rdBytes int64
	wrBytes int64
}

func (t *fakeTarget) Size() int64 { return t.size }
func (t *fakeTarget) ReadAt(p *sim.Proc, off int64, n int) error {
	if off < 0 || off+int64(n) > t.size {
		return fmt.Errorf("fakeTarget: read [%d,%d) out of range", off, off+int64(n))
	}
	t.reads++
	t.rdBytes += int64(n)
	p.Sleep(t.lat + sim.BytesTime(int64(n), t.bw))
	return nil
}
func (t *fakeTarget) WriteAt(p *sim.Proc, off int64, n int) error {
	if off < 0 {
		return fmt.Errorf("fakeTarget: negative offset")
	}
	if off+int64(n) > t.size {
		t.size = off + int64(n) // files grow
	}
	t.writes++
	t.wrBytes += int64(n)
	// Writes cost more than reads so op-mix differences are observable.
	p.Sleep(2*t.lat + sim.BytesTime(int64(n), t.bw))
	return nil
}
func (t *fakeTarget) Sync(p *sim.Proc) error {
	t.syncs++
	p.Sleep(t.lat)
	return nil
}

// fakeFS is an in-memory workload.FS.
type fakeFS struct {
	eng     *sim.Engine
	files   map[string]*fakeTarget
	removed int
}

func newFakeFS(eng *sim.Engine) *fakeFS {
	return &fakeFS{eng: eng, files: make(map[string]*fakeTarget)}
}

func (fs *fakeFS) Create(p *sim.Proc, name string) (ByteTarget, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("fakeFS: %s exists", name)
	}
	f := &fakeTarget{eng: fs.eng, lat: 10 * sim.Microsecond, bw: 500e6}
	fs.files[name] = f
	return f, nil
}

func (fs *fakeFS) Open(p *sim.Proc, name string) (ByteTarget, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("fakeFS: %s missing", name)
	}
	return f, nil
}

func (fs *fakeFS) Remove(p *sim.Proc, name string) error {
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("fakeFS: %s missing", name)
	}
	delete(fs.files, name)
	fs.removed++
	return nil
}

func runW(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	eng := sim.NewEngine()
	done := false
	eng.Go("wl", func(p *sim.Proc) { fn(p); done = true })
	eng.Run()
	eng.Shutdown()
	if !done {
		t.Fatal("workload deadlocked")
	}
}

func TestDDSequential(t *testing.T) {
	runW(t, func(p *sim.Proc) {
		tgt := &fakeTarget{size: 1 << 20, lat: 20 * sim.Microsecond, bw: 1e9}
		res, err := DD{BlockBytes: 4096, TotalBytes: 64 * 4096}.Run(p, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 64 || res.Bytes != 64*4096 {
			t.Fatalf("ops=%d bytes=%d", res.Ops, res.Bytes)
		}
		if tgt.reads != 64 || tgt.writes != 0 {
			t.Fatalf("target saw %d reads %d writes", tgt.reads, tgt.writes)
		}
		// Latency per op = 20us + 4096/1e9 ~= 24.1us.
		if res.MeanLatencyUs() < 23 || res.MeanLatencyUs() > 26 {
			t.Fatalf("latency = %v us", res.MeanLatencyUs())
		}
		// Bandwidth consistent with elapsed time.
		if res.BandwidthMBps() < 150 || res.BandwidthMBps() > 180 {
			t.Fatalf("bandwidth = %v MB/s", res.BandwidthMBps())
		}
	})
}

func TestDDWrapsWithinDevice(t *testing.T) {
	runW(t, func(p *sim.Proc) {
		tgt := &fakeTarget{size: 16 * 1024, lat: sim.Microsecond, bw: 1e9}
		res, err := DD{BlockBytes: 4096, TotalBytes: 40 * 4096, Write: true}.Run(p, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 40 {
			t.Fatalf("ops = %d", res.Ops)
		}
		// No out-of-range errors means wrapping worked.
	})
}

func TestDDRejectsBadGeometry(t *testing.T) {
	runW(t, func(p *sim.Proc) {
		tgt := &fakeTarget{size: 1 << 20}
		if _, err := (DD{}).Run(p, tgt); err == nil {
			t.Fatal("zero geometry accepted")
		}
	})
}

func TestSysbenchMixAndFsync(t *testing.T) {
	runW(t, func(p *sim.Proc) {
		eng := p.Engine()
		fs := newFakeFS(eng)
		sb := SysbenchIO{FileBytes: 1 << 20, Ops: 500, RequestBytes: 16 * 1024, Seed: 4}
		f, err := sb.Prepare(p, fs, "/test")
		if err != nil {
			t.Fatal(err)
		}
		ft := f.(*fakeTarget)
		prepWrites := ft.writes
		res, err := sb.Run(p, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 500 {
			t.Fatalf("ops = %d", res.Ops)
		}
		reads, writes := ft.reads, ft.writes-prepWrites
		total := reads + writes
		ratio := float64(reads) / float64(total)
		if ratio < 0.5 || ratio > 0.7 {
			t.Fatalf("read ratio = %.2f, want ~0.6", ratio)
		}
		if ft.syncs == 0 {
			t.Fatal("no fsyncs issued")
		}
	})
}

func TestSysbenchDeterministicAcrossSeeds(t *testing.T) {
	elapsed := func(seed int64) sim.Time {
		var out sim.Time
		runW(t, func(p *sim.Proc) {
			fs := newFakeFS(p.Engine())
			sb := SysbenchIO{FileBytes: 1 << 20, Ops: 200, Seed: seed}
			f, err := sb.Prepare(p, fs, "/t")
			if err != nil {
				t.Fatal(err)
			}
			res, err := sb.Run(p, f)
			if err != nil {
				t.Fatal(err)
			}
			out = res.Elapsed
		})
		return out
	}
	if elapsed(1) != elapsed(1) {
		t.Fatal("same seed produced different runs")
	}
	if elapsed(1) == elapsed(2) {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestPostmarkTransactionMix(t *testing.T) {
	runW(t, func(p *sim.Proc) {
		fs := newFakeFS(p.Engine())
		pm := Postmark{InitialFiles: 20, Transactions: 200, Seed: 5}
		res, err := pm.Run(p, fs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 200 {
			t.Fatalf("transactions = %d", res.Ops)
		}
		if fs.removed == 0 {
			t.Fatal("no deletions happened")
		}
		if len(fs.files) == 0 {
			t.Fatal("pool emptied out")
		}
		if res.OpsPerSec() <= 0 {
			t.Fatal("no transaction rate")
		}
	})
}

func TestPostmarkTransactionCPUSlowsItDown(t *testing.T) {
	run := func(cpu sim.Time) sim.Time {
		var out sim.Time
		runW(t, func(p *sim.Proc) {
			fs := newFakeFS(p.Engine())
			res, err := Postmark{InitialFiles: 10, Transactions: 50, TransactionCPU: cpu, Seed: 6}.Run(p, fs)
			if err != nil {
				t.Fatal(err)
			}
			out = res.Elapsed
		})
		return out
	}
	fast := run(0)
	slow := run(500 * sim.Microsecond)
	if slow < fast+50*500*sim.Microsecond*9/10 {
		t.Fatalf("CPU time not charged: %v vs %v", fast, slow)
	}
}

func TestOLTPTransactions(t *testing.T) {
	runW(t, func(p *sim.Proc) {
		fs := newFakeFS(p.Engine())
		o := OLTP{Rows: 4000, Transactions: 100, Seed: 7}
		res, err := o.Run(p, fs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 100 {
			t.Fatalf("transactions = %d", res.Ops)
		}
		table := fs.files["/oltp.tbl"]
		log := fs.files["/oltp.log"]
		if table == nil || log == nil {
			t.Fatal("OLTP files missing")
		}
		if log.syncs != 100 {
			t.Fatalf("log syncs = %d, want one per transaction", log.syncs)
		}
		if table.writes == 0 {
			t.Fatal("no table updates")
		}
		// Buffer pool keeps reads well under selects*txns.
		if table.reads >= 12*100 {
			t.Fatalf("buffer pool ineffective: %d table reads", table.reads)
		}
	})
}

func TestOLTPRequiresRows(t *testing.T) {
	runW(t, func(p *sim.Proc) {
		fs := newFakeFS(p.Engine())
		if _, err := (OLTP{Transactions: 1}).Run(p, fs); err == nil {
			t.Fatal("OLTP without rows accepted")
		}
	})
}

func TestResultFormatting(t *testing.T) {
	r := Result{Name: "x", Ops: 10, Bytes: 1e6, Elapsed: sim.Second}
	if r.BandwidthMBps() != 1 {
		t.Fatalf("bandwidth = %v", r.BandwidthMBps())
	}
	if r.OpsPerSec() != 10 {
		t.Fatalf("ops/s = %v", r.OpsPerSec())
	}
	if s := r.String(); s == "" {
		t.Fatal("empty render")
	}
	var empty Result
	if empty.BandwidthMBps() != 0 || empty.OpsPerSec() != 0 {
		t.Fatal("zero-elapsed result must report zero rates")
	}
}
