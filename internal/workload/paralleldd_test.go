package workload

import (
	"testing"

	"nesc/internal/sim"
)

func TestParallelDDAggregatesWorkers(t *testing.T) {
	runW(t, func(p *sim.Proc) {
		tgt := &fakeTarget{size: 4 << 20, lat: 10 * sim.Microsecond, bw: 1e9}
		res, err := ParallelDD{BlockBytes: 4096, TotalBytes: 64 * 4096, QD: 4}.Run(p, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 64 {
			t.Fatalf("ops = %d", res.Ops)
		}
		if res.Bytes != 64*4096 {
			t.Fatalf("bytes = %d", res.Bytes)
		}
	})
}

func TestParallelDDScalesWithQD(t *testing.T) {
	// With a fixed per-op latency and infinite bandwidth, QD n cuts elapsed
	// time by ~n.
	elapsed := func(qd int) sim.Time {
		var out sim.Time
		runW(t, func(p *sim.Proc) {
			tgt := &fakeTarget{size: 16 << 20, lat: 50 * sim.Microsecond, bw: 0}
			res, err := ParallelDD{BlockBytes: 4096, TotalBytes: 128 * 4096, QD: qd}.Run(p, tgt)
			if err != nil {
				t.Fatal(err)
			}
			out = res.Elapsed
		})
		return out
	}
	e1 := elapsed(1)
	e4 := elapsed(4)
	ratio := float64(e1) / float64(e4)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("QD4 speedup = %.2f, want ~4", ratio)
	}
}

func TestParallelDDRegionsDisjoint(t *testing.T) {
	runW(t, func(p *sim.Proc) {
		// A target that fails on out-of-region access would error if
		// regions overlapped or escaped the device; exercise heavily.
		tgt := &fakeTarget{size: 1 << 20, lat: sim.Microsecond, bw: 1e9}
		if _, err := (ParallelDD{BlockBytes: 4096, TotalBytes: 2 << 20, QD: 8, Write: true}).Run(p, tgt); err != nil {
			t.Fatal(err)
		}
	})
}

func TestParallelDDValidation(t *testing.T) {
	runW(t, func(p *sim.Proc) {
		tgt := &fakeTarget{size: 8192}
		if _, err := (ParallelDD{QD: 2}).Run(p, tgt); err == nil {
			t.Fatal("zero geometry accepted")
		}
		if _, err := (ParallelDD{BlockBytes: 4096, TotalBytes: 1 << 20, QD: 100}).Run(p, tgt); err == nil {
			t.Fatal("QD larger than target accepted")
		}
	})
}
