package workload

import (
	"fmt"
	"math/rand"

	"nesc/internal/sim"
)

// OLTP reproduces the paper's MySQL-serving-SysBench-OLTP workload (§VI,
// Table II: "relational database server serving the SysBench OLTP
// workload"): a paged table file receives transactions mixing point selects
// with updates; updates append to a write-ahead log and sync it at commit,
// the standard InnoDB-style discipline. CPUPerQuery models the database's
// compute per query so storage is only part of each transaction — which is
// why the paper's application speedups (Fig. 12) are far smaller than its
// raw-device speedups.
type OLTP struct {
	// Rows sizes the table.
	Rows int
	// RowBytes is the row payload (SysBench uses ~250 B rows).
	RowBytes int
	// PageBytes is the table page size (database block).
	PageBytes int
	// Transactions is the measured transaction count.
	Transactions int
	// SelectsPerTxn / UpdatesPerTxn mirror SysBench OLTP's mix
	// (10 point selects, 2 updates per transaction by default).
	SelectsPerTxn int
	UpdatesPerTxn int
	// CPUPerQuery is the database compute per query.
	CPUPerQuery sim.Time
	// BufferPoolPages models the database cache: that many hot pages hit in
	// memory and skip storage.
	BufferPoolPages int
	Seed            int64
}

// RunPrepared executes against an already prepared table/log pair.
func (o OLTP) run(p *sim.Proc, table, log ByteTarget) (Result, error) {
	res := Result{Name: "oltp"}
	rowsPerPage := o.PageBytes / o.RowBytes
	pages := (o.Rows + rowsPerPage - 1) / rowsPerPage
	rng := rand.New(rand.NewSource(o.Seed))
	cached := make(map[int]bool, o.BufferPoolPages)
	var cacheOrder []int
	touch := func(page int) bool {
		if cached[page] {
			return true
		}
		cached[page] = true
		cacheOrder = append(cacheOrder, page)
		if len(cacheOrder) > o.BufferPoolPages {
			old := cacheOrder[0]
			cacheOrder = cacheOrder[1:]
			delete(cached, old)
		}
		return false
	}
	logOff := int64(0)
	start := p.Now()
	for i := 0; i < o.Transactions; i++ {
		err := timeOp(p, &res, 0, func() error {
			for q := 0; q < o.SelectsPerTxn; q++ {
				p.Sleep(o.CPUPerQuery)
				page := rng.Intn(pages)
				if touch(page) {
					continue // buffer pool hit
				}
				if err := table.ReadAt(p, int64(page)*int64(o.PageBytes), o.PageBytes); err != nil {
					return err
				}
				res.Bytes += int64(o.PageBytes)
			}
			dirty := 0
			for q := 0; q < o.UpdatesPerTxn; q++ {
				p.Sleep(o.CPUPerQuery)
				page := rng.Intn(pages)
				if !touch(page) {
					if err := table.ReadAt(p, int64(page)*int64(o.PageBytes), o.PageBytes); err != nil {
						return err
					}
					res.Bytes += int64(o.PageBytes)
				}
				if err := table.WriteAt(p, int64(page)*int64(o.PageBytes), o.PageBytes); err != nil {
					return err
				}
				res.Bytes += int64(o.PageBytes)
				dirty++
			}
			if dirty > 0 {
				// Commit: append the redo record and fsync the log.
				rec := 128 * dirty
				if err := log.WriteAt(p, logOff, rec); err != nil {
					return err
				}
				logOff += int64(rec)
				res.Bytes += int64(rec)
				if err := log.Sync(p); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return res, err
		}
	}
	res.Elapsed = p.Now() - start
	return res, nil
}

// Run prepares the table and log files on fs and executes the transactions.
func (o OLTP) Run(p *sim.Proc, fs FS) (Result, error) {
	if o.RowBytes == 0 {
		o.RowBytes = 256
	}
	if o.PageBytes == 0 {
		o.PageBytes = 4096
	}
	if o.SelectsPerTxn == 0 {
		o.SelectsPerTxn = 10
	}
	if o.UpdatesPerTxn == 0 {
		o.UpdatesPerTxn = 2
	}
	if o.CPUPerQuery == 0 {
		o.CPUPerQuery = 25 * sim.Microsecond
	}
	if o.BufferPoolPages == 0 {
		o.BufferPoolPages = 64
	}
	if o.Rows == 0 {
		return Result{}, fmt.Errorf("workload: OLTP needs Rows")
	}
	table, err := fs.Create(p, "/oltp.tbl")
	if err != nil {
		return Result{}, err
	}
	rowsPerPage := o.PageBytes / o.RowBytes
	pages := (o.Rows + rowsPerPage - 1) / rowsPerPage
	for pg := 0; pg < pages; pg++ {
		if err := table.WriteAt(p, int64(pg)*int64(o.PageBytes), o.PageBytes); err != nil {
			return Result{}, err
		}
	}
	log, err := fs.Create(p, "/oltp.log")
	if err != nil {
		return Result{}, err
	}
	return o.run(p, table, log)
}
