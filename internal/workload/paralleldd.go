package workload

import (
	"fmt"

	"nesc/internal/sim"
)

// ParallelDD is dd at queue depth > 1: QD workers stream disjoint regions
// of the target concurrently (fio-style iodepth). It exposes how much
// request-level parallelism each virtualization backend can absorb — NeSC's
// hardware pipeline scales until the medium saturates, while software
// backends serialize on their per-request CPU costs.
type ParallelDD struct {
	BlockBytes int
	// TotalBytes is the aggregate volume across all workers.
	TotalBytes int64
	QD         int
	Write      bool
}

// Run executes the workers and aggregates their results.
func (d ParallelDD) Run(p *sim.Proc, t ByteTarget) (Result, error) {
	if d.QD < 1 {
		d.QD = 1
	}
	res := Result{Name: fmt.Sprintf("dd qd=%d bs=%d", d.QD, d.BlockBytes)}
	if d.BlockBytes <= 0 || d.TotalBytes <= 0 {
		return res, fmt.Errorf("workload: bad parallel dd geometry")
	}
	region := t.Size() / int64(d.QD)
	region -= region % int64(d.BlockBytes)
	if region < int64(d.BlockBytes) {
		return res, fmt.Errorf("workload: target too small for QD %d", d.QD)
	}
	perWorker := d.TotalBytes / int64(d.QD)

	eng := p.Engine()
	wg := sim.NewWaitGroup(eng)
	results := make([]Result, d.QD)
	errs := make([]error, d.QD)
	start := p.Now()
	for w := 0; w < d.QD; w++ {
		w := w
		wg.Add(1)
		eng.Go("pdd-worker", func(q *sim.Proc) {
			defer wg.Done()
			dd := DD{
				BlockBytes:  d.BlockBytes,
				TotalBytes:  perWorker,
				Write:       d.Write,
				StartOffset: int64(w) * region,
			}
			results[w], errs[w] = dd.Run(q, &regionTarget{t: t, base: int64(w) * region, size: region})
		})
	}
	wg.WaitFor(p)
	res.Elapsed = p.Now() - start
	for w := 0; w < d.QD; w++ {
		if errs[w] != nil {
			return res, errs[w]
		}
		res.Ops += results[w].Ops
		res.Bytes += results[w].Bytes
		for _, v := range []float64{results[w].Lat.Mean()} {
			res.Lat.Add(v) // per-worker means; fine for aggregate reporting
		}
	}
	return res, nil
}

// regionTarget confines a worker to its slice of the device so concurrent
// workers never overlap.
type regionTarget struct {
	t    ByteTarget
	base int64
	size int64
}

func (r *regionTarget) Size() int64 { return r.size }
func (r *regionTarget) ReadAt(p *sim.Proc, off int64, n int) error {
	return r.t.ReadAt(p, r.base+off%r.size, n)
}
func (r *regionTarget) WriteAt(p *sim.Proc, off int64, n int) error {
	return r.t.WriteAt(p, r.base+off%r.size, n)
}
func (r *regionTarget) Sync(p *sim.Proc) error { return r.t.Sync(p) }
