package workload

import (
	"fmt"

	"nesc/internal/sim"
)

// DD is the GNU dd microbenchmark of §VII-A: sequential raw transfers with a
// configurable block size, queue depth 1.
type DD struct {
	// BlockBytes is the dd bs= parameter.
	BlockBytes int
	// TotalBytes bounds the transfer (count = TotalBytes / BlockBytes).
	TotalBytes int64
	// Write selects the direction.
	Write bool
	// StartOffset lets sweeps avoid re-touching the same blocks.
	StartOffset int64
}

// Run executes the transfer against t.
func (d DD) Run(p *sim.Proc, t ByteTarget) (Result, error) {
	res := Result{Name: fmt.Sprintf("dd bs=%d %s", d.BlockBytes, map[bool]string{true: "write", false: "read"}[d.Write])}
	if d.BlockBytes <= 0 || d.TotalBytes <= 0 {
		return res, fmt.Errorf("workload: bad dd geometry")
	}
	count := d.TotalBytes / int64(d.BlockBytes)
	if count == 0 {
		count = 1
	}
	size := t.Size()
	start := p.Now()
	for i := int64(0); i < count; i++ {
		off := d.StartOffset + i*int64(d.BlockBytes)
		if off+int64(d.BlockBytes) > size {
			off = (off + int64(d.BlockBytes)) % size // wrap within the device
			off -= off % int64(d.BlockBytes)
		}
		err := timeOp(p, &res, int64(d.BlockBytes), func() error {
			if d.Write {
				return t.WriteAt(p, off, d.BlockBytes)
			}
			return t.ReadAt(p, off, d.BlockBytes)
		})
		if err != nil {
			return res, err
		}
	}
	res.Elapsed = p.Now() - start
	return res, nil
}
