package workload

import (
	"fmt"
	"math/rand"

	"nesc/internal/sim"
)

// Postmark reproduces the PostMark mail-server benchmark (§VI, Table II):
// an initial pool of small files receives a transaction mix where each
// transaction pairs a create-or-delete with a read-or-append, using file
// sizes drawn uniformly from [MinFileBytes, MaxFileBytes] — the classic
// metadata-heavy small-file load of an MTA spool.
type Postmark struct {
	// InitialFiles seeds the pool.
	InitialFiles int
	// Transactions is the measured transaction count.
	Transactions int
	// MinFileBytes / MaxFileBytes bound file sizes (defaults 500 / 9.77 KB,
	// PostMark's defaults).
	MinFileBytes int
	MaxFileBytes int
	// ReadBlockBytes is the read/append unit (PostMark default 512).
	ReadBlockBytes int
	// TransactionCPU models the mail server's per-transaction compute
	// (parsing, queueing).
	TransactionCPU sim.Time
	Seed           int64
}

type pmFile struct {
	name string
	f    ByteTarget
	size int
}

// Run seeds the pool and executes the transaction mix.
func (pm Postmark) Run(p *sim.Proc, fs FS) (Result, error) {
	res := Result{Name: "postmark"}
	if pm.MinFileBytes == 0 {
		pm.MinFileBytes = 500
	}
	if pm.MaxFileBytes == 0 {
		pm.MaxFileBytes = 10000
	}
	if pm.ReadBlockBytes == 0 {
		pm.ReadBlockBytes = 512
	}
	rng := rand.New(rand.NewSource(pm.Seed))
	var pool []pmFile
	next := 0
	create := func() error {
		name := fmt.Sprintf("/pm%06d", next)
		next++
		f, err := fs.Create(p, name)
		if err != nil {
			return err
		}
		size := pm.MinFileBytes + rng.Intn(pm.MaxFileBytes-pm.MinFileBytes+1)
		if err := f.WriteAt(p, 0, size); err != nil {
			return err
		}
		pool = append(pool, pmFile{name: name, f: f, size: size})
		return nil
	}
	// Pool setup (not measured, as in PostMark).
	for i := 0; i < pm.InitialFiles; i++ {
		if err := create(); err != nil {
			return res, err
		}
	}
	start := p.Now()
	for i := 0; i < pm.Transactions; i++ {
		err := timeOp(p, &res, 0, func() error {
			p.Sleep(pm.TransactionCPU)
			// Half of each transaction: create or delete.
			if rng.Intn(2) == 0 || len(pool) == 0 {
				if err := create(); err != nil {
					return err
				}
			} else {
				k := rng.Intn(len(pool))
				victim := pool[k]
				pool[k] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
				if err := fs.Remove(p, victim.name); err != nil {
					return err
				}
			}
			if len(pool) == 0 {
				return nil
			}
			// Other half: read whole file or append.
			k := rng.Intn(len(pool))
			target := &pool[k]
			if rng.Intn(2) == 0 {
				for off := 0; off < target.size; off += pm.ReadBlockBytes {
					n := pm.ReadBlockBytes
					if off+n > target.size {
						n = target.size - off
					}
					if err := target.f.ReadAt(p, int64(off), n); err != nil {
						return err
					}
					res.Bytes += int64(n)
				}
			} else {
				n := pm.ReadBlockBytes + rng.Intn(pm.ReadBlockBytes)
				if err := target.f.WriteAt(p, int64(target.size), n); err != nil {
					return err
				}
				target.size += n
				res.Bytes += int64(n)
			}
			return nil
		})
		if err != nil {
			return res, err
		}
	}
	res.Elapsed = p.Now() - start
	return res, nil
}
