package workload

import (
	"fmt"
	"math/rand"

	"nesc/internal/sim"
)

// SysbenchIO reproduces the Sysbench file-I/O benchmark (§VI, Table II:
// "a sequence of random file operations"): a prepared file receives a mix of
// random reads and writes with periodic fsyncs, mirroring sysbench's
// `fileio --file-test-mode=rndrw` defaults (reads:writes = 1.5, fsync every
// 100 requests).
type SysbenchIO struct {
	// FileBytes is the prepared-file size.
	FileBytes int64
	// Ops is the number of I/O requests.
	Ops int
	// RequestBytes is the I/O unit (sysbench default 16 KB).
	RequestBytes int
	// ReadRatio is the fraction of reads (default 0.6).
	ReadRatio float64
	// FsyncEvery issues a sync after this many writes (default 100).
	FsyncEvery int
	// Seed makes the op sequence deterministic.
	Seed int64
}

// Prepare creates and fills the test file ("sysbench prepare").
func (s SysbenchIO) Prepare(p *sim.Proc, fs FS, name string) (ByteTarget, error) {
	f, err := fs.Create(p, name)
	if err != nil {
		return nil, err
	}
	const chunk = 256 * 1024
	for off := int64(0); off < s.FileBytes; off += chunk {
		n := int64(chunk)
		if off+n > s.FileBytes {
			n = s.FileBytes - off
		}
		if err := f.WriteAt(p, off, int(n)); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Run executes the request mix ("sysbench run").
func (s SysbenchIO) Run(p *sim.Proc, f ByteTarget) (Result, error) {
	res := Result{Name: "sysbench-io"}
	if s.RequestBytes == 0 {
		s.RequestBytes = 16 * 1024
	}
	if s.ReadRatio == 0 {
		s.ReadRatio = 0.6
	}
	if s.FsyncEvery == 0 {
		s.FsyncEvery = 100
	}
	if s.FileBytes == 0 {
		s.FileBytes = f.Size()
	}
	if s.FileBytes < int64(s.RequestBytes) {
		return res, fmt.Errorf("workload: file smaller than request size")
	}
	rng := rand.New(rand.NewSource(s.Seed))
	slots := s.FileBytes / int64(s.RequestBytes)
	writesSinceSync := 0
	start := p.Now()
	for i := 0; i < s.Ops; i++ {
		off := rng.Int63n(slots) * int64(s.RequestBytes)
		isRead := rng.Float64() < s.ReadRatio
		err := timeOp(p, &res, int64(s.RequestBytes), func() error {
			if isRead {
				return f.ReadAt(p, off, s.RequestBytes)
			}
			if err := f.WriteAt(p, off, s.RequestBytes); err != nil {
				return err
			}
			writesSinceSync++
			if writesSinceSync >= s.FsyncEvery {
				writesSinceSync = 0
				return f.Sync(p)
			}
			return nil
		})
		if err != nil {
			return res, err
		}
	}
	res.Elapsed = p.Now() - start
	return res, nil
}
