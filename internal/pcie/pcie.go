// Package pcie models the PCIe interconnect between the host and the NeSC
// device: function addressing (routing IDs, the bus:device:function triplet
// of the paper), BAR-mapped MMIO with read/write timing, DMA with per-TLP
// overhead and link-bandwidth serialization, MSI interrupts, an optional
// IOMMU (the prototype in the paper runs without one, which is why it needs
// trampoline buffers), and the SR-IOV capability that lets one physical
// device expose virtual functions.
//
// Timing model: the link is full duplex. Device-initiated reads of host
// memory consume host-to-device completion bandwidth and pay a round-trip
// request latency; device writes and MSIs consume device-to-host bandwidth.
// MMIO reads are non-posted (the CPU stalls for a round trip); MMIO writes
// are posted.
package pcie

import (
	"fmt"

	"nesc/internal/fault"
	"nesc/internal/hostmem"
	"nesc/internal/sim"
)

// FnID identifies a PCIe function on the fabric (a compressed
// bus:device:function routing ID). The fabric originates it on every
// transaction, so — exactly as in the paper — it is unforgeable by clients.
type FnID uint16

// BDF is the conventional bus:device:function rendering of a routing ID.
type BDF struct{ Bus, Dev, Fn uint8 }

func (b BDF) String() string { return fmt.Sprintf("%02x:%02x.%x", b.Bus, b.Dev, b.Fn) }

// BDF decodes a routing ID into bus/device/function fields.
func (id FnID) BDF() BDF {
	return BDF{Bus: uint8(id >> 8), Dev: uint8(id>>3) & 0x1f, Fn: uint8(id) & 0x7}
}

// Device is the fabric-facing interface a PCIe endpoint implements. MMIO
// handlers run in engine context and must not block; long operations are
// modeled by scheduling further events.
type Device interface {
	// PCIeName identifies the device in diagnostics.
	PCIeName() string
	// MMIORead services a non-posted read of `size` bytes at BAR offset off.
	MMIORead(off int64, size int) uint64
	// MMIOWrite services a posted write at BAR offset off.
	MMIOWrite(off int64, size int, val uint64)
}

// Params sets the fabric cost model.
type Params struct {
	// LinkBandwidth is the payload bandwidth of each link direction in
	// bytes/second (PCIe gen2 x8 ≈ 3.2 GB/s effective).
	LinkBandwidth float64
	// TLPOverheadBytes is the per-transfer framing overhead folded into
	// serialization (headers, DLLP traffic).
	TLPOverheadBytes int64
	// MaxPayload is the maximum TLP payload; larger DMAs are split and pay
	// the overhead per TLP.
	MaxPayload int64
	// DMARequestLatency is the one-way request latency of a device-initiated
	// read before completion data starts flowing.
	DMARequestLatency sim.Time
	// PropagationLatency is the one-way wire+switch latency of any TLP.
	PropagationLatency sim.Time
	// MMIOReadLatency is the full CPU-visible round trip of a non-posted
	// read.
	MMIOReadLatency sim.Time
	// MMIOWriteLatency is the CPU-side cost of issuing a posted write.
	MMIOWriteLatency sim.Time
	// MSILatency is the delivery cost of a message-signaled interrupt from
	// device doorbell to host handler dispatch.
	MSILatency sim.Time
}

// DefaultParams returns a PCIe gen2 x8 cost model matching the paper's
// prototype platform (Table I).
func DefaultParams() Params {
	return Params{
		LinkBandwidth:      3.2e9,
		TLPOverheadBytes:   24,
		MaxPayload:         256,
		DMARequestLatency:  600 * sim.Nanosecond,
		PropagationLatency: 200 * sim.Nanosecond,
		MMIOReadLatency:    900 * sim.Nanosecond,
		MMIOWriteLatency:   150 * sim.Nanosecond,
		MSILatency:         900 * sim.Nanosecond,
	}
}

// barWindow records one device's slice of the fabric's flat MMIO space.
type barWindow struct {
	base, size int64
	dev        Device
}

type fnRecord struct {
	id   FnID
	name string
}

// MSIHandler receives interrupts raised on the fabric. It runs in engine
// context.
type MSIHandler func(from FnID, vector uint8)

// Fabric is the interconnect instance: it owns the address maps, the two
// link directions, the IOMMU, and the MSI delivery path.
type Fabric struct {
	Eng    *sim.Engine
	Mem    *hostmem.Memory
	Params Params

	toHost *sim.Link // device -> host direction
	toDev  *sim.Link // host -> device direction

	bars    []barWindow
	nextBar int64
	fns     []fnRecord

	iommu *IOMMU

	msiHandler MSIHandler

	// msiVectors records how many MSI vectors each function allocated. A
	// function with no entry is unconstrained (legacy single-vector devices
	// never call AllocMSIVectors).
	msiVectors map[FnID]int

	inj *fault.Injector

	// Counters for tests and reporting.
	DMAReads, DMAWrites   int64
	DMAReadBytes          int64
	DMAWriteBytes         int64
	MSIs                  int64
	MMIOReads, MMIOWrites int64
	// Fault-injection counters: TLP-level DMA rejections, MSIs dropped on the
	// wire, and MSIs delivered late.
	DMAFaultsInjected int64
	DroppedMSIs       int64
	DelayedMSIs       int64
	// BadMSIVectors counts interrupts raised on a vector beyond the
	// function's allocated range; they are dropped, as real MSI hardware
	// would.
	BadMSIVectors int64
}

// New creates a fabric over the given engine and host memory.
func New(eng *sim.Engine, mem *hostmem.Memory, p Params) *Fabric {
	return &Fabric{
		Eng:        eng,
		Mem:        mem,
		Params:     p,
		toHost:     sim.NewLink(eng, p.LinkBandwidth, p.PropagationLatency, 0),
		toDev:      sim.NewLink(eng, p.LinkBandwidth, p.PropagationLatency, 0),
		nextBar:    0x1000, // leave page zero unmapped to catch stray accesses
		iommu:      &IOMMU{grants: make(map[FnID][]span)},
		msiVectors: make(map[FnID]int),
	}
}

// IOMMU returns the fabric's IOMMU (disabled by default, as in the paper's
// prototype).
func (f *Fabric) IOMMU() *IOMMU { return f.iommu }

// SetInjector installs a fault injector on the fabric (nil disables
// injection).
func (f *Fabric) SetInjector(inj *fault.Injector) { f.inj = inj }

// RegisterFunction assigns the next routing ID to a named function and
// returns it. The first registered function of a device conventionally is
// its physical function.
func (f *Fabric) RegisterFunction(name string) FnID {
	id := FnID(len(f.fns))
	f.fns = append(f.fns, fnRecord{id: id, name: name})
	return id
}

// FunctionName reports the registered name for a routing ID.
func (f *Fabric) FunctionName(id FnID) string {
	if int(id) >= len(f.fns) {
		return fmt.Sprintf("fn%d(unregistered)", id)
	}
	return f.fns[id].name
}

// MapBAR assigns a BAR window of the given size to dev and returns its bus
// base address.
func (f *Fabric) MapBAR(dev Device, size int64) int64 {
	const align = 0x1000
	base := (f.nextBar + align - 1) &^ (align - 1)
	f.bars = append(f.bars, barWindow{base: base, size: size, dev: dev})
	f.nextBar = base + size
	return base
}

func (f *Fabric) route(busAddr int64) (Device, int64, error) {
	for _, w := range f.bars {
		if busAddr >= w.base && busAddr < w.base+w.size {
			return w.dev, busAddr - w.base, nil
		}
	}
	return nil, 0, fmt.Errorf("pcie: no BAR maps bus address %#x", busAddr)
}

// MMIORead performs a non-posted CPU read of a device register, stalling the
// calling process for the round-trip latency.
func (f *Fabric) MMIORead(p *sim.Proc, busAddr int64, size int) (uint64, error) {
	dev, off, err := f.route(busAddr)
	if err != nil {
		return 0, err
	}
	f.MMIOReads++
	p.Sleep(f.Params.MMIOReadLatency)
	return dev.MMIORead(off, size), nil
}

// MMIOWrite performs a posted CPU write of a device register. The calling
// process pays only the issue cost; delivery happens after the propagation
// latency.
func (f *Fabric) MMIOWrite(p *sim.Proc, busAddr int64, size int, val uint64) error {
	dev, off, err := f.route(busAddr)
	if err != nil {
		return err
	}
	f.MMIOWrites++
	if p != nil {
		p.Sleep(f.Params.MMIOWriteLatency)
	}
	f.Eng.After(f.Params.PropagationLatency, func() {
		dev.MMIOWrite(off, size, val)
	})
	return nil
}

// tlpCount reports how many TLPs an n-byte DMA splits into.
func (f *Fabric) tlpCount(n int64) int64 {
	mp := f.Params.MaxPayload
	if mp <= 0 {
		return 1
	}
	c := (n + mp - 1) / mp
	if c < 1 {
		c = 1
	}
	return c
}

// DMARead copies len(p) bytes of host memory at addr into p on behalf of
// function `from`, invoking done when the completion data has fully arrived
// at the device. The data flows on the host-to-device link.
func (f *Fabric) DMARead(from FnID, addr hostmem.Addr, p []byte, done func()) error {
	if err := f.iommu.Check(from, addr, int64(len(p))); err != nil {
		return err
	}
	dec := f.inj.Decide(fault.DMARead)
	if dec.Fault {
		f.DMAFaultsInjected++
		return fmt.Errorf("pcie: injected DMA read fault: fn %d addr %#x", from, addr)
	}
	f.DMAReads++
	f.DMAReadBytes += int64(len(p))
	n := int64(len(p))
	wire := n + f.tlpCount(n)*f.Params.TLPOverheadBytes
	f.Eng.After(f.Params.DMARequestLatency+dec.Delay, func() {
		f.toDev.Transfer(wire, func() {
			// Snapshot memory at completion time: DMA sees the bytes present
			// when the data phase finishes.
			if err := f.Mem.Read(addr, p); err != nil {
				panic(err) // range was validated above; failure is a model bug
			}
			done()
		})
	})
	return nil
}

// DMAWrite copies p into host memory at addr on behalf of function `from`,
// invoking done when the posted write has drained onto the link.
func (f *Fabric) DMAWrite(from FnID, addr hostmem.Addr, p []byte, done func()) error {
	if err := f.iommu.Check(from, addr, int64(len(p))); err != nil {
		return err
	}
	dec := f.inj.Decide(fault.DMAWrite)
	if dec.Fault {
		f.DMAFaultsInjected++
		return fmt.Errorf("pcie: injected DMA write fault: fn %d addr %#x", from, addr)
	}
	f.DMAWrites++
	f.DMAWriteBytes += int64(len(p))
	n := int64(len(p))
	wire := n + f.tlpCount(n)*f.Params.TLPOverheadBytes
	data := make([]byte, len(p))
	copy(data, p)
	f.toHost.Transfer(wire, func() {
		f.after(dec.Delay, func() {
			if err := f.Mem.Write(addr, data); err != nil {
				panic(err)
			}
			done()
		})
	})
	return nil
}

// DMAZero writes n zero bytes to host memory at addr (the paper's
// hole-read path: unmapped vLBAs "read as zeros" and NeSC "transparently
// DMAs zeros to the destination buffer").
func (f *Fabric) DMAZero(from FnID, addr hostmem.Addr, n int64, done func()) error {
	if err := f.iommu.Check(from, addr, n); err != nil {
		return err
	}
	dec := f.inj.Decide(fault.DMAWrite)
	if dec.Fault {
		f.DMAFaultsInjected++
		return fmt.Errorf("pcie: injected DMA write fault: fn %d addr %#x", from, addr)
	}
	f.DMAWrites++
	f.DMAWriteBytes += n
	wire := n + f.tlpCount(n)*f.Params.TLPOverheadBytes
	f.toHost.Transfer(wire, func() {
		f.after(dec.Delay, func() {
			if err := f.Mem.Zero(addr, n); err != nil {
				panic(err)
			}
			done()
		})
	})
	return nil
}

// SetMSIHandler installs the host-side interrupt dispatcher.
func (f *Fabric) SetMSIHandler(h MSIHandler) { f.msiHandler = h }

// AllocMSIVectors records that function id enabled n MSI vectors (the MSI
// capability's multiple-message enable). Interrupts raised on vectors >= n
// are dropped and counted in BadMSIVectors.
func (f *Fabric) AllocMSIVectors(id FnID, n int) {
	f.msiVectors[id] = n
}

// MSIVectors reports how many MSI vectors id allocated (0 if it never
// called AllocMSIVectors, in which case delivery is unconstrained).
func (f *Fabric) MSIVectors(id FnID) int { return f.msiVectors[id] }

// after invokes fn now or after an injected extra delay.
func (f *Fabric) after(delay sim.Time, fn func()) {
	if delay > 0 {
		f.Eng.After(delay, fn)
		return
	}
	fn()
}

// RaiseMSI delivers a message-signaled interrupt from a function to the
// host. An injected fault silently drops the interrupt on the wire — the
// raising function believes it was delivered.
func (f *Fabric) RaiseMSI(from FnID, vector uint8) {
	if n, ok := f.msiVectors[from]; ok && int(vector) >= n {
		f.BadMSIVectors++
		return
	}
	dec := f.inj.Decide(fault.MSI)
	if dec.Fault {
		f.DroppedMSIs++
		return
	}
	if dec.Delay > 0 {
		f.DelayedMSIs++
	}
	f.MSIs++
	f.Eng.After(f.Params.MSILatency+dec.Delay, func() {
		if f.msiHandler != nil {
			f.msiHandler(from, vector)
		}
	})
}

// HostLink exposes the device-to-host link for utilization reporting.
func (f *Fabric) HostLink() *sim.Link { return f.toHost }

// DevLink exposes the host-to-device link for utilization reporting.
func (f *Fabric) DevLink() *sim.Link { return f.toDev }

// span is a granted DMA window.
type span struct{ base, size int64 }

// IOMMU validates device-initiated DMA against per-function grants. Disabled
// (the default) it admits everything — the paper's prototype platform, where
// "the emulated VFs are not recognized by the IOMMU", so the hypervisor
// interposes trampoline buffers instead.
type IOMMU struct {
	enabled bool
	grants  map[FnID][]span
}

// Enable turns enforcement on.
func (i *IOMMU) Enable() { i.enabled = true }

// Enabled reports whether enforcement is on.
func (i *IOMMU) Enabled() bool { return i.enabled }

// Grant allows function fn to DMA within [base, base+size).
func (i *IOMMU) Grant(fn FnID, base hostmem.Addr, size int64) {
	i.grants[fn] = append(i.grants[fn], span{base, size})
}

// RevokeAll removes every grant for fn (VF teardown).
func (i *IOMMU) RevokeAll(fn FnID) { delete(i.grants, fn) }

// Check validates an access, returning an error on a fault.
func (i *IOMMU) Check(fn FnID, addr hostmem.Addr, size int64) error {
	if !i.enabled {
		return nil
	}
	for _, s := range i.grants[fn] {
		if addr >= s.base && addr+size <= s.base+s.size {
			return nil
		}
	}
	return fmt.Errorf("pcie: IOMMU fault: fn %d access [%#x,%#x) not granted", fn, addr, addr+size)
}

// SRIOVCap describes a device's SR-IOV capability as exposed in (simplified)
// config space: how many VFs it supports and how many are enabled.
type SRIOVCap struct {
	TotalVFs   int
	NumEnabled int
}

// EnableVFs sets the enabled-VF count, clamped to TotalVFs.
func (c *SRIOVCap) EnableVFs(n int) error {
	if n < 0 || n > c.TotalVFs {
		return fmt.Errorf("pcie: cannot enable %d VFs (TotalVFs=%d)", n, c.TotalVFs)
	}
	c.NumEnabled = n
	return nil
}
