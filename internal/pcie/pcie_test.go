package pcie

import (
	"bytes"
	"testing"

	"nesc/internal/fault"
	"nesc/internal/hostmem"
	"nesc/internal/sim"
)

type testDev struct {
	name   string
	regs   map[int64]uint64
	writes []int64
}

func newTestDev(name string) *testDev {
	return &testDev{name: name, regs: make(map[int64]uint64)}
}

func (d *testDev) PCIeName() string                 { return d.name }
func (d *testDev) MMIORead(off int64, _ int) uint64 { return d.regs[off] }
func (d *testDev) MMIOWrite(off int64, _ int, v uint64) {
	d.regs[off] = v
	d.writes = append(d.writes, off)
}

func newFabric() (*Fabric, *sim.Engine, *hostmem.Memory) {
	eng := sim.NewEngine()
	mem := hostmem.New(1 << 20)
	return New(eng, mem, DefaultParams()), eng, mem
}

func TestFnIDBDF(t *testing.T) {
	id := FnID(0x0123)
	bdf := id.BDF()
	if bdf.Bus != 0x01 || bdf.Dev != 0x04 || bdf.Fn != 0x3 {
		t.Fatalf("BDF = %+v", bdf)
	}
	if got := bdf.String(); got != "01:04.3" {
		t.Fatalf("String = %q", got)
	}
}

func TestRegisterFunctionAssignsSequentialIDs(t *testing.T) {
	f, _, _ := newFabric()
	pf := f.RegisterFunction("nesc-pf")
	vf0 := f.RegisterFunction("nesc-vf0")
	if pf != 0 || vf0 != 1 {
		t.Fatalf("ids = %d, %d", pf, vf0)
	}
	if f.FunctionName(pf) != "nesc-pf" {
		t.Fatalf("name = %q", f.FunctionName(pf))
	}
	if f.FunctionName(FnID(99)) == "" {
		t.Fatal("unregistered name must still render")
	}
}

func TestMMIORouting(t *testing.T) {
	f, eng, _ := newFabric()
	d1 := newTestDev("d1")
	d2 := newTestDev("d2")
	b1 := f.MapBAR(d1, 0x2000)
	b2 := f.MapBAR(d2, 0x1000)
	if b1 == b2 || b2 < b1+0x2000 {
		t.Fatalf("BAR overlap: %#x %#x", b1, b2)
	}
	d1.regs[0x10] = 42
	var got uint64
	var rdErr, wrErr error
	var readAt sim.Time
	eng.Go("cpu", func(p *sim.Proc) {
		got, rdErr = f.MMIORead(p, b1+0x10, 8)
		readAt = p.Now()
		wrErr = f.MMIOWrite(p, b2+0x20, 4, 7)
	})
	eng.Run()
	if rdErr != nil || wrErr != nil {
		t.Fatal(rdErr, wrErr)
	}
	if got != 42 {
		t.Fatalf("MMIORead = %d", got)
	}
	if readAt != DefaultParams().MMIOReadLatency {
		t.Fatalf("read stalled %v, want %v", readAt, DefaultParams().MMIOReadLatency)
	}
	if d2.regs[0x20] != 7 {
		t.Fatal("posted write not delivered")
	}
	if f.MMIOReads != 1 || f.MMIOWrites != 1 {
		t.Fatalf("counters: %d reads %d writes", f.MMIOReads, f.MMIOWrites)
	}
}

func TestMMIOUnmappedAddress(t *testing.T) {
	f, eng, _ := newFabric()
	eng.Go("cpu", func(p *sim.Proc) {
		if _, err := f.MMIORead(p, 0x10, 8); err == nil {
			t.Error("read of unmapped bus address succeeded")
		}
		if err := f.MMIOWrite(p, 0x10, 8, 1); err == nil {
			t.Error("write of unmapped bus address succeeded")
		}
	})
	eng.Run()
}

func TestDMAReadWriteRoundTrip(t *testing.T) {
	f, eng, mem := newFabric()
	fn := f.RegisterFunction("dev")
	src := []byte("some payload for the wire")
	buf := make([]byte, len(src))
	addr := mem.MustAlloc(64, 8)

	doneW := false
	if err := f.DMAWrite(fn, addr, src, func() { doneW = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !doneW {
		t.Fatal("DMA write never completed")
	}
	doneR := false
	if err := f.DMARead(fn, addr, buf, func() { doneR = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !doneR || !bytes.Equal(buf, src) {
		t.Fatalf("DMA read = %q", buf)
	}
	if f.DMAReads != 1 || f.DMAWrites != 1 {
		t.Fatalf("counters: %d/%d", f.DMAReads, f.DMAWrites)
	}
	if f.DMAReadBytes != int64(len(src)) || f.DMAWriteBytes != int64(len(src)) {
		t.Fatalf("byte counters: %d/%d", f.DMAReadBytes, f.DMAWriteBytes)
	}
}

func TestDMAWriteSnapshotsSource(t *testing.T) {
	// A posted DMA write must carry the bytes as of submission even if the
	// caller's buffer is reused immediately (real DMA engines copy from a
	// pinned buffer; our model snapshots instead).
	f, eng, mem := newFabric()
	fn := f.RegisterFunction("dev")
	addr := mem.MustAlloc(16, 8)
	p := []byte{1, 2, 3, 4}
	if err := f.DMAWrite(fn, addr, p, func() {}); err != nil {
		t.Fatal(err)
	}
	p[0] = 99
	eng.Run()
	got := make([]byte, 4)
	if err := mem.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("DMA write observed post-submission mutation: % x", got)
	}
}

func TestDMAZero(t *testing.T) {
	f, eng, mem := newFabric()
	fn := f.RegisterFunction("dev")
	addr := mem.MustAlloc(32, 8)
	if err := mem.Write(addr, bytes.Repeat([]byte{0xff}, 32)); err != nil {
		t.Fatal(err)
	}
	done := false
	if err := f.DMAZero(fn, addr, 32, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("DMAZero never completed")
	}
	got := make([]byte, 32)
	if err := mem.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatalf("not zeroed: % x", got)
		}
	}
}

func TestDMATimingScalesWithSize(t *testing.T) {
	f, eng, mem := newFabric()
	fn := f.RegisterFunction("dev")
	addr := mem.MustAlloc(1<<16, 8)
	var smallDone, bigDone sim.Time
	small := make([]byte, 512)
	big := make([]byte, 1<<16)
	if err := f.DMAWrite(fn, addr, small, func() { smallDone = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	f2, eng2, mem2 := newFabric()
	addr2 := mem2.MustAlloc(1<<16, 8)
	if err := f2.DMAWrite(fn, addr2, big, func() { bigDone = eng2.Now() }); err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	if bigDone <= smallDone {
		t.Fatalf("64KB DMA (%v) not slower than 512B DMA (%v)", bigDone, smallDone)
	}
	// 64KB at 3.2GB/s is ~20.5us of serialization; allow overheads.
	if bigDone < 20*sim.Microsecond {
		t.Fatalf("64KB DMA too fast: %v", bigDone)
	}
	_ = addr
}

func TestMSIDelivery(t *testing.T) {
	f, eng, _ := newFabric()
	fn := f.RegisterFunction("dev")
	var gotFn FnID
	var gotVec uint8
	var at sim.Time
	f.SetMSIHandler(func(from FnID, vector uint8) {
		gotFn, gotVec = from, vector
		at = eng.Now()
	})
	f.RaiseMSI(fn, 3)
	eng.Run()
	if gotFn != fn || gotVec != 3 {
		t.Fatalf("MSI = fn%d vec%d", gotFn, gotVec)
	}
	if at != DefaultParams().MSILatency {
		t.Fatalf("MSI delivered at %v", at)
	}
	if f.MSIs != 1 {
		t.Fatalf("MSI counter = %d", f.MSIs)
	}
}

func TestMSIWithoutHandlerIsDropped(t *testing.T) {
	f, eng, _ := newFabric()
	f.RaiseMSI(0, 1)
	eng.Run() // must not panic
}

func TestIOMMUEnforcement(t *testing.T) {
	f, eng, mem := newFabric()
	vf := f.RegisterFunction("vf")
	other := f.RegisterFunction("other")
	f.IOMMU().Enable()
	buf := mem.MustAlloc(4096, 8)
	f.IOMMU().Grant(vf, buf, 4096)

	p := make([]byte, 64)
	if err := f.DMARead(vf, buf, p, func() {}); err != nil {
		t.Fatalf("granted DMA rejected: %v", err)
	}
	if err := f.DMARead(vf, buf+4096-32, make([]byte, 64), func() {}); err == nil {
		t.Fatal("DMA spanning past grant accepted")
	}
	if err := f.DMARead(other, buf, p, func() {}); err == nil {
		t.Fatal("DMA by ungranted function accepted")
	}
	if err := f.DMAWrite(other, buf, p, func() {}); err == nil {
		t.Fatal("DMA write by ungranted function accepted")
	}
	f.IOMMU().RevokeAll(vf)
	if err := f.DMARead(vf, buf, p, func() {}); err == nil {
		t.Fatal("DMA after revoke accepted")
	}
	eng.Run()
}

func TestIOMMUDisabledAdmitsEverything(t *testing.T) {
	f, eng, mem := newFabric()
	fn := f.RegisterFunction("dev")
	addr := mem.MustAlloc(64, 8)
	if err := f.DMAWrite(fn, addr, make([]byte, 64), func() {}); err != nil {
		t.Fatalf("disabled IOMMU rejected DMA: %v", err)
	}
	eng.Run()
}

func TestSRIOVCap(t *testing.T) {
	c := SRIOVCap{TotalVFs: 64}
	if err := c.EnableVFs(64); err != nil {
		t.Fatal(err)
	}
	if c.NumEnabled != 64 {
		t.Fatalf("NumEnabled = %d", c.NumEnabled)
	}
	if err := c.EnableVFs(65); err == nil {
		t.Fatal("enabling more VFs than TotalVFs succeeded")
	}
	if err := c.EnableVFs(-1); err == nil {
		t.Fatal("negative VF count accepted")
	}
}

func TestTLPCount(t *testing.T) {
	f, _, _ := newFabric()
	cases := []struct {
		n    int64
		want int64
	}{{0, 1}, {1, 1}, {256, 1}, {257, 2}, {1024, 4}}
	for _, c := range cases {
		if got := f.tlpCount(c.n); got != c.want {
			t.Errorf("tlpCount(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestConcurrentDMAsSerializeOnLink(t *testing.T) {
	f, eng, mem := newFabric()
	fn := f.RegisterFunction("dev")
	addr := mem.MustAlloc(1<<20>>1, 8)
	// Two 64KB writes back to back must take ~2x one write's serialization.
	var t1, t2 sim.Time
	buf := make([]byte, 1<<16)
	if err := f.DMAWrite(fn, addr, buf, func() { t1 = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := f.DMAWrite(fn, addr, buf, func() { t2 = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if t2 < t1+(t1-DefaultParams().PropagationLatency)*9/10 {
		t.Fatalf("second DMA (%v) did not serialize behind first (%v)", t2, t1)
	}
}

func TestDMAFaultInjection(t *testing.T) {
	f, eng, _ := newFabric()
	plan := fault.Plan{Seed: 2}
	plan.Sites[fault.DMARead] = fault.SiteParams{OneShot: []int64{1}}
	plan.Sites[fault.DMAWrite] = fault.SiteParams{OneShot: []int64{2}}
	f.SetInjector(fault.NewInjector(plan))

	buf := make([]byte, 512)
	if err := f.DMARead(1, 0x1000, buf, func() {}); err == nil {
		t.Fatal("injected DMA read fault not surfaced")
	}
	if err := f.DMARead(1, 0x1000, buf, func() {}); err != nil {
		t.Fatalf("second DMA read failed: %v", err)
	}
	if err := f.DMAWrite(1, 0x2000, buf, func() {}); err != nil {
		t.Fatalf("first DMA write failed: %v", err)
	}
	if err := f.DMAWrite(1, 0x2000, buf, func() {}); err == nil {
		t.Fatal("injected DMA write fault not surfaced")
	}
	eng.Run()
	if f.DMAFaultsInjected != 2 {
		t.Fatalf("DMAFaultsInjected = %d, want 2", f.DMAFaultsInjected)
	}
	// Rejected transfers must not count as performed DMA.
	if f.DMAReads != 1 || f.DMAWrites != 1 {
		t.Fatalf("op counters: reads=%d writes=%d, want 1/1", f.DMAReads, f.DMAWrites)
	}
}

func TestMSIDropAndDelay(t *testing.T) {
	f, eng, _ := newFabric()
	plan := fault.Plan{Seed: 4}
	plan.Sites[fault.MSI] = fault.SiteParams{OneShot: []int64{1}, DelayProb: 1.0, Delay: 7 * sim.Microsecond}
	f.SetInjector(fault.NewInjector(plan))

	var deliveries []sim.Time
	f.SetMSIHandler(func(from FnID, vector uint8) {
		deliveries = append(deliveries, eng.Now())
	})
	f.RaiseMSI(3, 0) // dropped (one-shot)
	f.RaiseMSI(3, 0) // delivered with injected delay
	eng.Run()
	if len(deliveries) != 1 {
		t.Fatalf("delivered %d MSIs, want 1", len(deliveries))
	}
	want := f.Params.MSILatency + 7*sim.Microsecond
	if deliveries[0] != want {
		t.Fatalf("delayed MSI arrived at %v, want %v", deliveries[0], want)
	}
	if f.DroppedMSIs != 1 || f.DelayedMSIs != 1 || f.MSIs != 1 {
		t.Fatalf("counters: dropped=%d delayed=%d delivered=%d",
			f.DroppedMSIs, f.DelayedMSIs, f.MSIs)
	}
}
