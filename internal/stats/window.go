package stats

// Window is a bounded ring of the most recent latency samples with
// percentile queries — the sliding view a fail-slow detector compares
// against its learned baseline. Unlike Sampler it forgets: old samples roll
// off, so a component that turns slow mid-run moves the window's percentiles
// within one window length instead of being averaged away.
type Window struct {
	buf  []float64
	next int
	n    int
}

// NewWindow allocates a window holding the last size samples (size >= 1).
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{buf: make([]float64, size)}
}

// Add records one sample, evicting the oldest when full.
func (w *Window) Add(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// N reports how many samples the window currently holds.
func (w *Window) N() int { return w.n }

// Reset empties the window.
func (w *Window) Reset() { w.next, w.n = 0, 0 }

// Percentile reports the p-th percentile (0-100, nearest-rank) of the
// current window, or 0 when empty. Cost is O(n log n) per query on a copy —
// detectors query on a sampling cadence, not per I/O.
func (w *Window) Percentile(p float64) float64 {
	if w.n == 0 {
		return 0
	}
	tmp := make([]float64, w.n)
	if w.n < len(w.buf) {
		copy(tmp, w.buf[:w.n])
	} else {
		copy(tmp, w.buf)
	}
	sortFloat64s(tmp)
	if p <= 0 {
		return tmp[0]
	}
	if p >= 100 {
		return tmp[len(tmp)-1]
	}
	idx := int(p / 100 * float64(len(tmp)))
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// Mean reports the window's arithmetic mean, or 0 when empty.
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < w.n; i++ {
		sum += w.buf[i]
	}
	return sum / float64(w.n)
}

func sortFloat64s(a []float64) {
	// Shell sort: windows are small (tens to a few hundred entries) and this
	// keeps the package dependency-free like sortInt64s in fault.
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for ; j >= gap && a[j-gap] > v; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = v
		}
	}
}

// SlowDetectorConfig tunes a fail-slow verdict.
type SlowDetectorConfig struct {
	// WindowSize is the sliding window length in samples (default 64).
	WindowSize int
	// BaselineSamples is how many initial samples train the healthy
	// baseline before verdicts are possible (default 32).
	BaselineSamples int
	// SlowFactor flags the component when the window's p99 exceeds
	// SlowFactor x baseline p99 (default 3.0).
	SlowFactor float64
	// MinSamples is the minimum window fill before a verdict (default 16).
	MinSamples int
}

func (c *SlowDetectorConfig) defaults() {
	if c.WindowSize <= 0 {
		c.WindowSize = 64
	}
	if c.BaselineSamples <= 0 {
		c.BaselineSamples = 32
	}
	if c.SlowFactor <= 1 {
		c.SlowFactor = 3.0
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
}

// SlowDetector learns a component's healthy latency baseline from its first
// BaselineSamples observations, then watches a sliding window and flags the
// component fail-slow when the windowed p99 exceeds SlowFactor times the
// baseline p99. It is the gray-failure companion to a fail-stop health FSM:
// the FSM sees errors and timeouts, the detector sees a component that still
// answers — just chronically late.
type SlowDetector struct {
	cfg      SlowDetectorConfig
	baseline *Sampler
	window   *Window
	// BaselineP99 freezes once training completes (0 until then).
	BaselineP99 float64
	// Verdicts counts Slow() evaluations; SlowVerdicts counts positives.
	Verdicts, SlowVerdicts int64
}

// NewSlowDetector builds a detector (zero-value config fields take
// defaults).
func NewSlowDetector(cfg SlowDetectorConfig) *SlowDetector {
	cfg.defaults()
	return &SlowDetector{
		cfg:      cfg,
		baseline: &Sampler{},
		window:   NewWindow(cfg.WindowSize),
	}
}

// Observe records one latency sample (any unit, consistently).
func (d *SlowDetector) Observe(v float64) {
	if d.BaselineP99 == 0 {
		d.baseline.Add(v)
		if d.baseline.N() >= d.cfg.BaselineSamples {
			d.BaselineP99 = d.baseline.Percentile(99)
			if d.BaselineP99 <= 0 {
				// Degenerate all-zero baseline: use the smallest positive
				// epsilon so the factor comparison still works.
				d.BaselineP99 = 1
			}
		}
		return
	}
	d.window.Add(v)
}

// Trained reports whether the healthy baseline has been learned.
func (d *SlowDetector) Trained() bool { return d.BaselineP99 > 0 }

// WindowP99 reports the current windowed p99 (0 when untrained or empty).
func (d *SlowDetector) WindowP99() float64 { return d.window.Percentile(99) }

// Slow evaluates the verdict: trained, enough recent samples, and windowed
// p99 beyond SlowFactor x baseline.
func (d *SlowDetector) Slow() bool {
	d.Verdicts++
	if !d.Trained() || d.window.N() < d.cfg.MinSamples {
		return false
	}
	slow := d.window.Percentile(99) > d.cfg.SlowFactor*d.BaselineP99
	if slow {
		d.SlowVerdicts++
	}
	return slow
}

// Reset clears the sliding window but keeps the learned baseline — used when
// a quarantined component rejoins and must re-earn a verdict from fresh
// samples.
func (d *SlowDetector) Reset() { d.window.Reset() }
