package stats

import "testing"

func totals(t *testing.T, rw *RateWindow, wantGood, wantBad int64) {
	t.Helper()
	g, b := rw.Totals()
	if g != wantGood || b != wantBad {
		t.Fatalf("Totals() = (%d, %d), want (%d, %d)", g, b, wantGood, wantBad)
	}
}

func TestRateWindowClampsDegenerateShape(t *testing.T) {
	rw := NewRateWindow(0, 0)
	if rw.Span() != 1 {
		t.Fatalf("Span() = %d, want 1 (width and buckets clamp to 1)", rw.Span())
	}
	rw.Observe(0, true)
	rw.Observe(0, false)
	totals(t, rw, 1, 1)
}

func TestRateWindowSpan(t *testing.T) {
	if got := NewRateWindow(800, 8).Span(); got != 800 {
		t.Fatalf("Span() = %d, want 800", got)
	}
	// A span not divisible by the bucket count rounds the width down.
	if got := NewRateWindow(100, 8).Span(); got != 96 {
		t.Fatalf("Span() = %d, want 96 (width 12 x 8 buckets)", got)
	}
}

func TestRateWindowForgetsAtBucketGranularity(t *testing.T) {
	rw := NewRateWindow(80, 8) // width 10
	rw.Observe(5, false)       // bucket 0
	rw.Observe(15, true)       // bucket 1
	totals(t, rw, 1, 1)

	// Rotating 7 buckets forward keeps bucket 1 (barely) and drops bucket 0.
	rw.Observe(85, true) // bucket 8; live range is buckets 1..8
	totals(t, rw, 2, 0)

	// One more bucket drops the t=15 event too.
	rw.Observe(95, true)
	totals(t, rw, 2, 0)
	rw.Observe(165, true) // bucket 16; live range 9..16 — only the newest two remain
	totals(t, rw, 2, 0)
}

func TestRateWindowGapClearsOutright(t *testing.T) {
	rw := NewRateWindow(80, 8)
	for i := int64(0); i < 8; i++ {
		rw.Observe(i*10, false)
	}
	totals(t, rw, 0, 8)
	// A gap of at least the whole window wipes every bucket, not just some.
	rw.Observe(10_000, true)
	totals(t, rw, 1, 0)
}

func TestRateWindowOutOfOrderCountsInPlace(t *testing.T) {
	rw := NewRateWindow(80, 8)
	rw.Observe(75, true) // cursor at bucket 7
	rw.Observe(20, false)
	rw.Observe(5, false)
	// Late completions land in the cursor bucket instead of rewinding the
	// ring (which would resurrect already-zeroed buckets).
	totals(t, rw, 1, 2)
	rw.Observe(80, true) // advance one bucket; the in-place events survive
	totals(t, rw, 2, 2)
}

func TestRateWindowBadFraction(t *testing.T) {
	rw := NewRateWindow(100, 4)
	if got := rw.BadFraction(); got != 0 {
		t.Fatalf("empty BadFraction() = %v, want 0", got)
	}
	rw.Observe(0, true)
	rw.Observe(1, true)
	rw.Observe(2, false)
	rw.Observe(3, false)
	if got := rw.BadFraction(); got != 0.5 {
		t.Fatalf("BadFraction() = %v, want 0.5", got)
	}
	// Rotate the good events out; the fraction follows the live buckets.
	rw.Observe(99, false) // bucket 3; buckets 0 (all four early events) still live
	rw.Observe(125, false)
	rw.Observe(150, false)
	rw.Observe(175, false) // buckets 1..3 of the next revolution: bucket 0 dropped
	if got := rw.BadFraction(); got != 1 {
		t.Fatalf("BadFraction() after rotation = %v, want 1", got)
	}
}

func TestRateWindowObserveDoesNotAllocate(t *testing.T) {
	rw := NewRateWindow(800, 8)
	tick := int64(0)
	if avg := testing.AllocsPerRun(1000, func() {
		tick += 3
		rw.Observe(tick, tick%5 != 0)
	}); avg != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", avg)
	}
}

func BenchmarkRateWindowObserve(b *testing.B) {
	rw := NewRateWindow(800, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rw.Observe(int64(i), i%7 != 0)
	}
}
