// Package stats provides the measurement plumbing for the NeSC reproduction:
// latency samplers, throughput accounting, and tabular series that the
// benchmark harness renders as the paper's figures and tables.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sampler accumulates scalar samples (latencies in microseconds, counts,
// ratios) and answers summary statistics.
type Sampler struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add records one sample.
func (s *Sampler) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
	s.sum += v
}

// Merge folds every sample of o into s. o is unchanged; merging s into
// itself doubles its contents. Summary statistics after a merge are
// identical to having Added both sample streams into one Sampler, in any
// interleaving.
func (s *Sampler) Merge(o *Sampler) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	s.samples = append(s.samples, o.samples...)
	s.sorted = false
	s.sum += o.sum
}

// N reports the number of samples.
func (s *Sampler) N() int { return len(s.samples) }

// Sum reports the sample total.
func (s *Sampler) Sum() float64 { return s.sum }

// Mean reports the arithmetic mean (0 when empty).
func (s *Sampler) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min reports the smallest sample (0 when empty).
func (s *Sampler) Min() float64 {
	s.ensureSorted()
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[0]
}

// Max reports the largest sample (0 when empty).
func (s *Sampler) Max() float64 {
	s.ensureSorted()
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[len(s.samples)-1]
}

// Percentile reports the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation. Returns 0 when empty.
func (s *Sampler) Percentile(p float64) float64 {
	s.ensureSorted()
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.samples[lo]
	}
	frac := rank - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// Median reports the 50th percentile.
func (s *Sampler) Median() float64 { return s.Percentile(50) }

// Stddev reports the population standard deviation.
func (s *Sampler) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (s *Sampler) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Counter is a monotonically increasing event count.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Addn adds n.
func (c *Counter) Addn(n int64) { c.n += n }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n }

// Ratio is a hit/miss style two-way counter.
type Ratio struct{ Hits, Misses int64 }

// Hit records a hit.
func (r *Ratio) Hit() { r.Hits++ }

// Miss records a miss.
func (r *Ratio) Miss() { r.Misses++ }

// Total reports hits+misses.
func (r *Ratio) Total() int64 { return r.Hits + r.Misses }

// Rate reports hits/(hits+misses), 0 when empty.
func (r *Ratio) Rate() float64 {
	t := r.Total()
	if t == 0 {
		return 0
	}
	return float64(r.Hits) / float64(t)
}

// Table is a labelled grid of numeric cells used to render figure series and
// paper tables. Rows are keyed by an X label (e.g. a block size); columns by
// a series name (e.g. "NeSC", "virtio").
type Table struct {
	Title   string
	XLabel  string
	Columns []string
	rows    []*Row
	byX     map[string]*Row
	// Unit annotates cell values ("MB/s", "us", "x").
	Unit string
	// Notes holds free-form annotations printed under the table.
	Notes []string
}

// Row is one X-labelled row of cells.
type Row struct {
	X     string
	cells map[string]float64
}

// NewTable returns an empty table with the given title, x-axis label, value
// unit, and column order.
func NewTable(title, xLabel, unit string, columns ...string) *Table {
	return &Table{
		Title:   title,
		XLabel:  xLabel,
		Unit:    unit,
		Columns: columns,
		byX:     make(map[string]*Row),
	}
}

// Set stores a cell, creating the row and/or column as needed.
func (t *Table) Set(x, column string, v float64) {
	row, ok := t.byX[x]
	if !ok {
		row = &Row{X: x, cells: make(map[string]float64)}
		t.byX[x] = row
		t.rows = append(t.rows, row)
	}
	if !t.hasColumn(column) {
		t.Columns = append(t.Columns, column)
	}
	row.cells[column] = v
}

// Get reads a cell, reporting whether it exists.
func (t *Table) Get(x, column string) (float64, bool) {
	row, ok := t.byX[x]
	if !ok {
		return 0, false
	}
	v, ok := row.cells[column]
	return v, ok
}

// MustGet reads a cell and panics when absent — experiment code treats a
// missing cell as a harness bug.
func (t *Table) MustGet(x, column string) float64 {
	v, ok := t.Get(x, column)
	if !ok {
		panic(fmt.Sprintf("stats: table %q has no cell (%q, %q)", t.Title, x, column))
	}
	return v
}

// Rows reports the row labels in insertion order.
func (t *Table) Rows() []string {
	out := make([]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.X
	}
	return out
}

// Note appends an annotation line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func (t *Table) hasColumn(c string) bool {
	for _, have := range t.Columns {
		if have == c {
			return true
		}
	}
	return false
}

// String renders the table as aligned text, the form printed by nescbench.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s", t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, " [%s]", t.Unit)
	}
	b.WriteString(" ==\n")

	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	cells := make([][]string, len(t.rows))
	for i, r := range t.rows {
		cells[i] = make([]string, len(t.Columns))
		for j, c := range t.Columns {
			v, ok := r.cells[c]
			s := "-"
			if ok {
				s = formatCell(v)
			}
			cells[i][j] = s
			if len(s) > widths[j+1] {
				widths[j+1] = len(s)
			}
		}
	}
	for j, c := range t.Columns {
		if len(c) > widths[j+1] {
			widths[j+1] = len(c)
		}
	}

	fmt.Fprintf(&b, "%-*s", widths[0], t.XLabel)
	for j, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", widths[j+1], c)
	}
	b.WriteByte('\n')
	for i := range t.rows {
		fmt.Fprintf(&b, "%-*s", widths[0], t.rows[i].X)
		for j := range t.Columns {
			fmt.Fprintf(&b, "  %*s", widths[j+1], cells[i][j])
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(csvEscape(r.X))
		for _, c := range t.Columns {
			b.WriteByte(',')
			if v, ok := r.cells[c]; ok {
				b.WriteString(formatCell(v))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// jsonTable is the machine-readable form of a Table. Cells are keyed by
// column name; absent cells are omitted rather than zeroed.
type jsonTable struct {
	Title   string    `json:"title"`
	XLabel  string    `json:"x_label"`
	Unit    string    `json:"unit,omitempty"`
	Columns []string  `json:"columns"`
	Rows    []jsonRow `json:"rows"`
	Notes   []string  `json:"notes,omitempty"`
}

type jsonRow struct {
	X     string             `json:"x"`
	Cells map[string]float64 `json:"cells"`
}

// JSON renders the table as an indented JSON document (trailing newline
// included), the form nescbench writes into results/.
func (t *Table) JSON() ([]byte, error) {
	jt := jsonTable{
		Title:   t.Title,
		XLabel:  t.XLabel,
		Unit:    t.Unit,
		Columns: append([]string(nil), t.Columns...),
		Notes:   append([]string(nil), t.Notes...),
	}
	for _, r := range t.rows {
		cells := make(map[string]float64, len(r.cells))
		for c, v := range r.cells {
			cells[c] = v
		}
		jt.Rows = append(jt.Rows, jsonRow{X: r.X, Cells: cells})
	}
	b, err := json.MarshalIndent(jt, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func formatCell(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e9:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
