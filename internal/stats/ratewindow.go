package stats

// RateWindow is a bucketed good/bad event counter over a sliding span of
// (virtual) time — the primitive under multi-window burn-rate alerting. The
// span is divided into a fixed number of buckets; observing an event at time
// t rotates the ring forward to t's bucket (zeroing anything skipped) and
// increments that bucket. Totals are read by summing the live buckets, so
// the window forgets at bucket granularity without per-event allocation or
// timers. Time is a plain int64 in caller-chosen units; the window never
// touches a clock itself, which keeps it virtual-time-neutral by
// construction.
type RateWindow struct {
	width int64 // bucket width in time units
	cur   int64 // absolute bucket index of the cursor bucket
	pos   int   // ring position of the cursor bucket
	good  []int64
	bad   []int64
}

// NewRateWindow builds a window spanning span time units across buckets
// rotating slots (both clamped to at least 1).
func NewRateWindow(span int64, buckets int) *RateWindow {
	if buckets < 1 {
		buckets = 1
	}
	w := span / int64(buckets)
	if w < 1 {
		w = 1
	}
	return &RateWindow{width: w, good: make([]int64, buckets), bad: make([]int64, buckets)}
}

// Span reports the window's total coverage in time units.
func (rw *RateWindow) Span() int64 { return rw.width * int64(len(rw.good)) }

// advance rotates the ring to the bucket containing time t, zeroing skipped
// buckets. A gap longer than the whole window clears it outright.
func (rw *RateWindow) advance(t int64) {
	idx := t / rw.width
	if idx <= rw.cur {
		return // same bucket, or an out-of-order observation: count in place
	}
	if idx-rw.cur >= int64(len(rw.good)) {
		for i := range rw.good {
			rw.good[i], rw.bad[i] = 0, 0
		}
		rw.cur = idx
		return
	}
	for rw.cur < idx {
		rw.cur++
		rw.pos++
		if rw.pos == len(rw.good) {
			rw.pos = 0
		}
		rw.good[rw.pos], rw.bad[rw.pos] = 0, 0
	}
}

// Observe counts one event at time t.
func (rw *RateWindow) Observe(t int64, good bool) {
	rw.advance(t)
	if good {
		rw.good[rw.pos]++
	} else {
		rw.bad[rw.pos]++
	}
}

// Totals reports the good/bad counts currently inside the window, as of the
// last observation (the window does not self-expire between events).
func (rw *RateWindow) Totals() (good, bad int64) {
	for i := range rw.good {
		good += rw.good[i]
		bad += rw.bad[i]
	}
	return good, bad
}

// BadFraction reports bad/(good+bad) inside the window, 0 when empty.
func (rw *RateWindow) BadFraction() float64 {
	g, b := rw.Totals()
	if g+b == 0 {
		return 0
	}
	return float64(b) / float64(g+b)
}
