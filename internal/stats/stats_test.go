package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSamplerBasics(t *testing.T) {
	var s Sampler
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 3 {
		t.Fatalf("Median = %v", s.Median())
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
}

func TestSamplerEmpty(t *testing.T) {
	var s Sampler
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sampler must report zeros")
	}
}

func TestSamplerStddev(t *testing.T) {
	var s Sampler
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sampler
		for _, v := range raw {
			s.Add(float64(v))
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev || v < s.Min()-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding samples in any order yields the same percentile answers.
func TestSamplerOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	var a, b Sampler
	for _, v := range vals {
		a.Add(v)
	}
	shuffled := append([]float64(nil), vals...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for _, v := range shuffled {
		b.Add(v)
	}
	for _, p := range []float64{10, 50, 90, 99} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("P%v differs between insertion orders", p)
		}
	}
}

// Property: merging any partition of a sample stream, in any order, yields
// the same statistics as one sampler that saw every sample directly.
func TestSamplerMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
	}
	var whole Sampler
	for _, v := range vals {
		whole.Add(v)
	}

	// Adversarial orderings: sorted ascending, descending, interleaved
	// extremes, and random shuffles — each split into uneven shards that are
	// merged in a different order than they were filled.
	orderings := map[string]func([]float64) []float64{
		"ascending": func(v []float64) []float64 {
			out := append([]float64(nil), v...)
			sort.Float64s(out)
			return out
		},
		"descending": func(v []float64) []float64 {
			out := append([]float64(nil), v...)
			sort.Sort(sort.Reverse(sort.Float64Slice(out)))
			return out
		},
		"extremes-first": func(v []float64) []float64 {
			s := append([]float64(nil), v...)
			sort.Float64s(s)
			out := make([]float64, 0, len(s))
			for lo, hi := 0, len(s)-1; lo <= hi; lo, hi = lo+1, hi-1 {
				out = append(out, s[hi])
				if lo < hi {
					out = append(out, s[lo])
				}
			}
			return out
		},
		"shuffled": func(v []float64) []float64 {
			out := append([]float64(nil), v...)
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out
		},
	}
	splits := [][]int{{500}, {1, 499}, {250, 250}, {3, 7, 490}, {100, 200, 150, 50}}

	for name, reorder := range orderings {
		stream := reorder(vals)
		for _, split := range splits {
			shards := make([]*Sampler, len(split))
			off := 0
			for i, n := range split {
				shards[i] = &Sampler{}
				for _, v := range stream[off : off+n] {
					shards[i].Add(v)
				}
				// Exercise the sorted fast paths before merging: a shard
				// that has answered a query must still merge correctly.
				shards[i].Median()
				off += n
			}
			// Merge shards back-to-front into a fresh sampler.
			var m Sampler
			for i := len(shards) - 1; i >= 0; i-- {
				m.Merge(shards[i])
			}
			if m.N() != whole.N() {
				t.Fatalf("%s %v: N = %d, want %d", name, split, m.N(), whole.N())
			}
			if math.Abs(m.Sum()-whole.Sum()) > 1e-6 {
				t.Fatalf("%s %v: Sum = %v, want %v", name, split, m.Sum(), whole.Sum())
			}
			if m.Min() != whole.Min() || m.Max() != whole.Max() {
				t.Fatalf("%s %v: Min/Max = %v/%v, want %v/%v",
					name, split, m.Min(), m.Max(), whole.Min(), whole.Max())
			}
			for _, p := range []float64{0, 1, 25, 50, 75, 99, 100} {
				if got, want := m.Percentile(p), whole.Percentile(p); got != want {
					t.Fatalf("%s %v: P%v = %v, want %v", name, split, p, got, want)
				}
			}
			if math.Abs(m.Stddev()-whole.Stddev()) > 1e-9 {
				t.Fatalf("%s %v: Stddev = %v, want %v", name, split, m.Stddev(), whole.Stddev())
			}
		}
	}
}

func TestSamplerMergeEdgeCases(t *testing.T) {
	var s Sampler
	s.Add(1)
	s.Merge(nil) // no-op
	var empty Sampler
	s.Merge(&empty) // no-op
	if s.N() != 1 || s.Sum() != 1 {
		t.Fatalf("merge of nil/empty changed sampler: N=%d Sum=%v", s.N(), s.Sum())
	}
	var dst Sampler
	dst.Merge(&s)
	dst.Merge(&s) // same source twice
	if dst.N() != 2 || dst.Mean() != 1 {
		t.Fatalf("double merge: N=%d Mean=%v", dst.N(), dst.Mean())
	}
	// Self-merge doubles the contents.
	dst.Merge(&dst)
	if dst.N() != 4 || dst.Sum() != 4 {
		t.Fatalf("self-merge: N=%d Sum=%v", dst.N(), dst.Sum())
	}
	// The source must be unchanged by merges out of it.
	if s.N() != 1 || s.Median() != 1 {
		t.Fatalf("source mutated by merge: N=%d", s.N())
	}
}

// Property: for any two sample sets, merge(a,b) answers quantiles exactly as
// a single sampler over the concatenation does.
func TestSamplerMergeQuantileProperty(t *testing.T) {
	f := func(a, b []uint16) bool {
		var sa, sb, whole Sampler
		for _, v := range a {
			sa.Add(float64(v))
			whole.Add(float64(v))
		}
		for _, v := range b {
			sb.Add(float64(v))
			whole.Add(float64(v))
		}
		sa.Merge(&sb)
		for p := 0.0; p <= 100; p += 12.5 {
			if sa.Percentile(p) != whole.Percentile(p) {
				return false
			}
		}
		return sa.N() == whole.N() && sa.Mean() == whole.Mean()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterAndRatio(t *testing.T) {
	var c Counter
	c.Inc()
	c.Addn(4)
	if c.Value() != 5 {
		t.Fatalf("Counter = %d", c.Value())
	}
	var r Ratio
	if r.Rate() != 0 {
		t.Fatal("empty ratio rate must be 0")
	}
	r.Hit()
	r.Hit()
	r.Hit()
	r.Miss()
	if r.Total() != 4 || r.Rate() != 0.75 {
		t.Fatalf("Ratio = %v/%v rate %v", r.Hits, r.Total(), r.Rate())
	}
}

func TestTableSetGetOrdering(t *testing.T) {
	tb := NewTable("t", "bs", "MB/s", "Host", "NeSC")
	tb.Set("1KB", "NeSC", 100)
	tb.Set("1KB", "Host", 110)
	tb.Set("4KB", "NeSC", 400)
	tb.Set("4KB", "virtio", 150) // new column appended
	if v := tb.MustGet("1KB", "NeSC"); v != 100 {
		t.Fatalf("cell = %v", v)
	}
	if _, ok := tb.Get("4KB", "Host"); ok {
		t.Fatal("missing cell reported present")
	}
	rows := tb.Rows()
	if len(rows) != 2 || rows[0] != "1KB" || rows[1] != "4KB" {
		t.Fatalf("rows = %v", rows)
	}
	wantCols := []string{"Host", "NeSC", "virtio"}
	if len(tb.Columns) != 3 {
		t.Fatalf("columns = %v", tb.Columns)
	}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", tb.Columns, wantCols)
		}
	}
}

func TestTableMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on missing cell did not panic")
		}
	}()
	NewTable("t", "x", "").MustGet("a", "b")
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "block", "us", "A", "B")
	tb.Set("512B", "A", 1.5)
	tb.Set("512B", "B", 20)
	tb.Note("note line")
	s := tb.String()
	for _, want := range []string{"Figure X", "[us]", "block", "512B", "1.50", "20", "# note line"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "block,A,B\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "512B,1.50,20") {
		t.Fatalf("csv row wrong: %q", csv)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("t", `x,"y"`, "")
	tb.Set("a,b", "c", 1)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,""y"""`) || !strings.Contains(csv, `"a,b"`) {
		t.Fatalf("csv escaping wrong: %q", csv)
	}
}

// Property: every value set into a table can be read back exactly.
func TestTableRoundTripProperty(t *testing.T) {
	f := func(keys []uint8, vals []uint32) bool {
		tb := NewTable("p", "x", "")
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		type kv struct {
			x, c string
			v    float64
		}
		var want []kv
		for i := 0; i < n; i++ {
			x := string(rune('a' + keys[i]%8))
			c := string(rune('A' + keys[i]%5))
			v := float64(vals[i])
			tb.Set(x, c, v)
			want = append(want, kv{x, c, v})
		}
		// Later sets overwrite earlier ones; check the final value per key.
		final := make(map[[2]string]float64)
		for _, w := range want {
			final[[2]string{w.x, w.c}] = w.v
		}
		for k, v := range final {
			got, ok := tb.Get(k[0], k[1])
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatCell(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "3"},
		{1234.56, "1234.6"},
		{12.345, "12.35"},
		{0.1234, "0.1234"},
	}
	for _, c := range cases {
		if got := formatCell(c.v); got != c.want {
			t.Errorf("formatCell(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
