package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSamplerBasics(t *testing.T) {
	var s Sampler
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 3 {
		t.Fatalf("Median = %v", s.Median())
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
}

func TestSamplerEmpty(t *testing.T) {
	var s Sampler
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sampler must report zeros")
	}
}

func TestSamplerStddev(t *testing.T) {
	var s Sampler
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sampler
		for _, v := range raw {
			s.Add(float64(v))
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev || v < s.Min()-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding samples in any order yields the same percentile answers.
func TestSamplerOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	var a, b Sampler
	for _, v := range vals {
		a.Add(v)
	}
	shuffled := append([]float64(nil), vals...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for _, v := range shuffled {
		b.Add(v)
	}
	for _, p := range []float64{10, 50, 90, 99} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("P%v differs between insertion orders", p)
		}
	}
}

func TestCounterAndRatio(t *testing.T) {
	var c Counter
	c.Inc()
	c.Addn(4)
	if c.Value() != 5 {
		t.Fatalf("Counter = %d", c.Value())
	}
	var r Ratio
	if r.Rate() != 0 {
		t.Fatal("empty ratio rate must be 0")
	}
	r.Hit()
	r.Hit()
	r.Hit()
	r.Miss()
	if r.Total() != 4 || r.Rate() != 0.75 {
		t.Fatalf("Ratio = %v/%v rate %v", r.Hits, r.Total(), r.Rate())
	}
}

func TestTableSetGetOrdering(t *testing.T) {
	tb := NewTable("t", "bs", "MB/s", "Host", "NeSC")
	tb.Set("1KB", "NeSC", 100)
	tb.Set("1KB", "Host", 110)
	tb.Set("4KB", "NeSC", 400)
	tb.Set("4KB", "virtio", 150) // new column appended
	if v := tb.MustGet("1KB", "NeSC"); v != 100 {
		t.Fatalf("cell = %v", v)
	}
	if _, ok := tb.Get("4KB", "Host"); ok {
		t.Fatal("missing cell reported present")
	}
	rows := tb.Rows()
	if len(rows) != 2 || rows[0] != "1KB" || rows[1] != "4KB" {
		t.Fatalf("rows = %v", rows)
	}
	wantCols := []string{"Host", "NeSC", "virtio"}
	if len(tb.Columns) != 3 {
		t.Fatalf("columns = %v", tb.Columns)
	}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", tb.Columns, wantCols)
		}
	}
}

func TestTableMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on missing cell did not panic")
		}
	}()
	NewTable("t", "x", "").MustGet("a", "b")
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "block", "us", "A", "B")
	tb.Set("512B", "A", 1.5)
	tb.Set("512B", "B", 20)
	tb.Note("note line")
	s := tb.String()
	for _, want := range []string{"Figure X", "[us]", "block", "512B", "1.50", "20", "# note line"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "block,A,B\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "512B,1.50,20") {
		t.Fatalf("csv row wrong: %q", csv)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("t", `x,"y"`, "")
	tb.Set("a,b", "c", 1)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,""y"""`) || !strings.Contains(csv, `"a,b"`) {
		t.Fatalf("csv escaping wrong: %q", csv)
	}
}

// Property: every value set into a table can be read back exactly.
func TestTableRoundTripProperty(t *testing.T) {
	f := func(keys []uint8, vals []uint32) bool {
		tb := NewTable("p", "x", "")
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		type kv struct {
			x, c string
			v    float64
		}
		var want []kv
		for i := 0; i < n; i++ {
			x := string(rune('a' + keys[i]%8))
			c := string(rune('A' + keys[i]%5))
			v := float64(vals[i])
			tb.Set(x, c, v)
			want = append(want, kv{x, c, v})
		}
		// Later sets overwrite earlier ones; check the final value per key.
		final := make(map[[2]string]float64)
		for _, w := range want {
			final[[2]string{w.x, w.c}] = w.v
		}
		for k, v := range final {
			got, ok := tb.Get(k[0], k[1])
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatCell(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "3"},
		{1234.56, "1234.6"},
		{12.345, "12.35"},
		{0.1234, "0.1234"},
	}
	for _, c := range cases {
		if got := formatCell(c.v); got != c.want {
			t.Errorf("formatCell(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
