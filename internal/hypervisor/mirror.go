package hypervisor

import (
	"fmt"

	"nesc/internal/extfs"
	"nesc/internal/fabric"
	"nesc/internal/guest"
	"nesc/internal/sim"
)

// Mirrored VMs: one guest kernel driving a fabric mirror client over VFs on
// several fleet devices. Each leg is an ordinary file-backed VF on its own
// device (with its own copy of the disk image); the fabric client fans
// writes out to all of them and fails over reads. The device models are
// untouched — mirroring is purely a host-side construction, like md over
// two PCIe SSDs.

// MirrorLeg is one device-backed leg of a mirrored VM.
type MirrorLeg struct {
	Dev   *Device
	VFIdx int
	Drv   *guest.NescDriver
}

// newVFDriver builds the guest ring driver for VF idx of dev (the shared
// half of NewVM's BackendDirect path and mirrored-leg construction).
func (h *Hypervisor) newVFDriver(p *sim.Proc, dev *Device, idx int, cfg VMConfig) (*guest.NescDriver, error) {
	queues := cfg.VFQueues
	if queues == 0 {
		queues = dev.Ctl.P.QueuesPerVF
	}
	return guest.NewNescDriver(p, h.Eng, guest.NescDriverConfig{
		Fab:             h.Fab,
		Mem:             h.Mem,
		PageBus:         dev.VFPageBus(idx),
		RingEntries:     cfg.VFRingEntries,
		SubmitTime:      h.P.DriverSubmitTime,
		UseTrampoline:   !h.P.UseIOMMU || cfg.ForceTrampoline,
		MemcpyBandwidth: cfg.Guest.MemcpyBandwidth,
		BlockSize:       dev.Ctl.P.BlockSize,
		Timeout:         h.P.VFRequestTimeout,
		RetryMax:        h.P.VFRetryMax,
		Deadline:        h.P.VFDeadline,
		Queues:          queues,
		Policy:          cfg.VFQueuePolicy,
		DisablePI:       h.P.DisablePI,
	})
}

// wireLeg routes a VF driver's completions and DMA grants for vm.
func (h *Hypervisor) wireLeg(dev *Device, idx int, drv *guest.NescDriver, vm *VM) {
	fnID := dev.Ctl.VF(idx).ID()
	h.qps[fnID] = drv.MQ()
	h.vmOf[fnID] = vm
	h.registerQueueGauges(fnID, drv.MQ())
	if h.Attrib != nil {
		// Driver-side busy-backoff credits land in the same budget-table row
		// the device pipeline attributes to, keyed by function index
		// (0 = PF, VF idx + 1 elsewhere).
		if fnIdx, ok := dev.Ctl.FnIndex(fnID); ok {
			drv.MQ().AttachAttribution(h.Attrib, fnIdx)
		}
	}
	if h.P.UseIOMMU {
		h.Fab.IOMMU().Grant(fnID, 0, h.Mem.Size())
	}
}

// unwireLeg reverses wireLeg and destroys the leg's VF.
func (h *Hypervisor) unwireLeg(p *sim.Proc, dev *Device, idx int) {
	fnID := dev.Ctl.VF(idx).ID()
	delete(h.qps, fnID)
	delete(h.vmOf, fnID)
	if h.P.UseIOMMU {
		h.Fab.IOMMU().RevokeAll(fnID)
	}
	dev.DestroyVF(p, idx)
}

// NewMirroredVM builds a direct-assigned guest whose virtual disk is
// synchronously mirrored across one VF per listed fleet device. The disk
// image at cfg.DiskPath must already exist on every listed device's host
// filesystem with identical size. The guest sees a single block device; K-1
// device losses are survivable.
func (h *Hypervisor) NewMirroredVM(p *sim.Proc, name string, cfg VMConfig, devices []int, fcfg fabric.Config) (*VM, error) {
	if cfg.Backend != BackendDirect {
		return nil, fmt.Errorf("hypervisor: mirrored VMs require BackendDirect")
	}
	if cfg.RawDevice {
		return nil, fmt.Errorf("hypervisor: mirrored VMs require a file-backed disk")
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("hypervisor: mirrored VM needs at least one device")
	}
	if cfg.Guest == (guest.Params{}) {
		cfg.Guest = guest.DefaultParams()
	}
	vm := &VM{Name: name, H: h, Kind: BackendDirect, VFIdx: -1, DiskPath: cfg.DiskPath, UID: cfg.UID, cfg: cfg}
	reps := make([]*fabric.Replica, 0, len(devices))
	for _, di := range devices {
		if di < 0 || di >= len(h.devs) {
			return nil, fmt.Errorf("hypervisor: no device %d", di)
		}
		dev := h.devs[di]
		idx, err := dev.CreateVF(p, cfg.DiskPath, cfg.UID)
		if err != nil {
			return nil, fmt.Errorf("hypervisor: mirror leg on device %d: %w", di, err)
		}
		if cfg.IOWeight > 0 {
			dev.SetVFWeight(p, idx, cfg.IOWeight)
		}
		drv, err := h.newVFDriver(p, dev, idx, cfg)
		if err != nil {
			return nil, err
		}
		h.wireLeg(dev, idx, drv, vm)
		vm.Legs = append(vm.Legs, MirrorLeg{Dev: dev, VFIdx: idx, Drv: drv})
		reps = append(reps, fabric.NewReplica(di, drv))
	}
	client, err := fabric.NewClient(h.Eng, h.Mem, fcfg, reps)
	if err != nil {
		return nil, err
	}
	if h.Board != nil || h.Attrib != nil {
		// Fabric-level events and attribution report against the tenant's
		// first-leg function index (VF idx + 1) — the stable identity of the
		// mirrored disk, matching the device pipeline's row key.
		client.AttachSLO(h.Board, h.Attrib, vm.Legs[0].VFIdx+1)
	}
	vm.Client = client
	vm.Kernel = guest.NewKernel(h.Eng, h.Mem, cfg.Guest, client)
	return vm, nil
}

// ReviveDevice tells every mirrored VM's client that a fenced device is
// back (Failed → Rebuilding, resilver starts). Pair with the fault
// injector's device revive.
func (h *Hypervisor) ReviveDevice(dev int) {
	for _, vm := range h.vmOf {
		if vm.Client != nil {
			vm.Client.Revive(dev)
		}
	}
}

// FabricStats aggregates mirror-client counters across every mirrored VM.
type FabricStats struct {
	Clients          int
	MirroredWrites   int64
	DegradedWrites   int64
	WriteFailures    int64
	ReadFallbacks    int64
	ReadRetries      int64
	Suspects         int64
	Failovers        int64
	Recoveries       int64
	Revives          int64
	ResilverRegions  int64
	ResilverBlocks   int64
	ResilverRestores int64
	// Gray-failure mitigation counters (hedged reads / fail-slow quarantine).
	HedgedReads int64
	HedgeWins   int64
	Quarantines int64
	Rejoins     int64
	ProbeReads  int64
	// LastFailoverLatency is the largest fence latency any client observed.
	LastFailoverLatency sim.Time
}

// FabricStatsNow sums the counters of every distinct mirror client.
func (h *Hypervisor) FabricStatsNow() FabricStats {
	var fs FabricStats
	seen := make(map[*fabric.Client]bool)
	for _, vm := range h.vmOf {
		c := vm.Client
		if c == nil || seen[c] {
			continue
		}
		seen[c] = true
		fs.Clients++
		fs.MirroredWrites += c.MirroredWrites
		fs.DegradedWrites += c.DegradedWrites
		fs.WriteFailures += c.WriteFailures
		fs.ReadFallbacks += c.ReadFallbacks
		fs.ReadRetries += c.ReadRetries
		fs.Suspects += c.Suspects
		fs.Failovers += c.Failovers
		fs.Recoveries += c.Recoveries
		fs.Revives += c.Revives
		fs.ResilverRegions += c.ResilverRegions
		fs.ResilverBlocks += c.ResilverBlocks
		fs.ResilverRestores += c.ResilverRestores
		fs.HedgedReads += c.HedgedReads
		fs.HedgeWins += c.HedgeWins
		fs.Quarantines += c.Quarantines
		fs.Rejoins += c.Rejoins
		fs.ProbeReads += c.ProbeReads
		if c.LastFailoverLatency > fs.LastFailoverLatency {
			fs.LastFailoverLatency = c.LastFailoverLatency
		}
	}
	return fs
}

// MigrationReport summarizes one live VF migration.
type MigrationReport struct {
	// BulkBlocks is the frozen-snapshot bulk copy's size.
	BulkBlocks int64
	// Passes / PassBlocks count the iterative pre-copy rounds over regions
	// dirtied while the guest kept writing.
	Passes     int
	PassBlocks int64
	// PauseBlocks is the final stop-and-copy pass's size and Pause the
	// guest-visible submission gap it cost.
	PauseBlocks int64
	Pause       sim.Time
	// Total is end-to-end migration time.
	Total sim.Time
}

// migRegionBlocks is the migration dirty log's granularity.
const migRegionBlocks = 64

// migMaxPasses bounds the iterative pre-copy: after this many rounds the
// migration stops-and-copies whatever is left, bounding the pause instead
// of chasing a write-heavy guest forever.
const migMaxPasses = 6

// migStopCopyRegions is the convergence threshold: when a pass leaves this
// few dirty regions, the next copy happens inside the pause window.
const migStopCopyRegions = 8

// MigrateVM live-migrates mirror leg slot of a mirrored VM to fleet device
// dstIdx: CoW-snapshot the source image, bulk-copy it to the destination's
// filesystem while the guest keeps running, chase dirtied regions in
// bounded pre-copy passes, then pause submissions, copy the remainder,
// atomically retarget the mirror leg to a fresh VF on the destination, and
// resume. Acknowledged writes are never lost: every post-snapshot write is
// either caught by a pass or copied inside the pause window.
func (h *Hypervisor) MigrateVM(p *sim.Proc, vm *VM, slot, dstIdx int) (MigrationReport, error) {
	var rep MigrationReport
	if vm.Client == nil {
		return rep, fmt.Errorf("hypervisor: %s is not a mirrored VM", vm.Name)
	}
	if slot < 0 || slot >= len(vm.Legs) {
		return rep, fmt.Errorf("hypervisor: %s has no mirror leg %d", vm.Name, slot)
	}
	if dstIdx < 0 || dstIdx >= len(h.devs) {
		return rep, fmt.Errorf("hypervisor: no device %d", dstIdx)
	}
	leg := &vm.Legs[slot]
	src, dst := leg.Dev, h.devs[dstIdx]
	if src == dst {
		return rep, fmt.Errorf("hypervisor: leg %d already on device %d", slot, dstIdx)
	}
	for _, other := range vm.Legs {
		if other.Dev == dst {
			return rep, fmt.Errorf("hypervisor: device %d already mirrors %s", dstIdx, vm.Name)
		}
	}
	path, uid := vm.DiskPath, vm.UID
	bs := uint64(dst.Ctl.P.BlockSize)
	start := p.Now()

	// Arm dirty tracking before freezing the image so no write acknowledged
	// after the snapshot point can slip between snapshot and tracking.
	dlog := vm.Client.TrackDirty(migRegionBlocks)
	defer vm.Client.StopTracking()

	// Bulk phase: freeze the source image with a CoW snapshot and copy the
	// frozen bytes; the guest keeps writing to the live file throughout.
	snapPath := path + ".migrating"
	if err := src.SnapshotFile(p, path, snapPath, uid); err != nil {
		return rep, fmt.Errorf("hypervisor: migration snapshot: %w", err)
	}
	snapF, err := src.HostFS.Open(p, snapPath, uid, extfs.PermRead)
	if err != nil {
		return rep, err
	}
	sizeBlocks := (snapF.Size() + bs - 1) / bs
	if err := dst.MkImage(p, path, uid, sizeBlocks, false); err != nil {
		return rep, fmt.Errorf("hypervisor: migration target image: %w", err)
	}
	dstF, err := dst.HostFS.Open(p, path, uid, extfs.PermRead|extfs.PermWrite)
	if err != nil {
		return rep, err
	}
	if err := h.copyFileRange(p, snapF, dstF, 0, sizeBlocks, bs); err != nil {
		return rep, fmt.Errorf("hypervisor: migration bulk copy: %w", err)
	}
	rep.BulkBlocks = int64(sizeBlocks)
	if err := src.HostFS.Remove(p, snapPath, uid); err != nil {
		return rep, err
	}

	// Pre-copy phase: chase regions the guest dirtied, reading the live
	// source file. Clear-then-copy converges: a write racing the copy
	// re-marks its region for the next round.
	liveF, err := src.HostFS.Open(p, path, uid, extfs.PermRead)
	if err != nil {
		return rep, err
	}
	for pass := 0; pass < migMaxPasses; pass++ {
		if dlog.DirtyRegions() <= migStopCopyRegions {
			break
		}
		n, err := h.copyDirtyRegions(p, dlog, liveF, dstF, bs)
		if err != nil {
			return rep, fmt.Errorf("hypervisor: migration pass %d: %w", pass+1, err)
		}
		rep.Passes++
		rep.PassBlocks += n
	}

	// Stop-and-copy: gate submissions, drain in-flight I/O, copy the
	// remaining dirty regions from a quiesced source, and retarget the
	// mirror leg to a fresh VF on the destination.
	vm.Client.Pause(p)
	pauseStart := p.Now()
	resume := func() { vm.Client.Resume() }
	n, err := h.copyDirtyRegions(p, dlog, liveF, dstF, bs)
	if err != nil {
		resume()
		return rep, fmt.Errorf("hypervisor: migration final copy: %w", err)
	}
	rep.PauseBlocks = n
	newIdx, err := dst.CreateVF(p, path, uid)
	if err != nil {
		resume()
		return rep, fmt.Errorf("hypervisor: migration target VF: %w", err)
	}
	if vm.cfg.IOWeight > 0 {
		dst.SetVFWeight(p, newIdx, vm.cfg.IOWeight)
	}
	newDrv, err := h.newVFDriver(p, dst, newIdx, vm.cfg)
	if err != nil {
		resume()
		return rep, err
	}
	h.wireLeg(dst, newIdx, newDrv, vm)
	if err := vm.Client.Retarget(slot, dstIdx, newDrv); err != nil {
		resume()
		return rep, err
	}
	h.unwireLeg(p, src, leg.VFIdx)
	if err := src.HostFS.Remove(p, path, uid); err != nil {
		resume()
		return rep, err
	}
	leg.Dev, leg.VFIdx, leg.Drv = dst, newIdx, newDrv
	resume()
	rep.Pause = p.Now() - pauseStart
	rep.Total = p.Now() - start
	h.Migrations++
	h.LastMigration = rep
	return rep, nil
}

// copyFileRange copies [startBlk, startBlk+nBlocks) between open files in
// bounded chunks.
func (h *Hypervisor) copyFileRange(p *sim.Proc, src, dst *extfs.File, startBlk, nBlocks, bs uint64) error {
	const chunkBlocks = 64
	buf := make([]byte, chunkBlocks*bs)
	for off := startBlk; off < startBlk+nBlocks; {
		n := startBlk + nBlocks - off
		if n > chunkBlocks {
			n = chunkBlocks
		}
		b := buf[:n*bs]
		if _, err := src.ReadAt(p, b, int64(off*bs)); err != nil {
			return err
		}
		if _, err := dst.WriteAt(p, b, int64(off*bs)); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// copyDirtyRegions drains the dirty log once, copying each marked region
// from src to dst; returns blocks copied. Concurrent writes may re-mark
// regions behind the cursor — they belong to the next round.
func (h *Hypervisor) copyDirtyRegions(p *sim.Proc, dlog *extfs.DirtyLog, src, dst *extfs.File, bs uint64) (int64, error) {
	var blocks int64
	fileBlocks := (src.Size() + bs - 1) / bs
	for r := dlog.Next(0); r >= 0; r = dlog.Next(r + 1) {
		dlog.Clear(r)
		lba, count := dlog.RegionSpan(r)
		if lba >= fileBlocks {
			continue
		}
		if lba+count > fileBlocks {
			count = fileBlocks - lba
		}
		if err := h.copyFileRange(p, src, dst, lba, count, bs); err != nil {
			return blocks, err
		}
		blocks += int64(count)
	}
	return blocks, nil
}
