package hypervisor

import (
	"fmt"

	"nesc/internal/core"
	"nesc/internal/sim"
)

// Snapshot and clone management. A snapshot is a copy-on-write image of a
// VF's backing file taken through the host filesystem; a clone exports such
// an image through a fresh VF, giving a tenant a writable fork that shares
// every unmodified block with the parent. The device enforces the sharing:
// the extent entries it walks carry the write-protect flag, so a guest
// write to a shared extent raises a translation-miss interrupt with
// MissReasonCoW and stalls until the hypervisor has broken the sharing
// (serviceMiss), exactly like the lazy-allocation path.

// invalidateVFRange drops BTLB entries of one function overlapping vLBA
// range [vlba, vlba+count); count 0 invalidates the function's whole
// footprint. Three-register MMIO command: latch the range, then writing the
// function index fires the invalidation.
func (d *Device) invalidateVFRange(p *sim.Proc, idx int, vlba, count uint64) {
	base := d.Ctl.BARBase()
	d.h.mmioW(p, base+core.PFRegInvVLBA, vlba)
	d.h.mmioW(p, base+core.PFRegInvCount, count)
	d.h.mmioW(p, base+core.PFRegInvFn, uint64(idx+1))
}

// refreshVFMapping re-reads a VF's file mapping, rebuilds the shared device
// tree, reprograms every sharer's root, and drops the function's BTLB
// entries (they may cache pre-snapshot, unprotected translations).
func (d *Device) refreshVFMapping(p *sim.Proc, idx int) error {
	st := d.vf(idx)
	runs, _, err := d.HostFS.Runs(p, st.path)
	if err != nil {
		return err
	}
	if err := st.shared.tree.Rebuild(runs); err != nil {
		return err
	}
	d.reprogramSharers(p, st.shared)
	d.invalidateVFRange(p, idx, 0, 0)
	return nil
}

// SnapshotVF captures a copy-on-write snapshot of a VF's backing file at
// dstPath on behalf of uid. The source VF keeps running: its extents become
// write-protected, so the first guest write to each shared extent takes a
// CoW fault and gets a private copy. The snapshot itself is an ordinary
// host file — export it with CreateVF (or CloneToNewVF), or keep it as a
// point-in-time backup. Serialized against ResetVF and miss service on the
// same VF by the VF management lock.
func (d *Device) SnapshotVF(p *sim.Proc, idx int, dstPath string, uid uint32) error {
	st := d.vfAt(idx)
	if st == nil || !st.inUse || st.identity {
		return fmt.Errorf("hypervisor: VF %d has no backing file", idx)
	}
	d.lockVF(p, idx)
	defer d.unlockVF(idx)
	if !st.inUse || st.identity {
		// The VF was torn down while we waited for the lock.
		return fmt.Errorf("hypervisor: VF %d has no backing file", idx)
	}
	if err := d.HostFS.Snapshot(p, st.path, dstPath, uid); err != nil {
		return err
	}
	d.h.Snapshots++
	return d.refreshVFMapping(p, idx)
}

// SnapshotFile captures a copy-on-write snapshot of an arbitrary host file.
// If the file is currently exported through a VF the call is routed through
// SnapshotVF so the device mapping picks up the write-protect flags;
// otherwise it is a plain filesystem snapshot.
func (d *Device) SnapshotFile(p *sim.Proc, path, dstPath string, uid uint32) error {
	for idx, st := range d.vfs {
		if st != nil && st.inUse && !st.identity && st.path == path {
			return d.SnapshotVF(p, idx, dstPath, uid)
		}
	}
	if err := d.HostFS.Snapshot(p, path, dstPath, uid); err != nil {
		return err
	}
	d.h.Snapshots++
	return nil
}

// CloneToNewVF snapshots a VF's disk and immediately exports the snapshot
// through a fresh VF owned by uid — a writable fork sharing all unmodified
// blocks with the parent. Returns the new VF's index.
func (d *Device) CloneToNewVF(p *sim.Proc, idx int, clonePath string, uid uint32) (int, error) {
	if err := d.SnapshotVF(p, idx, clonePath, uid); err != nil {
		return 0, err
	}
	cloneIdx, err := d.CreateVF(p, clonePath, uid)
	if err != nil {
		return 0, err
	}
	d.h.Clones++
	return cloneIdx, nil
}

// DeleteSnapshot removes a snapshot file and reclaims its space: blocks
// still shared with the parent (or other clones) just drop one reference;
// blocks private to the snapshot return to the free pool. Refuses while the
// file is exported through a VF — destroy the VF first.
func (d *Device) DeleteSnapshot(p *sim.Proc, path string, uid uint32) error {
	if _, exported := d.trees[path]; exported {
		return fmt.Errorf("hypervisor: %s is exported through a VF", path)
	}
	return d.HostFS.Remove(p, path, uid)
}

// SnapshotStats is the hypervisor's view of the CoW subsystem.
type SnapshotStats struct {
	Snapshots    int64 // snapshots taken (SnapshotVF, including clones)
	Clones       int64 // clones exported through new VFs
	CowBreaks    int64 // CoW faults serviced end to end
	SharedBlocks int64 // data blocks currently shared (extra references > 0)
	FSCowBreaks  int64 // filesystem-level share breaks (includes host writes)
}

// SnapshotStatsNow samples the snapshot counters (filesystem-level figures
// come from the primary device's host filesystem).
func (h *Hypervisor) SnapshotStatsNow() SnapshotStats {
	s := SnapshotStats{
		Snapshots: h.Snapshots,
		Clones:    h.Clones,
		CowBreaks: h.CowBreaks,
	}
	if h.HostFS != nil {
		s.SharedBlocks = h.HostFS.SharedBlocks()
		s.FSCowBreaks = h.HostFS.CowBreaks
	}
	return s
}
