package hypervisor

import (
	"errors"
	"testing"

	"nesc/internal/core"
	"nesc/internal/fault"
	"nesc/internal/guest"
	"nesc/internal/sim"
)

// End-to-end coverage of every device status code and recovery path as seen
// through the full stack: guest driver → VF rings → device pipeline →
// hypervisor. Fault injectors are installed only after boot so host
// filesystem setup runs fault-free.

func (w *world) installPlan(plan fault.Plan) *fault.Injector {
	inj := fault.NewInjector(plan)
	w.ctl.Medium.SetInjector(inj)
	w.fab.SetInjector(inj)
	w.h.SetInjector(inj)
	return inj
}

// mkSparseImage creates a disk image with no allocated blocks: every write
// misses and exercises the hypervisor's lazy-allocation path.
func (w *world) mkSparseImage(t *testing.T, p *sim.Proc, path string, uid uint32, blocks uint64) {
	t.Helper()
	f, err := w.h.HostFS.Create(p, path, uid, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(p, blocks*1024); err != nil {
		t.Fatal(err)
	}
}

// directVM boots, builds an image, and returns a direct-assigned VM.
func (w *world) directVM(t *testing.T, p *sim.Proc, blocks uint64, sparse bool) *VM {
	t.Helper()
	w.boot(t, p)
	if sparse {
		w.mkSparseImage(t, p, "/disk.img", 9, blocks)
	} else {
		w.mkImage(t, p, "/disk.img", 9, blocks)
	}
	vm, err := w.h.NewVM(p, "vm0", VMConfig{Backend: BackendDirect, DiskPath: "/disk.img", UID: 9})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestStatusOKAndNoSpaceEndToEnd(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 64, true)
		qp := vm.NescDrv.QueuePair()
		buf := w.mem.MustAlloc(1024, 64)
		// First write into the sparse image misses; the hypervisor allocates
		// and the walk retries: StatusOK.
		if st, err := qp.Submit(p, core.OpWrite, 3, 1, buf); err != nil || st != core.StatusOK {
			t.Errorf("hole write: status %d err %v, want StatusOK", st, err)
		}
		if w.h.MissInterrupts == 0 {
			t.Error("lazy allocation never ran")
		}
		// Now fail the allocation path by injection: StatusNoSpace.
		plan := fault.Plan{Seed: 7}
		plan.Sites[fault.MissHandler] = fault.SiteParams{Prob: 1.0}
		w.installPlan(plan)
		if st, err := qp.Submit(p, core.OpWrite, 40, 1, buf); err != nil || st != core.StatusNoSpace {
			t.Errorf("failed allocation: status %d err %v, want StatusNoSpace", st, err)
		}
		if w.h.MissFaults == 0 {
			t.Error("MissFaults not counted")
		}
	})
}

func TestStatusOutOfRangeEndToEnd(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 64, false)
		buf := w.mem.MustAlloc(1024, 64)
		st, err := vm.NescDrv.QueuePair().Submit(p, core.OpRead, 1000, 1, buf)
		if err != nil || st != core.StatusOutOfRange {
			t.Errorf("oversized LBA: status %d err %v, want StatusOutOfRange", st, err)
		}
	})
}

func TestStatusDisabledEndToEnd(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 64, false)
		// Disable the function behind the driver's back (management action).
		// Disabling drops the device's ring state, so the driver re-arms its
		// rings before probing — and gets an explicit StatusDisabled back.
		w.h.mmioW(p, w.h.Device(0).mgmtAddr(vm.VFIdx)+core.MgmtEnable, 0)
		if err := vm.NescDrv.QueuePair().Recover(p); err != nil {
			t.Fatal(err)
		}
		buf := w.mem.MustAlloc(1024, 64)
		st, err := vm.NescDrv.QueuePair().Submit(p, core.OpRead, 0, 1, buf)
		if err != nil || st != core.StatusDisabled {
			t.Errorf("disabled VF: status %d err %v, want StatusDisabled", st, err)
		}
	})
}

func TestStatusMediumErrorEndToEnd(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 64, false)
		plan := fault.Plan{Seed: 7}
		plan.Sites[fault.MediumRead] = fault.SiteParams{Prob: 1.0}
		w.installPlan(plan)
		buf := w.mem.MustAlloc(1024, 64)
		st, err := vm.NescDrv.QueuePair().Submit(p, core.OpRead, 0, 1, buf)
		if err != nil || st != core.StatusMediumError {
			t.Errorf("unreadable block: status %d err %v, want StatusMediumError", st, err)
		}
		if w.ctl.MediumRetries != int64(w.ctl.P.MediumRetryMax) {
			t.Errorf("MediumRetries = %d, want %d", w.ctl.MediumRetries, w.ctl.P.MediumRetryMax)
		}
	})
}

// A VF whose IOMMU grants were revoked mid-flight gets StatusDMAFault: the
// descriptor fetch and completion write still land (the ring pages stay
// granted) but the data DMA is rejected.
func TestStatusDMAFaultOnRevokedGrant(t *testing.T) {
	w := newWorld(t, 8192, func(hp *Params) { hp.UseIOMMU = true })
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 64, false)
		qp := vm.NescDrv.QueuePair()
		fnID := w.ctl.VF(vm.VFIdx).ID()
		w.fab.IOMMU().RevokeAll(fnID)
		for _, r := range qp.DMARanges() {
			w.fab.IOMMU().Grant(fnID, r[0], r[1])
		}
		buf := w.mem.MustAlloc(1024, 64)
		st, err := qp.Submit(p, core.OpRead, 0, 1, buf)
		if err != nil || st != core.StatusDMAFault {
			t.Errorf("revoked data buffer: status %d err %v, want StatusDMAFault", st, err)
		}
		if w.ctl.VF(vm.VFIdx).DMAFaults == 0 {
			t.Error("per-function DMA fault not counted")
		}
	})
}

// A dropped completion MSI is recovered by the driver's timeout poll: the
// request still returns StatusOK, just later.
func TestDriverPollRecoversDroppedCompletionMSI(t *testing.T) {
	w := newWorld(t, 8192, func(hp *Params) {
		hp.VFRequestTimeout = 300 * sim.Microsecond
		hp.VFRetryMax = 2
	})
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 64, false)
		plan := fault.Plan{Seed: 7}
		plan.Sites[fault.MSI] = fault.SiteParams{Prob: 1.0}
		w.installPlan(plan)
		qp := vm.NescDrv.QueuePair()
		buf := w.mem.MustAlloc(1024, 64)
		st, err := qp.Submit(p, core.OpRead, 0, 1, buf)
		if err != nil || st != core.StatusOK {
			t.Errorf("read with dropped MSI: status %d err %v, want StatusOK", st, err)
		}
		if qp.Timeouts == 0 || qp.PolledCompletions == 0 {
			t.Errorf("timeouts=%d polled=%d, want both > 0", qp.Timeouts, qp.PolledCompletions)
		}
		if w.fab.DroppedMSIs == 0 {
			t.Error("no MSI was actually dropped")
		}
	})
}

// A request whose descriptor fetch keeps getting dropped exhausts the retry
// budget and surfaces ErrTimeout to the guest.
func TestDriverTimeoutBudgetSurfacesErrTimeout(t *testing.T) {
	w := newWorld(t, 8192, func(hp *Params) {
		hp.VFRequestTimeout = 300 * sim.Microsecond
		hp.VFRetryMax = 1
	})
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 64, false)
		plan := fault.Plan{Seed: 7}
		plan.Sites[fault.DMARead] = fault.SiteParams{Prob: 1.0}
		w.installPlan(plan)
		qp := vm.NescDrv.QueuePair()
		buf := w.mem.MustAlloc(1024, 64)
		_, err := qp.Submit(p, core.OpRead, 0, 1, buf)
		if !errors.Is(err, guest.ErrTimeout) {
			t.Errorf("lost request returned %v, want ErrTimeout", err)
		}
		if qp.Resubmits != 1 {
			t.Errorf("Resubmits = %d, want 1", qp.Resubmits)
		}
		if w.ctl.FetchDrops == 0 {
			t.Error("dropped fetches not counted")
		}
	})
}

// ResetVF recovers a VF whose request vanished while the driver has no
// timeout configured: the parked submitter is aborted with ErrReset and the
// re-armed rings carry fresh I/O.
func TestResetVFRecoversWedgedGuest(t *testing.T) {
	w := newWorld(t, 8192, nil)
	var gotErr error
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 64, false)
		qp := vm.NescDrv.QueuePair()
		plan := fault.Plan{Seed: 7}
		// Exactly one dropped DMA read: the descriptor fetch of the next
		// request. With no timeout the submitter would park forever.
		plan.Sites[fault.DMARead] = fault.SiteParams{OneShot: []int64{1}}
		w.installPlan(plan)
		buf := w.mem.MustAlloc(1024, 64)
		w.eng.Go("wedged-guest", func(gp *sim.Proc) {
			_, gotErr = qp.Submit(gp, core.OpRead, 0, 1, buf)
		})
		p.Sleep(500 * sim.Microsecond)
		if err := w.h.ResetVF(p, vm.VFIdx); err != nil {
			t.Fatal(err)
		}
		if w.h.VFResets != 1 {
			t.Errorf("VFResets = %d, want 1", w.h.VFResets)
		}
		// The recovered function carries fresh I/O through the same driver.
		if st, err := qp.Submit(p, core.OpRead, 2, 1, buf); err != nil || st != core.StatusOK {
			t.Errorf("post-reset read: status %d err %v, want StatusOK", st, err)
		}
	})
	if !errors.Is(gotErr, guest.ErrReset) {
		t.Fatalf("wedged submitter returned %v, want ErrReset", gotErr)
	}
}

// ResetVF while real work is in flight: the device aborts the stale chunks,
// drains, and the function keeps working afterwards.
func TestResetVFAbortsInFlightWork(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 256, false)
		buf := vm.Kernel.AllocBuffer(128 * 1024)
		w.eng.Go("writer", func(gp *sim.Proc) {
			// A long burst; some of it dies in the reset. Both outcomes —
			// clean completion of early chunks, ErrReset later — are fine;
			// what matters is that nothing wedges.
			_ = vm.Kernel.SubmitAligned(gp, true, 0, buf)
		})
		p.Sleep(20 * sim.Microsecond)
		if err := w.h.ResetVF(p, vm.VFIdx); err != nil {
			t.Fatal(err)
		}
		if vf := w.ctl.VF(vm.VFIdx); vf.Inflight() != 0 {
			t.Errorf("inflight = %d after drain, want 0", vf.Inflight())
		}
		qp := vm.NescDrv.QueuePair()
		if st, err := qp.Submit(p, core.OpRead, 0, 1, w.mem.MustAlloc(1024, 64)); err != nil || st != core.StatusOK {
			t.Errorf("post-reset read: status %d err %v, want StatusOK", st, err)
		}
	})
}
