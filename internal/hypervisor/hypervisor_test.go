package hypervisor

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"nesc/internal/blockdev"
	"nesc/internal/core"
	"nesc/internal/extfs"
	"nesc/internal/hostmem"
	"nesc/internal/pcie"
	"nesc/internal/sim"
)

// world is a fully wired platform: memory, fabric, medium, controller,
// hypervisor.
type world struct {
	eng *sim.Engine
	mem *hostmem.Memory
	fab *pcie.Fabric
	ctl *core.Controller
	h   *Hypervisor
}

func newWorld(t *testing.T, mediumBlocks int64, mut func(*Params)) *world {
	return newWorldCore(t, mediumBlocks, nil, mut)
}

// newWorldCore additionally lets a test mutate the device parameters (e.g.
// QueuesPerVF).
func newWorldCore(t *testing.T, mediumBlocks int64, coreMut func(*core.Params), mut func(*Params)) *world {
	t.Helper()
	eng := sim.NewEngine()
	mem := hostmem.New(256 << 20)
	fab := pcie.New(eng, mem, pcie.DefaultParams())
	cp := core.DefaultParams()
	cp.NumVFs = 8
	if coreMut != nil {
		coreMut(&cp)
	}
	store := blockdev.NewStore(cp.BlockSize, mediumBlocks)
	medium := blockdev.NewMedium(eng, store, blockdev.DefaultMediumParams())
	ctl, err := core.New(eng, fab, medium, cp)
	if err != nil {
		t.Fatal(err)
	}
	hp := DefaultParams()
	if mut != nil {
		mut(&hp)
	}
	h := New(eng, mem, fab, ctl, hp)
	return &world{eng: eng, mem: mem, fab: fab, ctl: ctl, h: h}
}

// run executes fn as the initial host process and drives the simulation to
// quiescence, failing the test if fn never finished (deadlock).
func (w *world) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	w.eng.Go("main", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	w.eng.Run()
	w.eng.Shutdown()
	if !done {
		t.Fatal("main process deadlocked")
	}
}

func (w *world) boot(t *testing.T, p *sim.Proc) {
	t.Helper()
	if err := w.h.Boot(p, true, extfs.Params{InodeCount: 128, JournalBlocks: 64, Mode: extfs.JournalMetadata}); err != nil {
		t.Fatal(err)
	}
}

// mkImage creates and fully allocates a disk image on the host FS.
func (w *world) mkImage(t *testing.T, p *sim.Proc, path string, uid uint32, blocks uint64) {
	t.Helper()
	f, err := w.h.HostFS.Create(p, path, uid, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(p, blocks*1024); err != nil {
		t.Fatal(err)
	}
	if err := w.h.HostFS.AllocateRange(p, path, 0, blocks); err != nil {
		t.Fatal(err)
	}
}

func TestBootAndHostFS(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		f, err := w.h.HostFS.Create(p, "/hello", 0, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, []byte("through the PF rings"), 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 20)
		if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if string(got) != "through the PF rings" {
			t.Fatalf("read %q", got)
		}
		if p.Now() == 0 {
			t.Fatal("host FS I/O consumed no virtual time")
		}
	})
}

func TestDirectVMRoundTrip(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/disk.img", 100, 512)
		vm, err := w.h.NewVM(p, "vm0", VMConfig{Backend: BackendDirect, DiskPath: "/disk.img", UID: 100})
		if err != nil {
			t.Fatal(err)
		}
		if vm.NescDrv.CapacityBlocks() != 512 {
			t.Fatalf("capacity = %d", vm.NescDrv.CapacityBlocks())
		}
		buf := vm.Kernel.AllocBuffer(64 * 1024)
		rand.New(rand.NewSource(2)).Read(buf.Data)
		want := append([]byte(nil), buf.Data...)
		if err := vm.Kernel.SubmitAligned(p, true, 0, buf); err != nil {
			t.Fatal(err)
		}
		clear(buf.Data)
		if err := vm.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Data, want) {
			t.Fatal("direct VM round trip mismatch")
		}
		// The bytes are visible through the host filesystem too: same file.
		f, err := w.h.HostFS.Open(p, "/disk.img", 0, extfs.PermRead)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 64*1024)
		if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("host view of VF-written file differs")
		}
	})
}

func TestAllBackendsRoundTrip(t *testing.T) {
	for _, kind := range []BackendKind{BackendDirect, BackendVirtio, BackendEmulation} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			w := newWorld(t, 8192, nil)
			w.run(t, func(p *sim.Proc) {
				w.boot(t, p)
				w.mkImage(t, p, "/d.img", 7, 256)
				vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: kind, DiskPath: "/d.img", UID: 7})
				if err != nil {
					t.Fatal(err)
				}
				buf := vm.Kernel.AllocBuffer(32 * 1024)
				rand.New(rand.NewSource(int64(kind))).Read(buf.Data)
				want := append([]byte(nil), buf.Data...)
				if err := vm.Kernel.SubmitAligned(p, true, 16, buf); err != nil {
					t.Fatal(err)
				}
				clear(buf.Data)
				if err := vm.Kernel.SubmitAligned(p, false, 16, buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Data, want) {
					t.Fatalf("%v round trip mismatch", kind)
				}
			})
		})
	}
}

func TestRawDeviceBackends(t *testing.T) {
	for _, kind := range []BackendKind{BackendDirect, BackendVirtio, BackendEmulation} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			w := newWorld(t, 4096, nil)
			w.run(t, func(p *sim.Proc) {
				w.boot(t, p)
				vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: kind, RawDevice: true})
				if err != nil {
					t.Fatal(err)
				}
				buf := vm.Kernel.AllocBuffer(8 * 1024)
				for i := range buf.Data {
					buf.Data[i] = byte(i)
				}
				want := append([]byte(nil), buf.Data...)
				if err := vm.Kernel.SubmitAligned(p, true, 100, buf); err != nil {
					t.Fatal(err)
				}
				clear(buf.Data)
				if err := vm.Kernel.SubmitAligned(p, false, 100, buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Data, want) {
					t.Fatalf("%v raw round trip mismatch", kind)
				}
			})
		})
	}
}

func TestVFCreationPermissionDenied(t *testing.T) {
	w := newWorld(t, 4096, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/alice.img", 100, 64)
		// Bob (uid 200) cannot map Alice's 0600 image.
		if _, err := w.h.NewVM(p, "mallory", VMConfig{Backend: BackendDirect, DiskPath: "/alice.img", UID: 200}); err == nil {
			t.Fatal("VF creation on a foreign file succeeded")
		}
		// Alice can.
		if _, err := w.h.NewVM(p, "alice", VMConfig{Backend: BackendDirect, DiskPath: "/alice.img", UID: 100}); err != nil {
			t.Fatalf("owner denied: %v", err)
		}
	})
}

func TestLazyAllocationThroughFullStack(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		// Sparse image: size only, no blocks.
		f, err := w.h.HostFS.Create(p, "/sparse.img", 5, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(p, 256*1024); err != nil {
			t.Fatal(err)
		}
		vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: BackendDirect, DiskPath: "/sparse.img", UID: 5})
		if err != nil {
			t.Fatal(err)
		}
		// Reads of unallocated space return zeros without host involvement.
		buf := vm.Kernel.AllocBuffer(4096)
		buf.Data[0] = 0xFF
		if err := vm.Kernel.SubmitAligned(p, false, 8, buf); err != nil {
			t.Fatal(err)
		}
		for i, b := range buf.Data {
			if b != 0 {
				t.Fatalf("sparse read byte %d = %#x", i, b)
			}
		}
		if w.h.MissInterrupts != 0 {
			t.Fatalf("read of hole raised %d miss interrupts", w.h.MissInterrupts)
		}
		// Writes trigger lazy allocation through the miss path.
		rand.New(rand.NewSource(9)).Read(buf.Data)
		want := append([]byte(nil), buf.Data...)
		if err := vm.Kernel.SubmitAligned(p, true, 8, buf); err != nil {
			t.Fatal(err)
		}
		if w.h.MissInterrupts == 0 {
			t.Fatal("lazy-allocating write raised no miss interrupt")
		}
		clear(buf.Data)
		if err := vm.Kernel.SubmitAligned(p, false, 8, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Data, want) {
			t.Fatal("lazily allocated data lost")
		}
		// Host filesystem stayed consistent and sees the same data.
		if err := w.h.HostFS.Check(p); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 4096)
		if _, err := f.ReadAt(p, got, 8*1024); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("host view of lazily allocated data differs")
		}
	})
}

func TestPruneAndRegenerateThroughFullStack(t *testing.T) {
	w := newWorld(t, 16384, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		// A deliberately fragmented image so the tree has several levels.
		f, err := w.h.HostFS.Create(p, "/frag.img", 3, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		blk := make([]byte, 1024)
		for i := 0; i < 300; i++ {
			blk[0] = byte(i)
			if _, err := f.WriteAt(p, blk, int64(i)*2048); err != nil {
				t.Fatal(err)
			}
		}
		vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: BackendDirect, DiskPath: "/frag.img", UID: 3})
		if err != nil {
			t.Fatal(err)
		}
		resident := vm.H.VFTree(vm.VFIdx).ResidentBytes()
		freed := w.h.PruneVFTrees(16)
		if freed == 0 {
			t.Fatal("prune freed nothing")
		}
		if vm.H.VFTree(vm.VFIdx).ResidentBytes() >= resident {
			t.Fatal("pruning did not shrink the tree")
		}
		missesBefore := w.h.MissInterrupts
		// Read across the whole device: pruned subtrees must regenerate
		// transparently.
		buf := vm.Kernel.AllocBuffer(1024)
		for i := 0; i < 300; i += 37 {
			if err := vm.Kernel.SubmitAligned(p, false, int64(i)*2, buf); err != nil {
				t.Fatal(err)
			}
			if buf.Data[0] != byte(i) {
				t.Fatalf("block %d read %#x after prune", i, buf.Data[0])
			}
		}
		if w.h.MissInterrupts == missesBefore {
			t.Fatal("no regeneration interrupts despite pruning")
		}
	})
}

func TestNestedGuestFilesystem(t *testing.T) {
	w := newWorld(t, 32768, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/guestdisk.img", 10, 4096)
		vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: BackendDirect, DiskPath: "/guestdisk.img", UID: 10})
		if err != nil {
			t.Fatal(err)
		}
		gfs, err := vm.Kernel.Mount(p, true, extfs.Params{InodeCount: 64, JournalBlocks: 32, Mode: extfs.JournalMetadata})
		if err != nil {
			t.Fatal(err)
		}
		gf, err := gfs.Create(p, "/nested.txt", 0, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte("nested filesystems! "), 500)
		if _, err := gf.WriteAt(p, payload, 0); err != nil {
			t.Fatal(err)
		}
		if err := gfs.Check(p); err != nil {
			t.Fatal(err)
		}
		vm.Teardown(p)

		// A second VM over the same image sees the same guest filesystem —
		// the nested FS really lives in the file's blocks.
		vm2, err := w.h.NewVM(p, "vm2", VMConfig{Backend: BackendDirect, DiskPath: "/guestdisk.img", UID: 10})
		if err != nil {
			t.Fatal(err)
		}
		gfs2, err := vm2.Kernel.Mount(p, false, extfs.Params{})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payload))
		gf2, err := gfs2.Open(p, "/nested.txt", 0, extfs.PermRead)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gf2.ReadAt(p, got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("nested filesystem content lost across VMs")
		}
	})
}

func TestLatencyOrderingAcrossBackends(t *testing.T) {
	lat := func(kind BackendKind) sim.Time {
		w := newWorld(t, 8192, nil)
		var elapsed sim.Time
		w.run(t, func(p *sim.Proc) {
			w.boot(t, p)
			w.mkImage(t, p, "/d.img", 1, 256)
			vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: kind, DiskPath: "/d.img", UID: 1})
			if err != nil {
				t.Fatal(err)
			}
			buf := vm.Kernel.AllocBuffer(1024)
			// Warm up, then measure.
			if err := vm.Kernel.SubmitAligned(p, true, 0, buf); err != nil {
				t.Fatal(err)
			}
			start := p.Now()
			const n = 20
			for i := 0; i < n; i++ {
				if err := vm.Kernel.SubmitAligned(p, true, int64(i), buf); err != nil {
					t.Fatal(err)
				}
			}
			elapsed = (p.Now() - start) / n
		})
		return elapsed
	}
	nesc := lat(BackendDirect)
	vio := lat(BackendVirtio)
	emu := lat(BackendEmulation)
	t.Logf("1KB write latency: nesc=%v virtio=%v emul=%v", nesc, vio, emu)
	if !(nesc < vio && vio < emu) {
		t.Fatalf("latency ordering violated: nesc=%v virtio=%v emul=%v", nesc, vio, emu)
	}
	if float64(vio)/float64(nesc) < 3 {
		t.Fatalf("virtio/nesc ratio %.1f too small (paper: >6x for small accesses)", float64(vio)/float64(nesc))
	}
	if float64(emu)/float64(nesc) < 8 {
		t.Fatalf("emulation/nesc ratio %.1f too small (paper: >20x)", float64(emu)/float64(nesc))
	}
}

func TestMultiVMFairShare(t *testing.T) {
	w := newWorld(t, 16384, nil)
	var ends [2]sim.Time
	w.eng.Go("main", func(p *sim.Proc) {
		w.boot(t, p)
		for i := 0; i < 2; i++ {
			i := i
			path := []string{"/a.img", "/b.img"}[i]
			w.mkImage(t, p, path, uint32(i+1), 2048)
			vm, err := w.h.NewVM(p, path, VMConfig{Backend: BackendDirect, DiskPath: path, UID: uint32(i + 1)})
			if err != nil {
				t.Error(err)
				return
			}
			w.eng.Go("vmload", func(q *sim.Proc) {
				buf := vm.Kernel.AllocBuffer(64 * 1024)
				for r := 0; r < 16; r++ {
					if err := vm.Kernel.SubmitAligned(q, true, int64(r*64), buf); err != nil {
						t.Error(err)
						return
					}
				}
				ends[i] = q.Now()
			})
		}
	})
	w.eng.Run()
	w.eng.Shutdown()
	if ends[0] == 0 || ends[1] == 0 {
		t.Fatal("a VM did not finish")
	}
	ratio := float64(ends[0]) / float64(ends[1])
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("unfair multiplexing: %v vs %v", ends[0], ends[1])
	}
}

func TestVFTeardownReuse(t *testing.T) {
	w := newWorld(t, 4096, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/x.img", 1, 64)
		for i := 0; i < 10; i++ {
			vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: BackendDirect, DiskPath: "/x.img", UID: 1})
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			if vm.VFIdx != 0 {
				t.Fatalf("iteration %d: VF index %d, want reuse of 0", i, vm.VFIdx)
			}
			vm.Teardown(p)
		}
		if w.ctl.SRIOV().NumEnabled != 0 {
			t.Fatalf("SR-IOV enabled count = %d after teardown", w.ctl.SRIOV().NumEnabled)
		}
	})
}

func TestIOMMUModeSkipsTrampolines(t *testing.T) {
	w := newWorld(t, 4096, func(p *Params) { p.UseIOMMU = true })
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/d.img", 1, 128)
		vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: BackendDirect, DiskPath: "/d.img", UID: 1})
		if err != nil {
			t.Fatal(err)
		}
		buf := vm.Kernel.AllocBuffer(16 * 1024)
		rand.New(rand.NewSource(4)).Read(buf.Data)
		want := append([]byte(nil), buf.Data...)
		if err := vm.Kernel.SubmitAligned(p, true, 0, buf); err != nil {
			t.Fatal(err)
		}
		clear(buf.Data)
		if err := vm.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Data, want) {
			t.Fatal("IOMMU-mode round trip mismatch")
		}
		if vm.NescDrv.TrampolineCopies != 0 {
			t.Fatalf("IOMMU mode made %d trampoline copies", vm.NescDrv.TrampolineCopies)
		}
	})
}
