package hypervisor

import (
	"bytes"
	"errors"
	"testing"

	"nesc/internal/core"
	"nesc/internal/fault"
	"nesc/internal/guest"
	"nesc/internal/sim"
)

// Multi-queue data path through the full stack: guest MultiQueue driver →
// per-queue VF rings → device fetch round-robin → hypervisor vector routing.

func newMQWorld(t *testing.T, queues int, mut func(*Params)) *world {
	return newWorldCore(t, 8192, func(cp *core.Params) { cp.QueuesPerVF = queues }, mut)
}

func TestMultiQueueEndToEndIO(t *testing.T) {
	w := newMQWorld(t, 4, nil)
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 256, false)
		mq := vm.NescDrv.MQ()
		if mq.NumQueues() != 4 {
			t.Fatalf("driver runs %d queues, want 4", mq.NumQueues())
		}
		// Bit-exact round trip through every queue explicitly.
		for q := 0; q < mq.NumQueues(); q++ {
			buf := w.mem.MustAlloc(1024, 64)
			src := bytes.Repeat([]byte{byte(0xA0 + q)}, 1024)
			if err := w.mem.Write(buf, src); err != nil {
				t.Fatal(err)
			}
			lba := uint64(q * 8)
			if st, err := mq.Queue(q).Submit(p, core.OpWrite, lba, 1, buf); err != nil || st != core.StatusOK {
				t.Fatalf("write on queue %d: status %d err %v", q, st, err)
			}
			if err := w.mem.Zero(buf, 1024); err != nil {
				t.Fatal(err)
			}
			if st, err := mq.Queue(q).Submit(p, core.OpRead, lba, 1, buf); err != nil || st != core.StatusOK {
				t.Fatalf("read on queue %d: status %d err %v", q, st, err)
			}
			got := make([]byte, 1024)
			if err := w.mem.Read(buf, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, src) {
				t.Errorf("queue %d round trip mismatch", q)
			}
		}
		// The device saw traffic on each queue, counted per queue.
		vf := w.ctl.VF(vm.VFIdx)
		for q := 0; q < 4; q++ {
			if vf.QueueReqs(q) != 2 {
				t.Errorf("device queue %d served %d requests, want 2", q, vf.QueueReqs(q))
			}
		}
	})
}

func TestMultiQueueKernelIOSpreads(t *testing.T) {
	w := newMQWorld(t, 4, nil)
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 1024, false)
		buf := vm.Kernel.AllocBuffer(256 * 1024)
		if err := vm.Kernel.SubmitAligned(p, true, 0, buf); err != nil {
			t.Fatal(err)
		}
		vf := w.ctl.VF(vm.VFIdx)
		busy := 0
		for q := 0; q < 4; q++ {
			if vf.QueueReqs(q) > 0 {
				busy++
			}
		}
		if busy < 2 {
			t.Errorf("hash policy used %d of 4 queues for a 256 KB burst", busy)
		}
	})
}

// FLR with four queues: submitters wedged on different queues are all
// aborted, every ring is rebuilt, and each queue carries fresh I/O after.
func TestMultiQueueFLRRecovery(t *testing.T) {
	w := newMQWorld(t, 4, nil)
	errs := make([]error, 4)
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 256, false)
		mq := vm.NescDrv.MQ()
		plan := fault.Plan{Seed: 11}
		// Drop the next four DMA reads: one descriptor fetch per queue. With
		// no timeout configured all four submitters park forever.
		plan.Sites[fault.DMARead] = fault.SiteParams{OneShot: []int64{1, 2, 3, 4}}
		w.installPlan(plan)
		for q := 0; q < 4; q++ {
			q := q
			buf := w.mem.MustAlloc(1024, 64)
			w.eng.Go("wedged", func(gp *sim.Proc) {
				_, errs[q] = mq.Queue(q).Submit(gp, core.OpRead, uint64(q), 1, buf)
			})
		}
		p.Sleep(500 * sim.Microsecond)
		if err := w.h.ResetVF(p, vm.VFIdx); err != nil {
			t.Fatal(err)
		}
		// Every queue was re-armed and works again.
		for q := 0; q < 4; q++ {
			qp := mq.Queue(q)
			if qp.Resets != 1 {
				t.Errorf("queue %d Resets = %d, want 1", q, qp.Resets)
			}
			buf := w.mem.MustAlloc(1024, 64)
			if st, err := qp.Submit(p, core.OpRead, uint64(q), 1, buf); err != nil || st != core.StatusOK {
				t.Errorf("post-reset read on queue %d: status %d err %v", q, st, err)
			}
		}
		if vf := w.ctl.VF(vm.VFIdx); vf.Inflight() != 0 {
			t.Errorf("inflight = %d after drain, want 0", vf.Inflight())
		}
	})
	for q, err := range errs {
		if !errors.Is(err, guest.ErrReset) {
			t.Errorf("queue %d wedged submitter returned %v, want ErrReset", q, err)
		}
	}
}

// A dropped completion MSI on a high queue is recovered by that queue's own
// timeout poll without touching its siblings.
func TestMultiQueueTimeoutRecoveryIsPerQueue(t *testing.T) {
	w := newMQWorld(t, 4, func(hp *Params) {
		hp.VFRequestTimeout = 300 * sim.Microsecond
		hp.VFRetryMax = 2
	})
	w.run(t, func(p *sim.Proc) {
		vm := w.directVM(t, p, 256, false)
		mq := vm.NescDrv.MQ()
		plan := fault.Plan{Seed: 7}
		plan.Sites[fault.MSI] = fault.SiteParams{Prob: 1.0}
		w.installPlan(plan)
		buf := w.mem.MustAlloc(1024, 64)
		if st, err := mq.Queue(3).Submit(p, core.OpRead, 5, 1, buf); err != nil || st != core.StatusOK {
			t.Errorf("read with dropped MSI: status %d err %v, want StatusOK", st, err)
		}
		if mq.Queue(3).PolledCompletions == 0 {
			t.Error("queue 3 never polled its ring")
		}
		for q := 0; q < 3; q++ {
			if mq.Queue(q).Timeouts != 0 {
				t.Errorf("idle queue %d counted %d timeouts", q, mq.Queue(q).Timeouts)
			}
		}
	})
}
