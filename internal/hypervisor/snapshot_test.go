package hypervisor

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"nesc/internal/extfs"
	"nesc/internal/sim"
)

// End-to-end CoW snapshot tests: the full stack from a guest write through
// the device's CoW fault, the hypervisor's share break, and the BTLB
// invalidation back to the retried walk.

func readHostFile(t *testing.T, p *sim.Proc, h *Hypervisor, path string, n int) []byte {
	t.Helper()
	f, err := h.HostFS.Open(p, path, 0, extfs.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n)
	if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return got
}

func TestSnapshotVFCowFaultEndToEnd(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/vm.img", 100, 256)
		vm, err := w.h.NewVM(p, "vm0", VMConfig{Backend: BackendDirect, DiskPath: "/vm.img", UID: 100})
		if err != nil {
			t.Fatal(err)
		}
		buf := vm.Kernel.AllocBuffer(16 * 1024)
		rand.New(rand.NewSource(11)).Read(buf.Data)
		base := append([]byte(nil), buf.Data...)
		if err := vm.Kernel.SubmitAligned(p, true, 0, buf); err != nil {
			t.Fatal(err)
		}

		if err := w.h.SnapshotVF(p, 0, "/vm.snap", 100); err != nil {
			t.Fatal(err)
		}
		if w.h.Snapshots != 1 {
			t.Fatalf("Snapshots = %d", w.h.Snapshots)
		}
		if w.h.HostFS.SharedBlocks() == 0 {
			t.Fatal("snapshot left no shared blocks")
		}

		// Reads do not fault: fill the BTLB with the (protected) mapping.
		clear(buf.Data)
		if err := vm.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Data, base) {
			t.Fatal("post-snapshot read through VF differs")
		}
		if w.ctl.CowFaults != 0 {
			t.Fatalf("reads raised %d CoW faults", w.ctl.CowFaults)
		}

		// First write to a shared extent must take the miss path: CoW fault
		// raised, share broken, stale BTLB entry invalidated, write retried.
		one := vm.Kernel.AllocBuffer(1024)
		for i := range one.Data {
			one.Data[i] = 0xD7
		}
		if err := vm.Kernel.SubmitAligned(p, true, 3, one); err != nil {
			t.Fatal(err)
		}
		if w.ctl.CowFaults == 0 {
			t.Fatal("first shared write raised no device CoW fault")
		}
		if w.h.CowBreaks == 0 {
			t.Fatal("hypervisor serviced no CoW break")
		}
		if w.ctl.BTLBInvalidations == 0 {
			t.Fatal("CoW break invalidated no BTLB entries")
		}

		// The snapshot still reads the pre-write image; the VF sees its own
		// write.
		want := append([]byte(nil), base...)
		copy(want[3*1024:], one.Data)
		clear(buf.Data)
		if err := vm.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Data, want) {
			t.Fatal("VF does not see its own post-snapshot write")
		}
		if got := readHostFile(t, p, w.h, "/vm.snap", 16*1024); !bytes.Equal(got, base) {
			t.Fatal("guest write leaked into snapshot")
		}

		// The broken block is private now: writing it again must not fault.
		faults := w.ctl.CowFaults
		if err := vm.Kernel.SubmitAligned(p, true, 3, one); err != nil {
			t.Fatal(err)
		}
		if w.ctl.CowFaults != faults {
			t.Fatalf("re-write of private block faulted again (%d -> %d)", faults, w.ctl.CowFaults)
		}
		if err := w.h.HostFS.Check(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCloneToNewVFIsolation(t *testing.T) {
	w := newWorld(t, 16384, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/parent.img", 100, 256)
		vm1, err := w.h.NewVM(p, "parent", VMConfig{Backend: BackendDirect, DiskPath: "/parent.img", UID: 100})
		if err != nil {
			t.Fatal(err)
		}
		buf := vm1.Kernel.AllocBuffer(32 * 1024)
		rand.New(rand.NewSource(23)).Read(buf.Data)
		base := append([]byte(nil), buf.Data...)
		if err := vm1.Kernel.SubmitAligned(p, true, 0, buf); err != nil {
			t.Fatal(err)
		}

		cloneIdx, err := w.h.CloneToNewVF(p, 0, "/clone.img", 100)
		if err != nil {
			t.Fatal(err)
		}
		if w.h.Clones != 1 {
			t.Fatalf("Clones = %d", w.h.Clones)
		}
		if w.h.SharesTreeWith(0, cloneIdx) {
			t.Fatal("clone shares the parent's extent tree")
		}
		// Attach a guest to the clone file; its VF shares the clone's tree.
		vm2, err := w.h.NewVM(p, "clone", VMConfig{Backend: BackendDirect, DiskPath: "/clone.img", UID: 100})
		if err != nil {
			t.Fatal(err)
		}
		if !w.h.SharesTreeWith(cloneIdx, vm2.VFIdx) {
			t.Fatal("two VFs on the clone file do not share a tree")
		}

		// Clone reads byte-identical to the parent at snapshot time.
		cbuf := vm2.Kernel.AllocBuffer(32 * 1024)
		if err := vm2.Kernel.SubmitAligned(p, false, 0, cbuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cbuf.Data, base) {
			t.Fatal("clone does not read parent's snapshot-time bytes")
		}

		// Diverge both sides on different blocks; neither write may leak
		// into the other disk.
		pw := vm1.Kernel.AllocBuffer(1024)
		for i := range pw.Data {
			pw.Data[i] = 0x11
		}
		if err := vm1.Kernel.SubmitAligned(p, true, 1, pw); err != nil {
			t.Fatal(err)
		}
		cw := vm2.Kernel.AllocBuffer(1024)
		for i := range cw.Data {
			cw.Data[i] = 0x22
		}
		if err := vm2.Kernel.SubmitAligned(p, true, 5, cw); err != nil {
			t.Fatal(err)
		}

		wantParent := append([]byte(nil), base...)
		copy(wantParent[1*1024:], pw.Data)
		wantClone := append([]byte(nil), base...)
		copy(wantClone[5*1024:], cw.Data)

		clear(buf.Data)
		if err := vm1.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Data, wantParent) {
			t.Fatal("parent disk wrong after divergence")
		}
		clear(cbuf.Data)
		if err := vm2.Kernel.SubmitAligned(p, false, 0, cbuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cbuf.Data, wantClone) {
			t.Fatal("clone disk wrong after divergence")
		}
		if w.ctl.CowFaults == 0 {
			t.Fatal("divergence raised no CoW faults")
		}
		if err := w.h.HostFS.Check(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeleteSnapshotLifecycle(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/d.img", 100, 128)
		if _, err := w.h.NewVM(p, "vm", VMConfig{Backend: BackendDirect, DiskPath: "/d.img", UID: 100}); err != nil {
			t.Fatal(err)
		}
		cloneIdx, err := w.h.CloneToNewVF(p, 0, "/d.clone", 100)
		if err != nil {
			t.Fatal(err)
		}
		// Refused while exported.
		if err := w.h.DeleteSnapshot(p, "/d.clone", 100); err == nil {
			t.Fatal("deleted a snapshot still exported through a VF")
		}
		w.h.DestroyVF(p, cloneIdx)
		if err := w.h.DeleteSnapshot(p, "/d.clone", 100); err != nil {
			t.Fatal(err)
		}
		if w.h.HostFS.SharedBlocks() != 0 {
			t.Fatalf("%d blocks still shared after deleting only snapshot", w.h.HostFS.SharedBlocks())
		}
		if err := w.h.HostFS.Check(p); err != nil {
			t.Fatal(err)
		}
	})
}
