package hypervisor

import (
	"nesc/internal/cas"
	"nesc/internal/core"
	"nesc/internal/extent"
	"nesc/internal/extfs"
	"nesc/internal/guest"
	"nesc/internal/pcie"
	"nesc/internal/sim"
)

// Device is the hypervisor's per-controller management state. The original
// single-controller hypervisor owned one NeSC device implicitly; a fabric
// hypervisor manages a fleet, each device carrying its own host filesystem,
// PF ring driver, VF table, and shared extent trees. Device 0 is the
// primary: every historical Hypervisor method operates on it, so
// single-device platforms behave (and schedule events) exactly as before.
type Device struct {
	h   *Hypervisor
	Idx int
	Ctl *core.Controller

	HostFS *extfs.FS
	pfQP   *guest.MultiQueue

	// vfs/missBusy/vfLocks are lazy tables: nil (or short) until a VF is
	// first touched, so configuring NumVFs=1024 costs nothing until tenants
	// actually arrive. Grown only by vf()/lockVF()/missBusyRef(); iteration
	// sites nil-skip.
	vfs   []*vfState
	trees map[string]*sharedTree
	// casBindings maps device paths to their cas-fork manifests; casCache is
	// this device's local chunk cache (see cas.go). Both nil until the
	// content-addressed tier is used on this device.
	casBindings map[string]*casBinding
	casCache    *cas.Cache
	// missBusy marks VFs whose latched miss is already being serviced, so
	// duplicate miss interrupts are idempotent (see serviceMisses).
	missBusy []bool
	// vfLocks serialize management operations on one VF — ResetVF racing
	// SnapshotVF/MigrateVFFile/miss service must not interleave tree
	// rebuilds with FLR teardown. Binary semaphores; uncontended
	// acquisition is synchronous and schedule-neutral.
	vfLocks []*sim.Semaphore
}

func newDevice(h *Hypervisor, idx int, ctl *core.Controller) *Device {
	return &Device{
		h:     h,
		Idx:   idx,
		Ctl:   ctl,
		trees: make(map[string]*sharedTree),
	}
}

// vf returns VF idx's management slot, materializing it (and any gap before
// it) on first touch.
func (d *Device) vf(idx int) *vfState {
	for len(d.vfs) <= idx {
		d.vfs = append(d.vfs, nil)
	}
	if d.vfs[idx] == nil {
		d.vfs[idx] = &vfState{}
	}
	return d.vfs[idx]
}

// vfAt returns VF idx's slot without materializing it; nil when the VF has
// never been touched.
func (d *Device) vfAt(idx int) *vfState {
	if idx < 0 || idx >= len(d.vfs) {
		return nil
	}
	return d.vfs[idx]
}

// missBusyRef returns a pointer to VF idx's miss-service busy flag, growing
// the lazy table on demand.
func (d *Device) missBusyRef(idx int) *bool {
	for len(d.missBusy) <= idx {
		d.missBusy = append(d.missBusy, false)
	}
	return &d.missBusy[idx]
}

// AddDevice attaches an additional NeSC controller to the hypervisor's
// fleet. Call after New and before Boot; the controller must live on the
// same PCIe fabric. Returns the new device (index len-1).
func (h *Hypervisor) AddDevice(ctl *core.Controller) *Device {
	d := newDevice(h, len(h.devs), ctl)
	h.devs = append(h.devs, d)
	h.devByPF[ctl.PF().ID()] = d
	if h.P.UseIOMMU {
		h.Fab.IOMMU().Grant(ctl.PF().ID(), 0, h.Mem.Size())
	}
	return d
}

// Device returns device idx of the fleet (0 = primary).
func (h *Hypervisor) Device(idx int) *Device { return h.devs[idx] }

// Devices returns the managed fleet, primary first.
func (h *Hypervisor) Devices() []*Device { return h.devs }

// NumDevices reports the fleet size.
func (h *Hypervisor) NumDevices() int { return len(h.devs) }

// lockVF acquires a VF's management lock, reporting whether it had to wait
// (a contended acquisition means another management operation ran in
// between, so cached device state must be re-read).
func (d *Device) lockVF(p *sim.Proc, idx int) bool {
	for len(d.vfLocks) <= idx {
		d.vfLocks = append(d.vfLocks, nil)
	}
	if d.vfLocks[idx] == nil {
		d.vfLocks[idx] = sim.NewSemaphore(d.h.Eng, 1)
	}
	contended := d.vfLocks[idx].Available() == 0
	d.vfLocks[idx].Acquire(p)
	return contended
}

func (d *Device) unlockVF(idx int) { d.vfLocks[idx].Release() }

// bootDevice programs a device's PF rings and formats (or mounts) its host
// filesystem — the per-device half of Hypervisor.Boot.
func (d *Device) bootDevice(p *sim.Proc, format bool, fsParams extfs.Params) error {
	h := d.h
	mq, err := guest.NewMultiQueue(p, h.Eng, h.Mem, h.Fab,
		d.Ctl.BARBase()+d.Ctl.FunctionPageOffset(0), 1, h.P.PFRingEntries, h.P.DriverSubmitTime)
	if err != nil {
		return err
	}
	// The PF driver needs the same timeout recovery as the guests: a dropped
	// PF completion would otherwise wedge the host filesystem (and with it the
	// miss handler) forever.
	mq.SetRecovery(h.P.VFRequestTimeout, h.P.VFRetryMax)
	if !h.P.DisablePI {
		mq.SetPI(d.Ctl.P.BlockSize)
	}
	d.pfQP = mq
	h.qps[d.Ctl.PF().ID()] = mq
	h.registerQueueGauges(d.Ctl.PF().ID(), mq)
	disk := d.Disk()
	fsParams.OpCost = h.P.HostFSOpCost
	if format {
		d.HostFS, err = extfs.Format(p, disk, fsParams)
	} else {
		d.HostFS, err = extfs.Mount(p, disk, h.P.HostFSOpCost)
	}
	return err
}

// Disk returns the host block-device view of this device's physical
// function.
func (d *Device) Disk() *PFDisk { return &PFDisk{d: d} }

// FS returns the device's host filesystem (nil before Boot).
func (d *Device) FS() *extfs.FS { return d.HostFS }

// MkImage creates a disk image on this device's host filesystem,
// preallocated unless sparse is set — replica images for mirrored VFs are
// created per device.
func (d *Device) MkImage(p *sim.Proc, path string, uid uint32, blocks uint64, sparse bool) error {
	f, err := d.HostFS.Create(p, path, uid, 0o600)
	if err != nil {
		return err
	}
	if err := f.Truncate(p, blocks*uint64(d.Ctl.P.BlockSize)); err != nil {
		return err
	}
	if sparse {
		return nil
	}
	return d.HostFS.AllocateRange(p, path, 0, blocks)
}

// Compatibility wrappers: the historical single-device Hypervisor API
// operates on the primary device. Multi-device callers address a Device
// directly.

// CreateVF exports a host file through a VF of the primary device; see
// Device.CreateVF.
func (h *Hypervisor) CreateVF(p *sim.Proc, path string, uid uint32) (int, error) {
	return h.devs[0].CreateVF(p, path, uid)
}

// CreateRawVF exports the primary device's whole LBA space; see
// Device.CreateRawVF.
func (h *Hypervisor) CreateRawVF(p *sim.Proc) (int, error) { return h.devs[0].CreateRawVF(p) }

// DestroyVF disables a primary-device VF; see Device.DestroyVF.
func (h *Hypervisor) DestroyVF(p *sim.Proc, idx int) { h.devs[0].DestroyVF(p, idx) }

// QueuePoolStatus reads the primary device's tenancy gauges through the PF
// register file: queue pairs currently leased from the device-wide pool and
// VFs with materialized device state. Because MMIO reads are non-posted,
// the read also flushes any posted configuration writes (VF disables) still
// propagating — use it to observe pool state right after a deprovision.
func (h *Hypervisor) QueuePoolStatus(p *sim.Proc) (leased, materialized int) {
	d := h.devs[0]
	base := d.Ctl.BARBase()
	leased = int(h.mmioR(p, base+core.PFRegQueuesInUse))
	materialized = int(h.mmioR(p, base+core.PFRegMaterializedVFs))
	return leased, materialized
}

// VFPageBus reports a primary-device VF's register page bus address.
func (h *Hypervisor) VFPageBus(idx int) int64 { return h.devs[0].VFPageBus(idx) }

// VFTree exposes a primary-device VF's extent tree.
func (h *Hypervisor) VFTree(idx int) *extent.Tree { return h.devs[0].VFTree(idx) }

// SharesTreeWith reports whether two primary-device VFs share one tree.
func (h *Hypervisor) SharesTreeWith(a, b int) bool { return h.devs[0].SharesTreeWith(a, b) }

// PruneVFTrees prunes the primary device's in-use trees.
func (h *Hypervisor) PruneVFTrees(maxNodes int) int { return h.devs[0].PruneVFTrees(maxNodes) }

// ResetVF function-level-resets a primary-device VF; see Device.ResetVF.
func (h *Hypervisor) ResetVF(p *sim.Proc, idx int) error { return h.devs[0].ResetVF(p, idx) }

// RegenerateVFTree rebuilds a primary-device VF's tree from its file.
func (h *Hypervisor) RegenerateVFTree(p *sim.Proc, idx int) error {
	return h.devs[0].RegenerateVFTree(p, idx)
}

// MigrateVFFile relocates a primary-device VF's physical blocks.
func (h *Hypervisor) MigrateVFFile(p *sim.Proc, idx int, flushBTLB bool) error {
	return h.devs[0].MigrateVFFile(p, idx, flushBTLB)
}

// SetVFWeight programs a primary-device VF's QoS weight.
func (h *Hypervisor) SetVFWeight(p *sim.Proc, idx int, weight int) {
	h.devs[0].SetVFWeight(p, idx, weight)
}

// RouteVFInterrupts routes a primary-device VF's completions to mq.
func (h *Hypervisor) RouteVFInterrupts(idx int, mq *guest.MultiQueue) {
	h.devs[0].RouteVFInterrupts(idx, mq)
}

// FlushBTLB invalidates the primary device's translation cache.
func (h *Hypervisor) FlushBTLB(p *sim.Proc) { h.devs[0].FlushBTLB(p) }

// SnapshotVF snapshots a primary-device VF's backing file.
func (h *Hypervisor) SnapshotVF(p *sim.Proc, idx int, dstPath string, uid uint32) error {
	return h.devs[0].SnapshotVF(p, idx, dstPath, uid)
}

// SnapshotFile snapshots an arbitrary primary-device host file.
func (h *Hypervisor) SnapshotFile(p *sim.Proc, path, dstPath string, uid uint32) error {
	return h.devs[0].SnapshotFile(p, path, dstPath, uid)
}

// CloneToNewVF forks a primary-device VF's disk through a fresh VF.
func (h *Hypervisor) CloneToNewVF(p *sim.Proc, idx int, clonePath string, uid uint32) (int, error) {
	return h.devs[0].CloneToNewVF(p, idx, clonePath, uid)
}

// DeleteSnapshot removes a primary-device snapshot file.
func (h *Hypervisor) DeleteSnapshot(p *sim.Proc, path string, uid uint32) error {
	return h.devs[0].DeleteSnapshot(p, path, uid)
}

// fnIndexOfDev maps a routing ID to (device, function index) across the
// fleet; ok is false for IDs no managed controller owns. Uses the
// controller's reverse map, so the cost is O(devices), not O(configured
// VFs), and no VF is materialized by the lookup.
func (h *Hypervisor) fnIndexOfDev(id pcie.FnID) (*Device, int, bool) {
	for _, d := range h.devs {
		if i, ok := d.Ctl.FnIndex(id); ok {
			return d, i, true
		}
	}
	return nil, -1, false
}
