package hypervisor

import (
	"encoding/binary"
	"io"

	"nesc/internal/core"
	"nesc/internal/extfs"
	"nesc/internal/guest"
	"nesc/internal/hostmem"
	"nesc/internal/sim"
	"nesc/internal/virtio"
)

// HostTarget is what a software storage backend (virtio or emulation)
// ultimately reads and writes: either the raw physical function or an image
// file on the host filesystem. Addresses are host-memory addresses of the
// data (guest buffers or backend bounce buffers).
type HostTarget interface {
	SizeBlocks() int64
	BlockSize() int
	Read(p *sim.Proc, lba int64, addr hostmem.Addr, nBlocks int) error
	Write(p *sim.Proc, lba int64, addr hostmem.Addr, nBlocks int) error
}

// rawPFTarget backs a virtual disk with the physical function itself —
// "mapping the PF to the guest VM using either virtio [or] device
// emulation" (paper §VII-A).
type rawPFTarget struct {
	h *Hypervisor
}

func (t *rawPFTarget) SizeBlocks() int64 { return t.h.Ctl.Medium.Store().NumBlocks() }
func (t *rawPFTarget) BlockSize() int    { return t.h.Ctl.P.BlockSize }

func (t *rawPFTarget) op(p *sim.Proc, opCode uint32, lba int64, addr hostmem.Addr, nBlocks int) error {
	h := t.h
	maxB := h.P.PFMaxBlocksPerReq
	bs := int64(t.BlockSize())
	for done := 0; done < nBlocks; {
		n := nBlocks - done
		if n > maxB {
			n = maxB
		}
		p.Sleep(h.P.HostStackTime)
		st, err := h.pfQP.Submit(p, opCode, uint64(lba+int64(done)), uint32(n), addr+int64(done)*bs)
		if err != nil {
			return err
		}
		if err := guest.StatusError(st); err != nil {
			return err
		}
		done += n
	}
	return nil
}

func (t *rawPFTarget) Read(p *sim.Proc, lba int64, addr hostmem.Addr, nBlocks int) error {
	return t.op(p, core.OpRead, lba, addr, nBlocks)
}

func (t *rawPFTarget) Write(p *sim.Proc, lba int64, addr hostmem.Addr, nBlocks int) error {
	return t.op(p, core.OpWrite, lba, addr, nBlocks)
}

// fileTarget backs a virtual disk with an image file on the host filesystem
// — the nested-filesystem configuration whose overheads the paper measures.
type fileTarget struct {
	h    *Hypervisor
	file *extfs.File
	size int64 // virtual disk size in blocks
}

func (t *fileTarget) SizeBlocks() int64 { return t.size }
func (t *fileTarget) BlockSize() int    { return t.h.Ctl.P.BlockSize }

func (t *fileTarget) Read(p *sim.Proc, lba int64, addr hostmem.Addr, nBlocks int) error {
	bs := t.BlockSize()
	buf, err := t.h.Mem.Slice(addr, int64(nBlocks*bs))
	if err != nil {
		return err
	}
	n, err := t.file.ReadAt(p, buf, lba*int64(bs))
	if err == io.EOF {
		// The image may be shorter than the virtual disk (sparse tail):
		// unbacked bytes read as zeros.
		clear(buf[n:])
		err = nil
	}
	return err
}

func (t *fileTarget) Write(p *sim.Proc, lba int64, addr hostmem.Addr, nBlocks int) error {
	bs := t.BlockSize()
	buf, err := t.h.Mem.Slice(addr, int64(nBlocks*bs))
	if err != nil {
		return err
	}
	_, err = t.file.WriteAt(p, buf, lba*int64(bs))
	return err
}

// VioBackend is the host half of a virtio-blk device (the QEMU iothread):
// it drains the virtqueue on kicks, performs the I/O against the target, and
// injects completion interrupts.
type VioBackend struct {
	h      *Hypervisor
	target HostTarget
	vq     *virtio.Virtqueue
	drv    *guest.VirtioDriver
	kicks  *sim.Semaphore
	aio    *sim.Semaphore // outstanding asynchronous target I/Os

	// Requests counts processed virtio requests.
	Requests int64
}

// Kick implements guest.VirtioTransport: the guest's notification traps out
// (vmexit), signals the backend thread, and resumes the guest.
func (b *VioBackend) Kick(p *sim.Proc) {
	p.Sleep(b.h.P.VMExitTime)
	b.kicks.Release()
	p.Sleep(b.h.P.VMEnterTime)
}

func (b *VioBackend) loop(p *sim.Proc) {
	for {
		b.kicks.Acquire(p)
		p.Sleep(b.h.P.BackendWakeTime)
		for {
			head, ok, err := b.vq.PopAvail()
			if err != nil {
				panic(err)
			}
			if !ok {
				break
			}
			b.process(p, head)
		}
	}
}

// process handles one request: the iothread's CPU work is serialized in the
// backend loop; the target I/O and completion run asynchronously (QEMU
// submits aio and moves on), so back-to-back large requests overlap on the
// device — which is why virtio converges with NeSC at multi-MB blocks
// (paper §VII-A).
func (b *VioBackend) process(p *sim.Proc, head uint16) {
	h := b.h
	b.Requests++
	p.Sleep(h.P.BackendProcessTime)
	b.aio.Acquire(p)
	h.Eng.Go("virtio-aio", func(q *sim.Proc) {
		defer b.aio.Release()
		chain, err := b.vq.ReadChain(head)
		status := byte(virtio.BlkStatusOK)
		var written uint32
		if err != nil || len(chain) < 3 {
			status = virtio.BlkStatusIOErr
		} else {
			hdr := make([]byte, virtio.BlkHeaderBytes)
			if err := h.Mem.Read(chain[0].Addr, hdr); err != nil {
				status = virtio.BlkStatusIOErr
			} else {
				typ := binary.BigEndian.Uint32(hdr[0:])
				sector := binary.BigEndian.Uint64(hdr[8:])
				bs := b.target.BlockSize()
				lba := int64(sector / uint64(bs/virtio.SectorSize))
				data := chain[1]
				nBlocks := int(data.Len) / bs
				switch {
				case int(data.Len)%bs != 0 || lba+int64(nBlocks) > b.target.SizeBlocks():
					status = virtio.BlkStatusIOErr
				case typ == virtio.BlkTRead:
					if err := b.target.Read(q, lba, data.Addr, nBlocks); err != nil {
						status = virtio.BlkStatusIOErr
					} else {
						written = data.Len
					}
				case typ == virtio.BlkTWrite:
					if err := b.target.Write(q, lba, data.Addr, nBlocks); err != nil {
						status = virtio.BlkStatusIOErr
					}
				default:
					status = virtio.BlkStatusIOErr
				}
			}
		}
		statusDesc := chain[len(chain)-1]
		if err := h.Mem.Write(statusDesc.Addr, []byte{status}); err != nil {
			panic(err)
		}
		if err := b.vq.PushUsed(head, written); err != nil {
			panic(err)
		}
		q.Sleep(h.P.InjectTime)
		h.Injections++
		b.drv.OnInterrupt()
	})
}

// EmulBackend is the host half of the fully emulated disk (paper Fig. 1a):
// every register access is a trap serviced here, and the command register
// executes the whole DMA transfer against the backing target.
type EmulBackend struct {
	h      *Hypervisor
	target HostTarget

	lbaSectors uint64
	count      uint64
	bufAddr    uint64
	status     uint64

	// Commands counts executed disk commands.
	Commands int64
}

// WriteReg implements guest.EmulPort.
func (b *EmulBackend) WriteReg(p *sim.Proc, reg int, val uint64) {
	b.h.trap(p, b.h.P.EmulTrapTime)
	switch reg {
	case guest.EmulRegLBA:
		b.lbaSectors = val
	case guest.EmulRegCount:
		b.count = val
	case guest.EmulRegBuf:
		b.bufAddr = val
	case guest.EmulRegCmd:
		b.exec(p, val)
	}
}

// ReadReg implements guest.EmulPort.
func (b *EmulBackend) ReadReg(p *sim.Proc, reg int) uint64 {
	b.h.trap(p, b.h.P.EmulTrapTime)
	if reg == guest.EmulRegStatus {
		return b.status
	}
	return 0
}

// exec emulates one disk command: QEMU-side request processing, the
// guest-memory copy the device model performs, and the backing-store I/O.
func (b *EmulBackend) exec(p *sim.Proc, cmd uint64) {
	b.Commands++
	p.Sleep(b.h.P.EmulCmdProcessTime)
	bs := b.target.BlockSize()
	secPerBlk := uint64(bs / guest.EmulSector)
	if b.lbaSectors%secPerBlk != 0 || b.count%secPerBlk != 0 || b.count == 0 {
		b.status = guest.EmulStatusErr
		return
	}
	lba := int64(b.lbaSectors / secPerBlk)
	nBlocks := int(b.count / secPerBlk)
	if lba+int64(nBlocks) > b.target.SizeBlocks() {
		b.status = guest.EmulStatusErr
		return
	}
	bytes := int64(b.count) * guest.EmulSector
	// The device model copies between guest memory and its own buffers.
	p.Sleep(sim.BytesTime(bytes, b.h.P.MemcpyBandwidth))
	var err error
	switch cmd {
	case guest.EmulCmdRead:
		err = b.target.Read(p, lba, int64(b.bufAddr), nBlocks)
	case guest.EmulCmdWrite:
		err = b.target.Write(p, lba, int64(b.bufAddr), nBlocks)
	default:
		b.status = guest.EmulStatusErr
		return
	}
	if err != nil {
		b.status = guest.EmulStatusErr
		return
	}
	b.status = guest.EmulStatusOK
}
