package hypervisor

import (
	"nesc/internal/core"
	"nesc/internal/guest"
	"nesc/internal/sim"
)

// Background scrubbing (data-integrity tentpole): the hypervisor walks the
// whole physical device through the PF with OpVerify requests — reads that
// guard-check every block on the medium but move no data over DMA. The device
// services verify chunks only when both the out-of-band queue and every VF's
// in-band queue are empty (strict scavenger priority in dtuPick), so a scrub
// pass provably never delays foreground traffic at the DTU; the pacing
// interval below additionally bounds how much PF-ring occupancy it adds.
//
// A verify chunk that fails its guard check is repaired in place by the
// device: a recovery read fetches the true bytes behind the corruption layer
// and a bounded-retry rewrite refreshes the block, clearing any latent-error
// or latched-corruption state at the injector.

// ScrubConfig paces the background scrubber.
type ScrubConfig struct {
	// Interval is the idle gap between consecutive verify requests
	// (default 200µs). Larger = gentler.
	Interval sim.Time
	// BlocksPerReq is the span of one verify request (default 64, capped at
	// the PF's per-request block limit).
	BlocksPerReq int
}

func (c *ScrubConfig) defaults(h *Hypervisor) {
	if c.Interval <= 0 {
		c.Interval = 200 * sim.Microsecond
	}
	if c.BlocksPerReq <= 0 {
		c.BlocksPerReq = 64
	}
	if c.BlocksPerReq > h.P.PFMaxBlocksPerReq {
		c.BlocksPerReq = h.P.PFMaxBlocksPerReq
	}
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Blocks   int64 // blocks verified
	Requests int64 // verify requests issued
	Errors   int64 // requests that completed with a non-OK status
	Repairs  int64 // device-side integrity repairs during the pass
}

// StartScrubber launches the paced background scrubber. It loops full-device
// passes until StopScrubber; each wakeup re-checks the stop flag, so the
// simulation quiesces promptly once the workload ends. Idempotent while a
// scrubber is already running.
func (h *Hypervisor) StartScrubber(cfg ScrubConfig) {
	if h.scrubOn {
		return
	}
	cfg.defaults(h)
	h.scrubOn = true
	h.scrubStop = false
	h.Eng.Go("nesc-scrubber", func(p *sim.Proc) {
		for !h.scrubStop {
			rep := h.scrubPass(p, cfg, true)
			h.ScrubBlocks += rep.Blocks
			h.ScrubErrors += rep.Errors
			h.ScrubRepairs += rep.Repairs
			if !h.scrubStop {
				h.ScrubPasses++
			}
		}
		h.scrubOn = false
	})
}

// StopScrubber asks the background scrubber to exit at its next wakeup.
func (h *Hypervisor) StopScrubber() { h.scrubStop = true }

// ScrubberRunning reports whether the background scrubber is active.
func (h *Hypervisor) ScrubberRunning() bool { return h.scrubOn }

// ScrubPass synchronously verifies every block on the physical device,
// repairing any guard failures it finds (nescctl -scrub, crash harness).
func (h *Hypervisor) ScrubPass(p *sim.Proc) ScrubReport {
	cfg := ScrubConfig{Interval: 1} // near-continuous: the caller is waiting
	cfg.defaults(h)
	cfg.Interval = 1
	return h.scrubPass(p, cfg, false)
}

// scrubPass walks [0, NumBlocks) in BlocksPerReq strides of OpVerify.
func (h *Hypervisor) scrubPass(p *sim.Proc, cfg ScrubConfig, interruptible bool) ScrubReport {
	var rep ScrubReport
	repairs0 := h.Ctl.IntegrityRepairs
	total := h.Ctl.Medium.Store().NumBlocks()
	for lba := int64(0); lba < total; lba += int64(cfg.BlocksPerReq) {
		if interruptible && h.scrubStop {
			break
		}
		p.Sleep(cfg.Interval)
		n := total - lba
		if n > int64(cfg.BlocksPerReq) {
			n = int64(cfg.BlocksPerReq)
		}
		st, err := h.pfQP.Submit(p, core.OpVerify, uint64(lba), uint32(n), 0)
		rep.Requests++
		rep.Blocks += n
		if err != nil || guest.StatusError(st) != nil {
			rep.Errors++
		}
	}
	rep.Repairs = h.Ctl.IntegrityRepairs - repairs0
	return rep
}
