package hypervisor

import (
	"testing"

	"nesc/internal/fault"
	"nesc/internal/sim"
)

// TestScrubPassRepairsLatchedCorruption seeds silently corrupted sectors in
// a region no workload touches and proves one synchronous scrub pass finds
// and heals them: the latent-sector blind spot closed.
func TestScrubPassRepairsLatchedCorruption(t *testing.T) {
	w := newWorld(t, 4096, nil)
	inj := fault.NewInjector(fault.Plan{Seed: 5, CorruptSectors: []int64{2000, 3000}})
	w.ctl.Medium.SetInjector(inj)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		rep := w.h.ScrubPass(p)
		if rep.Blocks != 4096 {
			t.Errorf("scrub covered %d blocks, want the whole device (4096)", rep.Blocks)
		}
		if rep.Errors != 0 {
			t.Errorf("%d verify requests failed outright (repair ladder exhausted)", rep.Errors)
		}
		if rep.Repairs == 0 {
			t.Error("scrub repaired nothing despite latched corruption")
		}
		if n := inj.CorruptCount(); n != 0 {
			t.Errorf("%d corrupt latches survived the scrub", n)
		}
		// A second pass over the healed device is clean and repairs nothing.
		rep2 := w.h.ScrubPass(p)
		if rep2.Errors != 0 || rep2.Repairs != 0 {
			t.Errorf("second pass: errors=%d repairs=%d, want 0/0", rep2.Errors, rep2.Repairs)
		}
	})
	if w.ctl.Medium.RecoveryReads == 0 {
		t.Error("repairs happened without heroic recovery reads")
	}
}

// TestBackgroundScrubberLifecycle exercises start/stop: the paced proc makes
// progress while running, a second start is a no-op, and stop lets the
// engine drain to quiescence.
func TestBackgroundScrubberLifecycle(t *testing.T) {
	w := newWorld(t, 4096, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.h.StartScrubber(ScrubConfig{Interval: 10 * sim.Microsecond})
		w.h.StartScrubber(ScrubConfig{}) // idempotent: must not spawn a twin
		if !w.h.ScrubberRunning() {
			t.Error("scrubber not running after start")
		}
		p.Sleep(2 * sim.Millisecond)
		w.h.StopScrubber()
	})
	if w.h.ScrubberRunning() {
		t.Error("scrubber still running after stop + drain")
	}
	if w.h.ScrubBlocks == 0 {
		t.Error("background scrubber verified no blocks while running")
	}
}
